package codb

// Randomized differential test harness: the oracle for both the
// incremental-export machinery and the concurrent read path.
//
// For every randomized scenario — topology shape (acyclic and cyclic),
// network size, workload, insert/update trace — the same trace runs twice:
// once with the default cross-session incremental export and once with
// FullExport (the paper-faithful full re-ship, the reference
// implementation). After every update round the two networks must hold
// byte-identical databases, and their certain answers to a panel of
// queries must agree exactly.
//
// The final round additionally checks the concurrent read path against
// quiescent evaluation: queries issued *while* the update runs must be
// sandwiched between the pre-update and post-quiescence answer sets
// (updates only insert, and conjunctive queries are monotone, so any
// consistent snapshot's answers lie between the two), and the
// post-quiescence answers of the snapshot-plus-cache path must equal a
// direct evaluation over the raw database instance.

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"codb/internal/config"
	"codb/internal/core"
	"codb/internal/cq"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/topo"
	"codb/internal/workload"
)

// diffScenario is one randomized differential trial.
type diffScenario struct {
	seed   int64
	shape  topo.Shape
	nodes  int
	tuples int
	rounds int
	burst  int
	shards int // storage shard count of the network under test
	// spill runs the network under test on durable storage with tiny
	// changelog rings and tiny WAL segments, so the incremental-export
	// hot path is forced through changelog spill and segment-served
	// Changes; the scenario then asserts zero history-lost fallbacks.
	spill bool
	// tcp runs the network under test over real sockets speaking the
	// versioned binary wire protocol, while the reference stays on the
	// in-process bus — so byte-identity also proves the codec loses
	// nothing in flight.
	tcp bool
	// par is the network-under-test's write-path evaluation parallelism
	// (the hash-join fan-out of snapshot-backed session evaluation); the
	// reference network always evaluates serially, so byte-identity
	// doubles as the parallel-eval oracle.
	par int
}

// diffShapes mixes acyclic (chain, tree, star, grid) and cyclic (ring,
// random-with-back-edges) rule graphs.
var diffShapes = []topo.Shape{topo.Chain, topo.Ring, topo.Tree, topo.Star, topo.Grid, topo.Random}

// diffShards cycles the storage shard counts the scenarios exercise; the
// reference network always runs shards=1, so every scenario with shards>1
// doubles as a sharded-vs-unsharded differential check.
var diffShards = []int{1, 2, 8}

// diffPar cycles the write-path evaluation parallelism of the network
// under test between serial and 4-way fan-out.
var diffPar = []int{1, 4}

func diffScenarios(n int) []diffScenario {
	out := make([]diffScenario, 0, n)
	for s := 0; s < n; s++ {
		out = append(out, diffScenario{
			seed:   int64(1000 + s),
			shape:  diffShapes[s%len(diffShapes)],
			nodes:  3 + s%4,
			tuples: 15 + (s%3)*10,
			rounds: 2 + s%2,
			burst:  4 + s%5,
			shards: diffShards[s%len(diffShards)],
			spill:  s%3 == 1, // every third scenario runs the spill hot path
			tcp:    s%4 == 2, // every fourth runs over real TCP sockets
			par:    diffPar[s%len(diffPar)],
		})
	}
	return out
}

// storeOptions resolves the network-under-test's storage knobs: spill
// scenarios run durable with rings far smaller than the workload and
// segments a few records long, so Changes must be answered from retained
// WAL segments to stay incremental.
func (sc diffScenario) storeOptions(t *testing.T) storage.Options {
	opts := storage.Options{Shards: sc.shards}
	if sc.spill {
		opts.Dir = t.TempDir() // per-node subdirectories are added below
		opts.ChangelogLimit = 6
		opts.SegmentBytes = 256
	}
	return opts
}

// networkFromTopo builds an in-process network (one peer per node with the
// given storage options, rules on both endpoints) from a generated
// topology. A non-empty store.Dir gets one subdirectory per node.
func networkFromTopo(t *testing.T, cfg *config.Config, opts NetworkOptions, store storage.Options) *Network {
	t.Helper()
	nw := NewNetworkWithOptions(opts)
	for _, node := range cfg.Nodes {
		nodeStore := store
		if store.Dir != "" {
			nodeStore.Dir = filepath.Join(store.Dir, node.Name)
		}
		db, err := storage.Open(nodeStore)
		if err != nil {
			nw.Close()
			t.Fatal(err)
		}
		if err := db.DefineSchema(node.Schema); err != nil {
			nw.Close()
			t.Fatal(err)
		}
		if _, err := nw.join(node.Name, core.NewStoreWrapper(db)); err != nil {
			nw.Close()
			t.Fatal(err)
		}
		nw.mu.Lock()
		nw.dbs[node.Name] = db
		nw.mu.Unlock()
	}
	for _, r := range cfg.Rules {
		if err := nw.AddRule(r.ID, r.Text); err != nil {
			nw.Close()
			t.Fatal(err)
		}
	}
	return nw
}

// fingerprint renders a network's entire data as deterministic bytes:
// peers sorted, relations sorted, tuples in key order.
func fingerprint(nw *Network) []byte {
	nw.mu.Lock()
	names := make([]string, 0, len(nw.dbs))
	for name := range nw.dbs {
		names = append(names, name)
	}
	dbs := make(map[string]*storage.DB, len(nw.dbs))
	for name, db := range nw.dbs {
		dbs[name] = db
	}
	nw.mu.Unlock()
	sort.Strings(names)
	var buf bytes.Buffer
	for _, name := range names {
		in := dbs[name].Instance()
		rels := make([]string, 0, len(in))
		for rel := range in {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		fmt.Fprintf(&buf, "@%s\n", name)
		for _, rel := range rels {
			fmt.Fprintf(&buf, "#%s\n", rel)
			keys := make([]string, 0, len(in[rel]))
			for _, tu := range in.Tuples(rel) {
				keys = append(keys, tu.Key())
			}
			sort.Strings(keys)
			for _, k := range keys {
				buf.WriteString(k)
				buf.WriteByte('\n')
			}
		}
	}
	return buf.Bytes()
}

// diffQueries is the certain-answer panel checked between the two modes.
var diffQueries = []string{
	`ans(x, y) :- data(x, y)`,
	`ans(x) :- data(x, y), y >= 0`,
	`ans(x, z) :- data(x, y), data(y, z)`,
}

// answerSet evaluates one query at one peer and returns the sorted answer
// keys.
func answerSet(t *testing.T, nw *Network, node, query string, mode QueryMode) []string {
	t.Helper()
	rows, err := nw.LocalQuery(node, query, mode)
	if err != nil {
		t.Fatalf("LocalQuery %s @ %s: %v", query, node, err)
	}
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = r.Key()
	}
	sort.Strings(keys)
	return keys
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subsetKeys reports a ⊆ b for sorted key slices.
func subsetKeys(a, b []string) bool {
	i := 0
	for _, k := range a {
		for i < len(b) && b[i] < k {
			i++
		}
		if i >= len(b) || b[i] != k {
			return false
		}
		i++
	}
	return true
}

// applyBurst commits the round's fresh tuples to every node of one network
// (identically on both networks of a scenario).
func applyBurst(t *testing.T, nw *Network, names []string, sc diffScenario, round int) {
	t.Helper()
	for ni, name := range names {
		tuples := make([]relation.Tuple, sc.burst)
		for j := range tuples {
			k := 5_000_000 + round*100_000 + ni*1_000 + j
			tuples[j] = relation.Tuple{relation.Int(k), relation.Int(round)}
		}
		if err := nw.Insert(name, "data", tuples...); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDifferentialIncrementalVsFullExport(t *testing.T) {
	const scenarios = 26 // ≥ 25 randomized topologies
	for _, sc := range diffScenarios(scenarios) {
		sc := sc
		t.Run(fmt.Sprintf("%s/n=%d/seed=%d/shards=%d/tcp=%v/par=%d", sc.shape, sc.nodes, sc.seed, sc.shards, sc.tcp, sc.par), func(t *testing.T) {
			t.Parallel()
			cfg, err := topo.Build(sc.shape, sc.nodes, topo.Options{Seed: sc.seed})
			if err != nil {
				t.Fatal(err)
			}
			// The network under test runs the scenario's shard count and
			// write-path parallelism over snapshot-backed session views
			// (spill scenarios additionally run durable with tiny rings +
			// segments; tcp scenarios run over real sockets with the binary
			// wire codec); the FullExport reference always runs unsharded in
			// memory on the bus, evaluating serially over the live wrapper,
			// so the byte-identity check also covers sharded-vs-unsharded,
			// snapshot-vs-live evaluation, parallel-vs-serial joins,
			// spilled-vs-resident storage, and wire-vs-bus transport.
			incr := networkFromTopo(t, cfg,
				NetworkOptions{EvalParallelism: sc.par, Transport: TransportGroup{TCP: sc.tcp}},
				sc.storeOptions(t))
			defer incr.Close()
			full := networkFromTopo(t, cfg,
				NetworkOptions{FullExport: true, DisableSessionSnapshots: true},
				storage.Options{Shards: 1})
			defer full.Close()

			names := make([]string, 0, len(cfg.Nodes))
			for _, n := range cfg.Nodes {
				names = append(names, n.Name)
			}
			seed := workload.Generate(names, workload.Spec{
				TuplesPerNode: sc.tuples,
				Overlap:       0.2,
				Seed:          sc.seed,
			})
			for node, tuples := range seed {
				for _, nw := range []*Network{incr, full} {
					if err := nw.Insert(node, "data", tuples...); err != nil {
						t.Fatal(err)
					}
				}
			}

			rnd := rand.New(rand.NewSource(sc.seed))
			for round := 0; round < sc.rounds; round++ {
				if round > 0 {
					applyBurst(t, incr, names, sc, round)
					applyBurst(t, full, names, sc, round)
				}
				origin := names[rnd.Intn(len(names))]
				if _, err := incr.Update(ctxT(t), origin); err != nil {
					t.Fatalf("incremental update round %d: %v", round, err)
				}
				if _, err := full.Update(ctxT(t), origin); err != nil {
					t.Fatalf("full update round %d: %v", round, err)
				}

				// Byte-identical databases after every round.
				fi, ff := fingerprint(incr), fingerprint(full)
				if !bytes.Equal(fi, ff) {
					t.Fatalf("round %d (origin %s): databases diverged\nincremental:\n%s\nfull:\n%s",
						round, origin, fi, ff)
				}
				// Identical certain answers, at every peer, for the panel.
				for _, name := range names {
					for _, q := range diffQueries {
						ai := answerSet(t, incr, name, q, CertainAnswers)
						af := answerSet(t, full, name, q, CertainAnswers)
						if !equalKeys(ai, af) {
							t.Fatalf("round %d: certain answers diverge at %s for %q: %d vs %d",
								round, name, q, len(ai), len(af))
						}
					}
				}
			}

			if sc.spill {
				// The point of changelog spill: despite rings far smaller
				// than the traffic, no exporter ever lost history — the
				// deltas were served from retained WAL segments instead of
				// degrading to full re-exports.
				fallbacks, incremental := exportTotals(t, incr, names)
				if fallbacks != 0 {
					t.Fatalf("spill scenario recorded %d history-lost fallback exports, want 0", fallbacks)
				}
				if sc.rounds > 1 && incremental == 0 {
					t.Fatal("spill scenario never exported incrementally")
				}
			}
		})
	}
}

// TestDifferentialChurn sandwiches runtime membership churn between update
// rounds: after each round one non-origin peer leaves (tombstone flood)
// and rejoins as a new incarnation over its own durable directory — in TCP
// mode on a fresh listener port — with its rules re-declared. The churn
// network must still converge byte-identically to a static-membership
// FullExport reference that never churns, and no survivor may ever exhaust
// a dial against a departed incarnation's stale address.
func TestDifferentialChurn(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		tcp := tcp
		t.Run(fmt.Sprintf("tcp=%v", tcp), func(t *testing.T) {
			t.Parallel()
			sc := diffScenario{seed: 4242, shape: topo.Star, nodes: 4, tuples: 12, rounds: 4, burst: 5}
			cfg, err := topo.Build(sc.shape, sc.nodes, topo.Options{Seed: sc.seed})
			if err != nil {
				t.Fatal(err)
			}
			churnDir := t.TempDir()
			churn := networkFromTopo(t, cfg,
				NetworkOptions{Transport: TransportGroup{TCP: tcp}},
				storage.Options{Dir: churnDir})
			defer churn.Close()
			full := networkFromTopo(t, cfg,
				NetworkOptions{FullExport: true, DisableSessionSnapshots: true},
				storage.Options{Shards: 1})
			defer full.Close()

			names := make([]string, 0, len(cfg.Nodes))
			for _, n := range cfg.Nodes {
				names = append(names, n.Name)
			}
			seed := workload.Generate(names, workload.Spec{TuplesPerNode: sc.tuples, Overlap: 0.2, Seed: sc.seed})
			for node, tuples := range seed {
				for _, nw := range []*Network{churn, full} {
					if err := nw.Insert(node, "data", tuples...); err != nil {
						t.Fatal(err)
					}
				}
			}

			origin := names[0]
			for round := 0; round < sc.rounds; round++ {
				if round > 0 {
					// One non-origin peer churns: leave, then rejoin as a
					// fresh incarnation over the same durable directory.
					victim := names[1+(round-1)%(len(names)-1)]
					churn.RemovePeer(victim)
					if _, err := churn.AddDurablePeer(victim, filepath.Join(churnDir, victim), "data(x int, y int)"); err != nil {
						t.Fatalf("round %d: rejoin %s: %v", round, victim, err)
					}
					for _, r := range cfg.Rules {
						rule, err := cq.ParseRule(r.ID, r.Text)
						if err != nil {
							t.Fatal(err)
						}
						if rule.Target == victim || rule.Source == victim {
							if err := churn.AddRule(r.ID, r.Text); err != nil {
								t.Fatalf("round %d: re-declare %s: %v", round, r.ID, err)
							}
						}
					}
					applyBurst(t, churn, names, sc, round)
					applyBurst(t, full, names, sc, round)
				}
				if _, err := churn.Update(ctxT(t), origin); err != nil {
					t.Fatalf("churn update round %d: %v", round, err)
				}
				if _, err := full.Update(ctxT(t), origin); err != nil {
					t.Fatalf("reference update round %d: %v", round, err)
				}
				fi, ff := fingerprint(churn), fingerprint(full)
				if !bytes.Equal(fi, ff) {
					t.Fatalf("round %d: churn network diverged from static reference\nchurn:\n%s\nreference:\n%s",
						round, fi, ff)
				}
			}
			if tcp {
				for _, name := range names {
					if n, ok := churn.Peer(name).DialFailures(); ok && n != 0 {
						t.Errorf("%s exhausted %d dials against stale addresses, want 0", name, n)
					}
				}
			}
		})
	}
}

// TestDifferentialPropagationPolicies randomizes the per-link propagation
// policy — every rule independently push, pull, or adaptive — and runs the
// usual randomized trace against an all-push FullExport reference. Lazy
// links are allowed to lag while the round runs; after Network.CatchUp
// (which pulls every link up to date) the databases must be byte-identical
// to the eager reference and the certain-answer panel must agree exactly.
func TestDifferentialPropagationPolicies(t *testing.T) {
	policyModes := []string{"push", "pull", "adaptive"}
	for _, sc := range diffScenarios(9) {
		sc := sc
		t.Run(fmt.Sprintf("%s/n=%d/seed=%d", sc.shape, sc.nodes, sc.seed), func(t *testing.T) {
			t.Parallel()
			cfg, err := topo.Build(sc.shape, sc.nodes, topo.Options{Seed: sc.seed})
			if err != nil {
				t.Fatal(err)
			}
			rnd := rand.New(rand.NewSource(sc.seed*7 + 3))
			policies := make(map[string]string, len(cfg.Rules))
			lazyLinks := 0
			for _, r := range cfg.Rules {
				mode := policyModes[rnd.Intn(len(policyModes))]
				policies[r.ID] = mode
				if mode != "push" {
					lazyLinks++
				}
			}
			if lazyLinks == 0 { // degenerate draw: force at least one lazy link
				policies[cfg.Rules[0].ID] = "pull"
			}
			lazy := networkFromTopo(t, cfg,
				NetworkOptions{Propagation: PropagationGroup{Policies: policies}},
				storage.Options{Shards: sc.shards})
			defer lazy.Close()
			full := networkFromTopo(t, cfg,
				NetworkOptions{FullExport: true, DisableSessionSnapshots: true},
				storage.Options{Shards: 1})
			defer full.Close()

			names := make([]string, 0, len(cfg.Nodes))
			for _, n := range cfg.Nodes {
				names = append(names, n.Name)
			}
			seed := workload.Generate(names, workload.Spec{TuplesPerNode: sc.tuples, Overlap: 0.2, Seed: sc.seed})
			for node, tuples := range seed {
				for _, nw := range []*Network{lazy, full} {
					if err := nw.Insert(node, "data", tuples...); err != nil {
						t.Fatal(err)
					}
				}
			}

			for round := 0; round < sc.rounds; round++ {
				if round > 0 {
					applyBurst(t, lazy, names, sc, round)
					applyBurst(t, full, names, sc, round)
				}
				origin := names[rnd.Intn(len(names))]
				if _, err := lazy.Update(ctxT(t), origin); err != nil {
					t.Fatalf("lazy update round %d: %v", round, err)
				}
				if _, err := full.Update(ctxT(t), origin); err != nil {
					t.Fatalf("reference update round %d: %v", round, err)
				}
				// Pull-effective links may lag until the catch-up pull.
				if _, err := lazy.CatchUp(ctxT(t)); err != nil {
					t.Fatalf("catch-up round %d: %v", round, err)
				}
				fi, ff := fingerprint(lazy), fingerprint(full)
				if !bytes.Equal(fi, ff) {
					t.Fatalf("round %d (origin %s, policies %v): caught-up lazy network diverged\nlazy:\n%s\nfull:\n%s",
						round, origin, policies, fi, ff)
				}
				for _, name := range names {
					for _, q := range diffQueries {
						al := answerSet(t, lazy, name, q, CertainAnswers)
						af := answerSet(t, full, name, q, CertainAnswers)
						if !equalKeys(al, af) {
							t.Fatalf("round %d: certain answers diverge at %s for %q: %d vs %d",
								round, name, q, len(al), len(af))
						}
					}
				}
			}
		})
	}
}

// TestDifferentialPropagationChurn churns the *exporter* of a pull link:
// after its extent has been pulled once (persisting the link's export
// watermark durably), the exporter leaves and rejoins as a new incarnation
// over the same durable directory. The next hint/pull cycle must resume
// from the restored watermark — shipping exactly the post-rejoin delta,
// not a full re-export — and the importer must still converge to the
// exporter's exact extent.
func TestDifferentialPropagationChurn(t *testing.T) {
	dirB := t.TempDir()
	nw := NewNetworkWithOptions(NetworkOptions{
		Propagation: PropagationGroup{Policies: map[string]string{"r1": "pull"}},
	})
	defer nw.Close()
	if _, err := nw.AddPeer("a", "data(x int, y int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddDurablePeer("b", dirB, "data(x int, y int)"); err != nil {
		t.Fatal(err)
	}
	nw.MustAddRule("r1", `a.data(x, y) <- b.data(x, y)`)

	const seeded = 30
	for i := 0; i < seeded; i++ {
		if err := nw.Insert("b", "data", Row(Int(i), Int(0))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Update(ctxT(t), "b"); err != nil {
		t.Fatal(err)
	}
	if got := nw.Peer("a").Count("data"); got != 0 {
		t.Fatalf("pull link leaked %d tuples eagerly", got)
	}
	if n, err := nw.CatchUp(ctxT(t)); err != nil || n != seeded {
		t.Fatalf("catch-up pulled %d tuples (err %v), want %d", n, err, seeded)
	}
	waitForFile(t, filepath.Join(dirB, "exports.state"))

	// The exporter churns: leave, rejoin over the same durable directory,
	// re-declare the rule (the network re-applies the pull policy).
	nw.RemovePeer("b")
	if _, err := nw.AddDurablePeer("b", dirB, "data(x int, y int)"); err != nil {
		t.Fatal(err)
	}
	nw.MustAddRule("r1", `a.data(x, y) <- b.data(x, y)`)

	const delta = 5
	for i := 0; i < delta; i++ {
		if err := nw.Insert("b", "data", Row(Int(1000+i), Int(1))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Update(ctxT(t), "b"); err != nil {
		t.Fatal(err)
	}
	st, ok := nw.PeerPropagationStats("a")
	if !ok {
		t.Fatal("no propagation stats at a")
	}
	var before uint64
	for _, l := range st.Links {
		if l.RuleID == "r1" {
			before = l.PulledTuples
		}
	}
	if n, err := nw.CatchUp(ctxT(t)); err != nil || n != delta {
		t.Fatalf("post-rejoin catch-up applied %d fresh tuples (err %v), want %d", n, err, delta)
	}
	st, _ = nw.PeerPropagationStats("a")
	for _, l := range st.Links {
		if l.RuleID == "r1" {
			// The pull resumed from the durable watermark: the response
			// carried only the post-rejoin delta, not the whole extent.
			if shipped := l.PulledTuples - before; shipped != delta {
				t.Errorf("post-rejoin pull shipped %d bindings, want %d (watermark not resumed)", shipped, delta)
			}
		}
	}
	if got, want := nw.Peer("a").Count("data"), seeded+delta; got != want {
		t.Fatalf("a.data = %d after churn catch-up, want %d", got, want)
	}
	ka := answerSet(t, nw, "a", diffQueries[0], AllAnswers)
	kb := answerSet(t, nw, "b", diffQueries[0], AllAnswers)
	if !equalKeys(ka, kb) {
		t.Fatalf("importer extent (%d) != churned exporter extent (%d)", len(ka), len(kb))
	}
}

// exportTotals sums fallback and incremental export counts across every
// peer's session reports, polling briefly so late-finalising participant
// reports are counted.
func exportTotals(t *testing.T, nw *Network, names []string) (fallbacks, incremental int) {
	t.Helper()
	stableFor := 0
	last := -1
	deadline := time.Now().Add(5 * time.Second)
	for {
		fallbacks, incremental = 0, 0
		total := 0
		for _, name := range names {
			for _, rep := range nw.Peer(name).Reports() {
				fallbacks += rep.ExportsFallback
				incremental += rep.ExportsIncremental
				total += rep.ExportsFallback + rep.ExportsIncremental + rep.ExportsFull
			}
		}
		if total == last {
			stableFor++
			if stableFor >= 3 {
				return fallbacks, incremental
			}
		} else {
			stableFor = 0
			last = total
		}
		if time.Now().After(deadline) {
			return fallbacks, incremental
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDifferentialConcurrentQueriesSandwich checks the concurrent read
// path against quiescent evaluation on randomized topologies: queries
// racing an update must return answer sets between the pre-update and
// post-quiescence sets, and post-quiescence snapshot answers must equal a
// direct evaluation over the raw database.
func TestDifferentialConcurrentQueriesSandwich(t *testing.T) {
	for _, sc := range diffScenarios(8) {
		sc := sc
		t.Run(fmt.Sprintf("%s/n=%d/seed=%d/shards=%d", sc.shape, sc.nodes, sc.seed, sc.shards), func(t *testing.T) {
			t.Parallel()
			cfg, err := topo.Build(sc.shape, sc.nodes, topo.Options{Seed: sc.seed})
			if err != nil {
				t.Fatal(err)
			}
			nw := networkFromTopo(t, cfg, NetworkOptions{EvalParallelism: sc.par}, storage.Options{Shards: sc.shards})
			defer nw.Close()
			names := make([]string, 0, len(cfg.Nodes))
			for _, n := range cfg.Nodes {
				names = append(names, n.Name)
			}
			seed := workload.Generate(names, workload.Spec{TuplesPerNode: 40, Overlap: 0.2, Seed: sc.seed})
			for node, tuples := range seed {
				if err := nw.Insert(node, "data", tuples...); err != nil {
					t.Fatal(err)
				}
			}
			applyBurst(t, nw, names, sc, 1)

			const query = `ans(x, y) :- data(x, y)`
			origin := names[0]
			pre := answerSet(t, nw, origin, query, AllAnswers)

			// Readers race the update.
			var wg sync.WaitGroup
			stop := make(chan struct{})
			var mu sync.Mutex
			var concurrent [][]string
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						got := answerSet(t, nw, origin, query, AllAnswers)
						mu.Lock()
						concurrent = append(concurrent, got)
						mu.Unlock()
					}
				}()
			}
			if _, err := nw.Update(ctxT(t), origin); err != nil {
				t.Fatal(err)
			}
			close(stop)
			wg.Wait()

			post := answerSet(t, nw, origin, query, AllAnswers)
			for i, got := range concurrent {
				if !subsetKeys(pre, got) {
					t.Fatalf("concurrent result %d lost pre-update answers (%d vs pre %d)", i, len(got), len(pre))
				}
				if !subsetKeys(got, post) {
					t.Fatalf("concurrent result %d contains answers absent after quiescence (%d vs post %d)", i, len(got), len(post))
				}
			}

			// Post-quiescence snapshot+cache answers == direct evaluation
			// over the raw instance (cache invalidation correctness).
			nw.mu.Lock()
			db := nw.dbs[origin]
			nw.mu.Unlock()
			direct, err := cq.Eval(cq.MustParseQuery(query), db.Instance(), cq.EvalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			directKeys := make([]string, len(direct))
			for i, r := range direct {
				directKeys[i] = r.Key()
			}
			sort.Strings(directKeys)
			if !equalKeys(post, directKeys) {
				t.Fatalf("post-quiescence snapshot answers (%d) != direct evaluation (%d)", len(post), len(directKeys))
			}
			// And the repeat is a cache hit that still matches.
			again := answerSet(t, nw, origin, query, AllAnswers)
			if !equalKeys(again, post) {
				t.Fatal("cached repeat diverged from post-quiescence answers")
			}
			if st, ok := nw.PeerReadStats(origin); !ok || st.Hits == 0 {
				t.Fatalf("expected cache hits at %s, stats %+v ok=%v", origin, st, ok)
			}
		})
	}
}
