package codb

// Race-stress test for snapshot-backed session evaluation: global update
// sessions continuously pin and re-pin storage snapshots (every
// materialising insert advances the LSN and forces a fresh pin) while a
// checkpoint storm pins its own snapshots and rewrites the durable state
// of the same databases, and concurrent readers take the snapshot read
// path. Exactly the interleavings of the per-shard COW views — primary
// and lazy secondary — that the write path now depends on. Run under
// -race in CI.

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSessionSnapshotCheckpointRaceStress(t *testing.T) {
	nw := NewNetworkWithOptions(NetworkOptions{
		Read:    ReadGroup{EvalParallelism: 4},
		Storage: StorageGroup{Shards: 4},
	})
	defer nw.Close()
	names := []string{"A", "B", "C"}
	for _, name := range names {
		if _, err := nw.AddDurablePeer(name, t.TempDir(), "data(k int, v int)"); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []struct{ id, text string }{
		{"r1", "A.data(k, v) <- B.data(k, v)"},
		{"r2", "B.data(k, v) <- C.data(k, v)"},
	} {
		if err := nw.AddRule(r.id, r.text); err != nil {
			t.Fatal(err)
		}
	}
	for i, name := range names {
		rows := make([]Tuple, 40)
		for j := range rows {
			rows[j] = Row(Int(i*10_000+j), Int(j))
		}
		if err := nw.Insert(name, "data", rows...); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Checkpoint storm: every database checkpoints as fast as it can,
	// each checkpoint pinning a snapshot and rewriting durable state
	// while sessions evaluate over their own pins.
	checkpoints := make([]atomic.Int64, len(names))
	for i, name := range names {
		db := nw.dbs[name]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for !stop.Load() {
				if err := db.Checkpoint(); err != nil {
					t.Errorf("checkpoint %s: %v", names[i], err)
					return
				}
				checkpoints[i].Add(1)
			}
		}(i)
	}

	// Readers on the concurrent snapshot path, sharing the COW views the
	// sessions pin.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := nw.LocalQuery("A", `ans(k) :- data(k, v), v >= 3`, AllAnswers); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}

	// Concurrent update sessions from two origins: each materialising
	// insert at an importer advances its LSN, so the session re-pins on
	// the next evaluation — racing the checkpointers invalidating and
	// rebuilding the same shard views.
	const rounds = 10
	var uwg sync.WaitGroup
	for w, origin := range []string{"C", "B"} {
		uwg.Add(1)
		go func(w int, origin string) {
			defer uwg.Done()
			for round := 0; round < rounds; round++ {
				rows := make([]Tuple, 8)
				for j := range rows {
					rows[j] = Row(Int(100_000+w*50_000+round*1_000+j), Int(round))
				}
				if err := nw.Insert(origin, "data", rows...); err != nil {
					t.Errorf("insert %s round %d: %v", origin, round, err)
					return
				}
				if _, err := nw.Update(ctxT(t), origin); err != nil {
					t.Errorf("update %s round %d: %v", origin, round, err)
					return
				}
			}
		}(w, origin)
	}
	uwg.Wait()
	stop.Store(true)
	wg.Wait()

	for i := range names {
		if checkpoints[i].Load() == 0 {
			t.Fatalf("checkpoint storm never ran at %s", names[i])
		}
	}
	// Quiescent sanity: one final serial update settles the network, then
	// every tuple of C must have reached B and A (set semantics make the
	// count check exact: A ⊇ B ⊇ C).
	if _, err := nw.Update(ctxT(t), "C"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Update(ctxT(t), "B"); err != nil {
		t.Fatal(err)
	}
	cntA, cntB, cntC := nw.Peer("A").Count("data"), nw.Peer("B").Count("data"), nw.Peer("C").Count("data")
	if cntB < cntC || cntA < cntB {
		t.Fatalf("materialisation incomplete after stress: A=%d B=%d C=%d", cntA, cntB, cntC)
	}
}
