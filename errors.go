package codb

import (
	"errors"
	"fmt"

	httpapi "codb/internal/api/http"
	"codb/internal/cq"
	"codb/internal/peer"
)

// Sentinel errors of the public API, for errors.Is. The HTTP gateway maps
// them to status codes: ErrBadQuery 400, ErrUnknownPeer 404, ErrPeerClosed
// 503.
var (
	// ErrUnknownPeer matches errors returned when an operation names a
	// node the network does not run.
	ErrUnknownPeer = errors.New("codb: unknown peer")
	// ErrBadQuery matches parse and validation failures of queries, rules
	// and malformed API requests.
	ErrBadQuery = cq.ErrBadQuery
	// ErrPeerClosed matches operations posted to a peer that has stopped.
	ErrPeerClosed = peer.ErrStopped
)

// unknownPeerError carries the node name and matches both the public
// sentinel and the gateway's, so HTTP resolvers built on Network map to
// 404 without the gateway importing this package.
type unknownPeerError struct{ node string }

func (e *unknownPeerError) Error() string { return fmt.Sprintf("codb: unknown peer %q", e.node) }
func (e *unknownPeerError) Is(target error) bool {
	return target == ErrUnknownPeer || target == httpapi.ErrUnknownNode
}

func unknownPeer(node string) error { return &unknownPeerError{node: node} }
