package codb

import (
	"context"
	"strings"
	"testing"
	"time"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestNetworkQuickstartFlow(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	nw.MustAddPeer("hospital", "patient(id int, name string)")
	nw.MustAddPeer("clinic", "visitor(id int, name string)")
	nw.MustAddRule("r1", `hospital.patient(x, n) <- clinic.visitor(x, n)`)
	if err := nw.Insert("clinic", "visitor", Row(Int(1), Str("ann")), Row(Int(2), Str("bob"))); err != nil {
		t.Fatal(err)
	}
	rep, err := nw.Update(ctxT(t), "hospital")
	if err != nil {
		t.Fatal(err)
	}
	if rep.NewTuples != 2 {
		t.Errorf("NewTuples = %d", rep.NewTuples)
	}
	rows, err := nw.LocalQuery("hospital", `ans(n) :- patient(x, n)`, AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestNetworkDistributedQuery(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int)")
	nw.MustAddPeer("b", "r(x int)")
	nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)
	nw.Insert("b", "r", Row(Int(5)))
	rows, err := nw.Query(ctxT(t), "a", `ans(x) :- r(x)`, AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != Int(5) {
		t.Errorf("rows = %v", rows)
	}
	// LDB untouched by the query.
	local, _ := nw.LocalQuery("a", `ans(x) :- r(x)`, AllAnswers)
	if len(local) != 0 {
		t.Errorf("local rows = %v", local)
	}
}

func TestNetworkQueryStream(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int)")
	nw.MustAddPeer("b", "r(x int)")
	nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)
	for i := 0; i < 20; i++ {
		nw.Insert("b", "r", Row(Int(i)))
	}
	answers, done, err := nw.QueryStream("a", `ans(x) :- r(x)`, AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range answers {
		n++
	}
	rep := <-done
	if n != 20 || rep.SID == "" {
		t.Errorf("streamed %d answers, report %+v", n, rep)
	}
}

func TestNetworkFromConfig(t *testing.T) {
	nw, err := NewNetworkFromConfig(`version 1
node a
  rel r(x int)
end
node b
  rel r(x int)
end
rule r1: a.r(x) <- b.r(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.Insert("b", "r", Row(Int(1)))
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	rows, _ := nw.LocalQuery("a", `ans(x) :- r(x)`, AllAnswers)
	if len(rows) != 1 {
		t.Errorf("rows = %v", rows)
	}
	if len(nw.Peers()) != 2 {
		t.Errorf("Peers = %v", nw.Peers())
	}
}

func TestNetworkMediator(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int)")
	if _, err := nw.AddMediator("m", "r(x int)"); err != nil {
		t.Fatal(err)
	}
	nw.MustAddPeer("c", "r(x int)")
	nw.MustAddRule("r1", `a.r(x) <- m.r(x)`)
	nw.MustAddRule("r2", `m.r(x) <- c.r(x)`)
	nw.Insert("c", "r", Row(Int(7)))
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	rows, _ := nw.LocalQuery("a", `ans(x) :- r(x)`, AllAnswers)
	if len(rows) != 1 {
		t.Errorf("rows through mediator = %v", rows)
	}
}

func TestNetworkDurablePeer(t *testing.T) {
	dir := t.TempDir()
	nw := NewNetwork()
	nw2 := NewNetwork()
	defer nw.Close()
	defer nw2.Close()
	if _, err := nw.AddDurablePeer("d", dir, "r(x int)"); err != nil {
		t.Fatal(err)
	}
	nw.Insert("d", "r", Row(Int(42)))
	nw.Close()

	// Restart: state must be recovered from the WAL.
	if _, err := nw2.AddDurablePeer("d", dir, "r(x int)"); err != nil {
		t.Fatal(err)
	}
	rows, err := nw2.LocalQuery("d", `ans(x) :- r(x)`, AllAnswers)
	if err != nil || len(rows) != 1 {
		t.Errorf("recovered rows = %v, %v", rows, err)
	}
}

func TestNetworkSuperPeer(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int)")
	nw.MustAddPeer("b", "r(x int)")
	nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)
	nw.Insert("b", "r", Row(Int(1)))
	sp, err := nw.SuperPeer()
	if err != nil {
		t.Fatal(err)
	}
	if sp2, _ := nw.SuperPeer(); sp2 != sp {
		t.Error("SuperPeer not memoised")
	}
	rep, err := sp.StartUpdate(ctxT(t), "a")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Origin != "a" {
		t.Errorf("report = %+v", rep)
	}
}

func TestNetworkErrors(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int)")
	if _, err := nw.AddPeer("a", "r(x int)"); err == nil {
		t.Error("duplicate peer accepted")
	}
	if _, err := nw.AddPeer("bad", "r(x blob)"); err == nil {
		t.Error("bad declaration accepted")
	}
	if err := nw.AddRule("r1", `a.r(x) <- ghost.r(x)`); err == nil {
		t.Error("rule to missing peer accepted")
	}
	if err := nw.AddRule("r1", "nonsense"); err == nil {
		t.Error("unparsable rule accepted")
	}
	if err := nw.Insert("ghost", "r", Row(Int(1))); err == nil {
		t.Error("insert into missing peer accepted")
	}
	if _, err := nw.Update(ctxT(t), "ghost"); err == nil {
		t.Error("update at missing peer accepted")
	}
	if _, err := nw.Query(ctxT(t), "ghost", `ans(x) :- r(x)`, AllAnswers); err == nil {
		t.Error("query at missing peer accepted")
	}
	if _, err := nw.Query(ctxT(t), "a", `broken`, AllAnswers); err == nil {
		t.Error("broken query accepted")
	}
	if _, err := nw.LocalQuery("ghost", `ans(x) :- r(x)`, AllAnswers); err == nil {
		t.Error("local query at missing peer accepted")
	}
	if _, _, err := nw.QueryStream("ghost", `ans(x) :- r(x)`, AllAnswers); err == nil {
		t.Error("stream at missing peer accepted")
	}
	if _, err := NewNetworkFromConfig("garbage"); err == nil {
		t.Error("garbage config accepted")
	}
}

func TestNetworkRemovePeer(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int)")
	nw.MustAddPeer("b", "r(x int)")
	nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)
	nw.RemovePeer("b")
	if nw.Peer("b") != nil {
		t.Error("b still present")
	}
	// Updates still terminate without b (compensation).
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkCyclicExistentialTerminates(t *testing.T) {
	nw := NewNetworkWithOptions(NetworkOptions{MaxDepth: 3})
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int, z int)")
	nw.MustAddPeer("b", "s(x int)")
	nw.MustAddRule("r1", `a.r(x, z) <- b.s(x)`)
	nw.MustAddRule("r2", `b.s(z) <- a.r(x, z)`)
	nw.Insert("b", "s", Row(Int(1)))
	rep, err := nw.Update(ctxT(t), "a")
	if err != nil {
		t.Fatal(err)
	}
	if rep.SID == "" {
		t.Error("no report")
	}
	rows, _ := nw.LocalQuery("a", `ans(x, z) :- r(x, z)`, AllAnswers)
	if len(rows) != 3 {
		t.Errorf("a.r = %v (depth 3)", rows)
	}
}

func TestNetworkScopedUpdate(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int)", "z(x int)")
	nw.MustAddPeer("b", "r(x int)", "z(x int)")
	nw.MustAddRule("rr", `a.r(x) <- b.r(x)`)
	nw.MustAddRule("rz", `a.z(x) <- b.z(x)`)
	nw.Insert("b", "r", Row(Int(1)))
	nw.Insert("b", "z", Row(Int(2)))
	rep, err := nw.ScopedUpdate(ctxT(t), "a", "r")
	if err != nil {
		t.Fatal(err)
	}
	if rep.SID == "" {
		t.Error("no report")
	}
	rRows, _ := nw.LocalQuery("a", `ans(x) :- r(x)`, AllAnswers)
	zRows, _ := nw.LocalQuery("a", `ans(x) :- z(x)`, AllAnswers)
	if len(rRows) != 1 || len(zRows) != 0 {
		t.Errorf("scoped update: r=%v z=%v", rRows, zRows)
	}
	if _, err := nw.ScopedUpdate(ctxT(t), "ghost", "r"); err == nil {
		t.Error("scoped update at missing peer accepted")
	}
}

func TestRowAndValueHelpers(t *testing.T) {
	r := Row(Int(1), Float(2.5), Str("x"), Bool(true), Null("n"))
	if len(r) != 5 || !strings.Contains(r.String(), "2.5") {
		t.Errorf("Row = %v", r)
	}
	if _, err := ParseConfig("version 1\n"); err != nil {
		t.Errorf("ParseConfig: %v", err)
	}
}
