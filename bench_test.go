// Benchmark harness regenerating the paper's §4 experiment programme
// (DESIGN.md, experiments E1–E7 and ablations A1–A4). Each benchmark
// reports, besides ns/op, the statistics the coDB statistical module
// collects: data messages (msgs/op), shipped volume (bytes/op), and the
// longest update propagation path (maxpath).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package codb

import (
	"context"
	"fmt"
	"testing"

	"codb/internal/experiment"
	"codb/internal/topo"
)

func reportUpdateMetrics(b *testing.B, res experiment.Result) {
	b.Helper()
	b.ReportMetric(float64(res.TotalMsgs), "msgs/op")
	b.ReportMetric(float64(res.TotalBytes), "xferbytes/op")
	b.ReportMetric(float64(res.MaxPath), "maxpath")
	b.ReportMetric(float64(res.NewTuples), "newtuples/op")
}

func runUpdateBench(b *testing.B, p experiment.Params) {
	b.Helper()
	ctx := context.Background()
	var last experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunUpdate(ctx, p)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportUpdateMetrics(b, last)
}

// E1–E4: global update across topologies and network sizes. One run
// measures the update's total execution time (E1); the reported metrics
// carry messages per rule (E2), data volume (E3) and longest propagation
// path (E4).
func BenchmarkUpdateTopology(b *testing.B) {
	shapes := []topo.Shape{topo.Chain, topo.Ring, topo.Star, topo.Tree, topo.Random}
	for _, shape := range shapes {
		for _, n := range []int{4, 8, 16, 32} {
			b.Run(fmt.Sprintf("%s/n=%d", shape, n), func(b *testing.B) {
				runUpdateBench(b, experiment.Params{
					Shape: shape, Nodes: n, TuplesPerNode: 250, Overlap: 0.1, Seed: 42,
				})
			})
		}
	}
}

// E1 (scaling in data size): chain of 8, growing per-node cardinality.
func BenchmarkUpdateDataScale(b *testing.B) {
	for _, tuples := range []int{100, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("tuples=%d", tuples), func(b *testing.B) {
			runUpdateBench(b, experiment.Params{
				Shape: topo.Chain, Nodes: 8, TuplesPerNode: tuples, Seed: 43,
			})
		})
	}
}

// E5: query-time fetching vs local query after a global update — the
// paper's core motivation for materialisation.
func BenchmarkQueryColdVsMaterialised(b *testing.B) {
	p := experiment.Params{Shape: topo.Chain, Nodes: 8, TuplesPerNode: 500, Seed: 44}
	ctx := context.Background()
	b.Run("cold-distributed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := experiment.RunQueryCold(ctx, p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Answers), "answers")
		}
	})
	b.Run("materialised-local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := experiment.RunQueryMaterialised(ctx, p)
			if err != nil {
				b.Fatal(err)
			}
			// res.Wall covers only the local query; surface it.
			b.ReportMetric(float64(res.Wall.Nanoseconds()), "localquery-ns")
			b.ReportMetric(float64(res.Answers), "answers")
		}
	})
}

// Fan-out over loopback TCP: one initiator exporting to N acquaintances —
// the outbound pipeline's stress shape. "batched" is the default
// asynchronous per-destination outbox with frame coalescing; "unbatched"
// the synchronous per-message baseline (Params.DisableOutbox). frames/op
// vs msgs/op shows the frames-on-the-wire reduction from coalescing.
func BenchmarkFanoutBatching(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{4, 16, 64} {
		for _, mode := range []struct {
			name      string
			unbatched bool
		}{{"batched", false}, {"unbatched", true}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				// FullExport keeps every iteration re-shipping the full
				// frontier; the benchmark measures the outbound pipeline,
				// not the incremental-export watermarks.
				net, err := experiment.Build(experiment.Params{
					Shape: topo.Fanout, Nodes: n + 1, TuplesPerNode: 5, FanRules: 32, Seed: 51,
					TCP: true, DisableOutbox: mode.unbatched, FullExport: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer net.Close()
				b.ResetTimer()
				var last experiment.Result
				for i := 0; i < b.N; i++ {
					res, err := experiment.RunUpdateOn(ctx, net)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.StopTimer()
				reportUpdateMetrics(b, last)
				b.ReportMetric(float64(last.Frames), "frames/op")
				b.ReportMetric(float64(last.WireBytes), "wirebytes/op")
			})
		}
	}
}

// E6: dynamic topology change at runtime via the super-peer.
func BenchmarkDynamicReconfig(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		net, err := experiment.Build(experiment.Params{
			Shape: topo.Chain, Nodes: 8, TuplesPerNode: 100, Seed: 45,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Reconfigure to a star mid-life, then update: must terminate and
		// materialise under the new shape.
		starCfg, err := topo.Build(topo.Star, 8, topo.Options{Version: 2})
		if err != nil {
			net.Close()
			b.Fatal(err)
		}
		for _, pr := range net.Peers {
			if err := pr.ApplyConfig(starCfg, 2); err != nil {
				net.Close()
				b.Fatal(err)
			}
		}
		if _, err := net.Peers[net.Origin].RunUpdate(ctx); err != nil {
			net.Close()
			b.Fatal(err)
		}
		net.Close()
	}
}

// E7: cyclic rule graphs — rings with copy rules and with existential
// rules (the fix-point case the paper highlights).
func BenchmarkCyclicFixpoint(b *testing.B) {
	for _, n := range []int{3, 6, 12} {
		b.Run(fmt.Sprintf("copy-ring/n=%d", n), func(b *testing.B) {
			runUpdateBench(b, experiment.Params{
				Shape: topo.Ring, Nodes: n, TuplesPerNode: 100, Seed: 46,
			})
		})
		b.Run(fmt.Sprintf("existential-ring/n=%d", n), func(b *testing.B) {
			runUpdateBench(b, experiment.Params{
				Shape: topo.Ring, Nodes: n, TuplesPerNode: 100, Seed: 46,
				Existential: true, MaxDepth: 8,
			})
		})
	}
}

// A1: semi-naive delta propagation vs naive full re-evaluation.
func BenchmarkAblationSemiNaive(b *testing.B) {
	base := experiment.Params{Shape: topo.Ring, Nodes: 8, TuplesPerNode: 300, Seed: 47}
	b.Run("semi-naive", func(b *testing.B) { runUpdateBench(b, base) })
	naive := base
	naive.Naive = true
	b.Run("naive", func(b *testing.B) { runUpdateBench(b, naive) })
}

// A2: per-link sent caches (duplicate suppression) on vs off. Projection
// rules with key-clashing data re-derive the same imported tuple from many
// distinct source tuples — exactly what the sent caches suppress.
func BenchmarkAblationDedup(b *testing.B) {
	base := experiment.Params{
		Shape: topo.Chain, Nodes: 6, TuplesPerNode: 400,
		Rule: topo.ProjectionRule, KeyClash: 0.8, Seed: 48,
	}
	b.Run("dedup", func(b *testing.B) { runUpdateBench(b, base) })
	off := base
	off.DisableDedup = true
	b.Run("no-dedup", func(b *testing.B) { runUpdateBench(b, off) })
}

// A3: hash join vs nested-loop join, on join rules (self-join bodies) over
// a small value domain so the joins have partners.
func BenchmarkAblationJoin(b *testing.B) {
	base := experiment.Params{
		Shape: topo.Chain, Nodes: 3, TuplesPerNode: 400,
		Rule: topo.JoinRule, Domain: 200, Seed: 49,
	}
	b.Run("hash", func(b *testing.B) { runUpdateBench(b, base) })
	nested := base
	nested.NestedLoop = true
	b.Run("nested-loop", func(b *testing.B) { runUpdateBench(b, nested) })
}

// A4: marked-null cost — copy rules vs existential rules on the same
// topology and data.
func BenchmarkAblationNulls(b *testing.B) {
	base := experiment.Params{Shape: topo.Tree, Nodes: 7, TuplesPerNode: 300, Seed: 50}
	b.Run("copy-rules", func(b *testing.B) { runUpdateBench(b, base) })
	ex := base
	ex.Existential = true
	b.Run("existential-rules", func(b *testing.B) { runUpdateBench(b, ex) })
}
