package codb

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// sessionReport finds a peer's report for the given session ID, waiting out
// the completion flood (participants finalise shortly after the initiator).
func sessionReport(t *testing.T, p *Peer, sid string) Report {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, rep := range p.Reports() {
			if rep.SID == sid {
				return rep
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer %s has no report for session %s", p.Name(), sid)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitForFile polls until the file exists (the exporter writes its state
// when the completion flood reaches it, after the initiator returned).
func waitForFile(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never appeared", path)
		}
		time.Sleep(time.Millisecond)
	}
}

func buildDurablePair(t *testing.T, dirA, dirB string) *Network {
	return buildDurablePairOpts(t, dirA, dirB, NetworkOptions{})
}

func buildDurablePairOpts(t *testing.T, dirA, dirB string, opts NetworkOptions) *Network {
	t.Helper()
	nw := NewNetworkWithOptions(opts)
	if _, err := nw.AddDurablePeer("a", dirA, "r(x int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddDurablePeer("b", dirB, "r(x int)"); err != nil {
		t.Fatal(err)
	}
	nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)
	return nw
}

// TestRestartRestoresExportWatermarks: a peer reopened from disk resumes
// incremental export — the second process life ships only the tuples
// committed after the first life's update.
func TestRestartRestoresExportWatermarks(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()

	nw := buildDurablePair(t, dirA, dirB)
	for i := 0; i < 40; i++ {
		if err := nw.Insert("b", "r", Row(Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	if got := nw.Peer("a").Count("r"); got != 40 {
		t.Fatalf("a.r after first update = %d", got)
	}
	if wm := nw.Peer("b").ExportWatermarks()["r1"]; wm == 0 {
		t.Fatal("exporter has no watermark after a materialising session")
	}
	waitForFile(t, filepath.Join(dirB, "exports.state"))
	nw.Close() // checkpoints both stores

	// Second process life over the same directories.
	nw2 := buildDurablePair(t, dirA, dirB)
	defer nw2.Close()
	if wm := nw2.Peer("b").ExportWatermarks()["r1"]; wm == 0 {
		t.Fatal("reopened exporter did not restore its watermark")
	}
	for i := 100; i < 105; i++ {
		if err := nw2.Insert("b", "r", Row(Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := nw2.Update(ctxT(t), "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := nw2.Peer("a").Count("r"); got != 45 {
		t.Fatalf("a.r after restart update = %d, want 45 (no missing tuples)", got)
	}
	repB := sessionReport(t, nw2.Peer("b"), rep.SID)
	if repB.ExportsIncremental != 1 {
		t.Errorf("restarted exporter ran %d incremental exports, want 1 (full=%d fallback=%d)",
			repB.ExportsIncremental, repB.ExportsFull, repB.ExportsFallback)
	}
	repA := sessionReport(t, nw2.Peer("a"), rep.SID)
	got := 0
	for _, n := range repA.TuplesPerRule {
		got += n
	}
	if got != 5 {
		t.Errorf("restart session shipped %d tuples, want exactly the 5 new ones", got)
	}
}

// TestRestartServesSpilledHistory: the exporter's watermark ends up below
// both the in-memory changelog ring (tiny ChangelogLimit, evicted by
// later traffic) and the checkpoint LSN (commits after the last update,
// checkpointed by Close). Before changelog spill this degraded to a
// history-lost full export; now the delta must be served from retained
// WAL segments across the restart, shipping exactly the new tuples.
func TestRestartServesSpilledHistory(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	opts := NetworkOptions{ChangelogLimit: 4, SegmentBytes: 256}

	nw := buildDurablePairOpts(t, dirA, dirB, opts)
	for i := 0; i < 30; i++ {
		if err := nw.Insert("b", "r", Row(Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	// Post-update commits push the watermark out of the 4-entry ring and
	// below the Close checkpoint.
	for i := 100; i < 120; i++ {
		if err := nw.Insert("b", "r", Row(Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitForFile(t, filepath.Join(dirB, "exports.state"))
	nw.Close() // checkpoints both stores; segments are retained, not reset

	nw2 := buildDurablePairOpts(t, dirA, dirB, opts)
	defer nw2.Close()
	if wm := nw2.Peer("b").ExportWatermarks()["r1"]; wm == 0 {
		t.Fatal("reopened exporter did not restore its watermark")
	}
	rep, err := nw2.Update(ctxT(t), "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := nw2.Peer("a").Count("r"); got != 50 {
		t.Fatalf("a.r after restart update = %d, want 50", got)
	}
	repB := sessionReport(t, nw2.Peer("b"), rep.SID)
	if repB.ExportsIncremental != 1 || repB.ExportsFallback != 0 || repB.ExportsFull != 0 {
		t.Errorf("restarted exporter: incr=%d fallback=%d full=%d, want a spill-served incremental export",
			repB.ExportsIncremental, repB.ExportsFallback, repB.ExportsFull)
	}
	repA := sessionReport(t, nw2.Peer("a"), rep.SID)
	shipped := 0
	for _, n := range repA.TuplesPerRule {
		shipped += n
	}
	if shipped != 20 {
		t.Errorf("restart session shipped %d tuples, want exactly the 20 new ones", shipped)
	}
	// The delta really came off disk.
	if st, ok := nw2.PeerStorageStats("b"); !ok || st.SpillHits == 0 {
		t.Errorf("exporter served no Changes from spilled segments: %+v ok=%v", st, ok)
	}
}

// TestRestartWithoutStateDegradesToFullExport: with the export-state file
// gone, the reopened peer must fall back to a full export and still leave
// the importer complete — persistence is an optimisation, never a
// correctness dependency.
func TestRestartWithoutStateDegradesToFullExport(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()

	nw := buildDurablePair(t, dirA, dirB)
	for i := 0; i < 20; i++ {
		if err := nw.Insert("b", "r", Row(Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	waitForFile(t, filepath.Join(dirB, "exports.state"))
	nw.Close()

	// Lose the optimisation state (crash before rename, manual cleanup…).
	if err := os.Remove(filepath.Join(dirB, "exports.state")); err != nil {
		t.Fatal(err)
	}

	nw2 := buildDurablePair(t, dirA, dirB)
	defer nw2.Close()
	if err := nw2.Insert("b", "r", Row(Int(999))); err != nil {
		t.Fatal(err)
	}
	rep, err := nw2.Update(ctxT(t), "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := nw2.Peer("a").Count("r"); got != 21 {
		t.Fatalf("a.r = %d, want 21 (degraded restart must not lose tuples)", got)
	}
	repB := sessionReport(t, nw2.Peer("b"), rep.SID)
	if repB.ExportsFull != 1 {
		t.Errorf("degraded exporter: full=%d incr=%d fallback=%d, want a full export",
			repB.ExportsFull, repB.ExportsIncremental, repB.ExportsFallback)
	}
}

// TestRestartCorruptStateDegrades: a corrupt state file is ignored (full
// export), not fatal.
func TestRestartCorruptStateDegrades(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()

	nw := buildDurablePair(t, dirA, dirB)
	if err := nw.Insert("b", "r", Row(Int(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	nw.Close()

	if err := os.WriteFile(filepath.Join(dirB, "exports.state"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	nw2 := buildDurablePair(t, dirA, dirB)
	defer nw2.Close()
	rep, err := nw2.Update(ctxT(t), "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := nw2.Peer("a").Count("r"); got != 1 {
		t.Fatalf("a.r = %d, want 1", got)
	}
	repB := sessionReport(t, nw2.Peer("b"), rep.SID)
	if repB.ExportsFull != 1 {
		t.Errorf("corrupt-state exporter: full=%d, want 1", repB.ExportsFull)
	}
}

// TestLeaveThenRejoinDurableResumesIncremental: a peer that leaves the
// network and rejoins over its own durable directory must pick up where it
// left off — the rejoin itself does not reset the rejoiner's export state,
// so the next session ships exactly one export per rule: incrementally
// (just the delta) or, at worst, one full export. Never both.
func TestLeaveThenRejoinDurableResumesIncremental(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	nw := buildDurablePair(t, dirA, dirB)
	defer nw.Close()
	for i := 0; i < 30; i++ {
		if err := nw.Insert("b", "r", Row(Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	waitForFile(t, filepath.Join(dirB, "exports.state"))

	// b departs; a tombstones it and resets its own state toward b.
	nw.RemovePeer("b")
	// …and rejoins over the same durable directory (a new incarnation of
	// the same data), re-declaring its rule.
	if _, err := nw.AddDurablePeer("b", dirB, "r(x int)"); err != nil {
		t.Fatal(err)
	}
	nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)
	for i := 100; i < 105; i++ {
		if err := nw.Insert("b", "r", Row(Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := nw.Update(ctxT(t), "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Peer("a").Count("r"); got != 35 {
		t.Fatalf("a.r = %d after rejoin update, want 35", got)
	}
	repB := sessionReport(t, nw.Peer("b"), rep.SID)
	exports := repB.ExportsIncremental + repB.ExportsFull + repB.ExportsFallback
	if exports != 1 {
		t.Errorf("rejoined exporter ran %d exports (incr=%d full=%d fallback=%d), want exactly one",
			exports, repB.ExportsIncremental, repB.ExportsFull, repB.ExportsFallback)
	}
	if repB.ExportsIncremental == 1 {
		// Resumed incrementally: only the 5 post-rejoin tuples shipped.
		repA := sessionReport(t, nw.Peer("a"), rep.SID)
		shipped := 0
		for _, n := range repA.TuplesPerRule {
			shipped += n
		}
		if shipped != 5 {
			t.Errorf("rejoin session shipped %d tuples, want exactly the 5 new ones", shipped)
		}
	}
}

// TestRecreatedImporterGetsFullReexport: when a peer leaves and a fresh one
// takes its name, the exporters must not assume anything is already
// materialised there — RemovePeer resets their export state toward the
// departed name, so the next session re-exports in full.
func TestRecreatedImporterGetsFullReexport(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int)")
	nw.MustAddPeer("b", "r(x int)")
	nw.MustAddRule("r1", `b.r(x) <- a.r(x)`)
	for i := 0; i < 10; i++ {
		if err := nw.Insert("a", "r", Row(Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Update(ctxT(t), "b"); err != nil {
		t.Fatal(err)
	}
	if got := nw.Peer("b").Count("r"); got != 10 {
		t.Fatalf("b.r = %d before restart", got)
	}

	nw.RemovePeer("b")
	nw.MustAddPeer("b", "r(x int)")
	nw.MustAddRule("r1", `b.r(x) <- a.r(x)`)
	if _, err := nw.Update(ctxT(t), "b"); err != nil {
		t.Fatal(err)
	}
	if got := nw.Peer("b").Count("r"); got != 10 {
		t.Fatalf("recreated b.r = %d, want 10 (exporter state toward b must have been reset)", got)
	}
}
