// Command codb-gen emits coordination-rules configuration files for the
// standard experiment topologies, optionally assigning TCP listen addresses
// so the file can drive a multi-process deployment with codb-peer and
// codb-super.
//
// Usage:
//
//	codb-gen -shape chain -n 8 > chain8.codb
//	codb-gen -shape random -n 16 -seed 7 -addr-base 127.0.0.1:7000 > net.codb
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"

	"codb/internal/topo"
)

func main() {
	shape := flag.String("shape", "chain", "topology: chain|ring|star|tree|grid|random|complete|fanout")
	n := flag.Int("n", 4, "number of peers")
	seed := flag.Int64("seed", 1, "seed for random topologies")
	existential := flag.Bool("existential", false, "use existential-head rules (marked nulls)")
	addrBase := flag.String("addr-base", "", "assign TCP addresses host:port, port+i per node (empty = none)")
	version := flag.Int("version", 1, "configuration version")
	flag.Parse()

	cfg, err := topo.Build(topo.Shape(*shape), *n, topo.Options{
		Existential: *existential,
		Seed:        *seed,
		Version:     *version,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-gen:", err)
		os.Exit(2)
	}
	if *addrBase != "" {
		host, portStr, err := net.SplitHostPort(*addrBase)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codb-gen: bad -addr-base:", err)
			os.Exit(2)
		}
		port, err := strconv.Atoi(portStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codb-gen: bad -addr-base port:", err)
			os.Exit(2)
		}
		for i := range cfg.Nodes {
			cfg.Nodes[i].Addr = net.JoinHostPort(host, strconv.Itoa(port+i))
		}
	}
	fmt.Print(cfg.String())
}
