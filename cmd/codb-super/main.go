// Command codb-super runs the super-peer against a TCP deployment of
// codb-peer processes: it broadcasts a coordination-rules file (initially
// and at runtime, changing the topology), triggers global updates on chosen
// nodes, and collects the final statistical report (paper §4).
//
// Usage:
//
//	codb-super -config net.codb -update N0          # broadcast, update, stats
//	codb-super -config net2.codb                    # re-broadcast (reconfig)
//	codb-super -config net.codb -stats              # stats only
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"codb/internal/config"
	"codb/internal/superpeer"
	"codb/internal/transport"
)

func main() {
	cfgPath := flag.String("config", "", "network configuration file (required)")
	updateAt := flag.String("update", "", "run a global update initiated at this node")
	statsOnly := flag.Bool("stats", false, "only collect and print statistics")
	version := flag.Int("version", 0, "broadcast version (defaults to the file's)")
	timeout := flag.Duration("timeout", 2*time.Minute, "operation timeout")
	flag.Parse()
	if *cfgPath == "" {
		fmt.Fprintln(os.Stderr, "codb-super: -config is required")
		os.Exit(2)
	}
	text, err := os.ReadFile(*cfgPath)
	if err != nil {
		fatal(err)
	}
	cfg, err := config.Parse(string(text))
	if err != nil {
		fatal(err)
	}
	if *version != 0 {
		cfg.Version = *version
	}

	tr, err := transport.NewTCP("super", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("codb-super listening on %s\n", tr.Addr())
	sp, err := superpeer.New(superpeer.Options{
		Transport: tr,
		Directory: cfg.Directory(),
		Addr:      tr.Addr(),
	})
	if err != nil {
		fatal(err)
	}
	defer sp.Stop()
	sp.SetConfig(cfg)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if !*statsOnly {
		if err := sp.Broadcast(); err != nil {
			fatal(err)
		}
		fmt.Printf("codb-super: broadcast configuration v%d to %d peers\n", cfg.Version, len(cfg.Nodes))
		// Give the flood a moment to settle before commanding updates.
		time.Sleep(200 * time.Millisecond)
	}

	if *updateAt != "" {
		start := time.Now()
		rep, err := sp.StartUpdate(ctx, *updateAt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("codb-super: update %s at %s finished in %v (longest path %d)\n",
			rep.SID, *updateAt, time.Since(start).Round(time.Millisecond), rep.LongestPath)
	}

	statsCtx, statsCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer statsCancel()
	byNode, err := sp.CollectStats(statsCtx, len(cfg.Nodes))
	fmt.Print(superpeer.Render(superpeer.AggregateSessions(byNode)))
	if err != nil {
		// Render what arrived, but exit non-zero: scripts driving the
		// experiment must see that the statistics are incomplete.
		fmt.Fprintln(os.Stderr, "codb-super: partial statistics:", err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "codb-super:", err)
	os.Exit(1)
}
