// Command codb-peer runs one coDB node as an OS process over TCP — the
// deployment the paper's JXTA peers correspond to. Peers are configured
// from a shared configuration file (schemas, rules, addresses) or
// dynamically by a super-peer broadcast.
//
// Usage:
//
//	codb-peer -name N1 -config net.codb            # address from the file
//	codb-peer -name N2 -config net.codb -data ./n2 # durable storage
//	codb-peer -name N3 -listen 127.0.0.1:7003      # wait for broadcasts
//	codb-peer -name N4 -http 127.0.0.1:8080        # + HTTP/JSON gateway
//	codb-peer -name N5 -join 127.0.0.1:7001        # join a live network
//
// The process runs until interrupted. With -mediator the node has no local
// database (operations execute in the wrapper). With -http the node also
// serves the HTTP/JSON gateway (query, insert, update, stats, health; see
// internal/api/http) on the given address.
//
// With -join the peer needs no configuration file: it dials the given
// admitting peer (super-peer or any network member), is admitted at a fresh
// directory epoch, and receives the current rules and directory over the
// wire. With -leave-on-signal the peer departs cleanly when interrupted: it
// floods a Leave notice and flushes its outbox, so survivors tombstone it
// instead of timing out on a dead address.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	httpapi "codb/internal/api/http"
	"codb/internal/config"
	"codb/internal/core"
	"codb/internal/peer"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/transport"
)

func main() {
	name := flag.String("name", "", "node name (required)")
	listen := flag.String("listen", "", "listen address (defaults to the address in -config)")
	cfgPath := flag.String("config", "", "network configuration file")
	dataDir := flag.String("data", "", "durable storage directory (empty = in-memory)")
	shards := flag.Int("shards", 0, "hash shards per relation (0 = recovered count, else 1)")
	syncCommit := flag.Bool("sync-commit", false, "make every commit durable before it returns (group-committed)")
	noGroupCommit := flag.Bool("no-group-commit", false, "disable the WAL group-commit pipeline (one fsync per commit with -sync-commit)")
	segmentBytes := flag.Int64("segment-bytes", 0, "WAL segment rotation size in bytes (0 = default)")
	retainSegments := flag.Int("retain-segments", 0, "checkpoint-superseded WAL segments kept for changelog spill (0 = default, negative = none)")
	httpAddr := flag.String("http", "", "serve the HTTP/JSON gateway on this address (empty = no gateway)")
	evalParallelism := flag.Int("eval-parallelism", 0, "hash-join fan-out for rule/query evaluation (0/1 = serial)")
	noSessionSnapshots := flag.Bool("no-session-snapshots", false, "evaluate update sessions over the live wrapper instead of pinned snapshots")
	mediator := flag.Bool("mediator", false, "run without a local database")
	var linkPolicies linkPolicyFlags
	flag.Var(&linkPolicies, "link-policy", "per-link propagation policy rule=mode[:filter], mode push|pull|adaptive|filter (repeatable)")
	maxStaleness := flag.Duration("max-staleness", 0, "deadline after which a stale pull link is pulled without a read (0 = on demand only)")
	pullTimeout := flag.Duration("pull-timeout", 0, "how long a local query waits on a triggered pull before serving stale data (0 = default 2s)")
	suspicionTimeout := flag.Duration("suspicion-timeout", 0, "silence after which an acquaintance is suspected, twice that down (0 = failure detection off)")
	suspicionInterval := flag.Duration("suspicion-interval", 0, "heartbeat and detector scan period (0 = suspicion-timeout/4)")
	joinAddr := flag.String("join", "", "join a live network via the admitting peer at this address")
	leaveOnSignal := flag.Bool("leave-on-signal", false, "announce a coordinated leave before shutting down")
	verbose := flag.Bool("v", false, "verbose logging")
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "codb-peer: -name is required")
		os.Exit(2)
	}

	var cfg *config.Config
	if *cfgPath != "" {
		text, err := os.ReadFile(*cfgPath)
		if err != nil {
			fatal(err)
		}
		cfg, err = config.Parse(string(text))
		if err != nil {
			fatal(err)
		}
	}

	addr := *listen
	if addr == "" && cfg != nil {
		if decl := cfg.Node(*name); decl != nil {
			addr = decl.Addr
		}
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}

	tr, err := transport.NewTCP(*name, addr)
	if err != nil {
		fatal(err)
	}

	var wrapper core.Wrapper
	var db *storage.DB
	if *mediator {
		schema := relation.NewSchema()
		if cfg != nil {
			if decl := cfg.Node(*name); decl != nil {
				schema = decl.Schema
			}
		}
		wrapper = core.NewMediatorWrapper(schema)
	} else {
		var err error
		db, err = storage.Open(storage.Options{
			Dir:                *dataDir,
			Shards:             *shards,
			SyncOnCommit:       *syncCommit,
			DisableGroupCommit: *noGroupCommit,
			SegmentBytes:       *segmentBytes,
			RetainSegments:     *retainSegments,
		})
		if err != nil {
			fatal(err)
		}
		wrapper = core.NewStoreWrapper(db)
	}

	logLevel := slog.LevelWarn
	if *verbose {
		logLevel = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel}))

	opts := peer.Options{Name: *name, Transport: tr, Wrapper: wrapper, Logger: logger}
	opts.Eval.Parallelism = *evalParallelism
	opts.DisableSessionSnapshots = *noSessionSnapshots
	opts.LinkPolicies = linkPolicies.modes
	opts.LinkFilters = linkPolicies.filters
	opts.MaxStaleness = *maxStaleness
	opts.PullTimeout = *pullTimeout
	opts.SuspicionTimeout = *suspicionTimeout
	opts.SuspicionInterval = *suspicionInterval
	if cfg != nil {
		opts.Directory = cfg.Directory()
	}
	p, err := peer.New(opts)
	if err != nil {
		fatal(err)
	}
	if cfg != nil {
		if err := p.ApplyConfig(cfg, cfg.Version); err != nil {
			p.Stop()
			fatal(err)
		}
	}
	if *joinAddr != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := p.JoinVia(ctx, *joinAddr); err != nil {
			cancel()
			p.Stop()
			fatal(err)
		}
		cancel()
		fmt.Printf("codb-peer %s joined network via %s\n", *name, *joinAddr)
	}
	fmt.Printf("codb-peer %s listening on %s\n", *name, tr.Addr())
	var gw *httpapi.Server
	if *httpAddr != "" {
		gw, err = httpapi.New(httpapi.Options{Addr: *httpAddr, Peer: p, Logger: logger})
		if err != nil {
			p.Stop()
			fatal(err)
		}
		fmt.Printf("codb-peer %s http on %s\n", *name, gw.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("codb-peer: shutting down")
	if gw != nil {
		gw.Close()
	}
	if *leaveOnSignal {
		if err := p.Leave(); err != nil {
			fmt.Fprintln(os.Stderr, "codb-peer: leave:", err)
		} else {
			fmt.Println("codb-peer: left the network")
		}
	}
	p.Stop()
	if db != nil {
		// A failed close can lose buffered WAL writes of a durable node —
		// that is an error exit, not a shrug.
		if err := db.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "codb-peer:", err)
	os.Exit(1)
}

// linkPolicyFlags accumulates repeated -link-policy rule=mode[:filter]
// values.
type linkPolicyFlags struct {
	modes   map[string]string
	filters map[string]string
	specs   []string
}

func (f *linkPolicyFlags) String() string { return strings.Join(f.specs, ",") }

func (f *linkPolicyFlags) Set(spec string) error {
	rule, rest, ok := strings.Cut(spec, "=")
	if !ok || rule == "" {
		return fmt.Errorf("want rule=mode[:filter], got %q", spec)
	}
	mode, filter, _ := strings.Cut(rest, ":")
	if _, err := core.ParsePolicyMode(mode); err != nil {
		return err
	}
	if f.modes == nil {
		f.modes = make(map[string]string)
		f.filters = make(map[string]string)
	}
	f.modes[rule] = mode
	if filter != "" {
		f.filters[rule] = filter
	}
	f.specs = append(f.specs, spec)
	return nil
}
