// B7: write-path evaluation over pinned snapshots. Two programmes:
//
//  1. Update materialisation on a hand-built two-node network whose
//     incoming links are dominated by evaluation cost: K constant-atom
//     rules over one large relation (ScanEq access-path selection) plus a
//     self-join (hash-join build fan-out). The serial live-wrapper
//     baseline re-scans the relation once per constant rule per round
//     under storage locks; the snapshot path builds one lazy secondary
//     view, shared across every rule and round the shard stays unchanged,
//     and probes it. Grid: shards × parallelism, FullExport so every
//     round pays full evaluation. Headline: serial-live wall over
//     snapshot wall at 8 shards / parallelism 4 (target ≥ 2x).
//
//  2. A storage-level ScanEq microbench: snapshot index-probe latency vs
//     the filtered full scan it replaced, across relation sizes — the
//     probe must scale sub-linearly.
//
// A third, smaller sweep drives the same toggle through
// experiment.Params, covering the codb → peer → core threading.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"codb"
	"codb/internal/experiment"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/topo"
)

// b7Rounds is the number of measured global updates per configuration;
// FullExport makes every round re-evaluate every link in full.
const b7Rounds = 3

// b7Net builds the two-node network: every rule an incoming link of "src",
// materialising into "dst".
func b7Net(shards, par int, noSnapshots bool, bigN, pairN int) (*codb.Network, error) {
	nw := codb.NewNetworkWithOptions(codb.NetworkOptions{
		FullExport:              true,
		DisableSessionSnapshots: noSnapshots,
		Storage:                 codb.StorageGroup{Shards: shards},
		Read:                    codb.ReadGroup{EvalParallelism: par},
	})
	rels := []string{"big(k int, v int, c int)", "pair(a int, b int)", "hit(k int, v int)", "joined(a int, c int)"}
	for _, name := range []string{"src", "dst"} {
		if _, err := nw.AddPeer(name, rels...); err != nil {
			nw.Close()
			return nil, err
		}
	}
	const constRules = 24
	for c := 0; c < constRules; c++ {
		id := fmt.Sprintf("hit%d", c)
		if err := nw.AddRule(id, fmt.Sprintf("dst.hit(k, v) <- src.big(k, v, %d)", c)); err != nil {
			nw.Close()
			return nil, err
		}
	}
	if err := nw.AddRule("join", "dst.joined(a, c) <- src.pair(a, b), src.pair(b, c)"); err != nil {
		nw.Close()
		return nil, err
	}

	// 256 distinct selector values: each constant rule matches bigN/256
	// tuples, so shipping stays cheap and the wall-clock difference is the
	// access path — 24 full scans per round for the live wrapper vs 24
	// probes of one shared secondary view for the snapshot.
	bigRows := make([]codb.Tuple, bigN)
	for i := range bigRows {
		bigRows[i] = codb.Row(codb.Int(i), codb.Int(i%97), codb.Int(i%256))
	}
	if err := nw.Insert("src", "big", bigRows...); err != nil {
		nw.Close()
		return nil, err
	}
	pairRows := make([]codb.Tuple, pairN)
	for i := range pairRows {
		pairRows[i] = codb.Row(codb.Int(i*131%pairN), codb.Int((i*131+7)%pairN))
	}
	if err := nw.Insert("src", "pair", pairRows...); err != nil {
		nw.Close()
		return nil, err
	}
	return nw, nil
}

// b7Materialise times b7Rounds global updates from src and returns the
// mean wall-clock per update.
func b7Materialise(ctx context.Context, shards, par int, noSnapshots bool) time.Duration {
	bigN := 16 * *tuplesFlag // 3000 default tuples → 48k-row big relation
	pairN := *tuplesFlag
	nw, err := b7Net(shards, par, noSnapshots, bigN, pairN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	defer nw.Close()
	t0 := time.Now()
	for r := 0; r < b7Rounds; r++ {
		if _, err := nw.Update(ctx, "src"); err != nil {
			fmt.Fprintln(os.Stderr, "codb-bench: B7 update:", err)
			os.Exit(1)
		}
	}
	return time.Since(t0) / b7Rounds
}

// snapshotEval is B7.
func snapshotEval(ctx context.Context) {
	fmt.Println("== B7: snapshot-backed session evaluation — shard-parallel builds + ScanEq pushdown")
	var rows []benchRow

	// (1) Update-materialisation grid.
	fmt.Printf("%-36s %14s\n", "update materialisation", "wall/update")
	serial := b7Materialise(ctx, 8, 1, true)
	fmt.Printf("%-36s %14s\n", "live-serial (shards=8, baseline)", serial.Round(time.Microsecond))
	rows = append(rows, benchRow{Name: "update/live-serial/shards=8", NsPerOp: float64(serial.Nanoseconds())})
	var headline time.Duration
	for _, shards := range []int{1, 8} {
		for _, par := range []int{1, 4} {
			wall := b7Materialise(ctx, shards, par, false)
			name := fmt.Sprintf("update/snapshot/shards=%d/par=%d", shards, par)
			fmt.Printf("%-36s %14s\n", fmt.Sprintf("snapshot (shards=%d, par=%d)", shards, par), wall.Round(time.Microsecond))
			row := benchRow{Name: name, NsPerOp: float64(wall.Nanoseconds())}
			if shards == 8 && par == 4 {
				headline = wall
				row.Ratio = float64(serial) / float64(wall)
			}
			rows = append(rows, row)
		}
	}
	ratio := float64(serial) / float64(headline)
	fmt.Printf("serial-live/snapshot wall at 8 shards, parallelism 4: %.1fx\n", ratio)
	rows = append(rows, benchRow{Name: "update/summary", Ratio: ratio})

	// (2) ScanEq microbench: index probe vs the filtered full scan it
	// replaced, across relation sizes. The first probe pays the lazy
	// secondary-view build; it is reported separately and the steady-state
	// probe measured after it.
	fmt.Printf("%-36s %12s %12s %12s %8s\n", "ScanEq (8 shards, ~250 matches)", "probe", "filtered", "build", "speedup")
	var prevProbe float64
	var prevN int
	for _, n := range []int{10_000, 40_000, 160_000} {
		probe, filtered, build := scanEqBench(n)
		name := fmt.Sprintf("scaneq/n=%d", n)
		fmt.Printf("%-36s %12s %12s %12s %7.1fx\n", name,
			probe.Round(time.Microsecond), filtered.Round(time.Microsecond),
			build.Round(time.Microsecond), float64(filtered)/float64(probe))
		rows = append(rows,
			benchRow{Name: name + "/probe", NsPerOp: float64(probe.Nanoseconds())},
			benchRow{Name: name + "/filtered", NsPerOp: float64(filtered.Nanoseconds())},
			benchRow{Name: name + "/build", NsPerOp: float64(build.Nanoseconds())},
			benchRow{Name: name + "/speedup", Ratio: float64(filtered) / float64(probe)},
		)
		if prevProbe > 0 {
			// Sub-linearity: probe cost must grow slower than the size.
			growth := float64(probe.Nanoseconds()) / prevProbe
			sizeGrowth := float64(n) / float64(prevN)
			fmt.Printf("%-36s %7.1fx cost for %.0fx size\n", "  probe scaling vs "+fmt.Sprint(prevN), growth, sizeGrowth)
			rows = append(rows, benchRow{Name: fmt.Sprintf("scaneq/scaling/%d->%d", prevN, n), Ratio: growth})
		}
		prevProbe, prevN = float64(probe.Nanoseconds()), n
	}

	// (3) The same toggle through experiment.Params (codb-peer's flags use
	// the identical plumbing): grid network, template rules.
	fmt.Println(experiment.Header())
	for _, mode := range []struct {
		name        string
		noSnapshots bool
		par         int
	}{{"params/live-serial", true, 1}, {"params/snapshot", false, 1}} {
		res := must(experiment.RunUpdate(ctx, experiment.Params{
			Shape: topo.Grid, Nodes: 9, TuplesPerNode: *tuplesFlag, Seed: *seedFlag,
			Shards: 8, EvalParallelism: mode.par, DisableSessionSnapshots: mode.noSnapshots,
		}))
		fmt.Println(experiment.Render(res) + "  (" + mode.name + ")")
		rows = append(rows, rowOf(mode.name, res))
	}
	fmt.Println()
	writeBench("B7", rows)
}

// scanEqBench builds an n-row, 8-shard relation whose selector attribute
// has ~250 matches per value at every size (the domain grows with n), so
// the probe's O(log n + matches) access path is isolated from result-size
// growth. It times: the steady-state snapshot index probe, the filtered
// full scan the probe replaced (over the same snapshot), and the one-off
// lazy secondary-view build.
func scanEqBench(n int) (probe, filtered, build time.Duration) {
	db, err := storage.Open(storage.Options{Shards: 8})
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	defer db.Close()
	if err := db.DefineRelation(&relation.RelDef{Name: "big", Attrs: []relation.Attr{
		{Name: "k", Type: relation.TInt}, {Name: "v", Type: relation.TInt},
		{Name: "c", Type: relation.TInt},
	}}); err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	domain := n / 250 // ~250 matches per selector value, independent of n
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{relation.Int(i), relation.Int(i % 97), relation.Int(i % domain)}
	}
	if _, err := db.InsertMany("big", tuples); err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	snap := db.Snapshot()
	sink := 0
	visit := func(t relation.Tuple) bool { sink += len(t); return true }

	t0 := time.Now()
	snap.ScanEq("big", 2, relation.Int(7), visit) // builds the secondary views
	build = time.Since(t0)

	const reps = 200
	t0 = time.Now()
	for r := 0; r < reps; r++ {
		snap.ScanEq("big", 2, relation.Int(r%domain), visit)
	}
	probe = time.Since(t0) / reps

	t0 = time.Now()
	for r := 0; r < 8; r++ {
		want := relation.Int(r % domain)
		snap.Scan("big", func(t relation.Tuple) bool {
			if t[2] == want {
				return visit(t)
			}
			return true
		})
	}
	filtered = time.Since(t0) / 8
	if sink < 0 {
		fmt.Println(sink) // defeat dead-code elimination
	}
	return probe, filtered, build
}
