// Command codb-bench runs the paper's §4 experiment programme end to end
// and prints one table per experiment (E1–E7) plus the ablations (A1–A4).
// It is the scripted counterpart of the super-peer demo: networks in
// different topologies are started, coordination rules established, updates
// run, and the aggregated statistics reported.
//
// Usage:
//
//	codb-bench                 # run every experiment
//	codb-bench -exp E1,E4      # run a subset
//	codb-bench -exp B1         # outbound-pipeline batching benchmark
//	codb-bench -exp B2         # cross-session incremental propagation
//	codb-bench -exp B3         # concurrent read path under update load
//	codb-bench -exp B5         # commit latency during background checkpoints
//	codb-bench -exp B6         # HTTP serving layer on a multi-process deployment
//	codb-bench -exp B7         # snapshot-backed write-path evaluation + ScanEq pushdown
//	codb-bench -exp B8         # runtime membership churn vs static membership
//	codb-bench -exp B9         # propagation policies: push vs lazy pull vs adaptive
//	codb-bench -exp B10        # partition/heal: suspicion detection, catch-up, rolling restart
//	codb-bench -nodes 4,8,16   # override the network sizes
//	codb-bench -tuples 500     # override per-node cardinality
//	codb-bench -json .         # also write machine-readable BENCH_<exp>.json
//
// With -json DIR every experiment additionally writes DIR/BENCH_<exp>.json:
// an array of {name, ns_per_op, msgs, bytes, ...} records, one per table
// row, for the performance trajectory across PRs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"codb/internal/core"
	"codb/internal/cq"
	"codb/internal/experiment"
	"codb/internal/peer"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/topo"
)

var (
	expFlag    = flag.String("exp", "all", "comma-separated experiments to run (E1..E7,A1..A4,B1..B10 or 'all')")
	nodesFlag  = flag.String("nodes", "4,8,16,32", "comma-separated network sizes")
	tuplesFlag = flag.Int("tuples", 250, "tuples per node")
	seedFlag   = flag.Int64("seed", 42, "workload seed")
	timeout    = flag.Duration("timeout", 5*time.Minute, "per-run timeout")
	jsonDir    = flag.String("json", "", "directory to write BENCH_<exp>.json files into (empty = off)")
)

// benchRow is one machine-readable result record.
type benchRow struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	Msgs      int     `json:"msgs"`
	Bytes     int     `json:"bytes"`
	Tuples    int     `json:"tuples,omitempty"`
	NewTuples int     `json:"new_tuples,omitempty"`
	MaxPath   int     `json:"max_path,omitempty"`
	Frames    int     `json:"frames,omitempty"`
	WireBytes int     `json:"wire_bytes,omitempty"`
	// B2 fields: watermark/fingerprint savings per round, the
	// post-first-round tuples/bytes ratios of full over incremental, and
	// whether both modes converged to identical databases.
	Skipped     int     `json:"skipped_by_watermark,omitempty"`
	Suppressed  int     `json:"suppressed_bindings,omitempty"`
	TuplesRatio float64 `json:"tuples_ratio,omitempty"`
	BytesRatio  float64 `json:"bytes_ratio,omitempty"`
	EqualDBs    *bool   `json:"equal_dbs,omitempty"`
	// B3 fields: reader latency tail, query throughput, the headline
	// ratios (under-update p50 over idle p50; warm QPS over cold QPS), and
	// the cache counters behind them.
	P95Ns       float64 `json:"p95_ns,omitempty"`
	QPS         float64 `json:"qps,omitempty"`
	Ratio       float64 `json:"ratio,omitempty"`
	CacheHits   uint64  `json:"cache_hits,omitempty"`
	CacheMisses uint64  `json:"cache_misses,omitempty"`
	// B4 field: fsyncs issued during the durable-commit programme.
	Syncs uint64 `json:"syncs,omitempty"`
	// B5 fields: commit-latency tail during background checkpoints and
	// the number of checkpoints that ran during the measured window.
	P99Ns       float64 `json:"p99_ns,omitempty"`
	Checkpoints int64   `json:"checkpoints,omitempty"`
	// B8 field: dial attempts that exhausted every retry — nonzero means
	// somebody kept a departed peer's stale address.
	DialFails uint64 `json:"dial_failures,omitempty"`
}

func rowOf(name string, r experiment.Result) benchRow {
	return benchRow{
		Name:      name,
		NsPerOp:   float64(r.Wall.Nanoseconds()),
		Msgs:      r.TotalMsgs,
		Bytes:     r.TotalBytes,
		Tuples:    r.TotalTuples,
		NewTuples: r.NewTuples,
		MaxPath:   r.MaxPath,
		Frames:    r.Frames,
		WireBytes: r.WireBytes,
	}
}

// writeBench persists one experiment's rows as BENCH_<exp>.json.
func writeBench(exp string, rows []benchRow) {
	if *jsonDir == "" || len(rows) == 0 {
		return
	}
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench: marshal", exp, ":", err)
		os.Exit(1)
	}
	path := filepath.Join(*jsonDir, "BENCH_"+exp+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}

func main() {
	flag.Parse()
	if *b6Worker != "" {
		runB6Worker(*b6Worker)
		return
	}
	sizes, err := parseSizes(*nodesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(2)
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.ToUpper(strings.TrimSpace(e))] = true
	}
	all := want["ALL"]
	run := func(name string) bool { return all || want[name] }

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if run("E1") || run("E2") || run("E3") || run("E4") {
		topologySweep(ctx, sizes)
	}
	if run("E5") {
		queryVsMaterialised(ctx)
	}
	if run("E6") {
		dynamicReconfig(ctx)
	}
	if run("E7") {
		cyclicFixpoint(ctx)
	}
	if run("A1") {
		ablation(ctx, "A1", "A1: semi-naive vs naive re-evaluation",
			experiment.Params{Shape: topo.Ring, Nodes: 8, TuplesPerNode: *tuplesFlag, Seed: *seedFlag},
			func(p *experiment.Params) { p.Naive = true }, "naive")
	}
	if run("A2") {
		ablation(ctx, "A2", "A2: sent-cache duplicate suppression on/off (projection rules)",
			experiment.Params{Shape: topo.Chain, Nodes: 6, TuplesPerNode: *tuplesFlag,
				Rule: topo.ProjectionRule, KeyClash: 0.8, Seed: *seedFlag},
			func(p *experiment.Params) { p.DisableDedup = true }, "no-dedup")
	}
	if run("A3") {
		ablation(ctx, "A3", "A3: hash join vs nested-loop join (join rules)",
			experiment.Params{Shape: topo.Chain, Nodes: 3, TuplesPerNode: 2 * *tuplesFlag,
				Rule: topo.JoinRule, Domain: 200, Seed: *seedFlag},
			func(p *experiment.Params) { p.NestedLoop = true }, "nested-loop")
	}
	if run("A4") {
		ablation(ctx, "A4", "A4: copy rules vs existential (marked-null) rules",
			experiment.Params{Shape: topo.Tree, Nodes: 7, TuplesPerNode: *tuplesFlag, Seed: *seedFlag},
			func(p *experiment.Params) { p.Existential = true }, "existential")
	}
	if run("B1") {
		fanoutBatching(ctx)
	}
	if run("B2") {
		incrementalRounds(ctx)
	}
	if run("B3") {
		readHeavy(ctx)
	}
	if run("B4") {
		storageEngine(ctx)
	}
	if run("B5") {
		checkpointStall()
	}
	if run("B6") {
		httpServing(ctx)
	}
	if run("B7") {
		snapshotEval(ctx)
	}
	if run("B8") {
		membershipChurn(ctx)
	}
	if run("B9") {
		propagationPolicies(ctx)
	}
	if run("B10") {
		partitionHeal(ctx)
	}
}

// checkpointStall is B5: commit latency while background checkpoints run.
// The pre-segment engine checkpointed stop-the-world — every commit
// blocked behind an exclusive db.mu for the whole snapshot write. The
// background checkpoint pins a Snapshot (a brief all-shard read lock) and
// writes it while commits continue, so the commit p99 during a continuous
// checkpoint storm must stay within 2x of the no-checkpoint p99. For
// scale, a bystander relation is preloaded so each snapshot writes real
// data, and the mean checkpoint duration is reported — the stall every
// commit would have suffered under the stop-the-world design.
func checkpointStall() {
	fmt.Println("== B5: background checkpoints — commit latency p99 vs no-checkpoint baseline")
	const (
		writers    = 4
		perWriter  = 4000
		baseTuples = 40000
	)
	var rows []benchRow
	var p99Base, p99Storm float64
	for _, storm := range []bool{false, true} {
		dir, err := os.MkdirTemp("", "codb-b5-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}
		db, err := storage.Open(storage.Options{Dir: dir, Shards: 8})
		if err != nil {
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}
		for _, def := range []*relation.RelDef{
			{Name: "base", Attrs: []relation.Attr{{Name: "k", Type: relation.TInt}}},
			{Name: "data", Attrs: []relation.Attr{{Name: "k", Type: relation.TInt}, {Name: "w", Type: relation.TInt}}},
		} {
			if err := db.DefineRelation(def); err != nil {
				fmt.Fprintln(os.Stderr, "codb-bench:", err)
				os.Exit(1)
			}
		}
		var preload []relation.Tuple
		for i := 0; i < baseTuples; i++ {
			preload = append(preload, relation.Tuple{relation.Int(i)})
			if len(preload) == 1000 {
				if _, err := db.InsertMany("base", preload); err != nil {
					fmt.Fprintln(os.Stderr, "codb-bench:", err)
					os.Exit(1)
				}
				preload = preload[:0]
			}
		}

		stop := make(chan struct{})
		var ckpts int64
		var ckptNs int64
		ckptDone := make(chan struct{})
		if storm {
			go func() {
				defer close(ckptDone)
				for {
					select {
					case <-stop:
						return
					default:
					}
					t0 := time.Now()
					if err := db.Checkpoint(); err != nil {
						fmt.Fprintln(os.Stderr, "codb-bench: checkpoint:", err)
						os.Exit(1)
					}
					ckptNs += time.Since(t0).Nanoseconds()
					ckpts++
				}
			}()
		} else {
			close(ckptDone)
		}

		lat := make([][]time.Duration, writers)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lat[w] = make([]time.Duration, 0, perWriter)
				for i := 0; i < perWriter; i++ {
					t0 := time.Now()
					if _, err := db.Insert("data", relation.Tuple{relation.Int(w*1000000 + i), relation.Int(w)}); err != nil {
						fmt.Fprintln(os.Stderr, "codb-bench:", err)
						os.Exit(1)
					}
					lat[w] = append(lat[w], time.Since(t0))
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		<-ckptDone
		db.Close()
		os.RemoveAll(dir)

		var all []time.Duration
		for _, l := range lat {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		p50 := all[len(all)/2]
		p99 := all[len(all)*99/100]
		name := "commit-latency/no-checkpoint"
		if storm {
			name = "commit-latency/during-checkpoint"
			p99Storm = float64(p99.Nanoseconds())
		} else {
			p99Base = float64(p99.Nanoseconds())
		}
		fmt.Printf("%-34s p50 %10v p99 %10v  (%d commits, %d checkpoints)\n",
			name, p50, p99, len(all), ckpts)
		row := benchRow{Name: name, NsPerOp: float64(p50.Nanoseconds()),
			P99Ns: float64(p99.Nanoseconds()), Checkpoints: ckpts}
		if storm && ckpts > 0 {
			mean := time.Duration(ckptNs / ckpts)
			fmt.Printf("%-34s %10v mean (the stall a stop-the-world checkpoint would impose)\n",
				"checkpoint-duration", mean)
			rows = append(rows, benchRow{Name: "checkpoint-duration", NsPerOp: float64(mean.Nanoseconds()), Checkpoints: ckpts})
		}
		rows = append(rows, row)
	}
	ratio := p99Storm / p99Base
	fmt.Printf("during-checkpoint/no-checkpoint commit p99: %.2fx (target <= 2x)\n", ratio)
	rows = append(rows, benchRow{Name: "commit-latency/summary", Ratio: ratio})
	fmt.Println()
	writeBench("B5", rows)
}

// storageEngine is B4: the sharded storage engine with group-commit WAL.
// Three programmes:
//
//  1. Durable committed-transaction throughput under SyncOnCommit with 8
//     concurrent writers: the per-commit-fsync baseline (DisableGroupCommit)
//     vs the group-commit pipeline, which coalesces concurrently arriving
//     commits into one fsync per batch. The headline is the throughput
//     ratio (target ≥ 5x).
//  2. Multi-writer in-memory ingest at shards ∈ {1, 4, 16}: 8 writers
//     committing single-tuple transactions into one database; with shards,
//     writers only contend when their tuples hash to the same partition.
//  3. Global-update wall-clock at shards ∈ {1, 4, 16} on a grid network —
//     the end-to-end sanity check that sharding costs nothing when the
//     update pipeline, not the LDB, is the bottleneck.
func storageEngine(ctx context.Context) {
	const writers = 8
	fmt.Println("== B4: sharded storage engine — group-commit WAL + shard-parallel multi-writer ingest")
	var rows []benchRow

	// (1) Durable commit throughput, SyncOnCommit, 16 writers. Three
	// measured passes per mode (fsync latency is noisy on shared hosts);
	// the median is reported.
	const durableWriters = 16
	fmt.Printf("%-34s %12s %12s\n",
		fmt.Sprintf("durable-commit (sync, %d writers)", durableWriters), "txn/s", "fsyncs")
	const durableCommits = 64 // per writer per pass
	var baseTPS, groupTPS float64
	for _, mode := range []struct {
		label   string
		disable bool
	}{{"fsync-per-commit", true}, {"group-commit", false}} {
		type pass struct {
			tps   float64
			syncs uint64
		}
		var passes []pass
		for p := 0; p < 3; p++ {
			dir, err := os.MkdirTemp("", "codb-b4-*")
			if err != nil {
				fmt.Fprintln(os.Stderr, "codb-bench:", err)
				os.Exit(1)
			}
			tps, s := durableCommitBench(dir, durableWriters, durableCommits, mode.disable)
			os.RemoveAll(dir)
			passes = append(passes, pass{tps, s})
		}
		// Median pass, reported as a pair so the txn-per-fsync headline is
		// internally consistent.
		sort.Slice(passes, func(i, j int) bool { return passes[i].tps < passes[j].tps })
		tps, syncs := passes[1].tps, passes[1].syncs
		fmt.Printf("%-34s %12.0f %12d\n", mode.label, tps, syncs)
		rows = append(rows, benchRow{Name: "durable-commit/" + mode.label, QPS: tps, Syncs: syncs})
		if mode.disable {
			baseTPS = tps
		} else {
			groupTPS = tps
		}
	}
	ratio := groupTPS / baseTPS
	fmt.Printf("group-commit/baseline committed-txn throughput: %.1fx\n", ratio)
	rows = append(rows, benchRow{Name: "durable-commit/summary", Ratio: ratio})

	// (2) Multi-writer in-memory ingest across shard counts.
	fmt.Printf("%-34s %12s\n", "ingest (8 writers, memory)", "tuples/s")
	const ingestTuples = 6000 // per writer
	var ingest1 float64
	for _, shards := range []int{1, 4, 16} {
		tps := ingestBench(shards, writers, ingestTuples)
		name := fmt.Sprintf("ingest/shards=%d", shards)
		fmt.Printf("%-34s %12.0f\n", name, tps)
		row := benchRow{Name: name, QPS: tps}
		if shards == 1 {
			ingest1 = tps
		} else {
			row.Ratio = tps / ingest1
		}
		rows = append(rows, row)
	}

	// (3) End-to-end update wall-clock across shard counts.
	fmt.Println(experiment.Header())
	for _, shards := range []int{1, 4, 16} {
		res := must(experiment.RunUpdate(ctx, experiment.Params{
			Shape: topo.Grid, Nodes: 9, TuplesPerNode: *tuplesFlag, Seed: *seedFlag,
			Shards: shards, EvalParallelism: 2,
		}))
		fmt.Println(experiment.Render(res) + fmt.Sprintf("  (shards=%d)", shards))
		rows = append(rows, rowOf(fmt.Sprintf("update/shards=%d", shards), res))
	}
	fmt.Println()
	writeBench("B4", rows)
}

// durableCommitBench times W writers each committing n single-insert
// transactions against one durable, sync-on-commit database, returning the
// committed-transaction throughput and the number of fsyncs issued.
func durableCommitBench(dir string, writersN, n int, disableGroup bool) (tps float64, syncs uint64) {
	db, err := storage.Open(storage.Options{
		Dir:                dir,
		SyncOnCommit:       true,
		DisableGroupCommit: disableGroup,
		Shards:             16,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	if err := db.DefineRelation(&relation.RelDef{Name: "data", Attrs: []relation.Attr{
		{Name: "k", Type: relation.TInt}, {Name: "v", Type: relation.TInt},
	}}); err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < writersN; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := db.Insert("data", relation.Tuple{relation.Int(w*1_000_000 + i), relation.Int(i)}); err != nil {
					fmt.Fprintln(os.Stderr, "codb-bench: commit:", err)
					os.Exit(1)
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(t0)
	if st := db.DetailedStats(); st.GroupCommitEnabled {
		syncs = st.GroupCommit.Syncs
	} else {
		syncs = uint64(writersN*n) + 1 // inline: one fsync per commit (+ DDL)
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	return float64(writersN*n) / wall.Seconds(), syncs
}

// ingestBench times W writers each committing n single-insert transactions
// into one in-memory database with the given shard count, returning the
// ingest throughput. A secondary index keeps the per-insert critical
// section realistic.
func ingestBench(shards, writersN, n int) float64 {
	db, err := storage.Open(storage.Options{Shards: shards})
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	defer db.Close()
	if err := db.DefineRelation(&relation.RelDef{Name: "data", Attrs: []relation.Attr{
		{Name: "k", Type: relation.TInt}, {Name: "v", Type: relation.TInt},
	}}); err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	if err := db.IndexOn("data", "v"); err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < writersN; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := db.Insert("data", relation.Tuple{relation.Int(w*10_000_000 + i), relation.Int(i % 97)}); err != nil {
					fmt.Fprintln(os.Stderr, "codb-bench: ingest:", err)
					os.Exit(1)
				}
			}
		}(w)
	}
	wg.Wait()
	return float64(writersN*n) / time.Since(t0).Seconds()
}

// readHeavy is B3: the concurrent read path under a read-heavy mixed
// workload. A star network over loopback TCP (the hub is both the queried
// node and the importer every leaf ships to) is materialised once; then N
// paced reader goroutines issue local queries against the hub while rounds
// of "insert burst + global update" (FullExport, so sessions stay long and
// heavy) run concurrently. Reader latency is measured with always-distinct
// queries (every evaluation is a cache miss), so idle and under-update
// phases compare evaluation latency like for like:
//
//   - snapshot read path (default): readers evaluate over pinned storage
//     snapshots off the actor loop — with a core to run on, p50 under load
//     stays within ~2x of idle p50 (on a single-CPU host the ratio also
//     absorbs plain timesharing with the update work);
//   - actor-loop baseline (DisableReadPath): the seed behaviour, every
//     query serialises through the peer goroutine behind the running
//     session's own evaluations.
//
// A final quiescent phase measures query throughput cold (every query
// distinct: full evaluation) vs warm (one query repeated: LSN-validated
// cache hits), the ≥5x headline of the result cache.
func readHeavy(ctx context.Context) {
	const (
		nodes   = 6
		tuples  = 200
		readers = 4
		rounds  = 3                    // update rounds per loaded phase
		burst   = 20                   // insert burst per node per round
		idleN   = 150                  // queries per reader, idle phase
		qpsN    = 400                  // queries per throughput phase
		pace    = 2 * time.Millisecond // open-loop reader inter-arrival
	)
	fmt.Println("== B3: read-heavy mixed workload — snapshot read path + result cache vs actor-loop reads")
	fmt.Printf("%-34s %12s %12s %10s\n", "phase", "p50(µs)", "p95(µs)", "qps")

	var rows []benchRow
	emitLat := func(name string, lats []time.Duration, ratioTo float64) float64 {
		p50, p95 := percentile(lats, 50), percentile(lats, 95)
		row := benchRow{Name: name, NsPerOp: float64(p50.Nanoseconds()), P95Ns: float64(p95.Nanoseconds())}
		if ratioTo > 0 {
			row.Ratio = float64(p50.Nanoseconds()) / ratioTo
		}
		rows = append(rows, row)
		fmt.Printf("%-34s %12.1f %12.1f %10s\n", name,
			float64(p50.Microseconds()), float64(p95.Microseconds()), "-")
		return float64(p50.Nanoseconds())
	}

	var idleP50 float64
	for _, mode := range []struct {
		label    string
		disabled bool
	}{{"snapshot", false}, {"actor-loop", true}} {
		// Star: the hub (the queried origin) imports from every leaf, so
		// update sessions concentrate work in exactly the actor loop the
		// baseline readers must go through.
		net, err := experiment.Build(experiment.Params{
			Shape: topo.Star, Nodes: nodes, TuplesPerNode: tuples, Seed: *seedFlag,
			TCP: true, FullExport: true, DisableReadPath: mode.disabled, EvalParallelism: 2,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}
		origin := net.Peers[net.Origin]
		if _, err := experiment.RunUpdateOn(ctx, net); err != nil { // materialise
			net.Close()
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}

		// Idle phase: evaluation latency with no session in flight (a
		// short unmeasured warmup settles allocator and parser caches).
		if !mode.disabled {
			runReaders(origin, readers, func() bool { return false }, 30, 0)
			idle := runReaders(origin, readers, func() bool { return false }, idleN, pace)
			idleP50 = emitLat("reader/idle/p50", idle, 0)
		}

		// Loaded phase: the same reader workload while update rounds run.
		stop := make(chan struct{})
		updaterDone := make(chan error, 1)
		var updateWall time.Duration
		go func() {
			defer close(stop)
			for round := 0; round < rounds; round++ {
				for i, node := range net.Cfg.Nodes {
					ts := make([]relation.Tuple, burst)
					for j := range ts {
						k := 20_000_000 + round*1_000_000 + i*burst + j
						ts[j] = relation.Tuple{relation.Int(k), relation.Int(round)}
					}
					if err := net.Peers[node.Name].Insert("data", ts...); err != nil {
						updaterDone <- err
						return
					}
				}
				t0 := time.Now()
				if _, err := experiment.RunUpdateOn(ctx, net); err != nil {
					updaterDone <- err
					return
				}
				updateWall += time.Since(t0)
			}
			updaterDone <- nil
		}()
		loaded := runReaders(origin, readers, func() bool {
			select {
			case <-stop:
				return true
			default:
				return false
			}
		}, 0, pace)
		if err := <-updaterDone; err != nil {
			net.Close()
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}
		emitLat("reader/under-update/"+mode.label+"/p50", loaded, idleP50)
		rows = append(rows, benchRow{
			Name:    "update/mean-wall/" + mode.label,
			NsPerOp: float64(updateWall.Nanoseconds()) / rounds,
		})

		// Throughput phase (quiescent, snapshot net only): cold = every
		// query distinct, warm = one query repeated (cache hits).
		if !mode.disabled {
			cold := queryQPS(origin, qpsN, true)
			warm := queryQPS(origin, qpsN, false)
			st, _ := origin.ReadStats()
			rows = append(rows,
				benchRow{Name: "qps/cold", QPS: cold},
				benchRow{Name: "qps/warm", QPS: warm, Ratio: warm / cold,
					CacheHits: st.Hits, CacheMisses: st.Misses})
			fmt.Printf("%-34s %12s %12s %10.0f\n", "qps/cold", "-", "-", cold)
			fmt.Printf("%-34s %12s %12s %10.0f\n", "qps/warm", "-", "-", warm)
			fmt.Printf("warm/cold throughput: %.1fx (cache: %d hits, %d misses)\n",
				warm/cold, st.Hits, st.Misses)
		}
		net.Close()
	}
	fmt.Println()
	writeBench("B3", rows)
}

// readerQuery builds the i-th reader query: a self-join over the workload
// relation with a varying comparison constant, so distinct i yield distinct
// normalized queries — cache misses — with a non-trivial evaluation.
// Latency readers draw i from [0, 100_000) in disjoint per-reader windows;
// the cold throughput phase draws from 200_000 up, so its queries collide
// with nothing cached earlier.
func readerQuery(i int) *cq.Query {
	return cq.MustParseQuery(fmt.Sprintf(`ans(x, z) :- data(x, y), data(y, z), x >= %d`, i))
}

// runReaders fans out n reader goroutines against one peer and returns the
// merged per-query latencies. Readers draw constants from disjoint windows
// of the constant space, so queries are distinct across readers (see
// readerQuery), and pace themselves open-loop (one query per `pace`), so
// the phases measure response time rather than saturation throughput. With
// perReader > 0 each reader stops after that many queries; otherwise
// readers run until stop() reports true.
func runReaders(p *peer.Peer, n int, stop func() bool, perReader int, pace time.Duration) []time.Duration {
	lats := make([][]time.Duration, n)
	var wg sync.WaitGroup
	window := 100_000 / n
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; perReader == 0 || i < perReader; i++ {
				if perReader == 0 && stop() {
					return
				}
				q := readerQuery(r*window + i%window)
				t0 := time.Now()
				if _, err := p.LocalQuery(q, core.AllAnswers); err != nil {
					fmt.Fprintln(os.Stderr, "codb-bench: reader:", err)
					os.Exit(1)
				}
				lats[r] = append(lats[r], time.Since(t0))
				if pace > 0 {
					time.Sleep(pace)
				}
			}
		}(r)
	}
	wg.Wait()
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	return all
}

// queryQPS measures sequential query throughput: distinct queries when cold
// (every evaluation runs), one repeated query when warm (cache hits after
// the first).
func queryQPS(p *peer.Peer, n int, cold bool) float64 {
	warmQ := readerQuery(31_337)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		q := warmQ
		if cold {
			q = readerQuery(200_000 + i)
		}
		if _, err := p.LocalQuery(q, core.AllAnswers); err != nil {
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}
	}
	return float64(n) / time.Since(t0).Seconds()
}

// percentile is experiment.Percentile, the shared nearest-rank helper.
func percentile(lats []time.Duration, p int) time.Duration {
	return experiment.Percentile(lats, p)
}

// incrementalRounds is B2: cross-session incremental propagation. A chain
// network over loopback TCP runs k rounds of "commit a small insert burst
// at every node, then run a global update", once with the default
// incremental export (LSN watermarks + shipped fingerprints) and once with
// FullExport (the paper-faithful re-ship baseline). After the first round,
// incremental sessions must ship a small multiple of the burst instead of
// the whole extent, and both modes must converge to identical databases.
func incrementalRounds(ctx context.Context) {
	const (
		nodes  = 8
		tuples = 200
		rounds = 4
		burst  = 10
	)
	fmt.Println("== B2: cross-session incremental propagation — watermarked delta export vs full re-export")
	fmt.Printf("%7s %12s %8s %10s %8s %10s %12s\n", "round", "mode", "msgs", "bytes", "tuples", "skipped", "suppressed")

	var rows []benchRow
	type modeRun struct {
		label   string
		full    bool
		results []experiment.Result
		states  map[string][]relation.Tuple
	}
	runs := []*modeRun{{label: "incremental"}, {label: "full", full: true}}
	for _, m := range runs {
		results, states, err := experiment.RunRounds(ctx, experiment.Params{
			Shape: topo.Chain, Nodes: nodes, TuplesPerNode: tuples, Seed: *seedFlag, TCP: true,
			FullExport: m.full,
		}, rounds, burst)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}
		m.results, m.states = results, states
		for round, res := range results {
			fmt.Printf("%7d %12s %8d %10d %8d %10d %12d\n", round, m.label,
				res.TotalMsgs, res.TotalBytes, res.TotalTuples,
				res.SkippedByWatermark, res.SuppressedBindings)
			row := rowOf(fmt.Sprintf("round=%d/%s", round, m.label), res)
			row.Skipped = res.SkippedByWatermark
			row.Suppressed = res.SuppressedBindings
			rows = append(rows, row)
		}
	}

	// Post-first-round savings: the acceptance ratio of the incremental
	// machinery.
	var incrTuples, incrBytes, fullTuples, fullBytes int
	for _, res := range runs[0].results[1:] {
		incrTuples += res.TotalTuples
		incrBytes += res.TotalBytes
	}
	for _, res := range runs[1].results[1:] {
		fullTuples += res.TotalTuples
		fullBytes += res.TotalBytes
	}
	tuplesRatio := ratio(fullTuples, incrTuples)
	bytesRatio := ratio(fullBytes, incrBytes)
	equal := experiment.StatesEqual(runs[0].states, runs[1].states)
	fmt.Printf("after round 0: full/incremental tuples %.1fx, bytes %.1fx; databases identical: %v\n\n",
		tuplesRatio, bytesRatio, equal)
	rows = append(rows, benchRow{
		Name:        "summary/full-vs-incremental",
		TuplesRatio: tuplesRatio,
		BytesRatio:  bytesRatio,
		EqualDBs:    &equal,
	})
	writeBench("B2", rows)
	if !equal {
		fmt.Fprintln(os.Stderr, "codb-bench: B2 equality check failed: incremental and full exports diverged")
		os.Exit(1)
	}
}

// ratio guards against a zero denominator (an incremental session that
// shipped nothing at all).
func ratio(full, incr int) float64 {
	if incr == 0 {
		return float64(full)
	}
	return float64(full) / float64(incr)
}

// fanoutBatching is B1: the outbound-pipeline benchmark. A fan-out update
// over loopback TCP (one initiator exporting to N acquaintances through 32
// parallel rules each) is run with the asynchronous batching outbox
// (default) and with synchronous per-message sends (the unbatched
// baseline), recording wall time and frames-on-the-wire.
func fanoutBatching(ctx context.Context) {
	fmt.Println("== B1: fan-out batching — async outbox + frame coalescing vs per-message sends")
	fmt.Printf("%5s %10s %10s %8s %10s %10s\n", "n", "mode", "wall(ms)", "msgs", "frames", "wirebytes")
	var rows []benchRow
	for _, n := range []int{4, 16, 64} {
		for _, mode := range []struct {
			label     string
			unbatched bool
		}{{"batched", false}, {"unbatched", true}} {
			// FullExport keeps repeated sessions re-shipping the full
			// frontier — B1 measures the pipeline, not the watermarks.
			net, err := experiment.Build(experiment.Params{
				Shape: topo.Fanout, Nodes: n + 1, TuplesPerNode: 5, FanRules: 32, Seed: *seedFlag,
				TCP: true, DisableOutbox: mode.unbatched, FullExport: true,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "codb-bench:", err)
				os.Exit(1)
			}
			// One warm-up, then the average of three measured updates on
			// the same network (later sessions re-ship the full frontier).
			if _, err := experiment.RunUpdateOn(ctx, net); err != nil {
				net.Close()
				fmt.Fprintln(os.Stderr, "codb-bench:", err)
				os.Exit(1)
			}
			var sum experiment.Result
			const runs = 3
			for i := 0; i < runs; i++ {
				res, err := experiment.RunUpdateOn(ctx, net)
				if err != nil {
					net.Close()
					fmt.Fprintln(os.Stderr, "codb-bench:", err)
					os.Exit(1)
				}
				sum.Wall += res.Wall
				sum.TotalMsgs += res.TotalMsgs
				sum.TotalBytes += res.TotalBytes
				sum.TotalTuples += res.TotalTuples
				sum.Frames += res.Frames
				sum.WireBytes += res.WireBytes
			}
			net.Close()
			avg := experiment.Result{
				Wall:        sum.Wall / runs,
				TotalMsgs:   sum.TotalMsgs / runs,
				TotalBytes:  sum.TotalBytes / runs,
				TotalTuples: sum.TotalTuples / runs,
				Frames:      sum.Frames / runs,
				WireBytes:   sum.WireBytes / runs,
			}
			fmt.Printf("%5d %10s %10.3f %8d %10d %10d\n", n, mode.label,
				float64(avg.Wall.Nanoseconds())/1e6, avg.TotalMsgs, avg.Frames, avg.WireBytes)
			rows = append(rows, rowOf(fmt.Sprintf("fanout/n=%d/%s", n, mode.label), avg))
		}
	}
	fmt.Println()
	writeBench("B1", rows)
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func must(res experiment.Result, err error) experiment.Result {
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	return res
}

// topologySweep is E1–E4: one update per (shape, size), reporting wall
// time, messages, volume and longest propagation path.
func topologySweep(ctx context.Context, sizes []int) {
	fmt.Println("== E1–E4: global update across topologies")
	fmt.Println("   (E1 wall time; E2 messages; E3 volume; E4 longest propagation path)")
	fmt.Println(experiment.Header())
	var rows []benchRow
	for _, shape := range []topo.Shape{topo.Chain, topo.Ring, topo.Star, topo.Tree, topo.Grid, topo.Random} {
		for _, n := range sizes {
			res := must(experiment.RunUpdate(ctx, experiment.Params{
				Shape: shape, Nodes: n, TuplesPerNode: *tuplesFlag, Overlap: 0.1, Seed: *seedFlag,
			}))
			fmt.Println(experiment.Render(res))
			rows = append(rows, rowOf(fmt.Sprintf("%s/n=%d", shape, n), res))
		}
	}
	fmt.Println()
	writeBench("E1-E4", rows)
}

// queryVsMaterialised is E5.
func queryVsMaterialised(ctx context.Context) {
	fmt.Println("== E5: query-time fetching vs local query after global update")
	fmt.Printf("%-9s %5s %9s %13s %9s\n", "topology", "nodes", "mode", "wall(ms)", "answers")
	var rows []benchRow
	for _, n := range []int{4, 8, 16} {
		p := experiment.Params{Shape: topo.Chain, Nodes: n, TuplesPerNode: *tuplesFlag, Seed: *seedFlag}
		cold := must(experiment.RunQueryCold(ctx, p))
		fmt.Printf("%-9s %5d %9s %13.3f %9d\n", p.Shape, n, "cold", float64(cold.Wall.Nanoseconds())/1e6, cold.Answers)
		rows = append(rows, rowOf(fmt.Sprintf("cold/n=%d", n), cold))
		warm := must(experiment.RunQueryMaterialised(ctx, p))
		fmt.Printf("%-9s %5d %9s %13.3f %9d\n", p.Shape, n, "local", float64(warm.Wall.Nanoseconds())/1e6, warm.Answers)
		rows = append(rows, rowOf(fmt.Sprintf("local/n=%d", n), warm))
	}
	fmt.Println()
	writeBench("E5", rows)
}

// dynamicReconfig is E6: rebuild the topology at runtime, then update.
func dynamicReconfig(ctx context.Context) {
	fmt.Println("== E6: dynamic topology change at runtime (chain -> star), then update")
	fmt.Printf("%5s %15s %12s\n", "nodes", "reconfig(ms)", "update(ms)")
	var rows []benchRow
	for _, n := range []int{4, 8, 16} {
		net, err := experiment.Build(experiment.Params{
			Shape: topo.Chain, Nodes: n, TuplesPerNode: *tuplesFlag, Seed: *seedFlag,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}
		starCfg, err := topo.Build(topo.Star, n, topo.Options{Version: 2})
		if err != nil {
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}
		t0 := time.Now()
		for _, pr := range net.Peers {
			if err := pr.ApplyConfig(starCfg, 2); err != nil {
				fmt.Fprintln(os.Stderr, "codb-bench:", err)
				os.Exit(1)
			}
		}
		reconfig := time.Since(t0)
		t1 := time.Now()
		if _, err := net.Peers[net.Origin].RunUpdate(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}
		update := time.Since(t1)
		net.Close()
		fmt.Printf("%5d %15.3f %12.3f\n", n, float64(reconfig.Nanoseconds())/1e6, float64(update.Nanoseconds())/1e6)
		rows = append(rows,
			benchRow{Name: fmt.Sprintf("reconfig/n=%d", n), NsPerOp: float64(reconfig.Nanoseconds())},
			benchRow{Name: fmt.Sprintf("update-after/n=%d", n), NsPerOp: float64(update.Nanoseconds())})
	}
	fmt.Println()
	writeBench("E6", rows)
}

// cyclicFixpoint is E7.
func cyclicFixpoint(ctx context.Context) {
	fmt.Println("== E7: cyclic coordination rules (fix-point computation)")
	fmt.Println(experiment.Header())
	var rows []benchRow
	for _, n := range []int{3, 6, 12} {
		res := must(experiment.RunUpdate(ctx, experiment.Params{
			Shape: topo.Ring, Nodes: n, TuplesPerNode: *tuplesFlag, Seed: *seedFlag,
		}))
		fmt.Println(experiment.Render(res))
		rows = append(rows, rowOf(fmt.Sprintf("copy-ring/n=%d", n), res))
		ex := must(experiment.RunUpdate(ctx, experiment.Params{
			Shape: topo.Ring, Nodes: n, TuplesPerNode: *tuplesFlag, Seed: *seedFlag,
			Existential: true, MaxDepth: 8,
		}))
		fmt.Println(experiment.Render(ex) + "  (existential)")
		rows = append(rows, rowOf(fmt.Sprintf("existential-ring/n=%d", n), ex))
	}
	fmt.Println()
	writeBench("E7", rows)
}

// ablation runs a baseline and a variant and prints both rows.
func ablation(ctx context.Context, code, title string, base experiment.Params, vary func(*experiment.Params), label string) {
	fmt.Println("==", title)
	fmt.Println(experiment.Header())
	res := must(experiment.RunUpdate(ctx, base))
	fmt.Println(experiment.Render(res) + "  (baseline)")
	variant := base
	vary(&variant)
	vres := must(experiment.RunUpdate(ctx, variant))
	fmt.Println(experiment.Render(vres) + "  (" + label + ")")
	fmt.Println()
	writeBench(code, []benchRow{rowOf("baseline", res), rowOf(label, vres)})
}
