// Command codb-bench runs the paper's §4 experiment programme end to end
// and prints one table per experiment (E1–E7) plus the ablations (A1–A4).
// It is the scripted counterpart of the super-peer demo: networks in
// different topologies are started, coordination rules established, updates
// run, and the aggregated statistics reported.
//
// Usage:
//
//	codb-bench                 # run every experiment
//	codb-bench -exp E1,E4      # run a subset
//	codb-bench -nodes 4,8,16   # override the network sizes
//	codb-bench -tuples 500     # override per-node cardinality
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"codb/internal/experiment"
	"codb/internal/topo"
)

var (
	expFlag    = flag.String("exp", "all", "comma-separated experiments to run (E1..E7,A1..A4 or 'all')")
	nodesFlag  = flag.String("nodes", "4,8,16,32", "comma-separated network sizes")
	tuplesFlag = flag.Int("tuples", 250, "tuples per node")
	seedFlag   = flag.Int64("seed", 42, "workload seed")
	timeout    = flag.Duration("timeout", 5*time.Minute, "per-run timeout")
)

func main() {
	flag.Parse()
	sizes, err := parseSizes(*nodesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(2)
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.ToUpper(strings.TrimSpace(e))] = true
	}
	all := want["ALL"]
	run := func(name string) bool { return all || want[name] }

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if run("E1") || run("E2") || run("E3") || run("E4") {
		topologySweep(ctx, sizes)
	}
	if run("E5") {
		queryVsMaterialised(ctx)
	}
	if run("E6") {
		dynamicReconfig(ctx)
	}
	if run("E7") {
		cyclicFixpoint(ctx)
	}
	if run("A1") {
		ablation(ctx, "A1: semi-naive vs naive re-evaluation",
			experiment.Params{Shape: topo.Ring, Nodes: 8, TuplesPerNode: *tuplesFlag, Seed: *seedFlag},
			func(p *experiment.Params) { p.Naive = true }, "naive")
	}
	if run("A2") {
		ablation(ctx, "A2: sent-cache duplicate suppression on/off (projection rules)",
			experiment.Params{Shape: topo.Chain, Nodes: 6, TuplesPerNode: *tuplesFlag,
				Rule: topo.ProjectionRule, KeyClash: 0.8, Seed: *seedFlag},
			func(p *experiment.Params) { p.DisableDedup = true }, "no-dedup")
	}
	if run("A3") {
		ablation(ctx, "A3: hash join vs nested-loop join (join rules)",
			experiment.Params{Shape: topo.Chain, Nodes: 3, TuplesPerNode: 2 * *tuplesFlag,
				Rule: topo.JoinRule, Domain: 200, Seed: *seedFlag},
			func(p *experiment.Params) { p.NestedLoop = true }, "nested-loop")
	}
	if run("A4") {
		ablation(ctx, "A4: copy rules vs existential (marked-null) rules",
			experiment.Params{Shape: topo.Tree, Nodes: 7, TuplesPerNode: *tuplesFlag, Seed: *seedFlag},
			func(p *experiment.Params) { p.Existential = true }, "existential")
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func must(res experiment.Result, err error) experiment.Result {
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	return res
}

// topologySweep is E1–E4: one update per (shape, size), reporting wall
// time, messages, volume and longest propagation path.
func topologySweep(ctx context.Context, sizes []int) {
	fmt.Println("== E1–E4: global update across topologies")
	fmt.Println("   (E1 wall time; E2 messages; E3 volume; E4 longest propagation path)")
	fmt.Println(experiment.Header())
	for _, shape := range []topo.Shape{topo.Chain, topo.Ring, topo.Star, topo.Tree, topo.Grid, topo.Random} {
		for _, n := range sizes {
			res := must(experiment.RunUpdate(ctx, experiment.Params{
				Shape: shape, Nodes: n, TuplesPerNode: *tuplesFlag, Overlap: 0.1, Seed: *seedFlag,
			}))
			fmt.Println(experiment.Render(res))
		}
	}
	fmt.Println()
}

// queryVsMaterialised is E5.
func queryVsMaterialised(ctx context.Context) {
	fmt.Println("== E5: query-time fetching vs local query after global update")
	fmt.Printf("%-9s %5s %9s %13s %9s\n", "topology", "nodes", "mode", "wall(ms)", "answers")
	for _, n := range []int{4, 8, 16} {
		p := experiment.Params{Shape: topo.Chain, Nodes: n, TuplesPerNode: *tuplesFlag, Seed: *seedFlag}
		cold := must(experiment.RunQueryCold(ctx, p))
		fmt.Printf("%-9s %5d %9s %13.3f %9d\n", p.Shape, n, "cold", float64(cold.Wall.Nanoseconds())/1e6, cold.Answers)
		warm := must(experiment.RunQueryMaterialised(ctx, p))
		fmt.Printf("%-9s %5d %9s %13.3f %9d\n", p.Shape, n, "local", float64(warm.Wall.Nanoseconds())/1e6, warm.Answers)
	}
	fmt.Println()
}

// dynamicReconfig is E6: rebuild the topology at runtime, then update.
func dynamicReconfig(ctx context.Context) {
	fmt.Println("== E6: dynamic topology change at runtime (chain -> star), then update")
	fmt.Printf("%5s %15s %12s\n", "nodes", "reconfig(ms)", "update(ms)")
	for _, n := range []int{4, 8, 16} {
		net, err := experiment.Build(experiment.Params{
			Shape: topo.Chain, Nodes: n, TuplesPerNode: *tuplesFlag, Seed: *seedFlag,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}
		starCfg, err := topo.Build(topo.Star, n, topo.Options{Version: 2})
		if err != nil {
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}
		t0 := time.Now()
		for _, pr := range net.Peers {
			if err := pr.ApplyConfig(starCfg, 2); err != nil {
				fmt.Fprintln(os.Stderr, "codb-bench:", err)
				os.Exit(1)
			}
		}
		reconfig := time.Since(t0)
		t1 := time.Now()
		if _, err := net.Peers[net.Origin].RunUpdate(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "codb-bench:", err)
			os.Exit(1)
		}
		update := time.Since(t1)
		net.Close()
		fmt.Printf("%5d %15.3f %12.3f\n", n, float64(reconfig.Nanoseconds())/1e6, float64(update.Nanoseconds())/1e6)
	}
	fmt.Println()
}

// cyclicFixpoint is E7.
func cyclicFixpoint(ctx context.Context) {
	fmt.Println("== E7: cyclic coordination rules (fix-point computation)")
	fmt.Println(experiment.Header())
	for _, n := range []int{3, 6, 12} {
		res := must(experiment.RunUpdate(ctx, experiment.Params{
			Shape: topo.Ring, Nodes: n, TuplesPerNode: *tuplesFlag, Seed: *seedFlag,
		}))
		fmt.Println(experiment.Render(res))
		ex := must(experiment.RunUpdate(ctx, experiment.Params{
			Shape: topo.Ring, Nodes: n, TuplesPerNode: *tuplesFlag, Seed: *seedFlag,
			Existential: true, MaxDepth: 8,
		}))
		fmt.Println(experiment.Render(ex) + "  (existential)")
	}
	fmt.Println()
}

// ablation runs a baseline and a variant and prints both rows.
func ablation(ctx context.Context, title string, base experiment.Params, vary func(*experiment.Params), label string) {
	fmt.Println("==", title)
	fmt.Println(experiment.Header())
	res := must(experiment.RunUpdate(ctx, base))
	fmt.Println(experiment.Render(res) + "  (baseline)")
	variant := base
	vary(&variant)
	vres := must(experiment.RunUpdate(ctx, variant))
	fmt.Println(experiment.Render(vres) + "  (" + label + ")")
	fmt.Println()
}
