// B10: partition/heal failure detection. Two scenarios over a durable
// loopback-TCP star with the heartbeat suspicion detector on, each replayed
// against an unbroken reference network as byte-identity ground truth:
//
//   - partition/heal: a leaf is silently partitioned (a fault injector
//     drops its traffic in both directions) under continuing update load.
//     Headlines: the hub suspects the leaf within 2x the suspicion
//     timeout, every in-partition session still terminates (written off by
//     compensation, not hung), the injected silence never counts as a
//     transport dial failure, and after the heal the re-pipe + catch-up
//     restore byte-identity with the reference.
//   - rolling restart: leaves crash-stop and come back over their own
//     directories at the same address between update rounds. Headlines:
//     zero lost sessions (every update returns), zero exhausted dials
//     (restarts reuse their listener), and byte-identity at the end — the
//     restarted exporters resume from durable watermarks.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"codb"
	"codb/internal/transport"
)

const (
	b10Timeout    = 150 * time.Millisecond // suspicion timeout (down at 2x)
	b10PartRounds = 3                      // update rounds while partitioned
	b10Restarts   = 2                      // leaves crash-stopped in leg 2
)

// b10Wait polls a node's membership snapshot until cond holds.
func b10Wait(nw *codb.Network, node string, wait time.Duration, cond func(codb.MembershipStats) bool) (codb.MembershipStats, bool) {
	deadline := time.Now().Add(wait)
	for {
		st, ok := nw.PeerMembershipStats(node)
		if ok && cond(st) {
			return st, true
		}
		if time.Now().After(deadline) {
			return st, false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// b10Star builds the B8 star wiring (hub n0 imports every leaf's data
// extent) on an existing network.
func b10Star(nw *codb.Network, durableRoot string) error {
	for i := 0; i <= b8Leaves; i++ {
		name := b8Name(i)
		var err error
		if durableRoot == "" {
			_, err = nw.AddPeer(name, "data(x int, y int)")
		} else {
			_, err = nw.AddDurablePeer(name, filepath.Join(durableRoot, name), "data(x int, y int)")
		}
		if err != nil {
			return err
		}
	}
	for i := 1; i <= b8Leaves; i++ {
		id, text := b8Rule(i)
		if err := nw.AddRule(id, text); err != nil {
			return err
		}
	}
	return nil
}

// partitionHeal is B10.
func partitionHeal(ctx context.Context) {
	fmt.Println("== B10: partition/heal — heartbeat suspicion, write-off, re-pipe + catch-up")
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "codb-bench: B10:", err)
		os.Exit(1)
	}
	root, err := os.MkdirTemp("", "codb-b10-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(root)

	// Reference: same wiring on the in-process bus, never faulted. Both
	// networks replay the identical insert/update programme.
	ref := codb.NewNetworkWithOptions(codb.NetworkOptions{})
	defer ref.Close()
	if err := b10Star(ref, ""); err != nil {
		fail(err)
	}

	// ---- Leg 1: silent partition, detection, heal, catch-up ----
	parts := make(map[string]*transport.Partitioner)
	faulted := codb.NewNetworkWithOptions(codb.NetworkOptions{
		Transport: codb.TransportGroup{
			TCP: true,
			Wrap: func(node string, tr transport.Transport) transport.Transport {
				f := transport.NewPartitioner(tr)
				parts[node] = f
				return f
			},
		},
		Suspicion: codb.SuspicionGroup{Timeout: b10Timeout},
	})
	defer faulted.Close()
	if err := b10Star(faulted, filepath.Join(root, "faulted")); err != nil {
		fail(err)
	}

	round := 0
	update := func(nw *codb.Network) (benchRow, error) {
		return b8Update(ctx, nw, fmt.Sprintf("round=%d", round))
	}
	step := func() benchRow {
		if err := b8Insert(faulted, round); err != nil {
			fail(err)
		}
		if err := b8Insert(ref, round); err != nil {
			fail(err)
		}
		row, err := update(faulted)
		if err != nil {
			fail(fmt.Errorf("faulted update round %d: %w", round, err))
		}
		if _, err := update(ref); err != nil {
			fail(err)
		}
		round++
		return row
	}

	var rows []benchRow
	step() // healthy round: pipes up, watermarks established

	// Partition the last leaf, symmetrically: silence both directions.
	victim := b8Name(b8Leaves)
	others := make([]string, 0, b8Leaves)
	for i := 0; i < b8Leaves; i++ {
		others = append(others, b8Name(i))
	}
	parts[victim].Partition(others...)
	for _, name := range others {
		parts[name].Partition(victim)
	}
	partStart := time.Now()

	// Detection: the hub must suspect the silent leaf within 2x the
	// suspicion timeout, and declare it down soon after.
	st, ok := b10Wait(faulted, "n0", 2*b10Timeout, func(st codb.MembershipStats) bool {
		s := st.States[victim]
		return s == "suspect" || s == "down"
	})
	if !ok {
		fail(fmt.Errorf("hub never suspected the partitioned leaf within 2x timeout: %+v", st))
	}
	suspectNs := time.Since(partStart)
	st, ok = b10Wait(faulted, "n0", 10*b10Timeout, func(st codb.MembershipStats) bool {
		return st.States[victim] == "down"
	})
	if !ok {
		fail(fmt.Errorf("hub never declared the partitioned leaf down: %+v", st))
	}
	downNs := time.Since(partStart)
	fmt.Printf("partition detected: suspect after %v, down after %v (timeout %v)\n",
		suspectNs.Round(time.Millisecond), downNs.Round(time.Millisecond), b10Timeout)
	rows = append(rows,
		benchRow{Name: "partition/detect-suspect", NsPerOp: float64(suspectNs.Nanoseconds())},
		benchRow{Name: "partition/detect-down", NsPerOp: float64(downNs.Nanoseconds())})

	// Update load continues through the partition; every session must
	// terminate (compensated, not hung).
	for i := 0; i < b10PartRounds; i++ {
		row := step()
		row.Name = fmt.Sprintf("partition/update-%d", i)
		rows = append(rows, row)
	}
	droppedOut, droppedIn := parts["n0"].Dropped()
	if droppedOut == 0 && droppedIn == 0 {
		fail(fmt.Errorf("the hub's injector dropped nothing — the partition never bit"))
	}

	// Heal: paced redials re-pipe, directory deltas re-exchange, catch-up
	// resumes from the durable watermarks.
	for _, f := range parts {
		f.Heal()
	}
	healStart := time.Now()
	st, ok = b10Wait(faulted, "n0", 20*b10Timeout, func(st codb.MembershipStats) bool {
		return st.States[victim] == "alive" && st.Heals >= 1
	})
	if !ok {
		fail(fmt.Errorf("hub never healed the partitioned leaf: %+v", st))
	}
	healNs := time.Since(healStart)
	rows = append(rows, benchRow{Name: "partition/heal-repipe", NsPerOp: float64(healNs.Nanoseconds())})

	// Post-heal convergence: one more round, then byte-identity with the
	// reference (the heal's own catch-up lands asynchronously).
	step()
	equal := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if b8Fingerprint(faulted) == b8Fingerprint(ref) {
			equal = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	convergedNs := time.Since(healStart)
	var dialFails uint64
	for _, name := range faulted.Peers() {
		if n, ok := faulted.Peer(name).DialFailures(); ok {
			dialFails += n
		}
	}
	fmt.Printf("healed: re-piped after %v, byte-identical with reference after %v; identical=%v dial_failures=%d dropped=%d\n",
		healNs.Round(time.Millisecond), convergedNs.Round(time.Millisecond), equal, dialFails, droppedOut+droppedIn)
	rows = append(rows, benchRow{Name: "partition/summary", NsPerOp: float64(convergedNs.Nanoseconds()),
		EqualDBs: &equal, DialFails: dialFails})
	if !equal || dialFails != 0 {
		fail(fmt.Errorf("post-heal divergence (identical=%v) or dial failures (%d)", equal, dialFails))
	}

	// ---- Leg 2: rolling restart of durable leaves under update load ----
	rolling := codb.NewNetworkWithOptions(codb.NetworkOptions{
		Transport: codb.TransportGroup{TCP: true},
		Suspicion: codb.SuspicionGroup{Timeout: b10Timeout},
	})
	defer rolling.Close()
	rollRoot := filepath.Join(root, "rolling")
	if err := b10Star(rolling, rollRoot); err != nil {
		fail(err)
	}
	ref2 := codb.NewNetworkWithOptions(codb.NetworkOptions{})
	defer ref2.Close()
	if err := b10Star(ref2, ""); err != nil {
		fail(err)
	}

	lost := 0
	restarted := uint64(0)
	rounds := 2*b10Restarts + 2
	for r := 0; r < rounds; r++ {
		if err := b8Insert(rolling, 100+r); err != nil {
			fail(err)
		}
		if err := b8Insert(ref2, 100+r); err != nil {
			fail(err)
		}
		t0 := time.Now()
		if _, err := rolling.Update(ctx, "n0"); err != nil {
			lost++
		}
		wall := time.Since(t0)
		if _, err := ref2.Update(ctx, "n0"); err != nil {
			fail(err)
		}
		rows = append(rows, benchRow{Name: fmt.Sprintf("rolling/update-%d", r), NsPerOp: float64(wall.Nanoseconds())})

		// Crash-stop a rotating leaf between rounds; wait for the hub to
		// write the old incarnation off before the rule re-add re-pipes it
		// (a live pipe supersedes a pipe-down still in flight).
		if r%2 == 1 && restarted < b10Restarts {
			leaf := 1 + int(restarted)%b8Leaves
			name := b8Name(leaf)
			if _, err := rolling.RestartDurablePeer(name, filepath.Join(rollRoot, name)); err != nil {
				fail(err)
			}
			restarted++
			if st, ok := b10Wait(rolling, "n0", 10*b10Timeout, func(st codb.MembershipStats) bool {
				return st.Downs >= restarted
			}); !ok {
				fail(fmt.Errorf("hub never noted restarted %s down: %+v", name, st))
			}
			id, text := b8Rule(leaf)
			if err := rolling.AddRule(id, text); err != nil {
				fail(err)
			}
		}
	}
	equal2 := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if b8Fingerprint(rolling) == b8Fingerprint(ref2) {
			equal2 = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var dialFails2 uint64
	for _, name := range rolling.Peers() {
		if n, ok := rolling.Peer(name).DialFailures(); ok {
			dialFails2 += n
		}
	}
	st2, _ := rolling.PeerMembershipStats("n0")
	fmt.Printf("rolling restart: %d restarts, %d lost sessions, %d dial failures, identical=%v (hub saw %d downs, %d heals)\n\n",
		restarted, lost, dialFails2, equal2, st2.Downs, st2.Heals)
	rows = append(rows, benchRow{Name: "rolling/summary", EqualDBs: &equal2, DialFails: dialFails2, Msgs: lost})
	writeBench("B10", rows)
	if lost != 0 || dialFails2 != 0 || !equal2 || st2.Downs < restarted || st2.Heals < restarted {
		fail(fmt.Errorf("rolling restart: lost=%d dialFails=%d identical=%v downs=%d heals=%d",
			lost, dialFails2, equal2, st2.Downs, st2.Heals))
	}
}
