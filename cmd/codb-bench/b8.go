// B8: runtime membership churn. A star network over loopback TCP with
// durable nodes runs k rounds of "insert burst at every node, churn
// (coordinated remove + rejoin of rotating leaves at fresh listeners),
// global update". A static-membership FullExport bus network replays the
// identical insert programme as the reference. Headlines:
//
//   - the churned databases match the static reference byte for byte
//     after every round (tombstones and epoch-stamped rejoins lose
//     nothing and duplicate nothing);
//   - zero exhausted dials: no survivor ever retries a departed peer's
//     stale address, because removal floods a tombstone and rejoin
//     floods the new address at a higher epoch;
//   - per-round update wall/traffic for the churned network vs the
//     static baseline — the price of rejoining through durable export
//     state instead of re-shipping everything.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"codb"
)

const (
	b8Leaves = 4 // star leaves; the hub imports from every leaf
	b8Rounds = 4
	b8Burst  = 10 // inserts per node per round
	b8Churn  = 2  // leaves removed + rejoined per round (rotating)
)

// b8Name and b8Rule fix the star wiring: the hub n0 imports every leaf's
// extent through one copy rule per leaf.
func b8Name(i int) string { return fmt.Sprintf("n%d", i) }
func b8Rule(i int) (id, text string) {
	return fmt.Sprintf("r%d", i), fmt.Sprintf("n0.data(x, y) <- %s.data(x, y)", b8Name(i))
}

// b8Fingerprint renders every node's data extent into one sorted byte
// string — the byte-identity observable.
func b8Fingerprint(nw *codb.Network) string {
	var sb strings.Builder
	names := nw.Peers()
	sort.Strings(names)
	for _, name := range names {
		tuples := nw.Peer(name).Tuples("data")
		lines := make([]string, len(tuples))
		for i, t := range tuples {
			lines[i] = fmt.Sprint(t)
		}
		sort.Strings(lines)
		fmt.Fprintf(&sb, "%s(%d): %s\n", name, len(tuples), strings.Join(lines, " "))
	}
	return sb.String()
}

// b8Insert commits the round's burst — the same tuples into both networks.
func b8Insert(nw *codb.Network, round int) error {
	for i := 0; i <= b8Leaves; i++ {
		rows := make([]codb.Tuple, b8Burst)
		for j := range rows {
			k := round*1_000_000 + i*b8Burst + j
			rows[j] = codb.Row(codb.Int(k), codb.Int(round))
		}
		if err := nw.Insert(b8Name(i), "data", rows...); err != nil {
			return err
		}
	}
	return nil
}

// b8Update times one global update at the hub and returns a row with the
// initiator's traffic totals.
func b8Update(ctx context.Context, nw *codb.Network, name string) (benchRow, error) {
	t0 := time.Now()
	rep, err := nw.Update(ctx, "n0")
	if err != nil {
		return benchRow{}, err
	}
	wall := time.Since(t0)
	row := benchRow{Name: name, NsPerOp: float64(wall.Nanoseconds())}
	for _, n := range rep.MsgsPerRule {
		row.Msgs += n
	}
	for _, n := range rep.BytesPerRule {
		row.Bytes += n
	}
	for _, n := range rep.TuplesPerRule {
		row.Tuples += n
	}
	return row, nil
}

// membershipChurn is B8.
func membershipChurn(ctx context.Context) {
	fmt.Println("== B8: membership churn — runtime leave/rejoin vs static membership")
	root, err := os.MkdirTemp("", "codb-b8-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-bench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(root)

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "codb-bench: B8:", err)
		os.Exit(1)
	}

	// Churned network: loopback TCP, every node durable so a rejoined leaf
	// recovers its database and export watermarks from disk.
	churn := codb.NewNetworkWithOptions(codb.NetworkOptions{
		Transport: codb.TransportGroup{TCP: true},
	})
	defer churn.Close()
	// Static reference: same wiring, no churn, full re-export every round —
	// membership-independent ground truth.
	static := codb.NewNetworkWithOptions(codb.NetworkOptions{
		FullExport: true, DisableSessionSnapshots: true,
	})
	defer static.Close()

	for i := 0; i <= b8Leaves; i++ {
		name := b8Name(i)
		if _, err := churn.AddDurablePeer(name, filepath.Join(root, name), "data(x int, y int)"); err != nil {
			fail(err)
		}
		if _, err := static.AddPeer(name, "data(x int, y int)"); err != nil {
			fail(err)
		}
	}
	for i := 1; i <= b8Leaves; i++ {
		id, text := b8Rule(i)
		if err := churn.AddRule(id, text); err != nil {
			fail(err)
		}
		if err := static.AddRule(id, text); err != nil {
			fail(err)
		}
	}

	fmt.Printf("%7s %12s %12s %8s %8s %10s\n",
		"round/mode", "wall(ms)", "msgs", "bytes", "tuples", "identical")
	var rows []benchRow
	identical := true
	for round := 0; round < b8Rounds; round++ {
		if err := b8Insert(churn, round); err != nil {
			fail(err)
		}
		if err := b8Insert(static, round); err != nil {
			fail(err)
		}

		// Churn (after round 0): rotate b8Churn leaves out and back in.
		// RemovePeer floods tombstones; the re-added leaf comes back at a
		// fresh listener under a bumped epoch and re-declares its rule.
		if round > 0 {
			for c := 0; c < b8Churn; c++ {
				victim := 1 + ((round-1)*b8Churn+c)%b8Leaves
				name := b8Name(victim)
				churn.RemovePeer(name)
				if _, err := churn.AddDurablePeer(name, filepath.Join(root, name), "data(x int, y int)"); err != nil {
					fail(err)
				}
				id, text := b8Rule(victim)
				if err := churn.AddRule(id, text); err != nil {
					fail(err)
				}
			}
		}

		roundRows := make([]benchRow, 0, 2)
		for _, m := range []struct {
			label string
			nw    *codb.Network
		}{{"churn", churn}, {"static", static}} {
			row, err := b8Update(ctx, m.nw, fmt.Sprintf("round=%d/%s", round, m.label))
			if err != nil {
				fail(err)
			}
			roundRows = append(roundRows, row)
		}
		equal := b8Fingerprint(churn) == b8Fingerprint(static)
		identical = identical && equal
		roundRows[0].EqualDBs = &equal
		for _, row := range roundRows {
			fmt.Printf("%7s %12.3f %12d %8d %8d %10v\n", row.Name,
				row.NsPerOp/1e6, row.Msgs, row.Bytes, row.Tuples, equal)
		}
		rows = append(rows, roundRows...)
	}

	// Zero-stale-dial check: no peer in the churned network ever exhausted
	// a dial retry — tombstones and epoch overrides kept every send aimed
	// at a live listener.
	var dialFails uint64
	for _, name := range churn.Peers() {
		n, ok := churn.Peer(name).DialFailures()
		if !ok {
			fail(fmt.Errorf("%s has no dial counter", name))
		}
		dialFails += n
	}
	fmt.Printf("databases identical after every round: %v; exhausted dials at stale addresses: %d\n\n",
		identical, dialFails)
	rows = append(rows, benchRow{Name: "summary/churn-vs-static", EqualDBs: &identical, DialFails: dialFails})
	writeBench("B8", rows)
	if !identical || dialFails != 0 {
		fmt.Fprintln(os.Stderr, "codb-bench: B8 failed: churned network diverged or dialed stale addresses")
		os.Exit(1)
	}
}
