// B6: the HTTP/JSON serving layer under open-loop load, on a real
// multi-process deployment. The parent re-execs itself as bare worker
// processes (TCP transport + in-memory storage + per-peer gateway), a
// super-peer broadcast installs schema, rules and directory — exactly the
// codb-super bootstrap — and then everything else happens over HTTP:
// seeding, the global update, and an open-loop query storm against the
// gateways. A codec replay at the end re-encodes the update's envelope
// traffic through both the seed's gob framing and the versioned binary
// wire codec, giving the headline bytes ratio.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	httpapi "codb/internal/api/http"
	"codb/internal/config"
	"codb/internal/core"
	"codb/internal/experiment"
	"codb/internal/msg"
	"codb/internal/peer"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/superpeer"
	"codb/internal/transport"
	"codb/internal/wire"
)

// b6Worker switches the process into worker mode: a bare coDB node that
// learns everything (schema, rules, directory) from the super-peer
// broadcast, as codb-peer does with -listen and no -config.
var b6Worker = flag.String("b6-worker", "",
	"internal: run as a B6 worker node with this name (used by -exp B6 to spawn its deployment)")

// runB6Worker is the worker process body. It prints one READY line with
// its ephemeral addresses and serves until stdin reaches EOF — the parent
// holds the write end and closes it to shut the deployment down.
func runB6Worker(name string) {
	tr, err := transport.NewTCP(name, "127.0.0.1:0")
	if err != nil {
		fatalB6(err)
	}
	db, err := storage.Open(storage.Options{}) // memory-only
	if err != nil {
		fatalB6(err)
	}
	p, err := peer.New(peer.Options{Name: name, Transport: tr, Wrapper: core.NewStoreWrapper(db)})
	if err != nil {
		fatalB6(err)
	}
	gw, err := httpapi.New(httpapi.Options{Addr: "127.0.0.1:0", Peer: p})
	if err != nil {
		p.Stop()
		fatalB6(err)
	}
	fmt.Printf("B6-READY name=%s tcp=%s http=%s\n", name, tr.Addr(), gw.Addr())
	io.Copy(io.Discard, os.Stdin) // block until the parent hangs up
	gw.Close()
	p.Stop()
}

func fatalB6(err error) {
	fmt.Fprintln(os.Stderr, "codb-bench: b6 worker:", err)
	os.Exit(1)
}

// b6Node is one spawned worker process as seen from the parent.
type b6Node struct {
	name  string
	tcp   string
	http  string
	cmd   *exec.Cmd
	stdin io.WriteCloser
}

// spawnB6Node re-execs this binary as a worker and waits for its READY
// line.
func spawnB6Node(exe, name string) (*b6Node, error) {
	cmd := exec.Command(exe, "-b6-worker", name)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	n := &b6Node{name: name, cmd: cmd, stdin: stdin}
	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "B6-READY ") {
				continue
			}
			for _, f := range strings.Fields(line)[1:] {
				if v, ok := strings.CutPrefix(f, "tcp="); ok {
					n.tcp = v
				}
				if v, ok := strings.CutPrefix(f, "http="); ok {
					n.http = v
				}
			}
			ready <- nil
			// Keep draining so the worker never blocks on stdout.
			for sc.Scan() {
			}
			return
		}
		ready <- fmt.Errorf("worker %s exited before READY", name)
	}()
	select {
	case err := <-ready:
		if err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, err
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("worker %s: timeout waiting for READY", name)
	}
	if n.tcp == "" || n.http == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("worker %s: malformed READY line", name)
	}
	return n, nil
}

// stop closes the worker's stdin (its shutdown signal) and reaps it.
func (n *b6Node) stop() {
	n.stdin.Close()
	done := make(chan struct{})
	go func() { n.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		n.cmd.Process.Kill()
		<-done
	}
}

// --- HTTP client helpers -------------------------------------------------

func b6Post(client *http.Client, addr, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post("http://"+addr+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %s: %s", path, resp.Status, strings.TrimSpace(string(data)))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

func b6Get(client *http.Client, addr, path string, out any) error {
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(data)))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// --- the experiment ------------------------------------------------------

// httpServing is B6. Deployment: a 4-node chain N0 <- N1 <- N2 <- N3
// (rules pull data toward N0), each node an OS process with its own TCP
// listener and HTTP gateway, configured entirely by super-peer broadcast.
func httpServing(ctx context.Context) {
	fmt.Println("== B6: HTTP serving layer on a multi-process deployment — open-loop load + wire-vs-gob bytes")

	exe, err := os.Executable()
	if err != nil {
		fatalB6(err)
	}
	names := []string{"N0", "N1", "N2", "N3"}
	nodes := make([]*b6Node, 0, len(names))
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()
	for _, name := range names {
		n, err := spawnB6Node(exe, name)
		if err != nil {
			fatalB6(err)
		}
		nodes = append(nodes, n)
	}

	// Broadcast the configuration: schemas, chain rules and the directory
	// of worker addresses, exactly as codb-super would.
	var cfgText strings.Builder
	fmt.Fprintf(&cfgText, "version 1\n")
	for _, n := range nodes {
		fmt.Fprintf(&cfgText, "node %s addr %s\n  rel data(k int, v int)\nend\n", n.name, n.tcp)
	}
	for i := 0; i+1 < len(nodes); i++ {
		fmt.Fprintf(&cfgText, "rule r%d: %s.data(k, v) <- %s.data(k, v)\n",
			i+1, nodes[i].name, nodes[i+1].name)
	}
	cfg, err := config.Parse(cfgText.String())
	if err != nil {
		fatalB6(err)
	}
	superTr, err := transport.NewTCP("super", "127.0.0.1:0")
	if err != nil {
		fatalB6(err)
	}
	sp, err := superpeer.New(superpeer.Options{
		Transport: superTr,
		Directory: cfg.Directory(),
		Addr:      superTr.Addr(),
	})
	if err != nil {
		fatalB6(err)
	}
	defer sp.Stop()
	sp.SetConfig(cfg)
	if err := sp.Broadcast(); err != nil {
		fatalB6(err)
	}
	time.Sleep(300 * time.Millisecond) // let the flood settle

	client := &http.Client{Timeout: 30 * time.Second}
	tuples := *tuplesFlag

	// Seed every node over HTTP with disjoint keys.
	for i, n := range nodes {
		rows := make([][]any, tuples)
		for j := range rows {
			rows[j] = []any{i*tuples + j, j}
		}
		if err := b6Post(client, n.http, "/v1/insert",
			map[string]any{"relation": "data", "rows": rows}, nil); err != nil {
			fatalB6(err)
		}
	}

	// Global update, initiated over HTTP at the chain head.
	var upd struct {
		Report msg.UpdateReport `json:"report"`
	}
	start := time.Now()
	if err := b6Post(client, nodes[0].http, "/v1/update?timeout=2m",
		map[string]any{}, &upd); err != nil {
		fatalB6(err)
	}
	updWall := time.Since(start)

	// The chain pulls everything to N0: verify over HTTP before measuring.
	var q struct {
		Count int `json:"count"`
	}
	if err := b6Post(client, nodes[0].http, "/v1/query",
		map[string]any{"query": "ans(k, v) :- data(k, v)", "local": true}, &q); err != nil {
		fatalB6(err)
	}
	want := len(nodes) * tuples
	if q.Count != want {
		fatalB6(fmt.Errorf("after update: N0 has %d tuples, want %d", q.Count, want))
	}
	fmt.Printf("update at N0 over HTTP: %v wall, %d tuples materialised (longest path %d)\n",
		updWall.Round(time.Millisecond), q.Count, upd.Report.LongestPath)

	rows := []benchRow{{
		Name:    "B6/http-update",
		NsPerOp: float64(updWall.Nanoseconds()),
		Tuples:  q.Count,
		MaxPath: upd.Report.LongestPath,
	}}

	// Open-loop local-query load: requests are dispatched on a fixed
	// schedule across all four gateways regardless of completions, so
	// queue delay shows up in the latencies instead of silently throttling
	// the client (coordinated omission).
	const (
		targetQPS = 400
		loadFor   = 3 * time.Second
	)
	lats, errs, wall := b6OpenLoop(ctx, client, nodes, targetQPS, loadFor, func(i int) (string, any) {
		n := nodes[i%len(nodes)]
		return n.http, map[string]any{
			"query": fmt.Sprintf("ans(k, v) :- data(k, v), k > %d", (i*37)%want),
			"local": true,
		}
	})
	if errs > 0 {
		fatalB6(fmt.Errorf("open-loop load: %d requests failed", errs))
	}
	qps := float64(len(lats)) / wall.Seconds()
	fmt.Printf("open-loop local queries: %d reqs at %.0f qps (target %d) — p50 %v  p95 %v  p99 %v\n",
		len(lats), qps, targetQPS,
		experiment.Percentile(lats, 50).Round(time.Microsecond),
		experiment.Percentile(lats, 95).Round(time.Microsecond),
		experiment.Percentile(lats, 99).Round(time.Microsecond))
	rows = append(rows, benchRow{
		Name:    "B6/http-local-query-openloop",
		NsPerOp: float64(experiment.Percentile(lats, 50).Nanoseconds()),
		P95Ns:   float64(experiment.Percentile(lats, 95).Nanoseconds()),
		P99Ns:   float64(experiment.Percentile(lats, 99).Nanoseconds()),
		QPS:     qps,
		Tuples:  len(lats),
	})

	// A lighter open-loop round of distributed queries: each request
	// fetches from acquaintances at query time through the peer protocol,
	// so the gateway, planner and wire codec are all on the path.
	dlats, derrs, dwall := b6OpenLoop(ctx, client, nodes, 40, loadFor, func(i int) (string, any) {
		n := nodes[i%len(nodes)]
		return n.http, map[string]any{
			"query": fmt.Sprintf("ans(k, v) :- data(k, v), k > %d", (i*53)%want),
		}
	})
	if derrs > 0 {
		fatalB6(fmt.Errorf("distributed open-loop load: %d requests failed", derrs))
	}
	dqps := float64(len(dlats)) / dwall.Seconds()
	fmt.Printf("open-loop distributed queries: %d reqs at %.0f qps — p50 %v  p95 %v  p99 %v\n",
		len(dlats), dqps,
		experiment.Percentile(dlats, 50).Round(time.Microsecond),
		experiment.Percentile(dlats, 95).Round(time.Microsecond),
		experiment.Percentile(dlats, 99).Round(time.Microsecond))
	rows = append(rows, benchRow{
		Name:    "B6/http-distributed-query-openloop",
		NsPerOp: float64(experiment.Percentile(dlats, 50).Nanoseconds()),
		P95Ns:   float64(experiment.Percentile(dlats, 95).Nanoseconds()),
		P99Ns:   float64(experiment.Percentile(dlats, 99).Nanoseconds()),
		QPS:     dqps,
		Tuples:  len(dlats),
	})

	// Wire traffic actually sent by the deployment, from each gateway's
	// stats endpoint.
	var frames, wireBytes uint64
	for _, n := range nodes {
		var ws struct {
			Available  bool   `json:"available"`
			FramesSent uint64 `json:"frames_sent"`
			BytesSent  uint64 `json:"bytes_sent"`
		}
		if err := b6Get(client, n.http, "/v1/stats/wire", &ws); err != nil {
			fatalB6(err)
		}
		if !ws.Available {
			fatalB6(fmt.Errorf("node %s: wire stats unavailable", n.name))
		}
		frames += ws.FramesSent
		wireBytes += ws.BytesSent
	}
	fmt.Printf("wire traffic: %d frames, %d bytes sent across %d nodes\n", frames, wireBytes, len(nodes))
	rows = append(rows, benchRow{
		Name:      "B6/wire-traffic",
		Frames:    int(frames),
		WireBytes: int(wireBytes),
	})

	// Codec replay: re-encode a representative sample of the update's
	// envelope traffic through the seed's gob framing (fresh encoder +
	// 4-byte length prefix per message, as the original transport did) and
	// through the versioned binary wire codec (12-byte frame header).
	gobTotal, wireTotal, n := b6CodecReplay(tuples)
	ratio := float64(gobTotal) / float64(wireTotal)
	fmt.Printf("codec replay over %d envelopes: gob %d B, wire %d B — %.2fx smaller\n",
		n, gobTotal, wireTotal, ratio)
	rows = append(rows, benchRow{
		Name:      "B6/wire-vs-gob-codec",
		Bytes:     gobTotal,
		WireBytes: wireTotal,
		Msgs:      n,
		Ratio:     ratio,
	})

	writeBench("B6", rows)
}

// b6OpenLoop fires requests at a fixed rate without waiting for
// completions and returns the observed latencies, the failure count and
// the measured wall time.
func b6OpenLoop(ctx context.Context, client *http.Client, nodes []*b6Node,
	qps int, d time.Duration, req func(i int) (string, any)) ([]time.Duration, int, time.Duration) {
	interval := time.Second / time.Duration(qps)
	total := int(d / interval)
	var (
		mu   sync.Mutex
		lats = make([]time.Duration, 0, total)
		errs int
		wg   sync.WaitGroup
	)
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < total; i++ {
		select {
		case <-ctx.Done():
			i = total
			continue
		case <-tick.C:
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addr, body := req(i)
			t0 := time.Now()
			err := b6Post(client, addr, "/v1/query", body, nil)
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs++
				return
			}
			lats = append(lats, lat)
		}(i)
	}
	wg.Wait()
	return lats, errs, time.Since(start)
}

// b6CodecReplay encodes the same envelope mix — the SessionRequest /
// SessionData / SessionAck / SessionDone traffic chain updates generate,
// carrying real data tuples — through both codecs and returns total bytes
// for each, verifying that the wire form round-trips. The mix covers both
// update regimes: one initial full sync moving every tuple in outbox-sized
// batches, then the steady state the deployment actually lives in —
// repeated incremental rounds whose cross-session exports carry only the
// small per-round delta (B2), where framing overhead, not payload,
// dominates every message.
func b6CodecReplay(tuples int) (gobTotal, wireTotal, n int) {
	gob.Register(&msg.SessionRequest{})
	gob.Register(&msg.SessionData{})
	gob.Register(&msg.SessionAck{})
	gob.Register(&msg.SessionDone{})

	mkTuples := func(base, count int) []relation.Tuple {
		ts := make([]relation.Tuple, count)
		for i := range ts {
			ts[i] = relation.Tuple{relation.Int(base + i), relation.Int(i)}
		}
		return ts
	}
	path := []string{"N0", "N1", "N2", "N3"}
	var envs []msg.Envelope
	// One update session from N0: request/data/ack/done per chain hop.
	session := func(sid string, moved int, batch int) {
		for hop := 0; hop < 3; hop++ {
			from, to := path[hop+1], path[hop]
			envs = append(envs, msg.Envelope{From: to, Payload: &msg.SessionRequest{
				SID: sid, Kind: msg.KindUpdate, Origin: "N0",
				Path:  path[:hop+1],
				Rules: []msg.RuleDef{{ID: fmt.Sprintf("r%d", hop+1), Text: fmt.Sprintf("%s.data(k, v) <- %s.data(k, v)", to, from)}},
			}})
			for sent := 0; sent < moved; sent += batch {
				count := batch
				if moved-sent < count {
					count = moved - sent
				}
				envs = append(envs, msg.Envelope{From: from, Payload: &msg.SessionData{
					SID: sid, Kind: msg.KindUpdate, Origin: "N0",
					RuleID:   fmt.Sprintf("r%d", hop+1),
					Bindings: mkTuples((hop+1)*tuples+sent, count),
					Path:     path[:hop+2],
					Seq:      sent / batch,
					Mode:     msg.ExportIncremental,
					Skipped:  tuples - moved,
				}})
				envs = append(envs, msg.Envelope{From: to, Payload: &msg.SessionAck{SID: sid, N: count}})
			}
			envs = append(envs, msg.Envelope{From: from, Payload: &msg.SessionDone{SID: sid, Origin: "N0"}})
		}
	}
	session("u-N0-1", tuples, 64) // initial full sync, outbox-sized batches
	const rounds, delta = 20, 4   // steady state: small per-round deltas
	for r := 0; r < rounds; r++ {
		session(fmt.Sprintf("u-N0-%d", r+2), delta, delta)
	}

	for _, e := range envs {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
			fatalB6(fmt.Errorf("gob encode: %w", err))
		}
		gobTotal += 4 + buf.Len() // seed framing: uint32 length prefix

		body, tag, err := msg.AppendEnvelope(nil, e)
		if err != nil {
			fatalB6(fmt.Errorf("wire encode: %w", err))
		}
		frame := wire.AppendFrame(nil, wire.MaxVersion, byte(tag), body)
		wireTotal += len(frame)
		// Fidelity check: the frame body must decode back to the envelope.
		back, err := msg.DecodeEnvelope(tag, body)
		if err != nil {
			fatalB6(fmt.Errorf("wire decode: %w", err))
		}
		if back.From != e.From {
			fatalB6(fmt.Errorf("wire round-trip: from %q != %q", back.From, e.From))
		}
	}
	return gobTotal, wireTotal, len(envs)
}
