// B9: per-link propagation policies. A star network (hub n0 exports its
// extent to every leaf through one copy rule per leaf) runs k rounds of
// "insert burst at the hub, global update, skewed reads": the first half of
// the leaves is hot (queried every round), the second half cold (never
// read). The programme runs three times — all links push (the eager
// default), all links pull (updates flood only invalidation hints; readers
// pull on demand), and all links adaptive (links demote themselves to pull
// after consecutive unread deliveries) — and records:
//
//   - bytes shipped over the cold links during the rounds: the lazy modes
//     must move >= 5x less than all-push, since nobody reads those extents;
//   - staleness at pull time on the hot links (p50/p99 across leaves):
//     the price of laziness, bounded by the read-triggered synchronous
//     pull;
//   - byte-identity after Network.CatchUp: once the cold links are pulled
//     up to date, the lazy databases must match the all-push reference
//     byte for byte.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"codb"
)

const (
	b9Leaves = 8  // star leaves importing the hub's extent
	b9Hot    = 4  // leaves queried every round; the rest stay cold
	b9Rounds = 16 // insert burst + update + skewed reads per round
	b9Burst  = 40 // tuples inserted at the hub per round
)

func b9Name(i int) string { return fmt.Sprintf("l%d", i) }
func b9Rule(i int) (id, text string) {
	return fmt.Sprintf("r%d", i), fmt.Sprintf("%s.data(x, y) <- n0.data(x, y)", b9Name(i))
}

// b9LinkBytes sums pushed+pulled bytes over the given hub links
// (exporter-side counters).
func b9LinkBytes(nw *codb.Network, rules map[string]bool) int {
	st, _ := nw.PeerPropagationStats("n0")
	total := 0
	for _, l := range st.Links {
		if rules[l.RuleID] {
			total += int(l.BytesPushed + l.BytesPulled)
		}
	}
	return total
}

// b9Staleness aggregates the staleness-at-pull quantiles across the leaves:
// the worst per-leaf p50 and p99, plus the sample count behind them.
func b9Staleness(nw *codb.Network) (p50, p99 time.Duration, samples int) {
	for i := 1; i <= b9Leaves; i++ {
		st, ok := nw.PeerPropagationStats(b9Name(i))
		if !ok {
			continue
		}
		samples += st.StalenessSamples
		if st.StalenessP50 > p50 {
			p50 = st.StalenessP50
		}
		if st.StalenessP99 > p99 {
			p99 = st.StalenessP99
		}
	}
	return p50, p99, samples
}

// propagationPolicies is B9.
func propagationPolicies(ctx context.Context) {
	fmt.Println("== B9: per-link propagation policies — push vs lazy pull vs adaptive under skewed reads")

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "codb-bench: B9:", err)
		os.Exit(1)
	}

	coldRules := make(map[string]bool)
	allRules := make(map[string]bool)
	for i := 1; i <= b9Leaves; i++ {
		id, _ := b9Rule(i)
		allRules[id] = true
		if i > b9Hot {
			coldRules[id] = true
		}
	}

	fmt.Printf("%-10s %12s %12s %12s %12s %10s\n",
		"mode", "coldB(rounds)", "allB(rounds)", "stale-p50", "stale-p99", "identical")

	var rows []benchRow
	var pushColdBytes int
	var pushFingerprint string
	coldBytesOf := make(map[string]int)
	identicalAll := true
	for _, mode := range []string{"push", "pull", "adaptive"} {
		opts := codb.NetworkOptions{}
		if mode != "push" {
			opts.Propagation = codb.PropagationGroup{Default: mode}
		}
		nw := codb.NewNetworkWithOptions(opts)
		if _, err := nw.AddPeer("n0", "data(x int, y int)"); err != nil {
			fail(err)
		}
		for i := 1; i <= b9Leaves; i++ {
			if _, err := nw.AddPeer(b9Name(i), "data(x int, y int)"); err != nil {
				fail(err)
			}
		}
		for i := 1; i <= b9Leaves; i++ {
			id, text := b9Rule(i)
			if err := nw.AddRule(id, text); err != nil {
				fail(err)
			}
		}

		for round := 0; round < b9Rounds; round++ {
			tuples := make([]codb.Tuple, b9Burst)
			for j := range tuples {
				tuples[j] = codb.Row(codb.Int(round*1_000_000+j), codb.Int(round))
			}
			if err := nw.Insert("n0", "data", tuples...); err != nil {
				fail(err)
			}
			if _, err := nw.Update(ctx, "n0"); err != nil {
				fail(err)
			}
			// Skewed reads: only the hot leaves are ever queried. The local
			// query is what triggers a hot pull link's synchronous pull.
			for i := 1; i <= b9Hot; i++ {
				got, err := nw.LocalQuery(b9Name(i), fmt.Sprintf("ans(x, y) :- data(x, y), y >= %d", round), codb.AllAnswers)
				if err != nil {
					fail(err)
				}
				if len(got) != b9Burst {
					fail(fmt.Errorf("mode %s round %d: hot leaf %s sees %d of %d fresh tuples",
						mode, round, b9Name(i), len(got), b9Burst))
				}
			}
		}

		coldBytes := b9LinkBytes(nw, coldRules)
		allBytes := b9LinkBytes(nw, allRules)
		p50, p99, samples := b9Staleness(nw)

		// Catch-up: pull every lazy link up to date, then the databases must
		// match all-push byte for byte.
		if _, err := nw.CatchUp(ctx); err != nil {
			fail(err)
		}
		catchupBytes := b9LinkBytes(nw, allRules) - allBytes
		fp := b8Fingerprint(nw)
		equal := true
		if mode == "push" {
			pushFingerprint = fp
			pushColdBytes = coldBytes
		} else {
			equal = fp == pushFingerprint
			identicalAll = identicalAll && equal
		}
		nw.Close()

		fmt.Printf("%-10s %12d %12d %12v %12v %10v\n", mode,
			coldBytes, allBytes, p50.Round(time.Microsecond), p99.Round(time.Microsecond), equal)
		coldBytesOf[mode] = coldBytes
		row := benchRow{
			Name:    "rounds/" + mode,
			Bytes:   coldBytes,
			Msgs:    allBytes,
			NsPerOp: float64(p50.Nanoseconds()),
			P99Ns:   float64(p99.Nanoseconds()),
			Tuples:  samples,
		}
		if mode != "push" {
			row.Ratio = ratio(pushColdBytes, coldBytes)
			row.EqualDBs = &equal
		}
		rows = append(rows, row)
		rows = append(rows, benchRow{Name: "catchup/" + mode, Bytes: catchupBytes})
		if samples > 0 && p99 > 2*time.Second {
			fail(fmt.Errorf("mode %s: staleness p99 %v exceeds the pull-timeout bound", mode, p99))
		}
	}

	pullRatio := ratio(pushColdBytes, coldBytesOf["pull"])
	adaptiveRatio := ratio(pushColdBytes, coldBytesOf["adaptive"])
	fmt.Printf("cold-link bytes, push over pull: %.1fx; push over adaptive: %.1fx; identical after catch-up: %v\n\n",
		pullRatio, adaptiveRatio, identicalAll)
	rows = append(rows, benchRow{Name: "summary/cold-links", Ratio: pullRatio, BytesRatio: adaptiveRatio, EqualDBs: &identicalAll})
	writeBench("B9", rows)
	if pullRatio < 5 || adaptiveRatio < 5 || !identicalAll {
		fmt.Fprintln(os.Stderr, "codb-bench: B9 failed: lazy links saved too little or diverged after catch-up")
		os.Exit(1)
	}
}
