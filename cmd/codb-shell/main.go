// Command codb-shell is the interactive console corresponding to the
// paper's query interface and peer-discovery windows (Figures 2 and 3): it
// builds a whole coDB network in-process from a configuration file and lets
// the user query any node, run global and scoped updates, inspect links,
// pipes and reports, and reconfigure the topology at runtime.
//
// Usage:
//
//	codb-shell -config net.codb
//	codb-shell -config net.codb -tcp                   # peers on real sockets
//	codb-shell -config net.codb -http 127.0.0.1:8080   # + HTTP/JSON gateway
//
// Commands (also `help` at the prompt):
//
//	query <node> <query>        distributed query with streaming results
//	certain <node> <query>      distributed query, certain answers only
//	local <node> <query>        local-only query
//	update <node>               run a global update from <node>
//	scoped <node> <rel,...>     query-dependent update for the relations
//	insert <node> <rel> v1 v2…  insert a tuple (ints, "strings", true/false)
//	show <node> <rel>           dump a relation
//	peers <node>                pipes, links and discovered peers (Fig. 3)
//	report <node>               the node's session reports
//	cache <node>                the node's query-result-cache counters
//	storage <node>              per-shard storage, WAL and group-commit stats
//	wire <node>                 TCP frame/byte counters and outbox batching
//	stats                       super-peer: collect and aggregate statistics
//	reload <file>               broadcast a new rules file (runtime change)
//	topology                    list nodes and rules
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"codb"
	"codb/internal/console"
)

func main() {
	cfgPath := flag.String("config", "", "network configuration file (required)")
	useTCP := flag.Bool("tcp", false, "connect peers over real TCP sockets instead of the in-process bus")
	httpAddr := flag.String("http", "", "serve an HTTP/JSON gateway for the whole network on this address (select nodes with ?node=)")
	flag.Parse()
	if *cfgPath == "" {
		fmt.Fprintln(os.Stderr, "codb-shell: -config is required")
		os.Exit(2)
	}
	text, err := os.ReadFile(*cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-shell:", err)
		os.Exit(1)
	}
	opts := codb.NetworkOptions{}
	opts.Transport.TCP = *useTCP
	nw, err := codb.NewNetworkFromConfigWithOptions(string(text), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codb-shell:", err)
		os.Exit(1)
	}
	defer nw.Close()
	fmt.Printf("coDB network up: peers %v\n", nw.Peers())
	if *httpAddr != "" {
		bound, err := nw.StartGateway(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codb-shell:", err)
			nw.Close()
			os.Exit(1)
		}
		fmt.Printf("coDB http gateway on %s\n", bound)
	}

	c := console.New(nw, os.Stdout)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("codb> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		if !c.Execute(sc.Text()) {
			return
		}
	}
}
