// Package codb is a from-scratch Go implementation of the coDB peer-to-peer
// database system (Franconi, Kuper, Lopatenko, Zaihrayeu: "Queries and
// Updates in the coDB Peer to Peer Database System", VLDB 2004).
//
// A coDB network is a set of autonomous relational databases with
// heterogeneous schemas, interconnected by GLAV coordination rules —
// inclusions of conjunctive queries, possibly with existential variables in
// the head, possibly cyclic. Each node can be queried in its own schema;
// data is fetched from acquaintances at query time, or materialised ahead
// of time by the distributed global update algorithm, which terminates even
// on cyclic rule graphs.
//
// The Network type runs a whole P2P network inside one process (each peer a
// goroutine actor, connected by an in-process bus), which is the easiest
// way to use the library and how the paper's demo experiments run:
//
//	nw := codb.NewNetwork()
//	defer nw.Close()
//	nw.MustAddPeer("hospital", "patient(id int, name string)")
//	nw.MustAddPeer("clinic", "visitor(id int, name string)")
//	nw.MustAddRule("r1", `hospital.patient(x, n) <- clinic.visitor(x, n)`)
//	nw.Insert("clinic", "visitor", codb.Row(codb.Int(1), codb.Str("ann")))
//	nw.Update(context.Background(), "hospital")
//	rows, _ := nw.LocalQuery("hospital", `ans(n) :- patient(x, n)`, codb.AllAnswers)
//
// Multi-process deployments use the same peers over TCP; see cmd/codb-peer
// and cmd/codb-super.
package codb

import (
	"context"
	"fmt"
	"sync"
	"time"

	httpapi "codb/internal/api/http"
	"codb/internal/config"
	"codb/internal/core"
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/peer"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/superpeer"
	"codb/internal/transport"
)

// Re-exported building blocks, so library users need only this package.
type (
	// Value is one typed attribute value (int, float, string, bool, or a
	// marked null).
	Value = relation.Value
	// Tuple is one relational tuple.
	Tuple = relation.Tuple
	// Report is the per-session statistics record of the paper's
	// statistical module.
	Report = msg.UpdateReport
	// QueryMode selects all-answers or certain-answers semantics.
	QueryMode = core.QueryMode
	// Peer is a running coDB node.
	Peer = peer.Peer
	// SuperPeer coordinates experiments: rule broadcasts, remote updates,
	// statistics aggregation.
	SuperPeer = superpeer.SuperPeer
	// Aggregate is a cross-node per-session statistics summary.
	Aggregate = superpeer.Aggregate
	// ReadStats are a peer's query-result-cache counters (concurrent read
	// path).
	ReadStats = core.QueryCacheStats
	// StorageStats is a peer's storage-engine report: per-shard row/byte
	// counts, WAL size, group-commit batching counters.
	StorageStats = storage.DetailedStats
	// PropagationStats is a peer's propagation-policy snapshot: per-link
	// counters plus staleness quantiles.
	PropagationStats = peer.PropagationStats
	// LinkPropagationStats is one link's propagation counters.
	LinkPropagationStats = core.LinkPropagationStats
	// MembershipStats is a peer's failure-detector snapshot: per-peer
	// suspicion states, transition counters, directory totals.
	MembershipStats = peer.MembershipStats
)

// Query modes.
const (
	// AllAnswers streams every derived answer, marked nulls included.
	AllAnswers = core.AllAnswers
	// CertainAnswers drops answers containing marked nulls.
	CertainAnswers = core.CertainAnswers
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = relation.Int
	// Float builds a float value.
	Float = relation.Float
	// Str builds a string value.
	Str = relation.Str
	// Bool builds a boolean value.
	Bool = relation.Bool
	// Null builds a marked null with the given label.
	Null = relation.Null
)

// Row builds a tuple from values.
func Row(vs ...Value) Tuple { return Tuple(vs) }

// Network is an in-process coDB network: peers as goroutine actors,
// connected by an in-process bus or — with Transport.TCP — by real sockets
// speaking the versioned binary wire protocol. Safe for concurrent use.
type Network struct {
	mu     sync.Mutex
	bus    *transport.Bus
	peers  map[string]*peer.Peer
	dbs    map[string]*storage.DB // databases the network opened and owns
	addrs  map[string]string      // TCP mode: node -> dial address
	epochs map[string]uint64      // node -> directory epoch (bumped per re-add)
	https  map[string]*httpapi.Server
	gw     *httpapi.Server // network-wide gateway (StartGateway)
	super  *superpeer.SuperPeer
	opts   NetworkOptions
}

// StorageGroup groups the storage-engine knobs of NetworkOptions.
type StorageGroup struct {
	// Shards hash-partitions every peer database's relations into this
	// many shards, each with its own lock, indexes, changelog and snapshot
	// view, so concurrent writers to different shards never contend (see
	// storage.Options.Shards). 0 keeps a recovered database's own count
	// (1 for fresh databases).
	Shards int
	// SyncOnCommit makes every commit of a durable peer database reach
	// stable storage before the commit returns. Viable under load thanks
	// to the WAL group-commit pipeline, which shares one fsync across a
	// batch of concurrent commits.
	SyncOnCommit bool
	// DisableGroupCommit reverts durable peer databases to inline
	// per-commit WAL appends (and with SyncOnCommit one fsync per commit):
	// the B4 baseline.
	DisableGroupCommit bool
	// SegmentBytes rotates each durable peer database's WAL to a fresh
	// segment at this size (0 = storage default). Smaller segments mean
	// finer-grained checkpoint truncation and changelog spill.
	SegmentBytes int64
	// RetainSegments keeps up to this many checkpoint-superseded WAL
	// segments per durable peer database, so incremental-export watermarks
	// stay answerable from disk across checkpoints and restarts (0 =
	// storage default, negative = none).
	RetainSegments int
	// ChangelogLimit bounds each peer database's per-shard in-memory
	// changelog (0 = storage default, negative disables change capture).
	// On durable peers an overflowed ring spills to the WAL segments
	// instead of degrading exports to history-lost full re-ships.
	ChangelogLimit int
}

// TransportGroup selects how the network's peers are interconnected.
type TransportGroup struct {
	// TCP runs each peer on its own socket listener speaking the versioned
	// binary wire protocol (internal/wire), exactly as multi-process
	// deployments do, instead of the in-process bus. The network maintains
	// the dial directory as peers join.
	TCP bool
	// ListenAddr is the listen address given to every peer's listener in
	// TCP mode (default "127.0.0.1:0"; keep port 0 with more than one
	// peer per host).
	ListenAddr string
	// Wrap, when set, wraps each joining peer's transport before the peer
	// is built on it — the fault-injection seam. Return
	// transport.NewPartitioner(tr) (keeping the reference) to inject
	// partitions and delays per peer, as the B10 benchmark and the
	// partition stress tests do; return tr unchanged to leave a peer
	// unwrapped.
	Wrap func(node string, tr transport.Transport) transport.Transport
}

// SuspicionGroup enables the heartbeat failure detector on every peer: each
// TCP pipe carries periodic heartbeat frames, and a peer silent past Timeout
// is suspected, past 2×Timeout declared down — in-flight work written off,
// pipe severed, paced redials armed — but never tombstoned, because a
// partitioned peer is expected back. On reconnect the pipe, directory and
// lazy links heal automatically. See internal/peer/suspicion.go.
type SuspicionGroup struct {
	// Timeout is the silence threshold; 0 disables the detector.
	Timeout time.Duration
	// Interval is the heartbeat emission and scan period (0 = Timeout/4).
	Interval time.Duration
}

// ReadGroup groups the read-path knobs of NetworkOptions.
type ReadGroup struct {
	// EvalParallelism caps the worker fan-out of the hash-join probe phase
	// on large relations (see cq.EvalOptions.Parallelism); 0 or 1 keeps
	// evaluation serial.
	EvalParallelism int
	// QueryCacheSize bounds each peer's query-result cache (0 selects the
	// default bound). Cached answers are invalidated by the storage commit
	// LSN and the rule-set version, so they are always current.
	QueryCacheSize int
	// DisableReadPath forces every read through the peer actor loop, as
	// the seed implementation did (the B3 baseline). By default peers with
	// snapshot-capable storage answer LocalQuery / local-only queries /
	// Count / Tuples from pinned snapshots, concurrently with running
	// update sessions.
	DisableReadPath bool
}

// PropagationGroup configures per-link propagation policies: how committed
// deltas travel each coordination rule during global updates.
type PropagationGroup struct {
	// Policies maps rule IDs to modes: "push" (eager, the default), "pull"
	// (updates flood only a cheap invalidation hint; the importer pulls
	// the delta on demand), "adaptive" (flips between push and pull using
	// the importer's read demand), or "filter" (push with a predicate).
	Policies map[string]string
	// Filters maps rule IDs to filter predicates — comma-separated
	// comparisons over the rule's frontier variables, e.g. "x > 10" —
	// dropped bindings are counted as suppressed. A filter combines with
	// any mode.
	Filters map[string]string
	// Default applies to every rule without an explicit Policies entry
	// ("" = push).
	Default string
	// MaxStaleness bounds how long a pull link may stay stale before the
	// importer pulls on its own (0 = pull only on local reads or explicit
	// CatchUp).
	MaxStaleness time.Duration
	// PullTimeout bounds how long a local query blocks on a triggered pull
	// before answering from the stale extent (0 = peer default, 2s).
	PullTimeout time.Duration
}

// HTTPGroup enables the per-peer HTTP/JSON serving layer.
type HTTPGroup struct {
	// Enable starts one HTTP gateway per peer as it joins, serving the
	// /v1/* endpoints (see internal/api/http). PeerHTTPAddr reports the
	// bound addresses.
	Enable bool
	// Addr is the listen address for each peer's gateway (default
	// "127.0.0.1:0"; keep port 0 with more than one peer per host).
	Addr string
}

// NetworkOptions tune every peer of the network: algorithm/ablation toggles
// at the top level, engine knobs in the Storage, Transport, Read and HTTP
// groups. The flat fields below the groups are the pre-group spellings,
// kept working for existing callers; a set flat field applies unless its
// group field is also set.
type NetworkOptions struct {
	// MaxDepth bounds the chase's null derivation depth (0 = default,
	// negative = unlimited); see core.Config.
	MaxDepth int
	// NestedLoopJoin switches the CQ evaluator to nested loops (A3).
	NestedLoopJoin bool
	// DisableDedup turns off the per-link sent caches (A2).
	DisableDedup bool
	// Naive disables semi-naive delta evaluation (A1).
	Naive bool
	// FullExport disables cross-session incremental export: every update
	// session re-evaluates and re-ships every link in full, as the paper's
	// algorithm does (the B2 baseline). By default peers keep per-rule LSN
	// watermarks and shipped-binding fingerprints, so repeated updates
	// ship only what changed since the previous session.
	FullExport bool
	// DisableSessionSnapshots forces update-session evaluation back onto
	// the live wrapper (serial scans under storage locks) instead of
	// pinned storage snapshots — the serial baseline of the B7 benchmark.
	// By default sessions pin a snapshot at their commit LSN, re-pinned
	// after each materialising insert, which unlocks shard-parallel
	// hash-join builds and secondary-index pushdown on the write path.
	DisableSessionSnapshots bool

	// Storage holds the storage-engine knobs.
	Storage StorageGroup
	// Transport selects in-process bus (default) or TCP interconnect.
	Transport TransportGroup
	// Read holds the read-path knobs.
	Read ReadGroup
	// Propagation holds the per-link propagation policies.
	Propagation PropagationGroup
	// Suspicion enables the heartbeat failure detector (partition/heal).
	Suspicion SuspicionGroup
	// HTTP enables the per-peer HTTP/JSON gateways.
	HTTP HTTPGroup

	// EvalParallelism is the flat spelling of Read.EvalParallelism.
	//
	// Deprecated: set Read.EvalParallelism.
	EvalParallelism int
	// QueryCacheSize is the flat spelling of Read.QueryCacheSize.
	//
	// Deprecated: set Read.QueryCacheSize.
	QueryCacheSize int
	// DisableReadPath is the flat spelling of Read.DisableReadPath.
	//
	// Deprecated: set Read.DisableReadPath.
	DisableReadPath bool
	// Shards is the flat spelling of Storage.Shards.
	//
	// Deprecated: set Storage.Shards.
	Shards int
	// SyncOnCommit is the flat spelling of Storage.SyncOnCommit.
	//
	// Deprecated: set Storage.SyncOnCommit.
	SyncOnCommit bool
	// DisableGroupCommit is the flat spelling of Storage.DisableGroupCommit.
	//
	// Deprecated: set Storage.DisableGroupCommit.
	DisableGroupCommit bool
	// SegmentBytes is the flat spelling of Storage.SegmentBytes.
	//
	// Deprecated: set Storage.SegmentBytes.
	SegmentBytes int64
	// RetainSegments is the flat spelling of Storage.RetainSegments.
	//
	// Deprecated: set Storage.RetainSegments.
	RetainSegments int
	// ChangelogLimit is the flat spelling of Storage.ChangelogLimit.
	//
	// Deprecated: set Storage.ChangelogLimit.
	ChangelogLimit int
}

// resolved folds the deprecated flat fields into their groups: a group
// field that is set wins; an unset group field takes the flat value
// (booleans are ORed, since set == true).
func (o NetworkOptions) resolved() NetworkOptions {
	if o.Storage.Shards == 0 {
		o.Storage.Shards = o.Shards
	}
	o.Storage.SyncOnCommit = o.Storage.SyncOnCommit || o.SyncOnCommit
	o.Storage.DisableGroupCommit = o.Storage.DisableGroupCommit || o.DisableGroupCommit
	if o.Storage.SegmentBytes == 0 {
		o.Storage.SegmentBytes = o.SegmentBytes
	}
	if o.Storage.RetainSegments == 0 {
		o.Storage.RetainSegments = o.RetainSegments
	}
	if o.Storage.ChangelogLimit == 0 {
		o.Storage.ChangelogLimit = o.ChangelogLimit
	}
	if o.Read.EvalParallelism == 0 {
		o.Read.EvalParallelism = o.EvalParallelism
	}
	if o.Read.QueryCacheSize == 0 {
		o.Read.QueryCacheSize = o.QueryCacheSize
	}
	o.Read.DisableReadPath = o.Read.DisableReadPath || o.DisableReadPath
	if o.Transport.ListenAddr == "" {
		o.Transport.ListenAddr = "127.0.0.1:0"
	}
	if o.HTTP.Addr == "" {
		o.HTTP.Addr = "127.0.0.1:0"
	}
	return o
}

// NewNetwork creates an empty in-process network.
func NewNetwork() *Network { return NewNetworkWithOptions(NetworkOptions{}) }

// NewNetworkWithOptions creates an empty network with algorithm toggles.
func NewNetworkWithOptions(opts NetworkOptions) *Network {
	return &Network{
		bus:    transport.NewBus(),
		peers:  make(map[string]*peer.Peer),
		dbs:    make(map[string]*storage.DB),
		addrs:  make(map[string]string),
		epochs: make(map[string]uint64),
		https:  make(map[string]*httpapi.Server),
		opts:   opts.resolved(),
	}
}

func (nw *Network) peerOptions(name string, w core.Wrapper) peer.Options {
	eval := cq.EvalOptions{}
	if nw.opts.NestedLoopJoin {
		eval.Strategy = cq.NestedLoop
	}
	eval.Parallelism = nw.opts.Read.EvalParallelism
	return peer.Options{
		Name:                    name,
		Wrapper:                 w,
		MaxDepth:                nw.opts.MaxDepth,
		Eval:                    eval,
		DisableDedup:            nw.opts.DisableDedup,
		Naive:                   nw.opts.Naive,
		FullExport:              nw.opts.FullExport,
		DisableSessionSnapshots: nw.opts.DisableSessionSnapshots,
		QueryCacheSize:          nw.opts.Read.QueryCacheSize,
		DisableReadPath:         nw.opts.Read.DisableReadPath,
		LinkPolicies:            nw.opts.Propagation.Policies,
		LinkFilters:             nw.opts.Propagation.Filters,
		MaxStaleness:            nw.opts.Propagation.MaxStaleness,
		PullTimeout:             nw.opts.Propagation.PullTimeout,
		SuspicionTimeout:        nw.opts.Suspicion.Timeout,
		SuspicionInterval:       nw.opts.Suspicion.Interval,
	}
}

// AddPeer starts a peer with an in-memory database whose shared schema is
// given as relation declarations, e.g. "emp(id int, name string)".
func (nw *Network) AddPeer(name string, relations ...string) (*Peer, error) {
	return nw.addPeer(name, "", relations...)
}

// AddDurablePeer starts a peer whose database persists under dir (WAL +
// snapshots; state is recovered on restart).
func (nw *Network) AddDurablePeer(name, dir string, relations ...string) (*Peer, error) {
	return nw.addPeer(name, dir, relations...)
}

// storageOptions resolves the network's storage knobs for one peer
// database.
func (nw *Network) storageOptions(dir string) storage.Options {
	return storage.Options{
		Dir:                dir,
		Shards:             nw.opts.Storage.Shards,
		SyncOnCommit:       nw.opts.Storage.SyncOnCommit,
		DisableGroupCommit: nw.opts.Storage.DisableGroupCommit,
		SegmentBytes:       nw.opts.Storage.SegmentBytes,
		RetainSegments:     nw.opts.Storage.RetainSegments,
		ChangelogLimit:     nw.opts.Storage.ChangelogLimit,
	}
}

func (nw *Network) addPeer(name, dir string, relations ...string) (*Peer, error) {
	db, err := storage.Open(nw.storageOptions(dir))
	if err != nil {
		return nil, err
	}
	for _, decl := range relations {
		def, err := parseRelDecl(decl)
		if err != nil {
			db.Close()
			return nil, err
		}
		if db.Rel(def.Name) != nil {
			continue // recovered from disk
		}
		if err := db.DefineRelation(def); err != nil {
			db.Close()
			return nil, err
		}
	}
	p, err := nw.join(name, core.NewStoreWrapper(db))
	if err != nil {
		db.Close()
		return nil, err
	}
	nw.mu.Lock()
	nw.dbs[name] = db
	nw.mu.Unlock()
	return p, nil
}

// AddMediator starts a peer without a local database: the schema must still
// be declared, and all operations execute in the wrapper (paper Figure 1's
// dashed LDB).
func (nw *Network) AddMediator(name string, relations ...string) (*Peer, error) {
	schema := relation.NewSchema()
	for _, decl := range relations {
		def, err := parseRelDecl(decl)
		if err != nil {
			return nil, err
		}
		if err := schema.Add(def); err != nil {
			return nil, err
		}
	}
	return nw.join(name, core.NewMediatorWrapper(schema))
}

func (nw *Network) join(name string, w core.Wrapper) (*Peer, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, dup := nw.peers[name]; dup {
		return nil, fmt.Errorf("codb: peer %q already exists", name)
	}
	opts := nw.peerOptions(name, w)
	// A name that was here before rejoins as a fresh incarnation: its
	// directory epoch bumps so the entry overrides any tombstone (or stale
	// address) the survivors still hold.
	epoch, seen := nw.epochs[name]
	if seen {
		epoch++
	}
	nw.epochs[name] = epoch
	opts.Epoch = epoch
	var addr string
	if nw.opts.Transport.TCP {
		tcp, err := transport.NewTCP(name, nw.opts.Transport.ListenAddr)
		if err != nil {
			return nil, err
		}
		addr = tcp.Addr()
		// Hand the joiner the dial addresses of everyone already here;
		// they learn the joiner's below.
		dir := make(map[string]string, len(nw.addrs))
		for node, a := range nw.addrs {
			dir[node] = a
		}
		opts.Transport = tcp
		opts.Directory = dir
	} else {
		tr, err := nw.bus.Join(name)
		if err != nil {
			return nil, err
		}
		opts.Transport = tr
	}
	if wrap := nw.opts.Transport.Wrap; wrap != nil {
		opts.Transport = wrap(name, opts.Transport)
	}
	p, err := peer.New(opts)
	if err != nil {
		opts.Transport.Close()
		return nil, err
	}
	if nw.opts.HTTP.Enable {
		srv, err := httpapi.New(httpapi.Options{
			Addr:    nw.opts.HTTP.Addr,
			Peer:    p,
			Resolve: nw.resolvePeer,
		})
		if err != nil {
			p.Stop()
			return nil, err
		}
		nw.https[name] = srv
	}
	if nw.opts.Transport.TCP {
		nw.addrs[name] = addr
	}
	// Flood the joiner's epoch-stamped entry: it overrides tombstones and
	// stale addresses of earlier incarnations of the same name.
	entry := []msg.DirEntry{{Node: name, Addr: addr, Epoch: epoch}}
	for _, other := range nw.peers {
		other.ApplyDirectoryEntries(entry)
	}
	if nw.super != nil {
		nw.super.Peer().ApplyDirectoryEntries(entry)
	}
	nw.peers[name] = p
	return p, nil
}

// resolvePeer is the gateways' node resolver.
func (nw *Network) resolvePeer(node string) (*peer.Peer, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if p := nw.peers[node]; p != nil {
		return p, nil
	}
	return nil, unknownPeer(node)
}

// MustAddPeer is AddPeer panicking on error.
func (nw *Network) MustAddPeer(name string, relations ...string) *Peer {
	p, err := nw.AddPeer(name, relations...)
	if err != nil {
		panic(err)
	}
	return p
}

// JoinRemote starts a peer with an in-memory database and joins it into a
// LIVE REMOTE network through the peer listening at addr (a super-peer or
// any admitting peer of another process): the new peer dials the admitter,
// sends a wire-level JoinRequest, and installs the rules and directory from
// the JoinAccept handoff. Requires Transport.TCP. On a failed handshake the
// peer is removed again and the error returned.
func (nw *Network) JoinRemote(ctx context.Context, name, addr string, relations ...string) (*Peer, error) {
	if !nw.opts.Transport.TCP {
		return nil, fmt.Errorf("codb: JoinRemote requires Transport.TCP")
	}
	p, err := nw.AddPeer(name, relations...)
	if err != nil {
		return nil, err
	}
	if err := p.JoinVia(ctx, addr); err != nil {
		nw.RemovePeer(name)
		return nil, err
	}
	return p, nil
}

// Peer returns a running peer by name (nil if absent).
func (nw *Network) Peer(name string) *Peer {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.peers[name]
}

// Peers lists the network's peer names.
func (nw *Network) Peers() []string {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	out := make([]string, 0, len(nw.peers))
	for name := range nw.peers {
		out = append(out, name)
	}
	return out
}

// RemovePeer stops a peer and removes it from the network (it "disappears",
// as the paper's dynamic networks allow). A database the network opened for
// the peer is closed — durable ones checkpoint on the way out, so a future
// AddDurablePeer over the same directory recovers from the snapshot instead
// of replaying the whole log. A tombstone for the departed name is applied
// on every survivor (and the super-peer): pipes to it come down, in-flight
// deficits are written off, nobody dials its stale address again, and the
// survivors' incremental-export state toward the name is reset — if a fresh
// peer later takes it, nothing is wrongly assumed already materialised
// there (a durable replacement over the same directory just costs one full
// re-export).
func (nw *Network) RemovePeer(name string) {
	nw.mu.Lock()
	p := nw.peers[name]
	delete(nw.peers, name)
	db := nw.dbs[name]
	delete(nw.dbs, name)
	srv := nw.https[name]
	delete(nw.https, name)
	delete(nw.addrs, name)
	epoch := nw.epochs[name] // the incarnation being tombstoned
	rest := make([]*peer.Peer, 0, len(nw.peers))
	for _, other := range nw.peers {
		rest = append(rest, other)
	}
	super := nw.super
	nw.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	tomb := []msg.DirEntry{{Node: name, Epoch: epoch, Deleted: true}}
	for _, other := range rest {
		other.ApplyDirectoryEntries(tomb)
	}
	if super != nil {
		super.Peer().ApplyDirectoryEntries(tomb)
	}
	if p != nil {
		p.Stop()
	}
	if db != nil {
		db.Close()
	}
}

// RestartDurablePeer stops a durable peer in place — a crash-stop: no leave,
// no tombstone, no directory change — and brings a fresh incarnation up over
// the same directory and the same listen address, as a process restart does.
// Survivors see only the pipe drop and the silence; with the suspicion
// detector on they write the incarnation off, pace redials, and heal when
// the replacement answers — resuming exports from the durable watermarks
// rather than re-shipping history. Contrast RemovePeer, which tombstones the
// name and resets export state toward it.
func (nw *Network) RestartDurablePeer(name, dir string) (*Peer, error) {
	nw.mu.Lock()
	p := nw.peers[name]
	db := nw.dbs[name]
	addr := nw.addrs[name]
	if p == nil || db == nil || addr == "" {
		nw.mu.Unlock()
		return nil, fmt.Errorf("codb: restart %s: not a running durable TCP peer", name)
	}
	epoch := nw.epochs[name] + 1
	peerDir := make(map[string]string, len(nw.addrs))
	for node, a := range nw.addrs {
		if node != name {
			peerDir[node] = a
		}
	}
	delete(nw.peers, name)
	delete(nw.dbs, name)
	nw.mu.Unlock()

	p.Stop()
	if err := db.Close(); err != nil {
		return nil, err
	}

	db2, err := storage.Open(nw.storageOptions(dir))
	if err != nil {
		return nil, err
	}
	tcp, err := transport.NewTCP(name, addr)
	if err != nil {
		db2.Close()
		return nil, err
	}
	opts := nw.peerOptions(name, core.NewStoreWrapper(db2))
	opts.Epoch = epoch
	opts.Transport = tcp
	opts.Directory = peerDir
	if wrap := nw.opts.Transport.Wrap; wrap != nil {
		opts.Transport = wrap(name, opts.Transport)
	}
	p2, err := peer.New(opts)
	if err != nil {
		db2.Close()
		return nil, err
	}
	nw.mu.Lock()
	nw.peers[name] = p2
	nw.dbs[name] = db2
	nw.epochs[name] = epoch
	nw.mu.Unlock()
	return p2, nil
}

// AddRule declares a GLAV coordination rule on both endpoints, e.g.
// `target.rel(x) <- source.rel(x), x > 0`.
func (nw *Network) AddRule(id, text string) error {
	rule, err := cq.ParseRule(id, text)
	if err != nil {
		return err
	}
	tgt, src := nw.Peer(rule.Target), nw.Peer(rule.Source)
	if tgt == nil || src == nil {
		return fmt.Errorf("codb: rule %s links %s <- %s but both peers must exist", id, rule.Target, rule.Source)
	}
	if err := tgt.AddRule(id, text); err != nil {
		return err
	}
	if err := src.AddRule(id, text); err != nil {
		return err
	}
	// Apply the configured (or default) propagation policy to the fresh
	// link on both endpoints: the exporter enforces it, the importer drives
	// pulls and the adaptive demand signal from it.
	prop := nw.opts.Propagation
	mode, explicit := prop.Policies[id]
	if !explicit {
		mode = prop.Default
	}
	filter := prop.Filters[id]
	if (mode != "" && mode != "push") || filter != "" {
		if mode == "" {
			mode = "push"
		}
		return nw.SetLinkPolicy(id, mode, filter)
	}
	return nil
}

// SetLinkPolicy configures one rule's propagation policy on both endpoints:
// mode is "push", "pull", "adaptive" or "filter"; filter is an optional
// comma-separated comparison list over the rule's frontier variables.
func (nw *Network) SetLinkPolicy(id, mode, filter string) error {
	nw.mu.Lock()
	ps := make([]*peer.Peer, 0, len(nw.peers))
	for _, p := range nw.peers {
		ps = append(ps, p)
	}
	nw.mu.Unlock()
	applied := false
	for _, p := range ps {
		if err := p.SetLinkPolicy(id, mode, filter); err != nil {
			return err
		}
		for _, r := range p.Rules() {
			if r.ID == id {
				applied = true
			}
		}
	}
	if !applied {
		return fmt.Errorf("codb: link policy for %s: no peer knows the rule", id)
	}
	return nil
}

// PeerPropagationStats returns a node's propagation-policy snapshot
// (per-link counters, staleness quantiles); ok is false for unknown peers.
func (nw *Network) PeerPropagationStats(node string) (stats PropagationStats, ok bool) {
	p := nw.Peer(node)
	if p == nil {
		return PropagationStats{}, false
	}
	return p.PropagationStats(), true
}

// CatchUp drives every lazy (pull/adaptive) link in the network to the
// fixpoint eager push would have reached: each round asks every peer to pull
// each of its outgoing links once, and rounds repeat until one materialises
// nothing new anywhere — tuples arriving over one pulled link can make
// another link's pending delta non-empty, exactly like in-session cascading.
// It returns the total number of tuples materialised. After CatchUp, pulled
// databases are byte-identical to what all-push propagation yields.
func (nw *Network) CatchUp(ctx context.Context) (int, error) {
	nw.mu.Lock()
	ps := make([]*peer.Peer, 0, len(nw.peers))
	for _, p := range nw.peers {
		ps = append(ps, p)
	}
	nw.mu.Unlock()
	total := 0
	for {
		round := 0
		for _, p := range ps {
			n, err := p.CatchUp(ctx)
			if err != nil {
				return total, err
			}
			round += n
		}
		total += round
		if round == 0 {
			return total, nil
		}
	}
}

// MustAddRule is AddRule panicking on error.
func (nw *Network) MustAddRule(id, text string) {
	if err := nw.AddRule(id, text); err != nil {
		panic(err)
	}
}

// Insert adds rows to a peer's local relation.
func (nw *Network) Insert(node, rel string, rows ...Tuple) error {
	p := nw.Peer(node)
	if p == nil {
		return unknownPeer(node)
	}
	return p.Insert(rel, rows...)
}

// Update runs a global update initiated at origin and returns the
// initiator's report. After it completes, every reachable node has
// materialised all data implied by the coordination rules, and local
// queries need no network access.
func (nw *Network) Update(ctx context.Context, origin string) (Report, error) {
	p := nw.Peer(origin)
	if p == nil {
		return Report{}, unknownPeer(origin)
	}
	return p.RunUpdate(ctx)
}

// ScopedUpdate runs a query-dependent update (paper §2): it materialises,
// at origin and along the way, only the data transitively relevant to the
// given relations of the origin's schema.
func (nw *Network) ScopedUpdate(ctx context.Context, origin string, rels ...string) (Report, error) {
	p := nw.Peer(origin)
	if p == nil {
		return Report{}, unknownPeer(origin)
	}
	return p.RunScopedUpdate(ctx, rels)
}

// Query runs a distributed query at the node: answered from local data
// immediately, with transitively relevant remote data fetched through the
// coordination rules for the duration of the query.
func (nw *Network) Query(ctx context.Context, node, query string, mode QueryMode) ([]Tuple, error) {
	p := nw.Peer(node)
	if p == nil {
		return nil, unknownPeer(node)
	}
	q, err := cq.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return p.Query(ctx, q, mode)
}

// QueryStream is Query with streaming results: answers arrive on the first
// channel as they are discovered; the second channel delivers the session
// report when the query completes.
func (nw *Network) QueryStream(node, query string, mode QueryMode) (<-chan Tuple, <-chan Report, error) {
	p := nw.Peer(node)
	if p == nil {
		return nil, nil, unknownPeer(node)
	}
	q, err := cq.ParseQuery(query)
	if err != nil {
		return nil, nil, err
	}
	return p.QueryStream(q, mode)
}

// PeerReadStats returns a node's query-cache counters; ok is false for
// unknown peers and peers without a concurrent read path (mediators, or
// NetworkOptions.DisableReadPath).
func (nw *Network) PeerReadStats(node string) (stats ReadStats, ok bool) {
	p := nw.Peer(node)
	if p == nil {
		return ReadStats{}, false
	}
	return p.ReadStats()
}

// PeerStorageStats returns a node's storage-engine report (per-shard
// row/byte counts, WAL size, group-commit batching counters); ok is false
// for unknown peers and mediators.
func (nw *Network) PeerStorageStats(node string) (stats StorageStats, ok bool) {
	p := nw.Peer(node)
	if p == nil {
		return StorageStats{}, false
	}
	return p.StorageStats()
}

// PeerWireStats returns a node's TCP wire counters — envelope frames and
// bytes written, headers included; ok is false for unknown peers and
// networks on the in-process bus (no wire).
func (nw *Network) PeerWireStats(node string) (frames, bytes uint64, ok bool) {
	p := nw.Peer(node)
	if p == nil {
		return 0, 0, false
	}
	return p.WireStats()
}

// PeerMembershipStats returns a node's failure-detector and directory
// snapshot (suspicion states, suspect/down/heal counters, live and
// tombstoned directory entries); ok is false for unknown peers.
func (nw *Network) PeerMembershipStats(node string) (stats MembershipStats, ok bool) {
	p := nw.Peer(node)
	if p == nil {
		return MembershipStats{}, false
	}
	return p.MembershipStats(), true
}

// StartGateway starts one HTTP gateway serving every node of the network
// — requests select their node with the ?node= query parameter — and
// returns the bound address. Independent of the per-peer gateways of
// HTTP.Enable; at most one per network.
func (nw *Network) StartGateway(addr string) (string, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.gw != nil {
		return "", fmt.Errorf("codb: network gateway already running on %s", nw.gw.Addr())
	}
	srv, err := httpapi.New(httpapi.Options{Addr: addr, Resolve: nw.resolvePeer})
	if err != nil {
		return "", err
	}
	nw.gw = srv
	return srv.Addr(), nil
}

// PeerHTTPAddr returns the listen address of a node's HTTP gateway; ok is
// false for unknown peers and networks without HTTP.Enable.
func (nw *Network) PeerHTTPAddr(node string) (addr string, ok bool) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	srv := nw.https[node]
	if srv == nil {
		return "", false
	}
	return srv.Addr(), true
}

// LocalQuery evaluates a query against a node's local database only.
func (nw *Network) LocalQuery(node, query string, mode QueryMode) ([]Tuple, error) {
	p := nw.Peer(node)
	if p == nil {
		return nil, unknownPeer(node)
	}
	q, err := cq.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return p.LocalQuery(q, mode)
}

// SuperPeer returns (starting on first use) the network's super-peer.
func (nw *Network) SuperPeer() (*SuperPeer, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.super != nil {
		return nw.super, nil
	}
	var tr transport.Transport
	var spOpts superpeer.Options
	if nw.opts.Transport.TCP {
		tcp, err := transport.NewTCP("super", nw.opts.Transport.ListenAddr)
		if err != nil {
			return nil, err
		}
		tr = tcp
		spOpts = superpeer.Options{Transport: tcp, Addr: tcp.Addr()}
		nw.addrs["super"] = tcp.Addr()
		update := map[string]string{"super": tcp.Addr()}
		for _, p := range nw.peers {
			p.SetDirectory(update)
		}
	} else {
		bt, err := nw.bus.Join("super")
		if err != nil {
			return nil, err
		}
		tr = bt
		spOpts = superpeer.Options{Transport: bt}
	}
	sp, err := superpeer.New(spOpts)
	if err != nil {
		tr.Close()
		delete(nw.addrs, "super")
		return nil, err
	}
	dir := make(map[string]string, len(nw.peers))
	for name := range nw.peers {
		dir[name] = nw.addrs[name]
	}
	sp.Peer().SetDirectory(dir)
	nw.super = sp
	return sp, nil
}

// Close stops every peer (and the super-peer) and closes the databases the
// network opened; durable ones checkpoint pending commits on the way out.
func (nw *Network) Close() {
	nw.mu.Lock()
	peers := nw.peers
	nw.peers = make(map[string]*peer.Peer)
	dbs := nw.dbs
	nw.dbs = make(map[string]*storage.DB)
	https := nw.https
	nw.https = make(map[string]*httpapi.Server)
	nw.addrs = make(map[string]string)
	nw.epochs = make(map[string]uint64)
	gw := nw.gw
	nw.gw = nil
	super := nw.super
	nw.super = nil
	nw.mu.Unlock()
	if gw != nil {
		gw.Close()
	}
	for _, srv := range https {
		srv.Close()
	}
	for _, p := range peers {
		p.Stop()
	}
	if super != nil {
		super.Stop()
	}
	for _, db := range dbs {
		db.Close()
	}
}

// NewNetworkFromConfig builds a whole in-process network from a
// configuration file: one in-memory peer per declared node, all rules
// installed on both endpoints.
func NewNetworkFromConfig(text string) (*Network, error) {
	return NewNetworkFromConfigWithOptions(text, NetworkOptions{})
}

// NewNetworkFromConfigWithOptions is NewNetworkFromConfig with algorithm
// toggles.
func NewNetworkFromConfigWithOptions(text string, opts NetworkOptions) (*Network, error) {
	cfg, err := config.Parse(text)
	if err != nil {
		return nil, err
	}
	nw := NewNetworkWithOptions(opts)
	for _, node := range cfg.Nodes {
		db, err := storage.Open(nw.storageOptions(""))
		if err != nil {
			nw.Close()
			return nil, err
		}
		if err := db.DefineSchema(node.Schema); err != nil {
			nw.Close()
			return nil, err
		}
		if _, err := nw.join(node.Name, core.NewStoreWrapper(db)); err != nil {
			nw.Close()
			return nil, err
		}
		nw.mu.Lock()
		nw.dbs[node.Name] = db
		nw.mu.Unlock()
	}
	for _, r := range cfg.Rules {
		if err := nw.AddRule(r.ID, r.Text); err != nil {
			nw.Close()
			return nil, err
		}
	}
	return nw, nil
}

// ParseConfig parses a configuration file (for tools building on the
// library).
func ParseConfig(text string) (*config.Config, error) { return config.Parse(text) }

// parseRelDecl parses "emp(id int, name string)".
func parseRelDecl(decl string) (*relation.RelDef, error) {
	cfg, err := config.Parse("node tmp\n rel " + decl + "\nend\n")
	if err != nil {
		return nil, fmt.Errorf("codb: bad relation declaration %q: %v", decl, err)
	}
	names := cfg.Nodes[0].Schema.Names()
	return cfg.Nodes[0].Schema.Rel(names[0]), nil
}
