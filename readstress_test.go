package codb

// Race-stress test for the concurrent read path: many goroutines hammer
// one peer's read APIs (LocalQuery on the snapshot path, the local
// QueryStream bypass, Count, Tuples, ReadStats) while global updates
// materialise data into it and rule-set broadcasts churn the topology —
// exactly the interleavings the snapshot/cache machinery must survive. Run
// under -race in CI.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

const stressConfigBase = `
node A
 rel data(k int, v int)
 rel local(k int, v int)
end
node B
 rel data(k int, v int)
end
node C
 rel data(k int, v int)
end
rule r1: A.data(k, v) <- B.data(k, v)
`

const stressConfigWide = stressConfigBase + `rule r2: A.data(k, v) <- C.data(k, v)
`

func TestConcurrentReadStress(t *testing.T) {
	nw, err := NewNetworkFromConfig(stressConfigBase)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	for node, base := range map[string]int{"A": 0, "B": 10_000, "C": 20_000} {
		rows := make([]Tuple, 50)
		for i := range rows {
			rows[i] = Row(Int(base+i), Int(i))
		}
		if err := nw.Insert(node, "data", rows...); err != nil {
			t.Fatal(err)
		}
	}
	localRows := make([]Tuple, 30)
	for i := range localRows {
		localRows[i] = Row(Int(i), Int(i*i))
	}
	if err := nw.Insert("A", "local", localRows...); err != nil {
		t.Fatal(err)
	}

	cfgBase, err := ParseConfig(stressConfigBase)
	if err != nil {
		t.Fatal(err)
	}
	cfgWide, err := ParseConfig(stressConfigWide)
	if err != nil {
		t.Fatal(err)
	}

	const (
		readerGoroutines = 8
		writerRounds     = 12
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	peerA := nw.Peer("A")

	// Readers: all read APIs, all modes, across the whole run.
	for g := 0; g < readerGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				switch i % 5 {
				case 0:
					if _, err := nw.LocalQuery("A", `ans(k, v) :- data(k, v)`, AllAnswers); err != nil {
						t.Errorf("reader %d: LocalQuery: %v", g, err)
						return
					}
				case 1:
					// Distinct constants: cold cache lines under churn.
					q := fmt.Sprintf(`ans(k) :- data(k, v), v >= %d`, i%7)
					if _, err := nw.LocalQuery("A", q, CertainAnswers); err != nil {
						t.Errorf("reader %d: LocalQuery cold: %v", g, err)
						return
					}
				case 2:
					// `local` is fed by no coordination rule, so this
					// stream must always take the session-free local
					// bypass — even while broadcasts churn the rule set.
					// (A *distributed* query racing a reconfiguration that
					// drops its pipes can hang its session; that hazard
					// predates the read path and is out of scope here.)
					answers, done, err := nw.QueryStream("A", `ans(v) :- local(k, v)`, AllAnswers)
					if err != nil {
						t.Errorf("reader %d: QueryStream: %v", g, err)
						return
					}
					for range answers {
					}
					<-done
				case 3:
					peerA.Count("data")
					peerA.Tuples("data")
				case 4:
					peerA.ReadStats()
					peerA.Schema()
				}
			}
		}(g)
	}

	// Writer: updates from rotating origins interleaved with rule-set
	// churn (broadcast-style ApplyConfig on every peer, versions rising).
	origins := []string{"A", "B", "C"}
	version := 2
	for round := 0; round < writerRounds; round++ {
		rows := make([]Tuple, 10)
		for i := range rows {
			rows[i] = Row(Int(100_000+round*1_000+i), Int(round))
		}
		if err := nw.Insert(origins[round%3], "data", rows...); err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Update(ctxT(t), origins[round%3]); err != nil {
			t.Fatalf("update round %d: %v", round, err)
		}
		cfg := cfgWide
		if round%2 == 1 {
			cfg = cfgBase
		}
		for _, name := range origins {
			if err := nw.Peer(name).ApplyConfig(cfg, version); err != nil {
				t.Fatalf("reconfig round %d at %s: %v", round, name, err)
			}
		}
		version++
	}
	stop.Store(true)
	wg.Wait()

	// Quiescent sanity: the read path agrees with the raw table count.
	want := peerA.Count("data")
	rows, err := nw.LocalQuery("A", `ans(k, v) :- data(k, v)`, AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != want {
		t.Fatalf("post-stress LocalQuery %d rows, Count %d", len(rows), want)
	}
	if st, ok := nw.PeerReadStats("A"); !ok || st.Hits+st.Misses == 0 {
		t.Fatalf("read path unused during stress: %+v ok=%v", st, ok)
	}
}
