package codb

// Runtime membership tests: tombstones stop traffic toward departed peers,
// epoch precedence follows rejoiners to new addresses, the wire-level
// join protocol hands rules and directory to a process that knew nothing,
// and churn under concurrent traffic stays convergent (run under -race).

import (
	"sync"
	"testing"
	"time"

	"codb/internal/config"
)

// waitLiveDirEntry polls until p's directory holds a live, dialable entry
// for node (membership deltas flood asynchronously).
func waitLiveDirEntry(t *testing.T, p *Peer, node string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if addr, deleted, ok := p.DirectoryEntry(node); ok && !deleted && addr != "" {
			return
		}
		if time.Now().After(deadline) {
			addr, deleted, ok := p.DirectoryEntry(node)
			t.Fatalf("%s never learned a live address for %s (addr=%q deleted=%v known=%v)",
				p.Name(), node, addr, deleted, ok)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertNoDialFailures fails if any named peer's transport ever exhausted a
// dial — the observable for "nobody dials a departed peer's stale address".
func assertNoDialFailures(t *testing.T, nw *Network, names ...string) {
	t.Helper()
	for _, name := range names {
		n, ok := nw.Peer(name).DialFailures()
		if !ok {
			t.Fatalf("%s has no dial counter (not a TCP transport?)", name)
		}
		if n != 0 {
			t.Errorf("%s recorded %d exhausted dials to stale addresses, want 0", name, n)
		}
	}
}

// TestRemovePeerNoDialsToDeparted: RemovePeer must propagate a tombstone,
// not just forget the address locally — survivors with rules toward the
// departed name must neither dial its dead listener nor hang the session.
func TestRemovePeerNoDialsToDeparted(t *testing.T) {
	nw := NewNetworkWithOptions(NetworkOptions{Transport: TransportGroup{TCP: true}})
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int)")
	nw.MustAddPeer("b", "r(x int)")
	nw.MustAddPeer("c", "r(x int)")
	nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)
	nw.MustAddRule("r2", `a.r(x) <- c.r(x)`)
	if err := nw.Insert("b", "r", Row(Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := nw.Insert("c", "r", Row(Int(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	if got := nw.Peer("a").Count("r"); got != 2 {
		t.Fatalf("a.r = %d before churn, want 2", got)
	}

	nw.RemovePeer("c")
	if _, deleted, ok := nw.Peer("a").DirectoryEntry("c"); !ok || !deleted {
		t.Fatalf("survivor a holds no tombstone for c (known=%v deleted=%v)", ok, deleted)
	}
	// a still has rule r2 toward the departed c: sessions must complete by
	// compensation, with zero dial attempts at c's dead listener.
	for i := 10; i < 13; i++ {
		if err := nw.Insert("b", "r", Row(Int(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Update(ctxT(t), "a"); err != nil {
			t.Fatal(err)
		}
	}
	if got := nw.Peer("a").Count("r"); got != 5 {
		t.Fatalf("a.r = %d after churn updates, want 5", got)
	}
	assertNoDialFailures(t, nw, "a", "b")
}

// TestRejoinAtNewAddressReachable: a peer that leaves and rejoins under the
// same name gets a fresh listener (new port). The old merge-only directory
// stranded such rejoiners — survivors kept the first address forever. The
// epoch-stamped entry must override it, so traffic reaches the new
// incarnation with zero dials at the old port.
func TestRejoinAtNewAddressReachable(t *testing.T) {
	nw := NewNetworkWithOptions(NetworkOptions{Transport: TransportGroup{TCP: true}})
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int)")
	nw.MustAddPeer("b", "r(x int)")
	nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)
	for i := 0; i < 5; i++ {
		if err := nw.Insert("b", "r", Row(Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	nw.mu.Lock()
	oldAddr := nw.addrs["b"]
	nw.mu.Unlock()

	nw.RemovePeer("b")
	nw.MustAddPeer("b", "r(x int)")
	nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)
	nw.mu.Lock()
	newAddr := nw.addrs["b"]
	nw.mu.Unlock()
	if newAddr == oldAddr {
		t.Skipf("rejoined listener reused %s; cannot distinguish old from new", oldAddr)
	}
	if addr, deleted, ok := nw.Peer("a").DirectoryEntry("b"); !ok || deleted || addr != newAddr {
		t.Fatalf("survivor a resolves b to %q (deleted=%v), want new address %q", addr, deleted, newAddr)
	}

	for i := 10; i < 15; i++ {
		if err := nw.Insert("b", "r", Row(Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	// 5 tuples from b's first life + 5 from the rejoined (fresh) b.
	if got := nw.Peer("a").Count("r"); got != 10 {
		t.Fatalf("a.r = %d after rejoin update, want 10 (new incarnation unreachable?)", got)
	}
	assertNoDialFailures(t, nw, "a", "b")
}

// TestJoinRemoteOverWire: a peer in a separate Network (standing in for a
// separate process) joins a live network through the super-peer's wire
// endpoint: JoinRequest out, JoinAccept back with the rules snapshot and
// the epoch-stamped directory, directory delta flooded to the incumbents —
// then a global update spans both processes.
func TestJoinRemoteOverWire(t *testing.T) {
	host := NewNetworkWithOptions(NetworkOptions{Transport: TransportGroup{TCP: true}})
	defer host.Close()
	host.MustAddPeer("a", "r(x int)")
	host.MustAddPeer("b", "r(x int)")
	sp, err := host.SuperPeer()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := config.Parse(`version 1
node a
  rel r(x int)
end
node b
  rel r(x int)
end
node c
  rel r(x int)
end
rule r1: a.r(x) <- b.r(x)
rule r2: a.r(x) <- c.r(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	sp.SetConfig(cfg)
	if err := sp.Broadcast(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(host.Peer("a").Rules()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("a never installed the broadcast rules (has %d)", len(host.Peer("a").Rules()))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := host.Insert("b", "r", Row(Int(1)), Row(Int(2))); err != nil {
		t.Fatal(err)
	}

	host.mu.Lock()
	superAddr := host.addrs["super"]
	host.mu.Unlock()
	guest := NewNetworkWithOptions(NetworkOptions{Transport: TransportGroup{TCP: true}})
	defer guest.Close()
	c, err := guest.JoinRemote(ctxT(t), "c", superAddr, "r(x int)")
	if err != nil {
		t.Fatal(err)
	}
	// The JoinAccept handoff carried the rules: c must know r2 already.
	if got := len(c.Rules()); got != 1 {
		t.Fatalf("joiner installed %d rules from the handoff, want 1", got)
	}
	if err := c.Insert("r", Row(Int(3)), Row(Int(4))); err != nil {
		t.Fatal(err)
	}

	// The admit flood must teach the incumbents c's address.
	waitLiveDirEntry(t, host.Peer("a"), "c")
	if _, err := host.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	if got := host.Peer("a").Count("r"); got != 4 {
		t.Fatalf("a.r = %d after cross-process update, want 4 (2 from b + 2 from joined c)", got)
	}
	assertNoDialFailures(t, host, "a", "b")
	if n, ok := c.DialFailures(); !ok || n != 0 {
		t.Errorf("joiner recorded %d exhausted dials (counter ok=%v), want 0", n, ok)
	}

	// Coordinated leave over the wire: survivors tombstone c and stop
	// dialing it; updates keep completing.
	if err := c.Leave(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, deleted, ok := host.Peer("a").DirectoryEntry("c"); ok && deleted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivor a never tombstoned the departed c")
		}
		time.Sleep(2 * time.Millisecond)
	}
	guest.Close()
	if _, err := host.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	assertNoDialFailures(t, host, "a", "b")
}

// TestChurnUnderConcurrentTraffic races joins, leaves and rule changes
// against continuous updates and reads; meaningful under -race. The
// network must stay responsive and convergent throughout.
func TestChurnUnderConcurrentTraffic(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int)")
	nw.MustAddPeer("b", "r(x int)")
	nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				nw.Peer("a").Count("r")
				if _, err := nw.LocalQuery("a", `ans(x) :- r(x)`, AllAnswers); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := nw.Insert("b", "r", Row(Int(i))); err != nil {
				t.Error(err)
				return
			}
			if _, err := nw.Update(ctxT(t), "a"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Churn: c joins, links to b, pulls data, leaves — repeatedly, while
	// the update/read traffic above keeps running.
	for round := 0; round < 5; round++ {
		if _, err := nw.AddPeer("c", "r(x int)"); err != nil {
			t.Fatal(err)
		}
		if err := nw.AddRule("rc", `c.r(x) <- b.r(x)`); err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Update(ctxT(t), "c"); err != nil {
			t.Fatal(err)
		}
		nw.RemovePeer("c")
	}
	close(stop)
	wg.Wait()

	// Quiesce and converge: a holds exactly what b exported.
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	if a, b := nw.Peer("a").Count("r"), nw.Peer("b").Count("r"); a != b {
		t.Fatalf("after churn a.r = %d, b.r = %d; must converge", a, b)
	}
}
