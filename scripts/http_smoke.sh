#!/bin/sh
# Smoke-test the HTTP/JSON serving layer on a real multi-process
# deployment: three codb-peer processes on a TCP chain, each with its own
# gateway, bootstrapped by codb-super, then driven end to end with curl —
# health, insert, update, sync and streaming queries, stats, the 404/400
# error mapping, and runtime membership: a fourth peer admitted over
# POST /v1/membership/join, an update with it present, a coordinated
# leave, and the survivors answering afterwards.
set -eu

dir=$(mktemp -d)
pids=""
cleanup() {
    [ -n "$pids" ] && kill $pids 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir" ./cmd/codb-peer ./cmd/codb-super ./cmd/codb-gen

"$dir/codb-gen" -shape chain -n 3 -addr-base 127.0.0.1:7180 >"$dir/net.codb"

for i in 0 1 2; do
    "$dir/codb-peer" -name "N$i" -config "$dir/net.codb" \
        -http "127.0.0.1:818$i" >"$dir/N$i.log" 2>&1 &
    pids="$pids $!"
done

# Wait for every gateway to come up.
for i in 0 1 2; do
    ok=""
    for _ in $(seq 1 50); do
        if curl -fsS "http://127.0.0.1:818$i/healthz" >/dev/null 2>&1; then
            ok=1
            break
        fi
        sleep 0.2
    done
    if [ -z "$ok" ]; then
        echo "gateway N$i never became healthy" >&2
        cat "$dir/N$i.log" >&2
        exit 1
    fi
done
echo "all gateways healthy"

# Seed each node over HTTP with one distinct tuple.
for i in 0 1 2; do
    curl -fsS -X POST "http://127.0.0.1:818$i/v1/insert" \
        -d "{\"relation\":\"data\",\"rows\":[[$i,$((i * 10))]]}" |
        grep -q '"inserted":1'
done
echo "inserts ok"

# Global update over HTTP at the chain head: the chain rules pull every
# tuple to N0.
curl -fsS -X POST 'http://127.0.0.1:8180/v1/update?timeout=1m' -d '{}' |
    grep -q '"report"'
echo "update ok"

# N0 must now hold all three tuples, via both the sync and the NDJSON
# streaming form.
body=$(curl -fsS -X POST http://127.0.0.1:8180/v1/query \
    -d '{"query":"ans(k, v) :- data(k, v)","local":true}')
echo "$body" | grep -q '"count":3' || {
    echo "sync query: want count 3, got: $body" >&2
    exit 1
}
stream=$(curl -fsS -X POST 'http://127.0.0.1:8180/v1/query?stream=ndjson' \
    -d '{"query":"ans(k, v) :- data(k, v)","local":true}')
echo "$stream" | tail -1 | grep -q '"done":true' || {
    echo "stream query: missing trailer, got: $stream" >&2
    exit 1
}
echo "queries ok"

# Stats and schema surface on every node; the wire counters must show
# real traffic after the update.
curl -fsS http://127.0.0.1:8181/v1/stats/wire | grep -q '"frames_sent"'
curl -fsS http://127.0.0.1:8182/v1/schema | grep -q '"data"'
echo "stats ok"

# Error mapping: unknown node is 404, a bad query is 400.
code=$(curl -s -o /dev/null -w '%{http_code}' \
    'http://127.0.0.1:8180/v1/schema?node=nope')
[ "$code" = 404 ] || {
    echo "unknown node: want 404, got $code" >&2
    exit 1
}
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    http://127.0.0.1:8180/v1/query -d '{"query":"not a query"}')
[ "$code" = 400 ] || {
    echo "bad query: want 400, got $code" >&2
    exit 1
}
echo "error mapping ok"

# Runtime membership: launch a fourth, config-less peer and admit it
# through N0's gateway. The admitter dials the joiner, hands it the
# current rules and the epoch-stamped directory, and floods the delta to
# the incumbents.
"$dir/codb-peer" -name N3 -listen 127.0.0.1:7183 \
    -http 127.0.0.1:8183 >"$dir/N3.log" 2>&1 &
pids="$pids $!"
for _ in $(seq 1 50); do
    if curl -fsS http://127.0.0.1:8183/healthz >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
curl -fsS -X POST http://127.0.0.1:8180/v1/membership/join \
    -d '{"node":"N3","addr":"127.0.0.1:7183"}' | grep -q '"epoch"'
echo "join ok"

# With the joiner present, another insert + global update must still
# converge the chain (N3 holds no chain relations; it just must not wedge
# the session).
curl -fsS -X POST http://127.0.0.1:8182/v1/insert \
    -d '{"relation":"data","rows":[[9,90]]}' | grep -q '"inserted":1'
curl -fsS -X POST 'http://127.0.0.1:8180/v1/update?timeout=1m' -d '{}' |
    grep -q '"report"'
body=$(curl -fsS -X POST http://127.0.0.1:8180/v1/query \
    -d '{"query":"ans(k, v) :- data(k, v)","local":true}')
echo "$body" | grep -q '"count":4' || {
    echo "post-join query: want count 4, got: $body" >&2
    exit 1
}
echo "update with joiner ok"

# Coordinated leave through the gateway: survivors tombstone N3 and keep
# answering — no timeouts toward the departed listener.
curl -fsS -X POST http://127.0.0.1:8180/v1/membership/leave \
    -d '{"node":"N3"}' | grep -q '"removed":true'
curl -fsS -X POST 'http://127.0.0.1:8180/v1/update?timeout=1m' -d '{}' |
    grep -q '"report"'
body=$(curl -fsS -X POST http://127.0.0.1:8180/v1/query \
    -d '{"query":"ans(k, v) :- data(k, v)","local":true}')
echo "$body" | grep -q '"count":4' || {
    echo "post-leave query: want count 4, got: $body" >&2
    exit 1
}
echo "leave ok"

# Propagation policies through the gateway: flip the N1→N0 link to pull on
# both endpoints, update upstream, and watch the importer go stale (the
# update floods only a hint) and then fresh (the next local query pulls the
# delta synchronously).
curl -fsS -X PUT http://127.0.0.1:8181/v1/links/e0/policy \
    -d '{"mode":"pull"}' | grep -q '"mode":"pull"'
curl -fsS -X PUT http://127.0.0.1:8180/v1/links/e0/policy \
    -d '{"mode":"pull"}' | grep -q '"mode":"pull"'
curl -fsS -X POST http://127.0.0.1:8181/v1/insert \
    -d '{"relation":"data","rows":[[100,1000]]}' | grep -q '"inserted":1'
curl -fsS -X POST 'http://127.0.0.1:8181/v1/update?timeout=1m' -d '{}' |
    grep -q '"report"'
# Stale: the hint arrived, the delta did not.
curl -fsS http://127.0.0.1:8180/v1/stats/propagation |
    grep -q '"stale_links":\["e0"\]' || {
    echo "pull link e0 not stale after upstream update" >&2
    exit 1
}
# Fresh: the local query triggers the pull and sees the new tuple.
body=$(curl -fsS -X POST http://127.0.0.1:8180/v1/query \
    -d '{"query":"ans(k, v) :- data(k, v)","local":true}')
echo "$body" | grep -q '"count":5' || {
    echo "post-pull query: want count 5, got: $body" >&2
    exit 1
}
# …and the cumulative counters saw the pull on both sides of the link.
curl -fsS http://127.0.0.1:8181/v1/stats/propagation | grep -q '"pulls_served":1'
curl -fsS http://127.0.0.1:8180/v1/stats | grep -q '"sessions"'
echo "propagation policies ok"

echo "http smoke: PASS"
