package codb

import (
	"sync"
	"testing"
	"time"

	"codb/internal/transport"
)

// partitionedNetwork builds a TCP star (hub "a" importing from leaves "b"
// and "c") with the suspicion detector on and every peer's transport wrapped
// in a fault injector.
func partitionedNetwork(t *testing.T, timeout time.Duration) (*Network, map[string]*transport.Partitioner) {
	t.Helper()
	parts := make(map[string]*transport.Partitioner)
	var pmu sync.Mutex
	nw := NewNetworkWithOptions(NetworkOptions{
		Transport: TransportGroup{
			TCP: true,
			Wrap: func(node string, tr transport.Transport) transport.Transport {
				f := transport.NewPartitioner(tr)
				pmu.Lock()
				parts[node] = f
				pmu.Unlock()
				return f
			},
		},
		Suspicion: SuspicionGroup{Timeout: timeout},
	})
	nw.MustAddPeer("a", "r(x int)")
	nw.MustAddPeer("b", "r(x int)")
	nw.MustAddPeer("c", "r(x int)")
	nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)
	nw.MustAddRule("r2", `a.r(x) <- c.r(x)`)
	return nw, parts
}

// expectTuples asserts the hub materialised exactly the values 0..n-1.
func expectTuples(t *testing.T, p *Peer, n int) {
	t.Helper()
	rows := p.Tuples("r")
	if len(rows) != n {
		t.Fatalf("hub has %d tuples, want %d", len(rows), n)
	}
	seen := make(map[int64]bool, len(rows))
	for _, row := range rows {
		seen[row[0].Int] = true
	}
	for i := 0; i < n; i++ {
		if !seen[int64(i)] {
			t.Fatalf("hub is missing value %d", i)
		}
	}
}

// waitMembership polls the hub's failure-detector snapshot until cond holds.
func waitMembership(t *testing.T, p *Peer, what string, cond func(MembershipStats) bool) MembershipStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := p.MembershipStats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; membership = %+v", what, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPartitionHealStress is the partition/heal scenario end to end: a leaf
// is partitioned from the star under continuing update traffic. The hub's
// detector must suspect and then declare the leaf down (sessions terminate
// by compensation, not by hanging), the partition must never surface as a
// failed dial against the TCP transport, and after the heal the leaf's
// missed delta must flow so the hub converges to the complete extent.
func TestPartitionHealStress(t *testing.T) {
	const timeout = 250 * time.Millisecond
	nw, parts := partitionedNetwork(t, timeout)
	defer nw.Close()
	hub := nw.Peer("a")

	next := 0
	insertBoth := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := nw.Insert("b", "r", Row(Int(next))); err != nil {
				t.Fatal(err)
			}
			next++
			if err := nw.Insert("c", "r", Row(Int(next))); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}

	// A healthy round establishes the pipes and export watermarks.
	insertBoth(10)
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatal(err)
	}
	expectTuples(t, hub, next)

	// Partition c away from the star, symmetrically: silence in both
	// directions, exactly as a real partition presents.
	parts["c"].Partition("a", "b")
	parts["a"].Partition("c")
	parts["b"].Partition("c")
	partStart := time.Now()

	// Update traffic continues through the partition. The leaf keeps
	// committing locally; every hub session must terminate without error,
	// written off by the detector rather than hung on stranded acks.
	preHeal := 0
	for round := 0; round < 3; round++ {
		insertBoth(3)
		if _, err := nw.Update(ctxT(t), "a"); err != nil {
			t.Fatalf("update during partition: %v", err)
		}
		if round == 0 {
			st := waitMembership(t, hub, "leaf down", func(st MembershipStats) bool {
				return st.States["c"] == "down"
			})
			t.Logf("partition detected in %v (timeout %v): %+v", time.Since(partStart), timeout, st)
			preHeal = hub.Count("r")
		}
	}
	if got := hub.Count("r"); got <= preHeal-1 {
		t.Fatalf("hub lost ground during partition: %d", got)
	}

	// The injected partition must never count as a transport dial failure:
	// redials while down fail inside the injector, below the TCP counters.
	for _, name := range []string{"a", "b", "c"} {
		if n, ok := nw.Peer(name).DialFailures(); ok && n != 0 {
			t.Errorf("%s recorded %d dial failures during the partition, want 0", name, n)
		}
	}
	if out, in := parts["a"].Dropped(); out == 0 && in == 0 {
		t.Error("the hub's injector dropped nothing — the partition never bit")
	}

	// Heal. The paced redial (or the leaf's own) re-pipes, the directory
	// delta re-exchanges, and catch-up runs from the durable watermarks.
	for _, f := range parts {
		f.Heal()
	}
	waitMembership(t, hub, "leaf healed", func(st MembershipStats) bool {
		return st.States["c"] == "alive" && st.Heals >= 1
	})

	// Post-heal convergence: between the heal's own catch-up (asynchronous —
	// the heal counter ticks when traffic resumes, while catch-up data may
	// still be in flight) and the next session, the hub converges on exactly
	// what the partition withheld plus the new round.
	insertBoth(3)
	if _, err := nw.Update(ctxT(t), "a"); err != nil {
		t.Fatalf("post-heal update: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for hub.Count("r") != next && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	expectTuples(t, hub, next)

	st := hub.MembershipStats()
	if st.Suspects == 0 || st.Downs == 0 || st.Heals == 0 {
		t.Errorf("detector transitions = %+v, want at least one suspect, down and heal", st)
	}
	if st.Tombstones != 0 {
		t.Errorf("partition produced %d tombstones, want 0 (suspicion must not tombstone)", st.Tombstones)
	}
}

// restartDurablePeer crash-stops a durable peer and brings a fresh
// incarnation up over the same directory and listen address.
func restartDurablePeer(t *testing.T, nw *Network, name, dir string) *Peer {
	t.Helper()
	p, err := nw.RestartDurablePeer(name, dir)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRollingRestartUnderUpdateLoad: the durable leaves of a star restart
// one at a time — crash-stop, reopen over their own directories on the same
// address — while the hub keeps initiating updates. Every session must
// complete (loss is written off by the pipe-down report and healed by the
// next round's traffic), no dial may exhaust its retries, and the final
// extent must be byte-identical to an unbroken run: the restarted exporters
// resume from their durable watermarks.
func TestRollingRestartUnderUpdateLoad(t *testing.T) {
	dirA, dirB, dirC := t.TempDir(), t.TempDir(), t.TempDir()
	nw := NewNetworkWithOptions(NetworkOptions{
		Transport: TransportGroup{TCP: true},
		Suspicion: SuspicionGroup{Timeout: time.Second},
	})
	defer nw.Close()
	for name, dir := range map[string]string{"a": dirA, "b": dirB, "c": dirC} {
		if _, err := nw.AddDurablePeer(name, dir, "r(x int)"); err != nil {
			t.Fatal(err)
		}
	}
	nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)
	nw.MustAddRule("r2", `a.r(x) <- c.r(x)`)

	next := 0
	insertBoth := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := nw.Insert("b", "r", Row(Int(next))); err != nil {
				t.Fatal(err)
			}
			next++
			if err := nw.Insert("c", "r", Row(Int(next))); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}

	for round := 0; round < 8; round++ {
		insertBoth(4)
		if _, err := nw.Update(ctxT(t), "a"); err != nil {
			t.Fatalf("update round %d: %v", round, err)
		}
		// Restarts land between sessions; the next round's traffic runs
		// against a peer the hub still believes is down, and heals it.
		switch round {
		// The wait must precede the rule re-add: re-declaring the rule
		// re-pipes both endpoints, which supersedes a pipe-down still in
		// flight (a live pipe means nothing needs writing off).
		case 2:
			restartDurablePeer(t, nw, "b", dirB)
			waitMembership(t, nw.Peer("a"), "b noted down", func(st MembershipStats) bool {
				return st.Downs >= 1
			})
			nw.MustAddRule("r1", `a.r(x) <- b.r(x)`)
		case 5:
			restartDurablePeer(t, nw, "c", dirC)
			waitMembership(t, nw.Peer("a"), "c noted down", func(st MembershipStats) bool {
				return st.Downs >= 2
			})
			nw.MustAddRule("r2", `a.r(x) <- c.r(x)`)
		}
	}

	// Byte identity: the hub holds exactly the values 0..next-1, nothing
	// lost across either restart.
	expectTuples(t, nw.Peer("a"), next)

	// Zero stale dials: every redial found a listener (the restarts reuse
	// their address, and nobody dialed into the gap past its retries).
	for _, name := range []string{"a", "b", "c"} {
		if n, ok := nw.Peer(name).DialFailures(); ok && n != 0 {
			t.Errorf("%s recorded %d exhausted dials across the rolling restart, want 0", name, n)
		}
	}

	// The hub saw both restarts as pipe-downs and healed both.
	st := nw.Peer("a").MembershipStats()
	if st.Downs < 2 || st.Heals < 2 {
		t.Errorf("hub detector saw %d downs and %d heals, want >= 2 each: %+v", st.Downs, st.Heals, st)
	}
	if st.Tombstones != 0 {
		t.Errorf("rolling restart produced %d tombstones, want 0", st.Tombstones)
	}
}
