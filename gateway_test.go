package codb

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// postJSON posts a JSON body and decodes a JSON response, returning the
// status code and the decoded object.
func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode, out
}

// TestGatewayEndToEnd runs a two-peer TCP network with HTTP gateways and
// drives the full client surface over the wire: insert, global update,
// sync and streaming queries, stats, health, and the error mapping.
func TestGatewayEndToEnd(t *testing.T) {
	nw := NewNetworkWithOptions(NetworkOptions{
		Transport: TransportGroup{TCP: true},
		HTTP:      HTTPGroup{Enable: true},
	})
	defer nw.Close()
	nw.MustAddPeer("hospital", "patient(id int, name string)")
	nw.MustAddPeer("clinic", "visitor(id int, name string)")
	nw.MustAddRule("r1", `hospital.patient(x, n) <- clinic.visitor(x, n)`)

	clinicURL, ok := nw.PeerHTTPAddr("clinic")
	if !ok {
		t.Fatal("no HTTP gateway for clinic")
	}
	hospitalURL, ok := nw.PeerHTTPAddr("hospital")
	if !ok {
		t.Fatal("no HTTP gateway for hospital")
	}
	clinic := "http://" + clinicURL
	hospital := "http://" + hospitalURL

	if code, body := getJSON(t, hospital+"/healthz"); code != 200 || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}
	if code, body := getJSON(t, hospital+"/readyz"); code != 200 || body["status"] != "ready" {
		t.Fatalf("readyz: %d %v", code, body)
	}

	code, body := postJSON(t, clinic+"/v1/insert", map[string]any{
		"relation": "visitor",
		"rows":     []any{[]any{1, "ann"}, []any{2, "bob"}},
	})
	if code != 200 || body["inserted"] != float64(2) {
		t.Fatalf("insert: %d %v", code, body)
	}

	code, body = postJSON(t, hospital+"/v1/update", map[string]any{})
	if code != 200 {
		t.Fatalf("update: %d %v", code, body)
	}
	rep, _ := body["report"].(map[string]any)
	if rep == nil || rep["Origin"] != "hospital" {
		t.Fatalf("update report: %v", body)
	}

	code, body = postJSON(t, hospital+"/v1/query", map[string]any{
		"query": `ans(n) :- patient(x, n)`,
		"local": true,
	})
	if code != 200 || body["count"] != float64(2) {
		t.Fatalf("local query: %d %v", code, body)
	}

	// Distributed sync query from the clinic side: nothing maps into the
	// clinic's schema, so it sees only its own data.
	code, body = postJSON(t, clinic+"/v1/query", map[string]any{
		"query": `ans(x, n) :- visitor(x, n)`,
	})
	if code != 200 || body["count"] != float64(2) {
		t.Fatalf("distributed query: %d %v", code, body)
	}

	// Streaming NDJSON: two row lines then a done trailer with the report.
	resp, err := http.Post(hospital+"/v1/query?stream=ndjson", "application/json",
		strings.NewReader(`{"query": "ans(x, n) :- patient(x, n)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var lines []map[string]any
	var rows int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var arr []any
		if err := json.Unmarshal(sc.Bytes(), &arr); err == nil {
			rows++
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("bad NDJSON line %q", sc.Text())
		}
		lines = append(lines, obj)
	}
	if rows != 2 || len(lines) != 1 || lines[0]["done"] != true || lines[0]["count"] != float64(2) {
		t.Fatalf("stream: %d rows, trailer %v", rows, lines)
	}

	// Wire stats flow over real TCP in this network, so the update must
	// have moved frames.
	code, body = getJSON(t, hospital+"/v1/stats/wire")
	if code != 200 || body["available"] != true {
		t.Fatalf("wire stats: %d %v", code, body)
	}
	if f, _ := body["frames_sent"].(float64); f == 0 {
		t.Fatalf("wire stats counted no frames: %v", body)
	}
	frames, wireBytes, ok := nw.PeerWireStats("hospital")
	if !ok || frames == 0 || wireBytes == 0 {
		t.Fatalf("PeerWireStats = %d, %d, %v", frames, wireBytes, ok)
	}

	// The resolver reaches any network node through any gateway.
	code, body = getJSON(t, hospital+"/v1/schema?node=clinic")
	if code != 200 || body["node"] != "clinic" {
		t.Fatalf("cross-node schema: %d %v", code, body)
	}

	// Error mapping: unknown node 404, bad query 400, bad rows 400.
	if code, body = getJSON(t, hospital+"/v1/schema?node=nowhere"); code != 404 {
		t.Fatalf("unknown node: %d %v", code, body)
	}
	code, body = postJSON(t, hospital+"/v1/query", map[string]any{"query": "not a query"})
	if code != 400 {
		t.Fatalf("bad query: %d %v", code, body)
	}
	code, body = postJSON(t, clinic+"/v1/insert", map[string]any{
		"relation": "visitor",
		"rows":     []any{[]any{"not-an-int", "ann"}},
	})
	if code != 400 {
		t.Fatalf("bad row: %d %v", code, body)
	}
}

// TestGatewaySentinelErrors pins the public sentinels to the Network
// methods that return them.
func TestGatewaySentinelErrors(t *testing.T) {
	nw := NewNetwork()
	defer nw.Close()
	nw.MustAddPeer("a", "r(x int)")

	if err := nw.Insert("ghost", "r", Row(Int(1))); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Insert unknown peer: %v", err)
	}
	if _, err := nw.Query(ctxT(t), "ghost", "ans(x) :- r(x)", AllAnswers); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Query unknown peer: %v", err)
	}
	if _, err := nw.LocalQuery("a", "syntax {{", AllAnswers); !errors.Is(err, ErrBadQuery) {
		t.Errorf("bad query: %v", err)
	}
	p := nw.Peer("a")
	nw.RemovePeer("a")
	if err := p.Insert("r", Row(Int(2))); !errors.Is(err, ErrPeerClosed) {
		t.Errorf("stopped peer: %v", err)
	}
}

// TestGatewayReadyzAfterStop verifies readiness flips when the peer stops
// underneath a still-listening gateway.
func TestGatewayReadyzAfterStop(t *testing.T) {
	nw := NewNetworkWithOptions(NetworkOptions{HTTP: HTTPGroup{Enable: true}})
	defer nw.Close()
	nw.MustAddPeer("solo", "r(x int)")
	addr, _ := nw.PeerHTTPAddr("solo")
	base := "http://" + addr
	if code, _ := getJSON(t, base+"/readyz"); code != 200 {
		t.Fatalf("readyz before stop: %d", code)
	}
	nw.Peer("solo").Stop()
	code, body := getJSON(t, base+"/readyz")
	if code != 503 {
		t.Fatalf("readyz after stop: %d %v", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "stopped") {
		t.Fatalf("readyz error: %v", body)
	}
}

// TestFlatOptionsStillApply pins the deprecated flat NetworkOptions fields
// to their group equivalents.
func TestFlatOptionsStillApply(t *testing.T) {
	flat := NetworkOptions{
		Shards:          4,
		SyncOnCommit:    true,
		QueryCacheSize:  7,
		DisableReadPath: true,
		EvalParallelism: 3,
		SegmentBytes:    1 << 20,
		RetainSegments:  2,
		ChangelogLimit:  9,
	}.resolved()
	want := StorageGroup{Shards: 4, SyncOnCommit: true, SegmentBytes: 1 << 20, RetainSegments: 2, ChangelogLimit: 9}
	if flat.Storage != want {
		t.Errorf("Storage = %+v, want %+v", flat.Storage, want)
	}
	if flat.Read != (ReadGroup{EvalParallelism: 3, QueryCacheSize: 7, DisableReadPath: true}) {
		t.Errorf("Read = %+v", flat.Read)
	}
	// A set group field wins over the flat spelling.
	both := NetworkOptions{Shards: 4, Storage: StorageGroup{Shards: 8}}.resolved()
	if both.Storage.Shards != 8 {
		t.Errorf("Shards = %d, want group value 8", both.Storage.Shards)
	}
}

// TestGatewayNDJSONAcceptHeader exercises stream negotiation through the
// Accept header rather than the query parameter.
func TestGatewayNDJSONAcceptHeader(t *testing.T) {
	nw := NewNetworkWithOptions(NetworkOptions{HTTP: HTTPGroup{Enable: true}})
	defer nw.Close()
	nw.MustAddPeer("n", "r(x int)")
	if err := nw.Insert("n", "r", Row(Int(5))); err != nil {
		t.Fatal(err)
	}
	addr, _ := nw.PeerHTTPAddr("n")
	req, err := http.NewRequest("POST", fmt.Sprintf("http://%s/v1/query", addr),
		strings.NewReader(`{"query": "ans(x) :- r(x)", "local": true}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(string(raw))
	if want := "[5]\n{\"count\":1,\"done\":true}"; got != want {
		t.Fatalf("NDJSON body = %q, want %q", got, want)
	}
}
