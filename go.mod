module codb

go 1.24
