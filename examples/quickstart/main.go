// Quickstart: three heterogeneous databases — a hospital, a clinic and a
// lab — share patient data through GLAV coordination rules. The hospital
// runs a global update to materialise everything it can import, then
// answers queries locally; a distributed query shows query-time fetching.
package main

import (
	"context"
	"fmt"
	"log"

	"codb"
)

func main() {
	nw := codb.NewNetwork()
	defer nw.Close()

	// Three peers with different schemas.
	nw.MustAddPeer("hospital",
		"patient(id int, name string)",
		"treatment(pid int, drug string)")
	nw.MustAddPeer("clinic",
		"visitor(id int, name string, insured bool)")
	nw.MustAddPeer("lab",
		"sample(pid int, drug string, level float)")

	// Coordination rules: the hospital imports clinic visitors as
	// patients (only insured ones) and lab samples as treatments.
	nw.MustAddRule("r1",
		`hospital.patient(x, n) <- clinic.visitor(x, n, i), i = true`)
	nw.MustAddRule("r2",
		`hospital.treatment(p, d) <- lab.sample(p, d, l), l > 0.5`)

	// Local data at each peer.
	nw.Insert("clinic", "visitor",
		codb.Row(codb.Int(1), codb.Str("ann"), codb.Bool(true)),
		codb.Row(codb.Int(2), codb.Str("bob"), codb.Bool(false)), // uninsured: filtered
		codb.Row(codb.Int(3), codb.Str("cyd"), codb.Bool(true)),
	)
	nw.Insert("lab", "sample",
		codb.Row(codb.Int(1), codb.Str("aspirin"), codb.Float(0.9)),
		codb.Row(codb.Int(3), codb.Str("ibuprofen"), codb.Float(0.2)), // low level: filtered
	)
	nw.Insert("hospital", "patient",
		codb.Row(codb.Int(7), codb.Str("dee")), // the hospital's own patient
	)

	ctx := context.Background()

	// Query-time fetching: no materialisation has happened yet, so the
	// data is pulled from the acquaintances for the duration of the query.
	rows, err := nw.Query(ctx, "hospital", `ans(n) :- patient(x, n)`, codb.AllAnswers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distributed query — patients visible at the hospital:")
	for _, r := range rows {
		fmt.Println(" ", r)
	}

	// Global update: materialise all imports; afterwards queries are
	// answered locally without touching the network.
	rep, err := nw.Update(ctx, "hospital")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nglobal update %s: %d new tuples, %d result messages received\n",
		rep.SID, rep.NewTuples, total(rep.MsgsPerRule))

	local, err := nw.LocalQuery("hospital",
		`ans(n, d) :- patient(x, n), treatment(x, d)`, codb.AllAnswers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlocal query after the update — who is treated with what:")
	for _, r := range local {
		fmt.Println(" ", r)
	}
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
