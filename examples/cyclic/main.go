// Cyclic coordination rules: two university registries mirror each other
// (a copy cycle), and a third peer derives supervision facts with an
// existential variable — every student has *some* supervisor, represented
// by a marked null. The global update computes the fix-point and
// terminates despite the cycle; certain-answer queries hide the nulls,
// all-answer queries expose them.
package main

import (
	"context"
	"fmt"
	"log"

	"codb"
)

func main() {
	nw := codb.NewNetwork()
	defer nw.Close()

	nw.MustAddPeer("trento", "student(id int, name string)")
	nw.MustAddPeer("bolzano", "student(id int, name string)")
	nw.MustAddPeer("registry", "supervised(sid int, prof string)")

	// The cycle: each university imports the other's students.
	nw.MustAddRule("t_from_b", `trento.student(x, n) <- bolzano.student(x, n)`)
	nw.MustAddRule("b_from_t", `bolzano.student(x, n) <- trento.student(x, n)`)
	// Existential rule: every Trento student is supervised by someone.
	nw.MustAddRule("sup", `registry.supervised(x, p) <- trento.student(x, n)`)

	nw.Insert("trento", "student", codb.Row(codb.Int(1), codb.Str("ada")))
	nw.Insert("bolzano", "student", codb.Row(codb.Int(2), codb.Str("kurt")))

	ctx := context.Background()
	rep, err := nw.Update(ctx, "registry")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update terminated on the cyclic network (longest path %d)\n\n", rep.LongestPath)

	for _, uni := range []string{"trento", "bolzano"} {
		rows, err := nw.LocalQuery(uni, `ans(x, n) :- student(x, n)`, codb.AllAnswers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s students after the fix-point:\n", uni)
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	}

	all, err := nw.LocalQuery("registry", `ans(x, p) :- supervised(x, p)`, codb.AllAnswers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsupervision facts (all answers — note the marked nulls ⊥):")
	for _, r := range all {
		fmt.Println(" ", r)
	}

	certain, err := nw.LocalQuery("registry", `ans(x) :- supervised(x, p)`, codb.CertainAnswers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwho is certainly supervised (nulls projected away):")
	for _, r := range certain {
		fmt.Println(" ", r)
	}
}
