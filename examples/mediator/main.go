// Mediator node: the broker peer has no Local Database (the dashed LDB of
// the paper's Figure 1) — only a shared schema. All relational operations
// execute in its Wrapper over transient data, yet it still connects two
// databases that have no rule between each other, translating schemas on
// the way through.
package main

import (
	"context"
	"fmt"
	"log"

	"codb"
)

func main() {
	nw := codb.NewNetwork()
	defer nw.Close()

	// A warehouse with SKU-keyed stock and a shop with product listings;
	// the broker's schema bridges the two vocabularies.
	nw.MustAddPeer("shop", "product(sku int, title string)")
	if _, err := nw.AddMediator("broker", "item(sku int, label string)"); err != nil {
		log.Fatal(err)
	}
	nw.MustAddPeer("warehouse", "stock(sku int, descr string, qty int)")

	// warehouse -> broker -> shop, with renaming at each hop.
	nw.MustAddRule("b_from_w", `broker.item(s, d) <- warehouse.stock(s, d, q), q > 0`)
	nw.MustAddRule("s_from_b", `shop.product(s, l) <- broker.item(s, l)`)

	nw.Insert("warehouse", "stock",
		codb.Row(codb.Int(100), codb.Str("lamp"), codb.Int(3)),
		codb.Row(codb.Int(101), codb.Str("desk"), codb.Int(0)), // out of stock
		codb.Row(codb.Int(102), codb.Str("chair"), codb.Int(9)),
	)

	ctx := context.Background()
	if _, err := nw.Update(ctx, "shop"); err != nil {
		log.Fatal(err)
	}

	rows, err := nw.LocalQuery("shop", `ans(s, t) :- product(s, t)`, codb.AllAnswers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("products at the shop, imported through the storage-less broker:")
	for _, r := range rows {
		fmt.Println(" ", r)
	}

	// The broker held the data only transiently, in its wrapper.
	broker := nw.Peer("broker")
	fmt.Printf("\nbroker wrapper currently holds %d item tuples (transient, no LDB)\n",
		broker.Count("item"))
}
