// Dynamic networks: a super-peer broadcasts a coordination-rules file,
// runs an update, then broadcasts a *different* file at runtime — peers
// drop the old rules and pipes and build the new ones (paper §4) — and the
// next update follows the new topology.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"codb"
)

const chainCfg = `version 1
node n0
  rel data(k int, v int)
end
node n1
  rel data(k int, v int)
end
node n2
  rel data(k int, v int)
end
rule a: n0.data(x, y) <- n1.data(x, y)
rule b: n1.data(x, y) <- n2.data(x, y)
`

const starCfg = `version 2
node n0
  rel data(k int, v int)
end
node n1
  rel data(k int, v int)
end
node n2
  rel data(k int, v int)
end
rule a: n0.data(x, y) <- n1.data(x, y)
rule c: n0.data(x, y) <- n2.data(x, y)
`

func main() {
	nw, err := codb.NewNetworkFromConfig(chainCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer nw.Close()

	nw.Insert("n1", "data", codb.Row(codb.Int(1), codb.Int(10)))
	nw.Insert("n2", "data", codb.Row(codb.Int(2), codb.Int(20)))

	ctx := context.Background()
	sp, err := nw.SuperPeer()
	if err != nil {
		log.Fatal(err)
	}

	rep, err := sp.StartUpdate(ctx, "n0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain topology: update materialised %d tuples at n0, longest path %d\n",
		count(nw, "n0"), rep.LongestPath)

	// Runtime reconfiguration: broadcast the star file.
	cfg2, err := codb.ParseConfig(starCfg)
	if err != nil {
		log.Fatal(err)
	}
	sp.SetConfig(cfg2)
	if err := sp.Broadcast(); err != nil {
		log.Fatal(err)
	}
	// Broadcast floods asynchronously; wait for the peers to switch.
	waitForRule(nw, "n0", 2)

	nw.Insert("n2", "data", codb.Row(codb.Int(3), codb.Int(30)))
	rep, err = sp.StartUpdate(ctx, "n0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("star topology:  update materialised %d tuples at n0, longest path %d\n",
		count(nw, "n0"), rep.LongestPath)

	outgoing, _ := nw.Peer("n0").Links()
	fmt.Printf("n0 outgoing links after reconfiguration: %v\n", outgoing)
}

func count(nw *codb.Network, node string) int {
	rows, _ := nw.LocalQuery(node, `ans(k, v) :- data(k, v)`, codb.AllAnswers)
	return len(rows)
}

func waitForRule(nw *codb.Network, node string, want int) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		out, _ := nw.Peer(node).Links()
		if len(out) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("reconfiguration did not reach", node)
}
