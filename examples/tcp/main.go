// TCP deployment: the same peers that the in-process examples use, but
// talking over real sockets on localhost — the shape of a multi-process /
// multi-host coDB network (each peer here could equally be its own
// codb-peer process; see cmd/codb-peer and cmd/codb-super).
package main

import (
	"context"
	"fmt"
	"log"

	"codb/internal/core"
	"codb/internal/cq"
	"codb/internal/peer"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/transport"
)

func main() {
	// Three peers, each with its own TCP listener on an ephemeral port.
	newPeer := func(name string) (*peer.Peer, string) {
		tr, err := transport.NewTCP(name, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		db := storage.MustOpenMem()
		err = db.DefineRelation(&relation.RelDef{Name: "events", Attrs: []relation.Attr{
			{Name: "id", Type: relation.TInt},
			{Name: "kind", Type: relation.TString},
		}})
		if err != nil {
			log.Fatal(err)
		}
		p, err := peer.New(peer.Options{Name: name, Transport: tr, Wrapper: core.NewStoreWrapper(db)})
		if err != nil {
			log.Fatal(err)
		}
		return p, tr.Addr()
	}

	agg, _ := newPeer("aggregator")
	s1, addr1 := newPeer("sensor1")
	s2, addr2 := newPeer("sensor2")
	defer agg.Stop()
	defer s1.Stop()
	defer s2.Stop()

	// The aggregator dials the sensors by address (a real deployment gets
	// these from the configuration file or discovery gossip).
	agg.SetDirectory(map[string]string{"sensor1": addr1, "sensor2": addr2})

	for _, r := range []struct{ id, text string }{
		{"r1", `aggregator.events(x, k) <- sensor1.events(x, k)`},
		{"r2", `aggregator.events(x, k) <- sensor2.events(x, k)`},
	} {
		if err := agg.AddRule(r.id, r.text); err != nil {
			log.Fatal(err)
		}
	}
	// Only the aggregator declares the rules; the sensors learn them from
	// the update requests (paper §2: requests carry rule definitions).

	s1.Insert("events", row(1, "boot"), row(2, "alarm"))
	s2.Insert("events", row(3, "boot"))

	rep, err := agg.RunUpdate(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update over TCP complete: %d new tuples at the aggregator\n", rep.NewTuples)

	rows, err := agg.LocalQuery(cq.MustParseQuery(`ans(x, k) :- events(x, k)`), core.AllAnswers)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	fmt.Printf("aggregator pipes: %v\n", agg.Pipes())
}

func row(id int, kind string) relation.Tuple {
	return relation.Tuple{relation.Int(id), relation.Str(kind)}
}
