// Query-dependent (scoped) updates — the paper's §2 mentions "global and
// query-dependent update requests": instead of materialising everything a
// node can import, a scoped update fetches and persists only the data
// transitively relevant to chosen relations. Here a dashboard node
// materialises alert data without dragging the (much larger) log data
// across the network.
package main

import (
	"context"
	"fmt"
	"log"

	"codb"
)

func main() {
	nw := codb.NewNetwork()
	defer nw.Close()

	nw.MustAddPeer("dashboard",
		"alerts(id int, severity int)",
		"logs(id int, line string)")
	nw.MustAddPeer("collector",
		"alerts(id int, severity int)",
		"logs(id int, line string)")
	nw.MustAddPeer("agent",
		"alerts(id int, severity int)",
		"logs(id int, line string)")

	// Both relations flow agent -> collector -> dashboard.
	nw.MustAddRule("a1", `dashboard.alerts(x, s) <- collector.alerts(x, s), s >= 2`)
	nw.MustAddRule("a2", `collector.alerts(x, s) <- agent.alerts(x, s)`)
	nw.MustAddRule("l1", `dashboard.logs(x, l) <- collector.logs(x, l)`)
	nw.MustAddRule("l2", `collector.logs(x, l) <- agent.logs(x, l)`)

	nw.Insert("agent", "alerts",
		codb.Row(codb.Int(1), codb.Int(3)),
		codb.Row(codb.Int(2), codb.Int(1)), // below severity threshold
	)
	for i := 0; i < 1000; i++ {
		nw.Insert("agent", "logs", codb.Row(codb.Int(i), codb.Str("noise")))
	}

	ctx := context.Background()
	rep, err := nw.ScopedUpdate(ctx, "dashboard", "alerts")
	if err != nil {
		log.Fatal(err)
	}

	alerts, _ := nw.LocalQuery("dashboard", `ans(x, s) :- alerts(x, s)`, codb.AllAnswers)
	logs, _ := nw.LocalQuery("dashboard", `ans(x) :- logs(x, l)`, codb.AllAnswers)
	fmt.Printf("scoped update %s complete\n", rep.SID)
	fmt.Printf("dashboard alerts materialised: %d (severity >= 2 only)\n", len(alerts))
	for _, a := range alerts {
		fmt.Println("  ", a)
	}
	fmt.Printf("dashboard logs materialised:   %d (out of 1000 at the agent — not in scope)\n", len(logs))

	// The intermediate collector persisted the relevant data too.
	collectorAlerts, _ := nw.LocalQuery("collector", `ans(x, s) :- alerts(x, s)`, codb.AllAnswers)
	fmt.Printf("collector alerts materialised: %d (scoped updates persist along the path)\n", len(collectorAlerts))
}
