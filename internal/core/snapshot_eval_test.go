package core

import (
	"fmt"
	"math/rand"
	"testing"

	"codb/internal/chase"
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/relation"
	"codb/internal/storage"
)

// snapshotEvalTemplates are the rule shapes the snapshot-vs-serial property
// runs: copy, projection with an existential head, self-join, constant
// pushdown (ScanEq), and a join whose first atom is constant-restricted.
// All are incoming links of node "exp" (Source == Self), as exportSince
// evaluates them.
var snapshotEvalTemplates = []string{
	`imp.out(x, y) <- exp.data(x, y)`,
	`imp.out(x, z) <- exp.data(x, y)`,
	`imp.out(x, z) <- exp.data(x, y), exp.data(y, z)`,
	`imp.big(x, y) <- exp.big(x, y, 7)`,
	`imp.out(x, z) <- exp.big(x, y, 7), exp.data(y, z)`,
}

// TestSessionSnapshotBindingsMatchSerial is the write-path parallelism
// property: evaluating a session's incoming link over a pinned snapshot
// view (shard-parallel hash-join builds, secondary-view ScanEq pushdown)
// yields bindings bit-identical — same tuples, same order — to the serial
// live-wrapper path, across randomized rules, shard counts, parallelism,
// data, and the semi-naive delta entry point.
func TestSessionSnapshotBindingsMatchSerial(t *testing.T) {
	shardChoices := []int{1, 2, 8}
	parChoices := []int{2, 4}
	for seed := int64(0); seed < 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(seed))
			shards := shardChoices[rnd.Intn(len(shardChoices))]
			par := parChoices[rnd.Intn(len(parChoices))]
			ruleText := snapshotEvalTemplates[rnd.Intn(len(snapshotEvalTemplates))]
			rule, err := cq.ParseRule("r1", ruleText)
			if err != nil {
				t.Fatal(err)
			}

			db, err := storage.Open(storage.Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			defs := []*relation.RelDef{
				{Name: "data", Attrs: []relation.Attr{
					{Name: "a", Type: relation.TInt}, {Name: "b", Type: relation.TInt},
				}},
				{Name: "big", Attrs: []relation.Attr{
					{Name: "a", Type: relation.TInt}, {Name: "b", Type: relation.TInt},
					{Name: "c", Type: relation.TInt},
				}},
			}
			for _, def := range defs {
				if err := db.DefineRelation(def); err != nil {
					t.Fatal(err)
				}
			}
			// Small domain so joins and the constant (7) actually match.
			var dataTuples []relation.Tuple
			for i := 0; i < 300; i++ {
				dataTuples = append(dataTuples, relation.Tuple{
					relation.Int(rnd.Intn(24)), relation.Int(rnd.Intn(24)),
				})
			}
			if _, err := db.InsertMany("data", dataTuples); err != nil {
				t.Fatal(err)
			}
			var bigTuples []relation.Tuple
			for i := 0; i < 300; i++ {
				bigTuples = append(bigTuples, relation.Tuple{
					relation.Int(rnd.Intn(24)), relation.Int(rnd.Intn(24)),
					relation.Int(rnd.Intn(12)),
				})
			}
			if _, err := db.InsertMany("big", bigTuples); err != nil {
				t.Fatal(err)
			}

			// Two nodes over the same database: the serial baseline reads
			// the live wrapper, the other evaluates over pinned snapshots
			// with parallel fan-out.
			serial, err := NewNode(Config{
				Self: "exp", Wrapper: NewStoreWrapper(db),
				DisableSessionSnapshots: true,
				Eval:                    cq.EvalOptions{Parallelism: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			snapped, err := NewNode(Config{
				Self: "exp", Wrapper: NewStoreWrapper(db),
				Eval: cq.EvalOptions{Parallelism: par},
			})
			if err != nil {
				t.Fatal(err)
			}
			sSerial := serial.newSession("s1", msg.KindUpdate, "exp")
			sSnap := snapped.newSession("s1", msg.KindUpdate, "exp")

			vSerial := serial.sessionView(sSerial)
			vSnap := snapped.sessionView(sSnap)
			if vSerial.snap != nil {
				t.Fatal("serial baseline unexpectedly snapshot-backed")
			}
			if vSnap.snap == nil {
				t.Fatal("session view did not pin a snapshot")
			}

			want, err := chase.Bindings(rule, vSerial, serial.chaseOpts())
			if err != nil {
				t.Fatal(err)
			}
			got, err := chase.Bindings(rule, vSnap, snapped.chaseOpts())
			if err != nil {
				t.Fatal(err)
			}
			mustEqualTuples(t, "full evaluation", want, got)

			// Delta entry point: re-evaluate semi-naively over a random
			// subset of one body relation, as the in-session and
			// cross-session incremental steps do.
			deltaRel := "data"
			pool := dataTuples
			if rnd.Intn(2) == 0 && ruleText != snapshotEvalTemplates[0] {
				deltaRel, pool = "big", bigTuples
			}
			var delta []relation.Tuple
			for _, tup := range pool {
				if rnd.Intn(4) == 0 {
					delta = append(delta, tup)
				}
			}
			wantD, err := chase.BindingsDelta(rule, vSerial, deltaRel, delta, serial.chaseOpts())
			if err != nil {
				t.Fatal(err)
			}
			gotD, err := chase.BindingsDelta(rule, vSnap, deltaRel, delta, snapped.chaseOpts())
			if err != nil {
				t.Fatal(err)
			}
			mustEqualTuples(t, "delta evaluation", wantD, gotD)
		})
	}
}

func mustEqualTuples(t *testing.T, what string, want, got []relation.Tuple) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d bindings serial vs %d snapshot-parallel", what, len(want), len(got))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() {
			t.Fatalf("%s: binding %d differs: serial %v vs snapshot-parallel %v",
				what, i, want[i], got[i])
		}
	}
}

// TestSessionViewRepinsAfterInsert asserts the re-pin contract: an
// insertMany that lands in the LDB advances the storage LSN, so the next
// sessionView call pins a fresh snapshot that observes the session's own
// writes; with no intervening commit the pin is reused.
func TestSessionViewRepinsAfterInsert(t *testing.T) {
	db := storage.MustOpenMem()
	defer db.Close()
	if err := db.DefineRelation(&relation.RelDef{Name: "data", Attrs: []relation.Attr{
		{Name: "a", Type: relation.TInt}, {Name: "b", Type: relation.TInt},
	}}); err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(Config{Self: "exp", Wrapper: NewStoreWrapper(db)})
	if err != nil {
		t.Fatal(err)
	}
	s := n.newSession("s1", msg.KindUpdate, "exp")
	v1 := n.sessionView(s)
	if v1.snap == nil {
		t.Fatal("no snapshot pinned")
	}
	if v2 := n.sessionView(s); v2.snap != v1.snap {
		t.Fatal("pin not reused with no intervening commit")
	}
	tup := relation.Tuple{relation.Int(1), relation.Int(2)}
	if _, err := v1.insertMany("data", []relation.Tuple{tup}); err != nil {
		t.Fatal(err)
	}
	v3 := n.sessionView(s)
	if v3.snap == v1.snap {
		t.Fatal("pin not refreshed after an LDB insert")
	}
	if !v3.snap.Has("data", tup) {
		t.Fatal("re-pinned snapshot misses the session's own write")
	}
	n.finalize(s, true, &Result{})
	if s.pinned != nil {
		t.Fatal("finalize did not release the pinned snapshot")
	}
}
