// Package core implements the paper's primary contribution: the coDB global
// update algorithm and the distributed query answering algorithm (§3 of the
// paper), as a pure state machine free of I/O. Each peer owns one Node; the
// peer's actor loop feeds inbound messages to the Node's Handle* methods and
// ships the returned outbound messages through a transport. Keeping the
// algorithm synchronous and deterministic makes it testable against the
// centralised chase oracle without any goroutines.
//
// # Semantics implemented (and the two deliberate readings of §3)
//
// Global update: the session floods to every acquaintance with duplicate
// suppression ("request propagation is stopped … if that node has already
// received this request message"). On joining, a node evaluates every
// incoming link fully and pushes the frontier bindings to the link's
// importer; thereafter, data arriving on an outgoing link triggers
// semi-naive re-evaluation of the dependent incoming links ("incoming
// links, which are dependent on O, are computed by substituting R by T′"),
// with per-link sent caches suppressing re-sends ("we delete from Ri those
// tuples which have been already sent"). This computes the exact
// Skolem-chase fixpoint, verified against internal/chase.Fixpoint.
//
// Query answering: the query is answered from local data immediately and
// propagated along the *relevant* outgoing links only, with node-ID path
// labels ("a node does not propagate a query request, if its ID is
// contained in the label"), per-session overlay storage instead of LDB
// commits, and streaming of new answers at the origin as results arrive.
// On cyclic rule graphs the path labels make query results the simple-path
// approximation of the fixpoint; the global update remains the mechanism
// for full materialisation, which is exactly the paper's motivation for it.
//
// Termination uses Dijkstra–Scholten over all basic messages (requests,
// data, link-closes); see internal/diffuse. The paper's per-link
// open/closed protocol is layered on top for early completion reporting;
// links trapped on dependency cycles are force-closed when the initiator's
// detector fires (the paper's condition "all query results did not bring
// any new data").
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"codb/internal/chase"
	"codb/internal/cq"
	"codb/internal/diffuse"
	"codb/internal/msg"
	"codb/internal/relation"
)

// ChangeTracker is the optional change-capture interface of a Wrapper.
// When the local storage implements it, the node keeps a persistent LSN
// watermark per incoming link and exports incrementally across sessions
// (exportSince); wrappers without it always export in full.
type ChangeTracker interface {
	// LSN returns the storage's monotone commit sequence number.
	LSN() uint64
	// Changes returns the tuples committed into rel after sinceLSN, in
	// commit order; ok is false when that history is unavailable (deletes,
	// changelog truncation, restart past a checkpoint) and the caller must
	// fall back to a full scan.
	Changes(rel string, sinceLSN uint64) (inserts []relation.Tuple, ok bool)
}

// ReadView is an immutable point-in-time view of a wrapper's data, pinned
// at one storage commit LSN: the unit of the concurrent query path. A view
// is safe for concurrent use and never blocks (or is blocked by) writers.
type ReadView interface {
	cq.Source
	// Has reports tuple presence as of the view.
	Has(rel string, t relation.Tuple) bool
	// Count returns a relation's cardinality as of the view.
	Count(rel string) int
	// Tuples returns all tuples of a relation as of the view, in key order.
	Tuples(rel string) []relation.Tuple
	// Schema returns the schema as of the view.
	Schema() *relation.Schema
	// LSN is the commit sequence number the view is pinned at — the
	// query-result cache's invalidation token.
	LSN() uint64
}

// Snapshotter is the optional snapshot capability of a Wrapper. Wrappers
// implementing it let the peer serve queries off the actor loop: readers
// evaluate over pinned views concurrently with update sessions, while
// writes keep serialising through the loop. Implementing Snapshotter also
// asserts that the wrapper's plain read methods (Schema, Scan, Has, Count)
// are safe for concurrent use — the peer answers point reads like Count
// through them directly, reserving snapshots for whole evaluations.
type Snapshotter interface {
	ReadSnapshot() ReadView
}

// Wrapper is the storage interface the algorithm needs from the Local
// Database — the paper's Wrapper module. StoreWrapper (over the embedded
// engine) and MediatorWrapper (no LDB; operations executed in the wrapper)
// both implement it.
type Wrapper interface {
	// Schema returns the node's shared schema (DBS).
	Schema() *relation.Schema
	// Scan iterates a relation (cq.Source).
	Scan(rel string, fn func(relation.Tuple) bool)
	// Has reports tuple presence.
	Has(rel string, t relation.Tuple) bool
	// InsertMany inserts a batch with set semantics and returns the
	// tuples that were actually new (T′ = T \ R).
	InsertMany(rel string, ts []relation.Tuple) ([]relation.Tuple, error)
	// Count returns a relation's cardinality.
	Count(rel string) int
}

// DefaultMaxDepth bounds the chase's null derivation depth unless the
// configuration overrides it. Diverging (non-weakly-acyclic) rule sets are
// cut off at this depth; terminating ones never reach it.
const DefaultMaxDepth = 16

// Config configures a Node. The zero value of the feature toggles selects
// the paper's algorithm; the toggles exist for the ablation benchmarks.
type Config struct {
	// Self is this node's network-unique name.
	Self string
	// Wrapper is the local storage.
	Wrapper Wrapper
	// MaxDepth bounds null derivation depth; 0 selects DefaultMaxDepth,
	// negative means unlimited.
	MaxDepth int
	// Eval selects the join strategy (A3 ablation).
	Eval cq.EvalOptions
	// DisableDedup turns off the per-link sent caches (A2 ablation).
	DisableDedup bool
	// Naive replaces semi-naive delta re-evaluation with full
	// re-evaluation of dependent links (A1 ablation).
	Naive bool
	// FullExport disables the cross-session incremental export machinery:
	// every session re-evaluates and re-ships every incoming link in full,
	// as the paper's algorithm does. The default (incremental) evaluates
	// only tuples committed past each link's persistent LSN watermark and
	// suppresses bindings already shipped in earlier sessions.
	FullExport bool
	// MaxFingerprints bounds the per-rule persistent shipped-binding
	// fingerprint set (0 = 1<<20). On overflow the rule's export state is
	// reset, degrading the next session to a full export.
	MaxFingerprints int
	// DisableSessionSnapshots forces session evaluation back onto the live
	// wrapper (serial scans under storage locks) even when the wrapper
	// implements Snapshotter + ChangeTracker. The default evaluates update
	// sessions over pinned snapshots, unlocking shard-parallel hash-join
	// builds and secondary-index pushdown on the write path.
	DisableSessionSnapshots bool
	// LinkSpeaksPull reports whether the named peer can receive the
	// pull-family payloads (wire protocol version 2). nil assumes every
	// peer can — correct for in-process transports; the peer layer wires a
	// negotiated-version check for TCP so pull links toward old peers
	// degrade to push instead of tearing the pipe with an unknown tag.
	LinkSpeaksPull func(node string) bool
	// Clock supplies timestamps (UnixNano); nil uses a zero clock, which
	// keeps pure-core tests deterministic. The peer layer injects real
	// time.
	Clock func() int64
	// MaxReports bounds the retained per-session reports (0 = 128).
	MaxReports int
}

// Outbound is one message the caller must ship.
type Outbound struct {
	To      string
	Payload msg.Payload
}

// Finished describes a session that completed at this node.
type Finished struct {
	SID       string
	Initiator bool
	Report    msg.UpdateReport
}

// Result aggregates everything a Handle call produced.
type Result struct {
	// Out lists messages to send, in order.
	Out []Outbound
	// Answers carries newly discovered query answers when this node is
	// the origin of a query session; AnswersSID names that session.
	Answers    []relation.Tuple
	AnswersSID string
	// Finished lists sessions that completed during this call.
	Finished []Finished
	// Errors lists chase/eval failures encountered while exporting or
	// streaming answers. The session keeps going (termination must still
	// be reached), but its result may be incomplete; the per-session
	// report counts them as EvalErrors.
	Errors []error
}

func (r *Result) send(to string, p msg.Payload) {
	r.Out = append(r.Out, Outbound{To: to, Payload: p})
}

// GroupedOut returns Out stably regrouped so that messages to the same
// destination are contiguous: destinations appear in first-send order, and
// within a destination the original send order is preserved. Messages to
// distinct peers are causally independent (the termination detector counts
// sends, it does not order them across pipes), so shipping the groups
// back-to-back is equivalent to shipping Out — but it hands the transport
// outbox contiguous per-destination runs to coalesce into batch frames.
func (r *Result) GroupedOut() []Outbound {
	if len(r.Out) < 3 {
		return r.Out
	}
	order := make([]string, 0, 4)
	byDest := make(map[string][]Outbound, 4)
	for _, o := range r.Out {
		if _, ok := byDest[o.To]; !ok {
			order = append(order, o.To)
		}
		byDest[o.To] = append(byDest[o.To], o)
	}
	if len(order) == len(r.Out) {
		return r.Out // nothing to group
	}
	out := make([]Outbound, 0, len(r.Out))
	for _, to := range order {
		out = append(out, byDest[to]...)
	}
	return out
}

func (r *Result) merge(other Result) {
	r.Out = append(r.Out, other.Out...)
	r.Answers = append(r.Answers, other.Answers...)
	r.Finished = append(r.Finished, other.Finished...)
	r.Errors = append(r.Errors, other.Errors...)
}

// ruleState is one coordination rule known to this node.
type ruleState struct {
	rule *cq.Rule
	text string
}

// exportState is one incoming link's persistent export state: it survives
// sessions (and, via ExportState/RestoreExportState, process restarts), so
// a later session exports only what changed since the watermark and never
// re-ships a binding the importer already materialised.
//
// Like the per-session sent caches, the fingerprints record *sends*, not
// deliveries: a data message written off by the termination detector on a
// failed pipe (Report.CompensatedLost != 0, which already signals possibly
// incomplete materialisation) stays suppressed in later sessions too. The
// recovery paths are ResetExportStateToward (used when an importer is known
// to have lost its data), a FullExport configuration, or dropping the state
// file — set semantics make blanket re-ships safe.
type exportState struct {
	// watermark is the storage LSN up to which the rule's body relations
	// have been evaluated and exported.
	watermark uint64
	// shipped fingerprints every binding shipped through the rule (by
	// tuple key), across sessions.
	shipped map[string]bool
}

// Node is the algorithm state machine for one peer.
type Node struct {
	cfg      Config
	maxDepth int
	rules    map[string]*ruleState
	appliers map[string]*chase.Applier // per outgoing rule (Target == Self)
	sessions map[string]*session
	ds       *diffuse.Engine
	reports  []msg.UpdateReport

	// tracker is the wrapper's change-capture interface (nil when the
	// storage has none); exports holds the per-rule persistent export
	// state of the incremental machinery (Source == Self rules only).
	// pendingExports buffers restored snapshots for rules not yet
	// declared (see RestoreExportState).
	tracker ChangeTracker
	// snapshotter is the wrapper's snapshot capability (nil when absent).
	// With both tracker and snapshotter present (and the toggle off),
	// session evaluation reads pinned snapshots instead of the live
	// wrapper; see Node.sessionView.
	snapshotter    Snapshotter
	exports        map[string]*exportState
	pendingExports map[string]ExportSnapshot
	// exportsChanged counts mutations of the export state (watermark
	// advances, new fingerprints, resets), so the peer layer persists only
	// when something actually changed.
	exportsChanged uint64

	// policies holds the per-rule propagation policies (push is implicit
	// for rules without one); propStats the per-rule propagation counters;
	// totals the cumulative roll-up of the session-report export counters.
	policies  map[string]*linkPolicy
	propStats map[string]*propStat
	totals    ExportTotals

	// deferAcks batches acknowledgement flushes across a burst of Handle
	// calls; dirty tracks the sessions awaiting a flush. See DeferAcks.
	deferAcks bool
	dirty     map[string]*session

	// Rule-set views, rebuilt lazily after rule mutations. Outgoing /
	// Incoming / Acquaintances sit on the per-message hot path (every
	// closeCheck scans them), so they must not re-sort the rule map on
	// each call.
	outgoingCache []*cq.Rule
	incomingCache []*cq.Rule
	acqCache      []string

	// rulesVer advances on every rule-set mutation. Unlike the rest of the
	// Node it is atomic, because the peer's concurrent read path uses it as
	// a cache-invalidation token from outside the actor loop.
	rulesVer atomic.Uint64
}

// invalidateRuleCaches drops the cached rule-set views after a mutation.
func (n *Node) invalidateRuleCaches() {
	n.outgoingCache, n.incomingCache, n.acqCache = nil, nil, nil
	n.rulesVer.Add(1)
}

// RuleSetVersion returns a counter that advances whenever the rule set
// mutates. Safe to call from any goroutine (it is the one piece of Node
// state read off the actor loop): the query-result cache keys validity on
// it, so a rule broadcast mid-query invalidates cached results.
func (n *Node) RuleSetVersion() uint64 { return n.rulesVer.Load() }

// NewNode builds a node. Config.Self and Config.Wrapper are required.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("core: Config.Self is required")
	}
	if cfg.Wrapper == nil {
		return nil, fmt.Errorf("core: Config.Wrapper is required")
	}
	maxDepth := cfg.MaxDepth
	switch {
	case maxDepth == 0:
		maxDepth = DefaultMaxDepth
	case maxDepth < 0:
		maxDepth = 0 // chase.Options: 0 = unlimited
	}
	if cfg.Clock == nil {
		cfg.Clock = func() int64 { return 0 }
	}
	if cfg.MaxReports == 0 {
		cfg.MaxReports = 128
	}
	if cfg.MaxFingerprints == 0 {
		cfg.MaxFingerprints = 1 << 20
	}
	tracker, _ := cfg.Wrapper.(ChangeTracker)
	snapshotter, _ := cfg.Wrapper.(Snapshotter)
	if cfg.DisableSessionSnapshots {
		snapshotter = nil
	}
	return &Node{
		cfg:         cfg,
		maxDepth:    maxDepth,
		rules:       make(map[string]*ruleState),
		appliers:    make(map[string]*chase.Applier),
		sessions:    make(map[string]*session),
		ds:          diffuse.New(cfg.Self),
		dirty:       make(map[string]*session),
		tracker:     tracker,
		snapshotter: snapshotter,
		exports:     make(map[string]*exportState),
		policies:    make(map[string]*linkPolicy),
		propStats:   make(map[string]*propStat),
	}, nil
}

// DeferAcks toggles burst mode: while on, Handle accumulates
// acknowledgements (and the initiator's termination check) instead of
// emitting them per message; FlushDeferred emits them in one go. This is
// Dijkstra–Scholten's "a node acknowledges when it goes passive" applied to
// a whole inbox burst — the node stays active while more messages are
// queued, so a burst of n data messages from one sender costs one counted
// ack instead of n. Sent-counts are still reported to the detector inside
// each Handle call, before any deferred flush runs, so an ack can never
// overtake the sends it accounts for.
func (n *Node) DeferAcks(on bool) { n.deferAcks = on }

// FlushDeferred ends a burst: deferral is switched off and every session
// touched while it was on is flushed — owed acknowledgements are emitted
// (counted, one per sender) and the initiator's termination detection runs.
// Callers must dispatch the result like any Handle result.
func (n *Node) FlushDeferred() Result {
	n.deferAcks = false
	var r Result
	for sid, s := range n.dirty {
		delete(n.dirty, sid)
		n.flushDS(s, &r)
	}
	return r
}

// Self returns the node name.
func (n *Node) Self() string { return n.cfg.Self }

// Wrapper returns the node's storage wrapper.
func (n *Node) Wrapper() Wrapper { return n.cfg.Wrapper }

// chaseOpts builds the chase options from the config.
func (n *Node) chaseOpts() chase.Options {
	return chase.Options{MaxDepth: n.maxDepth, Eval: n.cfg.Eval}
}

// AddRule registers a coordination rule. The rule must involve this node as
// source or target and connect two distinct peers.
func (n *Node) AddRule(id, text string) error {
	rule, err := cq.ParseRule(id, text)
	if err != nil {
		return err
	}
	return n.addParsedRule(rule, text)
}

func (n *Node) addParsedRule(rule *cq.Rule, text string) error {
	if rule.Source == rule.Target {
		return fmt.Errorf("core: rule %s connects %s to itself; coordination rules link distinct peers", rule.ID, rule.Source)
	}
	if rule.Source != n.cfg.Self && rule.Target != n.cfg.Self {
		return fmt.Errorf("core: rule %s (%s <- %s) does not involve node %s", rule.ID, rule.Target, rule.Source, n.cfg.Self)
	}
	if prev, ok := n.rules[rule.ID]; ok && prev.text == text {
		return nil // idempotent re-add
	}
	// A redefined rule invalidates its export state: the old watermark and
	// fingerprints describe a different query. (Pending restored snapshots
	// are kept for the text check below.)
	if _, ok := n.exports[rule.ID]; ok {
		delete(n.exports, rule.ID)
		n.exportsChanged++
	}
	rs := &ruleState{rule: rule, text: text}
	n.rules[rule.ID] = rs
	if snap, ok := n.pendingExports[rule.ID]; ok {
		delete(n.pendingExports, rule.ID)
		n.installExportSnapshot(rs, snap)
	}
	n.invalidateRuleCaches()
	if rule.Target == n.cfg.Self {
		a, err := chase.NewApplier(rule, n.chaseOpts())
		if err != nil {
			return err
		}
		n.appliers[rule.ID] = a
	}
	return nil
}

// RemoveRule drops a rule (no-op if unknown). Its propagation policy goes
// with it; the accumulated counters stay (they are historical).
func (n *Node) RemoveRule(id string) {
	delete(n.rules, id)
	delete(n.appliers, id)
	delete(n.policies, id)
	n.dropExportState(id)
	n.invalidateRuleCaches()
}

// dropExportState forgets one rule's export state (counted as a change
// only when there was state to forget).
func (n *Node) dropExportState(id string) {
	if _, ok := n.exports[id]; ok {
		delete(n.exports, id)
		n.exportsChanged++
	}
	delete(n.pendingExports, id)
}

// ResetExportStateToward forgets the export state of every rule importing
// into the given peer. Callers use it when that peer's materialised data is
// known to be gone (it left the network, or was rebuilt from scratch):
// the watermarks and fingerprints assert "the importer already has this",
// which no longer holds, so the next session degrades to a full export and
// re-materialises the importer completely.
func (n *Node) ResetExportStateToward(peer string) {
	for id, rs := range n.rules {
		if rs.rule.Source == n.cfg.Self && rs.rule.Target == peer {
			n.dropExportState(id)
		}
	}
}

// ExportStateVersion returns a counter that advances whenever the export
// state mutates; the peer layer persists the state only when it moved.
func (n *Node) ExportStateVersion() uint64 { return n.exportsChanged }

// SetRules replaces the whole rule set (dynamic reconfiguration by the
// super-peer). Rules not involving this node are ignored, matching the
// paper's "each peer looks for relevant coordination rules".
func (n *Node) SetRules(defs []msg.RuleDef) error {
	old, oldAppliers := n.rules, n.appliers
	n.rules = make(map[string]*ruleState)
	n.appliers = make(map[string]*chase.Applier)
	n.invalidateRuleCaches()
	for _, d := range defs {
		rule, err := cq.ParseRule(d.ID, d.Text)
		if err != nil {
			return err
		}
		if rule.Source != n.cfg.Self && rule.Target != n.cfg.Self {
			continue
		}
		// Carry unchanged rules (and their appliers) into the fresh maps,
		// so addParsedRule's idempotent early-return preserves their
		// export state instead of invalidating it.
		if prev, ok := old[rule.ID]; ok && prev.text == d.Text {
			n.rules[rule.ID] = prev
			if a, ok := oldAppliers[rule.ID]; ok {
				n.appliers[rule.ID] = a
			}
		}
		if err := n.addParsedRule(rule, d.Text); err != nil {
			return err
		}
	}
	// Export state of rules the new configuration dropped goes with them
	// (addParsedRule already invalidated redefined ones).
	for id := range n.exports {
		if _, ok := n.rules[id]; !ok {
			delete(n.exports, id)
			n.exportsChanged++
		}
	}
	return nil
}

// ExportSnapshot is the serialisable export state of one incoming link.
type ExportSnapshot struct {
	// RuleText pins the snapshot to one rule definition: state restored
	// for a rule whose text has changed is discarded.
	RuleText string
	// Watermark is the storage LSN up to which the rule's body relations
	// have been exported.
	Watermark uint64
	// Shipped lists the binding keys already shipped through the rule.
	Shipped []string
}

// ExportState snapshots the persistent per-rule export state (watermarks
// plus shipped-binding fingerprints), for the peer layer to persist across
// process restarts.
func (n *Node) ExportState() map[string]ExportSnapshot {
	out := make(map[string]ExportSnapshot, len(n.exports))
	for id, es := range n.exports {
		rs, ok := n.rules[id]
		if !ok {
			continue
		}
		shipped := make([]string, 0, len(es.shipped))
		for k := range es.shipped {
			shipped = append(shipped, k)
		}
		out[id] = ExportSnapshot{RuleText: rs.text, Watermark: es.watermark, Shipped: shipped}
	}
	return out
}

// RestoreExportState installs a previously snapshotted export state. Rules
// are typically declared after construction, so snapshots wait in a pending
// set and attach when a matching rule arrives. An entry that cannot be
// trusted is dropped, degrading that rule to a full first export: a changed
// rule definition, a watermark ahead of the storage's current LSN (the
// state file outlived the data), or a wrapper without change capture.
func (n *Node) RestoreExportState(state map[string]ExportSnapshot) {
	if n.tracker == nil || n.cfg.FullExport {
		return
	}
	if n.pendingExports == nil {
		n.pendingExports = make(map[string]ExportSnapshot, len(state))
	}
	for id, snap := range state {
		if rs, ok := n.rules[id]; ok {
			n.installExportSnapshot(rs, snap)
			continue
		}
		n.pendingExports[id] = snap
	}
}

// installExportSnapshot validates one restored snapshot against the (now
// known) rule and the storage state, installing it only when safe.
func (n *Node) installExportSnapshot(rs *ruleState, snap ExportSnapshot) {
	if n.tracker == nil || n.cfg.FullExport {
		return
	}
	if rs.rule.Source != n.cfg.Self || snap.RuleText != rs.text {
		return
	}
	if snap.Watermark > n.tracker.LSN() || len(snap.Shipped) > n.cfg.MaxFingerprints {
		return
	}
	shipped := make(map[string]bool, len(snap.Shipped))
	for _, k := range snap.Shipped {
		shipped[k] = true
	}
	n.exports[rs.rule.ID] = &exportState{watermark: snap.Watermark, shipped: shipped}
	n.exportsChanged++
}

// ExportWatermarks reports each incoming link's persistent LSN watermark
// (diagnostics and tests).
func (n *Node) ExportWatermarks() map[string]uint64 {
	out := make(map[string]uint64, len(n.exports))
	for id, es := range n.exports {
		out[id] = es.watermark
	}
	return out
}

// Rules returns the known rules, sorted by ID.
func (n *Node) Rules() []*cq.Rule {
	out := make([]*cq.Rule, 0, len(n.rules))
	for _, rs := range n.rules {
		out = append(out, rs.rule)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RuleText returns a rule's concrete syntax ("" if unknown).
func (n *Node) RuleText(id string) string {
	if rs, ok := n.rules[id]; ok {
		return rs.text
	}
	return ""
}

// Outgoing returns the rules through which this node imports (Target ==
// Self), sorted by ID — the node's outgoing links. The returned slice is a
// cached view: callers must not modify it.
func (n *Node) Outgoing() []*cq.Rule {
	if n.outgoingCache == nil {
		out := make([]*cq.Rule, 0, 4)
		for _, rs := range n.rules {
			if rs.rule.Target == n.cfg.Self {
				out = append(out, rs.rule)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		n.outgoingCache = out
	}
	return n.outgoingCache
}

// Incoming returns the rules through which this node exports (Source ==
// Self), sorted by ID — the node's incoming links. The returned slice is a
// cached view: callers must not modify it.
func (n *Node) Incoming() []*cq.Rule {
	if n.incomingCache == nil {
		out := make([]*cq.Rule, 0, 4)
		for _, rs := range n.rules {
			if rs.rule.Source == n.cfg.Self {
				out = append(out, rs.rule)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		n.incomingCache = out
	}
	return n.incomingCache
}

// Acquaintances returns every peer this node shares a rule with, sorted.
// The returned slice is a cached view: callers must not modify it.
func (n *Node) Acquaintances() []string {
	if n.acqCache == nil {
		set := make(map[string]bool)
		for _, rs := range n.rules {
			if rs.rule.Source == n.cfg.Self {
				set[rs.rule.Target] = true
			} else {
				set[rs.rule.Source] = true
			}
		}
		out := make([]string, 0, len(set))
		for p := range set {
			out = append(out, p)
		}
		sort.Strings(out)
		n.acqCache = out
	}
	return n.acqCache
}

// Reports returns the completed-session reports accumulated at this node
// (most recent last), as the paper's statistics module does.
func (n *Node) Reports() []msg.UpdateReport {
	out := make([]msg.UpdateReport, len(n.reports))
	copy(out, n.reports)
	return out
}

// ActiveSessions lists sessions not yet finished (diagnostics).
func (n *Node) ActiveSessions() []string {
	var out []string
	for sid, s := range n.sessions {
		if !s.done {
			out = append(out, sid)
		}
	}
	sort.Strings(out)
	return out
}

// NoteReport records an externally produced per-session report in the
// statistics module — the peer's session-free local query path uses it so
// bypassed queries still show up in Reports() and super-peer aggregation.
// Must be called from the owning actor loop, like every other Node method.
func (n *Node) NoteReport(rep msg.UpdateReport) { n.recordReport(rep) }

func (n *Node) recordReport(rep msg.UpdateReport) {
	n.totals.Sessions++
	n.totals.ExportsFull += rep.ExportsFull
	n.totals.ExportsIncremental += rep.ExportsIncremental
	n.totals.ExportsFallback += rep.ExportsFallback
	n.totals.SkippedByWatermark += rep.SkippedByWatermark
	n.totals.SuppressedBindings += rep.SuppressedBindings
	n.totals.IncrementalMsgs += rep.IncrementalMsgs
	n.reports = append(n.reports, rep)
	if len(n.reports) > n.cfg.MaxReports {
		n.reports = n.reports[len(n.reports)-n.cfg.MaxReports:]
	}
}
