package core

import (
	"math/rand"
	"testing"

	"codb/internal/msg"
	"codb/internal/relation"
	"codb/internal/storage"
)

// sim runs a network of Nodes synchronously: outbound messages go into a
// queue, delivered one at a time (FIFO, or random order under a seed) —
// a deterministic model of the asynchronous network that lets the algorithm
// be tested without goroutines.
type sim struct {
	t        *testing.T
	nodes    map[string]*Node
	queue    []simEnv
	rnd      *rand.Rand // nil = FIFO delivery
	answers  map[string][]relation.Tuple
	finished map[string][]Finished
	steps    int
}

type simEnv struct {
	to  string
	env msg.Envelope
}

func newSim(t *testing.T) *sim {
	return &sim{
		t:        t,
		nodes:    make(map[string]*Node),
		answers:  make(map[string][]relation.Tuple),
		finished: make(map[string][]Finished),
	}
}

// addNode creates a node with a memory store and the given schema relations
// declared as "name/arity" over int attributes (e.g. "r/2").
func (s *sim) addNode(name string, rels ...string) *Node {
	db := storage.MustOpenMem()
	for _, spec := range rels {
		def := relDef(spec)
		if err := db.DefineRelation(def); err != nil {
			s.t.Fatal(err)
		}
	}
	n, err := NewNode(Config{Self: name, Wrapper: NewStoreWrapper(db)})
	if err != nil {
		s.t.Fatal(err)
	}
	s.nodes[name] = n
	return n
}

func (s *sim) addNodeCfg(cfg Config, rels ...string) *Node {
	if cfg.Wrapper == nil {
		db := storage.MustOpenMem()
		for _, spec := range rels {
			if err := db.DefineRelation(relDef(spec)); err != nil {
				s.t.Fatal(err)
			}
		}
		cfg.Wrapper = NewStoreWrapper(db)
	}
	n, err := NewNode(cfg)
	if err != nil {
		s.t.Fatal(err)
	}
	s.nodes[cfg.Self] = n
	return n
}

// relDef parses "name/arity" into an all-int relation definition.
func relDef(spec string) *relation.RelDef {
	name := spec[:len(spec)-2]
	arity := int(spec[len(spec)-1] - '0')
	attrs := make([]relation.Attr, arity)
	for i := range attrs {
		attrs[i] = relation.Attr{Name: string(rune('a' + i)), Type: relation.TInt}
	}
	return &relation.RelDef{Name: name, Attrs: attrs}
}

// seed inserts int tuples into a node's store.
func (s *sim) seed(node, rel string, rows ...[]int) {
	n := s.nodes[node]
	for _, row := range rows {
		t := make(relation.Tuple, len(row))
		for i, v := range row {
			t[i] = relation.Int(v)
		}
		if _, err := n.Wrapper().InsertMany(rel, []relation.Tuple{t}); err != nil {
			s.t.Fatal(err)
		}
	}
}

// rule declares a rule on both endpoints (as a config broadcast would).
func (s *sim) rule(id, text string) {
	for _, n := range s.nodes {
		if err := n.AddRule(id, text); err == nil {
			continue
		}
	}
}

// ruleOn declares a rule only on the named node (no broadcast).
func (s *sim) ruleOn(node, id, text string) {
	if err := s.nodes[node].AddRule(id, text); err != nil {
		s.t.Fatal(err)
	}
}

func (s *sim) dispatch(from string, res Result, sid string) {
	for _, o := range res.Out {
		s.queue = append(s.queue, simEnv{to: o.To, env: msg.Envelope{From: from, Payload: o.Payload}})
	}
	s.answers[sid] = append(s.answers[sid], res.Answers...)
	for _, f := range res.Finished {
		s.finished[from] = append(s.finished[from], f)
	}
}

// run delivers messages until the queue drains; fails the test if the
// network does not quiesce within a step budget.
func (s *sim) run() {
	const budget = 2_000_000
	for len(s.queue) > 0 {
		s.steps++
		if s.steps > budget {
			s.t.Fatalf("network did not quiesce after %d deliveries", budget)
		}
		i := 0
		if s.rnd != nil {
			i = s.rnd.Intn(len(s.queue))
		}
		item := s.queue[i]
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		node := s.nodes[item.to]
		if node == nil {
			continue // departed node: message lost
		}
		res := node.Handle(item.env)
		sid := sidOf(item.env.Payload)
		s.dispatch(item.to, res, sid)
	}
}

func sidOf(p msg.Payload) string {
	switch m := p.(type) {
	case *msg.SessionRequest:
		return m.SID
	case *msg.SessionData:
		return m.SID
	case *msg.SessionAck:
		return m.SID
	case *msg.LinkClose:
		return m.SID
	case *msg.SessionDone:
		return m.SID
	default:
		return ""
	}
}

// update runs a global update from the origin to quiescence and asserts the
// initiator reported completion.
func (s *sim) update(origin string) msg.UpdateReport {
	sid := msg.NewSID(origin)
	res, err := s.nodes[origin].StartUpdate(sid)
	if err != nil {
		s.t.Fatal(err)
	}
	s.dispatch(origin, res, sid)
	s.run()
	for _, f := range s.finished[origin] {
		if f.SID == sid && f.Initiator {
			return f.Report
		}
	}
	s.t.Fatalf("update %s did not complete at %s", sid, origin)
	return msg.UpdateReport{}
}

// query runs a distributed query to quiescence and returns the streamed
// answers.
func (s *sim) query(origin, q string, mode QueryMode) []relation.Tuple {
	sid := msg.NewSID(origin)
	res, err := s.nodes[origin].StartQuery(sid, mustQuery(s.t, q), mode)
	if err != nil {
		s.t.Fatal(err)
	}
	s.dispatch(origin, res, sid)
	s.run()
	for _, f := range s.finished[origin] {
		if f.SID == sid {
			return s.answers[sid]
		}
	}
	s.t.Fatalf("query %s did not complete at %s", sid, origin)
	return nil
}

// instanceOf exports a node's current data.
func (s *sim) instanceOf(node string) relation.Instance {
	n := s.nodes[node]
	in := relation.NewInstance()
	for _, rel := range n.Wrapper().Schema().Names() {
		n.Wrapper().Scan(rel, func(t relation.Tuple) bool {
			in.Insert(rel, t)
			return true
		})
	}
	return in
}
