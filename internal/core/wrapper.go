package core

import (
	"fmt"

	"codb/internal/relation"
	"codb/internal/storage"
)

// StoreWrapper adapts the embedded storage engine to the Wrapper interface:
// the normal configuration, where the node has a Local Database.
type StoreWrapper struct {
	db *storage.DB
}

// NewStoreWrapper wraps a storage.DB.
func NewStoreWrapper(db *storage.DB) *StoreWrapper { return &StoreWrapper{db: db} }

// DB exposes the underlying database (for the peer API and tools).
func (w *StoreWrapper) DB() *storage.DB { return w.db }

// DefineRelation adds a relation to the local schema (DDL), letting
// configuration broadcasts install missing relations.
func (w *StoreWrapper) DefineRelation(def *relation.RelDef) error {
	return w.db.DefineRelation(def)
}

// Schema implements Wrapper.
func (w *StoreWrapper) Schema() *relation.Schema { return w.db.Schema() }

// Scan implements Wrapper.
func (w *StoreWrapper) Scan(rel string, fn func(relation.Tuple) bool) { w.db.Scan(rel, fn) }

// ScanEq implements cq.EqScanner, letting the evaluator push constants down
// to the engine's secondary indexes.
func (w *StoreWrapper) ScanEq(rel string, pos int, v relation.Value, fn func(relation.Tuple) bool) {
	w.db.ScanEq(rel, pos, v, fn)
}

// Has implements Wrapper.
func (w *StoreWrapper) Has(rel string, t relation.Tuple) bool { return w.db.Has(rel, t) }

// InsertMany implements Wrapper.
func (w *StoreWrapper) InsertMany(rel string, ts []relation.Tuple) ([]relation.Tuple, error) {
	return w.db.InsertMany(rel, ts)
}

// Count implements Wrapper.
func (w *StoreWrapper) Count(rel string) int { return w.db.Count(rel) }

// LSN implements ChangeTracker: the engine's commit sequence number.
func (w *StoreWrapper) LSN() uint64 { return w.db.LSN() }

// ReadSnapshot implements Snapshotter: an immutable view pinned at the
// engine's current commit LSN (storage.DB.Snapshot), enabling the peer's
// concurrent query path.
func (w *StoreWrapper) ReadSnapshot() ReadView { return w.db.Snapshot() }

// Changes implements ChangeTracker: the tuples committed after sinceLSN,
// with ok=false when the engine's changelog no longer covers that horizon.
func (w *StoreWrapper) Changes(rel string, sinceLSN uint64) ([]relation.Tuple, bool) {
	return w.db.Changes(rel, sinceLSN)
}

// MediatorWrapper is the Wrapper for a node whose LDB is absent (the dashed
// rectangle of the paper's Figure 1): the schema must still be specified,
// and "all required database operations (as join and project) are executed
// in Wrapper" — here, over transient in-memory relations that do not
// survive the process.
type MediatorWrapper struct {
	schema *relation.Schema
	data   relation.Instance
}

// NewMediatorWrapper builds a mediator node storage with the given shared
// schema.
func NewMediatorWrapper(schema *relation.Schema) *MediatorWrapper {
	return &MediatorWrapper{schema: schema.Clone(), data: relation.NewInstance()}
}

// Schema implements Wrapper.
func (w *MediatorWrapper) Schema() *relation.Schema { return w.schema.Clone() }

// Scan implements Wrapper.
func (w *MediatorWrapper) Scan(rel string, fn func(relation.Tuple) bool) { w.data.Scan(rel, fn) }

// Has implements Wrapper.
func (w *MediatorWrapper) Has(rel string, t relation.Tuple) bool { return w.data.Has(rel, t) }

// InsertMany implements Wrapper.
func (w *MediatorWrapper) InsertMany(rel string, ts []relation.Tuple) ([]relation.Tuple, error) {
	def := w.schema.Rel(rel)
	if def == nil {
		return nil, fmt.Errorf("mediator: unknown relation %q", rel)
	}
	var fresh []relation.Tuple
	for _, t := range ts {
		if err := def.Validate(t); err != nil {
			return nil, err
		}
		if w.data.Insert(rel, t) {
			fresh = append(fresh, t)
		}
	}
	return fresh, nil
}

// Count implements Wrapper.
func (w *MediatorWrapper) Count(rel string) int { return len(w.data[rel]) }

// Reset drops all transient data (e.g. between experiments).
func (w *MediatorWrapper) Reset() { w.data = relation.NewInstance() }

var (
	_ Wrapper       = (*StoreWrapper)(nil)
	_ Wrapper       = (*MediatorWrapper)(nil)
	_ ChangeTracker = (*StoreWrapper)(nil)
	_ Snapshotter   = (*StoreWrapper)(nil)
)
