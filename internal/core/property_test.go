package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"codb/internal/chase"
	"codb/internal/cq"
	"codb/internal/relation"
)

// TestQuickUpdateMatchesOracle is the central correctness property: for
// random topologies (possibly cyclic, with existential rules), random seed
// data, and a random message delivery order, a global update leaves every
// node in the initiator's weakly-connected component with exactly the
// instance the centralised Skolem-chase fixpoint assigns it. Thanks to the
// deterministic null labels the comparison is plain set equality, not just
// isomorphism.
func TestQuickUpdateMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		names, rules, seeds := randomTopology(rnd)

		// --- Distributed run.
		s := newSim(t)
		s.rnd = rand.New(rand.NewSource(seed ^ 0x5eed))
		for _, name := range names {
			s.addNodeCfg(Config{Self: name, MaxDepth: 6}, "u/1", "b/2")
		}
		for _, r := range rules {
			s.rule(r.ID, r.String())
		}
		for node, in := range seeds {
			for rel, m := range in {
				for _, tup := range m {
					if _, err := s.nodes[node].Wrapper().InsertMany(rel, []relation.Tuple{tup}); err != nil {
						t.Logf("seed: %v", err)
						return false
					}
				}
			}
		}
		origin := names[0]
		s.update(origin)

		// --- Oracle, restricted to the initiator's weakly-connected
		// component (the flood cannot reach beyond it).
		comp := component(origin, rules)
		var compRules []*cq.Rule
		for _, r := range rules {
			if comp[r.Source] && comp[r.Target] {
				compRules = append(compRules, r)
			}
		}
		start := make(map[string]relation.Instance)
		for node := range comp {
			if in, ok := seeds[node]; ok {
				start[node] = in.Clone()
			} else {
				start[node] = relation.NewInstance()
			}
		}
		oracle, _, err := chase.Fixpoint(compRules, start, chase.Options{MaxDepth: 6})
		if err != nil {
			t.Logf("oracle: %v", err)
			return false
		}

		for node := range comp {
			got := s.instanceOf(node)
			want := oracle[node]
			if !instancesIdentical(got, want) {
				t.Logf("seed %d node %s:\n got  %v\n want %v\n rules:", seed, node, dump(got), dump(want))
				for _, r := range compRules {
					t.Logf("  %s: %s", r.ID, r)
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// instancesIdentical demands exact equality (same tuples, same null
// labels).
func instancesIdentical(a, b relation.Instance) bool {
	for rel, m := range a {
		if len(m) != len(b[rel]) {
			return false
		}
		for k := range m {
			if _, ok := b[rel][k]; !ok {
				return false
			}
		}
	}
	for rel, m := range b {
		if len(m) != len(a[rel]) {
			return false
		}
	}
	return true
}

func dump(in relation.Instance) string {
	out := ""
	for _, rel := range []string{"u", "b"} {
		for _, t := range in.Tuples(rel) {
			out += rel + t.String() + " "
		}
	}
	return out
}

// component computes the weakly-connected component of origin in the rule
// graph.
func component(origin string, rules []*cq.Rule) map[string]bool {
	adj := make(map[string][]string)
	for _, r := range rules {
		adj[r.Source] = append(adj[r.Source], r.Target)
		adj[r.Target] = append(adj[r.Target], r.Source)
	}
	comp := map[string]bool{origin: true}
	stack := []string{origin}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if !comp[m] {
				comp[m] = true
				stack = append(stack, m)
			}
		}
	}
	return comp
}

// randomTopology builds 3-6 nodes with relations u/1 and b/2, random rules
// drawn from copy/projection/join/existential templates (duplicates and
// cycles allowed), and random seed data.
func randomTopology(rnd *rand.Rand) ([]string, []*cq.Rule, map[string]relation.Instance) {
	nNodes := rnd.Intn(4) + 3
	names := make([]string, nNodes)
	for i := range names {
		names[i] = fmt.Sprintf("N%d", i)
	}
	templates := []func(tgt, src string) string{
		func(t, s string) string { return fmt.Sprintf(`%s.u(x) <- %s.u(x)`, t, s) },
		func(t, s string) string { return fmt.Sprintf(`%s.u(x) <- %s.b(x, y)`, t, s) },
		func(t, s string) string { return fmt.Sprintf(`%s.b(x, y) <- %s.b(x, y)`, t, s) },
		func(t, s string) string { return fmt.Sprintf(`%s.b(x, z) <- %s.b(x, y), %s.b(y, z)`, t, s, s) },
		func(t, s string) string { return fmt.Sprintf(`%s.b(x, z) <- %s.u(x)`, t, s) },
		func(t, s string) string { return fmt.Sprintf(`%s.u(x) <- %s.b(x, y), y > 1`, t, s) },
		func(t, s string) string { return fmt.Sprintf(`%s.b(x, x) <- %s.u(x)`, t, s) },
	}
	nRules := rnd.Intn(6) + 2
	var rules []*cq.Rule
	for i := 0; i < nRules; i++ {
		tgt := names[rnd.Intn(nNodes)]
		src := names[rnd.Intn(nNodes)]
		if tgt == src {
			continue
		}
		text := templates[rnd.Intn(len(templates))](tgt, src)
		rules = append(rules, cq.MustParseRule(fmt.Sprintf("r%d", i), text))
	}
	seeds := make(map[string]relation.Instance)
	for _, n := range names {
		in := relation.NewInstance()
		for i, k := 0, rnd.Intn(4); i < k; i++ {
			in.Insert("u", relation.Tuple{relation.Int(rnd.Intn(4))})
		}
		for i, k := 0, rnd.Intn(4); i < k; i++ {
			in.Insert("b", relation.Tuple{relation.Int(rnd.Intn(4)), relation.Int(rnd.Intn(4))})
		}
		seeds[n] = in
	}
	return names, rules, seeds
}

// TestQuickQueryMatchesOracleOnTrees: on tree-shaped (acyclic) topologies a
// distributed query at the root returns exactly the answers the query has
// over the oracle fixpoint at the root.
func TestQuickQueryMatchesOracleOnTrees(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		nNodes := rnd.Intn(4) + 2
		names := make([]string, nNodes)
		for i := range names {
			names[i] = fmt.Sprintf("N%d", i)
		}
		// Tree edges: node i imports from a random parent j < i... rules
		// point root-ward: N_i's data flows to its parent.
		var rules []*cq.Rule
		for i := 1; i < nNodes; i++ {
			parent := names[rnd.Intn(i)]
			text := fmt.Sprintf(`%s.u(x) <- %s.u(x)`, parent, names[i])
			rules = append(rules, cq.MustParseRule(fmt.Sprintf("r%d", i), text))
		}
		seeds := make(map[string]relation.Instance)
		for _, n := range names {
			in := relation.NewInstance()
			for i, k := 0, rnd.Intn(4); i < k; i++ {
				in.Insert("u", relation.Tuple{relation.Int(rnd.Intn(5))})
			}
			seeds[n] = in
		}

		s := newSim(t)
		s.rnd = rand.New(rand.NewSource(seed ^ 0xabc))
		for _, n := range names {
			s.addNode(n, "u/1")
		}
		for _, r := range rules {
			s.rule(r.ID, r.String())
		}
		for node, in := range seeds {
			for _, tup := range in.Tuples("u") {
				s.nodes[node].Wrapper().InsertMany("u", []relation.Tuple{tup})
			}
		}
		answers := s.query(names[0], `ans(x) :- u(x)`, AllAnswers)

		oracle, _, err := chase.Fixpoint(rules, seeds, chase.Options{MaxDepth: 6})
		if err != nil {
			return false
		}
		want := oracle[names[0]].Tuples("u")
		if len(answers) != len(want) {
			t.Logf("seed %d: %d answers, want %d", seed, len(answers), len(want))
			return false
		}
		keys := make(map[string]bool)
		for _, a := range answers {
			keys[a.Key()] = true
		}
		for _, w := range want {
			if !keys[w.Key()] {
				t.Logf("seed %d: missing %v", seed, w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
