package core

import (
	"testing"

	"codb/internal/msg"
)

// TestGroupedOut: destinations become contiguous in first-send order with
// per-destination order preserved, and degenerate cases pass through.
func TestGroupedOut(t *testing.T) {
	mk := func(to string, n int) Outbound {
		return Outbound{To: to, Payload: &msg.SessionAck{SID: to, N: n}}
	}
	r := Result{Out: []Outbound{mk("b", 0), mk("c", 0), mk("b", 1), mk("a", 0), mk("c", 1)}}
	got := r.GroupedOut()
	want := []Outbound{mk("b", 0), mk("b", 1), mk("c", 0), mk("c", 1), mk("a", 0)}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i].To != want[i].To || got[i].Payload.(*msg.SessionAck).N != want[i].Payload.(*msg.SessionAck).N {
			t.Errorf("got[%d] = %s/%d, want %s/%d", i,
				got[i].To, got[i].Payload.(*msg.SessionAck).N,
				want[i].To, want[i].Payload.(*msg.SessionAck).N)
		}
	}
	// Already-grouped and tiny inputs come back unchanged (same slice).
	small := Result{Out: []Outbound{mk("a", 0), mk("b", 0)}}
	if out := small.GroupedOut(); len(out) != 2 {
		t.Errorf("small GroupedOut = %v", out)
	}
}

// TestDeferAcksBatchesAcrossBurst: with deferral on, handling a burst of
// data messages emits no acks until FlushDeferred, which emits one counted
// ack per sender — the transport-pipeline companion at the detector level.
func TestDeferAcksBatchesAcrossBurst(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	b := s.addNode("B", "r/1")
	s.ruleOn("B", "r1", `B.r(x) <- A.r(x)`)

	// A engages B with a request, then B receives three data batches; under
	// deferral the acks for the non-engaging messages batch into one.
	b.DeferAcks(true)
	res := b.Handle(env("A", &msg.SessionRequest{SID: "s1", Kind: msg.KindUpdate, Origin: "A"}))
	for seq := 1; seq <= 3; seq++ {
		r2 := b.Handle(env("A", &msg.SessionData{SID: "s1", Kind: msg.KindUpdate, Origin: "A", RuleID: "r1", Seq: seq}))
		res.merge(r2)
	}
	for _, out := range res.Out {
		if _, isAck := out.Payload.(*msg.SessionAck); isAck {
			t.Fatalf("ack emitted while deferred: %+v", out)
		}
	}
	flushed := b.FlushDeferred()
	var acked int
	for _, out := range flushed.Out {
		if a, isAck := out.Payload.(*msg.SessionAck); isAck {
			if out.To != "A" {
				t.Errorf("ack to %s", out.To)
			}
			acked += a.N
		}
	}
	if acked != 3 {
		t.Errorf("acked %d messages, want the 3 non-engaging ones in one counted ack", acked)
	}
}

func env(from string, p msg.Payload) msg.Envelope {
	return msg.Envelope{From: from, Payload: p}
}
