package core

import (
	"fmt"
	"sync"
	"testing"

	"codb/internal/cq"
	"codb/internal/relation"
)

func TestQueryCacheHitMissInvalidation(t *testing.T) {
	c := NewQueryCache(4)
	key := CacheKey(cq.MustParseQuery(`ans(x) :- data(x, y)`), AllAnswers)
	ans := []relation.Tuple{{relation.Int(1)}, {relation.Int(2)}}

	if _, ok := c.Get(key, 5, 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, 5, 1, ans)
	got, ok := c.Get(key, 5, 1)
	if !ok || len(got) != 2 {
		t.Fatalf("expected hit with 2 answers, got ok=%v n=%d", ok, len(got))
	}
	// The returned slice is a private copy: appending to it must not
	// corrupt the cached entry.
	_ = append(got, relation.Tuple{relation.Int(3)})
	if again, _ := c.Get(key, 5, 1); len(again) != 2 {
		t.Fatalf("cached entry mutated through a returned slice: %d answers", len(again))
	}

	// A newer LSN invalidates; so does a newer rule-set version.
	if _, ok := c.Get(key, 6, 1); ok {
		t.Fatal("hit across an LSN advance")
	}
	c.Put(key, 6, 1, ans)
	if _, ok := c.Get(key, 6, 2); ok {
		t.Fatal("hit across a rule-set change")
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 3 || st.Stale != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 3 misses / 2 stale", st)
	}
}

func TestQueryCacheEviction(t *testing.T) {
	c := NewQueryCache(2)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), 1, 1, nil)
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("cache holds %d entries, capacity 2", st.Entries)
	}
	if _, ok := c.Get("k0", 1, 1); ok {
		t.Fatal("LRU entry k0 survived eviction")
	}
	if _, ok := c.Get("k2", 1, 1); !ok {
		t.Fatal("most recent entry k2 evicted")
	}
}

func TestQueryCacheConcurrent(t *testing.T) {
	c := NewQueryCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%40)
				if _, ok := c.Get(key, uint64(i%3), 0); !ok {
					c.Put(key, uint64(i%3), 0, []relation.Tuple{{relation.Int(g)}})
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries > 32 {
		t.Fatalf("cache exceeded its bound: %d entries", st.Entries)
	}
}

func TestCacheKeyNormalization(t *testing.T) {
	a := cq.MustParseQuery(`ans(x, y) :- data(x, y), x > 3`)
	b := cq.MustParseQuery(`ans(k, v) :- data(k, v), k > 3`)
	if CacheKey(a, AllAnswers) != CacheKey(b, AllAnswers) {
		t.Fatalf("alpha-equivalent queries key differently:\n%s\n%s",
			CacheKey(a, AllAnswers), CacheKey(b, AllAnswers))
	}
	if CacheKey(a, AllAnswers) == CacheKey(a, CertainAnswers) {
		t.Fatal("answer modes share a cache key")
	}
	c := cq.MustParseQuery(`ans(y, x) :- data(x, y), x > 3`)
	if CacheKey(a, AllAnswers) == CacheKey(c, AllAnswers) {
		t.Fatal("distinct projections share a cache key")
	}
	d := cq.MustParseQuery(`ans(x, y) :- data(x, y), x > 4`)
	if CacheKey(a, AllAnswers) == CacheKey(d, AllAnswers) {
		t.Fatal("distinct constants share a cache key")
	}
}
