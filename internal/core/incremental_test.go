package core

import (
	"testing"

	"codb/internal/msg"
	"codb/internal/relation"
)

// reportFor finds a node's report for one session.
func reportFor(t *testing.T, n *Node, sid string) msg.UpdateReport {
	t.Helper()
	for _, rep := range n.Reports() {
		if rep.SID == sid {
			return rep
		}
	}
	t.Fatalf("node %s has no report for session %s", n.Self(), sid)
	return msg.UpdateReport{}
}

// updateSID runs a global update with a fixed SID (so reports can be found
// per node) and returns the initiator's report.
func (s *sim) updateSID(origin, sid string) msg.UpdateReport {
	res, err := s.nodes[origin].StartUpdate(sid)
	if err != nil {
		s.t.Fatal(err)
	}
	s.dispatch(origin, res, sid)
	s.run()
	for _, f := range s.finished[origin] {
		if f.SID == sid && f.Initiator {
			return f.Report
		}
	}
	s.t.Fatalf("update %s did not complete at %s", sid, origin)
	return msg.UpdateReport{}
}

func receivedTuples(rep msg.UpdateReport) int {
	n := 0
	for _, c := range rep.TuplesPerRule {
		n += c
	}
	return n
}

// TestIncrementalSecondSessionShipsNothing: with nothing committed between
// sessions, the second global update must keep every binding off the wire.
func TestIncrementalSecondSessionShipsNothing(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{1}, []int{2}, []int{3})

	s.updateSID("A", "u1")
	if got := s.nodes["A"].Wrapper().Count("r"); got != 3 {
		t.Fatalf("A.r after first update = %d", got)
	}

	s.updateSID("A", "u2")
	repB := reportFor(t, s.nodes["B"], "u2")
	if repB.ExportsIncremental != 1 || repB.ExportsFull != 0 {
		t.Errorf("B exports in session 2: incr=%d full=%d, want 1/0",
			repB.ExportsIncremental, repB.ExportsFull)
	}
	if repB.SkippedByWatermark != 3 {
		t.Errorf("SkippedByWatermark = %d, want 3", repB.SkippedByWatermark)
	}
	if repB.SentMsgs != 0 {
		t.Errorf("B shipped %d data messages in an unchanged second session", repB.SentMsgs)
	}
	repA := reportFor(t, s.nodes["A"], "u2")
	if got := receivedTuples(repA); got != 0 {
		t.Errorf("A received %d tuples in an unchanged second session", got)
	}
}

// TestIncrementalShipsOnlyDelta: tuples committed between sessions travel;
// everything under the watermark stays home.
func TestIncrementalShipsOnlyDelta(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{1}, []int{2}, []int{3})
	s.updateSID("A", "u1")

	s.seed("B", "r", []int{4}, []int{5})
	s.updateSID("A", "u2")
	if got := s.nodes["A"].Wrapper().Count("r"); got != 5 {
		t.Fatalf("A.r after delta update = %d, want 5", got)
	}
	repA := reportFor(t, s.nodes["A"], "u2")
	if got := receivedTuples(repA); got != 2 {
		t.Errorf("A received %d tuples, want exactly the delta (2)", got)
	}
	if repA.IncrementalMsgs == 0 {
		t.Error("A saw no incremental-mode data batches")
	}
	repB := reportFor(t, s.nodes["B"], "u2")
	if repB.ExportsIncremental != 1 {
		t.Errorf("B incremental exports = %d, want 1", repB.ExportsIncremental)
	}
	if repB.SkippedByWatermark != 3 {
		t.Errorf("SkippedByWatermark = %d, want 3 (the pre-watermark tuples)", repB.SkippedByWatermark)
	}
}

// TestFullExportToggleReships: the paper-faithful mode re-evaluates and
// re-ships the whole extent every session.
func TestFullExportToggleReships(t *testing.T) {
	s := newSim(t)
	s.addNodeCfg(Config{Self: "A", FullExport: true}, "r/1")
	s.addNodeCfg(Config{Self: "B", FullExport: true}, "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{1}, []int{2}, []int{3})
	s.updateSID("A", "u1")

	s.updateSID("A", "u2")
	repB := reportFor(t, s.nodes["B"], "u2")
	if repB.ExportsFull != 1 || repB.ExportsIncremental != 0 {
		t.Errorf("B exports: full=%d incr=%d, want 1/0", repB.ExportsFull, repB.ExportsIncremental)
	}
	repA := reportFor(t, s.nodes["A"], "u2")
	if got := receivedTuples(repA); got != 3 {
		t.Errorf("A received %d tuples under FullExport, want the full extent (3)", got)
	}
}

// TestHistoryLostFallsBackToFullEval: a delete between sessions poisons the
// changelog; the next export re-evaluates in full but the fingerprint set
// still keeps already-shipped bindings off the wire.
func TestHistoryLostFallsBackToFullEval(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{1}, []int{2}, []int{3})
	s.updateSID("A", "u1")

	db := s.nodes["B"].Wrapper().(*StoreWrapper).DB()
	if _, err := db.Delete("r", relation.Tuple{relation.Int(2)}); err != nil {
		t.Fatal(err)
	}
	s.seed("B", "r", []int{9})
	s.updateSID("A", "u2")

	repB := reportFor(t, s.nodes["B"], "u2")
	if repB.ExportsFallback != 1 {
		t.Errorf("B fallback exports = %d, want 1 (history lost)", repB.ExportsFallback)
	}
	if repB.SuppressedBindings != 2 {
		t.Errorf("SuppressedBindings = %d, want 2 (the surviving already-shipped tuples)", repB.SuppressedBindings)
	}
	repA := reportFor(t, s.nodes["A"], "u2")
	if got := receivedTuples(repA); got != 1 {
		t.Errorf("A received %d tuples, want 1 (only the new tuple crosses the wire)", got)
	}
	// Materialisation is monotone: the delete does not retract at A.
	if got := s.nodes["A"].Wrapper().Count("r"); got != 4 {
		t.Errorf("A.r = %d, want 4", got)
	}
}

// TestQuerySessionsDoNotConsumeWatermarks: query sessions sink into
// transient overlays, so they must neither mark bindings as shipped nor
// advance watermarks — a later update still materialises everything.
func TestQuerySessionsDoNotConsumeWatermarks(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{1}, []int{2}, []int{3})

	answers := s.query("A", `ans(x) :- r(x)`, AllAnswers)
	if len(answers) != 3 {
		t.Fatalf("cold query answers = %d, want 3", len(answers))
	}
	if got := s.nodes["A"].Wrapper().Count("r"); got != 0 {
		t.Fatalf("query materialised into the LDB: A.r = %d", got)
	}

	s.updateSID("A", "u1")
	if got := s.nodes["A"].Wrapper().Count("r"); got != 3 {
		t.Errorf("A.r after update = %d, want 3 (query must not have consumed the export state)", got)
	}
}

// TestIncrementalExportStateRoundTrip: export state snapshotted from one
// node and restored into a fresh node over the same storage resumes
// incrementally; a watermark ahead of the storage LSN is rejected and the
// node degrades to a full export.
func TestIncrementalExportStateRoundTrip(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	b := s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{1}, []int{2})
	s.updateSID("A", "u1")

	state := b.ExportState()
	if snap := state["r1"]; snap.Watermark == 0 || len(snap.Shipped) != 2 {
		t.Fatalf("snapshot = %+v, want nonzero watermark and 2 fingerprints", snap)
	}

	// "Restart" B: fresh node over the same wrapper, state restored before
	// the rule arrives (as the peer layer does).
	b2, err := NewNode(Config{Self: "B", Wrapper: b.Wrapper()})
	if err != nil {
		t.Fatal(err)
	}
	b2.RestoreExportState(state)
	if err := b2.AddRule("r1", `A.r(x) <- B.r(x)`); err != nil {
		t.Fatal(err)
	}
	if wm := b2.ExportWatermarks()["r1"]; wm != state["r1"].Watermark {
		t.Fatalf("restored watermark = %d, want %d", wm, state["r1"].Watermark)
	}
	s.nodes["B"] = b2
	s.updateSID("A", "u2")
	repB := reportFor(t, b2, "u2")
	if repB.ExportsIncremental != 1 || repB.SentMsgs != 0 {
		t.Errorf("restored node: incr=%d sent=%d, want 1/0", repB.ExportsIncremental, repB.SentMsgs)
	}

	// A poisoned snapshot (watermark beyond the storage LSN) is rejected.
	bad := map[string]ExportSnapshot{"r1": {
		RuleText:  `A.r(x) <- B.r(x)`,
		Watermark: 1 << 40,
		Shipped:   state["r1"].Shipped,
	}}
	b3, err := NewNode(Config{Self: "B", Wrapper: b.Wrapper()})
	if err != nil {
		t.Fatal(err)
	}
	b3.RestoreExportState(bad)
	if err := b3.AddRule("r1", `A.r(x) <- B.r(x)`); err != nil {
		t.Fatal(err)
	}
	if _, ok := b3.ExportWatermarks()["r1"]; ok {
		t.Error("stale watermark past the storage LSN was installed")
	}

	// A snapshot for a redefined rule is rejected too.
	changed := map[string]ExportSnapshot{"r1": {
		RuleText:  `A.r(x) <- B.q(x)`,
		Watermark: state["r1"].Watermark,
		Shipped:   state["r1"].Shipped,
	}}
	b4, err := NewNode(Config{Self: "B", Wrapper: b.Wrapper()})
	if err != nil {
		t.Fatal(err)
	}
	b4.RestoreExportState(changed)
	if err := b4.AddRule("r1", `A.r(x) <- B.r(x)`); err != nil {
		t.Fatal(err)
	}
	if _, ok := b4.ExportWatermarks()["r1"]; ok {
		t.Error("snapshot of a redefined rule was installed")
	}
}

// TestIncrementalAcrossChain: increments propagate transitively — a tuple
// added at the tail of a chain reaches the head in the second session while
// the rest of the extent stays off every wire.
func TestIncrementalAcrossChain(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.addNode("C", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.rule("r2", `B.r(x) <- C.r(x)`)
	s.seed("C", "r", []int{1}, []int{2}, []int{3})
	s.updateSID("A", "u1")
	if got := s.nodes["A"].Wrapper().Count("r"); got != 3 {
		t.Fatalf("A.r after first update = %d", got)
	}

	s.seed("C", "r", []int{4})
	s.updateSID("A", "u2")
	if got := s.nodes["A"].Wrapper().Count("r"); got != 4 {
		t.Fatalf("A.r after second update = %d, want 4", got)
	}
	total := 0
	for _, name := range []string{"A", "B", "C"} {
		total += receivedTuples(reportFor(t, s.nodes[name], "u2"))
	}
	if total != 2 {
		t.Errorf("network shipped %d tuples in session 2, want 2 (one per hop)", total)
	}
}

// TestMediatorStaysFullExport: wrappers without change capture keep the
// seed's behaviour — full export every session.
func TestMediatorStaysFullExport(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	schema := relation.NewSchema()
	schema.MustAdd(relDef("r/1"))
	s.addNodeCfg(Config{Self: "B", Wrapper: NewMediatorWrapper(schema)})
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{1}, []int{2})

	s.updateSID("A", "u1")
	s.updateSID("A", "u2")
	repB := reportFor(t, s.nodes["B"], "u2")
	if repB.ExportsFull != 1 || repB.ExportsIncremental != 0 {
		t.Errorf("mediator exports: full=%d incr=%d, want 1/0", repB.ExportsFull, repB.ExportsIncremental)
	}
	if got := receivedTuples(reportFor(t, s.nodes["A"], "u2")); got != 2 {
		t.Errorf("A received %d tuples from the mediator's re-export, want 2", got)
	}
}
