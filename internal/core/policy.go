package core

import (
	"fmt"
	"sort"

	"codb/internal/chase"
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/relation"
)

// PolicyMode selects how an incoming link (Source == Self) propagates
// committed deltas to its importer.
type PolicyMode uint8

const (
	// PolicyPush is the eager default: every update session evaluates the
	// link and ships the frontier bindings immediately.
	PolicyPush PolicyMode = iota
	// PolicyPull makes the link lazy: update sessions flood only a cheap
	// UpdateHint (the exporter's LSN advanced); the importer pulls the
	// actual delta on demand via PullRequest/PullResponse, served from the
	// link's durable watermark — exactly the incremental export it would
	// have received eagerly.
	PolicyPull
	// PolicyAdaptive flips the link between push and pull based on the
	// importer's demand signal (LinkDemand): cold links (no reads since the
	// last hint) demote to pull, hot links promote back to push.
	PolicyAdaptive
	// PolicyFilter behaves like push but requires a predicate filter over
	// the rule's frontier variables; bindings failing it are dropped at the
	// exporter and counted as suppressed. (A filter predicate can also be
	// combined with pull and adaptive modes.)
	PolicyFilter
)

// String names the mode in the configuration vocabulary.
func (m PolicyMode) String() string {
	switch m {
	case PolicyPush:
		return "push"
	case PolicyPull:
		return "pull"
	case PolicyAdaptive:
		return "adaptive"
	case PolicyFilter:
		return "filter"
	default:
		return fmt.Sprintf("policy(%d)", uint8(m))
	}
}

// ParsePolicyMode parses a configuration string into a PolicyMode.
func ParsePolicyMode(s string) (PolicyMode, error) {
	switch s {
	case "push", "":
		return PolicyPush, nil
	case "pull":
		return PolicyPull, nil
	case "adaptive":
		return PolicyAdaptive, nil
	case "filter":
		return PolicyFilter, nil
	default:
		return PolicyPush, fmt.Errorf("core: unknown propagation policy %q (want push, pull, adaptive or filter)", s)
	}
}

// linkPolicy is one rule's configured propagation policy. Both endpoints of
// a link hold the same configuration: the exporter enforces it (hint instead
// of data, filter predicates), the importer uses it to drive pulls and the
// adaptive demand signal.
type linkPolicy struct {
	mode      PolicyMode
	filter    []cq.Comparison
	filterSrc string
	frontier  []string // rule frontier, the filter's variable layout
	// demandPull is the adaptive mode's current decision (exporter side,
	// driven by LinkDemand messages from the importer). Adaptive links
	// start out pushing.
	demandPull bool
}

// propStat accumulates one rule's propagation counters. Exporter-side and
// importer-side fields live in the same struct; each endpoint only writes
// its own half.
type propStat struct {
	hintsSent   uint64
	pullsServed uint64
	bytesPushed uint64
	bytesPulled uint64
	// bytesSuppressed / suppressedBindings count filter drops (exporter).
	bytesSuppressed    uint64
	suppressedBindings uint64
	// Importer side.
	hintsReceived uint64
	pullsIssued   uint64
	pulledTuples  uint64
}

// LinkPropagationStats is the public snapshot of one link's propagation
// counters.
type LinkPropagationStats struct {
	RuleID string `json:"rule"`
	// Policy is the configured mode; Effective is what the exporter is
	// doing right now (adaptive links flip between push and pull, pull
	// links degrade to push toward peers that do not speak the pull
	// protocol).
	Policy    string `json:"policy"`
	Effective string `json:"effective"`
	Filter    string `json:"filter,omitempty"`

	HintsSent          uint64 `json:"hints_sent"`
	PullsServed        uint64 `json:"pulls_served"`
	BytesPushed        uint64 `json:"bytes_pushed"`
	BytesPulled        uint64 `json:"bytes_pulled"`
	BytesSuppressed    uint64 `json:"bytes_suppressed"`
	SuppressedBindings uint64 `json:"suppressed_bindings"`

	HintsReceived uint64 `json:"hints_received"`
	PullsIssued   uint64 `json:"pulls_issued"`
	PulledTuples  uint64 `json:"pulled_tuples"`
}

// SetLinkPolicy configures the propagation policy of one rule known to this
// node. filterSrc is an optional comma-separated comparison list over the
// rule's frontier variables ("" = no filter); mode "filter" requires one.
func (n *Node) SetLinkPolicy(ruleID, mode, filterSrc string) error {
	rs, ok := n.rules[ruleID]
	if !ok {
		return fmt.Errorf("core: cannot set policy: unknown rule %s", ruleID)
	}
	m, err := ParsePolicyMode(mode)
	if err != nil {
		return err
	}
	if m == PolicyFilter && filterSrc == "" {
		return fmt.Errorf("core: policy filter for rule %s needs a predicate", ruleID)
	}
	frontier := rs.rule.Frontier()
	var cmps []cq.Comparison
	if filterSrc != "" {
		cmps, err = cq.ParseFilter(filterSrc)
		if err != nil {
			return err
		}
		for _, c := range cmps {
			for _, v := range c.Vars(nil) {
				if !containsStr(frontier, v) {
					return fmt.Errorf("core: rule %s: filter variable %s is not in the frontier %v", ruleID, v, frontier)
				}
			}
		}
	}
	if n.policies == nil {
		n.policies = make(map[string]*linkPolicy)
	}
	n.policies[ruleID] = &linkPolicy{mode: m, filter: cmps, filterSrc: filterSrc, frontier: frontier}
	return nil
}

// LinkPolicy reports a rule's configured policy mode and filter source
// ("push", "" when never configured).
func (n *Node) LinkPolicy(ruleID string) (mode, filter string) {
	if pol := n.policies[ruleID]; pol != nil {
		return pol.mode.String(), pol.filterSrc
	}
	return PolicyPush.String(), ""
}

// speaksPull reports whether the peer at the far end of a link can receive
// the pull-family payloads (wire protocol version 2). Without a callback
// every peer is assumed capable — correct for in-process transports.
func (n *Node) speaksPull(node string) bool {
	if n.cfg.LinkSpeaksPull == nil {
		return true
	}
	return n.cfg.LinkSpeaksPull(node)
}

// pullEffective reports whether exports through the rule currently go lazy:
// the policy wants pull (configured or adaptive demand) and the importer
// speaks the pull protocol. Links toward peers that do not are degraded to
// push rather than starved.
func (n *Node) pullEffective(rule *cq.Rule) bool {
	pol := n.policies[rule.ID]
	if pol == nil {
		return false
	}
	switch pol.mode {
	case PolicyPull:
	case PolicyAdaptive:
		if !pol.demandPull {
			return false
		}
	default:
		return false
	}
	return n.speaksPull(rule.Target)
}

// propStatFor returns (creating) one rule's counter record.
func (n *Node) propStatFor(ruleID string) *propStat {
	st := n.propStats[ruleID]
	if st == nil {
		if n.propStats == nil {
			n.propStats = make(map[string]*propStat)
		}
		st = &propStat{}
		n.propStats[ruleID] = st
	}
	return st
}

// applyFilter drops the bindings failing the rule's filter predicate,
// counting them (and their encoded volume) as suppressed.
func (n *Node) applyFilter(rule *cq.Rule, bindings []relation.Tuple) []relation.Tuple {
	pol := n.policies[rule.ID]
	if pol == nil || len(pol.filter) == 0 {
		return bindings
	}
	kept := bindings[:0:0]
	dropped, droppedBytes := 0, 0
	for _, b := range bindings {
		if cq.EvalComparisons(pol.filter, pol.frontier, b) {
			kept = append(kept, b)
		} else {
			dropped++
			droppedBytes += b.EncodedLen()
		}
	}
	if dropped > 0 {
		st := n.propStatFor(rule.ID)
		st.suppressedBindings += uint64(dropped)
		st.bytesSuppressed += uint64(droppedBytes)
	}
	return kept
}

// sendHint floods the pull link's cheap invalidation notice: the exporter's
// commit horizon advanced, pull when the data matters. One hint per session
// per link; hints are control traffic outside the termination detector's
// scope (never DS-counted).
func (n *Node) sendHint(s *session, rule *cq.Rule, to string, r *Result) {
	if s.hinted == nil {
		s.hinted = make(map[string]bool)
	}
	if s.hinted[rule.ID] {
		return
	}
	s.hinted[rule.ID] = true
	var lsn uint64
	if n.tracker != nil {
		lsn = n.tracker.LSN()
	}
	r.send(to, &msg.UpdateHint{RuleID: rule.ID, LSN: lsn})
	n.propStatFor(rule.ID).hintsSent++
}

// HandleLinkDemand applies the importer's demand signal to an adaptive
// link: wantPull demotes the link to lazy hints, !wantPull promotes it back
// to eager push. Ignored for non-adaptive policies (the configuration wins).
func (n *Node) HandleLinkDemand(ruleID string, wantPull bool) {
	pol := n.policies[ruleID]
	if pol == nil || pol.mode != PolicyAdaptive {
		return
	}
	pol.demandPull = wantPull
}

// ServePull computes a downstream pull: exactly the incremental export the
// importer would have received eagerly, evaluated sessionless from the
// link's durable watermark over the wrapper's change spill, with the same
// fallback-to-full ladder as exportSince. The link's watermark and shipped
// fingerprints advance, so a later session (or pull) ships only what
// committed afterwards.
func (n *Node) ServePull(req *msg.PullRequest) (*msg.PullResponse, error) {
	rs, ok := n.rules[req.RuleID]
	if !ok || rs.rule.Source != n.cfg.Self {
		return nil, fmt.Errorf("core: pull for unknown or foreign rule %s", req.RuleID)
	}
	rule := rs.rule

	// Pin the evaluation view before reading the watermark horizon, exactly
	// as exportSince does: the new watermark is the view's own LSN, so it
	// can never advance past commits the evaluation did not observe.
	v := view{base: n.cfg.Wrapper}
	if n.snapshotter != nil && n.tracker != nil {
		v.snap = n.snapshotter.ReadSnapshot()
	}
	var cur uint64
	if n.tracker != nil {
		cur = n.viewLSN(v)
	}

	mode := msg.ExportFull
	var bindings []relation.Tuple
	var skipped int
	full := func() error {
		bs, err := chase.Bindings(rule, v, n.chaseOpts())
		if err != nil {
			return fmt.Errorf("core: pull export %s: %w", rule.ID, err)
		}
		bindings = bs
		return nil
	}

	es := n.exports[rule.ID]
	switch {
	case n.tracker == nil || n.cfg.FullExport:
		if err := full(); err != nil {
			return nil, err
		}
	case es == nil:
		if err := full(); err != nil {
			return nil, err
		}
		n.exports[rule.ID] = &exportState{watermark: cur, shipped: make(map[string]bool)}
		n.exportsChanged++
	default:
		deltas := make(map[string][]relation.Tuple)
		intact := true
		for _, rel := range rule.BodyRelations() {
			delta, ok := n.tracker.Changes(rel, es.watermark)
			if !ok {
				intact = false
				break
			}
			if len(delta) > 0 {
				deltas[rel] = delta
			}
			skipped += n.cfg.Wrapper.Count(rel) - len(delta)
		}
		if !intact {
			mode, skipped = msg.ExportFallback, 0
			if err := full(); err != nil {
				return nil, err
			}
		} else {
			mode = msg.ExportIncremental
			bs, err := n.deltaBindingsOver(v, rule, deltas)
			if err != nil {
				return nil, err
			}
			bindings = bs
		}
		if es.watermark != cur {
			es.watermark = cur
			n.exportsChanged++
		}
	}

	bindings = n.applyFilter(rule, bindings)
	if es := n.exports[rule.ID]; es != nil && !n.cfg.DisableDedup {
		kept := bindings[:0:0]
		for _, b := range bindings {
			k := b.Key()
			if !es.shipped[k] {
				es.shipped[k] = true
				kept = append(kept, b)
			}
		}
		bindings = kept
		if len(kept) > 0 {
			n.exportsChanged++
		}
		if len(es.shipped) > n.cfg.MaxFingerprints {
			delete(n.exports, rule.ID)
			n.exportsChanged++
		}
	}

	resp := &msg.PullResponse{RuleID: rule.ID, AtLSN: cur, Mode: mode, Skipped: skipped, Bindings: bindings}
	st := n.propStatFor(rule.ID)
	st.pullsServed++
	st.bytesPulled += uint64(resp.Size())
	return resp, nil
}

// deltaBindingsOver is the sessionless variant of deltaBindings: semi-naive
// evaluation over per-relation deltas against an explicit view.
func (n *Node) deltaBindingsOver(v view, rule *cq.Rule, deltas map[string][]relation.Tuple) ([]relation.Tuple, error) {
	seen := make(map[string]bool)
	var bindings []relation.Tuple
	for _, rel := range rule.BodyRelations() {
		delta := deltas[rel]
		if len(delta) == 0 {
			continue
		}
		bs, err := chase.BindingsDelta(rule, v, rel, delta, n.chaseOpts())
		if err != nil {
			return nil, fmt.Errorf("core: pull delta export %s over %s: %w", rule.ID, rel, err)
		}
		for _, b := range bs {
			if k := b.Key(); !seen[k] {
				seen[k] = true
				bindings = append(bindings, b)
			}
		}
	}
	return bindings, nil
}

// ApplyPull materialises a pull response at the importer through the normal
// chase-and-commit path (deterministic Skolem nulls plus set semantics make
// the result byte-identical to an eager push). It returns the per-relation
// fresh tuples — the caller cascades invalidation hints through its own
// dependent links — and the total count of genuinely new tuples.
func (n *Node) ApplyPull(resp *msg.PullResponse) (fresh map[string][]relation.Tuple, total int, err error) {
	rs := n.rules[resp.RuleID]
	applier := n.appliers[resp.RuleID]
	if rs == nil || applier == nil || rs.rule.Target != n.cfg.Self {
		return nil, 0, fmt.Errorf("core: pull response for unknown or foreign rule %s", resp.RuleID)
	}
	facts := applier.Facts(resp.Bindings)
	byRel := make(map[string][]relation.Tuple)
	for _, f := range facts {
		byRel[f.Rel] = append(byRel[f.Rel], f.Tuple)
	}
	fresh = make(map[string][]relation.Tuple)
	for rel, ts := range byRel {
		fs, insErr := n.cfg.Wrapper.InsertMany(rel, ts)
		if insErr != nil {
			continue // schema violation from a remote peer: drop, keep going
		}
		if len(fs) > 0 {
			fresh[rel] = fs
			total += len(fs)
		}
	}
	st := n.propStatFor(resp.RuleID)
	st.pulledTuples += uint64(total)
	return fresh, total, nil
}

// LazyDependents returns this node's currently-lazy incoming links whose
// bodies read any of the changed relations: the links that would have
// received a hint had the change arrived in a session. The peer uses it to
// cascade invalidation after materialising a pull outside any session.
func (n *Node) LazyDependents(changed []string) []*cq.Rule {
	var out []*cq.Rule
	for _, rule := range n.Incoming() {
		if !n.pullEffective(rule) {
			continue
		}
		for _, rel := range rule.BodyRelations() {
			if containsStr(changed, rel) {
				out = append(out, rule)
				break
			}
		}
	}
	return out
}

// NoteHintSent counts an exporter-side out-of-session hint (pull cascade).
func (n *Node) NoteHintSent(ruleID string) { n.propStatFor(ruleID).hintsSent++ }

// NoteHintReceived counts an importer-side hint arrival.
func (n *Node) NoteHintReceived(ruleID string) { n.propStatFor(ruleID).hintsReceived++ }

// NotePullIssued counts an importer-side pull request.
func (n *Node) NotePullIssued(ruleID string) { n.propStatFor(ruleID).pullsIssued++ }

// PropagationStats snapshots the per-link propagation counters, sorted by
// rule ID. Every rule with a configured policy or recorded traffic appears.
func (n *Node) PropagationStats() []LinkPropagationStats {
	ids := make(map[string]bool, len(n.policies)+len(n.propStats))
	for id := range n.policies {
		ids[id] = true
	}
	for id := range n.propStats {
		ids[id] = true
	}
	out := make([]LinkPropagationStats, 0, len(ids))
	for id := range ids {
		ls := LinkPropagationStats{RuleID: id, Policy: PolicyPush.String(), Effective: PolicyPush.String()}
		if pol := n.policies[id]; pol != nil {
			ls.Policy = pol.mode.String()
			ls.Filter = pol.filterSrc
		}
		if rs, ok := n.rules[id]; ok {
			if rs.rule.Source == n.cfg.Self {
				// Exporter side: the gate actually applied, including the
				// importer-speaks-pull and adaptive-demand checks.
				if n.pullEffective(rs.rule) {
					ls.Effective = PolicyPull.String()
				}
			} else if pol := n.policies[id]; pol != nil && pol.mode == PolicyPull {
				// Importer side: a configured pull policy is what this node
				// acts on (stale marks, read-triggered pulls); adaptive
				// demand and version degradation are exporter-side state it
				// cannot see, so those report the configured default.
				ls.Effective = PolicyPull.String()
			}
		}
		if st := n.propStats[id]; st != nil {
			ls.HintsSent = st.hintsSent
			ls.PullsServed = st.pullsServed
			ls.BytesPushed = st.bytesPushed
			ls.BytesPulled = st.bytesPulled
			ls.BytesSuppressed = st.bytesSuppressed
			ls.SuppressedBindings = st.suppressedBindings
			ls.HintsReceived = st.hintsReceived
			ls.PullsIssued = st.pullsIssued
			ls.PulledTuples = st.pulledTuples
		}
		out = append(out, ls)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RuleID < out[j].RuleID })
	return out
}

// ExportTotals is the cumulative per-node roll-up of the session-report
// export counters: the reports ring is bounded (Config.MaxReports), so
// summing Reports() undercounts on long-lived peers — these totals never
// reset while the process lives.
type ExportTotals struct {
	Sessions           int `json:"sessions"`
	ExportsFull        int `json:"exports_full"`
	ExportsIncremental int `json:"exports_incremental"`
	ExportsFallback    int `json:"exports_fallback"`
	SkippedByWatermark int `json:"skipped_by_watermark"`
	SuppressedBindings int `json:"suppressed_bindings"`
	IncrementalMsgs    int `json:"incremental_msgs"`
}

// ExportTotals returns the cumulative export counters accumulated across
// every completed session at this node.
func (n *Node) ExportTotals() ExportTotals { return n.totals }
