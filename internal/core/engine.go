package core

import (
	"fmt"

	"codb/internal/chase"
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/relation"
)

// StartUpdate initiates a global update from this node with the given
// session ID (mint one with msg.NewSID). The returned messages must be
// shipped before the caller processes further events.
func (n *Node) StartUpdate(sid string) (Result, error) {
	var r Result
	if _, dup := n.sessions[sid]; dup {
		return r, fmt.Errorf("core: session %s already exists", sid)
	}
	s := n.newSession(sid, msg.KindUpdate, n.cfg.Self)
	n.ds.Start(sid)
	n.joinUpdate(s, &r)
	n.closeCheck(s, &r)
	n.flushDS(s, &r)
	return r, nil
}

// QueryMode selects answer semantics for distributed queries.
type QueryMode uint8

const (
	// AllAnswers streams every derived answer, marked nulls included.
	AllAnswers QueryMode = iota
	// CertainAnswers suppresses answers containing marked nulls (naive
	// evaluation of naive tables).
	CertainAnswers
)

// StartQuery initiates a distributed query session at this node: the query
// is answered from local data immediately (Result.Answers) and the session
// fetches the transitively relevant remote data, streaming further answers
// through subsequent Handle calls.
func (n *Node) StartQuery(sid string, q *cq.Query, mode QueryMode) (Result, error) {
	var r Result
	if _, dup := n.sessions[sid]; dup {
		return r, fmt.Errorf("core: session %s already exists", sid)
	}
	if err := q.Validate(); err != nil {
		return r, err
	}
	s := n.newSession(sid, msg.KindQuery, n.cfg.Self)
	s.query = q
	s.certain = mode == CertainAnswers
	s.answerKeys = make(map[string]bool)
	n.ds.Start(sid)

	// Answer from local data immediately (paper §3).
	n.streamAnswers(s, &r)

	// Propagate along the relevant outgoing links, path label [self].
	relevant := cq.Closure(q.Relations(), n.Outgoing())
	n.requestQueryLinks(s, relevant, []string{n.cfg.Self}, &r)
	n.closeCheck(s, &r)
	n.flushDS(s, &r)
	return r, nil
}

// StartScopedUpdate initiates a query-dependent update (paper §2): like a
// distributed query it propagates only along the outgoing links
// transitively relevant to the given relations, with path labels — but like
// a global update it materialises the fetched data into the local databases
// along the way, so subsequent queries over those relations are local.
func (n *Node) StartScopedUpdate(sid string, rels []string) (Result, error) {
	var r Result
	if _, dup := n.sessions[sid]; dup {
		return r, fmt.Errorf("core: session %s already exists", sid)
	}
	if len(rels) == 0 {
		return r, fmt.Errorf("core: scoped update needs at least one relation")
	}
	s := n.newSession(sid, msg.KindScoped, n.cfg.Self)
	n.ds.Start(sid)
	relevant := cq.Closure(rels, n.Outgoing())
	n.requestQueryLinks(s, relevant, []string{n.cfg.Self}, &r)
	n.closeCheck(s, &r)
	n.flushDS(s, &r)
	return r, nil
}

// LocalQuery evaluates a query against the local database only (no
// session), as nodes do after a global update has materialised everything.
func (n *Node) LocalQuery(q *cq.Query, mode QueryMode) ([]relation.Tuple, error) {
	return EvalQuery(q, n.cfg.Wrapper, mode, n.cfg.Eval)
}

// EvalQuery evaluates a query over any source under the given answer mode.
// It is the evaluation step shared by Node.LocalQuery (over the live
// wrapper, inside the actor loop) and the peer's concurrent read path
// (over pinned ReadViews, off the loop).
func EvalQuery(q *cq.Query, src cq.Source, mode QueryMode, opts cq.EvalOptions) ([]relation.Tuple, error) {
	answers, err := cq.Eval(q, src, opts)
	if err != nil {
		return nil, err
	}
	if mode == CertainAnswers {
		answers = cq.FilterCertain(answers)
	}
	return answers, nil
}

// Handle dispatches one inbound envelope to the appropriate handler.
func (n *Node) Handle(env msg.Envelope) Result {
	switch p := env.Payload.(type) {
	case *msg.SessionRequest:
		return n.handleRequest(env.From, p)
	case *msg.SessionData:
		return n.handleData(env.From, p)
	case *msg.SessionAck:
		return n.handleAck(env.From, p)
	case *msg.LinkClose:
		return n.handleLinkClose(env.From, p)
	case *msg.SessionDone:
		return n.handleDone(env.From, p)
	default:
		return Result{}
	}
}

// joinUpdate performs the once-per-session join actions of a global update:
// evaluate and export every incoming link, then flood the session to all
// acquaintances (duplicate-suppressed).
func (n *Node) joinUpdate(s *session, r *Result) {
	if s.joined {
		return
	}
	s.joined = true
	for _, rule := range n.Incoming() {
		n.exportSince(s, rule, rule.Target, r)
	}
	if !s.flooded {
		s.flooded = true
		for _, acq := range n.Acquaintances() {
			var defs []msg.RuleDef
			for _, o := range n.Outgoing() {
				if o.Source == acq {
					defs = append(defs, msg.RuleDef{ID: o.ID, Text: n.RuleText(o.ID)})
				}
			}
			req := &msg.SessionRequest{
				SID:    s.sid,
				Kind:   msg.KindUpdate,
				Origin: s.origin,
				Path:   []string{n.cfg.Self},
				Rules:  defs,
			}
			r.send(acq, req)
			n.ds.Sent(s.sid, acq, 1)
			if len(defs) > 0 {
				s.noteQueried(acq)
			}
		}
	}
}

// requestQueryLinks sends query-session requests for the given outgoing
// links, honouring the path label ("a node does not propagate a query
// request, if its ID is contained in the label").
func (n *Node) requestQueryLinks(s *session, links []*cq.Rule, path []string, r *Result) {
	bySource := make(map[string][]msg.RuleDef)
	for _, o := range links {
		if s.requestedOut[o.ID] || containsStr(path, o.Source) {
			continue
		}
		s.requestedOut[o.ID] = true
		bySource[o.Source] = append(bySource[o.Source], msg.RuleDef{ID: o.ID, Text: n.RuleText(o.ID)})
	}
	for src, defs := range bySource {
		req := &msg.SessionRequest{
			SID:    s.sid,
			Kind:   s.kind,
			Origin: s.origin,
			Path:   path,
			Rules:  defs,
		}
		r.send(src, req)
		n.ds.Sent(s.sid, src, 1)
		s.noteQueried(src)
	}
}

// handleRequest processes a session request from an acquaintance.
func (n *Node) handleRequest(from string, req *msg.SessionRequest) Result {
	var r Result
	s, _ := n.getSession(req.SID, req.Kind, req.Origin)
	n.ds.Received(req.SID, from)
	if s.done {
		// Stale request after completion: just acknowledge.
		n.flushDS(s, &r)
		return r
	}

	switch req.Kind {
	case msg.KindUpdate:
		// Adopt rules we did not know (the request carries definitions,
		// paper §2); they become part of the topology.
		for _, d := range req.Rules {
			if _, known := n.rules[d.ID]; known {
				continue
			}
			if rule, err := cq.ParseRule(d.ID, d.Text); err == nil && rule.Source == n.cfg.Self {
				_ = n.addParsedRule(rule, d.Text)
			}
		}
		n.joinUpdate(s, &r)
		// Export any requested link the join pass did not cover (rules
		// adopted just now are covered by joinUpdate only if joined here;
		// re-run export for listed rules explicitly — exportSince is
		// idempotent per session).
		for _, d := range req.Rules {
			if rs, ok := n.rules[d.ID]; ok && rs.rule.Source == n.cfg.Self {
				n.exportSince(s, rs.rule, rs.rule.Target, &r)
			}
		}

	case msg.KindQuery, msg.KindScoped:
		var listed []*cq.Rule
		for _, d := range req.Rules {
			rule := n.ruleOf(s, d.ID)
			if rule == nil {
				parsed, err := cq.ParseRule(d.ID, d.Text)
				if err != nil || parsed.Source != n.cfg.Self {
					continue
				}
				if s.extra == nil {
					s.extra = make(map[string]*cq.Rule)
				}
				s.extra[d.ID] = parsed
				rule = parsed
			}
			if rule.Source != n.cfg.Self {
				continue
			}
			listed = append(listed, rule)
			s.activeIncoming[rule.ID] = rule.Target
			n.exportSince(s, rule, rule.Target, &r)
		}
		// Forward to the outgoing links relevant to what was requested.
		var relevant []*cq.Rule
		for _, o := range n.Outgoing() {
			for _, in := range listed {
				if cq.DependsOn(in, o) {
					relevant = append(relevant, o)
					break
				}
			}
		}
		n.requestQueryLinks(s, relevant, append(append([]string{}, req.Path...), n.cfg.Self), &r)
	}
	n.closeCheck(s, &r)
	n.flushDS(s, &r)
	return r
}

// handleData processes frontier bindings arriving on one of our outgoing
// links.
func (n *Node) handleData(from string, d *msg.SessionData) Result {
	var r Result
	s, _ := n.getSession(d.SID, d.Kind, d.Origin)
	n.ds.Received(d.SID, from)
	if s.done {
		n.flushDS(s, &r)
		return r
	}

	// Stats (paper §4: messages and volume per coordination rule, longest
	// update propagation path).
	s.rep.MsgsPerRule[d.RuleID]++
	s.rep.BytesPerRule[d.RuleID] += d.Size()
	s.rep.TuplesPerRule[d.RuleID] += len(d.Bindings)
	if d.Mode == msg.ExportIncremental {
		s.rep.IncrementalMsgs++
	}
	if len(d.Path) > s.rep.LongestPath {
		s.rep.LongestPath = len(d.Path)
	}

	// Data can be the first contact with an update session; join before
	// anything else so this node exports and floods too.
	if s.kind == msg.KindUpdate {
		n.joinUpdate(s, &r)
	}

	rs := n.rules[d.RuleID]
	applier := n.appliers[d.RuleID]
	if rs == nil || applier == nil || rs.rule.Target != n.cfg.Self {
		// Unknown or foreign rule (topology changed mid-session): the
		// message is still acknowledged so termination is preserved.
		n.closeCheck(s, &r)
		n.flushDS(s, &r)
		return r
	}

	// Chase: instantiate heads, insert, collect the per-relation deltas.
	skippedBefore := applier.Skipped
	facts := applier.Facts(d.Bindings)
	s.rep.SkippedDepth += applier.Skipped - skippedBefore
	v := n.sessionView(s)
	byRel := make(map[string][]relation.Tuple)
	for _, f := range facts {
		byRel[f.Rel] = append(byRel[f.Rel], f.Tuple)
	}
	fresh := make(map[string][]relation.Tuple)
	for rel, ts := range byRel {
		fs, err := v.insertMany(rel, ts)
		if err != nil {
			continue // schema violation from a remote peer: drop, keep going
		}
		if len(fs) > 0 {
			fresh[rel] = fs
			s.rep.NewTuples += len(fs)
		}
	}

	// Propagate the delta through the dependent incoming links (semi-naive
	// step; the Naive toggle re-evaluates fully for the A1 ablation).
	if len(fresh) > 0 {
		path := append(append([]string{}, d.Path...), n.cfg.Self)
		switch s.kind {
		case msg.KindUpdate:
			for _, in := range n.Incoming() {
				n.exportDelta(s, in, in.Target, fresh, path, &r)
			}
		case msg.KindQuery, msg.KindScoped:
			for id, requester := range s.activeIncoming {
				if in := n.ruleOf(s, id); in != nil {
					n.exportDelta(s, in, requester, fresh, path, &r)
				}
			}
		}
		// A query origin re-evaluates and streams new answers.
		if s.query != nil {
			n.streamAnswers(s, &r)
		}
	}
	n.closeCheck(s, &r)
	n.flushDS(s, &r)
	return r
}

func (n *Node) handleAck(from string, a *msg.SessionAck) Result {
	var r Result
	s := n.sessions[a.SID]
	n.ds.AckReceived(a.SID, from, a.N)
	if s == nil {
		return r
	}
	n.flushDS(s, &r)
	return r
}

func (n *Node) handleDone(from string, d *msg.SessionDone) Result {
	var r Result
	s := n.sessions[d.SID]
	if s == nil || s.done {
		return r
	}
	n.finalize(s, false, &r)
	// Forward the completion flood once (dedup via s.done).
	for _, acq := range n.Acquaintances() {
		if acq != from {
			r.send(acq, &msg.SessionDone{SID: d.SID, Origin: d.Origin})
		}
	}
	n.ds.Drop(d.SID)
	return r
}

// noteEvalError counts a chase/eval failure in the session report and
// surfaces it on the Result; the session continues (termination must still
// be reached) but its outcome may be incomplete.
func (n *Node) noteEvalError(s *session, r *Result, err error) {
	s.rep.EvalErrors++
	r.Errors = append(r.Errors, fmt.Errorf("core: %s session %s: %w", s.kind, s.sid, err))
}

// incrementalFor reports whether cross-session incremental export applies
// to the given session: the wrapper must capture changes, FullExport must
// be off, and the session must materialise at the importer (query sessions
// sink into per-session overlays that are discarded at completion, so
// nothing shipped for one query can be assumed present for the next).
func (n *Node) incrementalFor(s *session) bool {
	return n.tracker != nil && !n.cfg.FullExport && s.kind != msg.KindQuery
}

// viewLSN returns the commit horizon an evaluation over the view observes:
// the pinned snapshot's LSN, or the live tracker's when the view reads the
// live wrapper (callers guarantee n.tracker != nil on that path).
func (n *Node) viewLSN(v view) uint64 {
	if v.snap != nil {
		return v.snap.LSN()
	}
	return n.tracker.LSN()
}

// exportSince runs the initial evaluation of an incoming link for a session
// and ships the bindings to the importer. Idempotent per session.
//
// This is the cross-session refactor of the seed's exportFull: when the
// wrapper captures changes, the link keeps a persistent LSN watermark (the
// commit horizon up to which its body relations have been exported) and
// only tuples committed past it are evaluated, through the same semi-naive
// machinery the in-session delta step uses. The first session, lost change
// history (deletes, changelog truncation, restart past a checkpoint), and
// the FullExport toggle all fall back to a full evaluation.
func (n *Node) exportSince(s *session, rule *cq.Rule, to string, r *Result) {
	if s.evaluated[rule.ID] {
		return
	}
	s.evaluated[rule.ID] = true

	// Lazy links: a global update floods only the cheap invalidation hint;
	// the importer pulls the actual delta on demand (ServePull serves it
	// from the durable watermark, so nothing here is lost — merely
	// deferred). Query and scoped sessions are explicit demand and always
	// export eagerly.
	if s.kind == msg.KindUpdate && n.pullEffective(rule) {
		n.sendHint(s, rule, to, r)
		return
	}

	// Pin the evaluation view before reading the watermark horizon: with a
	// snapshot-backed view the new watermark is the snapshot's own LSN, so
	// it can never advance past commits the evaluation didn't observe.
	v := n.sessionView(s)

	mode := msg.ExportFull
	var bindings []relation.Tuple
	var skipped int
	full := func() bool {
		bs, err := chase.Bindings(rule, v, n.chaseOpts())
		if err != nil {
			n.noteEvalError(s, r, fmt.Errorf("export %s: %w", rule.ID, err))
			return false
		}
		bindings = bs
		return true
	}

	es := n.exports[rule.ID]
	switch {
	case !n.incrementalFor(s):
		if !full() {
			return
		}
	case es == nil:
		// First session for this link: full export establishes the
		// watermark and the fingerprint base.
		cur := n.viewLSN(v)
		if !full() {
			return
		}
		n.exports[rule.ID] = &exportState{watermark: cur, shipped: make(map[string]bool)}
		n.exportsChanged++
	default:
		cur := n.viewLSN(v)
		deltas := make(map[string][]relation.Tuple)
		intact := true
		for _, rel := range rule.BodyRelations() {
			delta, ok := n.tracker.Changes(rel, es.watermark)
			if !ok {
				intact = false
				break
			}
			if len(delta) > 0 {
				deltas[rel] = delta
			}
			skipped += n.cfg.Wrapper.Count(rel) - len(delta)
		}
		if !intact {
			mode, skipped = msg.ExportFallback, 0
			if !full() {
				return
			}
		} else {
			mode = msg.ExportIncremental
			bs, evalFailed := n.deltaBindings(s, rule, deltas, r)
			bindings = bs
			if evalFailed {
				// A failed delta evaluation must stay above the
				// watermark: ship what did evaluate (fingerprints keep
				// re-derivations off the wire), but let the next session
				// re-attempt the whole delta instead of permanently
				// losing the failed relation's tuples.
				n.sendData(s, rule, to, bindings, []string{n.cfg.Self}, mode, skipped, r)
				s.rep.ExportsIncremental++
				s.rep.SkippedByWatermark += skipped
				return
			}
		}
		if es.watermark != cur {
			es.watermark = cur
			n.exportsChanged++
		}
	}

	switch mode {
	case msg.ExportIncremental:
		s.rep.ExportsIncremental++
		s.rep.SkippedByWatermark += skipped
	case msg.ExportFallback:
		s.rep.ExportsFallback++
	default:
		s.rep.ExportsFull++
	}
	n.sendData(s, rule, to, bindings, []string{n.cfg.Self}, mode, skipped, r)
}

// deltaBindings evaluates a rule semi-naively over per-relation deltas,
// deduplicating bindings produced through more than one delta relation.
// evalFailed reports whether any per-relation evaluation errored (the
// returned bindings then cover only the relations that succeeded).
func (n *Node) deltaBindings(s *session, rule *cq.Rule, deltas map[string][]relation.Tuple, r *Result) (bindings []relation.Tuple, evalFailed bool) {
	v := n.sessionView(s)
	seen := make(map[string]bool)
	for _, rel := range rule.BodyRelations() {
		delta := deltas[rel]
		if len(delta) == 0 {
			continue
		}
		bs, err := chase.BindingsDelta(rule, v, rel, delta, n.chaseOpts())
		if err != nil {
			n.noteEvalError(s, r, fmt.Errorf("delta export %s over %s: %w", rule.ID, rel, err))
			evalFailed = true
			continue
		}
		for _, b := range bs {
			k := b.Key()
			if !seen[k] {
				seen[k] = true
				bindings = append(bindings, b)
			}
		}
	}
	return bindings, evalFailed
}

// exportDelta re-evaluates an incoming link against the fresh tuples of the
// running session (the in-session semi-naive step) and ships any new
// bindings.
func (n *Node) exportDelta(s *session, rule *cq.Rule, to string, fresh map[string][]relation.Tuple, path []string, r *Result) {
	// Lazy links defer in-session deltas too; the hint is deduplicated per
	// session, so a link that already hinted at join time stays quiet.
	if s.kind == msg.KindUpdate && n.pullEffective(rule) {
		n.sendHint(s, rule, to, r)
		return
	}
	reads := rule.BodyRelations()
	var bindings []relation.Tuple
	if n.cfg.Naive {
		// A1 ablation: recompute the link in full.
		touched := false
		for _, rel := range reads {
			if len(fresh[rel]) > 0 {
				touched = true
				break
			}
		}
		if !touched {
			return
		}
		bs, err := chase.Bindings(rule, n.sessionView(s), n.chaseOpts())
		if err != nil {
			n.noteEvalError(s, r, fmt.Errorf("naive re-export %s: %w", rule.ID, err))
			return
		}
		bindings = bs
	} else {
		// Failed per-relation evaluations are counted inside; ship what
		// did evaluate (the session stays live either way).
		bs, _ := n.deltaBindings(s, rule, fresh, r)
		bindings = bs
	}
	n.sendData(s, rule, to, bindings, path, msg.ExportSessionDelta, 0, r)
}

// sendData filters the bindings against the link's session sent cache and
// its persistent shipped-fingerprint set, then ships one data batch.
func (n *Node) sendData(s *session, rule *cq.Rule, to string, bindings []relation.Tuple, path []string, mode msg.ExportMode, skipped int, r *Result) {
	bindings = n.applyFilter(rule, bindings)
	if !n.cfg.DisableDedup {
		sent := s.sentSet(rule.ID)
		kept := bindings[:0:0]
		for _, b := range bindings {
			k := b.Key()
			if !sent[k] {
				sent[k] = true
				kept = append(kept, b)
			}
		}
		bindings = kept

		// Cross-session suppression: a binding shipped in an earlier
		// update session is already materialised at the importer. The
		// state advances inside running sessions too, so the in-session
		// delta step contributes to the next session's savings.
		if es := n.exports[rule.ID]; es != nil && n.incrementalFor(s) {
			kept := bindings[:0:0]
			for _, b := range bindings {
				k := b.Key()
				if !es.shipped[k] {
					es.shipped[k] = true
					kept = append(kept, b)
				}
			}
			s.rep.SuppressedBindings += len(bindings) - len(kept)
			bindings = kept
			if len(kept) > 0 {
				n.exportsChanged++
			}
			if len(es.shipped) > n.cfg.MaxFingerprints {
				// Bound the memory: drop the state; the next session
				// re-exports in full (set semantics make that safe).
				delete(n.exports, rule.ID)
				n.exportsChanged++
			}
		}
	}
	if len(bindings) == 0 {
		return
	}
	s.seqOut[rule.ID]++
	data := &msg.SessionData{
		SID:      s.sid,
		Kind:     s.kind,
		Origin:   s.origin,
		RuleID:   rule.ID,
		Bindings: bindings,
		Path:     path,
		Seq:      s.seqOut[rule.ID],
		Mode:     mode,
		Skipped:  skipped,
	}
	r.send(to, data)
	n.ds.Sent(s.sid, to, 1)
	s.rep.SentMsgs++
	s.rep.SentBytes += data.Size()
	n.propStatFor(rule.ID).bytesPushed += uint64(data.Size())
	s.noteSentTo(to)
}

// streamAnswers re-evaluates a query origin's query and emits answers not
// yet streamed.
func (n *Node) streamAnswers(s *session, r *Result) {
	answers, err := cq.Eval(s.query, n.sessionView(s), n.cfg.Eval)
	if err != nil {
		n.noteEvalError(s, r, fmt.Errorf("query eval: %w", err))
		return
	}
	r.AnswersSID = s.sid
	for _, a := range answers {
		if s.certain && a.HasNull() {
			continue
		}
		k := a.Key()
		if !s.answerKeys[k] {
			s.answerKeys[k] = true
			r.Answers = append(r.Answers, a)
		}
	}
}

// flushDS emits pending acknowledgements and, at the initiator, detects
// termination and floods the completion notice. In burst mode (DeferAcks)
// the flush is postponed to FlushDeferred, which batches acks across the
// whole burst.
func (n *Node) flushDS(s *session, r *Result) {
	if n.deferAcks {
		n.dirty[s.sid] = s
		return
	}
	acks, terminated := n.ds.Flush(s.sid)
	for _, a := range acks {
		r.send(a.To, &msg.SessionAck{SID: s.sid, N: a.N})
	}
	if terminated && !s.done {
		n.finalize(s, true, r)
		for _, acq := range n.Acquaintances() {
			r.send(acq, &msg.SessionDone{SID: s.sid, Origin: s.origin})
		}
		n.ds.Drop(s.sid)
	}
}

// finalize completes a session at this node: force-close surviving links
// (the quiescence condition), stamp the report, and surface it.
func (n *Node) finalize(s *session, initiator bool, r *Result) {
	s.done = true
	n.forceCloseAll(s)
	s.rep.EndUnixNano = n.cfg.Clock()
	n.recordReport(s.rep)
	s.overlay = nil // release query overlay
	s.pinned = nil  // release the session's pinned snapshot
	r.Finished = append(r.Finished, Finished{SID: s.sid, Initiator: initiator, Report: s.rep})
}

// CompensateLost self-acknowledges n basic messages to `to` whose delivery
// failed (the receiving peer left the network). Without this a departed
// peer would leave the initiator's deficit forever nonzero; with it,
// sessions terminate even on dynamic networks, as the paper requires. The
// caller must then process the returned messages as usual.
func (n *Node) CompensateLost(sid, to string, lost int) Result {
	var r Result
	s := n.sessions[sid]
	if s == nil || lost <= 0 {
		return r
	}
	s.rep.CompensatedLost += lost
	n.ds.AckReceived(sid, to, lost)
	n.flushDS(s, &r)
	return r
}

// CompensatePeerLoss writes off every active session's outstanding deficit
// toward a peer whose pipe has failed. Over an asynchronous transport a
// frame can be written successfully into a connection the far side has
// already abandoned — no send error is ever observed for it — so when the
// transport reports the pipe down, the outstanding per-destination deficit
// is the exact count of messages that can no longer be acknowledged.
func (n *Node) CompensatePeerLoss(to string) Result {
	var r Result
	for _, s := range n.sessions {
		if s.done {
			continue
		}
		if lost := n.ds.LostPeer(s.sid, to); lost > 0 {
			s.rep.CompensatedLost += lost
			n.flushDS(s, &r)
		}
	}
	return r
}

// ruleOf resolves a rule by ID against the node's rules and the session's
// query-local extras.
func (n *Node) ruleOf(s *session, id string) *cq.Rule {
	if rs, ok := n.rules[id]; ok {
		return rs.rule
	}
	if s.extra != nil {
		return s.extra[id]
	}
	return nil
}

func containsStr(xs []string, x string) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}
