package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"codb/internal/chase"
	"codb/internal/msg"
	"codb/internal/relation"
)

// startUpdateNoWait launches an update without draining the queue, so
// several sessions can interleave.
func (s *sim) startUpdateNoWait(origin string) string {
	sid := msg.NewSID(origin)
	res, err := s.nodes[origin].StartUpdate(sid)
	if err != nil {
		s.t.Fatal(err)
	}
	s.dispatch(origin, res, sid)
	return sid
}

func (s *sim) assertFinished(origin, sid string) msg.UpdateReport {
	s.t.Helper()
	for _, f := range s.finished[origin] {
		if f.SID == sid && f.Initiator {
			return f.Report
		}
	}
	s.t.Fatalf("session %s did not finish at %s", sid, origin)
	return msg.UpdateReport{}
}

// TestConcurrentUpdatesInterleaved: several updates from different origins
// run with interleaved (randomised) message delivery. All terminate, and
// since updates are monotone the final state is the same global fixpoint a
// single update computes.
func TestConcurrentUpdatesInterleaved(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		names, rules, seeds := randomTopology(rnd)

		s := newSim(t)
		s.rnd = rand.New(rand.NewSource(seed ^ 0x77))
		for _, name := range names {
			s.addNodeCfg(Config{Self: name, MaxDepth: 6}, "u/1", "b/2")
		}
		for _, r := range rules {
			s.rule(r.ID, r.String())
		}
		for node, in := range seeds {
			for rel, m := range in {
				for _, tup := range m {
					s.nodes[node].Wrapper().InsertMany(rel, []relation.Tuple{tup})
				}
			}
		}

		// Launch an update at every node, all in flight together.
		sids := make(map[string]string, len(names))
		for _, n := range names {
			sids[n] = s.startUpdateNoWait(n)
		}
		s.run()
		for n, sid := range sids {
			s.assertFinished(n, sid)
		}

		// Oracle over the whole network (every component had an
		// initiator, so everything fires).
		start := make(map[string]relation.Instance)
		for _, n := range names {
			if in, ok := seeds[n]; ok {
				start[n] = in.Clone()
			} else {
				start[n] = relation.NewInstance()
			}
		}
		oracle, _, err := chase.Fixpoint(rules, start, chase.Options{MaxDepth: 6})
		if err != nil {
			return false
		}
		for _, n := range names {
			if !instancesIdentical(s.instanceOf(n), oracle[n]) {
				t.Logf("seed %d node %s:\n got  %v\n want %v", seed, n, dump(s.instanceOf(n)), dump(oracle[n]))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalUpdatesConverge: alternate random data insertions and
// updates; after the final update the state equals the oracle fixpoint over
// all data inserted so far (updates are incremental and idempotent).
func TestIncrementalUpdatesConverge(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		names, rules, seeds := randomTopology(rnd)

		s := newSim(t)
		s.rnd = rand.New(rand.NewSource(seed ^ 0x1234))
		for _, name := range names {
			s.addNodeCfg(Config{Self: name, MaxDepth: 6}, "u/1", "b/2")
		}
		for _, r := range rules {
			s.rule(r.ID, r.String())
		}
		for node, in := range seeds {
			for rel, m := range in {
				for _, tup := range m {
					s.nodes[node].Wrapper().InsertMany(rel, []relation.Tuple{tup})
				}
			}
		}
		allSeeds := make(map[string]relation.Instance)
		for _, n := range names {
			allSeeds[n] = seeds[n].Clone()
		}

		origin := names[0]
		rounds := rnd.Intn(3) + 2
		for round := 0; round < rounds; round++ {
			s.update(origin)
			// Inject fresh data at a random node.
			node := names[rnd.Intn(len(names))]
			tup := relation.Tuple{relation.Int(rnd.Intn(4)), relation.Int(rnd.Intn(4))}
			s.nodes[node].Wrapper().InsertMany("b", []relation.Tuple{tup})
			allSeeds[node].Insert("b", tup)
		}
		s.update(origin)

		// Oracle restricted to the origin's component.
		comp := component(origin, rules)
		oracleRules := rules[:0:0]
		for _, r := range rules {
			if comp[r.Source] && comp[r.Target] {
				oracleRules = append(oracleRules, r)
			}
		}
		start := make(map[string]relation.Instance)
		for n := range comp {
			start[n] = allSeeds[n].Clone()
		}
		oracle, _, err := chase.Fixpoint(oracleRules, start, chase.Options{MaxDepth: 6})
		if err != nil {
			return false
		}
		for n := range comp {
			if !instancesIdentical(s.instanceOf(n), oracle[n]) {
				t.Logf("seed %d node %s after %d rounds:\n got  %v\n want %v",
					seed, n, rounds, dump(s.instanceOf(n)), dump(oracle[n]))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestUpdateAndQueryConcurrently: a query session and an update session in
// flight together must both finish, and the query must not corrupt the
// update's materialisation.
func TestUpdateAndQueryConcurrently(t *testing.T) {
	s := newSim(t)
	s.rnd = rand.New(rand.NewSource(99))
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.addNode("C", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.rule("r2", `B.r(x) <- C.r(x)`)
	s.seed("C", "r", []int{1}, []int{2})
	s.seed("B", "r", []int{3})

	usid := s.startUpdateNoWait("A")
	qsid := msg.NewSID("A")
	res, err := s.nodes["A"].StartQuery(qsid, mustQuery(t, `ans(x) :- r(x)`), AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	s.dispatch("A", res, qsid)
	s.run()

	s.assertFinished("A", usid)
	foundQuery := false
	for _, f := range s.finished["A"] {
		if f.SID == qsid {
			foundQuery = true
		}
	}
	if !foundQuery {
		t.Fatal("query session did not finish")
	}
	// The update materialised everything.
	a := s.instanceOf("A")
	for _, v := range []int{1, 2, 3} {
		if !a.Has("r", intRow(v)) {
			t.Errorf("A missing r(%d)", v)
		}
	}
	// The query saw at least the local data and whatever had been
	// materialised; all its answers are valid tuples.
	for _, ans := range s.answers[qsid] {
		if !a.Has("r", ans) {
			t.Errorf("query answer %v not in final state", ans)
		}
	}
}

// TestManySessionsStress: a pile of sessions across origins and kinds on a
// denser graph, randomised delivery; everything must terminate.
func TestManySessionsStress(t *testing.T) {
	s := newSim(t)
	s.rnd = rand.New(rand.NewSource(7))
	const n = 6
	for i := 0; i < n; i++ {
		s.addNode(fmt.Sprintf("N%d", i), "r/1")
	}
	// Ring plus chords.
	for i := 0; i < n; i++ {
		s.rule(fmt.Sprintf("ring%d", i), fmt.Sprintf(`N%d.r(x) <- N%d.r(x)`, i, (i+1)%n))
	}
	s.rule("chord1", `N0.r(x) <- N3.r(x)`)
	s.rule("chord2", `N2.r(x) <- N5.r(x)`)
	for i := 0; i < n; i++ {
		s.seed(fmt.Sprintf("N%d", i), "r", []int{i})
	}

	var pending []struct{ origin, sid string }
	for i := 0; i < n; i++ {
		origin := fmt.Sprintf("N%d", i)
		pending = append(pending, struct{ origin, sid string }{origin, s.startUpdateNoWait(origin)})
		qsid := msg.NewSID(origin)
		res, err := s.nodes[origin].StartQuery(qsid, mustQuery(t, `ans(x) :- r(x)`), AllAnswers)
		if err != nil {
			t.Fatal(err)
		}
		s.dispatch(origin, res, qsid)
		pending = append(pending, struct{ origin, sid string }{origin, qsid})
	}
	s.run()
	for _, p := range pending {
		found := false
		for _, f := range s.finished[p.origin] {
			if f.SID == p.sid {
				found = true
			}
		}
		if !found {
			t.Errorf("session %s at %s did not finish", p.sid, p.origin)
		}
	}
	// Every node converged to the union {0..n-1}.
	for i := 0; i < n; i++ {
		in := s.instanceOf(fmt.Sprintf("N%d", i))
		for v := 0; v < n; v++ {
			if !in.Has("r", intRow(v)) {
				t.Errorf("N%d missing r(%d)", i, v)
			}
		}
	}
}
