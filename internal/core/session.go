package core

import (
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/relation"
)

// session is this node's state for one global update or distributed query.
type session struct {
	sid    string
	kind   msg.Kind
	origin string

	// joined is set once this node has performed its join actions
	// (initial exports and flood forwarding).
	joined bool
	// flooded is set once the session has been propagated to the
	// acquaintances (duplicate suppression of the update flood).
	flooded bool

	// evaluated marks incoming links whose initial full evaluation has
	// run in this session.
	evaluated map[string]bool
	// sent holds, per incoming link, the frontier-binding keys already
	// shipped (the paper's "we delete from Ri those tuples which have
	// been already sent").
	sent map[string]map[string]bool
	// seqOut numbers outgoing data batches per rule.
	seqOut map[string]int
	// hinted marks pull-policy links whose lazy invalidation hint has been
	// flooded in this session (one hint per link per session).
	hinted map[string]bool

	// Query-mode state.
	query *cq.Query // non-nil at the origin of a query session
	// overlay is the per-session sink for query sessions (never committed
	// to the LDB); nil for update sessions.
	overlay relation.Instance
	// activeIncoming maps incoming rule IDs to the requesting importer,
	// for query sessions (updates push to every incoming link's target).
	activeIncoming map[string]string
	// requestedOut marks outgoing links this node has already requested
	// in a query session.
	requestedOut map[string]bool
	// answerKeys dedups streamed answers at a query origin.
	answerKeys map[string]bool
	certain    bool // drop answers containing nulls
	// extra holds rules learned from query requests, session-locally (they
	// belong to the requester's topology, not ours).
	extra map[string]*cq.Rule

	// pinned is the storage snapshot the session currently evaluates over
	// (nil when the wrapper has no snapshot capability or session snapshots
	// are disabled). It is re-pinned by sessionView whenever the storage
	// LSN has moved past it — in particular after each insertMany that
	// lands in the LDB — so later rule evaluations in the same session
	// observe the session's own writes. finalize releases it.
	pinned ReadView

	// Link-state protocol (reporting; see close.go).
	outClosed map[string]bool // outgoing links closed (exporter notified us)
	inClosed  map[string]bool // incoming links we have closed

	// Stats under construction.
	rep msg.UpdateReport

	done bool
}

func (n *Node) newSession(sid string, kind msg.Kind, origin string) *session {
	s := &session{
		sid:            sid,
		kind:           kind,
		origin:         origin,
		evaluated:      make(map[string]bool),
		sent:           make(map[string]map[string]bool),
		seqOut:         make(map[string]int),
		activeIncoming: make(map[string]string),
		requestedOut:   make(map[string]bool),
		outClosed:      make(map[string]bool),
		inClosed:       make(map[string]bool),
		rep: msg.UpdateReport{
			SID:           sid,
			Kind:          kind,
			Origin:        origin,
			StartUnixNano: n.cfg.Clock(),
			MsgsPerRule:   make(map[string]int),
			BytesPerRule:  make(map[string]int),
			TuplesPerRule: make(map[string]int),
		},
	}
	if kind == msg.KindQuery {
		s.overlay = relation.NewInstance()
	}
	n.sessions[sid] = s
	return s
}

// getSession returns (creating if needed) the session, reporting whether it
// already existed.
func (n *Node) getSession(sid string, kind msg.Kind, origin string) (*session, bool) {
	if s, ok := n.sessions[sid]; ok {
		return s, true
	}
	return n.newSession(sid, kind, origin), false
}

// sentSet returns the sent cache for one incoming link.
func (s *session) sentSet(ruleID string) map[string]bool {
	m := s.sent[ruleID]
	if m == nil {
		m = make(map[string]bool)
		s.sent[ruleID] = m
	}
	return m
}

// noteQueried records an acquaintance this node requested data from.
func (s *session) noteQueried(node string) {
	for _, q := range s.rep.Queried {
		if q == node {
			return
		}
	}
	s.rep.Queried = append(s.rep.Queried, node)
}

// noteSentTo records a node this node shipped results to.
func (s *session) noteSentTo(node string) {
	for _, q := range s.rep.SentTo {
		if q == node {
			return
		}
	}
	s.rep.SentTo = append(s.rep.SentTo, node)
}

// view is what rule evaluation reads: the LDB for update sessions, the LDB
// plus the session overlay for query sessions. When the wrapper can take
// snapshots (and session snapshots are enabled), the LDB half is a pinned
// immutable snapshot instead of the live wrapper: evaluation then runs
// without storage locks, the CQ evaluator's hash-join builds fan out per
// shard (the view forwards cq.ShardedSource), and constant pushdown probes
// the snapshot's lazy secondary views (cq.EqScanner). Writes still go to
// the live wrapper (or the overlay), never to the snapshot.
type view struct {
	base    Wrapper
	snap    ReadView          // nil: evaluation falls back to the live wrapper
	overlay relation.Instance // nil for update sessions
}

// sessionView returns the session's evaluation view, (re)pinning its
// snapshot first: a fresh snapshot is taken whenever the session has none
// yet or the storage has committed past the pinned LSN — which is exactly
// what happens when the session's own insertMany lands in the LDB, so the
// next evaluation observes those writes.
func (n *Node) sessionView(s *session) view {
	v := view{base: n.cfg.Wrapper, overlay: s.overlay}
	if n.snapshotter != nil && n.tracker != nil && !s.done {
		if s.pinned == nil || s.pinned.LSN() != n.tracker.LSN() {
			s.pinned = n.snapshotter.ReadSnapshot()
		}
		v.snap = s.pinned
	}
	return v
}

// baseScan iterates the LDB half of the view (snapshot if pinned).
func (v view) baseScan(rel string, fn func(relation.Tuple) bool) {
	if v.snap != nil {
		v.snap.Scan(rel, fn)
		return
	}
	v.base.Scan(rel, fn)
}

// baseHas reports presence in the LDB half of the view (snapshot if
// pinned). The overlay shadow checks use this rather than the live
// wrapper so that one evaluation reads one consistent state.
func (v view) baseHas(rel string, t relation.Tuple) bool {
	if v.snap != nil {
		return v.snap.Has(rel, t)
	}
	return v.base.Has(rel, t)
}

// Scan implements cq.Source over base ∪ overlay.
func (v view) Scan(rel string, fn func(relation.Tuple) bool) {
	stopped := false
	v.baseScan(rel, func(t relation.Tuple) bool {
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped || v.overlay == nil {
		return
	}
	for _, t := range v.overlay.Tuples(rel) {
		if v.baseHas(rel, t) {
			continue // shadowed: already visited via base
		}
		if !fn(t) {
			return
		}
	}
}

// ScanEq implements cq.EqScanner over base ∪ overlay: the snapshot probes
// its lazy secondary view, the live wrapper its secondary index (or a
// filtered scan when it has neither); overlay tuples are filtered inline.
func (v view) ScanEq(rel string, pos int, val relation.Value, fn func(relation.Tuple) bool) {
	stopped := false
	scan := func(t relation.Tuple) bool {
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	}
	if v.snap != nil {
		if es, ok := v.snap.(cq.EqScanner); ok {
			es.ScanEq(rel, pos, val, scan)
		} else {
			v.snap.Scan(rel, func(t relation.Tuple) bool {
				if pos < len(t) && t[pos] == val {
					return scan(t)
				}
				return true
			})
		}
	} else if es, ok := v.base.(cq.EqScanner); ok {
		es.ScanEq(rel, pos, val, scan)
	} else {
		v.base.Scan(rel, func(t relation.Tuple) bool {
			if pos < len(t) && t[pos] == val {
				return scan(t)
			}
			return true
		})
	}
	if stopped || v.overlay == nil {
		return
	}
	for _, t := range v.overlay.Tuples(rel) {
		if pos >= len(t) || t[pos] != val || v.baseHas(rel, t) {
			continue
		}
		if !fn(t) {
			return
		}
	}
}

// ShardCount implements cq.ShardedSource by forwarding the pinned
// snapshot's sharding. It reports 0 (no fan-out) when the view has no
// snapshot or the overlay holds tuples for the relation — the contract
// requires the union of shards to equal Scan, and overlay tuples live in
// no shard.
func (v view) ShardCount(rel string) int {
	if v.snap == nil {
		return 0
	}
	if len(v.overlay[rel]) > 0 {
		return 0
	}
	if ss, ok := v.snap.(cq.ShardedSource); ok {
		return ss.ShardCount(rel)
	}
	return 0
}

// ScanShard implements cq.ShardedSource (see ShardCount).
func (v view) ScanShard(rel string, shard int, fn func(relation.Tuple) bool) {
	if v.snap == nil {
		return
	}
	if ss, ok := v.snap.(cq.ShardedSource); ok {
		ss.ScanShard(rel, shard, fn)
	}
}

// has reports presence in base ∪ overlay.
func (v view) has(rel string, t relation.Tuple) bool {
	if v.baseHas(rel, t) {
		return true
	}
	return v.overlay != nil && v.overlay.Has(rel, t)
}

// insertMany inserts into the session sink (LDB or overlay) and returns the
// genuinely new tuples.
func (v view) insertMany(rel string, ts []relation.Tuple) ([]relation.Tuple, error) {
	if v.overlay == nil {
		return v.base.InsertMany(rel, ts)
	}
	var fresh []relation.Tuple
	for _, t := range ts {
		if v.baseHas(rel, t) {
			continue
		}
		if v.overlay.Insert(rel, t) {
			fresh = append(fresh, t)
		}
	}
	return fresh, nil
}
