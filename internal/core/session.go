package core

import (
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/relation"
)

// session is this node's state for one global update or distributed query.
type session struct {
	sid    string
	kind   msg.Kind
	origin string

	// joined is set once this node has performed its join actions
	// (initial exports and flood forwarding).
	joined bool
	// flooded is set once the session has been propagated to the
	// acquaintances (duplicate suppression of the update flood).
	flooded bool

	// evaluated marks incoming links whose initial full evaluation has
	// run in this session.
	evaluated map[string]bool
	// sent holds, per incoming link, the frontier-binding keys already
	// shipped (the paper's "we delete from Ri those tuples which have
	// been already sent").
	sent map[string]map[string]bool
	// seqOut numbers outgoing data batches per rule.
	seqOut map[string]int

	// Query-mode state.
	query *cq.Query // non-nil at the origin of a query session
	// overlay is the per-session sink for query sessions (never committed
	// to the LDB); nil for update sessions.
	overlay relation.Instance
	// activeIncoming maps incoming rule IDs to the requesting importer,
	// for query sessions (updates push to every incoming link's target).
	activeIncoming map[string]string
	// requestedOut marks outgoing links this node has already requested
	// in a query session.
	requestedOut map[string]bool
	// answerKeys dedups streamed answers at a query origin.
	answerKeys map[string]bool
	certain    bool // drop answers containing nulls
	// extra holds rules learned from query requests, session-locally (they
	// belong to the requester's topology, not ours).
	extra map[string]*cq.Rule

	// Link-state protocol (reporting; see close.go).
	outClosed map[string]bool // outgoing links closed (exporter notified us)
	inClosed  map[string]bool // incoming links we have closed

	// Stats under construction.
	rep msg.UpdateReport

	done bool
}

func (n *Node) newSession(sid string, kind msg.Kind, origin string) *session {
	s := &session{
		sid:            sid,
		kind:           kind,
		origin:         origin,
		evaluated:      make(map[string]bool),
		sent:           make(map[string]map[string]bool),
		seqOut:         make(map[string]int),
		activeIncoming: make(map[string]string),
		requestedOut:   make(map[string]bool),
		outClosed:      make(map[string]bool),
		inClosed:       make(map[string]bool),
		rep: msg.UpdateReport{
			SID:           sid,
			Kind:          kind,
			Origin:        origin,
			StartUnixNano: n.cfg.Clock(),
			MsgsPerRule:   make(map[string]int),
			BytesPerRule:  make(map[string]int),
			TuplesPerRule: make(map[string]int),
		},
	}
	if kind == msg.KindQuery {
		s.overlay = relation.NewInstance()
	}
	n.sessions[sid] = s
	return s
}

// getSession returns (creating if needed) the session, reporting whether it
// already existed.
func (n *Node) getSession(sid string, kind msg.Kind, origin string) (*session, bool) {
	if s, ok := n.sessions[sid]; ok {
		return s, true
	}
	return n.newSession(sid, kind, origin), false
}

// sentSet returns the sent cache for one incoming link.
func (s *session) sentSet(ruleID string) map[string]bool {
	m := s.sent[ruleID]
	if m == nil {
		m = make(map[string]bool)
		s.sent[ruleID] = m
	}
	return m
}

// noteQueried records an acquaintance this node requested data from.
func (s *session) noteQueried(node string) {
	for _, q := range s.rep.Queried {
		if q == node {
			return
		}
	}
	s.rep.Queried = append(s.rep.Queried, node)
}

// noteSentTo records a node this node shipped results to.
func (s *session) noteSentTo(node string) {
	for _, q := range s.rep.SentTo {
		if q == node {
			return
		}
	}
	s.rep.SentTo = append(s.rep.SentTo, node)
}

// view is what rule evaluation reads: the LDB for update sessions, the LDB
// plus the session overlay for query sessions.
type view struct {
	base    Wrapper
	overlay relation.Instance // nil for update sessions
}

func (n *Node) sessionView(s *session) view {
	return view{base: n.cfg.Wrapper, overlay: s.overlay}
}

// Scan implements cq.Source over base ∪ overlay.
func (v view) Scan(rel string, fn func(relation.Tuple) bool) {
	stopped := false
	v.base.Scan(rel, func(t relation.Tuple) bool {
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped || v.overlay == nil {
		return
	}
	for _, t := range v.overlay.Tuples(rel) {
		if v.base.Has(rel, t) {
			continue // shadowed: already visited via base
		}
		if !fn(t) {
			return
		}
	}
}

// has reports presence in base ∪ overlay.
func (v view) has(rel string, t relation.Tuple) bool {
	if v.base.Has(rel, t) {
		return true
	}
	return v.overlay != nil && v.overlay.Has(rel, t)
}

// insertMany inserts into the session sink (LDB or overlay) and returns the
// genuinely new tuples.
func (v view) insertMany(rel string, ts []relation.Tuple) ([]relation.Tuple, error) {
	if v.overlay == nil {
		return v.base.InsertMany(rel, ts)
	}
	var fresh []relation.Tuple
	for _, t := range ts {
		if v.base.Has(rel, t) {
			continue
		}
		if v.overlay.Insert(rel, t) {
			fresh = append(fresh, t)
		}
	}
	return fresh, nil
}
