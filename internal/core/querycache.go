package core

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"codb/internal/cq"
	"codb/internal/relation"
)

// DefaultQueryCacheSize is the entry bound used when a cache is created
// with capacity 0.
const DefaultQueryCacheSize = 256

// QueryCache is a bounded, thread-safe result cache for local query
// evaluation. Entries are keyed by the normalized query text plus answer
// mode (see CacheKey) and stamped with the storage commit LSN and the
// node's rule-set version they were computed at; a lookup hits only when
// both still match, so any commit — local insert, update-session
// materialisation, recovery — or rule reconfiguration implicitly
// invalidates every older entry. Stale entries are dropped lazily on
// access and by LRU eviction; there is no sweeper to coordinate with.
type QueryCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	byK map[string]*list.Element

	hits, misses, stale uint64
}

type cacheEntry struct {
	key      string
	lsn      uint64
	rulesVer uint64
	answers  []relation.Tuple
}

// QueryCacheStats are cumulative counters of one cache.
type QueryCacheStats struct {
	// Hits and Misses count lookups; Stale counts the subset of misses
	// that found an entry invalidated by a newer LSN or rule-set version.
	Hits, Misses, Stale uint64
	// Entries is the current cache population.
	Entries int
}

// NewQueryCache builds a cache bounded to the given number of entries
// (0 selects DefaultQueryCacheSize).
func NewQueryCache(capacity int) *QueryCache {
	if capacity <= 0 {
		capacity = DefaultQueryCacheSize
	}
	return &QueryCache{
		cap: capacity,
		ll:  list.New(),
		byK: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached answers for key if they were computed at exactly
// this (lsn, rulesVer) validity token. The returned slice is fresh (callers
// may append to it); the tuples are shared and must not be mutated.
func (c *QueryCache) Get(key string, lsn, rulesVer uint64) ([]relation.Tuple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.lsn != lsn || e.rulesVer != rulesVer {
		// Invalidated by a commit or a rule change: drop it now rather
		// than letting a dead entry occupy an LRU slot.
		c.ll.Remove(el)
		delete(c.byK, key)
		c.misses++
		c.stale++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	out := make([]relation.Tuple, len(e.answers))
	copy(out, e.answers)
	return out, true
}

// Put stores the answers for key at the given validity token, evicting the
// least recently used entry when full. The cache keeps the slice; callers
// must not mutate it afterwards.
func (c *QueryCache) Put(key string, lsn, rulesVer uint64, answers []relation.Tuple) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		el.Value = &cacheEntry{key: key, lsn: lsn, rulesVer: rulesVer, answers: answers}
		c.ll.MoveToFront(el)
		return
	}
	c.byK[key] = c.ll.PushFront(&cacheEntry{key: key, lsn: lsn, rulesVer: rulesVer, answers: answers})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byK, oldest.Value.(*cacheEntry).key)
	}
}

// Stats returns the cache's cumulative counters.
func (c *QueryCache) Stats() QueryCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return QueryCacheStats{Hits: c.hits, Misses: c.misses, Stale: c.stale, Entries: c.ll.Len()}
}

// CacheKey derives the cache key of a query: the query rendered with
// variables canonically renamed in order of first occurrence (head first),
// so alpha-equivalent queries — same shape, different variable names —
// share one cache line, plus the answer mode.
func CacheKey(q *cq.Query, mode QueryMode) string {
	var b strings.Builder
	names := make(map[string]string, 8)
	term := func(t cq.Term) {
		if t.IsVar() {
			nm, ok := names[t.Var]
			if !ok {
				nm = "v" + strconv.Itoa(len(names))
				names[t.Var] = nm
			}
			b.WriteString(nm)
			return
		}
		// '#' keeps constants disjoint from the renamed variable space.
		b.WriteByte('#')
		b.WriteString(t.Const.String())
	}
	atom := func(a cq.Atom) {
		b.WriteString(a.Rel)
		b.WriteByte('(')
		for i, t := range a.Terms {
			if i > 0 {
				b.WriteByte(',')
			}
			term(t)
		}
		b.WriteByte(')')
	}
	atom(q.Head)
	b.WriteString(":-")
	for i, a := range q.Body {
		if i > 0 {
			b.WriteByte(',')
		}
		atom(a)
	}
	for _, c := range q.Cmps {
		b.WriteByte(',')
		term(c.L)
		b.WriteString(c.Op.String())
		term(c.R)
	}
	b.WriteByte('|')
	b.WriteByte(byte('0' + mode))
	return b.String()
}
