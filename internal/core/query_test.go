package core

import "testing"

func TestQueryLocalOnly(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.seed("A", "r", []int{1}, []int{2})
	got, err := s.nodes["A"].LocalQuery(mustQuery(t, `ans(x) :- r(x)`), AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("local answers = %v", got)
	}
}

func TestDistributedQueryChain(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.addNode("C", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.rule("r2", `B.r(x) <- C.r(x)`)
	s.seed("A", "r", []int{1})
	s.seed("B", "r", []int{2})
	s.seed("C", "r", []int{3})

	answers := s.query("A", `ans(x) :- r(x)`, AllAnswers)
	if len(answers) != 3 {
		t.Fatalf("answers = %v", answers)
	}
	// Query sessions must not materialise into the LDBs.
	if s.instanceOf("A").Has("r", intRow(3)) {
		t.Error("query leaked data into A's LDB")
	}
	if s.instanceOf("B").Has("r", intRow(3)) {
		t.Error("query leaked data into B's LDB")
	}
}

func TestDistributedQueryOnlyRelevantLinks(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1", "z/1")
	s.addNode("B", "r/1")
	s.addNode("C", "z/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.rule("r2", `A.z(x) <- C.z(x)`)
	s.seed("B", "r", []int{1})
	s.seed("C", "z", []int{9})

	rep := func() []string {
		_ = s.query("A", `ans(x) :- r(x)`, AllAnswers)
		reports := s.nodes["A"].Reports()
		return reports[len(reports)-1].Queried
	}()
	if len(rep) != 1 || rep[0] != "B" {
		t.Errorf("query touched %v, want only B", rep)
	}
}

func TestDistributedQueryJoinAcrossNodes(t *testing.T) {
	// A's query joins a local relation with one imported from B, which is
	// itself fed from C.
	s := newSim(t)
	s.addNode("A", "emp/2", "dept/2")
	s.addNode("B", "dept/2")
	s.addNode("C", "dept/2")
	s.rule("r1", `A.dept(x, y) <- B.dept(x, y)`)
	s.rule("r2", `B.dept(x, y) <- C.dept(x, y)`)
	s.seed("A", "emp", []int{1, 10})
	s.seed("C", "dept", []int{10, 100})

	answers := s.query("A", `ans(e, m) :- emp(e, d), dept(d, m)`, AllAnswers)
	if len(answers) != 1 || !answers[0].Equal(intRow(1, 100)) {
		t.Errorf("answers = %v", answers)
	}
}

func TestDistributedQueryCertainAnswersDropNulls(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "p/2")
	s.addNode("B", "q/1")
	s.rule("r1", `A.p(x, z) <- B.q(x)`) // existential z
	s.seed("B", "q", []int{1})

	all := s.query("A", `ans(x, z) :- p(x, z)`, AllAnswers)
	if len(all) != 1 || !all[0].HasNull() {
		t.Errorf("all answers = %v", all)
	}

	s2 := newSim(t)
	s2.addNode("A", "p/2")
	s2.addNode("B", "q/1")
	s2.rule("r1", `A.p(x, z) <- B.q(x)`)
	s2.seed("B", "q", []int{1})
	certain := s2.query("A", `ans(x, z) :- p(x, z)`, CertainAnswers)
	if len(certain) != 0 {
		t.Errorf("certain answers = %v", certain)
	}
	// But projecting away the null yields a certain answer.
	s3 := newSim(t)
	s3.addNode("A", "p/2")
	s3.addNode("B", "q/1")
	s3.rule("r1", `A.p(x, z) <- B.q(x)`)
	s3.seed("B", "q", []int{1})
	proj := s3.query("A", `ans(x) :- p(x, z)`, CertainAnswers)
	if len(proj) != 1 || !proj[0].Equal(intRow(1)) {
		t.Errorf("projected certain answers = %v", proj)
	}
}

func TestDistributedQueryEqualsLocalAfterUpdate(t *testing.T) {
	// The paper's motivation: query-time fetching and local queries after
	// a global update agree (acyclic topologies).
	build := func() *sim {
		s := newSim(t)
		s.addNode("A", "r/2")
		s.addNode("B", "r/2")
		s.addNode("C", "r/2")
		s.rule("r1", `A.r(x, y) <- B.r(x, y)`)
		s.rule("r2", `B.r(x, y) <- C.r(x, y)`)
		s.seed("A", "r", []int{1, 1})
		s.seed("B", "r", []int{2, 2})
		s.seed("C", "r", []int{3, 3})
		return s
	}
	q := `ans(x, y) :- r(x, y)`

	s1 := build()
	distributed := s1.query("A", q, AllAnswers)

	s2 := build()
	s2.update("A")
	local, err := s2.nodes["A"].LocalQuery(mustQuery(t, q), AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	if len(distributed) != len(local) {
		t.Fatalf("distributed %v vs local-after-update %v", distributed, local)
	}
	keys := make(map[string]bool)
	for _, a := range distributed {
		keys[a.Key()] = true
	}
	for _, a := range local {
		if !keys[a.Key()] {
			t.Errorf("answer %v only in local", a)
		}
	}
}

func TestQueryWithComparisonPushedAcrossHops(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x), x > 10`)
	s.seed("B", "r", []int{5}, []int{15})

	answers := s.query("A", `ans(x) :- r(x)`, AllAnswers)
	if len(answers) != 1 || !answers[0].Equal(intRow(15)) {
		t.Errorf("answers = %v", answers)
	}
}

func TestQueryNoRelevantLinksFinishesImmediately(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1", "z/1")
	s.addNode("B", "z/1")
	s.rule("r2", `A.z(x) <- B.z(x)`)
	s.seed("A", "r", []int{1})
	answers := s.query("A", `ans(x) :- r(x)`, AllAnswers)
	if len(answers) != 1 {
		t.Errorf("answers = %v", answers)
	}
}

func TestQuerySessionOverlayDiscarded(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{1})
	_ = s.query("A", `ans(x) :- r(x)`, AllAnswers)
	// A second identical query must re-fetch (overlay was per-session) and
	// still return the same answers.
	answers := s.query("A", `ans(x) :- r(x)`, AllAnswers)
	if len(answers) != 1 {
		t.Errorf("second query answers = %v", answers)
	}
	if s.nodes["A"].Wrapper().Count("r") != 0 {
		t.Error("overlay leaked into LDB")
	}
}

func TestQueryPathLabelsStopCycles(t *testing.T) {
	// Cyclic copy rules: the query still terminates and returns the
	// simple-path approximation (here: everything, since one hop suffices).
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.rule("r2", `B.r(x) <- A.r(x)`)
	s.seed("A", "r", []int{1})
	s.seed("B", "r", []int{2})
	answers := s.query("A", `ans(x) :- r(x)`, AllAnswers)
	if len(answers) != 2 {
		t.Errorf("answers = %v", answers)
	}
}

func TestQueryDuplicateSessionRejected(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	if _, err := s.nodes["A"].StartQuery("dup", mustQuery(t, `ans(x) :- r(x)`), AllAnswers); err != nil {
		t.Fatal(err)
	}
	if _, err := s.nodes["A"].StartQuery("dup", mustQuery(t, `ans(x) :- r(x)`), AllAnswers); err == nil {
		t.Error("duplicate SID accepted")
	}
	if _, err := s.nodes["A"].StartUpdate("dup"); err == nil {
		t.Error("duplicate SID accepted for update")
	}
}

func TestQueryInvalidRejected(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	bad2 := *mustQuery(t, `ans(x) :- r(x)`)
	bad2.Body = nil // empty body: unsafe
	if _, err := s.nodes["A"].StartQuery("q1", &bad2, AllAnswers); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := s.nodes["A"].LocalQuery(&bad2, AllAnswers); err == nil {
		t.Error("invalid local query accepted")
	}
}

func TestQueryAnswersStreamedIncrementally(t *testing.T) {
	// The origin gets its local answer in the StartQuery result and the
	// remote answer later: both must be streamed exactly once.
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("A", "r", []int{1})
	s.seed("B", "r", []int{2})

	sid := "q-stream"
	res, err := s.nodes["A"].StartQuery(sid, mustQuery(t, `ans(x) :- r(x)`), AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || !res.Answers[0].Equal(intRow(1)) {
		t.Fatalf("initial answers = %v", res.Answers)
	}
	s.dispatch("A", res, sid)
	s.run()
	total := s.answers[sid]
	if len(total) != 2 {
		t.Errorf("streamed answers = %v", total)
	}
	seen := map[string]bool{}
	for _, a := range total {
		if seen[a.Key()] {
			t.Errorf("answer %v streamed twice", a)
		}
		seen[a.Key()] = true
	}
}
