package core

import (
	"testing"

	"codb/internal/msg"
)

// scopedUpdate drives a query-dependent update through the simulator.
func (s *sim) scopedUpdate(origin string, rels ...string) msg.UpdateReport {
	sid := msg.NewSID(origin)
	res, err := s.nodes[origin].StartScopedUpdate(sid, rels)
	if err != nil {
		s.t.Fatal(err)
	}
	s.dispatch(origin, res, sid)
	s.run()
	for _, f := range s.finished[origin] {
		if f.SID == sid && f.Initiator {
			return f.Report
		}
	}
	s.t.Fatalf("scoped update %s did not complete at %s", sid, origin)
	return msg.UpdateReport{}
}

func TestScopedUpdateMaterialisesOnlyRelevant(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1", "z/1")
	s.addNode("B", "r/1", "z/1")
	s.rule("rr", `A.r(x) <- B.r(x)`)
	s.rule("rz", `A.z(x) <- B.z(x)`)
	s.seed("B", "r", []int{1})
	s.seed("B", "z", []int{9})

	rep := s.scopedUpdate("A", "r")
	if rep.Kind != msg.KindScoped {
		t.Errorf("kind = %v", rep.Kind)
	}
	a := s.instanceOf("A")
	if !a.Has("r", intRow(1)) {
		t.Error("relevant relation r not materialised")
	}
	if a.Has("z", intRow(9)) {
		t.Error("irrelevant relation z was materialised")
	}
	// Unlike a query, the data persists in the LDB.
	if s.nodes["A"].Wrapper().Count("r") != 1 {
		t.Error("scoped update did not commit to the LDB")
	}
}

func TestScopedUpdateTransitiveAndPersistsAtIntermediates(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.addNode("C", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.rule("r2", `B.r(x) <- C.r(x)`)
	s.seed("C", "r", []int{5})

	s.scopedUpdate("A", "r")

	if !s.instanceOf("A").Has("r", intRow(5)) {
		t.Error("origin missing transitive data")
	}
	// The intermediate node materialised too (it is an update, not a
	// query overlay).
	if !s.instanceOf("B").Has("r", intRow(5)) {
		t.Error("intermediate node did not materialise")
	}
}

func TestScopedUpdateRespectsPathLabels(t *testing.T) {
	// Cycle A<->B: terminates (path labels stop re-entry).
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.rule("r2", `B.r(x) <- A.r(x)`)
	s.seed("B", "r", []int{1})
	s.scopedUpdate("A", "r")
	if !s.instanceOf("A").Has("r", intRow(1)) {
		t.Error("cyclic scoped update lost data")
	}
}

func TestScopedUpdateValidation(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	if _, err := s.nodes["A"].StartScopedUpdate("x", nil); err == nil {
		t.Error("empty relation list accepted")
	}
	if _, err := s.nodes["A"].StartScopedUpdate("x", []string{"r"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.nodes["A"].StartScopedUpdate("x", []string{"r"}); err == nil {
		t.Error("duplicate sid accepted")
	}
}

func TestScopedUpdateNoRelevantLinks(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1", "z/1")
	s.addNode("B", "z/1")
	s.rule("rz", `A.z(x) <- B.z(x)`)
	rep := s.scopedUpdate("A", "r") // nothing relevant: finishes at once
	if rep.SentMsgs != 0 {
		t.Errorf("sent %d messages for an empty scope", rep.SentMsgs)
	}
}
