package core

import (
	"codb/internal/cq"
	"codb/internal/msg"
)

// The paper's per-link open/closed protocol (§3), layered over the
// Dijkstra–Scholten detector for early local completion and reporting:
//
//   - An exporting node closes an incoming link i once every outgoing link
//     relevant for i is closed (trivially so for nodes with no relevant
//     outgoing links) — there is nothing left that could produce new data
//     for i. It notifies the importer, which marks its outgoing link
//     closed, possibly cascading.
//   - Links on dependency cycles can never satisfy the condition locally;
//     they are force-closed when the initiator's detector fires, which
//     witnesses the paper's quiescence condition ("all query results did
//     not bring any new data").
//
// Close notifications are basic messages of the diffusing computation, so
// termination is only declared after every close has been delivered.

// handleLinkClose processes an exporter's notification that one of our
// outgoing links is closed for this session.
func (n *Node) handleLinkClose(from string, lc *msg.LinkClose) Result {
	var r Result
	s, _ := n.getSession(lc.SID, msg.KindUpdate, from)
	n.ds.Received(lc.SID, from)
	if !s.done {
		if rs := n.rules[lc.RuleID]; rs != nil && rs.rule.Target == n.cfg.Self {
			s.outClosed[lc.RuleID] = true
			n.closeCheck(s, &r)
		}
	}
	n.flushDS(s, &r)
	return r
}

// closeCheck closes every incoming link whose relevant outgoing links are
// all closed, notifying the importers.
func (n *Node) closeCheck(s *session, r *Result) {
	if s.done {
		return
	}
	for {
		progressed := false
		for _, in := range n.incomingFor(s) {
			if s.inClosed[in.ID] {
				continue
			}
			// For update sessions the link must have done its initial
			// export; query links activate on request.
			if s.kind == msg.KindUpdate && !s.evaluated[in.ID] {
				continue
			}
			if !n.relevantAllClosed(s, in) {
				continue
			}
			s.inClosed[in.ID] = true
			s.rep.LinksClosedEarly++
			to := in.Target
			if s.kind != msg.KindUpdate {
				to = s.activeIncoming[in.ID]
			}
			r.send(to, &msg.LinkClose{SID: s.sid, RuleID: in.ID})
			n.ds.Sent(s.sid, to, 1)
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// incomingFor returns the incoming links participating in the session.
func (n *Node) incomingFor(s *session) []*cq.Rule {
	if s.kind == msg.KindUpdate {
		return n.Incoming()
	}
	var out []*cq.Rule
	for id := range s.activeIncoming {
		if rule := n.ruleOf(s, id); rule != nil {
			out = append(out, rule)
		}
	}
	return out
}

// relevantAllClosed reports whether every outgoing link relevant for the
// incoming link is closed. For query sessions only requested outgoing links
// participate.
func (n *Node) relevantAllClosed(s *session, in *cq.Rule) bool {
	for _, o := range n.Outgoing() {
		if s.kind != msg.KindUpdate && !s.requestedOut[o.ID] {
			continue
		}
		if cq.DependsOn(in, o) && !s.outClosed[o.ID] {
			return false
		}
	}
	return true
}

// forceCloseAll closes any link still open when the session completes (the
// quiescence condition on cyclic dependencies).
func (n *Node) forceCloseAll(s *session) {
	for _, in := range n.incomingFor(s) {
		if !s.inClosed[in.ID] {
			s.inClosed[in.ID] = true
			s.rep.LinksClosedForced++
		}
	}
}
