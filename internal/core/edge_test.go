package core

import (
	"testing"

	"codb/internal/msg"
	"codb/internal/relation"
)

// TestHandleUnknownPayloadIgnored: the dispatcher must not blow up on
// payload types it does not handle.
func TestHandleUnknownPayloadIgnored(t *testing.T) {
	s := newSim(t)
	n := s.addNode("A", "r/1")
	res := n.Handle(msg.Envelope{From: "x", Payload: &msg.Discovery{}})
	if len(res.Out) != 0 || len(res.Finished) != 0 {
		t.Errorf("unknown payload produced output: %+v", res)
	}
}

// TestStaleLinkCloseAfterDone: a link-close arriving after the session
// completed must be acknowledged without corrupting state.
func TestStaleLinkCloseAfterDone(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{1})
	s.update("A")

	// Replay a LinkClose for the finished session.
	a := s.nodes["A"]
	var sid string
	for _, rep := range a.Reports() {
		sid = rep.SID
	}
	res := a.Handle(msg.Envelope{From: "B", Payload: &msg.LinkClose{SID: sid, RuleID: "r1"}})
	// The message must be acknowledged (directly or as a deferred parent
	// ack) so B's detector would not wedge.
	ackSeen := false
	for _, o := range res.Out {
		if ack, ok := o.Payload.(*msg.SessionAck); ok && ack.SID == sid {
			ackSeen = true
		}
	}
	if !ackSeen {
		t.Errorf("stale LinkClose not acknowledged: %+v", res.Out)
	}
	if len(res.Finished) != 0 {
		t.Error("stale message re-finished the session")
	}
}

// TestDataForUnknownRuleAcknowledged: data for a rule this node does not
// know (topology changed mid-session) must still be acknowledged.
func TestDataForUnknownRuleAcknowledged(t *testing.T) {
	s := newSim(t)
	a := s.addNode("A", "r/1")
	data := &msg.SessionData{
		SID: "ghost-session", Kind: msg.KindUpdate, Origin: "B",
		RuleID: "no-such-rule", Bindings: []relation.Tuple{{relation.Int(1)}},
		Path: []string{"B"},
	}
	res := a.Handle(msg.Envelope{From: "B", Payload: data})
	ackSeen := false
	for _, o := range res.Out {
		if ack, ok := o.Payload.(*msg.SessionAck); ok && ack.SID == "ghost-session" && o.To == "B" {
			ackSeen = true
		}
	}
	if !ackSeen {
		t.Errorf("data for unknown rule not acknowledged: %+v", res.Out)
	}
	if a.Wrapper().Count("r") != 0 {
		t.Error("unknown-rule data was materialised")
	}
}

// TestDoneForUnknownSessionIgnored: completion notices for sessions this
// node never saw are dropped without forwarding loops.
func TestDoneForUnknownSessionIgnored(t *testing.T) {
	s := newSim(t)
	a := s.addNode("A", "r/1")
	res := a.Handle(msg.Envelope{From: "B", Payload: &msg.SessionDone{SID: "never-seen", Origin: "B"}})
	if len(res.Out) != 0 {
		t.Errorf("unknown Done forwarded: %+v", res.Out)
	}
}

// TestCompensateLostUnblocksInitiator: if a request cannot be delivered,
// compensating the lost message lets the initiator terminate.
func TestCompensateLostUnblocksInitiator(t *testing.T) {
	s := newSim(t)
	a := s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.ruleOn("A", "r1", `A.r(x) <- B.r(x)`)

	sid := "comp-1"
	res, err := a.StartUpdate(sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 1 {
		t.Fatalf("expected one request, got %+v", res.Out)
	}
	// Pretend the send failed: compensate instead of delivering.
	res2 := a.CompensateLost(sid, "B", 1)
	finished := false
	for _, f := range res2.Finished {
		if f.SID == sid && f.Initiator {
			finished = true
		}
	}
	if !finished {
		t.Errorf("compensation did not terminate the session: %+v", res2)
	}
	// Compensating an unknown session is a no-op.
	if out := a.CompensateLost("ghost", "B", 3); len(out.Out) != 0 || len(out.Finished) != 0 {
		t.Errorf("ghost compensation produced output: %+v", out)
	}
}

// TestReconfigurationDuringUpdate: rules change at a node while an update
// is in flight ("even if nodes and coordination rules appear or disappear
// during the computation, the proposed algorithm will eventually terminate"
// — paper §1). The session must still terminate; the result may reflect
// either topology, but it must be a subset of the old-topology fixpoint
// union the new one.
func TestReconfigurationDuringUpdate(t *testing.T) {
	for deliveries := 0; deliveries < 12; deliveries += 3 {
		s := newSim(t)
		s.addNode("A", "r/1")
		s.addNode("B", "r/1")
		s.addNode("C", "r/1")
		s.rule("r1", `A.r(x) <- B.r(x)`)
		s.rule("r2", `B.r(x) <- C.r(x)`)
		s.seed("B", "r", []int{1})
		s.seed("C", "r", []int{2})

		sid := s.startUpdateNoWait("A")
		// Deliver a few messages, then rip out B's rules mid-session.
		for i := 0; i < deliveries && len(s.queue) > 0; i++ {
			item := s.queue[0]
			s.queue = s.queue[1:]
			res := s.nodes[item.to].Handle(item.env)
			s.dispatch(item.to, res, sidOf(item.env.Payload))
		}
		if err := s.nodes["B"].SetRules(nil); err != nil {
			t.Fatal(err)
		}
		s.run() // must quiesce (the sim fails the test on a stuck queue)
		s.assertFinished("A", sid)
	}
}

// TestRuleAddedDuringUpdate: a rule appearing mid-session does not break
// termination either (its data flows in the next update).
func TestRuleAddedDuringUpdate(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.addNode("C", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{1})
	s.seed("C", "r", []int{2})

	sid := s.startUpdateNoWait("A")
	// Add the B<-C rule while the session is in flight.
	s.rule("r2", `B.r(x) <- C.r(x)`)
	s.run()
	s.assertFinished("A", sid)

	// A follow-up update picks up the new edge.
	s.update("A")
	if !s.instanceOf("A").Has("r", intRow(2)) {
		t.Error("second update missed the late rule's data")
	}
}

// TestReportsRingBuffer: the per-node report store is bounded.
func TestReportsRingBuffer(t *testing.T) {
	s := newSim(t)
	s.addNodeCfg(Config{Self: "A", MaxReports: 3}, "r/1")
	for i := 0; i < 5; i++ {
		s.update("A")
	}
	reports := s.nodes["A"].Reports()
	if len(reports) != 3 {
		t.Errorf("reports retained = %d, want 3", len(reports))
	}
}

// TestActiveSessionsListing: unfinished sessions are visible, finished ones
// are not.
func TestActiveSessionsListing(t *testing.T) {
	s := newSim(t)
	a := s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.ruleOn("A", "r1", `A.r(x) <- B.r(x)`)
	if _, err := a.StartUpdate("visible"); err != nil {
		t.Fatal(err)
	}
	// Not yet delivered/finished: the session is active.
	if got := a.ActiveSessions(); len(got) != 1 || got[0] != "visible" {
		t.Errorf("ActiveSessions = %v", got)
	}
}
