package core

import (
	"testing"

	"codb/internal/chase"
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/relation"
	"codb/internal/storage"
)

func mustQuery(t *testing.T, src string) *cq.Query {
	t.Helper()
	q, err := cq.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func intRow(vs ...int) relation.Tuple {
	t := make(relation.Tuple, len(vs))
	for i, v := range vs {
		t[i] = relation.Int(v)
	}
	return t
}

func TestUpdateChainMaterialisesEverything(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.addNode("C", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.rule("r2", `B.r(x) <- C.r(x)`)
	s.seed("C", "r", []int{1}, []int{2})
	s.seed("B", "r", []int{3})
	s.seed("A", "r", []int{4})

	rep := s.update("A")

	a := s.instanceOf("A")
	for _, v := range []int{1, 2, 3, 4} {
		if !a.Has("r", intRow(v)) {
			t.Errorf("A missing r(%d)", v)
		}
	}
	b := s.instanceOf("B")
	for _, v := range []int{1, 2, 3} {
		if !b.Has("r", intRow(v)) {
			t.Errorf("B missing r(%d)", v)
		}
	}
	if b.Has("r", intRow(4)) {
		t.Error("B has r(4): data flowed against the rule direction")
	}
	if rep.SID == "" || rep.Origin != "A" {
		t.Errorf("report = %+v", rep)
	}
}

func TestUpdateInitiatorWithNoRulesFinishesImmediately(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	rep := s.update("A")
	if rep.SentMsgs != 0 || len(rep.Queried) != 0 {
		t.Errorf("lonely update report = %+v", rep)
	}
}

func TestUpdateCopyCycleConverges(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.rule("r2", `B.r(x) <- A.r(x)`)
	s.seed("A", "r", []int{1})
	s.seed("B", "r", []int{2})

	s.update("A")

	for _, n := range []string{"A", "B"} {
		in := s.instanceOf(n)
		if !in.Has("r", intRow(1)) || !in.Has("r", intRow(2)) {
			t.Errorf("%s = %v", n, in.Tuples("r"))
		}
	}
}

func TestUpdateMatchesOracleChainJoinExistential(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "p/2")
	s.addNode("B", "e/2", "lab/2")
	s.addNode("C", "e/2")
	// A imports joined pairs from B with an existential tag; B imports
	// edges from C.
	s.rule("r1", `A.p(x, z) <- B.e(x, y), B.lab(y, z)`)
	s.rule("r2", `B.e(x, y) <- C.e(x, y)`)
	s.seed("C", "e", []int{1, 2}, []int{2, 3})
	s.seed("B", "lab", []int{2, 20}, []int{3, 30})

	s.update("A")

	// Oracle.
	rules := []*cq.Rule{
		cq.MustParseRule("r1", `A.p(x, z) <- B.e(x, y), B.lab(y, z)`),
		cq.MustParseRule("r2", `B.e(x, y) <- C.e(x, y)`),
	}
	start := map[string]relation.Instance{
		"C": relation.NewInstance(), "B": relation.NewInstance(), "A": relation.NewInstance(),
	}
	start["C"].Insert("e", intRow(1, 2))
	start["C"].Insert("e", intRow(2, 3))
	start["B"].Insert("lab", intRow(2, 20))
	start["B"].Insert("lab", intRow(3, 30))
	oracle, _, err := chase.Fixpoint(rules, start, chase.Options{MaxDepth: DefaultMaxDepth})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []string{"A", "B"} {
		got := s.instanceOf(node)
		want := oracle[node]
		if !relation.EqualUpToNulls(got, want) {
			t.Errorf("node %s:\n got %v\nwant %v", node, got, want)
		}
	}
	// Deterministic Skolem nulls: not just isomorphic, identical.
	gotA := s.instanceOf("A").Tuples("p")
	wantA := oracle["A"].Tuples("p")
	for i := range gotA {
		if !gotA[i].Equal(wantA[i]) {
			t.Errorf("A.p[%d]: %v vs %v (exact label match expected)", i, gotA[i], wantA[i])
		}
	}
}

func TestUpdateExistentialCycleCutOffAtDepth(t *testing.T) {
	s := newSim(t)
	s.addNodeCfg(Config{Self: "A", MaxDepth: 4}, "r/2")
	s.addNodeCfg(Config{Self: "B", MaxDepth: 4}, "s/1")
	s.rule("r1", `A.r(x, z) <- B.s(x)`)
	s.rule("r2", `B.s(z) <- A.r(x, z)`)
	s.seed("B", "s", []int{1})

	s.update("A")

	// Same counts as the oracle at MaxDepth 4: s gets 1+4, r gets 4.
	if got := len(s.instanceOf("B")["s"]); got != 5 {
		t.Errorf("B.s = %d tuples, want 5", got)
	}
	if got := len(s.instanceOf("A")["r"]); got != 4 {
		t.Errorf("A.r = %d tuples, want 4", got)
	}
	// The depth bound must have been reported.
	var skipped int
	for _, n := range []string{"A", "B"} {
		for _, rep := range s.nodes[n].Reports() {
			skipped += rep.SkippedDepth
		}
	}
	if skipped == 0 {
		t.Error("no SkippedDepth reported on a diverging chase")
	}
}

func TestUpdateRuleAdoptionWithoutBroadcast(t *testing.T) {
	// Only the importer declares the rule; the exporter learns it from the
	// update request (paper §2: requests carry rule definitions).
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.ruleOn("A", "r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{7})

	s.update("A")

	if !s.instanceOf("A").Has("r", intRow(7)) {
		t.Error("A did not receive data over the request-carried rule")
	}
	if len(s.nodes["B"].Incoming()) != 1 {
		t.Error("B did not adopt the rule")
	}
}

func TestUpdateDiamondDedupSavesTraffic(t *testing.T) {
	// Diamond: A imports from B and C, both import from D. D's data
	// reaches A twice without content dedup at A (sink dedups), and the
	// sent caches at B/C suppress nothing across paths (different links),
	// so compare a diamond run with dedup against one without: disabling
	// dedup must not change the result but may add messages.
	build := func(disable bool) (*sim, msg.UpdateReport) {
		s := newSim(t)
		s.addNodeCfg(Config{Self: "A", DisableDedup: disable}, "r/1")
		s.addNodeCfg(Config{Self: "B", DisableDedup: disable}, "r/1")
		s.addNodeCfg(Config{Self: "C", DisableDedup: disable}, "r/1")
		s.addNodeCfg(Config{Self: "D", DisableDedup: disable}, "r/1")
		s.rule("rAB", `A.r(x) <- B.r(x)`)
		s.rule("rAC", `A.r(x) <- C.r(x)`)
		s.rule("rBD", `B.r(x) <- D.r(x)`)
		s.rule("rCD", `C.r(x) <- D.r(x)`)
		s.seed("D", "r", []int{1}, []int{2}, []int{3})
		rep := s.update("A")
		return s, rep
	}
	withDedup, _ := build(false)
	withoutDedup, _ := build(true)
	a1, a2 := withDedup.instanceOf("A"), withoutDedup.instanceOf("A")
	if !relation.EqualUpToNulls(a1, a2) {
		t.Error("dedup changed the result")
	}
	msgs := func(s *sim) int {
		total := 0
		for _, n := range s.nodes {
			for _, rep := range n.Reports() {
				total += rep.SentMsgs
			}
		}
		return total
	}
	m1, m2 := msgs(withDedup), msgs(withoutDedup)
	if m1 > m2 {
		t.Errorf("dedup increased traffic: %d vs %d", m1, m2)
	}
}

func TestUpdateNaiveMatchesSemiNaive(t *testing.T) {
	build := func(naive bool) *sim {
		s := newSim(t)
		s.addNodeCfg(Config{Self: "A", Naive: naive}, "r/1")
		s.addNodeCfg(Config{Self: "B", Naive: naive}, "r/1")
		s.addNodeCfg(Config{Self: "C", Naive: naive}, "r/1")
		s.rule("r1", `A.r(x) <- B.r(x)`)
		s.rule("r2", `B.r(x) <- C.r(x)`)
		s.rule("r3", `C.r(x) <- A.r(x)`) // cycle
		s.seed("A", "r", []int{1})
		s.seed("B", "r", []int{2})
		s.seed("C", "r", []int{3})
		s.update("A")
		return s
	}
	semi, naive := build(false), build(true)
	for _, n := range []string{"A", "B", "C"} {
		if !relation.EqualUpToNulls(semi.instanceOf(n), naive.instanceOf(n)) {
			t.Errorf("node %s: naive and semi-naive disagree", n)
		}
		if got := len(semi.instanceOf(n)["r"]); got != 3 {
			t.Errorf("node %s has %d tuples, want 3", n, got)
		}
	}
}

func TestUpdateMediatorNode(t *testing.T) {
	// B has no LDB: it mediates between A and C through its wrapper.
	s := newSim(t)
	s.addNode("A", "r/1")
	schema := relation.NewSchema()
	schema.MustAdd(relDef("r/1"))
	s.addNodeCfg(Config{Self: "B", Wrapper: NewMediatorWrapper(schema)})
	s.addNode("C", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.rule("r2", `B.r(x) <- C.r(x)`)
	s.seed("C", "r", []int{42})

	s.update("A")

	if !s.instanceOf("A").Has("r", intRow(42)) {
		t.Error("data did not flow through the mediator")
	}
}

func TestUpdateStatsChainPathLength(t *testing.T) {
	s := newSim(t)
	names := []string{"A", "B", "C", "D", "E"}
	for _, n := range names {
		s.addNode(n, "r/1")
	}
	for i := 0; i < len(names)-1; i++ {
		s.rule("r"+names[i], names[i]+`.r(x) <- `+names[i+1]+`.r(x)`)
	}
	s.seed("E", "r", []int{1})

	s.update("A")

	// E's tuple travels E->D->C->B->A: the path at A has 4 hops.
	maxPath := 0
	for _, n := range names {
		for _, rep := range s.nodes[n].Reports() {
			if rep.LongestPath > maxPath {
				maxPath = rep.LongestPath
			}
		}
	}
	if maxPath != len(names)-1 {
		t.Errorf("longest propagation path = %d, want %d", maxPath, len(names)-1)
	}
}

func TestUpdateReportQueriedAndSentTo(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{1})

	rep := s.update("A")
	if len(rep.Queried) != 1 || rep.Queried[0] != "B" {
		t.Errorf("Queried = %v", rep.Queried)
	}
	var bRep msg.UpdateReport
	for _, r := range s.nodes["B"].Reports() {
		bRep = r
	}
	if len(bRep.SentTo) != 1 || bRep.SentTo[0] != "A" {
		t.Errorf("B SentTo = %v", bRep.SentTo)
	}
	if bRep.SentMsgs == 0 || bRep.SentBytes == 0 {
		t.Errorf("B sent stats = %+v", bRep)
	}
	aRep := s.nodes["A"].Reports()[0]
	if aRep.MsgsPerRule["r1"] == 0 || aRep.TuplesPerRule["r1"] != 1 {
		t.Errorf("A per-rule stats = %+v", aRep)
	}
}

func TestLinkCloseProtocolChainClosesEarly(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.addNode("C", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.rule("r2", `B.r(x) <- C.r(x)`)
	s.seed("C", "r", []int{1})

	s.update("A")

	early, forced := 0, 0
	for _, n := range []string{"A", "B", "C"} {
		for _, rep := range s.nodes[n].Reports() {
			early += rep.LinksClosedEarly
			forced += rep.LinksClosedForced
		}
	}
	if early != 2 {
		t.Errorf("early closes = %d, want 2 (both links on an acyclic chain)", early)
	}
	if forced != 0 {
		t.Errorf("forced closes = %d, want 0", forced)
	}
}

func TestLinkCloseProtocolCycleForcedAtQuiescence(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.rule("r2", `B.r(x) <- A.r(x)`)
	s.seed("A", "r", []int{1})

	s.update("A")

	forced := 0
	for _, n := range []string{"A", "B"} {
		for _, rep := range s.nodes[n].Reports() {
			forced += rep.LinksClosedForced
		}
	}
	if forced == 0 {
		t.Error("cyclic links should be force-closed at quiescence")
	}
}

func TestMultipleSequentialUpdates(t *testing.T) {
	s := newSim(t)
	s.addNode("A", "r/1")
	s.addNode("B", "r/1")
	s.rule("r1", `A.r(x) <- B.r(x)`)
	s.seed("B", "r", []int{1})
	s.update("A")
	s.seed("B", "r", []int{2})
	s.update("A")
	a := s.instanceOf("A")
	if !a.Has("r", intRow(1)) || !a.Has("r", intRow(2)) {
		t.Errorf("A = %v", a.Tuples("r"))
	}
	if got := len(s.nodes["A"].Reports()); got != 2 {
		t.Errorf("A has %d reports, want 2", got)
	}
}

func TestRuleManagement(t *testing.T) {
	db := storage.MustOpenMem()
	db.DefineRelation(relDef("r/1"))
	n, err := NewNode(Config{Self: "A", Wrapper: NewStoreWrapper(db)})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddRule("r1", `A.r(x) <- B.r(x)`); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRule("r1", `A.r(x) <- B.r(x)`); err != nil {
		t.Errorf("idempotent re-add rejected: %v", err)
	}
	if err := n.AddRule("bad", `C.r(x) <- B.r(x)`); err == nil {
		t.Error("foreign rule accepted")
	}
	if err := n.AddRule("self", `A.r(x) <- A.r(x)`); err == nil {
		t.Error("self-loop rule accepted")
	}
	if len(n.Outgoing()) != 1 || len(n.Incoming()) != 0 {
		t.Error("link classification wrong")
	}
	if got := n.Acquaintances(); len(got) != 1 || got[0] != "B" {
		t.Errorf("Acquaintances = %v", got)
	}
	if n.RuleText("r1") == "" || n.RuleText("ghost") != "" {
		t.Error("RuleText wrong")
	}
	n.RemoveRule("r1")
	if len(n.Rules()) != 0 {
		t.Error("RemoveRule did not remove")
	}
	if err := n.SetRules([]msg.RuleDef{
		{ID: "a", Text: `A.r(x) <- B.r(x)`},
		{ID: "b", Text: `C.r(x) <- D.r(x)`}, // irrelevant: ignored
	}); err != nil {
		t.Fatal(err)
	}
	if len(n.Rules()) != 1 {
		t.Errorf("SetRules kept %d rules, want 1", len(n.Rules()))
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewNode(Config{Self: "A"}); err == nil {
		t.Error("missing wrapper accepted")
	}
}
