// Package workload generates deterministic synthetic data for the demo
// experiments: each peer's data(k, v) relation is seeded with a configurable
// number of tuples, with a configurable fraction shared between peers (so
// duplicate suppression has something to suppress, as in real overlapping
// databases).
package workload

import (
	"math/rand"

	"codb/internal/relation"
)

// Spec describes a workload.
type Spec struct {
	// TuplesPerNode is the seed cardinality of data at each peer.
	TuplesPerNode int
	// Overlap in [0,1] is the fraction of each peer's tuples drawn from a
	// shared pool (identical across peers); the rest are node-unique.
	Overlap float64
	// KeyClash in [0,1] is the fraction of each peer's tuples whose *key*
	// is drawn from a small shared key space while the value stays
	// node-unique — same key, different tuples. Projection rules then
	// re-derive the same imported tuple from distinct sources, which is
	// what the sent caches suppress.
	KeyClash float64
	// Domain bounds the generated values (0 = large, 1e6). Small domains
	// create join partners for JoinRule workloads.
	Domain int
	// Seed makes generation deterministic.
	Seed int64
}

// Generate produces the seed relation data(k, v) for each named node.
func Generate(nodes []string, spec Spec) map[string][]relation.Tuple {
	rnd := rand.New(rand.NewSource(spec.Seed))
	domain := spec.Domain
	if domain <= 0 {
		domain = 1_000_000
	}
	shared := make([]relation.Tuple, 0)
	sharedCount := int(float64(spec.TuplesPerNode) * spec.Overlap)
	for i := 0; i < sharedCount; i++ {
		shared = append(shared, relation.Tuple{
			relation.Int(i % domain),
			relation.Int(rnd.Intn(domain)),
		})
	}
	clashCount := int(float64(spec.TuplesPerNode) * spec.KeyClash)
	clashKeys := spec.TuplesPerNode/4 + 1 // small shared key space
	out := make(map[string][]relation.Tuple, len(nodes))
	for nodeIdx, node := range nodes {
		tuples := make([]relation.Tuple, 0, spec.TuplesPerNode)
		tuples = append(tuples, shared...)
		for i := 0; i < clashCount && len(tuples) < spec.TuplesPerNode; i++ {
			tuples = append(tuples, relation.Tuple{
				relation.Int(i % clashKeys),
				relation.Int((1_000 + nodeIdx*spec.TuplesPerNode + i) % domain),
			})
		}
		for i := len(tuples); i < spec.TuplesPerNode; i++ {
			// Unique keys per node: offset by node index in a high range.
			k := (1_000_000 + nodeIdx*spec.TuplesPerNode + i) % domain
			tuples = append(tuples, relation.Tuple{
				relation.Int(k),
				relation.Int(rnd.Intn(domain)),
			})
		}
		out[node] = tuples
	}
	return out
}

// TotalDistinct returns the number of distinct tuples across the whole
// workload (what a fully-connected materialisation converges to).
func TotalDistinct(w map[string][]relation.Tuple) int {
	seen := make(map[string]bool)
	for _, ts := range w {
		for _, t := range ts {
			seen[t.Key()] = true
		}
	}
	return len(seen)
}
