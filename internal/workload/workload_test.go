package workload

import "testing"

func TestGenerateSizesAndDeterminism(t *testing.T) {
	nodes := []string{"A", "B", "C"}
	spec := Spec{TuplesPerNode: 100, Overlap: 0.2, Seed: 7}
	w1 := Generate(nodes, spec)
	w2 := Generate(nodes, spec)
	for _, n := range nodes {
		if len(w1[n]) != 100 {
			t.Errorf("node %s: %d tuples", n, len(w1[n]))
		}
		for i := range w1[n] {
			if !w1[n][i].Equal(w2[n][i]) {
				t.Fatalf("node %s tuple %d differs across runs", n, i)
			}
		}
	}
}

func TestOverlapSharing(t *testing.T) {
	nodes := []string{"A", "B"}
	w := Generate(nodes, Spec{TuplesPerNode: 100, Overlap: 0.5, Seed: 1})
	keys := make(map[string]int)
	for _, n := range nodes {
		seen := make(map[string]bool)
		for _, tup := range w[n] {
			k := tup.Key()
			if !seen[k] {
				seen[k] = true
				keys[k]++
			}
		}
	}
	shared := 0
	for _, c := range keys {
		if c == 2 {
			shared++
		}
	}
	if shared != 50 {
		t.Errorf("shared tuples = %d, want 50", shared)
	}
	// TotalDistinct = 50 shared + 50 unique per node.
	if got := TotalDistinct(w); got != 150 {
		t.Errorf("TotalDistinct = %d, want 150", got)
	}
}

func TestZeroOverlap(t *testing.T) {
	w := Generate([]string{"A", "B"}, Spec{TuplesPerNode: 10, Overlap: 0, Seed: 2})
	if got := TotalDistinct(w); got != 20 {
		t.Errorf("TotalDistinct = %d, want 20", got)
	}
}

func TestFullOverlap(t *testing.T) {
	w := Generate([]string{"A", "B", "C"}, Spec{TuplesPerNode: 10, Overlap: 1, Seed: 3})
	if got := TotalDistinct(w); got != 10 {
		t.Errorf("TotalDistinct = %d, want 10", got)
	}
}
