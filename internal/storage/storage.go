// Package storage implements coDB's embedded relational engine: the Local
// Database (LDB) each peer manages. Relations are sets of typed tuples
// (set semantics, as required by the update algorithm's "T′ = T \ R" step),
// stored in an in-memory heap with a B+tree primary index over the
// order-preserving tuple encoding and optional secondary indexes per
// attribute. Durability is optional: when opened with a directory, every
// commit is logged to a write-ahead log and periodically checkpointed into a
// snapshot file; recovery loads the snapshot and replays the log.
//
// Concurrency: any number of readers and one writer at a time, coordinated
// with an internal RWMutex. Transactions stage their writes privately and
// apply them atomically at Commit.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"codb/internal/btree"
	"codb/internal/relation"
	"codb/internal/wal"
)

// Options configures Open.
type Options struct {
	// Dir is the durability directory. Empty means memory-only: no WAL,
	// no snapshots, nothing survives Close.
	Dir string
	// SyncOnCommit fsyncs the WAL on every commit. Off by default; the
	// demo workloads favour throughput, and the WAL still preserves
	// prefix-consistency on crash.
	SyncOnCommit bool
	// CheckpointEvery triggers an automatic checkpoint after this many
	// commits (0 disables automatic checkpoints).
	CheckpointEvery int
	// ChangelogLimit bounds the per-relation in-memory changelog backing
	// Changes (0 selects DefaultChangelogLimit, negative disables change
	// capture entirely). When a relation's changelog overflows, its oldest
	// entries are dropped and Changes reports "history lost" for
	// watermarks that precede the drop.
	ChangelogLimit int
}

// DefaultChangelogLimit is the per-relation changelog bound used when
// Options.ChangelogLimit is zero.
const DefaultChangelogLimit = 4096

// DB is an embedded relational database.
type DB struct {
	mu     sync.RWMutex
	schema *relation.Schema
	tables map[string]*table
	opts   Options
	log    *wal.Log // nil when memory-only
	closed bool

	// lsn is the monotone commit sequence number: every committed
	// transaction (DDL included) gets the next value. It survives restarts
	// (persisted in the snapshot, advanced by WAL replay), so export
	// watermarks taken against it stay meaningful across process lives.
	lsn uint64

	commitsSinceCheckpoint int
}

type table struct {
	def     *relation.RelDef
	rows    []relation.Tuple        // heap; nil = deleted slot
	free    []int                   // reusable slots
	primary *btree.Map[int]         // tuple key -> slot
	second  map[int]*btree.Map[int] // attr position -> (attr value ‖ tuple key) -> slot

	// Change capture for incremental export (see DB.Changes): committed
	// inserts in commit order, each stamped with its commit LSN. Deletes
	// are not replayable as a monotone delta, so they poison history
	// instead: lostBelow rises to the deleting commit's LSN. Changelog
	// truncation raises lostBelow the same way.
	changes   []change
	lostBelow uint64 // history before (and at) this LSN is unavailable

	// snap is the cached immutable view backing DB.Snapshot (copy-on-write
	// per relation): built lazily under snapMu by the first snapshot after
	// a change, shared by later snapshots, reset by insert/delete. See
	// table.snapshot for the locking discipline.
	snapMu sync.Mutex
	snap   *tableSnap
}

// change is one captured committed insert.
type change struct {
	lsn   uint64
	tuple relation.Tuple
}

func newTable(def *relation.RelDef) *table {
	return &table{def: def, primary: btree.New[int](), second: make(map[int]*btree.Map[int])}
}

const (
	snapshotName = "snapshot.cdb"
	logName      = "log.wal"
)

// Open opens (or creates) a database. With a Dir, prior state is recovered
// from the snapshot and WAL in that directory.
func Open(opts Options) (*DB, error) {
	db := &DB{
		schema: relation.NewSchema(),
		tables: make(map[string]*table),
		opts:   opts,
	}
	if opts.Dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir: %w", err)
	}
	if err := db.loadSnapshot(filepath.Join(opts.Dir, snapshotName)); err != nil {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(opts.Dir, logName), db.applyLogRecord)
	if err != nil {
		return nil, err
	}
	db.log = log
	return db, nil
}

// MustOpenMem opens a memory-only database, panicking on error; convenience
// for tests and examples.
func MustOpenMem() *DB {
	db, err := Open(Options{})
	if err != nil {
		panic(err)
	}
	return db
}

// Schema returns a snapshot copy of the schema.
func (db *DB) Schema() *relation.Schema {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.schema.Clone()
}

// Rel returns the definition of a relation, or nil.
func (db *DB) Rel(name string) *relation.RelDef {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.schema.Rel(name)
}

// DefineRelation adds a relation to the schema (DDL). Logged for recovery.
func (db *DB) DefineRelation(def *relation.RelDef) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	if err := db.schema.Add(def); err != nil {
		return err
	}
	db.tables[def.Name] = newTable(def)
	db.lsn++
	if db.log != nil {
		rec := encodeDDL(def)
		if err := db.log.Append(rec); err != nil {
			return err
		}
		if db.opts.SyncOnCommit {
			if err := db.log.Sync(); err != nil {
				return err
			}
		}
		db.commitsSinceCheckpoint++
	}
	return nil
}

// DefineSchema defines every relation of the given schema.
func (db *DB) DefineSchema(s *relation.Schema) error {
	for _, name := range s.Names() {
		def := s.Rel(name)
		attrs := make([]relation.Attr, len(def.Attrs))
		copy(attrs, def.Attrs)
		if err := db.DefineRelation(&relation.RelDef{Name: def.Name, Attrs: attrs}); err != nil {
			return err
		}
	}
	return nil
}

// IndexOn creates a secondary index over one attribute of a relation,
// enabling ScanEq/ScanRange on that attribute. Idempotent.
func (db *DB) IndexOn(rel, attr string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.tables[rel]
	if t == nil {
		return fmt.Errorf("storage: unknown relation %q", rel)
	}
	pos := t.def.AttrIndex(attr)
	if pos < 0 {
		return fmt.Errorf("storage: relation %s has no attribute %q", rel, attr)
	}
	if _, ok := t.second[pos]; ok {
		return nil
	}
	idx := btree.New[int]()
	for slot, row := range t.rows {
		if row != nil {
			idx.Put(secondaryKey(row, pos), slot)
		}
	}
	t.second[pos] = idx
	return nil
}

func secondaryKey(t relation.Tuple, pos int) string {
	k := relation.EncodeValue(nil, t[pos])
	k = relation.EncodeTuple(k, t)
	return string(k)
}

var errClosed = fmt.Errorf("storage: database is closed")

// Has reports whether the tuple is present in the relation.
func (db *DB) Has(rel string, tuple relation.Tuple) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[rel]
	if t == nil {
		return false
	}
	_, ok := t.primary.Get(tuple.Key())
	return ok
}

// Count returns the number of tuples in the relation.
func (db *DB) Count(rel string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[rel]
	if t == nil {
		return 0
	}
	return t.primary.Len()
}

// Scan calls fn for every tuple of the relation in key order, under a read
// lock; fn must not call back into the DB's write methods. fn returning
// false stops the scan.
func (db *DB) Scan(rel string, fn func(relation.Tuple) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[rel]
	if t == nil {
		return
	}
	t.primary.AscendAll(func(_ string, slot int) bool {
		return fn(t.rows[slot])
	})
}

// ScanEq scans tuples whose attribute at position pos equals v, using a
// secondary index when one exists and a full scan otherwise.
func (db *DB) ScanEq(rel string, pos int, v relation.Value, fn func(relation.Tuple) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[rel]
	if t == nil || pos < 0 || pos >= t.def.Arity() {
		return
	}
	if idx, ok := t.second[pos]; ok {
		prefix := string(relation.EncodeValue(nil, v))
		idx.AscendPrefix(prefix, func(_ string, slot int) bool {
			return fn(t.rows[slot])
		})
		return
	}
	t.primary.AscendAll(func(_ string, slot int) bool {
		if t.rows[slot][pos] == v {
			return fn(t.rows[slot])
		}
		return true
	})
}

// ScanRange scans tuples whose attribute at position pos lies within the
// given bounds (each bound optional: nil means unbounded; inclusive).
// With a secondary index on the attribute the scan touches only the range;
// otherwise it falls back to a filtered full scan.
func (db *DB) ScanRange(rel string, pos int, lo, hi *relation.Value, fn func(relation.Tuple) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[rel]
	if t == nil || pos < 0 || pos >= t.def.Arity() {
		return
	}
	within := func(v relation.Value) bool {
		if lo != nil && v.Compare(*lo) < 0 {
			return false
		}
		if hi != nil && v.Compare(*hi) > 0 {
			return false
		}
		return true
	}
	if idx, ok := t.second[pos]; ok {
		from, to := "", ""
		if lo != nil {
			from = string(relation.EncodeValue(nil, *lo))
		}
		if hi != nil {
			to = prefixSuccessor(string(relation.EncodeValue(nil, *hi)))
		}
		idx.Ascend(from, to, func(_ string, slot int) bool {
			return fn(t.rows[slot])
		})
		return
	}
	t.primary.AscendAll(func(_ string, slot int) bool {
		if within(t.rows[slot][pos]) {
			return fn(t.rows[slot])
		}
		return true
	})
}

// prefixSuccessor returns the smallest string greater than every string
// with the given prefix ("" when no such string exists).
func prefixSuccessor(p string) string {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// Tuples returns a copied slice of all tuples in the relation, in key order.
func (db *DB) Tuples(rel string) []relation.Tuple {
	var out []relation.Tuple
	db.Scan(rel, func(t relation.Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// Instance exports the whole database as a relation.Instance (for oracles,
// stats and tests).
func (db *DB) Instance() relation.Instance {
	db.mu.RLock()
	defer db.mu.RUnlock()
	in := relation.NewInstance()
	for name, t := range db.tables {
		t.primary.AscendAll(func(_ string, slot int) bool {
			in.Insert(name, t.rows[slot])
			return true
		})
	}
	return in
}

// Stats summarises the database for reports.
type Stats struct {
	Relations int
	Tuples    int
	WALBytes  int64
}

// Stats returns current sizes.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Stats{Relations: db.schema.Len()}
	for _, t := range db.tables {
		s.Tuples += t.primary.Len()
	}
	if db.log != nil {
		s.WALBytes = db.log.Size()
	}
	return s
}

// LSN returns the current commit sequence number: the LSN of the most
// recently committed transaction (0 for a database nothing was ever
// committed to).
func (db *DB) LSN() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.lsn
}

// Dir returns the durability directory ("" for memory-only databases).
func (db *DB) Dir() string { return db.opts.Dir }

// changelogLimit resolves the configured per-relation changelog bound.
func (db *DB) changelogLimit() int {
	if db.opts.ChangelogLimit == 0 {
		return DefaultChangelogLimit
	}
	return db.opts.ChangelogLimit
}

// captureInsert appends a committed insert to the relation's changelog
// (caller holds the write lock). Overflow drops the oldest entries and
// raises the history-lost floor.
func (db *DB) captureInsert(t *table, tuple relation.Tuple) {
	limit := db.changelogLimit()
	if limit < 0 {
		t.lostBelow = db.lsn
		return
	}
	t.changes = append(t.changes, change{lsn: db.lsn, tuple: tuple})
	if len(t.changes) > limit {
		drop := len(t.changes) - limit
		t.lostBelow = t.changes[drop-1].lsn
		t.changes = append(t.changes[:0:0], t.changes[drop:]...)
	}
}

// captureDelete records a committed delete (caller holds the write lock).
// A delete cannot be expressed as a monotone insert delta, so the
// relation's history is poisoned up to the deleting commit: callers of
// Changes with an older watermark must fall back to a full scan.
func (db *DB) captureDelete(t *table) {
	t.lostBelow = db.lsn
	if len(t.changes) > 0 {
		t.changes = nil
	}
}

// Changes reports the tuples committed into the relation after sinceLSN, in
// commit order. ok is false when the requested history is unavailable — the
// changelog was truncated past sinceLSN, a delete intervened, or the
// relation is unknown — in which case the caller must fall back to a full
// scan. ok is true with an empty delta when nothing changed.
func (db *DB) Changes(rel string, sinceLSN uint64) (inserts []relation.Tuple, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[rel]
	if t == nil || sinceLSN < t.lostBelow {
		return nil, false
	}
	for _, c := range t.changes {
		if c.lsn > sinceLSN {
			inserts = append(inserts, c.tuple)
		}
	}
	return inserts, true
}

// Close closes the database. Durable databases with commits since the last
// checkpoint are checkpointed first, so reopening a long-lived peer loads
// the snapshot instead of replaying the entire log; otherwise the WAL is
// synced as before.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.log == nil {
		return nil
	}
	var err error
	if db.commitsSinceCheckpoint > 0 {
		err = db.checkpointLocked()
	} else {
		err = db.log.Sync()
	}
	if cerr := db.log.Close(); err == nil {
		err = cerr
	}
	return err
}
