// Package storage implements coDB's embedded relational engine: the Local
// Database (LDB) each peer manages. Relations are sets of typed tuples
// (set semantics, as required by the update algorithm's "T′ = T \ R" step).
// Each relation is hash-partitioned into Options.Shards shards; every shard
// owns its own lock, in-memory heap, B+tree primary index over the
// order-preserving tuple encoding, optional secondary indexes, changelog
// segment, and copy-on-write snapshot view. Durability is optional: when
// opened with a directory, every commit is logged to a write-ahead log —
// through a group-commit pipeline when SyncOnCommit is set, so concurrent
// commits share fsyncs — and periodically checkpointed into a snapshot
// file; recovery loads the snapshot and replays the log.
//
// Concurrency: readers and writers coordinate per shard, so transactions
// touching disjoint shards commit in parallel. Commit sequence numbers stay
// globally monotone: LSNs are assigned under a short ordering mutex while
// the committing transaction already holds its shard locks, which makes the
// WAL order equal the LSN order and lets Snapshot pin a consistent cut by
// holding every shard lock at once. Transactions stage their writes
// privately and apply them atomically at Commit.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"codb/internal/relation"
	"codb/internal/wal"
)

// Options configures Open.
type Options struct {
	// Dir is the durability directory. Empty means memory-only: no WAL,
	// no snapshots, nothing survives Close.
	Dir string
	// SyncOnCommit makes every commit durable before it returns (and
	// before it becomes visible to any reader). It engages the
	// group-commit pipeline, under which concurrent commits share fsyncs
	// — one per batch — so sync-on-commit is viable under multi-writer
	// load; with DisableGroupCommit it degrades to one fsync per commit.
	SyncOnCommit bool
	// CheckpointEvery triggers an automatic checkpoint after this many
	// commits (0 disables automatic checkpoints).
	CheckpointEvery int
	// ChangelogLimit bounds the per-shard in-memory changelog backing
	// Changes (0 selects DefaultChangelogLimit, negative disables change
	// capture entirely). When a shard's changelog overflows, its oldest
	// entries are dropped and Changes reports "history lost" for
	// watermarks that precede the drop.
	ChangelogLimit int
	// Shards is the number of hash partitions per relation. 0 selects the
	// snapshot-recorded count for recovered databases (1 for fresh ones);
	// 1 preserves the unsharded layout exactly. Tuples are routed by a
	// hash of their order-preserving encoding, so any shard count yields
	// the same logical contents — merged scans are always in global key
	// order — and a database may be reopened with a different count.
	Shards int
	// DisableGroupCommit reverts the WAL to inline per-commit appends
	// (and, with SyncOnCommit, one fsync per commit): the pre-group-commit
	// baseline of the B4 benchmark.
	DisableGroupCommit bool
	// SegmentBytes rotates the WAL to a fresh segment file once the
	// active one reaches this size (0 selects wal.DefaultSegmentBytes).
	// Smaller segments tighten checkpoint truncation and changelog-spill
	// granularity at the cost of more files.
	SegmentBytes int64
	// RetainSegments keeps up to this many sealed WAL segments that a
	// checkpoint has fully superseded, so Changes can keep serving
	// pre-checkpoint history from disk — across checkpoints and restarts
	// — instead of degrading to history-lost full exports. 0 selects
	// DefaultRetainSegments; negative retains none.
	RetainSegments int
}

// DefaultChangelogLimit is the per-shard changelog bound used when
// Options.ChangelogLimit is zero.
const DefaultChangelogLimit = 4096

// DefaultRetainSegments is the number of checkpoint-superseded WAL
// segments kept for changelog spill when Options.RetainSegments is zero.
const DefaultRetainSegments = 4

// maxShards bounds Options.Shards (and the snapshot-recorded count) to
// keep per-relation overhead sane.
const maxShards = 1 << 12

// DB is an embedded relational database.
type DB struct {
	// mu guards the schema, the tables map and the closed flag. Reads and
	// commits hold it shared (shard locks provide their isolation); DDL,
	// IndexOn, Checkpoint and Close hold it exclusively.
	mu      sync.RWMutex
	schema  *relation.Schema
	tables  map[string]*table
	opts    Options
	nshards int
	log     *wal.Segmented      // nil when memory-only
	group   *wal.GroupCommitter // nil when memory-only or DisableGroupCommit
	closed  bool

	// ckptMu serialises checkpoints (explicit, automatic-background, and
	// the final one in Close). It is never held while commits are blocked:
	// a checkpoint pins a Snapshot — a brief all-shard read lock — and
	// writes it with no database locks held. Lock order: ckptMu before
	// db.mu.
	ckptMu sync.Mutex
	// ckptErrMu guards ckptErr, the sticky failure of a background
	// checkpoint, surfaced by the next explicit Checkpoint or Close.
	ckptErrMu sync.Mutex
	ckptErr   error
	// recoveredCkpt is the checkpoint LSN the last loaded snapshot
	// recorded: WAL replay skips records at or below it (they may survive
	// in retained segments). recoveredSnapVersion is that snapshot's
	// format version (0 when none was found), which gates the legacy
	// log.wal migration.
	recoveredCkpt        uint64
	recoveredSnapVersion uint32

	// spillHits / spillMisses count Changes calls served from retained
	// WAL segments and ones that found the segment window unavailable.
	spillHits   atomic.Uint64
	spillMisses atomic.Uint64

	// commitMu orders commits: LSN assignment and the WAL append/enqueue
	// happen together under it, so the log's record order always equals
	// the LSN order. It is held only for that short window, never during
	// fsyncs (group-commit path) or shard application.
	commitMu sync.Mutex

	// lsnMu guards the commit sequence state below.
	lsnMu sync.Mutex
	// lsn is the monotone commit sequence number: every committed
	// transaction (DDL included) gets the next value. It survives restarts
	// (persisted in the snapshot, advanced by WAL replay).
	lsn uint64
	// visible is the largest LSN v such that every commit with LSN <= v
	// has fully applied. With concurrent commits, a transaction with a
	// higher LSN can finish applying before one with a lower LSN; export
	// watermarks must not advance past unapplied commits, so LSN() reports
	// visible, not lsn.
	visible uint64
	// inflight holds the LSNs assigned but not yet fully applied.
	inflight map[uint64]struct{}

	// captureSeq totally orders changelog entries within one commit LSN
	// (a multi-tuple commit captures across several shards; the merge in
	// Changes restores its op order by this sequence).
	captureSeq atomic.Uint64

	commitsSinceCheckpoint atomic.Int64
}

const (
	snapshotName = "snapshot.cdb"
	logName      = "log.wal"
)

// Open opens (or creates) a database. With a Dir, prior state is recovered
// from the snapshot and WAL in that directory.
func Open(opts Options) (*DB, error) {
	if opts.Shards < 0 || opts.Shards > maxShards {
		return nil, fmt.Errorf("storage: Shards = %d out of range [0, %d]", opts.Shards, maxShards)
	}
	db := &DB{
		schema:   relation.NewSchema(),
		tables:   make(map[string]*table),
		opts:     opts,
		nshards:  max(1, opts.Shards),
		inflight: make(map[uint64]struct{}),
	}
	if opts.Dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir: %w", err)
	}
	// A crash can leave a half-written snapshot behind; it was never
	// renamed into place, so it holds nothing durable.
	os.Remove(filepath.Join(opts.Dir, snapshotName) + ".tmp")
	if err := db.loadSnapshot(filepath.Join(opts.Dir, snapshotName)); err != nil {
		return nil, err
	}
	migrate, err := db.replayLegacyLog()
	if err != nil {
		return nil, err
	}
	log, err := wal.OpenSegmented(opts.Dir, db.lsn,
		wal.SegmentedOptions{SegmentBytes: opts.SegmentBytes}, db.applyLogRecord)
	if err != nil {
		return nil, err
	}
	db.log = log
	db.visible = db.lsn
	if migrate {
		// The legacy records live nowhere but the old file: checkpoint the
		// replayed state before dropping it. One-time, at open, unshared —
		// the stop-the-world cost is irrelevant here.
		if err := db.checkpointPinned(); err != nil {
			db.log.Close()
			return nil, fmt.Errorf("storage: migrate legacy wal: %w", err)
		}
		os.Remove(filepath.Join(opts.Dir, logName))
	}
	// The group-commit pipeline only pays when there are fsyncs to share;
	// without SyncOnCommit the inline append under commitMu is cheaper
	// than a cross-goroutine round-trip per commit.
	if opts.SyncOnCommit && !opts.DisableGroupCommit {
		db.group = wal.NewGroupCommitter(log)
	}
	return db, nil
}

// replayLegacyLog migrates a pre-segment "log.wal" file: its records are
// replayed on top of the snapshot and the caller then checkpoints and
// deletes the file. Reports whether a legacy log was found and replayed.
//
// Legacy records carry no LSNs, so a record cannot individually be
// recognised as checkpoint-covered. Instead the snapshot version
// disambiguates the migration crash window: only the new engine writes v4
// snapshots, and it deletes log.wal right after its first one — so a
// log.wal alongside a v4 snapshot is a remnant whose every record that
// checkpoint already covers, and replaying it would double-apply them
// under inflated LSNs. It is discarded instead.
func (db *DB) replayLegacyLog() (bool, error) {
	path := filepath.Join(db.opts.Dir, logName)
	if _, err := os.Stat(path); err != nil {
		return false, nil
	}
	if db.recoveredSnapVersion >= 4 {
		os.Remove(path)
		return false, nil
	}
	l, err := wal.Open(path, func(payload []byte) error {
		return db.applyLogRecord(db.lsn+1, payload)
	})
	if err != nil {
		return false, err
	}
	l.Close()
	return true, nil
}

// MustOpenMem opens a memory-only database, panicking on error; convenience
// for tests and examples.
func MustOpenMem() *DB {
	db, err := Open(Options{})
	if err != nil {
		panic(err)
	}
	return db
}

// assignLSN allocates the next commit sequence number and marks it
// in-flight. Callers hold commitMu (for ordering) and their shard locks
// (so the LSN becomes visible to full-cut readers only when applied).
func (db *DB) assignLSN() uint64 {
	db.lsnMu.Lock()
	db.lsn++
	l := db.lsn
	db.inflight[l] = struct{}{}
	db.lsnMu.Unlock()
	return l
}

// finishCommit retires an in-flight LSN and advances the visible horizon to
// the largest fully-applied prefix.
func (db *DB) finishCommit(l uint64) {
	db.lsnMu.Lock()
	delete(db.inflight, l)
	v := db.lsn
	for pending := range db.inflight {
		if pending-1 < v {
			v = pending - 1
		}
	}
	if v > db.visible {
		db.visible = v
	}
	db.lsnMu.Unlock()
}

// appendRecord ships one WAL record. Callers hold commitMu, so records are
// enqueued (or appended) in LSN order. On the group-commit path the
// returned channel delivers the durability outcome once the record's batch
// is fsynced — callers must receive from it before making the commit
// visible, so sync-on-commit keeps its visible-implies-durable guarantee;
// the inline path appends (and, for sync-on-commit databases with
// DisableGroupCommit, fsyncs) before returning.
func (db *DB) appendRecord(rec []byte) (<-chan error, error) {
	if db.log == nil {
		return nil, nil
	}
	if db.group != nil {
		return db.group.Commit(rec, true), nil
	}
	if err := db.log.Append(rec); err != nil {
		return nil, err
	}
	if db.opts.SyncOnCommit {
		if err := db.log.Sync(); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// Schema returns a snapshot copy of the schema.
func (db *DB) Schema() *relation.Schema {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.schema.Clone()
}

// Rel returns the definition of a relation, or nil.
func (db *DB) Rel(name string) *relation.RelDef {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.schema.Rel(name)
}

// DefineRelation adds a relation to the schema (DDL). Logged for recovery.
func (db *DB) DefineRelation(def *relation.RelDef) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	if err := db.schema.Add(def); err != nil {
		return err
	}
	db.tables[def.Name] = newTable(def, db.nshards)
	db.commitMu.Lock()
	l := db.assignLSN()
	var wait <-chan error
	var err error
	if db.log != nil {
		wait, err = db.appendRecord(encodeDDL(def))
	}
	db.commitMu.Unlock()
	// Await durability before the LSN becomes visible, as Tx.Commit does:
	// a watermark must never reference a commit whose record could still
	// be lost. (The schema mutation itself is invisible until db.mu is
	// released either way.)
	if wait != nil {
		if werr := <-wait; err == nil {
			err = werr
		}
	}
	db.finishCommit(l)
	if err != nil {
		return err
	}
	if db.log != nil {
		db.commitsSinceCheckpoint.Add(1)
	}
	return nil
}

// DefineSchema defines every relation of the given schema.
func (db *DB) DefineSchema(s *relation.Schema) error {
	for _, name := range s.Names() {
		def := s.Rel(name)
		attrs := make([]relation.Attr, len(def.Attrs))
		copy(attrs, def.Attrs)
		if err := db.DefineRelation(&relation.RelDef{Name: def.Name, Attrs: attrs}); err != nil {
			return err
		}
	}
	return nil
}

// IndexOn creates a secondary index over one attribute of a relation
// (maintained per shard), enabling ScanEq/ScanRange on that attribute.
// Idempotent.
func (db *DB) IndexOn(rel, attr string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.tables[rel]
	if t == nil {
		return fmt.Errorf("storage: unknown relation %q", rel)
	}
	pos := t.def.AttrIndex(attr)
	if pos < 0 {
		return fmt.Errorf("storage: relation %s has no attribute %q", rel, attr)
	}
	if _, ok := t.shards[0].second[pos]; ok {
		return nil
	}
	for _, s := range t.shards {
		s.buildSecondary(pos)
	}
	return nil
}

func secondaryKey(t relation.Tuple, pos int) string {
	k := relation.EncodeValue(nil, t[pos])
	k = relation.EncodeTuple(k, t)
	return string(k)
}

var errClosed = fmt.Errorf("storage: database is closed")

// Has reports whether the tuple is present in the relation.
func (db *DB) Has(rel string, tuple relation.Tuple) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[rel]
	if t == nil {
		return false
	}
	key := tuple.Key()
	s := t.shardFor(key)
	s.mu.RLock()
	_, ok := s.primary.Get(key)
	s.mu.RUnlock()
	return ok
}

// Count returns the number of tuples in the relation. All shards are
// locked at once, so the count is a consistent cut.
func (db *DB) Count(rel string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[rel]
	if t == nil {
		return 0
	}
	t.rlockAll()
	defer t.runlockAll()
	n := 0
	for _, s := range t.shards {
		n += s.primary.Len()
	}
	return n
}

// Scan calls fn for every tuple of the relation in global key order (a
// k-way merge over the per-shard primary indexes), under the relation's
// shard read locks; fn must not call back into the DB's write methods. fn
// returning false stops the scan.
func (db *DB) Scan(rel string, fn func(relation.Tuple) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[rel]
	if t == nil {
		return
	}
	t.rlockAll()
	defer t.runlockAll()
	t.scanLocked(fn)
}

// scanLocked merges the shard primaries in key order (shard locks held).
func (t *table) scanLocked(fn func(relation.Tuple) bool) {
	if len(t.shards) == 1 {
		s := t.shards[0]
		s.primary.AscendAll(func(_ string, slot int) bool {
			return fn(s.rows[slot])
		})
		return
	}
	iters := t.primaryIters()
	mergeAscend(iters, func(si int, _ string, slot int) bool {
		return fn(t.shards[si].rows[slot])
	})
}

// ScanEq scans tuples whose attribute at position pos equals v, using the
// per-shard secondary indexes when they exist and a full merged scan
// otherwise. Either way tuples arrive in a deterministic order (secondary:
// by attr value ‖ tuple key; fallback: global key order).
func (db *DB) ScanEq(rel string, pos int, v relation.Value, fn func(relation.Tuple) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[rel]
	if t == nil || pos < 0 || pos >= t.def.Arity() {
		return
	}
	t.rlockAll()
	defer t.runlockAll()
	if _, ok := t.shards[0].second[pos]; ok {
		prefix := string(relation.EncodeValue(nil, v))
		iters := make([]*btreeIter, len(t.shards))
		for i, s := range t.shards {
			iters[i] = s.second[pos].Iter(prefix)
		}
		mergeAscend(iters, func(si int, key string, slot int) bool {
			if len(key) < len(prefix) || key[:len(prefix)] != prefix {
				return false // merged order: once the minimum leaves the prefix, all do
			}
			return fn(t.shards[si].rows[slot])
		})
		return
	}
	t.scanLocked(func(tp relation.Tuple) bool {
		if tp[pos] == v {
			return fn(tp)
		}
		return true
	})
}

// ScanRange scans tuples whose attribute at position pos lies within the
// given bounds (each bound optional: nil means unbounded; inclusive).
// With a secondary index on the attribute the scan touches only the range;
// otherwise it falls back to a filtered merged scan.
func (db *DB) ScanRange(rel string, pos int, lo, hi *relation.Value, fn func(relation.Tuple) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[rel]
	if t == nil || pos < 0 || pos >= t.def.Arity() {
		return
	}
	t.rlockAll()
	defer t.runlockAll()
	if _, ok := t.shards[0].second[pos]; ok {
		from, to := "", ""
		if lo != nil {
			from = string(relation.EncodeValue(nil, *lo))
		}
		if hi != nil {
			to = prefixSuccessor(string(relation.EncodeValue(nil, *hi)))
		}
		iters := make([]*btreeIter, len(t.shards))
		for i, s := range t.shards {
			iters[i] = s.second[pos].Iter(from)
		}
		mergeAscend(iters, func(si int, key string, slot int) bool {
			if to != "" && key >= to {
				return false
			}
			return fn(t.shards[si].rows[slot])
		})
		return
	}
	within := func(v relation.Value) bool {
		if lo != nil && v.Compare(*lo) < 0 {
			return false
		}
		if hi != nil && v.Compare(*hi) > 0 {
			return false
		}
		return true
	}
	t.scanLocked(func(tp relation.Tuple) bool {
		if within(tp[pos]) {
			return fn(tp)
		}
		return true
	})
}

// prefixSuccessor returns the smallest string greater than every string
// with the given prefix ("" when no such string exists).
func prefixSuccessor(p string) string {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// Tuples returns a copied slice of all tuples in the relation, in key order.
func (db *DB) Tuples(rel string) []relation.Tuple {
	var out []relation.Tuple
	db.Scan(rel, func(t relation.Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	return out
}

// Instance exports the whole database as a relation.Instance (for oracles,
// stats and tests). Every shard of every relation is locked at once, so
// the export is a consistent cut.
func (db *DB) Instance() relation.Instance {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := db.sortedTableNames()
	unlock := db.rlockTables(names)
	defer unlock()
	in := relation.NewInstance()
	for _, name := range names {
		t := db.tables[name]
		for _, s := range t.shards {
			s.primary.AscendAll(func(_ string, slot int) bool {
				in.Insert(name, s.rows[slot])
				return true
			})
		}
	}
	return in
}

// sortedTableNames returns the relation names in the global lock order
// (lexicographic; db.mu held).
func (db *DB) sortedTableNames() []string {
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// rlockTables read-locks every shard of the named tables in the global
// (relation name, shard index) order and returns the matching unlock.
// Holding every shard lock at once blocks any in-flight commit from being
// half-visible: a commit holds all its shard write locks from LSN
// assignment through application.
func (db *DB) rlockTables(names []string) func() {
	for _, name := range names {
		db.tables[name].rlockAll()
	}
	return func() {
		for _, name := range names {
			db.tables[name].runlockAll()
		}
	}
}

// Stats summarises the database for reports.
type Stats struct {
	Relations int
	Tuples    int
	WALBytes  int64
}

// Stats returns current sizes.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Stats{Relations: db.schema.Len()}
	for _, t := range db.tables {
		t.rlockAll()
		for _, sh := range t.shards {
			s.Tuples += sh.primary.Len()
		}
		t.runlockAll()
	}
	if db.log != nil {
		s.WALBytes = db.log.Size()
	}
	return s
}

// ShardStats summarises one shard of one relation.
type ShardStats struct {
	Tuples int
	Bytes  int64 // encoded tuple volume (sum of primary key lengths)
}

// RelationStats is the per-shard breakdown of one relation.
type RelationStats struct {
	Name   string
	Shards []ShardStats
}

// DetailedStats is the storage command's full engine report: per-shard
// row/byte counts, WAL segment/size figures, changelog-spill counters and
// group-commit batching counters.
type DetailedStats struct {
	Shards      int
	LSN         uint64
	Relations   []RelationStats
	WALBytes    int64
	WAL         wal.SegmentedStats
	GroupCommit wal.GroupStats
	// GroupCommitEnabled distinguishes "no batches yet" from "pipeline
	// disabled or memory-only".
	GroupCommitEnabled bool
	// SpillHits / SpillMisses count Changes calls answered from retained
	// WAL segments and ones whose segment window was unavailable.
	SpillHits   uint64
	SpillMisses uint64
}

// DetailedStats returns the per-shard engine report.
func (db *DB) DetailedStats() DetailedStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := DetailedStats{Shards: db.nshards, LSN: db.LSN()}
	for _, name := range db.sortedTableNames() {
		t := db.tables[name]
		rs := RelationStats{Name: name, Shards: make([]ShardStats, len(t.shards))}
		t.rlockAll()
		for i, sh := range t.shards {
			st := ShardStats{Tuples: sh.primary.Len()}
			sh.primary.AscendAll(func(key string, _ int) bool {
				st.Bytes += int64(len(key))
				return true
			})
			rs.Shards[i] = st
		}
		t.runlockAll()
		out.Relations = append(out.Relations, rs)
	}
	if db.log != nil {
		out.WAL = db.log.Stats()
		out.WALBytes = out.WAL.Bytes
	}
	if db.group != nil {
		out.GroupCommit = db.group.Stats()
		out.GroupCommitEnabled = true
	}
	out.SpillHits = db.spillHits.Load()
	out.SpillMisses = db.spillMisses.Load()
	return out
}

// LSN returns the current commit sequence number: the largest LSN whose
// commit (and every earlier one) is fully applied — 0 for a database
// nothing was ever committed to. Export watermarks taken against it stay
// meaningful across concurrent commits and process lives.
func (db *DB) LSN() uint64 {
	db.lsnMu.Lock()
	defer db.lsnMu.Unlock()
	return db.visible
}

// Shards returns the number of hash partitions per relation.
func (db *DB) Shards() int { return db.nshards }

// Dir returns the durability directory ("" for memory-only databases).
func (db *DB) Dir() string { return db.opts.Dir }

// changelogLimit resolves the configured per-shard changelog bound.
func (db *DB) changelogLimit() int {
	if db.opts.ChangelogLimit == 0 {
		return DefaultChangelogLimit
	}
	return db.opts.ChangelogLimit
}

// captureInsert appends a committed insert to the owning shard's changelog
// (caller holds the shard's write lock). Overflow drops the oldest entries
// and raises the eviction floor — watermarks below it are answered from
// retained WAL segments when the database is durable, and report history
// lost otherwise.
func (db *DB) captureInsert(s *shard, lsn uint64, tuple relation.Tuple) {
	limit := db.changelogLimit()
	if limit < 0 {
		if lsn > s.lostBelow {
			s.lostBelow = lsn
		}
		return
	}
	s.changes = append(s.changes, change{lsn: lsn, seq: db.captureSeq.Add(1), tuple: tuple})
	if len(s.changes) > limit {
		drop := len(s.changes) - limit
		if lb := s.changes[drop-1].lsn; lb > s.evictedBelow {
			s.evictedBelow = lb
		}
		s.changes = append(s.changes[:0:0], s.changes[drop:]...)
	}
}

// captureDelete records a committed delete (caller holds the shard's write
// lock). A delete cannot be expressed as a monotone insert delta, so the
// shard's history is poisoned up to the deleting commit: callers of
// Changes with an older watermark must fall back to a full scan.
func (db *DB) captureDelete(s *shard, lsn uint64) {
	if lsn > s.lostBelow {
		s.lostBelow = lsn
	}
	if len(s.changes) > 0 {
		s.changes = nil
	}
}

// Changes reports the tuples committed into the relation after sinceLSN, in
// commit order. The hot path merges the per-shard in-memory changelogs (by
// LSN, then by capture sequence within a multi-tuple commit). When the
// watermark has fallen out of the rings — evicted by overflow, or older
// than the snapshot a restart recovered from — the delta is served from
// the retained WAL segments instead (the changelog spill path), so
// long-lived hot relations and reopened databases keep answering
// incrementally. ok is false only when the history is truly unavailable: a
// delete intervened after sinceLSN (deletes are not expressible as a
// monotone insert delta), the covering segments were pruned, the relation
// is unknown, or the database is memory-only with an overflowed ring. The
// caller must then fall back to a full scan. ok is true with an empty
// delta when nothing changed.
//
// The delta is clamped to the visible LSN horizon, so a watermark advanced
// to LSN() never skips a commit still applying concurrently. A
// segment-served delta can be a superset of the exact one: an insert
// logged by a transaction that raced another inserter of the same tuple
// re-appears, which set-semantics consumers absorb.
func (db *DB) Changes(rel string, sinceLSN uint64) (inserts []relation.Tuple, ok bool) {
	db.mu.RLock()
	t := db.tables[rel]
	if t == nil {
		db.mu.RUnlock()
		return nil, false
	}
	t.rlockAll()
	visible := db.LSN()
	var poisoned, evicted uint64
	for _, s := range t.shards {
		poisoned = max(poisoned, s.lostBelow)
		evicted = max(evicted, s.evictedBelow)
	}
	if sinceLSN >= poisoned && sinceLSN >= evicted {
		inserts = t.memChangesLocked(sinceLSN, visible)
		t.runlockAll()
		db.mu.RUnlock()
		return inserts, true
	}
	arity := t.def.Arity()
	t.runlockAll()
	db.mu.RUnlock()
	if sinceLSN < poisoned || db.log == nil {
		return nil, false
	}
	return db.changesFromSegments(rel, arity, sinceLSN, visible)
}

// memChangesLocked merges the in-memory shard changelogs for (sinceLSN,
// visible]; shard read locks held by the caller.
func (t *table) memChangesLocked(sinceLSN, visible uint64) []relation.Tuple {
	var inserts []relation.Tuple
	if len(t.shards) == 1 {
		for _, c := range t.shards[0].changes {
			if c.lsn > sinceLSN && c.lsn <= visible {
				inserts = append(inserts, c.tuple)
			}
		}
		return inserts
	}
	var merged []change
	for _, s := range t.shards {
		for _, c := range s.changes {
			if c.lsn > sinceLSN && c.lsn <= visible {
				merged = append(merged, c)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].lsn != merged[j].lsn {
			return merged[i].lsn < merged[j].lsn
		}
		return merged[i].seq < merged[j].seq
	})
	inserts = make([]relation.Tuple, len(merged))
	for i, c := range merged {
		inserts[i] = c.tuple
	}
	return inserts
}

// errSpillDelete aborts a segment scan when a delete on the requested
// relation sits inside the window: the delta cannot be expressed as
// inserts.
var errSpillDelete = fmt.Errorf("storage: delete inside spill window")

// changesFromSegments serves a changelog delta from the retained WAL
// segments: every record in (sinceLSN, visible] is decoded and the
// requested relation's inserts collected in commit order. No database
// locks are held — the segments are immutable except the active tail,
// whose records up to the visible horizon are fully written.
func (db *DB) changesFromSegments(rel string, arity int, sinceLSN, visible uint64) ([]relation.Tuple, bool) {
	if visible <= sinceLSN {
		db.spillHits.Add(1)
		return nil, true
	}
	var out []relation.Tuple
	err := db.log.ReadRange(sinceLSN+1, visible, func(_ uint64, payload []byte) error {
		delta, err := decodeRelOps(payload, rel, arity)
		if err != nil {
			return err
		}
		out = append(out, delta...)
		return nil
	})
	if err != nil {
		db.spillMisses.Add(1)
		return nil, false
	}
	db.spillHits.Add(1)
	return out, true
}

// Close closes the database. Durable databases with commits since the last
// checkpoint are checkpointed first, so reopening a long-lived peer loads
// the snapshot instead of replaying the entire log; otherwise the WAL is
// synced as before. An in-flight background checkpoint is waited out
// (ckptMu), the group-commit pipeline drained, and any sticky background
// checkpoint failure surfaced here.
func (db *DB) Close() error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	log := db.log
	db.mu.Unlock()
	if log == nil {
		return nil
	}
	var err error
	if db.group != nil {
		err = db.group.Close()
	}
	if serr := db.takeCheckpointErr(); err == nil {
		err = serr
	}
	// db.mu was released above: no commit can be in flight (they hold it
	// shared for their whole span, and new ones fail on closed), so the
	// final checkpoint pins a quiescent state.
	if db.commitsSinceCheckpoint.Load() > 0 {
		if cerr := db.checkpointPinned(); err == nil {
			err = cerr
		}
	} else if serr := log.Sync(); err == nil {
		err = serr
	}
	if cerr := log.Close(); err == nil {
		err = cerr
	}
	return err
}

// takeCheckpointErr claims the sticky background-checkpoint failure.
func (db *DB) takeCheckpointErr() error {
	db.ckptErrMu.Lock()
	defer db.ckptErrMu.Unlock()
	err := db.ckptErr
	db.ckptErr = nil
	return err
}

// recordCheckpointErr stores a background-checkpoint failure for the next
// explicit Checkpoint or Close to report.
func (db *DB) recordCheckpointErr(err error) {
	db.ckptErrMu.Lock()
	if db.ckptErr == nil {
		db.ckptErr = err
	}
	db.ckptErrMu.Unlock()
}

// retainSegments resolves the configured checkpoint retention.
func (db *DB) retainSegments() int {
	switch {
	case db.opts.RetainSegments == 0:
		return DefaultRetainSegments
	case db.opts.RetainSegments < 0:
		return 0
	}
	return db.opts.RetainSegments
}
