package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"codb/internal/relation"
)

// WAL record payloads and the snapshot file share a small binary vocabulary:
//
//	uvarint-prefixed byte strings and counts
//	tuples as uvarint length + order-preserving encoding
//
// A WAL payload is: count, then per op: kind byte, relation name, and for
// insert/delete the tuple; for DDL the relation definition.

func putString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func putBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("storage: bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if r.off+int(n) > len(r.b) {
		r.err = fmt.Errorf("storage: truncated string at offset %d", r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if r.off+int(n) > len(r.b) {
		r.err = fmt.Errorf("storage: truncated bytes at offset %d", r.off)
		return nil
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func encodeDef(dst []byte, def *relation.RelDef) []byte {
	dst = putString(dst, def.Name)
	dst = binary.AppendUvarint(dst, uint64(len(def.Attrs)))
	for _, a := range def.Attrs {
		dst = putString(dst, a.Name)
		dst = append(dst, byte(a.Type))
	}
	return dst
}

func (r *reader) def() *relation.RelDef {
	name := r.str()
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	attrs := make([]relation.Attr, 0, n)
	for i := uint64(0); i < n; i++ {
		an := r.str()
		if r.err != nil {
			return nil
		}
		if r.off >= len(r.b) {
			r.err = fmt.Errorf("storage: truncated attr type")
			return nil
		}
		attrs = append(attrs, relation.Attr{Name: an, Type: relation.Type(r.b[r.off])})
		r.off++
	}
	return &relation.RelDef{Name: name, Attrs: attrs}
}

func encodeDDL(def *relation.RelDef) []byte {
	dst := binary.AppendUvarint(nil, 1)
	dst = append(dst, byte(opDDL))
	return encodeDef(dst, def)
}

func encodeOps(ops []op) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(ops)))
	for _, o := range ops {
		dst = append(dst, byte(o.kind))
		dst = putString(dst, o.rel)
		dst = putBytes(dst, relation.EncodeTuple(nil, o.tuple))
	}
	return dst
}

// applyLogRecord replays one WAL record during recovery. It bypasses the
// transaction layer and mutates shards directly (the DB is not yet shared).
// Each record is one commit carrying the LSN its segment header implies,
// and replayed inserts re-enter the changelogs — a watermark taken after
// the last checkpoint stays incrementally answerable across a restart. The
// WAL is written in LSN order (group commit preserves enqueue order), so
// replay reproduces the original sequence numbers. Records at or below the
// snapshot's checkpoint LSN are skipped, not re-applied: they survive in
// retained segments (for changelog spill) or after a checkpoint that
// failed before pruning, and their state is already in the snapshot — so
// a half-applied checkpoint can never double-apply or orphan acknowledged
// commits.
func (db *DB) applyLogRecord(lsn uint64, payload []byte) error {
	if lsn <= db.recoveredCkpt {
		return nil
	}
	if lsn != db.lsn+1 {
		return fmt.Errorf("storage: replay lsn %d after %d (gap in acknowledged commits)", lsn, db.lsn)
	}
	r := &reader{b: payload}
	count := r.uvarint()
	db.lsn = lsn
	for i := uint64(0); i < count && r.err == nil; i++ {
		if r.off >= len(r.b) {
			return fmt.Errorf("storage: truncated op")
		}
		kind := opKind(r.b[r.off])
		r.off++
		switch kind {
		case opDDL:
			def := r.def()
			if r.err != nil {
				return r.err
			}
			if err := db.schema.Add(def); err != nil {
				return fmt.Errorf("storage: replay ddl: %w", err)
			}
			db.tables[def.Name] = newTable(def, db.nshards)
		case opInsert, opDelete:
			rel := r.str()
			enc := r.bytes()
			if r.err != nil {
				return r.err
			}
			def := db.schema.Rel(rel)
			if def == nil {
				return fmt.Errorf("storage: replay references unknown relation %q", rel)
			}
			tuple, err := relation.DecodeTuple(enc, def.Arity())
			if err != nil {
				return fmt.Errorf("storage: replay %s: %w", rel, err)
			}
			// The encoded op payload IS the tuple key, so routing needs no
			// re-encoding.
			s := db.tables[rel].shardFor(string(enc))
			if kind == opInsert {
				if s.insert(tuple) {
					db.captureInsert(s, db.lsn, tuple)
				}
			} else {
				if s.delete(tuple) {
					db.captureDelete(s, db.lsn)
				}
			}
		default:
			return fmt.Errorf("storage: replay: bad op kind %d", kind)
		}
	}
	return r.err
}

// decodeRelOps decodes one WAL payload and returns the inserts it commits
// into rel, in op order — the changelog-spill decoder behind
// changesFromSegments. A delete on rel aborts with errSpillDelete (the
// window is not expressible as an insert delta); ops on other relations
// and DDL are skipped without decoding tuples.
func decodeRelOps(payload []byte, rel string, arity int) ([]relation.Tuple, error) {
	r := &reader{b: payload}
	count := r.uvarint()
	var out []relation.Tuple
	for i := uint64(0); i < count && r.err == nil; i++ {
		if r.off >= len(r.b) {
			return nil, fmt.Errorf("storage: truncated op")
		}
		kind := opKind(r.b[r.off])
		r.off++
		switch kind {
		case opDDL:
			if r.def(); r.err != nil {
				return nil, r.err
			}
		case opInsert, opDelete:
			opRel := r.str()
			enc := r.bytes()
			if r.err != nil {
				return nil, r.err
			}
			if opRel != rel {
				continue
			}
			if kind == opDelete {
				return nil, errSpillDelete
			}
			tuple, err := relation.DecodeTuple(enc, arity)
			if err != nil {
				return nil, fmt.Errorf("storage: spill decode %s: %w", rel, err)
			}
			out = append(out, tuple)
		default:
			return nil, fmt.Errorf("storage: spill decode: bad op kind %d", kind)
		}
	}
	return out, r.err
}

// Snapshot file layout: magic "cdbS", version u32, CRC u32 of body.
//
//	v1 body: schema (uvarint count + defs), then per relation uvarint
//	         tuple count + tuples.
//	v2 body: v1 plus the commit LSN trailing the body, so the sequence
//	         numbers export watermarks reference survive a checkpoint +
//	         restart.
//	v3 body: the shard count leads the body, then the v2 layout. Tuples
//	         are always written in global (shard-merged) key order, so the
//	         post-shard-count bytes are identical for every shard count —
//	         and a v2 snapshot upgrades transparently: it is read as
//	         "shard count unrecorded" and rewritten as v3 by the next
//	         checkpoint.
//	v4 body: v3 plus the checkpoint LSN trailing it — the LSN the
//	         snapshot's contents were pinned at. Background checkpoints
//	         write the snapshot while commits continue, so WAL records
//	         above this LSN (and retained segments below it) coexist with
//	         the snapshot; replay skips records at or below it.
var snapMagic = [4]byte{'c', 'd', 'b', 'S'}

const snapVersion = 4

// Checkpoint writes a snapshot of the committed state and truncates the
// WAL by whole segments, without stopping the world: the state is pinned
// as a Snapshot (a brief all-shard read lock), then written to a temp file
// and atomically swapped in while commits proceed. Only segments wholly at
// or below the pinned LSN are deleted — the newest few are retained for
// changelog spill — so a checkpoint that fails mid-way leaves every
// acknowledged commit recoverable. No-op for memory-only databases.
// Reports any failure of an earlier background checkpoint first.
func (db *DB) Checkpoint() error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	if err := db.takeCheckpointErr(); err != nil {
		return err
	}
	db.mu.RLock()
	closed := db.closed
	db.mu.RUnlock()
	if closed {
		return errClosed
	}
	return db.checkpointPinned()
}

// kickCheckpoint is the CheckpointEvery trigger, called from Commit after
// durability with no locks held. The checkpoint runs on a background
// goroutine so the committing caller (and every other writer) proceeds
// immediately; ckptMu collapses concurrent triggers into one running
// checkpoint, and failures are stashed for the next explicit Checkpoint or
// Close.
func (db *DB) kickCheckpoint() {
	if !db.ckptMu.TryLock() {
		return // one is already running; it will absorb these commits
	}
	go func() {
		defer db.ckptMu.Unlock()
		db.mu.RLock()
		closed := db.closed
		db.mu.RUnlock()
		if closed || db.commitsSinceCheckpoint.Load() < int64(db.opts.CheckpointEvery) {
			return
		}
		if err := db.checkpointPinned(); err != nil {
			db.recordCheckpointErr(err)
		}
	}()
}

// checkpointPinned is the checkpoint body; the caller holds ckptMu (and
// nothing else — lock order is ckptMu before db.mu). It works the same
// for explicit, background and Close-time checkpoints: after Close has
// drained the group committer, Flush just reports the pipeline's sticky
// error.
func (db *DB) checkpointPinned() error {
	if db.log == nil {
		return nil
	}
	// Barrier: every record an applied commit enqueued must be in the log
	// before segments representing it can be considered for pruning. (On
	// the sync path commits await their batch anyway; this also surfaces a
	// poisoned pipeline instead of checkpointing past it.)
	if db.group != nil {
		if err := db.group.Flush(); err != nil {
			return fmt.Errorf("storage: checkpoint flush: %w", err)
		}
	}
	// Commits that land after the pin stay counted toward the next
	// checkpoint trigger.
	pinnedCount := db.commitsSinceCheckpoint.Load()
	snap := db.Snapshot()
	body := encodeSnapshotBody(snap, db.nshards)
	path := filepath.Join(db.opts.Dir, snapshotName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	w := bufio.NewWriter(f)
	var hdr [12]byte
	copy(hdr[:4], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], snapVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(body))
	if _, err := w.Write(hdr[:]); err == nil {
		_, err = w.Write(body)
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: checkpoint rename: %w", err)
	}
	db.commitsSinceCheckpoint.Add(-pinnedCount)
	// Only now that the snapshot is durably in place may the segments it
	// supersedes go; the retained ones keep serving changelog history.
	db.log.Prune(snap.LSN(), db.retainSegments())
	return nil
}

// encodeSnapshotBody renders a pinned Snapshot as a v4 snapshot body.
// Tuples are written in global (shard-merged) key order, so the bytes
// after the leading shard-count field are identical for every shard count
// — and identical whether the checkpoint ran quiescent or against
// concurrent commits, since the pin is a consistent cut.
func encodeSnapshotBody(snap *Snapshot, nshards int) []byte {
	names := snap.schema.Names()
	body := binary.AppendUvarint(nil, uint64(nshards))
	body = binary.AppendUvarint(body, uint64(len(names)))
	for _, name := range names {
		body = encodeDef(body, snap.schema.Rel(name))
	}
	for _, name := range names {
		body = binary.AppendUvarint(body, uint64(snap.Count(name)))
		snap.Scan(name, func(tu relation.Tuple) bool {
			body = putBytes(body, []byte(tu.Key()))
			return true
		})
	}
	body = binary.AppendUvarint(body, snap.lsn)
	body = binary.AppendUvarint(body, snap.lsn) // v4: the checkpoint LSN
	return body
}

// loadSnapshot restores state from the snapshot file; a missing file leaves
// the DB empty. Corruption is an error (the WAL cannot repair a bad base).
func (db *DB) loadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: read snapshot: %w", err)
	}
	if len(data) < 12 || [4]byte(data[:4]) != snapMagic {
		return fmt.Errorf("storage: %s: not a snapshot file", path)
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version < 1 || version > snapVersion {
		return fmt.Errorf("storage: %s: unsupported snapshot version %d", path, version)
	}
	db.recoveredSnapVersion = version
	body := data[12:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[8:12]) {
		return fmt.Errorf("storage: %s: snapshot checksum mismatch", path)
	}
	r := &reader{b: body}
	if version >= 3 {
		recorded := r.uvarint()
		if r.err != nil {
			return r.err
		}
		if recorded < 1 || recorded > maxShards {
			return fmt.Errorf("storage: %s: recorded shard count %d out of range", path, recorded)
		}
		// Options.Shards == 0 means "keep the database's own sharding";
		// an explicit option reshards on load (routing is key-determined,
		// so any count reproduces the same logical contents).
		if db.opts.Shards == 0 {
			db.nshards = int(recorded)
		}
	}
	nrels := r.uvarint()
	defs := make([]*relation.RelDef, 0, nrels)
	for i := uint64(0); i < nrels; i++ {
		def := r.def()
		if r.err != nil {
			return r.err
		}
		if err := db.schema.Add(def); err != nil {
			return fmt.Errorf("storage: snapshot schema: %w", err)
		}
		db.tables[def.Name] = newTable(def, db.nshards)
		defs = append(defs, def)
	}
	for _, def := range defs {
		count := r.uvarint()
		t := db.tables[def.Name]
		for i := uint64(0); i < count; i++ {
			enc := r.bytes()
			if r.err != nil {
				return r.err
			}
			tuple, err := relation.DecodeTuple(enc, def.Arity())
			if err != nil {
				return fmt.Errorf("storage: snapshot %s: %w", def.Name, err)
			}
			t.shardFor(string(enc)).insert(tuple)
		}
	}
	if version >= 2 {
		db.lsn = r.uvarint()
	}
	db.recoveredCkpt = db.lsn
	if version >= 4 {
		ckpt := r.uvarint()
		if r.err == nil && ckpt < db.recoveredCkpt {
			db.recoveredCkpt = ckpt
		}
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(body) {
		return fmt.Errorf("storage: snapshot has %d trailing bytes", len(body)-r.off)
	}
	// Snapshot-loaded state has no in-memory changelog: history up to the
	// snapshot LSN is evicted, not lost — retained WAL segments (when
	// present) keep serving it through the spill path; without them,
	// watermarks older than the snapshot degrade to full scans.
	for _, t := range db.tables {
		for _, s := range t.shards {
			s.evictedBelow = db.lsn
		}
	}
	return nil
}
