package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"codb/internal/relation"
)

// WAL record payloads and the snapshot file share a small binary vocabulary:
//
//	uvarint-prefixed byte strings and counts
//	tuples as uvarint length + order-preserving encoding
//
// A WAL payload is: count, then per op: kind byte, relation name, and for
// insert/delete the tuple; for DDL the relation definition.

func putString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func putBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("storage: bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if r.off+int(n) > len(r.b) {
		r.err = fmt.Errorf("storage: truncated string at offset %d", r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if r.off+int(n) > len(r.b) {
		r.err = fmt.Errorf("storage: truncated bytes at offset %d", r.off)
		return nil
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func encodeDef(dst []byte, def *relation.RelDef) []byte {
	dst = putString(dst, def.Name)
	dst = binary.AppendUvarint(dst, uint64(len(def.Attrs)))
	for _, a := range def.Attrs {
		dst = putString(dst, a.Name)
		dst = append(dst, byte(a.Type))
	}
	return dst
}

func (r *reader) def() *relation.RelDef {
	name := r.str()
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	attrs := make([]relation.Attr, 0, n)
	for i := uint64(0); i < n; i++ {
		an := r.str()
		if r.err != nil {
			return nil
		}
		if r.off >= len(r.b) {
			r.err = fmt.Errorf("storage: truncated attr type")
			return nil
		}
		attrs = append(attrs, relation.Attr{Name: an, Type: relation.Type(r.b[r.off])})
		r.off++
	}
	return &relation.RelDef{Name: name, Attrs: attrs}
}

func encodeDDL(def *relation.RelDef) []byte {
	dst := binary.AppendUvarint(nil, 1)
	dst = append(dst, byte(opDDL))
	return encodeDef(dst, def)
}

func encodeOps(ops []op) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(ops)))
	for _, o := range ops {
		dst = append(dst, byte(o.kind))
		dst = putString(dst, o.rel)
		dst = putBytes(dst, relation.EncodeTuple(nil, o.tuple))
	}
	return dst
}

// applyLogRecord replays one WAL payload during recovery. It bypasses the
// transaction layer and mutates shards directly (the DB is not yet shared).
// Each record is one commit, so the LSN advances per record and replayed
// inserts re-enter the changelogs — a watermark taken after the last
// checkpoint stays incrementally answerable across a restart. The WAL is
// written in LSN order (group commit preserves enqueue order), so replay
// reproduces the original sequence numbers.
func (db *DB) applyLogRecord(payload []byte) error {
	r := &reader{b: payload}
	count := r.uvarint()
	db.lsn++
	for i := uint64(0); i < count && r.err == nil; i++ {
		if r.off >= len(r.b) {
			return fmt.Errorf("storage: truncated op")
		}
		kind := opKind(r.b[r.off])
		r.off++
		switch kind {
		case opDDL:
			def := r.def()
			if r.err != nil {
				return r.err
			}
			if err := db.schema.Add(def); err != nil {
				return fmt.Errorf("storage: replay ddl: %w", err)
			}
			db.tables[def.Name] = newTable(def, db.nshards)
		case opInsert, opDelete:
			rel := r.str()
			enc := r.bytes()
			if r.err != nil {
				return r.err
			}
			def := db.schema.Rel(rel)
			if def == nil {
				return fmt.Errorf("storage: replay references unknown relation %q", rel)
			}
			tuple, err := relation.DecodeTuple(enc, def.Arity())
			if err != nil {
				return fmt.Errorf("storage: replay %s: %w", rel, err)
			}
			// The encoded op payload IS the tuple key, so routing needs no
			// re-encoding.
			s := db.tables[rel].shardFor(string(enc))
			if kind == opInsert {
				if s.insert(tuple) {
					db.captureInsert(s, db.lsn, tuple)
				}
			} else {
				if s.delete(tuple) {
					db.captureDelete(s, db.lsn)
				}
			}
		default:
			return fmt.Errorf("storage: replay: bad op kind %d", kind)
		}
	}
	return r.err
}

// Snapshot file layout: magic "cdbS", version u32, CRC u32 of body.
//
//	v1 body: schema (uvarint count + defs), then per relation uvarint
//	         tuple count + tuples.
//	v2 body: v1 plus the commit LSN trailing the body, so the sequence
//	         numbers export watermarks reference survive a checkpoint +
//	         restart.
//	v3 body: the shard count leads the body, then the v2 layout. Tuples
//	         are always written in global (shard-merged) key order, so the
//	         post-shard-count bytes are identical for every shard count —
//	         and a v2 snapshot upgrades transparently: it is read as
//	         "shard count unrecorded" and rewritten as v3 by the next
//	         checkpoint.
var snapMagic = [4]byte{'c', 'd', 'b', 'S'}

const snapVersion = 3

// Checkpoint atomically writes a snapshot of the current state and resets
// the WAL. No-op for memory-only databases.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	return db.checkpointLocked()
}

// autoCheckpoint is the CheckpointEvery trigger, called from Commit after
// durability with no locks held. Re-checks the counter under the exclusive
// lock, so concurrent committers crossing the threshold together produce
// one checkpoint.
func (db *DB) autoCheckpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil // a concurrent Close checkpointed on its way out
	}
	if db.commitsSinceCheckpoint.Load() < int64(db.opts.CheckpointEvery) {
		return nil
	}
	return db.checkpointLocked()
}

// checkpointLocked writes the snapshot and resets the WAL. The caller
// holds db.mu exclusively, which excludes every commit (commits hold it
// shared for their whole span), so no shard locks are needed. The
// group-commit pipeline is flushed first: every record enqueued by an
// already-applied commit must reach the log before the log is reset.
func (db *DB) checkpointLocked() error {
	if db.log == nil {
		return nil
	}
	if db.group != nil && !db.closed {
		if err := db.group.Flush(); err != nil {
			return fmt.Errorf("storage: checkpoint flush: %w", err)
		}
	}
	body := db.encodeSnapshotBody()
	path := filepath.Join(db.opts.Dir, snapshotName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	w := bufio.NewWriter(f)
	var hdr [12]byte
	copy(hdr[:4], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], snapVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(body))
	if _, err := w.Write(hdr[:]); err == nil {
		_, err = w.Write(body)
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: checkpoint rename: %w", err)
	}
	db.commitsSinceCheckpoint.Store(0)
	return db.log.Reset()
}

func (db *DB) encodeSnapshotBody() []byte {
	names := db.schema.Names()
	body := binary.AppendUvarint(nil, uint64(db.nshards))
	body = binary.AppendUvarint(body, uint64(len(names)))
	for _, name := range names {
		body = encodeDef(body, db.schema.Rel(name))
	}
	for _, name := range names {
		t := db.tables[name]
		n := 0
		for _, s := range t.shards {
			n += s.primary.Len()
		}
		body = binary.AppendUvarint(body, uint64(n))
		// Shard-merged key order: identical snapshot bytes (after the
		// shard-count field) for every shard count.
		mergeAscend(t.primaryIters(), func(_ int, key string, _ int) bool {
			body = putBytes(body, []byte(key))
			return true
		})
	}
	body = binary.AppendUvarint(body, db.lsn)
	return body
}

// loadSnapshot restores state from the snapshot file; a missing file leaves
// the DB empty. Corruption is an error (the WAL cannot repair a bad base).
func (db *DB) loadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: read snapshot: %w", err)
	}
	if len(data) < 12 || [4]byte(data[:4]) != snapMagic {
		return fmt.Errorf("storage: %s: not a snapshot file", path)
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version < 1 || version > snapVersion {
		return fmt.Errorf("storage: %s: unsupported snapshot version %d", path, version)
	}
	body := data[12:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[8:12]) {
		return fmt.Errorf("storage: %s: snapshot checksum mismatch", path)
	}
	r := &reader{b: body}
	if version >= 3 {
		recorded := r.uvarint()
		if r.err != nil {
			return r.err
		}
		if recorded < 1 || recorded > maxShards {
			return fmt.Errorf("storage: %s: recorded shard count %d out of range", path, recorded)
		}
		// Options.Shards == 0 means "keep the database's own sharding";
		// an explicit option reshards on load (routing is key-determined,
		// so any count reproduces the same logical contents).
		if db.opts.Shards == 0 {
			db.nshards = int(recorded)
		}
	}
	nrels := r.uvarint()
	defs := make([]*relation.RelDef, 0, nrels)
	for i := uint64(0); i < nrels; i++ {
		def := r.def()
		if r.err != nil {
			return r.err
		}
		if err := db.schema.Add(def); err != nil {
			return fmt.Errorf("storage: snapshot schema: %w", err)
		}
		db.tables[def.Name] = newTable(def, db.nshards)
		defs = append(defs, def)
	}
	for _, def := range defs {
		count := r.uvarint()
		t := db.tables[def.Name]
		for i := uint64(0); i < count; i++ {
			enc := r.bytes()
			if r.err != nil {
				return r.err
			}
			tuple, err := relation.DecodeTuple(enc, def.Arity())
			if err != nil {
				return fmt.Errorf("storage: snapshot %s: %w", def.Name, err)
			}
			t.shardFor(string(enc)).insert(tuple)
		}
	}
	if version >= 2 {
		db.lsn = r.uvarint()
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(body) {
		return fmt.Errorf("storage: snapshot has %d trailing bytes", len(body)-r.off)
	}
	// Snapshot-loaded state has no changelog: history up to the snapshot
	// LSN is unavailable, so watermarks older than the snapshot degrade to
	// full scans.
	for _, t := range db.tables {
		for _, s := range t.shards {
			s.lostBelow = db.lsn
		}
	}
	return nil
}
