package storage

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"codb/internal/relation"
)

func empDef() *relation.RelDef {
	return &relation.RelDef{Name: "emp", Attrs: []relation.Attr{
		{Name: "id", Type: relation.TInt},
		{Name: "name", Type: relation.TString},
	}}
}

func newEmpDB(t *testing.T) *DB {
	t.Helper()
	db := MustOpenMem()
	if err := db.DefineRelation(empDef()); err != nil {
		t.Fatal(err)
	}
	return db
}

func emp(id int, name string) relation.Tuple {
	return relation.Tuple{relation.Int(id), relation.Str(name)}
}

func TestInsertHasCount(t *testing.T) {
	db := newEmpDB(t)
	fresh, err := db.Insert("emp", emp(1, "ann"))
	if err != nil || !fresh {
		t.Fatalf("Insert = %v, %v", fresh, err)
	}
	fresh, err = db.Insert("emp", emp(1, "ann"))
	if err != nil || fresh {
		t.Fatalf("duplicate Insert = %v, %v (want set semantics)", fresh, err)
	}
	if !db.Has("emp", emp(1, "ann")) || db.Has("emp", emp(2, "bob")) {
		t.Error("Has wrong")
	}
	if db.Count("emp") != 1 {
		t.Errorf("Count = %d", db.Count("emp"))
	}
}

func TestInsertValidation(t *testing.T) {
	db := newEmpDB(t)
	if _, err := db.Insert("emp", relation.Tuple{relation.Str("x"), relation.Str("y")}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := db.Insert("emp", relation.Tuple{relation.Int(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := db.Insert("nope", emp(1, "a")); err == nil {
		t.Error("unknown relation accepted")
	}
	// Marked nulls are valid in any column.
	if _, err := db.Insert("emp", relation.Tuple{relation.Int(1), relation.Null("u1")}); err != nil {
		t.Errorf("null insert rejected: %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := newEmpDB(t)
	db.Insert("emp", emp(1, "ann"))
	existed, err := db.Delete("emp", emp(1, "ann"))
	if err != nil || !existed {
		t.Fatalf("Delete = %v, %v", existed, err)
	}
	if db.Has("emp", emp(1, "ann")) || db.Count("emp") != 0 {
		t.Error("tuple survived delete")
	}
	existed, _ = db.Delete("emp", emp(1, "ann"))
	if existed {
		t.Error("double delete reported existence")
	}
	// Slot reuse: delete then insert a different tuple.
	db.Insert("emp", emp(2, "bob"))
	if !db.Has("emp", emp(2, "bob")) {
		t.Error("insert after delete failed")
	}
}

func TestScanOrderAndStop(t *testing.T) {
	db := newEmpDB(t)
	for i := 5; i >= 1; i-- {
		db.Insert("emp", emp(i, fmt.Sprintf("p%d", i)))
	}
	var ids []int64
	db.Scan("emp", func(tp relation.Tuple) bool {
		ids = append(ids, tp[0].Int)
		return true
	})
	for i, id := range ids {
		if id != int64(i+1) {
			t.Fatalf("scan order = %v", ids)
		}
	}
	n := 0
	db.Scan("emp", func(relation.Tuple) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
	db.Scan("ghost", func(relation.Tuple) bool { t.Error("scan of unknown relation visited"); return false })
}

func TestInsertMany(t *testing.T) {
	db := newEmpDB(t)
	db.Insert("emp", emp(1, "ann"))
	fresh, err := db.InsertMany("emp", []relation.Tuple{emp(1, "ann"), emp(2, "bob"), emp(2, "bob"), emp(3, "cyd")})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v", fresh)
	}
	if db.Count("emp") != 3 {
		t.Errorf("Count = %d", db.Count("emp"))
	}
}

func TestTxReadYourWrites(t *testing.T) {
	db := newEmpDB(t)
	db.Insert("emp", emp(1, "ann"))
	tx := db.Begin()
	tx.Insert("emp", emp(2, "bob"))
	tx.Delete("emp", emp(1, "ann"))
	if !tx.Has("emp", emp(2, "bob")) {
		t.Error("tx does not see its insert")
	}
	if tx.Has("emp", emp(1, "ann")) {
		t.Error("tx sees its deleted tuple")
	}
	var seen []string
	tx.Scan("emp", func(tp relation.Tuple) bool {
		seen = append(seen, tp[1].Str)
		return true
	})
	if len(seen) != 1 || seen[0] != "bob" {
		t.Errorf("tx scan = %v", seen)
	}
	// Uncommitted: DB unchanged.
	if db.Has("emp", emp(2, "bob")) || !db.Has("emp", emp(1, "ann")) {
		t.Error("staged writes leaked before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !db.Has("emp", emp(2, "bob")) || db.Has("emp", emp(1, "ann")) {
		t.Error("commit not applied")
	}
}

func TestTxRollback(t *testing.T) {
	db := newEmpDB(t)
	tx := db.Begin()
	tx.Insert("emp", emp(1, "ann"))
	tx.Rollback()
	if db.Count("emp") != 0 {
		t.Error("rollback leaked writes")
	}
	if _, err := tx.Insert("emp", emp(2, "b")); err == nil {
		t.Error("insert after rollback accepted")
	}
	if err := tx.Commit(); err == nil {
		t.Error("commit after rollback accepted")
	}
}

func TestTxInsertDeleteInterleave(t *testing.T) {
	db := newEmpDB(t)
	tx := db.Begin()
	if fresh, _ := tx.Insert("emp", emp(1, "a")); !fresh {
		t.Error("insert not fresh")
	}
	if existed, _ := tx.Delete("emp", emp(1, "a")); !existed {
		t.Error("staged tuple not deletable")
	}
	if fresh, _ := tx.Insert("emp", emp(1, "a")); !fresh {
		t.Error("re-insert after staged delete not fresh")
	}
	tx.Commit()
	if !db.Has("emp", emp(1, "a")) {
		t.Error("net insert missing")
	}
}

func TestSecondaryIndexScanEq(t *testing.T) {
	db := newEmpDB(t)
	for i := 0; i < 100; i++ {
		db.Insert("emp", emp(i, fmt.Sprintf("name%d", i%10)))
	}
	if err := db.IndexOn("emp", "name"); err != nil {
		t.Fatal(err)
	}
	var got []int64
	db.ScanEq("emp", 1, relation.Str("name3"), func(tp relation.Tuple) bool {
		got = append(got, tp[0].Int)
		return true
	})
	if len(got) != 10 {
		t.Fatalf("indexed ScanEq returned %d tuples", len(got))
	}
	for _, id := range got {
		if id%10 != 3 {
			t.Errorf("wrong tuple id=%d", id)
		}
	}
	// Unindexed path must agree.
	var got2 []int64
	db.ScanEq("emp", 0, relation.Int(42), func(tp relation.Tuple) bool {
		got2 = append(got2, tp[0].Int)
		return true
	})
	if len(got2) != 1 || got2[0] != 42 {
		t.Errorf("unindexed ScanEq = %v", got2)
	}
	// Index stays consistent under delete.
	db.Delete("emp", emp(3, "name3"))
	count := 0
	db.ScanEq("emp", 1, relation.Str("name3"), func(relation.Tuple) bool { count++; return true })
	if count != 9 {
		t.Errorf("after delete, indexed count = %d", count)
	}
	if err := db.IndexOn("emp", "ghost"); err == nil {
		t.Error("IndexOn unknown attribute accepted")
	}
	if err := db.IndexOn("ghost", "x"); err == nil {
		t.Error("IndexOn unknown relation accepted")
	}
}

func TestScanRange(t *testing.T) {
	db := newEmpDB(t)
	for i := 0; i < 100; i++ {
		db.Insert("emp", emp(i, fmt.Sprintf("p%02d", i)))
	}
	lo, hi := relation.Int(10), relation.Int(19)
	count := func() int {
		n := 0
		db.ScanRange("emp", 0, &lo, &hi, func(tp relation.Tuple) bool {
			if tp[0].Int < 10 || tp[0].Int > 19 {
				t.Errorf("out-of-range tuple %v", tp)
			}
			n++
			return true
		})
		return n
	}
	// Unindexed path.
	if got := count(); got != 10 {
		t.Errorf("unindexed range = %d, want 10", got)
	}
	// Indexed path must agree.
	if err := db.IndexOn("emp", "id"); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 10 {
		t.Errorf("indexed range = %d, want 10", got)
	}
	// Open bounds.
	n := 0
	db.ScanRange("emp", 0, &lo, nil, func(relation.Tuple) bool { n++; return true })
	if n != 90 {
		t.Errorf("lo-only range = %d, want 90", n)
	}
	n = 0
	db.ScanRange("emp", 0, nil, &hi, func(relation.Tuple) bool { n++; return true })
	if n != 20 {
		t.Errorf("hi-only range = %d, want 20", n)
	}
	n = 0
	db.ScanRange("emp", 0, nil, nil, func(relation.Tuple) bool { n++; return true })
	if n != 100 {
		t.Errorf("unbounded range = %d, want 100", n)
	}
	// Early stop.
	n = 0
	db.ScanRange("emp", 0, &lo, &hi, func(relation.Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
	// String attribute ranges on the indexed path.
	sLo, sHi := relation.Str("p50"), relation.Str("p59")
	db.IndexOn("emp", "name")
	n = 0
	db.ScanRange("emp", 1, &sLo, &sHi, func(relation.Tuple) bool { n++; return true })
	if n != 10 {
		t.Errorf("string range = %d, want 10", n)
	}
	// Bad relation / position are no-ops.
	db.ScanRange("ghost", 0, nil, nil, func(relation.Tuple) bool { t.Error("visited"); return false })
	db.ScanRange("emp", 9, nil, nil, func(relation.Tuple) bool { t.Error("visited"); return false })
}

func TestPrefixSuccessor(t *testing.T) {
	cases := map[string]string{
		"abc":             "abd",
		"ab\xff":          "ac",
		"\xff\xff":        "",
		"":                "",
		"a\xff\xff":       "b",
		string([]byte{0}): string([]byte{1}),
	}
	for in, want := range cases {
		if got := prefixSuccessor(in); got != want {
			t.Errorf("prefixSuccessor(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestInstanceExport(t *testing.T) {
	db := newEmpDB(t)
	db.Insert("emp", emp(1, "a"))
	db.Insert("emp", emp(2, "b"))
	in := db.Instance()
	if in.Size() != 2 || !in.Has("emp", emp(1, "a")) {
		t.Errorf("Instance = %v", in)
	}
}

func TestDefineSchemaAndStats(t *testing.T) {
	s := relation.NewSchema()
	s.MustAdd(&relation.RelDef{Name: "a", Attrs: []relation.Attr{{Name: "x", Type: relation.TInt}}})
	s.MustAdd(&relation.RelDef{Name: "b", Attrs: []relation.Attr{{Name: "y", Type: relation.TString}}})
	db := MustOpenMem()
	if err := db.DefineSchema(s); err != nil {
		t.Fatal(err)
	}
	db.Insert("a", relation.Tuple{relation.Int(1)})
	st := db.Stats()
	if st.Relations != 2 || st.Tuples != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestClosedDBRejectsWrites(t *testing.T) {
	db := newEmpDB(t)
	db.Close()
	if _, err := db.Insert("emp", emp(1, "a")); err == nil {
		t.Error("insert after close accepted")
	}
	if err := db.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// Property test: random op sequence against a reference map.
func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := MustOpenMem()
		db.DefineRelation(empDef())
		ref := make(map[string]relation.Tuple)
		for i := 0; i < 1500; i++ {
			tp := emp(r.Intn(100), fmt.Sprintf("n%d", r.Intn(5)))
			k := tp.Key()
			switch r.Intn(3) {
			case 0, 1:
				fresh, err := db.Insert("emp", tp)
				if err != nil {
					return false
				}
				_, had := ref[k]
				if fresh == had {
					return false
				}
				ref[k] = tp
			case 2:
				existed, err := db.Delete("emp", tp)
				if err != nil {
					return false
				}
				_, had := ref[k]
				if existed != had {
					return false
				}
				delete(ref, k)
			}
		}
		if db.Count("emp") != len(ref) {
			return false
		}
		ok := true
		db.Scan("emp", func(tp relation.Tuple) bool {
			if _, had := ref[tp.Key()]; !had {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
