package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"codb/internal/relation"
)

func openShards(t *testing.T, shards int) *DB {
	t.Helper()
	db, err := Open(Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.DefineRelation(empDef()); err != nil {
		t.Fatal(err)
	}
	return db
}

// scanKeys returns the merged scan's keys, asserting global key order.
func scanKeys(t *testing.T, db *DB, rel string) []string {
	t.Helper()
	var keys []string
	db.Scan(rel, func(tp relation.Tuple) bool {
		keys = append(keys, tp.Key())
		return true
	})
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("merged scan out of order at %d: %q >= %q", i, keys[i-1], keys[i])
		}
	}
	return keys
}

// TestShardedOpsAgainstModel is the storage property test: a randomized
// insert/delete/reinsert trace runs against every shard count and a model
// map; after every batch of ops the shard-merged scan must equal the
// model's sorted keys, and the secondary index must agree with a filtered
// model scan — the delete-then-reinsert hazard across shard boundaries.
func TestShardedOpsAgainstModel(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			db := openShards(t, shards)
			if err := db.IndexOn("emp", "name"); err != nil {
				t.Fatal(err)
			}
			rnd := rand.New(rand.NewSource(int64(shards) * 7919))
			model := make(map[string]relation.Tuple)
			for step := 0; step < 40; step++ {
				tx := db.Begin()
				staged := make(map[string]bool) // key -> present after tx
				for k := range model {
					staged[k] = true
				}
				for op := 0; op < 25; op++ {
					tp := emp(rnd.Intn(60), fmt.Sprintf("n%d", rnd.Intn(7)))
					k := tp.Key()
					if rnd.Intn(3) == 2 {
						existed, err := tx.Delete("emp", tp)
						if err != nil {
							t.Fatal(err)
						}
						if existed != staged[k] {
							t.Fatalf("step %d: Delete existed=%v, model %v", step, existed, staged[k])
						}
						delete(staged, k)
					} else {
						fresh, err := tx.Insert("emp", tp)
						if err != nil {
							t.Fatal(err)
						}
						if fresh == staged[k] {
							t.Fatalf("step %d: Insert fresh=%v, model present=%v", step, fresh, staged[k])
						}
						staged[k] = true
					}
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				model = make(map[string]relation.Tuple)
				for k := range staged {
					tp, err := relation.DecodeTuple([]byte(k), 2)
					if err != nil {
						t.Fatal(err)
					}
					model[k] = tp
				}

				// Merged scan == sorted model.
				keys := scanKeys(t, db, "emp")
				if len(keys) != len(model) {
					t.Fatalf("step %d: scan %d keys, model %d", step, len(keys), len(model))
				}
				for _, k := range keys {
					if _, ok := model[k]; !ok {
						t.Fatalf("step %d: scan surfaced key missing from model", step)
					}
				}
				if db.Count("emp") != len(model) {
					t.Fatalf("step %d: Count = %d, model %d", step, db.Count("emp"), len(model))
				}
				// Secondary index == filtered model (the delete-then-
				// reinsert consistency check).
				for v := 0; v < 7; v++ {
					name := fmt.Sprintf("n%d", v)
					want := 0
					for _, tp := range model {
						if tp[1].Str == name {
							want++
						}
					}
					got := 0
					db.ScanEq("emp", 1, relation.Str(name), func(tp relation.Tuple) bool {
						if tp[1].Str != name {
							t.Fatalf("step %d: ScanEq(%s) surfaced %v", step, name, tp)
						}
						got++
						return true
					})
					if got != want {
						t.Fatalf("step %d: ScanEq(%s) = %d rows, model %d", step, name, got, want)
					}
				}
			}
		})
	}
}

// TestShardCountsAgree runs one deterministic trace at every shard count:
// scans, counts, tuples, instances and range scans must be identical.
func TestShardCountsAgree(t *testing.T) {
	build := func(shards int) *DB {
		db := openShards(t, shards)
		rnd := rand.New(rand.NewSource(99))
		for i := 0; i < 400; i++ {
			tp := emp(rnd.Intn(150), fmt.Sprintf("p%d", rnd.Intn(10)))
			if rnd.Intn(4) == 3 {
				db.Delete("emp", tp)
			} else {
				db.Insert("emp", tp)
			}
		}
		return db
	}
	ref := build(1)
	refKeys := scanKeys(t, ref, "emp")
	lo, hi := relation.Int(20), relation.Int(90)
	var refRange []string
	ref.ScanRange("emp", 0, &lo, &hi, func(tp relation.Tuple) bool {
		refRange = append(refRange, tp.Key())
		return true
	})
	for _, shards := range []int{2, 5, 16} {
		db := build(shards)
		keys := scanKeys(t, db, "emp")
		if len(keys) != len(refKeys) {
			t.Fatalf("shards=%d: %d keys, ref %d", shards, len(keys), len(refKeys))
		}
		for i := range keys {
			if keys[i] != refKeys[i] {
				t.Fatalf("shards=%d: key %d diverges", shards, i)
			}
		}
		db.IndexOn("emp", "id")
		var got []string
		db.ScanRange("emp", 0, &lo, &hi, func(tp relation.Tuple) bool {
			got = append(got, tp.Key())
			return true
		})
		if len(got) != len(refRange) {
			t.Fatalf("shards=%d: indexed range %d rows, ref %d", shards, len(got), len(refRange))
		}
		for i := range got {
			if got[i] != refRange[i] {
				t.Fatalf("shards=%d: range row %d diverges", shards, i)
			}
		}
	}
}

// TestShardedRecoveryByteIdentical checks the acceptance criterion:
// shards > 1 recovery (snapshot v3 + WAL replay) produces scans byte-
// identical to the shards=1 reference, and the snapshot bytes after the
// shard-count field do not depend on the shard count.
func TestShardedRecoveryByteIdentical(t *testing.T) {
	seedData := func(db *DB) {
		for i := 0; i < 120; i++ {
			db.Insert("emp", emp(i, fmt.Sprintf("p%d", i%11)))
		}
		db.Checkpoint()
		// Post-checkpoint commits exercise WAL replay on top of the v3
		// snapshot.
		for i := 200; i < 260; i++ {
			db.Insert("emp", emp(i, "wal"))
		}
		db.Delete("emp", emp(3, "p3"))
	}
	dirs := map[int]string{}
	var refKeys []string
	for _, shards := range []int{1, 4, 16} {
		dir := t.TempDir()
		dirs[shards] = dir
		db, err := Open(Options{Dir: dir, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.DefineRelation(empDef()); err != nil {
			t.Fatal(err)
		}
		seedData(db)
		// No Close checkpoint for the crash-like path: sync the WAL and
		// reopen over snapshot + log.
		db.log.Sync()

		re, err := Open(Options{Dir: dir, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		keys := scanKeys(t, re, "emp")
		if shards == 1 {
			refKeys = keys
		} else {
			if len(keys) != len(refKeys) {
				t.Fatalf("shards=%d: recovered %d keys, ref %d", shards, len(keys), len(refKeys))
			}
			for i := range keys {
				if keys[i] != refKeys[i] {
					t.Fatalf("shards=%d: recovered key %d diverges", shards, i)
				}
			}
		}
		if re.LSN() == 0 {
			t.Fatalf("shards=%d: LSN lost in recovery", shards)
		}
		re.Close()
		db.Close()
	}

	// Snapshot files: identical bytes after the leading shard-count field.
	tail := func(shards int) []byte {
		data, err := os.ReadFile(filepath.Join(dirs[shards], snapshotName))
		if err != nil {
			t.Fatal(err)
		}
		body := data[12:]
		_, n := binary.Uvarint(body)
		return body[n:]
	}
	if !bytes.Equal(tail(1), tail(4)) || !bytes.Equal(tail(1), tail(16)) {
		t.Fatal("snapshot bodies depend on the shard count")
	}
}

// TestSnapshotV2Upgrade feeds the engine a hand-built v2 snapshot (the
// pre-sharding format: no shard count, LSN trailing) and checks the
// transparent upgrade: contents and LSN load, the next checkpoint rewrites
// v3, and a reopen on the v3 file sees identical scans.
func TestSnapshotV2Upgrade(t *testing.T) {
	dir := t.TempDir()
	// v2 body: schema, tuples (key order), LSN.
	def := empDef()
	tuples := []relation.Tuple{emp(1, "a"), emp(2, "b"), emp(3, "c")}
	body := binary.AppendUvarint(nil, 1)
	body = encodeDef(body, def)
	body = binary.AppendUvarint(body, uint64(len(tuples)))
	for _, tp := range tuples {
		body = putBytes(body, []byte(tp.Key()))
	}
	const v2LSN = 41
	body = binary.AppendUvarint(body, v2LSN)
	var hdr [12]byte
	copy(hdr[:4], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], 2)
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(body))
	if err := os.WriteFile(filepath.Join(dir, snapshotName), append(hdr[:], body...), 0o644); err != nil {
		t.Fatal(err)
	}

	db, err := Open(Options{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatalf("v2 snapshot rejected: %v", err)
	}
	if got := db.LSN(); got != v2LSN {
		t.Fatalf("LSN after v2 load = %d, want %d", got, v2LSN)
	}
	preKeys := scanKeys(t, db, "emp")
	if len(preKeys) != len(tuples) {
		t.Fatalf("v2 load recovered %d tuples, want %d", len(preKeys), len(tuples))
	}
	db.Insert("emp", emp(4, "d"))
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The rewritten snapshot is v3 and records the shard count.
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != snapVersion {
		t.Fatalf("post-upgrade snapshot version = %d, want %d", v, snapVersion)
	}
	recorded, _ := binary.Uvarint(data[12:])
	if recorded != 4 {
		t.Fatalf("recorded shard count = %d, want 4", recorded)
	}
	wantKeys := scanKeys(t, db, "emp")
	db.Close()

	// Shards=0 adopts the recorded count; scans stay byte-identical.
	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Shards() != 4 {
		t.Fatalf("reopen adopted %d shards, want 4", re.Shards())
	}
	gotKeys := scanKeys(t, re, "emp")
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("post-upgrade recovery: %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range gotKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("post-upgrade key %d diverges", i)
		}
	}
	if re.LSN() != v2LSN+1 { // v2 LSN + one insert
		t.Fatalf("post-upgrade LSN = %d, want %d", re.LSN(), v2LSN+1)
	}
}

// TestConcurrentMultiShardCommits hammers the commit protocol under -race:
// concurrent multi-shard transactions, snapshot readers and a Changes
// consumer. Every snapshot must be a consistent cut (multi-tuple commits
// are all-or-nothing across shards) and watermark-chained Changes must
// lose no committed tuple (the protocol is at-least-once; set semantics
// absorb re-fetches, as the export layer does).
func TestConcurrentMultiShardCommits(t *testing.T) {
	db, err := Open(Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.DefineRelation(empDef()); err != nil {
		t.Fatal(err)
	}
	const writers, per, batch = 4, 60, 5
	stop := make(chan struct{})
	var observers sync.WaitGroup
	// Snapshot readers: every view must hold a multiple of `batch` tuples.
	for r := 0; r < 2; r++ {
		observers.Add(1)
		go func() {
			defer observers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := db.Snapshot()
				if n := snap.Count("emp"); n%batch != 0 {
					t.Errorf("snapshot saw %d tuples: torn multi-shard commit", n)
					return
				}
			}
		}()
	}
	// Watermark chaser, following the export layer's protocol: read the
	// visible LSN first, fetch the delta since the previous watermark,
	// advance the watermark to the pre-fetch LSN.
	seen := make(map[string]bool)
	observers.Add(1)
	go func() {
		defer observers.Done()
		var w uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := db.LSN()
			delta, ok := db.Changes("emp", w)
			if !ok {
				t.Error("history lost without deletes or truncation")
				return
			}
			for _, tp := range delta {
				seen[tp.Key()] = true
			}
			w = cur
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < per; i++ {
				tx := db.Begin()
				for j := 0; j < batch; j++ {
					if _, err := tx.Insert("emp", emp(w*100_000+i*batch+j, "x")); err != nil {
						t.Error(err)
						return
					}
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	observers.Wait()
	// Quiescent drain: everything not yet chased arrives now.
	delta, ok := db.Changes("emp", 0)
	if !ok {
		t.Fatal("history lost at quiescence")
	}
	for _, tp := range delta {
		seen[tp.Key()] = true
	}
	if len(seen) != writers*per*batch {
		t.Fatalf("Changes chain saw %d tuples, want %d", len(seen), writers*per*batch)
	}
	if got := db.Count("emp"); got != writers*per*batch {
		t.Fatalf("Count = %d, want %d", got, writers*per*batch)
	}
	if got := db.LSN(); got != uint64(1+writers*per) { // DDL + commits
		t.Fatalf("visible LSN = %d, want %d", got, 1+writers*per)
	}
}

// TestGroupCommitDurableMultiWriter commits from many goroutines with
// SyncOnCommit and verifies recovery sees everything, batching occurred,
// and the WAL replays in LSN order.
func TestGroupCommitDurableMultiWriter(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, SyncOnCommit: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DefineRelation(empDef()); err != nil {
		t.Fatal(err)
	}
	const writers, per = 6, 30
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := db.Insert("emp", emp(w*1000+i, "d")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := db.DetailedStats()
	if !st.GroupCommitEnabled {
		t.Fatal("group commit not enabled on a durable database")
	}
	if st.GroupCommit.Commits < writers*per {
		t.Fatalf("group commits = %d, want >= %d", st.GroupCommit.Commits, writers*per)
	}
	lsn := db.LSN()
	// Crash-style reopen: every sync-on-commit transaction is already
	// durable, no checkpoint.
	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if re.Count("emp") != writers*per {
		t.Fatalf("recovered %d tuples, want %d", re.Count("emp"), writers*per)
	}
	if re.LSN() != lsn {
		t.Fatalf("recovered LSN %d, want %d", re.LSN(), lsn)
	}
	re.Close()
	db.Close()
}

// TestDetailedStats sanity-checks the per-shard report.
func TestDetailedStats(t *testing.T) {
	db := openShards(t, 4)
	for i := 0; i < 40; i++ {
		db.Insert("emp", emp(i, "s"))
	}
	st := db.DetailedStats()
	if st.Shards != 4 {
		t.Fatalf("Shards = %d", st.Shards)
	}
	if len(st.Relations) != 1 || st.Relations[0].Name != "emp" {
		t.Fatalf("Relations = %+v", st.Relations)
	}
	total, bytes := 0, int64(0)
	for _, sh := range st.Relations[0].Shards {
		total += sh.Tuples
		bytes += sh.Bytes
	}
	if total != 40 || bytes == 0 {
		t.Fatalf("per-shard totals: %d tuples, %d bytes", total, bytes)
	}
	if st.GroupCommitEnabled {
		t.Fatal("memory-only database claims a group committer")
	}
}
