package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"codb/internal/relation"
)

// TestBackgroundCheckpointCommitRace hammers commits from N goroutines
// while checkpoints run in a loop (under -race in CI). Invariants: the
// observed LSN never regresses, no commit blocks for longer than a bounded
// threshold (the stop-the-world checkpoint held db.mu exclusively for the
// whole snapshot write; the background one must not), and the state
// reopened after the storm is byte-identical to a quiescent checkpoint of
// it.
func TestBackgroundCheckpointCommitRace(t *testing.T) {
	// Generous wall-clock bound: this is an anti-stall assertion, not a
	// latency benchmark — it fails when a checkpoint blocks commits for
	// its whole duration, not when CI is slow.
	const maxCommitStall = 5 * time.Second
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Shards: 4, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DefineRelation(empDef()); err != nil {
		t.Fatal(err)
	}

	const writers = 6
	const perWriter = 300
	var maxStall atomic.Int64
	var wg sync.WaitGroup
	stopCkpt := make(chan struct{})
	ckptLoopDone := make(chan struct{})
	var ckpts atomic.Int64
	go func() {
		defer close(ckptLoopDone)
		for {
			select {
			case <-stopCkpt:
				return
			default:
			}
			if err := db.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
			ckpts.Add(1)
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lastLSN := uint64(0)
			for i := 0; i < perWriter; i++ {
				start := time.Now()
				if _, err := db.Insert("emp", emp(w*100000+i, "race")); err != nil {
					t.Error(err)
					return
				}
				if d := time.Since(start); d.Nanoseconds() > maxStall.Load() {
					maxStall.Store(d.Nanoseconds())
				}
				// LSN monotonicity under concurrent checkpoints.
				if lsn := db.LSN(); lsn < lastLSN {
					t.Errorf("LSN regressed: %d after %d", lsn, lastLSN)
					return
				} else {
					lastLSN = lsn
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopCkpt)
	<-ckptLoopDone // the loop must not touch the DB past this point
	if t.Failed() {
		return
	}
	if got := time.Duration(maxStall.Load()); got > maxCommitStall {
		t.Fatalf("a commit stalled %v during background checkpoints (bound %v)", got, maxCommitStall)
	}
	if ckpts.Load() == 0 {
		t.Fatal("checkpoint loop never completed one checkpoint")
	}

	// Quiesce, checkpoint, and capture the reference state.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	lsnQ := db.LSN()
	var keysQ []string
	db.Scan("emp", func(tu relation.Tuple) bool { keysQ = append(keysQ, tu.Key()); return true })
	if want := writers * perWriter; len(keysQ) != want {
		t.Fatalf("quiescent state has %d tuples, want %d", len(keysQ), want)
	}
	snapQ, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Post-restart the database must match, and a fresh quiescent
	// checkpoint must reproduce the snapshot byte for byte.
	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.LSN(); got != lsnQ {
		t.Fatalf("reopened LSN = %d, want %d", got, lsnQ)
	}
	i := 0
	re.Scan("emp", func(tu relation.Tuple) bool {
		if i >= len(keysQ) || tu.Key() != keysQ[i] {
			t.Fatalf("reopened tuple %d diverges", i)
			return false
		}
		i++
		return true
	})
	if i != len(keysQ) {
		t.Fatalf("reopened %d tuples, want %d", i, len(keysQ))
	}
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snapR, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapQ, snapR) {
		t.Fatalf("quiescent re-checkpoint diverges from the storm-era snapshot (%d vs %d bytes)",
			len(snapQ), len(snapR))
	}
}

// TestAutoCheckpointIsBackground verifies the CheckpointEvery trigger
// checkpoints without making the triggering commit (or its successors)
// wait for the snapshot write, and that the checkpoint does land.
func TestAutoCheckpointIsBackground(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DefineRelation(empDef()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Insert("emp", emp(i, fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Close waits out any in-flight background checkpoint and surfaces its
	// errors.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("auto checkpoint never wrote a snapshot: %v", err)
	}
	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Count("emp"); got != 100 {
		t.Fatalf("recovered Count = %d", got)
	}
}
