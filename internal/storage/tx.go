package storage

import (
	"fmt"

	"codb/internal/relation"
)

// Tx is a transaction. Writes are staged privately and become visible (and
// logged) atomically at Commit. Reads through the transaction see the staged
// writes ("read your writes"). A Tx is not safe for concurrent use.
type Tx struct {
	db   *DB
	done bool
	// staged operations in order, for the WAL record
	ops []op
	// per-relation overlay: tuple key -> staged state
	overlay map[string]map[string]stagedTuple
}

type opKind uint8

const (
	opInsert opKind = 1
	opDelete opKind = 2
	opDDL    opKind = 3
)

type op struct {
	kind  opKind
	rel   string
	tuple relation.Tuple
}

type stagedTuple struct {
	tuple   relation.Tuple
	present bool // true = staged insert, false = staged delete
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx {
	return &Tx{db: db, overlay: make(map[string]map[string]stagedTuple)}
}

func (tx *Tx) stage(rel string) map[string]stagedTuple {
	m := tx.overlay[rel]
	if m == nil {
		m = make(map[string]stagedTuple)
		tx.overlay[rel] = m
	}
	return m
}

// Insert stages a tuple insertion. It returns true if the tuple is new with
// respect to the committed state plus this transaction's stage (set
// semantics: re-inserting an existing tuple is a no-op returning false).
func (tx *Tx) Insert(rel string, tuple relation.Tuple) (bool, error) {
	if tx.done {
		return false, errTxDone
	}
	def := tx.db.Rel(rel)
	if def == nil {
		return false, fmt.Errorf("storage: unknown relation %q", rel)
	}
	if err := def.Validate(tuple); err != nil {
		return false, err
	}
	key := tuple.Key()
	m := tx.stage(rel)
	if st, ok := m[key]; ok {
		if st.present {
			return false, nil
		}
		// Staged delete followed by insert: net effect is presence.
		m[key] = stagedTuple{tuple: tuple.Clone(), present: true}
		tx.ops = append(tx.ops, op{opInsert, rel, tuple.Clone()})
		return true, nil
	}
	if tx.db.Has(rel, tuple) {
		return false, nil
	}
	m[key] = stagedTuple{tuple: tuple.Clone(), present: true}
	tx.ops = append(tx.ops, op{opInsert, rel, tuple.Clone()})
	return true, nil
}

// Delete stages a tuple deletion, reporting whether the tuple was present.
func (tx *Tx) Delete(rel string, tuple relation.Tuple) (bool, error) {
	if tx.done {
		return false, errTxDone
	}
	if tx.db.Rel(rel) == nil {
		return false, fmt.Errorf("storage: unknown relation %q", rel)
	}
	key := tuple.Key()
	m := tx.stage(rel)
	if st, ok := m[key]; ok {
		if !st.present {
			return false, nil
		}
		m[key] = stagedTuple{tuple: tuple.Clone(), present: false}
		tx.ops = append(tx.ops, op{opDelete, rel, tuple.Clone()})
		return true, nil
	}
	if !tx.db.Has(rel, tuple) {
		return false, nil
	}
	m[key] = stagedTuple{tuple: tuple.Clone(), present: false}
	tx.ops = append(tx.ops, op{opDelete, rel, tuple.Clone()})
	return true, nil
}

// Has reports presence through the transaction (committed state plus stage).
func (tx *Tx) Has(rel string, tuple relation.Tuple) bool {
	if st, ok := tx.overlay[rel][tuple.Key()]; ok {
		return st.present
	}
	return tx.db.Has(rel, tuple)
}

// Scan iterates the relation as seen by the transaction: committed tuples
// not staged-deleted, then staged inserts.
func (tx *Tx) Scan(rel string, fn func(relation.Tuple) bool) {
	stage := tx.overlay[rel]
	stopped := false
	tx.db.Scan(rel, func(t relation.Tuple) bool {
		if st, ok := stage[t.Key()]; ok && !st.present {
			return true
		}
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, st := range stage {
		if st.present && !tx.db.Has(rel, st.tuple) {
			if !fn(st.tuple) {
				return
			}
		}
	}
}

var errTxDone = fmt.Errorf("storage: transaction already finished")

// Commit applies the staged operations atomically, appends them to the WAL,
// and (when configured) syncs and checkpoints.
func (tx *Tx) Commit() error {
	if tx.done {
		return errTxDone
	}
	tx.done = true
	if len(tx.ops) == 0 {
		return nil
	}
	db := tx.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	db.lsn++
	for _, o := range tx.ops {
		t := db.tables[o.rel]
		switch o.kind {
		case opInsert:
			if t.insert(o.tuple) {
				db.captureInsert(t, o.tuple)
			}
		case opDelete:
			if t.delete(o.tuple) {
				db.captureDelete(t)
			}
		}
	}
	if db.log != nil {
		rec := encodeOps(tx.ops)
		if err := db.log.Append(rec); err != nil {
			return err
		}
		if db.opts.SyncOnCommit {
			if err := db.log.Sync(); err != nil {
				return err
			}
		}
		db.commitsSinceCheckpoint++
		if db.opts.CheckpointEvery > 0 && db.commitsSinceCheckpoint >= db.opts.CheckpointEvery {
			return db.checkpointLocked()
		}
	}
	return nil
}

// Rollback discards the staged operations. Rollback after Commit is a no-op.
func (tx *Tx) Rollback() {
	tx.done = true
	tx.ops = nil
	tx.overlay = nil
}

// insert adds the tuple to the table (caller holds the write lock). Returns
// whether the tuple was new.
func (t *table) insert(tuple relation.Tuple) bool {
	key := tuple.Key()
	if _, dup := t.primary.Get(key); dup {
		return false
	}
	var slot int
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[slot] = tuple
	} else {
		slot = len(t.rows)
		t.rows = append(t.rows, tuple)
	}
	t.primary.Put(key, slot)
	for pos, idx := range t.second {
		idx.Put(secondaryKey(tuple, pos), slot)
	}
	t.invalidateSnap()
	return true
}

// delete removes the tuple (caller holds the write lock). Returns whether it
// was present.
func (t *table) delete(tuple relation.Tuple) bool {
	key := tuple.Key()
	slot, ok := t.primary.Get(key)
	if !ok {
		return false
	}
	t.primary.Delete(key)
	for pos, idx := range t.second {
		idx.Delete(secondaryKey(t.rows[slot], pos))
	}
	t.rows[slot] = nil
	t.free = append(t.free, slot)
	t.invalidateSnap()
	return true
}

// Insert is a single-op convenience: one auto-committed insertion. Returns
// whether the tuple was new.
func (db *DB) Insert(rel string, tuple relation.Tuple) (bool, error) {
	tx := db.Begin()
	fresh, err := tx.Insert(rel, tuple)
	if err != nil {
		tx.Rollback()
		return false, err
	}
	return fresh, tx.Commit()
}

// InsertMany inserts a batch in one transaction, returning the tuples that
// were actually new (the delta T′ = T \ R the update algorithm needs).
func (db *DB) InsertMany(rel string, tuples []relation.Tuple) ([]relation.Tuple, error) {
	tx := db.Begin()
	var fresh []relation.Tuple
	for _, t := range tuples {
		ok, err := tx.Insert(rel, t)
		if err != nil {
			tx.Rollback()
			return nil, err
		}
		if ok {
			fresh = append(fresh, t)
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return fresh, nil
}

// Delete is a single-op convenience: one auto-committed deletion.
func (db *DB) Delete(rel string, tuple relation.Tuple) (bool, error) {
	tx := db.Begin()
	existed, err := tx.Delete(rel, tuple)
	if err != nil {
		tx.Rollback()
		return false, err
	}
	return existed, tx.Commit()
}
