package storage

import (
	"fmt"
	"sort"

	"codb/internal/relation"
)

// Tx is a transaction. Writes are staged privately and become visible (and
// logged) atomically at Commit. Reads through the transaction see the staged
// writes ("read your writes"). A Tx is not safe for concurrent use.
type Tx struct {
	db   *DB
	done bool
	// staged operations in order, for the WAL record
	ops []op
	// per-relation overlay: tuple key -> staged state
	overlay map[string]map[string]stagedTuple
}

type opKind uint8

const (
	opInsert opKind = 1
	opDelete opKind = 2
	opDDL    opKind = 3
)

type op struct {
	kind  opKind
	rel   string
	tuple relation.Tuple
}

type stagedTuple struct {
	tuple   relation.Tuple
	present bool // true = staged insert, false = staged delete
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx {
	return &Tx{db: db, overlay: make(map[string]map[string]stagedTuple)}
}

func (tx *Tx) stage(rel string) map[string]stagedTuple {
	m := tx.overlay[rel]
	if m == nil {
		m = make(map[string]stagedTuple)
		tx.overlay[rel] = m
	}
	return m
}

// Insert stages a tuple insertion. It returns true if the tuple is new with
// respect to the committed state plus this transaction's stage (set
// semantics: re-inserting an existing tuple is a no-op returning false).
func (tx *Tx) Insert(rel string, tuple relation.Tuple) (bool, error) {
	if tx.done {
		return false, errTxDone
	}
	def := tx.db.Rel(rel)
	if def == nil {
		return false, fmt.Errorf("storage: unknown relation %q", rel)
	}
	if err := def.Validate(tuple); err != nil {
		return false, err
	}
	key := tuple.Key()
	m := tx.stage(rel)
	if st, ok := m[key]; ok {
		if st.present {
			return false, nil
		}
		// Staged delete followed by insert: net effect is presence.
		m[key] = stagedTuple{tuple: tuple.Clone(), present: true}
		tx.ops = append(tx.ops, op{opInsert, rel, tuple.Clone()})
		return true, nil
	}
	if tx.db.Has(rel, tuple) {
		return false, nil
	}
	m[key] = stagedTuple{tuple: tuple.Clone(), present: true}
	tx.ops = append(tx.ops, op{opInsert, rel, tuple.Clone()})
	return true, nil
}

// Delete stages a tuple deletion, reporting whether the tuple was present.
func (tx *Tx) Delete(rel string, tuple relation.Tuple) (bool, error) {
	if tx.done {
		return false, errTxDone
	}
	if tx.db.Rel(rel) == nil {
		return false, fmt.Errorf("storage: unknown relation %q", rel)
	}
	key := tuple.Key()
	m := tx.stage(rel)
	if st, ok := m[key]; ok {
		if !st.present {
			return false, nil
		}
		m[key] = stagedTuple{tuple: tuple.Clone(), present: false}
		tx.ops = append(tx.ops, op{opDelete, rel, tuple.Clone()})
		return true, nil
	}
	if !tx.db.Has(rel, tuple) {
		return false, nil
	}
	m[key] = stagedTuple{tuple: tuple.Clone(), present: false}
	tx.ops = append(tx.ops, op{opDelete, rel, tuple.Clone()})
	return true, nil
}

// Has reports presence through the transaction (committed state plus stage).
func (tx *Tx) Has(rel string, tuple relation.Tuple) bool {
	if st, ok := tx.overlay[rel][tuple.Key()]; ok {
		return st.present
	}
	return tx.db.Has(rel, tuple)
}

// Scan iterates the relation as seen by the transaction: committed tuples
// not staged-deleted, then staged inserts.
func (tx *Tx) Scan(rel string, fn func(relation.Tuple) bool) {
	stage := tx.overlay[rel]
	stopped := false
	tx.db.Scan(rel, func(t relation.Tuple) bool {
		if st, ok := stage[t.Key()]; ok && !st.present {
			return true
		}
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, st := range stage {
		if st.present && !tx.db.Has(rel, st.tuple) {
			if !fn(st.tuple) {
				return
			}
		}
	}
}

var errTxDone = fmt.Errorf("storage: transaction already finished")

// Commit applies the staged operations atomically, appends them to the WAL,
// and (when configured) syncs and checkpoints.
//
// The commit protocol is the heart of the sharded engine: the transaction
// write-locks exactly the shards its ops touch (in the global lock order),
// takes its LSN and enqueues its WAL record under the short commit-ordering
// mutex, then — on the sync-on-commit group path — waits for the shared
// batch fsync and applies while still holding only those shard locks, so
// commits to disjoint shards form batches and run in parallel while no
// reader ever observes a commit that is not yet durable.
func (tx *Tx) Commit() error {
	if tx.done {
		return errTxDone
	}
	tx.done = true
	if len(tx.ops) == 0 {
		return nil
	}
	db := tx.db
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return errClosed
	}
	keys := make([]string, len(tx.ops))
	for i, o := range tx.ops {
		keys[i] = o.tuple.Key()
	}
	locked := db.lockOpShards(tx.ops, keys)
	db.commitMu.Lock()
	lsn := db.assignLSN()
	var wait <-chan error
	var werr error
	if db.log != nil {
		wait, werr = db.appendRecord(encodeOps(tx.ops))
	}
	db.commitMu.Unlock()
	// Durability before visibility: on the group-commit path (sync-on-
	// commit) the record must be stable before any reader can observe the
	// commit, so the fsync is awaited while the shard locks are still
	// held. Concurrent committers on other shards enqueue into the same
	// batch before waiting, so the fsync is still shared.
	//
	// A WAL failure is surfaced to the caller but the ops are applied in
	// memory regardless: once the record has been handed to the log its
	// bytes may already be on disk (a failed fsync reports an unknowable
	// OS state), so recovery may replay the commit — in-memory state must
	// stay a superset of whatever the log can resurrect, exactly as the
	// pre-sharding engine behaved.
	if wait != nil {
		werr = <-wait
	}
	for i, o := range tx.ops {
		s := db.tables[o.rel].shardFor(keys[i])
		switch o.kind {
		case opInsert:
			if s.insert(o.tuple) {
				db.captureInsert(s, lsn, o.tuple)
			}
		case opDelete:
			if s.delete(o.tuple) {
				db.captureDelete(s, lsn)
			}
		}
	}
	for _, s := range locked {
		s.mu.Unlock()
	}
	db.finishCommit(lsn)
	db.mu.RUnlock()
	if werr != nil {
		return werr
	}
	if db.log != nil {
		n := db.commitsSinceCheckpoint.Add(1)
		if db.opts.CheckpointEvery > 0 && n >= int64(db.opts.CheckpointEvery) {
			// Background: the checkpoint pins a snapshot and writes it
			// while this and every other committer keep going.
			db.kickCheckpoint()
		}
	}
	return nil
}

// lockOpShards write-locks the distinct shards the ops touch, in the
// global (relation name, shard index) order, and returns them for unlock.
// Consistent ordering across commits and full-cut readers (rlockTables)
// makes the per-shard locking deadlock-free.
func (db *DB) lockOpShards(ops []op, keys []string) []*shard {
	type ref struct {
		rel string
		idx int
		s   *shard
	}
	refs := make([]ref, 0, len(ops))
	seen := make(map[*shard]bool, len(ops))
	for i, o := range ops {
		t := db.tables[o.rel]
		idx := shardIndex(keys[i], len(t.shards))
		s := t.shards[idx]
		if !seen[s] {
			seen[s] = true
			refs = append(refs, ref{o.rel, idx, s})
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].rel != refs[j].rel {
			return refs[i].rel < refs[j].rel
		}
		return refs[i].idx < refs[j].idx
	})
	out := make([]*shard, len(refs))
	for i, r := range refs {
		r.s.mu.Lock()
		out[i] = r.s
	}
	return out
}

// Rollback discards the staged operations. Rollback after Commit is a no-op.
func (tx *Tx) Rollback() {
	tx.done = true
	tx.ops = nil
	tx.overlay = nil
}

// Insert is a single-op convenience: one auto-committed insertion. Returns
// whether the tuple was new.
func (db *DB) Insert(rel string, tuple relation.Tuple) (bool, error) {
	tx := db.Begin()
	fresh, err := tx.Insert(rel, tuple)
	if err != nil {
		tx.Rollback()
		return false, err
	}
	return fresh, tx.Commit()
}

// InsertMany inserts a batch in one transaction, returning the tuples that
// were actually new (the delta T′ = T \ R the update algorithm needs).
func (db *DB) InsertMany(rel string, tuples []relation.Tuple) ([]relation.Tuple, error) {
	tx := db.Begin()
	var fresh []relation.Tuple
	for _, t := range tuples {
		ok, err := tx.Insert(rel, t)
		if err != nil {
			tx.Rollback()
			return nil, err
		}
		if ok {
			fresh = append(fresh, t)
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return fresh, nil
}

// Delete is a single-op convenience: one auto-committed deletion.
func (db *DB) Delete(rel string, tuple relation.Tuple) (bool, error) {
	tx := db.Begin()
	existed, err := tx.Delete(rel, tuple)
	if err != nil {
		tx.Rollback()
		return false, err
	}
	return existed, tx.Commit()
}
