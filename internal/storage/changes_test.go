package storage

import (
	"os"
	"path/filepath"
	"testing"

	"codb/internal/relation"
)

func TestLSNMonotonePerCommit(t *testing.T) {
	db := newEmpDB(t)
	if got := db.LSN(); got != 1 { // DDL is a commit
		t.Fatalf("LSN after DDL = %d, want 1", got)
	}
	db.Insert("emp", emp(1, "a"))
	db.InsertMany("emp", []relation.Tuple{emp(2, "b"), emp(3, "c")})
	if got := db.LSN(); got != 3 {
		t.Fatalf("LSN = %d, want 3 (one per commit, not per tuple)", got)
	}
	// A duplicate insert still commits (and burns an LSN) but captures no
	// change.
	db.Insert("emp", emp(1, "a"))
	delta, ok := db.Changes("emp", 3)
	if !ok || len(delta) != 0 {
		t.Fatalf("Changes(3) = %v, %v; want empty, true", delta, ok)
	}
}

func TestChangesReturnsCommitDelta(t *testing.T) {
	db := newEmpDB(t)
	db.Insert("emp", emp(1, "a"))
	mark := db.LSN()
	db.Insert("emp", emp(2, "b"))
	db.Insert("emp", emp(3, "c"))

	delta, ok := db.Changes("emp", mark)
	if !ok {
		t.Fatal("history reported lost with intact changelog")
	}
	if len(delta) != 2 || delta[0].Key() != emp(2, "b").Key() || delta[1].Key() != emp(3, "c").Key() {
		t.Fatalf("Changes = %v, want [emp(2) emp(3)] in commit order", delta)
	}
	// Watermark at the head: empty delta, history intact.
	if delta, ok := db.Changes("emp", db.LSN()); !ok || len(delta) != 0 {
		t.Fatalf("Changes(head) = %v, %v", delta, ok)
	}
}

func TestChangesHistoryLostAfterDelete(t *testing.T) {
	db := newEmpDB(t)
	db.Insert("emp", emp(1, "a"))
	mark := db.LSN()
	db.Insert("emp", emp(2, "b"))
	db.Delete("emp", emp(1, "a"))

	if _, ok := db.Changes("emp", mark); ok {
		t.Fatal("delete did not poison history before it")
	}
	// History from the delete onward is intact again.
	afterDelete := db.LSN()
	db.Insert("emp", emp(4, "d"))
	delta, ok := db.Changes("emp", afterDelete)
	if !ok || len(delta) != 1 {
		t.Fatalf("Changes(after delete) = %v, %v; want one insert, true", delta, ok)
	}
	// Deleting a tuple that is not present burns the commit but keeps
	// history: nothing actually changed.
	db.Delete("emp", emp(99, "nope"))
	if _, ok := db.Changes("emp", afterDelete); !ok {
		t.Error("no-op delete poisoned history")
	}
}

func TestChangesHistoryLostAfterTruncation(t *testing.T) {
	db, err := Open(Options{ChangelogLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DefineRelation(empDef()); err != nil {
		t.Fatal(err)
	}
	mark := db.LSN()
	for i := 0; i < 10; i++ {
		db.Insert("emp", emp(i, "x"))
	}
	if _, ok := db.Changes("emp", mark); ok {
		t.Fatal("truncated changelog did not report history lost")
	}
	// The most recent window is still answerable.
	recent := db.LSN() - 2
	delta, ok := db.Changes("emp", recent)
	if !ok || len(delta) != 2 {
		t.Fatalf("Changes(recent) = %v, %v; want 2 inserts, true", delta, ok)
	}
}

func TestChangesUnknownRelationIsLost(t *testing.T) {
	db := newEmpDB(t)
	if _, ok := db.Changes("nope", 0); ok {
		t.Fatal("unknown relation reported intact history")
	}
}

func TestChangelogDisabled(t *testing.T) {
	db, err := Open(Options{ChangelogLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	db.DefineRelation(empDef())
	mark := db.LSN()
	db.Insert("emp", emp(1, "a"))
	if _, ok := db.Changes("emp", mark); ok {
		t.Fatal("disabled change capture reported intact history")
	}
}

func TestLSNAndChangesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, Options{})
	db.DefineRelation(empDef())
	db.Insert("emp", emp(1, "a"))
	mark := db.LSN()
	db.Insert("emp", emp(2, "b"))
	lsnBefore := db.LSN()
	// Sync the WAL without checkpointing, as a crash would leave it.
	db.log.Sync()

	db2 := openDurable(t, dir, Options{})
	defer db2.Close()
	if got := db2.LSN(); got != lsnBefore {
		t.Fatalf("LSN after WAL replay = %d, want %d", got, lsnBefore)
	}
	// The replayed WAL repopulates the changelog, so a pre-crash watermark
	// is still incrementally answerable.
	delta, ok := db2.Changes("emp", mark)
	if !ok || len(delta) != 1 || delta[0].Key() != emp(2, "b").Key() {
		t.Fatalf("Changes after replay = %v, %v; want [emp(2)], true", delta, ok)
	}
}

func TestHistorySurvivesCheckpointViaSpill(t *testing.T) {
	// Pre-checkpoint watermarks used to degrade to full exports after a
	// restart; with retained segments the delta is served from disk.
	dir := t.TempDir()
	db := openDurable(t, dir, Options{})
	db.DefineRelation(empDef())
	db.Insert("emp", emp(1, "a"))
	mark := db.LSN()
	db.Insert("emp", emp(2, "b"))
	lsnBefore := db.LSN()
	if err := db.Close(); err != nil { // Close checkpoints pending commits
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, Options{})
	defer db2.Close()
	if got := db2.LSN(); got != lsnBefore {
		t.Fatalf("LSN after snapshot recovery = %d, want %d", got, lsnBefore)
	}
	delta, ok := db2.Changes("emp", mark)
	if !ok || len(delta) != 1 || delta[0].Key() != emp(2, "b").Key() {
		t.Fatalf("spilled Changes after restart = %v, %v; want [emp(2)], true", delta, ok)
	}
	if st := db2.DetailedStats(); st.SpillHits == 0 {
		t.Fatalf("spill hit not counted: %+v", st)
	}
	// New commits are captured in memory again.
	head := db2.LSN()
	db2.Insert("emp", emp(3, "c"))
	if delta, ok := db2.Changes("emp", head); !ok || len(delta) != 1 {
		t.Fatalf("post-recovery Changes = %v, %v", delta, ok)
	}
	// And the spilled prefix composes with the fresh suffix.
	if delta, ok := db2.Changes("emp", mark); !ok || len(delta) != 2 {
		t.Fatalf("spilled+fresh Changes = %v, %v; want 2 inserts", delta, ok)
	}
}

func TestHistoryLostWhenSegmentsPruned(t *testing.T) {
	// With retention off and tiny segments, a checkpoint prunes the
	// segments an old watermark needs: Changes must degrade, not invent.
	dir := t.TempDir()
	db := openDurable(t, dir, Options{RetainSegments: -1, SegmentBytes: 64, ChangelogLimit: 2})
	db.DefineRelation(empDef())
	db.Insert("emp", emp(0, "x"))
	mark := db.LSN()
	for i := 1; i < 20; i++ {
		db.Insert("emp", emp(i, "x"))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Changes("emp", mark); ok {
		t.Fatal("pruned history still claimed answerable")
	}
	if st := db.DetailedStats(); st.SpillMisses == 0 {
		t.Fatalf("spill miss not counted: %+v", st)
	}
	db.Close()
}

func TestCloseCheckpointsPendingCommits(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, Options{})
	db.DefineRelation(empDef())
	for i := 0; i < 20; i++ {
		db.Insert("emp", emp(i, "x"))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("Close did not checkpoint: %v", err)
	}

	db2 := openDurable(t, dir, Options{})
	if db2.Count("emp") != 20 {
		t.Fatalf("recovered Count = %d", db2.Count("emp"))
	}
	// The segments were NOT truncated in place (that is what lets spill
	// serve pre-checkpoint watermarks) — recovery must skip the
	// checkpoint-covered records rather than double-apply them.
	if got := db2.LSN(); got != 21 {
		t.Fatalf("LSN after recovery = %d, want 21 (no double replay)", got)
	}
	// Reopen without new commits: Close must not checkpoint again (nothing
	// pending) and must still succeed.
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}
