package storage

import (
	"sync"

	"codb/internal/btree"
	"codb/internal/relation"
)

// table is one relation: a fixed set of hash shards. The shard count is
// decided at Open (Options.Shards / the snapshot-recorded count) and never
// changes for a live database; reopening with a different count simply
// redistributes tuples, since routing is a pure function of the tuple key.
type table struct {
	def    *relation.RelDef
	shards []*shard
}

// shard is one hash partition of a relation, with its own lock, heap,
// primary B+tree, secondary indexes, changelog segment and cached
// copy-on-write snapshot view. Writers to different shards never contend.
type shard struct {
	mu      sync.RWMutex
	rows    []relation.Tuple        // heap; nil = deleted slot
	free    []int                   // reusable slots
	primary *btree.Map[int]         // tuple key -> slot
	second  map[int]*btree.Map[int] // attr position -> (attr value ‖ tuple key) -> slot

	// Change capture for incremental export (see DB.Changes): committed
	// inserts in commit order, each stamped with its commit LSN and a
	// global capture sequence (the tie-break for multi-shard commits).
	// Deletes are not replayable as a monotone delta, so they poison
	// history instead: lostBelow rises to the deleting commit's LSN.
	// Ring overflow (and snapshot-based recovery, which starts with empty
	// rings) raises evictedBelow instead: that history is gone from
	// memory but still serveable from retained WAL segments on durable
	// databases.
	changes      []change
	lostBelow    uint64 // history before (and at) this LSN is unavailable
	evictedBelow uint64 // in-memory history before (and at) this LSN was dropped

	// snap is the cached immutable view backing DB.Snapshot (copy-on-write
	// per shard): built lazily under snapMu by the first snapshot after a
	// change, shared by later snapshots, reset by insert/delete. See
	// shard.snapshot for the locking discipline.
	//
	// Secondary snapshot views hang off the tableSnap itself (built lazily
	// by the first ScanEq probing an attribute position), so they follow
	// the same invalidation rule for free: insert/delete resets s.snap,
	// the next snapshot builds a fresh tableSnap with an empty secondary
	// cache, and every snapshot sharing one tableSnap shares its secondary
	// views. A secondary view is never mutated — only dropped wholesale
	// with the primary view it was derived from.
	snapMu sync.Mutex
	snap   *tableSnap
}

// change is one captured committed insert.
type change struct {
	lsn   uint64
	seq   uint64
	tuple relation.Tuple
}

func newTable(def *relation.RelDef, nshards int) *table {
	t := &table{def: def, shards: make([]*shard, nshards)}
	for i := range t.shards {
		t.shards[i] = &shard{primary: btree.New[int](), second: make(map[int]*btree.Map[int])}
	}
	return t
}

// shardIndex routes a tuple key to its shard: FNV-1a over the
// order-preserving encoding, reduced modulo the shard count. Deterministic
// across processes, so recovery redistributes identically.
func shardIndex(key string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

func (t *table) shardFor(key string) *shard {
	return t.shards[shardIndex(key, len(t.shards))]
}

// rlockAll / runlockAll take and release every shard's read lock in index
// order (part of the global (relation name, shard index) lock order).
func (t *table) rlockAll() {
	for _, s := range t.shards {
		s.mu.RLock()
	}
}

func (t *table) runlockAll() {
	for _, s := range t.shards {
		s.mu.RUnlock()
	}
}

// insert adds the tuple to the shard (caller holds the shard write lock).
// Returns whether the tuple was new.
func (s *shard) insert(tuple relation.Tuple) bool {
	key := tuple.Key()
	if _, dup := s.primary.Get(key); dup {
		return false
	}
	var slot int
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
		s.rows[slot] = tuple
	} else {
		slot = len(s.rows)
		s.rows = append(s.rows, tuple)
	}
	s.primary.Put(key, slot)
	for pos, idx := range s.second {
		idx.Put(secondaryKey(tuple, pos), slot)
	}
	s.invalidateSnap()
	return true
}

// delete removes the tuple (caller holds the shard write lock). Returns
// whether it was present.
func (s *shard) delete(tuple relation.Tuple) bool {
	key := tuple.Key()
	slot, ok := s.primary.Get(key)
	if !ok {
		return false
	}
	s.primary.Delete(key)
	for pos, idx := range s.second {
		idx.Delete(secondaryKey(s.rows[slot], pos))
	}
	s.rows[slot] = nil
	s.free = append(s.free, slot)
	s.invalidateSnap()
	return true
}

// buildSecondary creates the shard's secondary index over one attribute
// position (caller holds the database write lock, which excludes commits).
func (s *shard) buildSecondary(pos int) {
	idx := btree.New[int]()
	for slot, row := range s.rows {
		if row != nil {
			idx.Put(secondaryKey(row, pos), slot)
		}
	}
	s.second[pos] = idx
}

// btreeIter aliases the index iterator type used by merged scans.
type btreeIter = btree.Iterator[int]

// primaryIters positions one iterator at the start of each shard's primary
// index (shard locks held by the caller).
func (t *table) primaryIters() []*btreeIter {
	iters := make([]*btreeIter, len(t.shards))
	for i, s := range t.shards {
		iters[i] = s.primary.Iter("")
	}
	return iters
}

// mergeAscend advances the per-shard iterators in global ascending key
// order, calling fn with the owning shard's index for each entry. Keys are
// unique across shards (a tuple lives in exactly one), so the merge is a
// straight k-way minimum selection. fn returning false stops the merge.
func mergeAscend(iters []*btreeIter, fn func(shard int, key string, slot int) bool) {
	for {
		best := -1
		var bestKey string
		for i, it := range iters {
			key, ok := it.Peek()
			if !ok {
				continue
			}
			if best < 0 || key < bestKey {
				best, bestKey = i, key
			}
		}
		if best < 0 {
			return
		}
		_, slot, _ := iters[best].Next()
		if !fn(best, bestKey, slot) {
			return
		}
	}
}
