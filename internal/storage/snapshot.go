package storage

import (
	"sort"

	"codb/internal/relation"
)

// Snapshot is an immutable point-in-time read view of the database, pinned
// at the commit LSN current when it was taken. Snapshots are the storage
// half of the concurrent query path: a reader holding one never touches the
// database mutex again, so any number of query evaluations run concurrently
// with committing writers (and with each other) without lock coupling.
//
// The implementation is copy-on-write per relation: each table keeps one
// cached immutable view of its committed state (a flat, key-ordered tuple
// array), built lazily by the first snapshot that needs it and shared by
// every later snapshot until a commit touching the relation invalidates it.
// Taking a snapshot of a quiescent database is therefore O(relations);
// after a commit only the touched relations are rebuilt. Tuples are shared
// with the live table (they are never mutated in place), so a snapshot
// costs memory only for the key/row arrays.
type Snapshot struct {
	lsn    uint64
	schema *relation.Schema
	tables map[string]*tableSnap
}

// tableSnap is the immutable view of one relation: tuples in key order,
// with the parallel key array supporting binary-search lookups.
type tableSnap struct {
	def  *relation.RelDef
	keys []string         // sorted tuple keys
	rows []relation.Tuple // parallel to keys
}

// Snapshot pins a read view at the current commit LSN. The returned
// Snapshot is immutable and safe for concurrent use; it observes every
// transaction committed before the call and none committed after.
func (db *DB) Snapshot() *Snapshot {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := &Snapshot{
		lsn:    db.lsn,
		schema: db.schema.Clone(),
		tables: make(map[string]*tableSnap, len(db.tables)),
	}
	for name, t := range db.tables {
		s.tables[name] = t.snapshot()
	}
	return s
}

// snapshot returns the table's cached immutable view, building it if a
// commit invalidated the previous one. The caller holds the database read
// lock (so no writer mutates primary/rows concurrently); snapMu serialises
// concurrent builders. Writers reset t.snap under the database write lock,
// which excludes every reader, so all access to t.snap is race-free.
func (t *table) snapshot() *tableSnap {
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	if t.snap == nil {
		n := t.primary.Len()
		s := &tableSnap{
			def:  t.def,
			keys: make([]string, 0, n),
			rows: make([]relation.Tuple, 0, n),
		}
		t.primary.AscendAll(func(k string, slot int) bool {
			s.keys = append(s.keys, k)
			s.rows = append(s.rows, t.rows[slot])
			return true
		})
		t.snap = s
	}
	return t.snap
}

// invalidateSnap drops the cached view after a commit touched the relation
// (caller holds the database write lock).
func (t *table) invalidateSnap() { t.snap = nil }

// LSN returns the commit sequence number the snapshot is pinned at.
func (s *Snapshot) LSN() uint64 { return s.lsn }

// Schema returns the schema as of the snapshot.
func (s *Snapshot) Schema() *relation.Schema { return s.schema }

// Rel returns the definition of a relation as of the snapshot, or nil.
func (s *Snapshot) Rel(name string) *relation.RelDef {
	if t, ok := s.tables[name]; ok {
		return t.def
	}
	return nil
}

// Count returns the number of tuples in the relation as of the snapshot.
func (s *Snapshot) Count(rel string) int {
	if t, ok := s.tables[rel]; ok {
		return len(t.rows)
	}
	return 0
}

// Has reports whether the tuple is present in the relation as of the
// snapshot.
func (s *Snapshot) Has(rel string, tuple relation.Tuple) bool {
	t, ok := s.tables[rel]
	if !ok {
		return false
	}
	key := tuple.Key()
	i := sort.SearchStrings(t.keys, key)
	return i < len(t.keys) && t.keys[i] == key
}

// Scan calls fn for every tuple of the relation in key order; fn returning
// false stops the scan. No locks are held: fn may take arbitrarily long and
// may read back into the live database.
func (s *Snapshot) Scan(rel string, fn func(relation.Tuple) bool) {
	t, ok := s.tables[rel]
	if !ok {
		return
	}
	for _, row := range t.rows {
		if !fn(row) {
			return
		}
	}
}

// ScanEq scans the tuples whose attribute at position pos equals v, in key
// order. Snapshots carry no secondary indexes, so this is a filtered full
// scan — callers treating ScanEq as an access-path optimisation (the CQ
// evaluator's constant pushdown) get identical results either way.
func (s *Snapshot) ScanEq(rel string, pos int, v relation.Value, fn func(relation.Tuple) bool) {
	t, ok := s.tables[rel]
	if !ok || pos < 0 || pos >= t.def.Arity() {
		return
	}
	for _, row := range t.rows {
		if row[pos] == v {
			if !fn(row) {
				return
			}
		}
	}
}

// Tuples returns all tuples of the relation as of the snapshot, in key
// order. The tuples are shared with the snapshot (immutable); the slice is
// fresh.
func (s *Snapshot) Tuples(rel string) []relation.Tuple {
	t, ok := s.tables[rel]
	if !ok {
		return nil
	}
	out := make([]relation.Tuple, len(t.rows))
	copy(out, t.rows)
	return out
}

// Instance exports the snapshot as a relation.Instance (oracles and tests).
func (s *Snapshot) Instance() relation.Instance {
	in := relation.NewInstance()
	for name, t := range s.tables {
		for _, row := range t.rows {
			in.Insert(name, row)
		}
	}
	return in
}
