package storage

import (
	"sort"
	"sync"

	"codb/internal/relation"
)

// Snapshot is an immutable point-in-time read view of the database, pinned
// at the commit LSN current when it was taken. Snapshots are the storage
// half of the concurrent query path: a reader holding one never touches a
// database lock again, so any number of query evaluations run concurrently
// with committing writers (and with each other) without lock coupling.
//
// The implementation is copy-on-write per shard: each shard keeps one
// cached immutable view of its committed state (a flat, key-ordered tuple
// array), built lazily by the first snapshot that needs it and shared by
// every later snapshot until a commit touching the shard invalidates it.
// Taking a snapshot of a quiescent database is therefore O(relations ×
// shards); after a commit only the touched shards are rebuilt. Tuples are
// shared with the live shards (they are never mutated in place), so a
// snapshot costs memory only for the key/row arrays.
//
// Snapshots expose their sharding (ShardCount / ScanShard): the CQ
// evaluator fans its hash-join build scans out across shards when
// EvalOptions.Parallelism allows, which is safe exactly because the views
// are immutable.
type Snapshot struct {
	lsn    uint64
	schema *relation.Schema
	tables map[string]*relSnap
}

// relSnap is the immutable view of one relation: one tableSnap per shard.
type relSnap struct {
	def    *relation.RelDef
	shards []*tableSnap
}

// tableSnap is the immutable view of one shard: tuples in key order, with
// the parallel key array supporting binary-search lookups.
//
// Secondary views (sec) are materialised lazily by the first ScanEq that
// probes an attribute position, from the view's own immutable keys/rows —
// no shard lock is taken at probe time. They follow the same one-flat-view
// COW discipline as the primary view: a commit touching the shard drops the
// shard's cached tableSnap, so the next snapshot starts with an empty
// secondary cache, while every snapshot sharing this tableSnap shares its
// secondary views too.
type tableSnap struct {
	keys []string         // sorted tuple keys
	rows []relation.Tuple // parallel to keys

	secMu sync.Mutex
	sec   map[int]*secView // attr position -> lazily built secondary view
}

// secView is one lazily materialised secondary view of a shard snapshot:
// rows ordered by (attr value ‖ tuple key), the same key shape as the live
// engine's secondary indexes, so a value-prefix probe enumerates exactly
// the matching tuples in tuple-key order.
type secView struct {
	keys []string         // secondaryKey(row, pos), sorted
	rows []relation.Tuple // parallel to keys
}

// secondary returns the shard view's secondary view over one attribute
// position, building it on first use. The view is immutable once built and
// shared by every snapshot holding this tableSnap; secMu serialises
// concurrent builders.
func (v *tableSnap) secondary(pos int) *secView {
	v.secMu.Lock()
	defer v.secMu.Unlock()
	if sv, ok := v.sec[pos]; ok {
		return sv
	}
	n := len(v.rows)
	keys := make([]string, n)
	for i, row := range v.rows {
		keys[i] = secondaryKey(row, pos)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	sv := &secView{keys: make([]string, n), rows: make([]relation.Tuple, n)}
	for out, in := range idx {
		sv.keys[out] = keys[in]
		sv.rows[out] = v.rows[in]
	}
	if v.sec == nil {
		v.sec = make(map[int]*secView)
	}
	v.sec[pos] = sv
	return sv
}

// Snapshot pins a read view at the current commit LSN. The returned
// Snapshot is immutable and safe for concurrent use; it observes every
// transaction committed before the call and none committed after. Every
// shard lock is held at once while the view is assembled — and a commit
// holds all its shard write locks from LSN assignment through application —
// so the cut is consistent even under concurrent multi-shard commits.
func (db *DB) Snapshot() *Snapshot {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := db.sortedTableNames()
	unlock := db.rlockTables(names)
	defer unlock()
	db.lsnMu.Lock()
	lsn := db.lsn // == visible here: no commit is between assignment and apply
	db.lsnMu.Unlock()
	s := &Snapshot{
		lsn:    lsn,
		schema: db.schema.Clone(),
		tables: make(map[string]*relSnap, len(db.tables)),
	}
	for _, name := range names {
		t := db.tables[name]
		rs := &relSnap{def: t.def, shards: make([]*tableSnap, len(t.shards))}
		for i, sh := range t.shards {
			rs.shards[i] = sh.snapshot()
		}
		s.tables[name] = rs
	}
	return s
}

// snapshot returns the shard's cached immutable view, building it if a
// commit invalidated the previous one. The caller holds the shard read
// lock (so no writer mutates primary/rows concurrently); snapMu serialises
// concurrent builders. Writers reset s.snap under the shard write lock,
// which excludes every reader, so all access to s.snap is race-free.
func (s *shard) snapshot() *tableSnap {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.snap == nil {
		n := s.primary.Len()
		v := &tableSnap{
			keys: make([]string, 0, n),
			rows: make([]relation.Tuple, 0, n),
		}
		s.primary.AscendAll(func(k string, slot int) bool {
			v.keys = append(v.keys, k)
			v.rows = append(v.rows, s.rows[slot])
			return true
		})
		s.snap = v
	}
	return s.snap
}

// invalidateSnap drops the cached view after a commit touched the shard
// (caller holds the shard write lock).
func (s *shard) invalidateSnap() { s.snap = nil }

// LSN returns the commit sequence number the snapshot is pinned at.
func (s *Snapshot) LSN() uint64 { return s.lsn }

// Schema returns the schema as of the snapshot.
func (s *Snapshot) Schema() *relation.Schema { return s.schema }

// Rel returns the definition of a relation as of the snapshot, or nil.
func (s *Snapshot) Rel(name string) *relation.RelDef {
	if t, ok := s.tables[name]; ok {
		return t.def
	}
	return nil
}

// Count returns the number of tuples in the relation as of the snapshot.
func (s *Snapshot) Count(rel string) int {
	t, ok := s.tables[rel]
	if !ok {
		return 0
	}
	n := 0
	for _, sh := range t.shards {
		n += len(sh.rows)
	}
	return n
}

// Has reports whether the tuple is present in the relation as of the
// snapshot.
func (s *Snapshot) Has(rel string, tuple relation.Tuple) bool {
	t, ok := s.tables[rel]
	if !ok {
		return false
	}
	key := tuple.Key()
	sh := t.shards[shardIndex(key, len(t.shards))]
	i := sort.SearchStrings(sh.keys, key)
	return i < len(sh.keys) && sh.keys[i] == key
}

// Scan calls fn for every tuple of the relation in global key order (a
// k-way merge over the per-shard views); fn returning false stops the
// scan. No locks are held: fn may take arbitrarily long and may read back
// into the live database.
func (s *Snapshot) Scan(rel string, fn func(relation.Tuple) bool) {
	t, ok := s.tables[rel]
	if !ok {
		return
	}
	if len(t.shards) == 1 {
		for _, row := range t.shards[0].rows {
			if !fn(row) {
				return
			}
		}
		return
	}
	idx := make([]int, len(t.shards))
	for {
		best := -1
		var bestKey string
		for i, sh := range t.shards {
			if idx[i] < len(sh.keys) {
				if k := sh.keys[idx[i]]; best < 0 || k < bestKey {
					best, bestKey = i, k
				}
			}
		}
		if best < 0 {
			return
		}
		if !fn(t.shards[best].rows[idx[best]]) {
			return
		}
		idx[best]++
	}
}

// ShardCount returns the number of hash partitions of the relation as of
// the snapshot (0 for unknown relations). Implements cq.ShardedSource.
func (s *Snapshot) ShardCount(rel string) int {
	if t, ok := s.tables[rel]; ok {
		return len(t.shards)
	}
	return 0
}

// ScanShard iterates one shard of the relation in key order. The view is
// immutable, so any number of shard scans run concurrently. Implements
// cq.ShardedSource.
func (s *Snapshot) ScanShard(rel string, shard int, fn func(relation.Tuple) bool) {
	t, ok := s.tables[rel]
	if !ok || shard < 0 || shard >= len(t.shards) {
		return
	}
	for _, row := range t.shards[shard].rows {
		if !fn(row) {
			return
		}
	}
}

// ScanEq scans the tuples whose attribute at position pos equals v, in key
// order, as an index probe: each shard's lazily materialised secondary view
// (see tableSnap.secondary) is positioned at the value prefix by binary
// search, then the per-shard runs are k-way merged. Within one value prefix
// the secondary-key order is the tuple-key order (the value encoding is
// prefix-free), so the result is bit-identical to the filtered full scan
// this used to be — only O(log n + matches) per shard instead of O(n).
func (s *Snapshot) ScanEq(rel string, pos int, v relation.Value, fn func(relation.Tuple) bool) {
	t, ok := s.tables[rel]
	if !ok || pos < 0 || pos >= t.def.Arity() {
		return
	}
	prefix := string(relation.EncodeValue(nil, v))
	if len(t.shards) == 1 {
		sv := t.shards[0].secondary(pos)
		for i := sort.SearchStrings(sv.keys, prefix); i < len(sv.keys); i++ {
			if k := sv.keys[i]; len(k) < len(prefix) || k[:len(prefix)] != prefix {
				return
			}
			if !fn(sv.rows[i]) {
				return
			}
		}
		return
	}
	views := make([]*secView, len(t.shards))
	idx := make([]int, len(t.shards))
	for i, sh := range t.shards {
		sv := sh.secondary(pos)
		views[i] = sv
		at := sort.SearchStrings(sv.keys, prefix)
		if at < len(sv.keys) {
			if k := sv.keys[at]; len(k) < len(prefix) || k[:len(prefix)] != prefix {
				at = len(sv.keys) // shard has no match: retire it
			}
		}
		idx[i] = at
	}
	for {
		best := -1
		var bestKey string
		for i, sv := range views {
			if idx[i] < len(sv.keys) {
				if k := sv.keys[idx[i]]; best < 0 || k < bestKey {
					best, bestKey = i, k
				}
			}
		}
		if best < 0 {
			return
		}
		if !fn(views[best].rows[idx[best]]) {
			return
		}
		idx[best]++
		sv := views[best]
		if at := idx[best]; at < len(sv.keys) {
			if k := sv.keys[at]; len(k) < len(prefix) || k[:len(prefix)] != prefix {
				idx[best] = len(sv.keys) // run left the value prefix: retire
			}
		}
	}
}

// Tuples returns all tuples of the relation as of the snapshot, in key
// order. The tuples are shared with the snapshot (immutable); the slice is
// fresh.
func (s *Snapshot) Tuples(rel string) []relation.Tuple {
	t, ok := s.tables[rel]
	if !ok {
		return nil
	}
	n := 0
	for _, sh := range t.shards {
		n += len(sh.rows)
	}
	out := make([]relation.Tuple, 0, n)
	s.Scan(rel, func(row relation.Tuple) bool {
		out = append(out, row)
		return true
	})
	return out
}

// Instance exports the snapshot as a relation.Instance (oracles and tests).
func (s *Snapshot) Instance() relation.Instance {
	in := relation.NewInstance()
	for name, t := range s.tables {
		for _, sh := range t.shards {
			for _, row := range sh.rows {
				in.Insert(name, row)
			}
		}
	}
	return in
}
