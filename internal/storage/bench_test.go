package storage

import (
	"fmt"
	"sync"
	"testing"

	"codb/internal/relation"
)

func benchDB(b *testing.B, dir string) *DB {
	b.Helper()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.DefineRelation(empDef()); err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkInsertMem(b *testing.B) {
	db := benchDB(b, "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Insert("emp", emp(i, "name"))
	}
}

func BenchmarkInsertDurable(b *testing.B) {
	db := benchDB(b, b.TempDir())
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Insert("emp", emp(i, "name"))
	}
}

func BenchmarkInsertManyBatch(b *testing.B) {
	db := benchDB(b, "")
	batch := make([]relation.Tuple, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = emp(i*100+j, "batch")
		}
		db.InsertMany("emp", batch)
	}
}

func BenchmarkScan(b *testing.B) {
	db := benchDB(b, "")
	for i := 0; i < 10000; i++ {
		db.Insert("emp", emp(i, fmt.Sprintf("p%d", i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		db.Scan("emp", func(relation.Tuple) bool { n++; return true })
		if n != 10000 {
			b.Fatal(n)
		}
	}
}

func BenchmarkScanEqIndexed(b *testing.B) {
	db := benchDB(b, "")
	for i := 0; i < 10000; i++ {
		db.Insert("emp", emp(i, fmt.Sprintf("n%d", i%100)))
	}
	db.IndexOn("emp", "name")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		db.ScanEq("emp", 1, relation.Str("n42"), func(relation.Tuple) bool { n++; return true })
		if n != 100 {
			b.Fatal(n)
		}
	}
}

func BenchmarkScanEqUnindexed(b *testing.B) {
	db := benchDB(b, "")
	for i := 0; i < 10000; i++ {
		db.Insert("emp", emp(i, fmt.Sprintf("n%d", i%100)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		db.ScanEq("emp", 1, relation.Str("n42"), func(relation.Tuple) bool { n++; return true })
		if n != 100 {
			b.Fatal(n)
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	db := benchDB(b, dir)
	for i := 0; i < 5000; i++ {
		db.Insert("emp", emp(i, "recover"))
	}
	db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db2, err := Open(Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if db2.Count("emp") != 5000 {
			b.Fatal("bad recovery")
		}
		db2.Close()
	}
}

// TestConcurrentReadersAndWriter drives parallel scans against a writer;
// run under -race this validates the locking discipline.
func TestConcurrentReadersAndWriter(t *testing.T) {
	db := newEmpDB(t)
	for i := 0; i < 500; i++ {
		db.Insert("emp", emp(i, "base"))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 0
				db.Scan("emp", func(relation.Tuple) bool { n++; return true })
				if n < 500 {
					t.Errorf("scan saw %d < 500 tuples", n)
					return
				}
				db.Has("emp", emp(1, "base"))
				db.Count("emp")
			}
		}()
	}
	for i := 500; i < 1500; i++ {
		if _, err := db.Insert("emp", emp(i, "live")); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if db.Count("emp") != 1500 {
		t.Errorf("Count = %d", db.Count("emp"))
	}
}
