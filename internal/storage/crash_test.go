package storage

// Crash-recovery torture harness: committed workloads run against a real
// database directory, the process "dies" at randomized byte offsets in the
// WAL stream (inside records, at segment boundaries, mid-rotation, before
// and after checkpoints), and every recovered database is compared against
// an independent model that replays exactly the durable prefix.
//
// The model is deliberately not the engine: it re-parses the snapshot file
// and the segment files with its own minimal decoders, so a bug in the
// engine's recovery path cannot cancel itself out in the expectation.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"codb/internal/relation"
)

// crash simulates a kill -9: every file handle is dropped with no
// checkpoint, no final sync, no group-commit drain beyond what commits
// already awaited. The in-memory DB object is dead afterwards.
func (db *DB) crash() {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	if db.group != nil {
		db.group.Close()
	}
	if db.log != nil {
		db.log.Close()
	}
}

// --- independent model ----------------------------------------------------

// crashModel is the oracle state: relation -> set of encoded tuple keys.
type crashModel struct {
	rels map[string]map[string]bool
	lsn  uint64
	ckpt uint64
}

type modelReader struct {
	b   []byte
	off int
}

func (r *modelReader) uvarint(t *testing.T) uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		t.Fatalf("model: bad uvarint at %d", r.off)
	}
	r.off += n
	return v
}

func (r *modelReader) bytes(t *testing.T) []byte {
	n := int(r.uvarint(t))
	if r.off+n > len(r.b) {
		t.Fatalf("model: truncated bytes at %d", r.off)
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

// skipDef walks one relation definition (name, attr count, attrs).
func (r *modelReader) skipDef(t *testing.T) string {
	name := string(r.bytes(t))
	n := int(r.uvarint(t))
	for i := 0; i < n; i++ {
		r.bytes(t) // attr name
		r.off++    // attr type byte
	}
	return name
}

// loadModelSnapshot parses the snapshot file with the test's own decoder.
func loadModelSnapshot(t *testing.T, path string, m *crashModel) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 12 || string(data[:4]) != "cdbS" {
		t.Fatalf("model: %s is not a snapshot", path)
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	r := &modelReader{b: data[12:]}
	if version >= 3 {
		r.uvarint(t) // shard count
	}
	nrels := int(r.uvarint(t))
	names := make([]string, 0, nrels)
	for i := 0; i < nrels; i++ {
		names = append(names, r.skipDef(t))
	}
	for _, name := range names {
		set := make(map[string]bool)
		count := int(r.uvarint(t))
		for i := 0; i < count; i++ {
			set[string(r.bytes(t))] = true
		}
		m.rels[name] = set
	}
	if version >= 2 {
		m.lsn = r.uvarint(t)
	}
	m.ckpt = m.lsn
	if version >= 4 {
		m.ckpt = r.uvarint(t)
	}
}

// replayModelSegments parses the surviving segment files in order and
// applies every intact record with LSN above the checkpoint, stopping at
// the first torn record — the durable prefix, by definition.
func replayModelSegments(t *testing.T, dir string, m *crashModel) {
	for _, path := range walSegments(t, dir) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 20 || string(data[:4]) != "cdbW" ||
			crc32.ChecksumIEEE(data[:16]) != binary.LittleEndian.Uint32(data[16:20]) {
			return // headerless/torn-header tail segment: nothing durable inside
		}
		lsn := binary.LittleEndian.Uint64(data[8:16])
		off := 20
		for off < len(data) {
			if off+8 > len(data) {
				return // torn framing: durable prefix ends here
			}
			length := int(binary.LittleEndian.Uint32(data[off : off+4]))
			crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
			if off+8+length > len(data) {
				return // torn payload
			}
			payload := data[off+8 : off+8+length]
			if crc32.ChecksumIEEE(payload) != crc {
				return // torn record
			}
			if lsn > m.ckpt {
				applyModelRecord(t, m, payload)
				m.lsn = lsn
			}
			lsn++
			off += 8 + length
		}
		// Clean segment end: continue into the next segment.
	}
}

func applyModelRecord(t *testing.T, m *crashModel, payload []byte) {
	r := &modelReader{b: payload}
	count := int(r.uvarint(t))
	for i := 0; i < count; i++ {
		kind := r.b[r.off]
		r.off++
		switch kind {
		case 3: // DDL
			name := r.skipDef(t)
			if m.rels[name] == nil {
				m.rels[name] = make(map[string]bool)
			}
		case 1, 2: // insert, delete
			rel := string(r.bytes(t))
			key := string(r.bytes(t))
			if m.rels[rel] == nil {
				t.Fatalf("model: op on undeclared relation %q", rel)
			}
			if kind == 1 {
				m.rels[rel][key] = true
			} else {
				delete(m.rels[rel], key)
			}
		default:
			t.Fatalf("model: bad op kind %d", kind)
		}
	}
}

// --- harness --------------------------------------------------------------

type tortureSpec struct {
	name          string
	shards        int
	segmentBytes  int64
	checkpointMid bool
	writers       int
	deletes       bool
	trials        int
}

func TestCrashRecoveryTorture(t *testing.T) {
	specs := []tortureSpec{
		// Single writer, many tiny segments, multi-op transactions torn
		// mid-record, mid-segment and mid-rotation.
		{name: "segments", shards: 1, segmentBytes: 192, writers: 1, deletes: true, trials: 28},
		// A checkpoint in the middle: trials land before, inside and after
		// the snapshot-covered prefix, including inside retained segments.
		{name: "checkpoint", shards: 4, segmentBytes: 192, checkpointMid: true, writers: 1, deletes: true, trials: 28},
		// Concurrent committers through the group-commit pipeline: batches
		// torn mid-batch; the model replays whatever order the pipeline
		// actually wrote.
		{name: "group-commit", shards: 4, segmentBytes: 256, writers: 4, trials: 20},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.name, func(t *testing.T) {
			t.Parallel()
			tortureRun(t, spec)
		})
	}
}

func tortureRun(t *testing.T, spec tortureSpec) {
	srcDir := t.TempDir()
	db, err := Open(Options{
		Dir:          srcDir,
		SyncOnCommit: true,
		Shards:       spec.shards,
		SegmentBytes: spec.segmentBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DefineRelation(empDef()); err != nil {
		t.Fatal(err)
	}

	// commitHalf is the single-writer workload; multi-writer specs use the
	// concurrent path below instead.
	commitHalf := func(base int) {
		for i := base; i < base+30; i++ {
			switch {
			case i%7 == 3:
				if _, err := db.InsertMany("emp", []relation.Tuple{
					emp(i, "batch"), emp(i+1000, "batch"), emp(i+2000, "batch"),
				}); err != nil {
					t.Fatal(err)
				}
			case spec.deletes && i%9 == 5 && i > base:
				if _, err := db.Delete("emp", emp(i-1, fmt.Sprintf("p%d", i-1))); err != nil {
					t.Fatal(err)
				}
			default:
				if _, err := db.Insert("emp", emp(i, fmt.Sprintf("p%d", i))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if spec.writers > 1 {
		var wg sync.WaitGroup
		for w := 0; w < spec.writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					if _, err := db.Insert("emp", emp(w*1000+i, "conc")); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	} else {
		commitHalf(0)
		if spec.checkpointMid {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		commitHalf(100)
	}
	db.crash()

	// The WAL byte stream: surviving segments in order.
	segPaths := walSegments(t, srcDir)
	sizes := make([]int64, len(segPaths))
	var total int64
	for i, p := range segPaths {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		sizes[i] = info.Size()
		total += sizes[i]
	}

	// Kill offsets: segment boundaries (exact, ±1, inside the header),
	// the stream ends, and seeded random interior points.
	offsets := []int64{0, 1, total, total - 1, total - 3}
	var bound int64
	for _, s := range sizes {
		offsets = append(offsets, bound, bound+1, bound+9, bound+17, bound+s-1)
		bound += s
	}
	rnd := rand.New(rand.NewSource(int64(len(spec.name)) * 7919))
	for len(offsets) < 5+5*len(sizes)+spec.trials {
		offsets = append(offsets, rnd.Int63n(total+1))
	}

	for _, off := range offsets {
		if off < 0 || off > total {
			continue
		}
		off := off
		t.Run(fmt.Sprintf("off=%d", off), func(t *testing.T) {
			trialDir := t.TempDir()
			if data, err := os.ReadFile(filepath.Join(srcDir, snapshotName)); err == nil {
				if err := os.WriteFile(filepath.Join(trialDir, snapshotName), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			// Truncate the concatenated stream at off: whole earlier
			// segments, a partial one at the cut, nothing after.
			remaining := off
			for i, p := range segPaths {
				if remaining <= 0 {
					break
				}
				data, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				n := int64(len(data))
				if remaining < n {
					n = remaining
				}
				dst := filepath.Join(trialDir, filepath.Base(segPaths[i]))
				if err := os.WriteFile(dst, data[:n], 0o644); err != nil {
					t.Fatal(err)
				}
				remaining -= n
			}

			// Oracle: parse the durable prefix independently.
			model := &crashModel{rels: make(map[string]map[string]bool)}
			loadModelSnapshot(t, filepath.Join(trialDir, snapshotName), model)
			replayModelSegments(t, trialDir, model)

			re, err := Open(Options{Dir: trialDir})
			if err != nil {
				t.Fatalf("recovery failed at offset %d: %v", off, err)
			}
			compareWithModel(t, re, model)
			if got := re.LSN(); got != model.lsn {
				t.Fatalf("recovered LSN = %d, model %d", got, model.lsn)
			}

			// The recovered database must keep working: commit, crash
			// again, recover again.
			if model.rels["emp"] != nil {
				if _, err := re.Insert("emp", emp(999999, "post-crash")); err != nil {
					t.Fatalf("insert after recovery: %v", err)
				}
				model.rels["emp"][emp(999999, "post-crash").Key()] = true
				model.lsn++
			}
			re.crash()
			re2, err := Open(Options{Dir: trialDir})
			if err != nil {
				t.Fatalf("second recovery: %v", err)
			}
			compareWithModel(t, re2, model)
			re2.Close()
		})
	}
}

// compareWithModel asserts the recovered database holds exactly the
// model's tuples.
func compareWithModel(t *testing.T, db *DB, m *crashModel) {
	t.Helper()
	inst := db.Instance()
	for rel, want := range m.rels {
		var got []string
		db.Scan(rel, func(tu relation.Tuple) bool {
			got = append(got, tu.Key())
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("%s: recovered %d tuples, model has %d", rel, len(got), len(want))
		}
		for _, k := range got {
			if !want[k] {
				t.Fatalf("%s: recovered tuple %q not in model", rel, k)
			}
		}
	}
	for rel := range inst {
		if m.rels[rel] == nil {
			t.Fatalf("recovered relation %q unknown to model", rel)
		}
	}
}
