package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"codb/internal/relation"
	"codb/internal/wal"
)

func openDurable(t *testing.T, dir string, opts Options) *DB {
	t.Helper()
	opts.Dir = dir
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDurableRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, Options{})
	if err := db.DefineRelation(empDef()); err != nil {
		t.Fatal(err)
	}
	db.Insert("emp", emp(1, "ann"))
	db.Insert("emp", emp(2, "bob"))
	db.Delete("emp", emp(1, "ann"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, Options{})
	defer db2.Close()
	if db2.Rel("emp") == nil {
		t.Fatal("schema lost")
	}
	if db2.Has("emp", emp(1, "ann")) {
		t.Error("deleted tuple recovered")
	}
	if !db2.Has("emp", emp(2, "bob")) {
		t.Error("inserted tuple lost")
	}
	if db2.Count("emp") != 1 {
		t.Errorf("Count = %d", db2.Count("emp"))
	}
}

func TestCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, Options{})
	db.DefineRelation(empDef())
	for i := 0; i < 50; i++ {
		db.Insert("emp", emp(i, fmt.Sprintf("p%d", i)))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes land in the (reset) WAL.
	db.Insert("emp", emp(100, "late"))
	db.Close()

	// Snapshot exists and WAL is small.
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}

	db2 := openDurable(t, dir, Options{})
	defer db2.Close()
	if db2.Count("emp") != 51 {
		t.Errorf("recovered Count = %d, want 51", db2.Count("emp"))
	}
	if !db2.Has("emp", emp(100, "late")) || !db2.Has("emp", emp(49, "p49")) {
		t.Error("recovered content wrong")
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, Options{CheckpointEvery: 5})
	db.DefineRelation(empDef())
	for i := 0; i < 12; i++ {
		db.Insert("emp", emp(i, "x"))
	}
	db.Close()
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("auto checkpoint did not produce a snapshot: %v", err)
	}
	db2 := openDurable(t, dir, Options{})
	defer db2.Close()
	if db2.Count("emp") != 12 {
		t.Errorf("recovered Count = %d", db2.Count("emp"))
	}
}

func TestRecoveryWithNullsAndAllTypes(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, Options{SyncOnCommit: true})
	def := &relation.RelDef{Name: "mix", Attrs: []relation.Attr{
		{Name: "i", Type: relation.TInt},
		{Name: "f", Type: relation.TFloat},
		{Name: "s", Type: relation.TString},
		{Name: "b", Type: relation.TBool},
	}}
	db.DefineRelation(def)
	rows := []relation.Tuple{
		{relation.Int(1), relation.Float(2.5), relation.Str("x"), relation.Bool(true)},
		{relation.Null("p:1"), relation.Float(-1), relation.Null("p:2"), relation.Bool(false)},
	}
	for _, r := range rows {
		if _, err := db.Insert("mix", r); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	db2 := openDurable(t, dir, Options{})
	defer db2.Close()
	for _, r := range rows {
		if !db2.Has("mix", r) {
			t.Errorf("tuple %v lost", r)
		}
	}
}

// walSegments returns the segment file paths in dir, in index order
// (zero-padded names sort lexicographically); possibly empty.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal.*"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

func TestTornWALTailRecovers(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, Options{SyncOnCommit: true})
	db.DefineRelation(empDef())
	db.Insert("emp", emp(1, "a"))
	db.Insert("emp", emp(2, "b"))
	// No Close: a crash never checkpoints, the synced WAL is all there is.

	// Tear the final bytes of the WAL (crash mid-commit).
	segs := walSegments(t, dir)
	if len(segs) == 0 {
		t.Fatal("no wal segments")
	}
	logPath := segs[len(segs)-1]
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, info.Size()-2); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir, Options{})
	defer db2.Close()
	if !db2.Has("emp", emp(1, "a")) {
		t.Error("intact commit lost")
	}
	if db2.Has("emp", emp(2, "b")) {
		t.Error("torn commit partially applied")
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir, Options{})
	db.DefineRelation(empDef())
	db.Insert("emp", emp(1, "a"))
	db.Checkpoint()
	db.Close()

	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestLegacyWALMigration(t *testing.T) {
	// A pre-segment database directory holds a single "log.wal". Opening
	// it must replay the records, checkpoint them into a snapshot, delete
	// the legacy file and continue on segments.
	dir := t.TempDir()
	l, err := wal.Create(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range [][]byte{
		encodeDDL(empDef()),
		encodeOps([]op{{opInsert, "emp", emp(1, "a")}}),
		encodeOps([]op{{opInsert, "emp", emp(2, "b")}, {opDelete, "emp", emp(1, "a")}}),
	} {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	db := openDurable(t, dir, Options{})
	if db.Count("emp") != 1 || !db.Has("emp", emp(2, "b")) || db.Has("emp", emp(1, "a")) {
		t.Fatalf("migrated contents wrong: count=%d", db.Count("emp"))
	}
	if got := db.LSN(); got != 3 {
		t.Fatalf("migrated LSN = %d, want 3", got)
	}
	if _, err := os.Stat(filepath.Join(dir, logName)); !os.IsNotExist(err) {
		t.Fatalf("legacy log.wal not removed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("migration checkpoint missing: %v", err)
	}
	if _, err := db.Insert("emp", emp(3, "c")); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := openDurable(t, dir, Options{})
	defer db2.Close()
	if db2.Count("emp") != 2 || !db2.Has("emp", emp(3, "c")) {
		t.Fatalf("post-migration restart lost data: count=%d", db2.Count("emp"))
	}
}

func TestLegacyWALRemnantAfterMigrationCrash(t *testing.T) {
	// Crash window inside the migration itself: the v4 checkpoint landed
	// but log.wal was not yet deleted. The remnant's records are already
	// snapshot-covered; replaying them would double-apply under inflated
	// LSNs, so the next open must discard the file instead.
	dir := t.TempDir()
	l, err := wal.Create(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	l.Append(encodeDDL(empDef()))
	l.Append(encodeOps([]op{{opInsert, "emp", emp(1, "a")}}))
	l.Sync()
	l.Close()
	db := openDurable(t, dir, Options{}) // migrates: replay, v4 checkpoint, delete
	wantLSN := db.LSN()
	db.Close()

	// Resurrect the legacy file next to the v4 snapshot, as the crash
	// would have left it.
	l2, err := wal.Create(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	l2.Append(encodeDDL(empDef()))
	l2.Append(encodeOps([]op{{opInsert, "emp", emp(1, "a")}}))
	l2.Sync()
	l2.Close()

	db2 := openDurable(t, dir, Options{})
	defer db2.Close()
	if got := db2.LSN(); got != wantLSN {
		t.Fatalf("LSN after remnant open = %d, want %d (no double replay)", got, wantLSN)
	}
	if db2.Count("emp") != 1 {
		t.Fatalf("Count = %d", db2.Count("emp"))
	}
	if _, err := os.Stat(filepath.Join(dir, logName)); !os.IsNotExist(err) {
		t.Fatalf("legacy remnant not discarded: %v", err)
	}
}

func TestCheckpointIsNoopInMemory(t *testing.T) {
	db := MustOpenMem()
	db.DefineRelation(empDef())
	if err := db.Checkpoint(); err != nil {
		t.Errorf("memory checkpoint: %v", err)
	}
}

func TestRecoveryIdempotence(t *testing.T) {
	// Open/close repeatedly without writes; state must be stable.
	dir := t.TempDir()
	db := openDurable(t, dir, Options{})
	db.DefineRelation(empDef())
	db.Insert("emp", emp(7, "seven"))
	db.Close()
	for i := 0; i < 3; i++ {
		db = openDurable(t, dir, Options{})
		if db.Count("emp") != 1 {
			t.Fatalf("pass %d: Count = %d", i, db.Count("emp"))
		}
		db.Close()
	}
}
