package storage

import (
	"sync"
	"testing"

	"codb/internal/relation"
)

func snapTestDB(t *testing.T) *DB {
	t.Helper()
	db := MustOpenMem()
	t.Cleanup(func() { db.Close() })
	if err := db.DefineRelation(&relation.RelDef{
		Name:  "data",
		Attrs: []relation.Attr{{Name: "k", Type: relation.TInt}, {Name: "v", Type: relation.TInt}},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSnapshotIsolation(t *testing.T) {
	db := snapTestDB(t)
	for i := 0; i < 10; i++ {
		if _, err := db.Insert("data", relation.Tuple{relation.Int(i), relation.Int(i * i)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Snapshot()
	if snap.LSN() != db.LSN() {
		t.Fatalf("snapshot LSN %d, db LSN %d", snap.LSN(), db.LSN())
	}
	if snap.Count("data") != 10 {
		t.Fatalf("snapshot count = %d, want 10", snap.Count("data"))
	}

	// Later commits are invisible to the pinned view…
	if _, err := db.Insert("data", relation.Tuple{relation.Int(100), relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("data", relation.Tuple{relation.Int(0), relation.Int(0)}); err != nil {
		t.Fatal(err)
	}
	if snap.Count("data") != 10 {
		t.Fatalf("snapshot count changed to %d after writes", snap.Count("data"))
	}
	if !snap.Has("data", relation.Tuple{relation.Int(0), relation.Int(0)}) {
		t.Fatal("snapshot lost a tuple deleted after it was taken")
	}
	if snap.Has("data", relation.Tuple{relation.Int(100), relation.Int(1)}) {
		t.Fatal("snapshot sees a tuple inserted after it was taken")
	}

	// …and a fresh snapshot observes them.
	snap2 := db.Snapshot()
	if snap2.Count("data") != 10 {
		t.Fatalf("fresh snapshot count = %d, want 10", snap2.Count("data"))
	}
	if snap2.Has("data", relation.Tuple{relation.Int(0), relation.Int(0)}) {
		t.Fatal("fresh snapshot still has the deleted tuple")
	}
	if !snap2.Has("data", relation.Tuple{relation.Int(100), relation.Int(1)}) {
		t.Fatal("fresh snapshot misses the new tuple")
	}
	if snap2.LSN() <= snap.LSN() {
		t.Fatalf("fresh snapshot LSN %d not past pinned %d", snap2.LSN(), snap.LSN())
	}
}

func TestSnapshotSharingAndInvalidation(t *testing.T) {
	db := snapTestDB(t)
	if _, err := db.Insert("data", relation.Tuple{relation.Int(1), relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	a, b := db.Snapshot(), db.Snapshot()
	if a.tables["data"].shards[0] != b.tables["data"].shards[0] {
		t.Fatal("quiescent snapshots do not share the per-shard view")
	}
	if _, err := db.Insert("data", relation.Tuple{relation.Int(2), relation.Int(2)}); err != nil {
		t.Fatal(err)
	}
	c := db.Snapshot()
	if c.tables["data"].shards[0] == a.tables["data"].shards[0] {
		t.Fatal("commit did not invalidate the cached per-shard view")
	}
}

func TestSnapshotScanEqMatchesDB(t *testing.T) {
	db := snapTestDB(t)
	if err := db.IndexOn("data", "v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Insert("data", relation.Tuple{relation.Int(i), relation.Int(i % 5)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Snapshot()
	for v := 0; v < 5; v++ {
		want := map[string]bool{}
		db.ScanEq("data", 1, relation.Int(v), func(tu relation.Tuple) bool {
			want[tu.Key()] = true
			return true
		})
		got := map[string]bool{}
		snap.ScanEq("data", 1, relation.Int(v), func(tu relation.Tuple) bool {
			got[tu.Key()] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("v=%d: snapshot ScanEq %d tuples, db %d", v, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("v=%d: snapshot ScanEq missing %q", v, k)
			}
		}
	}
	// Out-of-range and unknown-relation scans are empty, not panics.
	snap.ScanEq("data", 7, relation.Int(0), func(relation.Tuple) bool { t.Fatal("bad pos"); return false })
	snap.ScanEq("nope", 0, relation.Int(0), func(relation.Tuple) bool { t.Fatal("bad rel"); return false })
	if snap.Count("nope") != 0 || snap.Has("nope", relation.Tuple{relation.Int(0)}) || snap.Tuples("nope") != nil {
		t.Fatal("unknown relation not empty")
	}
}

func TestSnapshotOrderAndTuples(t *testing.T) {
	db := snapTestDB(t)
	for i := 20; i >= 0; i-- {
		if _, err := db.Insert("data", relation.Tuple{relation.Int(i), relation.Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Snapshot()
	var fromDB, fromSnap []string
	db.Scan("data", func(tu relation.Tuple) bool { fromDB = append(fromDB, tu.Key()); return true })
	snap.Scan("data", func(tu relation.Tuple) bool { fromSnap = append(fromSnap, tu.Key()); return true })
	if len(fromDB) != len(fromSnap) {
		t.Fatalf("snapshot scan %d keys, db scan %d", len(fromSnap), len(fromDB))
	}
	for i := range fromDB {
		if fromDB[i] != fromSnap[i] {
			t.Fatalf("key order diverges at %d: %q vs %q", i, fromDB[i], fromSnap[i])
		}
	}
	ts := snap.Tuples("data")
	if len(ts) != 21 {
		t.Fatalf("Tuples returned %d rows, want 21", len(ts))
	}
	// Early-stopping scans stop.
	n := 0
	snap.Scan("data", func(relation.Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("scan visited %d tuples after stop, want 3", n)
	}
}

// TestSnapshotConcurrentWithWrites hammers Snapshot from many goroutines
// while a writer commits, under -race: every snapshot must be internally
// consistent (count matches what its LSN implies).
func TestSnapshotConcurrentWithWrites(t *testing.T) {
	db := snapTestDB(t)
	const writes = 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := db.Snapshot()
				// One tuple per commit: count == LSN - 1 (the DDL commit
				// took LSN 1).
				want := int(snap.LSN()) - 1
				if got := snap.Count("data"); got != want {
					t.Errorf("snapshot at LSN %d has %d tuples, want %d", snap.LSN(), got, want)
					return
				}
				seen := 0
				snap.Scan("data", func(relation.Tuple) bool { seen++; return true })
				if seen != want {
					t.Errorf("snapshot scan saw %d tuples, count says %d", seen, want)
					return
				}
			}
		}()
	}
	for i := 0; i < writes; i++ {
		if _, err := db.Insert("data", relation.Tuple{relation.Int(i), relation.Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DefineRelation(&relation.RelDef{
		Name:  "data",
		Attrs: []relation.Attr{{Name: "k", Type: relation.TInt}, {Name: "v", Type: relation.TInt}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := db.Insert("data", relation.Tuple{relation.Int(i), relation.Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	lsn := db.LSN()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	snap := re.Snapshot()
	if snap.LSN() != lsn {
		t.Fatalf("recovered snapshot LSN %d, want %d", snap.LSN(), lsn)
	}
	if snap.Count("data") != 25 {
		t.Fatalf("recovered snapshot count %d, want 25", snap.Count("data"))
	}
	if snap.Rel("data") == nil || snap.Schema().Rel("data") == nil {
		t.Fatal("recovered snapshot lost the schema")
	}
}

func BenchmarkSnapshot(b *testing.B) {
	db := MustOpenMem()
	defer db.Close()
	if err := db.DefineRelation(&relation.RelDef{
		Name:  "data",
		Attrs: []relation.Attr{{Name: "k", Type: relation.TInt}, {Name: "v", Type: relation.TInt}},
	}); err != nil {
		b.Fatal(err)
	}
	var tuples []relation.Tuple
	for i := 0; i < 10_000; i++ {
		tuples = append(tuples, relation.Tuple{relation.Int(i), relation.Int(i)})
	}
	if _, err := db.InsertMany("data", tuples); err != nil {
		b.Fatal(err)
	}
	b.Run("cached", func(b *testing.B) {
		db.Snapshot() // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.Snapshot()
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if _, err := db.Insert("data", relation.Tuple{relation.Int(-i - 1), relation.Int(0)}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			db.Snapshot()
		}
	})
}

// TestSnapshotScanEqShardedOrderIdentity checks the index-probe ScanEq
// against the definitionally correct filtered Scan on a multi-shard
// database: same tuples, same (tuple-key) order — the invariant the CQ
// evaluator's constant pushdown relies on for bit-identical results.
func TestSnapshotScanEqShardedOrderIdentity(t *testing.T) {
	db, err := Open(Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.DefineRelation(&relation.RelDef{
		Name:  "data",
		Attrs: []relation.Attr{{Name: "k", Type: relation.TInt}, {Name: "v", Type: relation.TInt}},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := db.Insert("data", relation.Tuple{relation.Int(i * 37 % 501), relation.Int(i % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Snapshot()
	for v := 0; v < 8; v++ {
		var want, got []string
		snap.Scan("data", func(tu relation.Tuple) bool {
			if tu[1] == relation.Int(v) {
				want = append(want, tu.Key())
			}
			return true
		})
		snap.ScanEq("data", 1, relation.Int(v), func(tu relation.Tuple) bool {
			got = append(got, tu.Key())
			return true
		})
		if len(want) != len(got) {
			t.Fatalf("v=%d: probe %d tuples, filtered scan %d", v, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("v=%d: position %d: probe %q, filtered scan %q", v, i, got[i], want[i])
			}
		}
	}
	// Early stop must not fall over mid-merge.
	n := 0
	snap.ScanEq("data", 1, relation.Int(0), func(relation.Tuple) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d tuples, want 2", n)
	}
}

// TestSnapshotSecondaryViewSharing checks the secondary views' COW
// discipline: snapshots sharing a shard's primary view share its lazily
// built secondary views, and a commit (which drops the primary view)
// leaves the next snapshot with a fresh, empty secondary cache.
func TestSnapshotSecondaryViewSharing(t *testing.T) {
	db := snapTestDB(t)
	for i := 0; i < 20; i++ {
		if _, err := db.Insert("data", relation.Tuple{relation.Int(i), relation.Int(i % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	a, b := db.Snapshot(), db.Snapshot()
	a.ScanEq("data", 1, relation.Int(1), func(relation.Tuple) bool { return true })
	shA, shB := a.tables["data"].shards[0], b.tables["data"].shards[0]
	if shA != shB {
		t.Fatal("quiescent snapshots do not share the shard view")
	}
	shA.secMu.Lock()
	sv := shA.sec[1]
	shA.secMu.Unlock()
	if sv == nil {
		t.Fatal("ScanEq did not materialise the secondary view")
	}
	// The sibling snapshot probes the same cached view, no rebuild.
	b.ScanEq("data", 1, relation.Int(2), func(relation.Tuple) bool { return true })
	shB.secMu.Lock()
	svB := shB.sec[1]
	shB.secMu.Unlock()
	if svB != sv {
		t.Fatal("sibling snapshot rebuilt the shared secondary view")
	}
	if _, err := db.Insert("data", relation.Tuple{relation.Int(100), relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	c := db.Snapshot()
	shC := c.tables["data"].shards[0]
	if shC == shA {
		t.Fatal("commit did not invalidate the shard view")
	}
	shC.secMu.Lock()
	fresh := len(shC.sec)
	shC.secMu.Unlock()
	if fresh != 0 {
		t.Fatal("fresh shard view inherited stale secondary views")
	}
	// The old pinned snapshots still answer probes from their own views.
	n := 0
	a.ScanEq("data", 1, relation.Int(1), func(relation.Tuple) bool { n++; return true })
	c2 := 0
	c.ScanEq("data", 1, relation.Int(1), func(relation.Tuple) bool { c2++; return true })
	if c2 != n+1 {
		t.Fatalf("fresh snapshot sees %d tuples for v=1, pinned %d (want +1)", c2, n)
	}
}
