// Package httpapi is the per-peer HTTP/JSON serving layer: the interface
// real clients use to query, load and update a coDB node without linking
// the library or speaking the binary peer-to-peer protocol.
//
// One Server fronts either a single peer (cmd/codb-peer) or a whole
// in-process network via a resolver (codb.Network, codb-shell), selected
// per request with the ?node= query parameter. Endpoints:
//
//	GET  /healthz            liveness (the process serves HTTP)
//	GET  /readyz             readiness (the peer's actor loop is serving)
//	POST /v1/query           evaluate a conjunctive query (sync JSON, or
//	                         NDJSON streaming with ?stream=ndjson)
//	POST /v1/insert          insert rows into a local relation
//	POST /v1/update          run a global or scoped update, return the report
//	GET  /v1/schema          the node's relation declarations
//	GET  /v1/stats           cumulative per-node export counters (sessions,
//	                         full/incremental/fallback exports, watermark
//	                         skips, suppressed bindings, incremental batches)
//	GET  /v1/stats/read      query-result cache counters
//	GET  /v1/stats/storage   storage engine report
//	GET  /v1/stats/wire      TCP frame/byte counters + outbox batching
//	GET  /v1/stats/propagation  per-link propagation policy counters
//	                            (hints, pulls, byte split, staleness)
//	GET  /v1/stats/membership   failure-detector snapshot (suspicion states
//	                            per acquaintance, suspect/down/heal counts,
//	                            directory totals)
//	PUT  /v1/links/{rule}/policy  set a link's propagation policy
//	                              {"mode": "pull", "filter": "x > 10"}
//	GET  /v1/reports         accumulated per-session statistics reports
//	GET  /v1/peers           pipes and discovered peers
//	POST /v1/membership/join   admit a node into the live network (the
//	                           fronting peer floods the directory delta and
//	                           hands the joiner rules + directory)
//	POST /v1/membership/leave  coordinated departure of a node (tombstone
//	                           flooded, survivors stop dialing it)
//
// Failures are JSON objects {"error": "..."} with a status code derived
// from the error's sentinel: cq.ErrBadQuery maps to 400, ErrUnknownNode to
// 404, peer.ErrStopped to 503, context deadline/cancel to 504.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"codb/internal/core"
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/peer"
)

// ErrUnknownNode is the sentinel for requests addressing a node the
// gateway does not front; it maps to 404. codb.ErrUnknownPeer matches it.
var ErrUnknownNode = errors.New("api: unknown node")

// Options configures a gateway.
type Options struct {
	// Addr is the listen address (required; "127.0.0.1:0" for ephemeral).
	Addr string
	// Peer is the node this gateway fronts (single-peer deployments).
	Peer *peer.Peer
	// Resolve maps a ?node= name to a peer (multi-peer gateways). When
	// both Peer and Resolve are set, Peer serves requests without ?node=.
	Resolve func(node string) (*peer.Peer, error)
	// ReadHeaderTimeout, IdleTimeout harden the listener; zero values pick
	// sane defaults. No overall read/write timeout is set: queries and
	// updates are allowed to run long, bounded per request by ?timeout=.
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration
	// Logger receives request failures; nil discards them.
	Logger *slog.Logger
}

// Server is a running gateway.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	opts Options
	log  *slog.Logger
}

// New binds the listen address and starts serving. A bind failure is
// returned, not hidden — callers print it and exit non-zero.
func New(opts Options) (*Server, error) {
	if opts.Addr == "" {
		return nil, fmt.Errorf("api: no listen address")
	}
	if opts.Peer == nil && opts.Resolve == nil {
		return nil, fmt.Errorf("api: no peer and no resolver")
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("api: listen %s: %w", opts.Addr, err)
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	s := &Server{ln: ln, opts: opts, log: log}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/insert", s.handleInsert)
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	mux.HandleFunc("GET /v1/schema", s.handleSchema)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/stats/read", s.handleReadStats)
	mux.HandleFunc("GET /v1/stats/storage", s.handleStorageStats)
	mux.HandleFunc("GET /v1/stats/wire", s.handleWireStats)
	mux.HandleFunc("GET /v1/stats/propagation", s.handlePropagationStats)
	mux.HandleFunc("GET /v1/stats/membership", s.handleMembershipStats)
	mux.HandleFunc("PUT /v1/links/{rule}/policy", s.handleLinkPolicy)
	mux.HandleFunc("GET /v1/reports", s.handleReports)
	mux.HandleFunc("GET /v1/peers", s.handlePeers)
	mux.HandleFunc("POST /v1/membership/join", s.handleMembershipJoin)
	mux.HandleFunc("POST /v1/membership/leave", s.handleMembershipLeave)
	rht := opts.ReadHeaderTimeout
	if rht == 0 {
		rht = 10 * time.Second
	}
	idle := opts.IdleTimeout
	if idle == 0 {
		idle = 2 * time.Minute
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: rht, IdleTimeout: idle}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and every in-flight request.
func (s *Server) Close() error { return s.srv.Close() }

// peerFor selects the peer a request addresses: ?node= through the
// resolver, otherwise the gateway's own peer.
func (s *Server) peerFor(r *http.Request) (*peer.Peer, error) {
	node := r.URL.Query().Get("node")
	if node == "" {
		if s.opts.Peer != nil {
			return s.opts.Peer, nil
		}
		return nil, fmt.Errorf("%w: request names no node and the gateway has no default", ErrUnknownNode)
	}
	if s.opts.Resolve != nil {
		return s.opts.Resolve(node)
	}
	if s.opts.Peer != nil && s.opts.Peer.Name() == node {
		return s.opts.Peer, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownNode, node)
}

// statusOf maps an error to its HTTP status via sentinel matching.
func statusOf(err error) int {
	switch {
	case errors.Is(err, cq.ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownNode):
		return http.StatusNotFound
	case errors.Is(err, peer.ErrStopped):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, err error) {
	code := statusOf(err)
	s.log.Warn("request failed", "path", r.URL.Path, "code", code, "err", err)
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// decodeBody decodes a JSON request body into dst with numbers kept exact.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: request body: %v", cq.ErrBadQuery, err)
	}
	return nil
}

// requestCtx applies an optional ?timeout= duration to the request context.
func requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	spec := r.URL.Query().Get("timeout")
	if spec == "" {
		return r.Context(), func() {}, nil
	}
	d, err := time.ParseDuration(spec)
	if err != nil || d <= 0 {
		return nil, nil, fmt.Errorf("%w: bad timeout %q", cq.ErrBadQuery, spec)
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		// A resolver-only gateway with no default node is ready when it
		// can serve at all.
		if s.opts.Peer == nil && r.URL.Query().Get("node") == "" {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
		s.writeErr(w, r, err)
		return
	}
	if !p.Running() {
		s.writeErr(w, r, fmt.Errorf("node %s: %w", p.Name(), peer.ErrStopped))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "node": p.Name()})
}

// queryRequest is the /v1/query body.
type queryRequest struct {
	// Query is the conjunctive query, e.g. "ans(x, n) :- emp(x, n), x > 10".
	Query string `json:"query"`
	// Mode is "all" (default) or "certain".
	Mode string `json:"mode"`
	// Local restricts evaluation to the node's local database (no
	// query-time fetching from acquaintances).
	Local bool `json:"local"`
}

func parseMode(spec string) (core.QueryMode, error) {
	switch spec {
	case "", "all":
		return core.AllAnswers, nil
	case "certain":
		return core.CertainAnswers, nil
	default:
		return 0, fmt.Errorf("%w: bad mode %q (want \"all\" or \"certain\")", cq.ErrBadQuery, spec)
	}
}

// wantsNDJSON reports whether the client asked for streaming results.
func wantsNDJSON(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "ndjson" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, r, err)
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	q, err := cq.ParseQuery(req.Query)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if wantsNDJSON(r) {
		s.streamQuery(w, r, p, q, mode, req.Local)
		return
	}
	ctx, cancel, err := requestCtx(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	defer cancel()
	var rows []relationTuple
	if req.Local {
		got, err := p.LocalQuery(q, mode)
		if err != nil {
			s.writeErr(w, r, err)
			return
		}
		rows = tuplesToJSON(got)
	} else {
		got, err := p.Query(ctx, q, mode)
		if err != nil {
			s.writeErr(w, r, err)
			return
		}
		rows = tuplesToJSON(got)
	}
	writeJSON(w, http.StatusOK, map[string]any{"answers": rows, "count": len(rows)})
}

// streamQuery writes answers as NDJSON: one JSON array per answer row,
// then a final object line {"done":true,"count":n[,"report":{...}]}.
// Headers go out before evaluation completes, so failures mid-stream can
// only be reported in the trailer object's "error" field.
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request, p *peer.Peer, q *cq.Query, mode core.QueryMode, local bool) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if local {
		rows, err := p.LocalQuery(q, mode)
		if err != nil {
			enc.Encode(map[string]any{"done": true, "count": 0, "error": err.Error()})
			return
		}
		for _, t := range rows {
			enc.Encode(tupleToJSON(t))
		}
		enc.Encode(map[string]any{"done": true, "count": len(rows)})
		flush()
		return
	}
	answers, reports, err := p.QueryStream(q, mode)
	if err != nil {
		enc.Encode(map[string]any{"done": true, "count": 0, "error": err.Error()})
		return
	}
	n := 0
	for t := range answers {
		enc.Encode(tupleToJSON(t))
		n++
		if n%64 == 0 {
			flush()
		}
	}
	rep := <-reports
	enc.Encode(map[string]any{"done": true, "count": n, "report": rep})
	flush()
}

// insertRequest is the /v1/insert body.
type insertRequest struct {
	Relation string  `json:"relation"`
	Rows     [][]any `json:"rows"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	var req insertRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, r, err)
		return
	}
	def := p.Schema().Rel(req.Relation)
	if def == nil {
		s.writeErr(w, r, fmt.Errorf("%w: no relation %q", cq.ErrBadQuery, req.Relation))
		return
	}
	tuples, err := tuplesFromJSON(def, req.Rows)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if err := p.Insert(req.Relation, tuples...); err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"inserted": len(tuples)})
}

// updateRequest is the /v1/update body. An empty scope runs a global
// update; a non-empty scope runs the paper's query-dependent update over
// the listed relations of the node's schema.
type updateRequest struct {
	Scope []string `json:"scope"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	var req updateRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, r, err)
		return
	}
	ctx, cancel, err := requestCtx(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	defer cancel()
	var rep msg.UpdateReport
	if len(req.Scope) == 0 {
		rep, err = p.RunUpdate(ctx)
	} else {
		rep, err = p.RunScopedUpdate(ctx, req.Scope)
	}
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"report": rep})
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	schema := p.Schema()
	type attrJSON struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	type relJSON struct {
		Name  string     `json:"name"`
		Attrs []attrJSON `json:"attrs"`
	}
	rels := make([]relJSON, 0, schema.Len())
	for _, name := range schema.Names() {
		def := schema.Rel(name)
		attrs := make([]attrJSON, len(def.Attrs))
		for i, a := range def.Attrs {
			attrs[i] = attrJSON{Name: a.Name, Type: a.Type.String()}
		}
		rels = append(rels, relJSON{Name: name, Attrs: attrs})
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": p.Name(), "relations": rels})
}

func (s *Server) handleReadStats(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	stats, ok := p.ReadStats()
	writeJSON(w, http.StatusOK, map[string]any{"node": p.Name(), "available": ok, "read": stats})
}

func (s *Server) handleStorageStats(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	stats, ok := p.StorageStats()
	writeJSON(w, http.StatusOK, map[string]any{"node": p.Name(), "available": ok, "storage": stats})
}

func (s *Server) handleWireStats(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	frames, bytes, ok := p.WireStats()
	resp := map[string]any{
		"node": p.Name(), "available": ok,
		"frames_sent": frames, "bytes_sent": bytes,
	}
	if ob, obOK := p.OutboxStats(); obOK {
		resp["outbox"] = ob
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStats serves the node's cumulative export counters. Unlike
// /v1/reports these never roll out of the bounded reports ring, so
// long-lived peers keep exact totals.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": p.Name(), "totals": p.ExportTotals()})
}

func (s *Server) handlePropagationStats(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": p.Name(), "propagation": p.PropagationStats()})
}

func (s *Server) handleMembershipStats(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": p.Name(), "membership": p.MembershipStats()})
}

// linkPolicyRequest is the PUT /v1/links/{rule}/policy body.
type linkPolicyRequest struct {
	// Mode is "push", "pull", "adaptive" or "filter".
	Mode string `json:"mode"`
	// Filter is an optional comma-separated comparison list over the
	// rule's frontier variables (required for mode "filter").
	Filter string `json:"filter"`
}

func (s *Server) handleLinkPolicy(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	rule := r.PathValue("rule")
	var req linkPolicyRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, r, err)
		return
	}
	if err := p.SetLinkPolicy(rule, req.Mode, req.Filter); err != nil {
		s.writeErr(w, r, fmt.Errorf("%w: %v", cq.ErrBadQuery, err))
		return
	}
	mode, filter := req.Mode, req.Filter
	if mode == "" {
		mode = "push"
	}
	resp := map[string]any{"node": p.Name(), "rule": rule, "mode": mode}
	if filter != "" {
		resp["filter"] = filter
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	reports := p.Reports()
	writeJSON(w, http.StatusOK, map[string]any{"node": p.Name(), "reports": reports})
}

func (s *Server) handlePeers(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node":       p.Name(),
		"pipes":      p.Pipes(),
		"discovered": p.Discovered(),
	})
}
