package httpapi

import (
	"encoding/json"
	"fmt"
	"math"

	"codb/internal/cq"
	"codb/internal/relation"
)

// relationTuple is one answer row on the wire: a JSON array of attribute
// values. Ints, floats, strings and bools map to their native JSON types;
// a marked null becomes {"null": "<label>"} so clients can distinguish two
// different unknowns from each other and from a plain string.
type relationTuple []any

func valueToJSON(v relation.Value) any {
	switch v.Kind {
	case relation.KindNull:
		return map[string]string{"null": v.Str}
	case relation.KindBool:
		return v.Bool
	case relation.KindInt:
		return v.Int
	case relation.KindFloat:
		return v.Float
	case relation.KindString:
		return v.Str
	default:
		return v.String()
	}
}

func tupleToJSON(t relation.Tuple) relationTuple {
	out := make(relationTuple, len(t))
	for i, v := range t {
		out[i] = valueToJSON(v)
	}
	return out
}

func tuplesToJSON(ts []relation.Tuple) []relationTuple {
	out := make([]relationTuple, len(ts))
	for i, t := range ts {
		out[i] = tupleToJSON(t)
	}
	return out
}

// valueFromJSON coerces one JSON-decoded value (numbers as json.Number,
// courtesy of decodeBody) to the declared attribute type. A
// {"null": "label"} object is accepted for any type.
func valueFromJSON(raw any, typ relation.Type) (relation.Value, error) {
	if m, ok := raw.(map[string]any); ok {
		label, ok := m["null"].(string)
		if !ok || len(m) != 1 {
			return relation.Value{}, fmt.Errorf("object value must be {\"null\": \"label\"}, got %v", raw)
		}
		return relation.Null(label), nil
	}
	if raw == nil {
		return relation.Null(""), nil
	}
	switch typ {
	case relation.TInt:
		n, ok := raw.(json.Number)
		if !ok {
			return relation.Value{}, fmt.Errorf("want int, got %T", raw)
		}
		i, err := n.Int64()
		if err != nil {
			return relation.Value{}, fmt.Errorf("want int, got %v", n)
		}
		return relation.Int64(i), nil
	case relation.TFloat:
		n, ok := raw.(json.Number)
		if !ok {
			return relation.Value{}, fmt.Errorf("want float, got %T", raw)
		}
		f, err := n.Float64()
		if err != nil || math.IsInf(f, 0) || math.IsNaN(f) {
			return relation.Value{}, fmt.Errorf("want float, got %v", n)
		}
		return relation.Float(f), nil
	case relation.TString:
		s, ok := raw.(string)
		if !ok {
			return relation.Value{}, fmt.Errorf("want string, got %T", raw)
		}
		return relation.Str(s), nil
	case relation.TBool:
		b, ok := raw.(bool)
		if !ok {
			return relation.Value{}, fmt.Errorf("want bool, got %T", raw)
		}
		return relation.Bool(b), nil
	default:
		return relation.Value{}, fmt.Errorf("unsupported attribute type %v", typ)
	}
}

// tuplesFromJSON coerces request rows to typed tuples against a relation's
// declared schema. All errors are client errors (400).
func tuplesFromJSON(def *relation.RelDef, rows [][]any) ([]relation.Tuple, error) {
	tuples := make([]relation.Tuple, len(rows))
	for i, row := range rows {
		if len(row) != len(def.Attrs) {
			return nil, fmt.Errorf("%w: relation %s row %d: got %d values, want %d",
				cq.ErrBadQuery, def.Name, i, len(row), len(def.Attrs))
		}
		t := make(relation.Tuple, len(row))
		for j, raw := range row {
			v, err := valueFromJSON(raw, def.Attrs[j].Type)
			if err != nil {
				return nil, fmt.Errorf("%w: relation %s row %d attr %s: %v",
					cq.ErrBadQuery, def.Name, i, def.Attrs[j].Name, err)
			}
			t[j] = v
		}
		tuples[i] = t
	}
	return tuples, nil
}
