package httpapi

import (
	"fmt"
	"net/http"

	"codb/internal/cq"
)

// joinRequest is the /v1/membership/join body: a node asking to be admitted
// into the live network through the peer this gateway fronts.
type joinRequest struct {
	// Node is the joiner's network-unique name.
	Node string `json:"node"`
	// Addr is the joiner's dialable listen address (TCP deployments).
	Addr string `json:"addr"`
}

func (s *Server) handleMembershipJoin(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	var req joinRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, r, err)
		return
	}
	if req.Node == "" {
		s.writeErr(w, r, fmt.Errorf("%w: join names no node", cq.ErrBadQuery))
		return
	}
	epoch, err := p.AdmitJoin(req.Node, req.Addr)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node": req.Node, "epoch": epoch, "admitted_by": p.Name(),
	})
}

// leaveRequest is the /v1/membership/leave body: a coordinated departure of
// the named node, announced on its behalf.
type leaveRequest struct {
	Node string `json:"node"`
}

func (s *Server) handleMembershipLeave(w http.ResponseWriter, r *http.Request) {
	p, err := s.peerFor(r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	var req leaveRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeErr(w, r, err)
		return
	}
	if req.Node == "" {
		s.writeErr(w, r, fmt.Errorf("%w: leave names no node", cq.ErrBadQuery))
		return
	}
	if err := p.RemoveNode(req.Node); err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node": req.Node, "removed": true, "removed_by": p.Name(),
	})
}
