package relation

import "sort"

// Instance is a plain map-of-relations snapshot used by oracles and tests:
// relation name -> set of tuples keyed by their order-preserving encoding.
type Instance map[string]map[string]Tuple

// NewInstance returns an empty instance.
func NewInstance() Instance { return make(Instance) }

// Insert adds a tuple, reporting whether it was new.
func (in Instance) Insert(rel string, t Tuple) bool {
	m := in[rel]
	if m == nil {
		m = make(map[string]Tuple)
		in[rel] = m
	}
	k := t.Key()
	if _, ok := m[k]; ok {
		return false
	}
	m[k] = t.Clone()
	return true
}

// Has reports whether the tuple is present.
func (in Instance) Has(rel string, t Tuple) bool {
	_, ok := in[rel][t.Key()]
	return ok
}

// Tuples returns the tuples of a relation in deterministic (key) order.
func (in Instance) Tuples(rel string) []Tuple {
	m := in[rel]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// Scan calls fn for every tuple of the relation in key order (fn returning
// false stops early), satisfying the cq.Source interface.
func (in Instance) Scan(rel string, fn func(Tuple) bool) {
	for _, t := range in.Tuples(rel) {
		if !fn(t) {
			return
		}
	}
}

// Size returns the total number of tuples across all relations.
func (in Instance) Size() int {
	n := 0
	for _, m := range in {
		n += len(m)
	}
	return n
}

// Clone deep-copies the instance.
func (in Instance) Clone() Instance {
	c := NewInstance()
	for rel, m := range in {
		cm := make(map[string]Tuple, len(m))
		for k, t := range m {
			cm[k] = t.Clone()
		}
		c[rel] = cm
	}
	return c
}

// EqualUpToNulls reports whether two instances contain the same tuples up to
// a consistent renaming of marked nulls. It performs a backtracking search
// for a bijection between the null labels of a and b that maps every tuple
// of a onto a tuple of b and vice versa. Instances produced by independent
// runs of the update algorithm differ only in null labels, so this is the
// equivalence the correctness oracle needs.
//
// The search is exponential in the worst case but instances in tests carry
// few distinct nulls per relation; a canonical-form fast path handles the
// common case where the two sides already agree.
func EqualUpToNulls(a, b Instance) bool {
	// Quick size/shape checks.
	if len(nonEmpty(a)) != len(nonEmpty(b)) {
		return false
	}
	for rel, m := range a {
		if len(m) != len(b[rel]) {
			return false
		}
	}
	for rel, m := range b {
		if len(m) != len(a[rel]) {
			return false
		}
	}
	// Fast path: identical canonical renamings (order-of-first-occurrence
	// over a deterministic traversal). This succeeds whenever both sides
	// minted nulls in the same structural positions.
	if canonicalForm(a) == canonicalForm(b) {
		return true
	}
	// Full check: homomorphism in both directions that is injective on
	// nulls. Because both instances have equal cardinalities per relation,
	// mutual injective-on-nulls containment implies isomorphism.
	return nullEmbeds(a, b) && nullEmbeds(b, a)
}

func nonEmpty(in Instance) map[string]bool {
	out := make(map[string]bool)
	for rel, m := range in {
		if len(m) > 0 {
			out[rel] = true
		}
	}
	return out
}

// canonicalForm renames nulls by first occurrence in a sorted traversal and
// returns a string fingerprint.
func canonicalForm(in Instance) string {
	rels := make([]string, 0, len(in))
	for rel, m := range in {
		if len(m) > 0 {
			rels = append(rels, rel)
		}
	}
	sort.Strings(rels)
	rename := make(map[string]string)
	var buf []byte
	for _, rel := range rels {
		buf = append(buf, rel...)
		buf = append(buf, 0)
		for _, t := range in.Tuples(rel) {
			ct := make(Tuple, len(t))
			for i, v := range t {
				if v.Kind == KindNull {
					nl, ok := rename[v.Str]
					if !ok {
						nl = "n" + itoa(len(rename))
						rename[v.Str] = nl
					}
					ct[i] = Null(nl)
				} else {
					ct[i] = v
				}
			}
			buf = EncodeTuple(buf, ct)
		}
	}
	return string(buf)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

// nullEmbeds reports whether there is a mapping of a's null labels to b's
// values (injective on nulls, identity on constants) under which every tuple
// of a appears in b.
func nullEmbeds(a, b Instance) bool {
	// Collect a's tuples as a worklist ordered by nulls-per-tuple so that
	// heavily-constrained tuples bind first.
	type item struct {
		rel string
		t   Tuple
	}
	var work []item
	for rel, m := range a {
		for _, t := range m {
			work = append(work, item{rel, t})
		}
	}
	sort.Slice(work, func(i, j int) bool {
		ni, nj := countNulls(work[i].t), countNulls(work[j].t)
		if ni != nj {
			return ni < nj
		}
		if work[i].rel != work[j].rel {
			return work[i].rel < work[j].rel
		}
		return work[i].t.Compare(work[j].t) < 0
	})

	assign := make(map[string]Value) // a-null label -> b value
	used := make(map[Value]bool)     // b null values already targeted

	var solve func(i int) bool
	solve = func(i int) bool {
		if i == len(work) {
			return true
		}
		it := work[i]
		cands := b[it.rel]
		// Try every candidate tuple in b's relation.
		for _, bt := range cands {
			if len(bt) != len(it.t) {
				continue
			}
			// Attempt to unify it.t with bt under current assignment.
			var newly []string
			ok := true
			for k := range it.t {
				av, bv := it.t[k], bt[k]
				if av.Kind != KindNull {
					if av != bv {
						ok = false
						break
					}
					continue
				}
				if cur, bound := assign[av.Str]; bound {
					if cur != bv {
						ok = false
						break
					}
					continue
				}
				// a-null must map to a b-null (injective, null-to-null):
				// mapping a null to a constant would make a strictly more
				// informative than b, which cannot happen between two
				// sound+complete results; requiring null-to-null keeps the
				// relation symmetric.
				if bv.Kind != KindNull || used[bv] {
					ok = false
					break
				}
				assign[av.Str] = bv
				used[bv] = true
				newly = append(newly, av.Str)
			}
			if ok && solve(i+1) {
				return true
			}
			for _, l := range newly {
				used[assign[l]] = false
				delete(assign, l)
			}
		}
		return false
	}
	return solve(0)
}

func countNulls(t Tuple) int {
	n := 0
	for _, v := range t {
		if v.Kind == KindNull {
			n++
		}
	}
	return n
}
