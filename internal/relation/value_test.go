package relation

import (
	"math"
	"testing"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Int64(42), KindInt},
		{Int(-7), KindInt},
		{Float(3.14), KindFloat},
		{Str("hello"), KindString},
		{Bool(true), KindBool},
		{Null("n1"), KindNull},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("value %v: kind = %v, want %v", c.v, c.v.Kind, c.kind)
		}
	}
}

func TestValueEquality(t *testing.T) {
	if !Int(5).Equal(Int64(5)) {
		t.Error("Int(5) != Int64(5)")
	}
	if Int(5).Equal(Float(5)) {
		t.Error("no numeric coercion expected: Int(5) == Float(5)")
	}
	if !Null("a").Equal(Null("a")) {
		t.Error("same-label nulls must be equal")
	}
	if Null("a").Equal(Null("b")) {
		t.Error("distinct-label nulls must differ")
	}
	if Str("x").Equal(Null("x")) {
		t.Error("string and null with same payload must differ")
	}
}

func TestValueCompareWithinKind(t *testing.T) {
	ordered := []Value{
		Null(""), Null("a"), Null("b"),
		Bool(false), Bool(true),
		Int(-10), Int(0), Int(99),
		Float(math.Inf(-1)), Float(-1.5), Float(0), Float(2.5), Float(math.Inf(1)),
		Str(""), Str("a"), Str("ab"), Str("b"),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"42":      Int(42),
		`"hi"`:    Str("hi"),
		"true":    Bool(true),
		"⊥n1:3":   Null("n1:3"),
		"⊥":       Null(""),
		"1.5":     Float(1.5),
		"-0.0001": Float(-0.0001),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestTypeAdmits(t *testing.T) {
	if !TInt.Admits(Int(1)) || TInt.Admits(Str("x")) {
		t.Error("TInt admission wrong")
	}
	if !TString.Admits(Str("x")) || TString.Admits(Bool(true)) {
		t.Error("TString admission wrong")
	}
	for _, typ := range []Type{TInt, TFloat, TString, TBool} {
		if !typ.Admits(Null("u")) {
			t.Errorf("%v must admit marked nulls", typ)
		}
	}
}

func TestParseType(t *testing.T) {
	for name, want := range map[string]Type{
		"int": TInt, "float": TFloat, "string": TString, "str": TString,
		"text": TString, "bool": TBool,
	} {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestNullMinterFreshness(t *testing.T) {
	m := NewNullMinter("p1")
	seen := make(map[Value]bool)
	for i := 0; i < 1000; i++ {
		v := m.Fresh()
		if v.Kind != KindNull {
			t.Fatalf("minted non-null %v", v)
		}
		if seen[v] {
			t.Fatalf("duplicate null %v", v)
		}
		seen[v] = true
	}
	if m.Minted() != 1000 {
		t.Errorf("Minted() = %d, want 1000", m.Minted())
	}
	other := NewNullMinter("p2")
	if other.Fresh() == NewNullMinter("p1").Fresh() {
		// p2:1 vs p1:1
		t.Error("nulls from different nodes must not collide")
	}
}

func TestNullMinterConcurrent(t *testing.T) {
	m := NewNullMinter("c")
	const g, per = 8, 500
	ch := make(chan Value, g*per)
	for i := 0; i < g; i++ {
		go func() {
			for j := 0; j < per; j++ {
				ch <- m.Fresh()
			}
		}()
	}
	seen := make(map[Value]bool)
	for i := 0; i < g*per; i++ {
		v := <-ch
		if seen[v] {
			t.Fatalf("concurrent duplicate %v", v)
		}
		seen[v] = true
	}
}
