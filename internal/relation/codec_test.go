package relation

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genValue draws a random value (no NaN floats: NaN breaks ordering).
func genValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null(randString(r))
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int64(r.Int63() - r.Int63())
	case 3:
		for {
			f := math.Float64frombits(r.Uint64())
			if !math.IsNaN(f) {
				return Float(f)
			}
		}
	default:
		return Str(randString(r))
	}
}

func randString(r *rand.Rand) string {
	n := r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		// Bias toward 0x00 and 0xFF to stress the escaping.
		switch r.Intn(4) {
		case 0:
			b[i] = 0x00
		case 1:
			b[i] = 0xFF
		default:
			b[i] = byte(r.Intn(256))
		}
	}
	return string(b)
}

func genTuple(r *rand.Rand, arity int) Tuple {
	t := make(Tuple, arity)
	for i := range t {
		t[i] = genValue(r)
	}
	return t
}

func TestCodecRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(seed int64, arity uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(arity%6) + 1
		orig := genTuple(r, n)
		enc := EncodeTuple(nil, orig)
		dec, err := DecodeTuple(enc, n)
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		return reflect.DeepEqual(orig, dec)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCodecOrderPreservationQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 4000}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(4) + 1
		a, b := genTuple(r, n), genTuple(r, n)
		ea, eb := EncodeTuple(nil, a), EncodeTuple(nil, b)
		return sign(bytes.Compare(ea, eb)) == sign(a.Compare(b))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestCodecSingleValues(t *testing.T) {
	vals := []Value{
		Int(0), Int(-1), Int64(math.MaxInt64), Int64(math.MinInt64),
		Float(0), Float(-0.0), Float(math.Inf(1)), Float(math.Inf(-1)),
		Str(""), Str("a\x00b"), Str(string([]byte{0x00, 0xFF, 0x00})),
		Bool(true), Bool(false),
		Null(""), Null("p:1"),
	}
	for _, v := range vals {
		enc := EncodeValue(nil, v)
		dec, n, err := DecodeValue(enc)
		if err != nil {
			t.Errorf("decode(%v): %v", v, err)
			continue
		}
		if n != len(enc) {
			t.Errorf("decode(%v): consumed %d of %d bytes", v, n, len(enc))
		}
		if dec != v {
			t.Errorf("roundtrip(%v) = %v", v, dec)
		}
	}
}

func TestCodecErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("decode of empty input should fail")
	}
	if _, _, err := DecodeValue([]byte{99}); err == nil {
		t.Error("bad kind tag should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindInt), 1, 2}); err == nil {
		t.Error("truncated int should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindString), 'a'}); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindString), 0x00, 0x7A}); err == nil {
		t.Error("bad escape should fail")
	}
	// Trailing garbage after a well-formed tuple.
	enc := EncodeTuple(nil, Tuple{Int(1)})
	if _, err := DecodeTuple(append(enc, 0xAA), 1); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestTupleKeyIdentity(t *testing.T) {
	a := Tuple{Int(1), Str("x")}
	b := Tuple{Int(1), Str("x")}
	c := Tuple{Int(1), Str("y")}
	if a.Key() != b.Key() {
		t.Error("equal tuples must share keys")
	}
	if a.Key() == c.Key() {
		t.Error("distinct tuples must have distinct keys")
	}
}

// Strings that embed the escape/terminator bytes must not confuse tuple
// boundaries: ("a\x00", "b") vs ("a", "\x00b") encode differently.
func TestCodecBoundaryConfusion(t *testing.T) {
	a := Tuple{Str("a\x00"), Str("b")}
	b := Tuple{Str("a"), Str("\x00b")}
	if a.Key() == b.Key() {
		t.Error("boundary confusion in tuple encoding")
	}
}

func TestEncodedLenMatchesEncoding(t *testing.T) {
	tuples := []Tuple{
		{Int(0), Int(-5), Int(1 << 40)},
		{Str(""), Str("abc"), Str("a\x00b")},
		{Bool(true), Bool(false)},
		{Float(3.25), Float(-0.5)},
		{Null("n1"), Null("")},
		{},
	}
	for _, tu := range tuples {
		want := len(EncodeTuple(nil, tu))
		if got := tu.EncodedLen(); got != want {
			t.Errorf("EncodedLen(%v) = %d, want %d", tu, got, want)
		}
		for _, v := range tu {
			if got, want := v.EncodedLen(), len(EncodeValue(nil, v)); got != want {
				t.Errorf("Value EncodedLen(%v) = %d, want %d", v, got, want)
			}
		}
	}
}

func TestTupleGobRoundtrip(t *testing.T) {
	tuples := []Tuple{
		{Int(42), Str("hello"), Bool(true), Float(1.5), Null("x")},
		{Str("a\x00b\x00")},
		{},
	}
	for _, tu := range tuples {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(tu); err != nil {
			t.Fatalf("encode %v: %v", tu, err)
		}
		var back Tuple
		if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
			t.Fatalf("decode %v: %v", tu, err)
		}
		if !tu.Equal(back) {
			t.Errorf("roundtrip %v -> %v", tu, back)
		}
	}
	var bad Tuple
	if err := bad.GobDecode([]byte{0xEE}); err == nil {
		t.Error("bad kind tag accepted")
	}
}
