package relation

import (
	"strings"
	"testing"
)

func TestTupleCloneIndependence(t *testing.T) {
	a := Tuple{Int(1), Str("x")}
	b := a.Clone()
	b[0] = Int(2)
	if a[0] != Int(1) {
		t.Error("Clone shares storage")
	}
}

func TestTupleEqualAndCompare(t *testing.T) {
	a := Tuple{Int(1), Str("x")}
	b := Tuple{Int(1), Str("x")}
	c := Tuple{Int(1), Str("y")}
	short := Tuple{Int(1)}
	if !a.Equal(b) || a.Equal(c) || a.Equal(short) {
		t.Error("Equal wrong")
	}
	if a.Compare(b) != 0 || a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("Compare wrong on same-length tuples")
	}
	if short.Compare(a) != -1 || a.Compare(short) != 1 {
		t.Error("prefix tuples must order before extensions")
	}
}

func TestTupleHasNullAndProject(t *testing.T) {
	a := Tuple{Int(1), Null("n"), Str("z")}
	if !a.HasNull() {
		t.Error("HasNull false negative")
	}
	if (Tuple{Int(1)}).HasNull() {
		t.Error("HasNull false positive")
	}
	p := a.Project([]int{2, 0})
	if !p.Equal(Tuple{Str("z"), Int(1)}) {
		t.Errorf("Project = %v", p)
	}
}

func TestTupleString(t *testing.T) {
	s := Tuple{Int(1), Str("a"), Null("p:1")}.String()
	if s != `(1, "a", ⊥p:1)` {
		t.Errorf("String = %q", s)
	}
}

func TestRelDefValidate(t *testing.T) {
	def := &RelDef{Name: "emp", Attrs: []Attr{{"id", TInt}, {"name", TString}}}
	if err := def.Validate(Tuple{Int(1), Str("bob")}); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := def.Validate(Tuple{Int(1), Null("u")}); err != nil {
		t.Errorf("null should be admitted: %v", err)
	}
	if err := def.Validate(Tuple{Int(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := def.Validate(Tuple{Str("x"), Str("bob")}); err == nil {
		t.Error("type mismatch accepted")
	}
	if def.AttrIndex("name") != 1 || def.AttrIndex("nope") != -1 {
		t.Error("AttrIndex wrong")
	}
	if def.Arity() != 2 {
		t.Error("Arity wrong")
	}
	if got := def.String(); got != "emp(id int, name string)" {
		t.Errorf("String = %q", got)
	}
}

func TestSchemaAddAndLookup(t *testing.T) {
	s := NewSchema()
	if err := s.Add(&RelDef{Name: "a", Attrs: []Attr{{"x", TInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&RelDef{Name: "b", Attrs: []Attr{{"y", TString}}}); err != nil {
		t.Fatal(err)
	}
	if s.Rel("a") == nil || s.Rel("b") == nil || s.Rel("c") != nil {
		t.Error("Rel lookup wrong")
	}
	if got := s.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Names = %v", got)
	}
	if s.Len() != 2 {
		t.Error("Len wrong")
	}
}

func TestSchemaAddErrors(t *testing.T) {
	s := NewSchema()
	if err := s.Add(&RelDef{Name: "", Attrs: []Attr{{"x", TInt}}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.Add(&RelDef{Name: "r", Attrs: nil}); err == nil {
		t.Error("no attributes accepted")
	}
	if err := s.Add(&RelDef{Name: "r", Attrs: []Attr{{"x", TInt}, {"x", TInt}}}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if err := s.Add(&RelDef{Name: "r", Attrs: []Attr{{"", TInt}}}); err == nil {
		t.Error("unnamed attribute accepted")
	}
	s.MustAdd(&RelDef{Name: "r", Attrs: []Attr{{"x", TInt}}})
	if err := s.Add(&RelDef{Name: "r", Attrs: []Attr{{"x", TInt}}}); err == nil {
		t.Error("duplicate relation accepted")
	}
}

func TestSchemaCloneIndependence(t *testing.T) {
	s := NewSchema()
	s.MustAdd(&RelDef{Name: "r", Attrs: []Attr{{"x", TInt}}})
	c := s.Clone()
	c.Rel("r").Attrs[0].Name = "changed"
	if s.Rel("r").Attrs[0].Name != "x" {
		t.Error("Clone shares attribute storage")
	}
	if !strings.Contains(s.String(), "r(x int)") {
		t.Errorf("String = %q", s.String())
	}
}
