package relation

import (
	"fmt"
	"strings"
)

// Tuple is an ordered list of values, one per attribute of its relation.
type Tuple []Value

// Clone returns a copy of the tuple that shares no backing storage.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether two tuples have the same length and equal values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically by Value.Compare, with shorter
// tuples ordering before longer ones on a shared prefix.
func (t Tuple) Compare(u Tuple) int {
	n := min(len(t), len(u))
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	default:
		return 0
	}
}

// HasNull reports whether any value in the tuple is a marked null.
func (t Tuple) HasNull() bool {
	for _, v := range t {
		if v.Kind == KindNull {
			return true
		}
	}
	return false
}

// Project returns the tuple restricted to the given attribute positions.
func (t Tuple) Project(idx []int) Tuple {
	p := make(Tuple, len(idx))
	for i, j := range idx {
		p[i] = t[j]
	}
	return p
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Key returns the order-preserving binary encoding of the tuple, usable as
// an index key and as a deduplication identity.
func (t Tuple) Key() string { return string(EncodeTuple(nil, t)) }

// Attr declares one attribute of a relation: a name and a type.
type Attr struct {
	Name string
	Type Type
}

// RelDef declares one relation of a node schema.
type RelDef struct {
	Name  string
	Attrs []Attr
}

// Arity returns the number of attributes.
func (r *RelDef) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (r *RelDef) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks that a tuple is well-typed for this relation.
func (r *RelDef) Validate(t Tuple) error {
	if len(t) != len(r.Attrs) {
		return fmt.Errorf("relation %s: tuple arity %d, want %d", r.Name, len(t), len(r.Attrs))
	}
	for i, v := range t {
		if !r.Attrs[i].Type.Admits(v) {
			return fmt.Errorf("relation %s: attribute %s is %s, got %s value %s",
				r.Name, r.Attrs[i].Name, r.Attrs[i].Type, v.Kind, v)
		}
	}
	return nil
}

// String renders the definition in schema-file syntax, e.g.
// "emp(id int, name string)".
func (r *RelDef) String() string {
	var b strings.Builder
	b.WriteString(r.Name)
	b.WriteByte('(')
	for i, a := range r.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte(' ')
		b.WriteString(a.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Schema is the shared database schema (DBS) of a node: the set of relation
// definitions other peers may reference in coordination rules.
type Schema struct {
	rels  map[string]*RelDef
	order []string // deterministic iteration order (declaration order)
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{rels: make(map[string]*RelDef)}
}

// Add declares a relation. It returns an error on duplicate names or empty
// definitions.
func (s *Schema) Add(def *RelDef) error {
	if def.Name == "" {
		return fmt.Errorf("schema: relation with empty name")
	}
	if len(def.Attrs) == 0 {
		return fmt.Errorf("schema: relation %s has no attributes", def.Name)
	}
	seen := make(map[string]bool, len(def.Attrs))
	for _, a := range def.Attrs {
		if a.Name == "" {
			return fmt.Errorf("schema: relation %s has an unnamed attribute", def.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("schema: relation %s: duplicate attribute %s", def.Name, a.Name)
		}
		seen[a.Name] = true
	}
	if _, dup := s.rels[def.Name]; dup {
		return fmt.Errorf("schema: duplicate relation %s", def.Name)
	}
	s.rels[def.Name] = def
	s.order = append(s.order, def.Name)
	return nil
}

// MustAdd is Add panicking on error; for tests and literals.
func (s *Schema) MustAdd(def *RelDef) {
	if err := s.Add(def); err != nil {
		panic(err)
	}
}

// Rel returns the definition of the named relation, or nil.
func (s *Schema) Rel(name string) *RelDef { return s.rels[name] }

// Names returns the relation names in declaration order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Len returns the number of relations.
func (s *Schema) Len() int { return len(s.order) }

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := NewSchema()
	for _, name := range s.order {
		def := s.rels[name]
		attrs := make([]Attr, len(def.Attrs))
		copy(attrs, def.Attrs)
		c.MustAdd(&RelDef{Name: def.Name, Attrs: attrs})
	}
	return c
}

// String renders the schema one relation per line.
func (s *Schema) String() string {
	var b strings.Builder
	for i, name := range s.order {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(s.rels[name].String())
	}
	return b.String()
}
