package relation

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Order-preserving binary encoding of values and tuples.
//
// The encoding guarantees that for well-formed tuples t, u:
//
//	bytes.Compare(EncodeTuple(nil,t), EncodeTuple(nil,u)) == t.Compare(u)
//
// which lets the B+tree index and the sent-tuple caches operate directly on
// encoded keys. Each value starts with its kind tag (so cross-kind order
// matches Value.Compare), followed by a kind-specific payload:
//
//	null:   escaped label bytes + terminator
//	bool:   one byte 0/1
//	int:    8 bytes big-endian with the sign bit flipped
//	float:  8 bytes big-endian IEEE with order-fix transform
//	string: escaped bytes + terminator
//
// Strings and labels use 0x00-escaping (0x00 -> 0x00 0xFF) terminated by
// 0x00 0x01 so that prefixes order before extensions.

const (
	escByte  = 0x00
	escPad   = 0xFF
	termByte = 0x01
)

// EncodeValue appends the order-preserving encoding of v to dst.
func EncodeValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case KindNull:
		dst = appendEscaped(dst, v.Str)
	case KindBool:
		if v.Bool {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.Int)^(1<<63))
		dst = append(dst, buf[:]...)
	case KindFloat:
		bits := math.Float64bits(v.Float)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative floats: flip all bits
		} else {
			bits |= 1 << 63 // positive floats: flip sign bit
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		dst = append(dst, buf[:]...)
	case KindString:
		dst = appendEscaped(dst, v.Str)
	}
	return dst
}

func appendEscaped(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		dst = append(dst, c)
		if c == escByte {
			dst = append(dst, escPad)
		}
	}
	return append(dst, escByte, termByte)
}

// EncodeTuple appends the order-preserving encoding of every value of t.
func EncodeTuple(dst []byte, t Tuple) []byte {
	for _, v := range t {
		dst = EncodeValue(dst, v)
	}
	return dst
}

// EncodedLen returns len(EncodeValue(nil, v)) without allocating or
// encoding — the data-volume measure of the statistics module, on the hot
// path of every shipped tuple.
func (v Value) EncodedLen() int {
	switch v.Kind {
	case KindNull, KindString:
		n := 1 + 2 // tag + terminator
		for i := 0; i < len(v.Str); i++ {
			n++
			if v.Str[i] == escByte {
				n++
			}
		}
		return n
	case KindBool:
		return 2
	case KindInt, KindFloat:
		return 9
	default:
		return 1
	}
}

// EncodedLen returns len(EncodeTuple(nil, t)) without allocating.
func (t Tuple) EncodedLen() int {
	n := 0
	for _, v := range t {
		n += v.EncodedLen()
	}
	return n
}

// DecodeValue decodes one value from b, returning the value and the number
// of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, fmt.Errorf("codec: empty input")
	}
	kind := Kind(b[0])
	rest := b[1:]
	switch kind {
	case KindNull, KindString:
		s, n, err := decodeEscaped(rest)
		if err != nil {
			return Value{}, 0, err
		}
		return Value{Kind: kind, Str: s}, 1 + n, nil
	case KindBool:
		if len(rest) < 1 {
			return Value{}, 0, fmt.Errorf("codec: truncated bool")
		}
		// Only the two canonical payloads decode: the encoding doubles as
		// a deduplication identity, so decode must invert encode exactly
		// (found by FuzzTupleCodec).
		if rest[0] > 1 {
			return Value{}, 0, fmt.Errorf("codec: bad bool byte 0x%02x", rest[0])
		}
		return Value{Kind: KindBool, Bool: rest[0] == 1}, 2, nil
	case KindInt:
		if len(rest) < 8 {
			return Value{}, 0, fmt.Errorf("codec: truncated int")
		}
		u := binary.BigEndian.Uint64(rest[:8])
		return Value{Kind: KindInt, Int: int64(u ^ (1 << 63))}, 9, nil
	case KindFloat:
		if len(rest) < 8 {
			return Value{}, 0, fmt.Errorf("codec: truncated float")
		}
		bits := binary.BigEndian.Uint64(rest[:8])
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return Value{Kind: KindFloat, Float: math.Float64frombits(bits)}, 9, nil
	default:
		return Value{}, 0, fmt.Errorf("codec: bad kind tag %d", b[0])
	}
}

func decodeEscaped(b []byte) (string, int, error) {
	var out []byte
	i := 0
	for i < len(b) {
		c := b[i]
		if c != escByte {
			out = append(out, c)
			i++
			continue
		}
		if i+1 >= len(b) {
			return "", 0, fmt.Errorf("codec: truncated escape")
		}
		switch b[i+1] {
		case escPad:
			out = append(out, escByte)
			i += 2
		case termByte:
			return string(out), i + 2, nil
		default:
			return "", 0, fmt.Errorf("codec: bad escape byte 0x%02x", b[i+1])
		}
	}
	return "", 0, fmt.Errorf("codec: unterminated string")
}

// GobEncode implements gob.GobEncoder with the order-preserving binary
// codec: one compact byte string per tuple instead of gob's reflective
// struct encoding per value. Tuple payloads are the bulk of coDB's
// inter-peer traffic, so this halves both the wire volume and the
// encode/decode CPU of data messages.
func (t Tuple) GobEncode() ([]byte, error) {
	return EncodeTuple(nil, t), nil
}

// GobDecode implements gob.GobDecoder: the codec is self-delimiting, so
// values are decoded until the buffer is exhausted.
func (t *Tuple) GobDecode(b []byte) error {
	out := make(Tuple, 0, 4)
	for off := 0; off < len(b); {
		v, n, err := DecodeValue(b[off:])
		if err != nil {
			return fmt.Errorf("codec: tuple value %d: %w", len(out), err)
		}
		out = append(out, v)
		off += n
	}
	*t = out
	return nil
}

// DecodeTuple decodes exactly arity values from b.
func DecodeTuple(b []byte, arity int) (Tuple, error) {
	t := make(Tuple, 0, arity)
	off := 0
	for i := 0; i < arity; i++ {
		v, n, err := DecodeValue(b[off:])
		if err != nil {
			return nil, fmt.Errorf("codec: value %d: %w", i, err)
		}
		t = append(t, v)
		off += n
	}
	if off != len(b) {
		return nil, fmt.Errorf("codec: %d trailing bytes after %d values", len(b)-off, arity)
	}
	return t, nil
}
