package relation

import "testing"

func inst(pairs ...any) Instance {
	in := NewInstance()
	for i := 0; i < len(pairs); i += 2 {
		rel := pairs[i].(string)
		t := pairs[i+1].(Tuple)
		in.Insert(rel, t)
	}
	return in
}

func TestInstanceInsertDedup(t *testing.T) {
	in := NewInstance()
	if !in.Insert("r", Tuple{Int(1)}) {
		t.Error("first insert should be new")
	}
	if in.Insert("r", Tuple{Int(1)}) {
		t.Error("second insert should dedup")
	}
	if !in.Has("r", Tuple{Int(1)}) || in.Has("r", Tuple{Int(2)}) {
		t.Error("Has wrong")
	}
	if in.Size() != 1 {
		t.Error("Size wrong")
	}
	got := in.Tuples("r")
	if len(got) != 1 || !got[0].Equal(Tuple{Int(1)}) {
		t.Errorf("Tuples = %v", got)
	}
}

func TestInstanceCloneIndependence(t *testing.T) {
	a := inst("r", Tuple{Int(1)})
	b := a.Clone()
	b.Insert("r", Tuple{Int(2)})
	if a.Size() != 1 || b.Size() != 2 {
		t.Error("Clone not independent")
	}
}

func TestEqualUpToNullsIdentical(t *testing.T) {
	a := inst("r", Tuple{Int(1), Str("x")}, "s", Tuple{Bool(true)})
	b := inst("r", Tuple{Int(1), Str("x")}, "s", Tuple{Bool(true)})
	if !EqualUpToNulls(a, b) {
		t.Error("identical instances must be equal")
	}
}

func TestEqualUpToNullsRenaming(t *testing.T) {
	a := inst("r", Tuple{Int(1), Null("a:1")}, "r", Tuple{Int(2), Null("a:1")}, "r", Tuple{Int(3), Null("a:2")})
	b := inst("r", Tuple{Int(1), Null("b:9")}, "r", Tuple{Int(2), Null("b:9")}, "r", Tuple{Int(3), Null("b:7")})
	if !EqualUpToNulls(a, b) {
		t.Error("instances equal up to null renaming rejected")
	}
}

func TestEqualUpToNullsSharingStructure(t *testing.T) {
	// a uses the same null twice; b uses two distinct nulls: NOT isomorphic.
	a := inst("r", Tuple{Int(1), Null("x")}, "s", Tuple{Null("x")})
	b := inst("r", Tuple{Int(1), Null("y")}, "s", Tuple{Null("z")})
	if EqualUpToNulls(a, b) {
		t.Error("different null-sharing structure must not be equal")
	}
}

func TestEqualUpToNullsDifferentConstants(t *testing.T) {
	a := inst("r", Tuple{Int(1)})
	b := inst("r", Tuple{Int(2)})
	if EqualUpToNulls(a, b) {
		t.Error("different constants must not be equal")
	}
}

func TestEqualUpToNullsDifferentCardinality(t *testing.T) {
	a := inst("r", Tuple{Int(1)}, "r", Tuple{Int(2)})
	b := inst("r", Tuple{Int(1)})
	if EqualUpToNulls(a, b) || EqualUpToNulls(b, a) {
		t.Error("different cardinalities must not be equal")
	}
}

func TestEqualUpToNullsNullVsConstant(t *testing.T) {
	a := inst("r", Tuple{Null("u")})
	b := inst("r", Tuple{Int(1)})
	if EqualUpToNulls(a, b) || EqualUpToNulls(b, a) {
		t.Error("null is not interchangeable with a constant")
	}
}

func TestEqualUpToNullsCrossRelationPermutation(t *testing.T) {
	// Nulls interleaved across relations with swapped labels.
	a := inst(
		"r", Tuple{Null("p:1"), Null("p:2")},
		"s", Tuple{Null("p:2"), Int(7)},
	)
	b := inst(
		"r", Tuple{Null("q:9"), Null("q:3")},
		"s", Tuple{Null("q:3"), Int(7)},
	)
	if !EqualUpToNulls(a, b) {
		t.Error("permuted labels with same structure must be equal")
	}
}

func TestEqualUpToNullsEmptyRelations(t *testing.T) {
	a := NewInstance()
	a["r"] = map[string]Tuple{} // empty relation present
	b := NewInstance()
	if !EqualUpToNulls(a, b) {
		t.Error("empty relations should be ignored")
	}
}
