package relation

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEqualUpToNullsRenamingInvariance: renaming the null labels of an
// instance with any injective map yields an equal-up-to-nulls instance.
func TestEqualUpToNullsRenamingInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		orig := NewInstance()
		labels := []string{"a", "b", "c", "d"}
		for i, n := 0, rnd.Intn(10)+1; i < n; i++ {
			tup := Tuple{}
			for j := 0; j < rnd.Intn(3)+1; j++ {
				if rnd.Intn(2) == 0 {
					tup = append(tup, Int(rnd.Intn(4)))
				} else {
					tup = append(tup, Null(labels[rnd.Intn(len(labels))]))
				}
			}
			orig.Insert(fmt.Sprintf("r%d", len(tup)), tup)
		}
		// Injective renaming: permute + prefix.
		perm := rnd.Perm(len(labels))
		rename := make(map[string]string, len(labels))
		for i, l := range labels {
			rename[l] = "x" + labels[perm[i]]
		}
		renamed := NewInstance()
		for rel, m := range orig {
			for _, tup := range m {
				nt := make(Tuple, len(tup))
				for i, v := range tup {
					if v.Kind == KindNull {
						nt[i] = Null(rename[v.Str])
					} else {
						nt[i] = v
					}
				}
				renamed.Insert(rel, nt)
			}
		}
		return EqualUpToNulls(orig, renamed) && EqualUpToNulls(renamed, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEqualUpToNullsDetectsMergedNulls: a non-injective renaming (merging
// two distinct nulls used in the same relation) must be detected when it
// changes the instance's structure.
func TestEqualUpToNullsDetectsMergedNulls(t *testing.T) {
	a := NewInstance()
	a.Insert("r", Tuple{Null("x"), Null("y")})
	b := NewInstance()
	b.Insert("r", Tuple{Null("z"), Null("z")})
	if EqualUpToNulls(a, b) || EqualUpToNulls(b, a) {
		t.Error("merged nulls treated as equal")
	}
}

func BenchmarkEncodeTuple(b *testing.B) {
	t := Tuple{Int(12345), Str("hello world"), Float(3.14), Bool(true), Null("d1~abcdef")}
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = EncodeTuple(buf[:0], t)
	}
}

func BenchmarkDecodeTuple(b *testing.B) {
	t := Tuple{Int(12345), Str("hello world"), Float(3.14), Bool(true), Null("d1~abcdef")}
	enc := EncodeTuple(nil, t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTuple(enc, len(t)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTupleKey(b *testing.B) {
	t := Tuple{Int(1), Str("abcdefgh"), Int(999)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = t.Key()
	}
}
