package relation

import (
	"bytes"
	"testing"
)

// FuzzTupleCodec fuzzes the order-preserving tuple codec and the compact
// gob codec built on it (the bulk of coDB's inter-peer traffic and every
// index key). Properties:
//
//   - any byte string either fails to decode or decodes to a tuple whose
//     re-encoding reproduces the input exactly (the encoding is canonical:
//     decode ∘ encode = id on the image of encode, and nothing outside the
//     image decodes);
//   - for two decodable inputs, bytewise order of the encodings equals
//     Tuple.Compare of the decoded tuples (the order-preservation contract
//     the B+tree and the sent caches rely on);
//   - decoding never panics, whatever the input.
func FuzzTupleCodec(f *testing.F) {
	seedTuples := []Tuple{
		{},
		{Int(0)},
		{Int(-1), Int(1)},
		{Int(1<<62 + 12345)},
		{Str(""), Str("hello")},
		{Str("esc\x00aped"), Str("\x00\x01\xff")},
		{Bool(true), Bool(false)},
		{Float(0), Float(-0.0), Float(1e300)},
		{Float(1e+06)},
		{Null("p:1"), Null("")},
		{Int(42), Str("mixed"), Float(2.5), Bool(true), Null("u7")},
	}
	for _, t := range seedTuples {
		f.Add(EncodeTuple(nil, t), EncodeTuple(nil, t))
	}
	f.Add([]byte{}, []byte{0xFF})
	f.Add([]byte{byte(KindInt)}, []byte{byte(KindString), 'x'})
	f.Add([]byte{byte(KindString), 0x00}, []byte{byte(KindNull), 0x00, 0x02})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		ta, okA := decodeCanonical(t, a)
		tb, okB := decodeCanonical(t, b)
		if !okA || !okB {
			return
		}
		// Order preservation: bytes.Compare on encodings == Tuple.Compare.
		// (Only for NaN-free tuples: NaN breaks Compare's trichotomy, but
		// the Value constructors never produce NaN — it can only enter
		// through crafted bytes.)
		if hasNaN(ta) || hasNaN(tb) {
			return
		}
		byteOrder := sign(bytes.Compare(a, b))
		tupleOrder := sign(ta.Compare(tb))
		if byteOrder != tupleOrder {
			t.Fatalf("order broken: bytes.Compare=%d, Tuple.Compare=%d for %v vs %v", byteOrder, tupleOrder, ta, tb)
		}
	})
}

// decodeCanonical decodes one input through the gob codec and, on success,
// asserts the canonical round-trip: re-encoding must reproduce the input,
// and DecodeTuple at the decoded arity must agree.
func decodeCanonical(t *testing.T, b []byte) (Tuple, bool) {
	t.Helper()
	var tp Tuple
	if err := tp.GobDecode(b); err != nil {
		return nil, false
	}
	re, err := tp.GobEncode()
	if err != nil {
		t.Fatalf("re-encode of decoded tuple failed: %v", err)
	}
	if !bytes.Equal(re, b) {
		t.Fatalf("decode/encode not canonical: %x -> %v -> %x", b, tp, re)
	}
	fixed, err := DecodeTuple(b, len(tp))
	if err != nil {
		t.Fatalf("DecodeTuple rejected what GobDecode accepted: %v", err)
	}
	if !fixed.Equal(tp) && !hasNaN(tp) {
		t.Fatalf("DecodeTuple = %v, GobDecode = %v", fixed, tp)
	}
	if n := tp.EncodedLen(); n != len(b) {
		t.Fatalf("EncodedLen = %d, encoding is %d bytes", n, len(b))
	}
	return tp, true
}

func hasNaN(t Tuple) bool {
	for _, v := range t {
		if v.Kind == KindFloat && v.Float != v.Float {
			return true
		}
	}
	return false
}
