package relation

import (
	"fmt"
	"sync/atomic"
)

// NullMinter mints fresh marked nulls. Labels embed the owning node's name,
// so nulls minted by different peers never collide; the counter makes nulls
// minted by one peer distinct. Minting is safe for concurrent use.
type NullMinter struct {
	node string
	ctr  atomic.Uint64
}

// NewNullMinter returns a minter whose nulls are labelled "<node>:<n>".
func NewNullMinter(node string) *NullMinter {
	return &NullMinter{node: node}
}

// Fresh mints a marked null never returned before by this minter.
func (m *NullMinter) Fresh() Value {
	n := m.ctr.Add(1)
	return Null(fmt.Sprintf("%s:%d", m.node, n))
}

// Minted reports how many nulls have been minted so far.
func (m *NullMinter) Minted() uint64 { return m.ctr.Load() }
