// Package relation defines the relational data model shared by every layer
// of coDB: typed values (including the marked nulls produced by existential
// variables in coordination rules), tuples, relation schemas, and an
// order-preserving binary codec used for index keys and duplicate detection.
package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime kinds a Value can take.
type Kind uint8

const (
	// KindNull is a marked (labelled) null, minted for existential
	// variables during rule application. Two nulls are equal iff their
	// labels are equal.
	KindNull Kind = iota
	// KindBool is a boolean.
	KindBool
	// KindInt is a signed 64-bit integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a UTF-8 string.
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single attribute value. The zero Value is the anonymous marked
// null (label ""); named nulls carry their label in Str. Value is a
// comparable struct (no slices), so it can be used directly as a map key.
type Value struct {
	Kind  Kind
	Int   int64   // valid when Kind==KindInt
	Float float64 // valid when Kind==KindFloat
	Str   string  // valid when Kind==KindString; null label when Kind==KindNull
	Bool  bool    // valid when Kind==KindBool
}

// Int64 returns an integer value.
func Int64(v int64) Value { return Value{Kind: KindInt, Int: v} }

// Int returns an integer value from a machine int.
func Int(v int) Value { return Value{Kind: KindInt, Int: int64(v)} }

// Float returns a float value.
func Float(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// String_ returns a string value. (Named with a trailing underscore because
// String is the canonical fmt.Stringer method name.)
func String_(v string) Value { return Value{Kind: KindString, Str: v} }

// Str returns a string value.
func Str(v string) Value { return Value{Kind: KindString, Str: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{Kind: KindBool, Bool: v} }

// Null returns a marked null with the given label. Labels are globally
// unique when produced by a NullMinter.
func Null(label string) Value { return Value{Kind: KindNull, Str: label} }

// IsNull reports whether v is a (marked) null.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// NullLabel returns the label of a marked null ("" for non-nulls).
func (v Value) NullLabel() string {
	if v.Kind != KindNull {
		return ""
	}
	return v.Str
}

// String renders the value for display and for the shell/report output.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		if v.Str == "" {
			return "⊥"
		}
		return "⊥" + v.Str
	case KindBool:
		return strconv.FormatBool(v.Bool)
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.Str)
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.Kind))
	}
}

// Equal reports value equality. Marked nulls are equal iff their labels are
// equal; values of different kinds are never equal (no numeric coercion:
// schemas are typed, so kinds always line up for well-typed data).
func (v Value) Equal(w Value) bool { return v == w }

// Compare orders values: null < bool < int < float < string across kinds
// (kind order is only used for heterogeneous data, e.g. index keys over
// mixed columns); within a kind, the natural order applies. Nulls order by
// label. Returns -1, 0, or +1.
func (v Value) Compare(w Value) int {
	if v.Kind != w.Kind {
		if v.Kind < w.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case KindNull:
		return strings.Compare(v.Str, w.Str)
	case KindBool:
		switch {
		case v.Bool == w.Bool:
			return 0
		case !v.Bool:
			return -1
		default:
			return 1
		}
	case KindInt:
		switch {
		case v.Int < w.Int:
			return -1
		case v.Int > w.Int:
			return 1
		default:
			return 0
		}
	case KindFloat:
		switch {
		case v.Float < w.Float:
			return -1
		case v.Float > w.Float:
			return 1
		default:
			return 0
		}
	case KindString:
		return strings.Compare(v.Str, w.Str)
	default:
		return 0
	}
}

// Type is the declared type of a schema attribute.
type Type uint8

const (
	// TInt is the 64-bit integer attribute type.
	TInt Type = iota + 1
	// TFloat is the 64-bit float attribute type.
	TFloat
	// TString is the string attribute type.
	TString
	// TBool is the boolean attribute type.
	TBool
)

// String returns the type name used in schema files.
func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TBool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ParseType parses a type name as written in schema files.
func ParseType(s string) (Type, error) {
	switch s {
	case "int":
		return TInt, nil
	case "float":
		return TFloat, nil
	case "string", "str", "text":
		return TString, nil
	case "bool":
		return TBool, nil
	default:
		return 0, fmt.Errorf("unknown attribute type %q", s)
	}
}

// Admits reports whether a value is acceptable for an attribute of this
// type. Marked nulls are admitted by every type (they stand for an unknown
// value of that type).
func (t Type) Admits(v Value) bool {
	if v.Kind == KindNull {
		return true
	}
	switch t {
	case TInt:
		return v.Kind == KindInt
	case TFloat:
		return v.Kind == KindFloat
	case TString:
		return v.Kind == KindString
	case TBool:
		return v.Kind == KindBool
	default:
		return false
	}
}
