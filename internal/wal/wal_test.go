package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func tempLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func TestCreateAppendReplay(t *testing.T) {
	path := tempLog(t)
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"one", "two", "three"}
	for _, s := range want {
		if err := l.Append([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []string
	l2, err := Open(path, func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestOpenMissingCreates(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Size() != headerSize {
		t.Errorf("fresh log size = %d", l.Size())
	}
}

func TestAppendAfterReopen(t *testing.T) {
	path := tempLog(t)
	l, _ := Create(path)
	l.Append([]byte("a"))
	l.Close()

	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("b"))
	l.Close()

	var got []string
	l, err = Open(path, func(p []byte) error { got = append(got, string(p)); return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("replay = %v", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := tempLog(t)
	l, _ := Create(path)
	l.Append([]byte("intact"))
	l.Append([]byte("will-be-torn"))
	l.Close()

	// Chop bytes off the end, simulating a crash mid-write.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	var got []string
	l, err = Open(path, func(p []byte) error { got = append(got, string(p)); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "intact" {
		t.Fatalf("replay after torn tail = %v", got)
	}
	// The torn record must be gone: append and re-read.
	l.Append([]byte("new"))
	l.Close()
	got = nil
	l, err = Open(path, func(p []byte) error { got = append(got, string(p)); return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(got) != 2 || got[1] != "new" {
		t.Fatalf("replay after re-append = %v", got)
	}
}

func TestMidFileCorruptionDetected(t *testing.T) {
	path := tempLog(t)
	l, _ := Create(path)
	l.Append([]byte("aaaa"))
	l.Append([]byte("bbbb"))
	l.Close()

	// Flip a payload byte of the FIRST record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+8] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(path, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := tempLog(t)
	if err := os.WriteFile(path, []byte("XXXXYYYYZZZZ"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, nil); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedHeaderRecreated(t *testing.T) {
	path := tempLog(t)
	if err := os.WriteFile(path, []byte("cd"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Size() != headerSize {
		t.Errorf("size = %d", l.Size())
	}
}

func TestApplyErrorPropagates(t *testing.T) {
	path := tempLog(t)
	l, _ := Create(path)
	l.Append([]byte("x"))
	l.Close()
	boom := errors.New("boom")
	if _, err := Open(path, func([]byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Open = %v, want wrapped boom", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	path := tempLog(t)
	l, _ := Create(path)
	l.Append(nil)
	l.Append([]byte("after-empty"))
	l.Close()
	var got []string
	l, err := Open(path, func(p []byte) error { got = append(got, string(p)); return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(got) != 2 || got[0] != "" || got[1] != "after-empty" {
		t.Errorf("replay = %q", got)
	}
}

func TestManyRecords(t *testing.T) {
	path := tempLog(t)
	l, _ := Create(path)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	count := 0
	l, err := Open(path, func(p []byte) error {
		if string(p) != fmt.Sprintf("record-%d", count) {
			return fmt.Errorf("record %d = %q", count, p)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if count != n {
		t.Errorf("replayed %d of %d", count, n)
	}
}
