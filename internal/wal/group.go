package wal

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// GroupCommitter turns per-commit log writes into a group-commit pipeline:
// a single writer goroutine drains concurrently enqueued commit records,
// appends the whole batch with one write call, and issues one fsync per
// batch instead of one per commit. Under W concurrent committers with
// sync-on-commit enabled this divides the fsync count by up to W — the
// classic group-commit design — while preserving exactly the record order
// in which Commit was called.
//
// Enqueue order is the caller's responsibility: the storage engine calls
// Commit under its commit-ordering mutex, so WAL order always equals LSN
// order.
type GroupCommitter struct {
	mu     sync.Mutex
	cond   *sync.Cond
	log    Sink
	queue  []groupReq
	closed bool
	err    error // sticky writer-side failure, reported to later commits
	stats  GroupStats

	// fsyncEWMA tracks observed fsync latency (exponentially weighted,
	// 1/8 gain), the input of the adaptive batch-formation window.
	fsyncEWMA time.Duration

	done chan struct{} // writer goroutine exited
}

// Sink is the log the group committer writes through. Both the legacy Log
// and the Segmented WAL implement it; with Segmented, rotation happens
// inside AppendBatch, so the committer needs no retargeting when the
// active segment changes.
type Sink interface {
	AppendBatch(payloads [][]byte) error
	Sync() error
}

// groupReq is one enqueued commit record. done is buffered so the writer
// never blocks delivering results.
type groupReq struct {
	payload []byte
	sync    bool
	done    chan error
}

// GroupStats counts the pipeline's batching behaviour.
type GroupStats struct {
	// Commits is the number of records committed through the pipeline.
	Commits uint64
	// Batches is the number of writer wake-ups that wrote at least one
	// record; Commits/Batches is the mean group size.
	Batches uint64
	// Syncs is the number of fsyncs issued (at most one per batch).
	Syncs uint64
	// MaxBatch is the largest group committed at once.
	MaxBatch int
	// Window is the batch-formation wait currently chosen by the adaptive
	// policy — min(1ms, observed fsync latency / 4) — applied before
	// draining a queue that contains at least one sync-requesting commit.
	// Zero until the first fsync has been observed.
	Window time.Duration
}

// maxBatchWindow bounds the adaptive batch-formation wait: even on storage
// with multi-millisecond fsyncs the pipeline never adds more than 1ms of
// commit latency to form a batch.
const maxBatchWindow = time.Millisecond

// NewGroupCommitter starts the pipeline over an open log.
func NewGroupCommitter(l Sink) *GroupCommitter {
	g := &GroupCommitter{log: l, done: make(chan struct{})}
	g.cond = sync.NewCond(&g.mu)
	go g.run()
	return g
}

// Commit enqueues one record and returns a channel that delivers the
// append (and, when sync is true, fsync) outcome once the writer has
// processed the batch containing it. The caller may release its locks
// before receiving; order is fixed at enqueue time.
func (g *GroupCommitter) Commit(payload []byte, sync bool) <-chan error {
	done := make(chan error, 1)
	g.mu.Lock()
	if g.closed {
		err := g.err
		g.mu.Unlock()
		if err == nil {
			err = errGroupClosed
		}
		done <- err
		return done
	}
	if g.err != nil {
		// A batch write already failed: the log may end in a torn record,
		// so appending more records would place acked data after bytes
		// that stop recovery replay. The pipeline stays poisoned.
		err := g.err
		g.mu.Unlock()
		done <- err
		return done
	}
	g.queue = append(g.queue, groupReq{payload: payload, sync: sync, done: done})
	g.cond.Signal()
	g.mu.Unlock()
	return done
}

var errGroupClosed = fmt.Errorf("wal: group committer closed")

// Flush blocks until every record enqueued before the call is appended
// (and synced, where requested). Used as a barrier before checkpoints.
// After Close the queue is empty by construction, so Flush reports the
// pipeline's sticky error (nil when every batch succeeded).
func (g *GroupCommitter) Flush() error {
	g.mu.Lock()
	if g.closed {
		err := g.err
		g.mu.Unlock()
		return err
	}
	done := make(chan error, 1)
	g.queue = append(g.queue, groupReq{done: done})
	g.cond.Signal()
	g.mu.Unlock()
	return <-done
}

// run is the writer goroutine: drain the queue, one write, one fsync.
func (g *GroupCommitter) run() {
	defer close(g.done)
	for {
		g.mu.Lock()
		for len(g.queue) == 0 && !g.closed {
			g.cond.Wait()
		}
		if len(g.queue) == 0 && g.closed {
			g.mu.Unlock()
			return
		}
		g.mu.Unlock()
		// Batch-formation window: the signalling committer wakes this
		// goroutine with scheduler priority, so draining immediately would
		// commit groups of one. One yield lets every runnable committer
		// enqueue first — microseconds of added latency against an fsync
		// saved per joiner — which is what makes sync-on-commit batches
		// form even on a single CPU.
		runtime.Gosched()
		// Adaptive extension: when the queue already holds a
		// sync-requesting commit, the batch is about to pay a full fsync —
		// so waiting a bounded fraction of one (min(1ms, observed fsync
		// latency / 4)) to let more committers join is nearly free and
		// divides the fsync count. Non-sync batches (async commits, Flush
		// barriers) never wait: they have no fsync to amortise. A timer
		// sleep is only trusted at the 1ms cap (sub-millisecond sleeps
		// overshoot by the timer granularity, which would dwarf a fast
		// fsync); below it the wait is a yield loop that stops as soon as
		// a yield attracts no new committer.
		g.mu.Lock()
		window := g.stats.Window
		wantSync := false
		for _, r := range g.queue {
			if r.sync {
				wantSync = true
				break
			}
		}
		g.mu.Unlock()
		if wantSync && window > 0 {
			if window >= maxBatchWindow {
				time.Sleep(window)
			} else {
				deadline := time.Now().Add(window)
				for {
					g.mu.Lock()
					before := len(g.queue)
					g.mu.Unlock()
					runtime.Gosched()
					g.mu.Lock()
					grew := len(g.queue) > before
					g.mu.Unlock()
					if !grew || !time.Now().Before(deadline) {
						break
					}
				}
			}
		}
		g.mu.Lock()
		batch := g.queue
		g.queue = nil
		g.mu.Unlock()

		payloads := make([][]byte, 0, len(batch))
		records := 0
		needSync := false
		for _, r := range batch {
			if r.payload != nil {
				payloads = append(payloads, r.payload)
				records++
			}
			needSync = needSync || r.sync
		}
		g.mu.Lock()
		err := g.err
		g.mu.Unlock()
		var fsyncTook time.Duration
		if err == nil {
			// Never write past a failed batch: a partial append leaves a
			// torn record, and anything appended after it is unreachable
			// to recovery (replay stops at the first bad CRC).
			err = g.log.AppendBatch(payloads)
			if err == nil && needSync {
				t0 := time.Now()
				err = g.log.Sync()
				fsyncTook = time.Since(t0)
			}
		}
		g.mu.Lock()
		if records > 0 && err == nil {
			g.stats.Commits += uint64(records)
			g.stats.Batches++
			if records > g.stats.MaxBatch {
				g.stats.MaxBatch = records
			}
		}
		if needSync && err == nil {
			g.stats.Syncs++
			if g.fsyncEWMA == 0 {
				g.fsyncEWMA = fsyncTook
			} else {
				g.fsyncEWMA = (g.fsyncEWMA*7 + fsyncTook) / 8
			}
			if w := g.fsyncEWMA / 4; w < maxBatchWindow {
				g.stats.Window = w
			} else {
				g.stats.Window = maxBatchWindow
			}
		}
		if err != nil && g.err == nil {
			g.err = err
		}
		g.mu.Unlock()
		for _, r := range batch {
			r.done <- err
		}
	}
}

// Stats returns the pipeline counters.
func (g *GroupCommitter) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Close flushes pending records and stops the writer goroutine. Commit
// calls after Close fail immediately.
func (g *GroupCommitter) Close() error {
	err := g.Flush()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		<-g.done
		return err
	}
	g.closed = true
	g.cond.Signal()
	g.mu.Unlock()
	<-g.done
	return err
}
