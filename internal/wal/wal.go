// Package wal implements the write-ahead logs used by the storage engine
// for durability.
//
// The current log format is the segmented WAL (see segment.go): a directory
// of numbered append-only segment files whose headers carry the LSN of
// their first record, rotated at a size threshold and truncated by
// checkpoints. The single-file Log in this file is the legacy (pre-segment)
// format; it is retained so old "log.wal" files can be replayed once and
// migrated, and as the simplest harness for the shared record framing.
//
// Record layout (shared by both formats):
//
//	--- file header (format-specific, see headerSize/segHeaderSize) ---
//	--- per record ---
//	length  uint32   payload length
//	crc     uint32   IEEE CRC-32 of payload
//	payload [length]byte
//
// A torn tail (partial final record, e.g. after a crash) is detected by the
// length/CRC and truncated on recovery; a bad record followed by more data
// is corruption and refuses to open.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

var magic = [4]byte{'c', 'd', 'b', 'W'}

const legacyVersion = 1

// headerSize is the legacy file header length in bytes.
const headerSize = 8

// recPrefix is the per-record framing length (u32 length + u32 CRC).
const recPrefix = 8

// ErrCorrupt is returned (wrapped) when a log contains a record whose CRC
// does not match in a position other than the tail.
var ErrCorrupt = errors.New("wal: corrupt record")

// frameRecord appends one record's framing and payload to dst.
func frameRecord(dst, payload []byte) []byte {
	var rec [recPrefix]byte
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, rec[:]...)
	return append(dst, payload...)
}

// frameBatch serialises the framing of every payload into one buffer, so a
// group commit of n records costs one write syscall instead of 2n.
func frameBatch(payloads [][]byte) []byte {
	total := 0
	for _, p := range payloads {
		total += recPrefix + len(p)
	}
	buf := make([]byte, 0, total)
	for _, p := range payloads {
		buf = frameRecord(buf, p)
	}
	return buf
}

// scanRecords walks the length-prefixed records in buf, calling fn for each
// intact record. It returns the offset just past the last intact record.
// torn reports whether leftover bytes follow that offset: an incomplete
// length prefix, a short payload, or a CRC-mismatched record that is the
// very last thing in the buffer — the signature of a crash mid-append. A
// CRC mismatch with more data after it is not a torn tail but corruption,
// reported via err (fn errors are also returned through err, with end at
// the offending record). The payload passed to fn aliases buf.
func scanRecords(buf []byte, fn func(payload []byte) error) (end int, torn bool, err error) {
	off := 0
	for {
		if off+recPrefix > len(buf) {
			return off, off != len(buf), nil
		}
		rawLen := binary.LittleEndian.Uint32(buf[off : off+4])
		crc := binary.LittleEndian.Uint32(buf[off+4 : off+recPrefix])
		// The length is garbage-controlled on recovery: bound it by the
		// bytes actually present before converting or slicing (the uint64
		// comparison also keeps a >=2^31 length from going negative on
		// 32-bit builds).
		if uint64(rawLen) > uint64(len(buf)-off-recPrefix) {
			return off, true, nil
		}
		length := int(rawLen)
		payload := buf[off+recPrefix : off+recPrefix+length]
		if crc32.ChecksumIEEE(payload) != crc {
			if off+recPrefix+length == len(buf) {
				return off, true, nil // torn tail: claimed extent ends the buffer
			}
			return off, false, fmt.Errorf("%w at offset %d", ErrCorrupt, off)
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, false, err
			}
		}
		off += recPrefix + length
	}
}

// Log is the legacy single-file append-only write-ahead log. Append and
// Sync may be called from one goroutine at a time; the storage engine
// serialises them. New databases use Segmented instead; Log remains for
// migrating old "log.wal" files and for tests of the shared framing.
type Log struct {
	f    *os.File
	path string
	size int64
}

// Create creates (or truncates) a legacy log file at path and writes the
// header.
func Create(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:], legacyVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write header: %w", err)
	}
	return &Log{f: f, path: path, size: headerSize}, nil
}

// Open opens an existing legacy log for appending. It validates the header,
// replays every intact record through apply, truncates a torn tail if
// present, and positions the log for appending. A missing file is created
// fresh.
func Open(path string, apply func(payload []byte) error) (*Log, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return Create(path)
	}
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if len(data) < headerSize {
		// Empty or truncated header: re-create.
		return Create(path)
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("wal: %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != legacyVersion {
		return nil, fmt.Errorf("wal: %s: unsupported version %d", path, v)
	}
	n, _, err := scanRecords(data[headerSize:], apply)
	if err != nil {
		return nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	offset := int64(headerSize + n)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{f: f, path: path, size: offset}, nil
}

// Append writes one record. The payload is copied into the OS buffer before
// Append returns; call Sync for durability.
func (l *Log) Append(payload []byte) error {
	if _, err := l.f.Write(frameRecord(nil, payload)); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += recPrefix + int64(len(payload))
	return nil
}

// AppendBatch writes several records with a single underlying write call.
// Equivalent to calling Append for each payload in order.
func (l *Log) AppendBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	buf := frameBatch(payloads)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append batch: %w", err)
	}
	l.size += int64(len(buf))
	return nil
}

// Sync flushes the log to stable storage.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Size returns the current log size in bytes (header included).
func (l *Log) Size() int64 { return l.size }

// Close closes the underlying file without syncing.
func (l *Log) Close() error { return l.f.Close() }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// syncDir fsyncs a directory so entry creation/removal inside it is
// durable (best effort on filesystems without directory sync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
