// Package wal implements the write-ahead log used by the storage engine for
// durability. A log is a single append-only file of length-prefixed,
// CRC-protected records. On recovery the log is replayed after the last
// snapshot; a torn tail (partial final record, e.g. after a crash) is
// detected by the CRC and truncated.
//
// Record layout:
//
//	magic   [4]byte  "cdbW" (file header only)
//	version uint32   (file header only)
//	--- per record ---
//	length  uint32   payload length
//	crc     uint32   IEEE CRC-32 of payload
//	payload [length]byte
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

var magic = [4]byte{'c', 'd', 'b', 'W'}

const version = 1

// headerSize is the file header length in bytes.
const headerSize = 8

// ErrCorrupt is returned (wrapped) when the log contains a record whose CRC
// does not match in a position other than the tail.
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an append-only write-ahead log. Append and Sync may be called from
// one goroutine at a time; the storage engine serialises them.
type Log struct {
	f    *os.File
	path string
	size int64
}

// Create creates (or truncates) a log file at path and writes the header.
func Create(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:], version)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write header: %w", err)
	}
	return &Log{f: f, path: path, size: headerSize}, nil
}

// Open opens an existing log for appending. It validates the header, replays
// every intact record through apply, truncates a torn tail if present, and
// positions the log for appending. A missing file is created fresh.
func Open(path string, apply func(payload []byte) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		return Create(path)
	}
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		// Empty or truncated header: re-create.
		f.Close()
		return Create(path)
	}
	if [4]byte(hdr[:4]) != magic {
		f.Close()
		return nil, fmt.Errorf("wal: %s: bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		f.Close()
		return nil, fmt.Errorf("wal: %s: unsupported version %d", path, v)
	}

	offset := int64(headerSize)
	var rec [8]byte
	for {
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			break // clean end (or torn length/CRC prefix: truncate below)
		}
		length := binary.LittleEndian.Uint32(rec[:4])
		crc := binary.LittleEndian.Uint32(rec[4:])
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload: truncate
		}
		if crc32.ChecksumIEEE(payload) != crc {
			// Distinguish a torn tail from mid-file corruption: if
			// anything follows this record, the file is corrupt.
			if trailing, terr := hasTrailingData(f); terr == nil && trailing {
				f.Close()
				return nil, fmt.Errorf("%w at offset %d in %s", ErrCorrupt, offset, path)
			}
			break
		}
		if apply != nil {
			if err := apply(payload); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: apply record at offset %d: %w", offset, err)
			}
		}
		offset += 8 + int64(length)
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{f: f, path: path, size: offset}, nil
}

func hasTrailingData(f *os.File) (bool, error) {
	var one [1]byte
	_, err := f.Read(one[:])
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Append writes one record. The payload is copied into the OS buffer before
// Append returns; call Sync for durability.
func (l *Log) Append(payload []byte) error {
	var rec [8]byte
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(rec[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: append payload: %w", err)
	}
	l.size += 8 + int64(len(payload))
	return nil
}

// AppendBatch writes several records with a single underlying write call:
// the framing of every payload is serialised into one buffer first, so a
// group commit of n records costs one syscall instead of 2n. Equivalent to
// calling Append for each payload in order.
func (l *Log) AppendBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	total := 0
	for _, p := range payloads {
		total += 8 + len(p)
	}
	buf := make([]byte, 0, total)
	for _, p := range payloads {
		var rec [8]byte
		binary.LittleEndian.PutUint32(rec[:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(p))
		buf = append(buf, rec[:]...)
		buf = append(buf, p...)
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append batch: %w", err)
	}
	l.size += int64(total)
	return nil
}

// Sync flushes the log to stable storage.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Size returns the current log size in bytes (header included).
func (l *Log) Size() int64 { return l.size }

// Reset truncates the log to empty (header only); used after a checkpoint
// has made the logged state durable elsewhere.
func (l *Log) Reset() error {
	if err := l.f.Truncate(headerSize); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(headerSize, io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset seek: %w", err)
	}
	l.size = headerSize
	return l.Sync()
}

// Close closes the underlying file without syncing.
func (l *Log) Close() error { return l.f.Close() }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }
