package wal

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func TestGroupCommitOrderAndReplay(t *testing.T) {
	path := tempLog(t)
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(l)
	const n = 200
	waits := make([]<-chan error, n)
	for i := 0; i < n; i++ {
		waits[i] = g.Commit([]byte(fmt.Sprintf("rec-%d", i)), i%3 == 0)
	}
	for i, w := range waits {
		if err := <-w; err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Replay order must equal enqueue order.
	i := 0
	l2, err := Open(path, func(p []byte) error {
		if string(p) != fmt.Sprintf("rec-%d", i) {
			return fmt.Errorf("record %d = %q", i, p)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if i != n {
		t.Fatalf("replayed %d of %d", i, n)
	}
}

func TestGroupCommitBatchesConcurrentCommitters(t *testing.T) {
	l, err := Create(tempLog(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := NewGroupCommitter(l)
	const writers, per = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := <-g.Commit([]byte(fmt.Sprintf("w%d-%d", w, i)), true); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := g.Stats()
	if st.Commits != writers*per {
		t.Fatalf("Commits = %d, want %d", st.Commits, writers*per)
	}
	// The point of the pipeline: concurrent sync commits share fsyncs.
	if st.Syncs >= st.Commits {
		t.Fatalf("no batching: %d fsyncs for %d commits", st.Syncs, st.Commits)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("MaxBatch = %d, want >= 2", st.MaxBatch)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitFlushBarrier(t *testing.T) {
	l, err := Create(tempLog(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := NewGroupCommitter(l)
	w := g.Commit([]byte("payload"), false)
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	// The record enqueued before Flush must be appended already.
	select {
	case err := <-w:
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatal("Flush returned before the earlier record was committed")
	}
	if l.Size() <= headerSize {
		t.Fatal("record not in the log after Flush")
	}
	g.Close()
}

func TestGroupCommitAfterCloseFails(t *testing.T) {
	l, err := Create(tempLog(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := NewGroupCommitter(l)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-g.Commit([]byte("late"), false); err == nil {
		t.Fatal("commit after close succeeded")
	}
	// Double close is safe.
	if err := g.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestGroupCommitPoisonsAfterWriteFailure forces a batch write failure
// (closed file) and checks that no later commit is ever acked: appending
// past a possibly-torn record would strand acknowledged data behind a CRC
// break that stops recovery replay.
func TestGroupCommitPoisonsAfterWriteFailure(t *testing.T) {
	l, err := Create(tempLog(t))
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitter(l)
	l.Close() // every subsequent write fails
	if err := <-g.Commit([]byte("doomed"), true); err == nil {
		t.Fatal("commit to a closed log succeeded")
	}
	if err := <-g.Commit([]byte("after-failure"), true); err == nil {
		t.Fatal("commit acked after a failed batch (would strand data past a torn record)")
	}
	if err := g.Flush(); err == nil {
		t.Fatal("flush reported success on a poisoned pipeline")
	}
	if st := g.Stats(); st.Commits != 0 {
		t.Fatalf("failed batches counted as committed: %+v", st)
	}
	g.Close()
}

func TestAppendBatchEquivalentToAppends(t *testing.T) {
	pa, pb := tempLog(t), filepath.Join(t.TempDir(), "b.wal")
	la, _ := Create(pa)
	lb, _ := Create(pb)
	payloads := [][]byte{[]byte("one"), nil, []byte("three"), make([]byte, 1000)}
	for _, p := range payloads {
		if err := la.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := lb.AppendBatch(payloads); err != nil {
		t.Fatal(err)
	}
	if la.Size() != lb.Size() {
		t.Fatalf("sizes diverge: %d vs %d", la.Size(), lb.Size())
	}
	la.Close()
	lb.Close()
	var ra, rb []string
	if _, err := Open(pa, func(p []byte) error { ra = append(ra, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(pb, func(p []byte) error { rb = append(rb, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(payloads) || len(rb) != len(payloads) {
		t.Fatalf("replay counts: %d vs %d, want %d", len(ra), len(rb), len(payloads))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d diverges", i)
		}
	}
}

// TestGroupCommitAdaptiveWindowStat checks that synced batches feed the
// fsync-latency estimate and surface the chosen batch-formation window in
// the stats, bounded by the 1ms cap, while unsynced pipelines never choose
// a window (nothing to amortise).
func TestGroupCommitAdaptiveWindowStat(t *testing.T) {
	l, err := Create(tempLog(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := NewGroupCommitter(l)
	for i := 0; i < 8; i++ {
		if err := <-g.Commit([]byte(fmt.Sprintf("rec-%d", i)), true); err != nil {
			t.Fatal(err)
		}
	}
	st := g.Stats()
	if st.Window <= 0 {
		t.Fatalf("no adaptive window chosen after %d synced batches", st.Syncs)
	}
	if st.Window > maxBatchWindow {
		t.Fatalf("window %v exceeds the %v cap", st.Window, maxBatchWindow)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Create(tempLog(t))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	g2 := NewGroupCommitter(l2)
	for i := 0; i < 8; i++ {
		if err := <-g2.Commit([]byte("async"), false); err != nil {
			t.Fatal(err)
		}
	}
	if st := g2.Stats(); st.Window != 0 {
		t.Fatalf("async-only pipeline chose a window of %v", st.Window)
	}
	if err := g2.Close(); err != nil {
		t.Fatal(err)
	}
}
