package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Segmented is the segmented write-ahead log: an ordered set of numbered
// append-only segment files ("wal.000017"-style names) in one directory.
// Appends go to the active (highest-numbered) segment and rotate to a fresh
// one once it reaches Options.SegmentBytes. Each segment's header carries
// the LSN of its first record, so recovery needs no manifest: segments are
// discovered by name, ordered by index, and every record's LSN is the
// header LSN plus its position — the storage engine appends exactly one
// record per commit, in commit (LSN) order.
//
// Unlike the legacy single-file Log, a checkpoint never truncates in place:
// it Prunes whole segments whose records all lie at or below the checkpoint
// LSN (keeping the newest few for history serving), so a checkpoint that
// fails after being half-applied can never orphan acknowledged commits —
// the records are still in their segments, and replay skips the ones the
// snapshot already covers.
//
// Retained segments double as the spill store for the storage engine's
// changelogs: ReadRange serves any still-present LSN window directly from
// the segment files, which is what lets Changes answer for watermarks that
// have fallen out of the in-memory rings — across checkpoints and process
// restarts.
//
// Concurrency: appends are serialised by the caller (the storage engine's
// commit mutex or the group-commit writer goroutine); Prune, ReadRange,
// Stats and Sync may be called concurrently with appends and each other.
type Segmented struct {
	mu     sync.Mutex
	dir    string
	limit  int64 // rotation threshold for the active segment
	segs   []segInfo
	active *os.File
	// nextLSN is the LSN the next appended record will carry.
	nextLSN   uint64
	rotations uint64
	pruned    uint64
	closed    bool
}

// segInfo describes one segment file. For sealed segments size is final;
// for the active segment it tracks the append offset.
type segInfo struct {
	index    uint64
	firstLSN uint64
	size     int64
}

// SegmentedOptions configures OpenSegmented.
type SegmentedOptions struct {
	// SegmentBytes rotates the active segment once it reaches this size
	// (0 selects DefaultSegmentBytes). Records are never split: a segment
	// may exceed the threshold by the batch that sealed it.
	SegmentBytes int64
}

// DefaultSegmentBytes is the rotation threshold used when
// SegmentedOptions.SegmentBytes is zero.
const DefaultSegmentBytes = 4 << 20

// Segment header: magic "cdbW", version u32 = 2, first-record LSN u64,
// IEEE CRC-32 of the preceding 16 bytes. The CRC matters because the
// first-LSN is load-bearing for every record's identity: an unprotected
// downward bit-flip would silently renumber the segment's records into
// the checkpoint-covered range and replay would skip them.
const (
	segVersion    = 2
	segHeaderSize = 20
)

// segPrefix is the segment file name prefix; the suffix is the zero-padded
// decimal index.
const segPrefix = "wal."

// ErrRangeUnavailable is returned by ReadRange when part of the requested
// LSN window is not present in the retained segments (pruned, never
// written, or lost to a torn tail).
var ErrRangeUnavailable = errors.New("wal: lsn range unavailable")

func segName(index uint64) string {
	return fmt.Sprintf("%s%06d", segPrefix, index)
}

// parseSegName extracts the index from a segment file name, reporting
// whether the name is a segment name at all.
func parseSegName(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, segPrefix)
	if !ok || s == "" {
		return 0, false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
	}
	n, err := strconv.ParseUint(s, 10, 64)
	return n, err == nil
}

func encodeSegHeader(firstLSN uint64) []byte {
	hdr := make([]byte, segHeaderSize)
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], firstLSN)
	binary.LittleEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(hdr[:16]))
	return hdr
}

// parseSegHeader validates a segment header and returns its first-record
// LSN. ok is false for short, mismatched-magic or CRC-broken headers;
// version mismatches are a distinct error (they are well-formed headers
// from a future format, not damage).
func parseSegHeader(data []byte) (firstLSN uint64, ok bool, err error) {
	if len(data) < segHeaderSize || [4]byte(data[:4]) != magic {
		return 0, false, nil
	}
	if crc32.ChecksumIEEE(data[:16]) != binary.LittleEndian.Uint32(data[16:segHeaderSize]) {
		return 0, false, nil
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != segVersion {
		return 0, false, fmt.Errorf("wal: unsupported segment version %d", v)
	}
	return binary.LittleEndian.Uint64(data[8:16]), true, nil
}

// OpenSegmented opens (or creates) the segmented WAL in dir. base is the
// LSN up to which state is already durable elsewhere (the checkpoint
// snapshot); records found at or below it are still replayed through apply
// — the caller decides to skip them — but the log guarantees the next
// appended record carries an LSN greater than both base and every record
// on disk. apply is called once per intact record in global LSN order.
//
// Recovery is manifest-free: segment files are discovered by name,
// validated by their headers, and chained by first-LSN. A torn tail in the
// last segment is truncated (crash mid-append); a last segment with a
// short or unreadable header is discarded (crash mid-rotation); a torn or
// corrupt record anywhere else refuses to open, since acknowledged data
// would follow it.
func OpenSegmented(dir string, base uint64, opts SegmentedOptions, apply func(lsn uint64, payload []byte) error) (*Segmented, error) {
	limit := opts.SegmentBytes
	if limit <= 0 {
		limit = DefaultSegmentBytes
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var found []segInfo
	for _, e := range entries {
		if idx, ok := parseSegName(e.Name()); ok {
			found = append(found, segInfo{index: idx})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].index < found[j].index })
	for i := 1; i < len(found); i++ {
		if found[i].index != found[i-1].index+1 {
			return nil, fmt.Errorf("wal: segment gap: %s then %s",
				segName(found[i-1].index), segName(found[i].index))
		}
	}

	g := &Segmented{dir: dir, limit: limit, nextLSN: base + 1}
	running := uint64(0) // LSN after the records scanned so far
	for i, si := range found {
		path := filepath.Join(dir, segName(si.index))
		last := i == len(found)-1
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: read %s: %w", segName(si.index), err)
		}
		first, hdrOK, hdrErr := parseSegHeader(data)
		if hdrErr != nil {
			return nil, fmt.Errorf("wal: %s: %w", segName(si.index), hdrErr)
		}
		if !hdrOK {
			if last {
				// Crash between creating the segment and completing its
				// header: nothing in it can be a committed record.
				os.Remove(path)
				break
			}
			return nil, fmt.Errorf("wal: %s: bad segment header", segName(si.index))
		}
		if running == 0 && first > base+1 {
			// Records before the oldest segment exist only as checkpoint
			// state; an oldest segment starting above base+1 means
			// acknowledged commits vanished.
			return nil, fmt.Errorf("wal: %s: first lsn %d leaves lsns through %d uncovered by checkpoint %d",
				segName(si.index), first, first-1, base)
		}
		if running != 0 && first < running {
			return nil, fmt.Errorf("wal: %s: first lsn %d overlaps previous segment (next expected %d)",
				segName(si.index), first, running)
		}
		if running != 0 && first > running && first > base+1 {
			// A first-LSN jump is legal only when the skipped records are
			// checkpoint-covered (their segment was pruned, or the WAL tail
			// was lost to a crash the snapshot outlived and the log rotated
			// past it); anything else is a hole in acknowledged history.
			return nil, fmt.Errorf("wal: %s: lsn gap %d..%d not covered by checkpoint %d",
				segName(si.index), running, first-1, base)
		}
		lsn := first
		end, torn, err := scanRecords(data[segHeaderSize:], func(payload []byte) error {
			if apply != nil {
				if err := apply(lsn, payload); err != nil {
					return fmt.Errorf("wal: apply record lsn %d: %w", lsn, err)
				}
			}
			lsn++
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("wal: %s: %w", segName(si.index), err)
		}
		size := int64(segHeaderSize + end)
		if torn {
			if !last {
				return nil, fmt.Errorf("%w: torn record in non-final segment %s", ErrCorrupt, segName(si.index))
			}
			if err := os.Truncate(path, size); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
		}
		g.segs = append(g.segs, segInfo{index: si.index, firstLSN: first, size: size})
		running = lsn
	}
	if running > base && running > 0 {
		g.nextLSN = running
	}
	if base+1 > g.nextLSN {
		g.nextLSN = base + 1
	}

	switch {
	case len(g.segs) == 0:
		if err := g.createSegmentLocked(1, g.nextLSN); err != nil {
			return nil, err
		}
	case running < g.nextLSN && g.segs[len(g.segs)-1].size > segHeaderSize:
		// The snapshot is ahead of the log (a crash lost an unsynced WAL
		// tail that the synced snapshot had already captured). Appending to
		// the old segment would mis-number the new records — its header
		// chain would assign them the lost LSNs — so seal it and start a
		// fresh segment whose header carries the true next LSN.
		if err := g.openActiveLocked(); err != nil {
			return nil, err
		}
		if err := g.rotateLocked(); err != nil {
			return nil, err
		}
	default:
		if running < g.nextLSN {
			// Empty tail segment created before the snapshot advanced: its
			// header LSN is stale, rewrite it in place.
			last := &g.segs[len(g.segs)-1]
			last.firstLSN = g.nextLSN
			path := filepath.Join(dir, segName(last.index))
			if err := os.WriteFile(path, encodeSegHeader(g.nextLSN), 0o644); err != nil {
				return nil, fmt.Errorf("wal: rewrite segment header: %w", err)
			}
		}
		if err := g.openActiveLocked(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// createSegmentLocked creates and syncs a fresh segment and makes it the
// active one.
func (g *Segmented) createSegmentLocked(index, firstLSN uint64) error {
	path := filepath.Join(g.dir, segName(index))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(encodeSegHeader(firstLSN)); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync segment header: %w", err)
	}
	syncDir(g.dir)
	if g.active != nil {
		g.active.Close()
	}
	g.active = f
	g.segs = append(g.segs, segInfo{index: index, firstLSN: firstLSN, size: segHeaderSize})
	return nil
}

// openActiveLocked opens the last discovered segment for appending.
func (g *Segmented) openActiveLocked() error {
	last := g.segs[len(g.segs)-1]
	path := filepath.Join(g.dir, segName(last.index))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open active segment: %w", err)
	}
	if _, err := f.Seek(last.size, 0); err != nil {
		f.Close()
		return fmt.Errorf("wal: seek active segment: %w", err)
	}
	g.active = f
	return nil
}

// rotateLocked seals the active segment (fsync, so a later crash cannot
// tear it once a newer segment exists) and opens the next one. The group
// committer and the inline append path need no retargeting: they write
// through this Segmented, which swaps the active file under them.
func (g *Segmented) rotateLocked() error {
	if err := g.active.Sync(); err != nil {
		return fmt.Errorf("wal: sync sealed segment: %w", err)
	}
	next := g.segs[len(g.segs)-1].index + 1
	if err := g.createSegmentLocked(next, g.nextLSN); err != nil {
		return err
	}
	g.rotations++
	return nil
}

// Append writes one record, which is assigned the next LSN. The payload
// reaches the OS buffer before Append returns; call Sync for durability.
func (g *Segmented) Append(payload []byte) error {
	return g.AppendBatch([][]byte{payload})
}

// AppendBatch writes several records with a single write call; each record
// is assigned the next LSN in order. The whole batch lands in one segment:
// rotation happens between batches, never inside one.
func (g *Segmented) AppendBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("wal: append to closed log")
	}
	if g.segs[len(g.segs)-1].size >= g.limit {
		if err := g.rotateLocked(); err != nil {
			return err
		}
	}
	buf := frameBatch(payloads)
	if _, err := g.active.Write(buf); err != nil {
		return fmt.Errorf("wal: append batch: %w", err)
	}
	g.segs[len(g.segs)-1].size += int64(len(buf))
	g.nextLSN += uint64(len(payloads))
	return nil
}

// Sync flushes the active segment to stable storage.
func (g *Segmented) Sync() error {
	g.mu.Lock()
	f := g.active
	g.mu.Unlock()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Prune deletes segments whose records all lie at or below ckptLSN — they
// are fully covered by a durable checkpoint — except the newest `retain`
// of them, kept so ReadRange can keep serving history. The active segment
// is never pruned. Returns the number of segments deleted.
func (g *Segmented) Prune(ckptLSN uint64, retain int) int {
	if retain < 0 {
		retain = 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// A sealed segment's records end where the next segment's begin.
	prunable := 0
	for i := 0; i+1 < len(g.segs); i++ {
		if g.segs[i+1].firstLSN-1 <= ckptLSN {
			prunable = i + 1
		} else {
			break
		}
	}
	drop := prunable - retain
	if drop <= 0 {
		return 0
	}
	for i := 0; i < drop; i++ {
		os.Remove(filepath.Join(g.dir, segName(g.segs[i].index)))
	}
	g.segs = append(g.segs[:0:0], g.segs[drop:]...)
	g.pruned += uint64(drop)
	syncDir(g.dir)
	return drop
}

// ReadRange calls fn for every record with from <= LSN <= to, in LSN
// order, reading directly from the segment files (including retained
// pre-checkpoint segments and the active segment's stable prefix). It
// returns ErrRangeUnavailable when any part of the window is not present —
// pruned away, beyond the written tail, or cut off by a torn record.
// Callers must only request LSNs whose records are fully written (the
// storage engine's visible horizon guarantees this).
func (g *Segmented) ReadRange(from, to uint64, fn func(lsn uint64, payload []byte) error) error {
	if to < from {
		return nil
	}
	g.mu.Lock()
	if from < g.segs[0].firstLSN || to >= g.nextLSN {
		g.mu.Unlock()
		return ErrRangeUnavailable
	}
	segs := append([]segInfo(nil), g.segs...)
	g.mu.Unlock()

	next := from
	for i, si := range segs {
		// Skip segments wholly before the window.
		if i+1 < len(segs) && segs[i+1].firstLSN <= next {
			continue
		}
		if si.firstLSN > next {
			return ErrRangeUnavailable // hole (concurrent prune raced us)
		}
		data, err := os.ReadFile(filepath.Join(g.dir, segName(si.index)))
		if err != nil {
			return ErrRangeUnavailable // pruned between the list copy and the read
		}
		lsn, hdrOK, hdrErr := parseSegHeader(data)
		if hdrErr != nil || !hdrOK {
			return ErrRangeUnavailable
		}
		stop := errors.New("wal: range done")
		_, _, err = scanRecords(data[segHeaderSize:], func(payload []byte) error {
			if lsn > to {
				return stop
			}
			if lsn >= next {
				if err := fn(lsn, payload); err != nil {
					return err
				}
				next = lsn + 1
			}
			lsn++
			return nil
		})
		if err != nil && !errors.Is(err, stop) {
			if errors.Is(err, ErrCorrupt) {
				return ErrRangeUnavailable
			}
			return err
		}
		if next > to {
			return nil
		}
	}
	return ErrRangeUnavailable
}

// SegmentedStats summarises the log for engine reports.
type SegmentedStats struct {
	// Segments is the number of live segment files (active included).
	Segments int
	// Bytes is the total size of the live segment files.
	Bytes int64
	// FirstLSN is the oldest LSN still readable via ReadRange (NextLSN
	// when the log holds no records).
	FirstLSN uint64
	// NextLSN is the LSN the next appended record will carry.
	NextLSN uint64
	// Rotations counts segment rotations since open.
	Rotations uint64
	// Pruned counts segments deleted by checkpoints since open.
	Pruned uint64
}

// Stats returns current segment counters.
func (g *Segmented) Stats() SegmentedStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := SegmentedStats{
		Segments:  len(g.segs),
		FirstLSN:  g.segs[0].firstLSN,
		NextLSN:   g.nextLSN,
		Rotations: g.rotations,
		Pruned:    g.pruned,
	}
	for _, si := range g.segs {
		st.Bytes += si.size
	}
	return st
}

// Size returns the total size of the live segment files (headers
// included).
func (g *Segmented) Size() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var n int64
	for _, si := range g.segs {
		n += si.size
	}
	return n
}

// FirstLSN returns the oldest LSN still readable via ReadRange.
func (g *Segmented) FirstLSN() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.segs[0].firstLSN
}

// Close closes the active segment without syncing.
func (g *Segmented) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil
	}
	g.closed = true
	return g.active.Close()
}

// Dir returns the log's directory.
func (g *Segmented) Dir() string { return g.dir }
