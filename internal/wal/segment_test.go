package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// openSeg opens a segmented WAL collecting replayed records.
func openSeg(t *testing.T, dir string, base uint64, opts SegmentedOptions) (*Segmented, map[uint64]string) {
	t.Helper()
	got := make(map[uint64]string)
	g, err := OpenSegmented(dir, base, opts, func(lsn uint64, p []byte) error {
		got[lsn] = string(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, got
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func TestSegmentedAppendReplayLSNs(t *testing.T) {
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 0, SegmentedOptions{})
	for i := 1; i <= 5; i++ {
		if err := g.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	g.Close()

	g2, got := openSeg(t, dir, 0, SegmentedOptions{})
	defer g2.Close()
	if len(got) != 5 {
		t.Fatalf("replayed %d records, want 5", len(got))
	}
	for i := 1; i <= 5; i++ {
		if got[uint64(i)] != fmt.Sprintf("rec-%d", i) {
			t.Errorf("lsn %d = %q", i, got[uint64(i)])
		}
	}
	if st := g2.Stats(); st.NextLSN != 6 {
		t.Errorf("NextLSN = %d, want 6", st.NextLSN)
	}
}

func TestSegmentedRotation(t *testing.T) {
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 64})
	payload := make([]byte, 40)
	for i := 0; i < 6; i++ {
		if err := g.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	st := g.Stats()
	if st.Segments < 3 {
		t.Fatalf("Segments = %d after 6 oversized appends, want >= 3", st.Segments)
	}
	if st.Rotations == 0 {
		t.Fatal("no rotations recorded")
	}
	g.Close()

	// Recovery across segments preserves LSNs and contiguity.
	g2, got := openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 64})
	defer g2.Close()
	if len(got) != 6 {
		t.Fatalf("replayed %d of 6", len(got))
	}
	for i := uint64(1); i <= 6; i++ {
		if _, ok := got[i]; !ok {
			t.Errorf("lsn %d missing from replay", i)
		}
	}
}

func TestSegmentedBatchNeverSplits(t *testing.T) {
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 64})
	batch := [][]byte{make([]byte, 30), make([]byte, 30), make([]byte, 30)}
	if err := g.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Segments != 1 {
		t.Fatalf("batch split across %d segments", st.Segments)
	}
	// The next batch rotates first.
	if err := g.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Segments != 2 {
		t.Fatalf("Segments = %d, want 2", st.Segments)
	}
	g.Close()
	g2, got := openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 64})
	defer g2.Close()
	if len(got) != 6 {
		t.Fatalf("replayed %d of 6", len(got))
	}
}

func TestSegmentedTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 64})
	payload := make([]byte, 40)
	for i := 0; i < 4; i++ {
		g.Append(payload)
	}
	g.Close()
	names := segFiles(t, dir)
	last := filepath.Join(dir, names[len(names)-1])
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	g2, got := openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 64})
	if len(got) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(got))
	}
	// Appending after truncation reuses the torn record's LSN.
	if err := g2.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	g2.Close()
	_, got = openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 64})
	if got[4] != "fresh" {
		t.Fatalf("lsn 4 = %q, want the re-appended record", got[4])
	}
}

func TestSegmentedTornMiddleSegmentIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 64})
	payload := make([]byte, 40)
	for i := 0; i < 4; i++ {
		g.Append(payload)
	}
	g.Close()
	names := segFiles(t, dir)
	if len(names) < 2 {
		t.Fatal("test needs at least two segments")
	}
	first := filepath.Join(dir, names[0])
	info, _ := os.Stat(first)
	if err := os.Truncate(first, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmented(dir, 0, SegmentedOptions{}, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestSegmentedCrashMidRotationDiscardsHeaderlessTail(t *testing.T) {
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 0, SegmentedOptions{})
	g.Append([]byte("kept"))
	g.Close()
	// Simulate a crash between creating the next segment and writing its
	// header.
	if err := os.WriteFile(filepath.Join(dir, segName(2)), []byte("cd"), 0o644); err != nil {
		t.Fatal(err)
	}
	g2, got := openSeg(t, dir, 0, SegmentedOptions{})
	defer g2.Close()
	if len(got) != 1 || got[1] != "kept" {
		t.Fatalf("replay = %v", got)
	}
	if err := g2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentedReplaySkipGap(t *testing.T) {
	// Records covered by the checkpoint may be missing (pruned segments);
	// recovery accepts the gap only below base.
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 64})
	payload := make([]byte, 40)
	for i := 0; i < 4; i++ {
		g.Append(payload)
	}
	g.Close()
	names := segFiles(t, dir)
	os.Remove(filepath.Join(dir, names[0]))

	// The first segment held lsn 1; with base >= 1 the gap is legal.
	if _, err := OpenSegmented(dir, 1, SegmentedOptions{}, nil); err != nil {
		t.Fatalf("open with covered gap: %v", err)
	}
	// Without checkpoint coverage the gap is a hole in acknowledged data.
	os.Remove(filepath.Join(dir, names[1]))
	if _, err := OpenSegmented(dir, 1, SegmentedOptions{}, nil); err == nil {
		t.Fatal("uncovered lsn gap accepted")
	}
}

func TestSegmentedPruneAndReadRange(t *testing.T) {
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 64})
	for i := 1; i <= 10; i++ {
		if err := g.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	defer g.Close()
	if st := g.Stats(); st.Segments < 3 {
		t.Fatalf("want several segments, got %d", st.Segments)
	}

	var got []string
	err := g.ReadRange(3, 7, func(lsn uint64, p []byte) error {
		if want := fmt.Sprintf("rec-%d", lsn); string(p) != want {
			return fmt.Errorf("lsn %d = %q", lsn, p)
		}
		got = append(got, string(p))
		return nil
	})
	if err != nil || len(got) != 5 {
		t.Fatalf("ReadRange(3,7) = %v, %d records", err, len(got))
	}

	// Beyond the written tail is unavailable.
	if err := g.ReadRange(10, 11, nil); !errors.Is(err, ErrRangeUnavailable) {
		t.Fatalf("ReadRange past tail = %v", err)
	}

	// Prune everything below 6, retaining nothing.
	if n := g.Prune(6, 0); n == 0 {
		t.Fatal("nothing pruned")
	}
	if err := g.ReadRange(1, 3, nil); !errors.Is(err, ErrRangeUnavailable) {
		t.Fatalf("pruned range still served: %v", err)
	}
	// The unpruned tail still serves.
	count := 0
	if err := g.ReadRange(g.FirstLSN(), 10, func(uint64, []byte) error { count++; return nil }); err != nil {
		t.Fatalf("tail range: %v", err)
	}
	if count == 0 {
		t.Fatal("tail range served no records")
	}
}

func TestSegmentedPruneRetention(t *testing.T) {
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 64})
	for i := 1; i <= 20; i++ {
		g.Append([]byte(fmt.Sprintf("rec-%d", i)))
	}
	defer g.Close()
	before := g.Stats().Segments
	g.Prune(20, 2)
	st := g.Stats()
	if st.Segments >= before {
		t.Fatalf("retention pruned nothing: %d -> %d", before, st.Segments)
	}
	// Two sealed pre-checkpoint segments survive for history serving.
	count := 0
	if err := g.ReadRange(st.FirstLSN, 20, func(uint64, []byte) error { count++; return nil }); err != nil {
		t.Fatalf("retained range: %v", err)
	}
	if count == 0 {
		t.Fatal("retained segments served nothing")
	}
	if st.FirstLSN == 1 {
		t.Fatal("prune with retention kept everything")
	}
}

func TestSegmentedSnapshotAheadOfLogRotates(t *testing.T) {
	// A synced snapshot can outlive an unsynced WAL tail. Reopening with
	// base beyond the log's last record must not renumber new appends.
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 0, SegmentedOptions{})
	g.Append([]byte("r1"))
	g.Append([]byte("r2"))
	g.Close()

	g2, _ := openSeg(t, dir, 5, SegmentedOptions{}) // checkpoint at lsn 5, log ends at 2
	if st := g2.Stats(); st.NextLSN != 6 {
		t.Fatalf("NextLSN = %d, want 6", st.NextLSN)
	}
	g2.Append([]byte("r6"))
	g2.Close()

	_, got := openSeg(t, dir, 5, SegmentedOptions{})
	if got[6] != "r6" {
		t.Fatalf("lsn 6 = %q; replay = %v", got[6], got)
	}
}

func TestSegmentedGroupCommitter(t *testing.T) {
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 128})
	gc := NewGroupCommitter(g)
	const n = 60
	// Waiting each commit out forces many small batches, so batches cross
	// rotation boundaries.
	for i := 0; i < n; i++ {
		if err := <-gc.Commit([]byte(fmt.Sprintf("rec-%d", i+1)), i%4 == 0); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Segments < 2 {
		t.Fatalf("group commits never rotated: %d segments", st.Segments)
	}
	g.Close()

	_, got := openSeg(t, dir, 0, SegmentedOptions{})
	if len(got) != n {
		t.Fatalf("replayed %d of %d", len(got), n)
	}
	for i := 1; i <= n; i++ {
		if got[uint64(i)] != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("lsn %d = %q (order broken)", i, got[uint64(i)])
		}
	}
}

func TestSegmentedCorruptHeaderLSNRefused(t *testing.T) {
	// The first-record LSN decides every record's identity; a bit-flip in
	// it (downward would silently renumber records into the
	// checkpoint-covered range) must fail the header CRC.
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 0, SegmentedOptions{SegmentBytes: 64})
	payload := make([]byte, 40)
	for i := 0; i < 4; i++ {
		g.Append(payload)
	}
	g.Close()
	names := segFiles(t, dir)
	if len(names) < 2 {
		t.Fatal("test needs at least two segments")
	}
	target := filepath.Join(dir, names[1]) // non-last: damage, not mid-rotation
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	data[8] ^= 0x04 // flip a low bit of the first-LSN field
	if err := os.WriteFile(target, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmented(dir, 0, SegmentedOptions{}, nil); err == nil {
		t.Fatal("corrupt segment header LSN accepted")
	}
}

func TestSegmentedEmptyDirCreatesFirstSegment(t *testing.T) {
	dir := t.TempDir()
	g, _ := openSeg(t, dir, 41, SegmentedOptions{})
	defer g.Close()
	st := g.Stats()
	if st.Segments != 1 || st.NextLSN != 42 {
		t.Fatalf("fresh log stats = %+v", st)
	}
	if names := segFiles(t, dir); len(names) != 1 || names[0] != segName(1) {
		t.Fatalf("segment files = %v", names)
	}
}
