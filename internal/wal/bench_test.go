package wal

import (
	"path/filepath"
	"testing"
)

func BenchmarkAppend(b *testing.B) {
	l, err := Create(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSync(b *testing.B) {
	l, err := Create(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentedAppend(b *testing.B) {
	g, err := OpenSegmented(b.TempDir(), 0, SegmentedOptions{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentedReplay(b *testing.B) {
	dir := b.TempDir()
	g, err := OpenSegmented(dir, 0, SegmentedOptions{SegmentBytes: 1 << 20}, nil)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	const records = 10000
	for i := 0; i < records; i++ {
		g.Append(payload)
	}
	g.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		g, err := OpenSegmented(dir, 0, SegmentedOptions{}, func(uint64, []byte) error { n++; return nil })
		if err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d", n)
		}
		g.Close()
	}
}

func BenchmarkSegmentedReadRange(b *testing.B) {
	g, err := OpenSegmented(b.TempDir(), 0, SegmentedOptions{SegmentBytes: 1 << 18}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	payload := make([]byte, 256)
	const records = 8192
	for i := 0; i < records; i++ {
		g.Append(payload)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := g.ReadRange(records/2, records, func(uint64, []byte) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != records/2+1 {
			b.Fatalf("read %d", n)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	l, err := Create(path)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	const records = 10000
	for i := 0; i < records; i++ {
		l.Append(payload)
	}
	l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		l, err := Open(path, func([]byte) error { n++; return nil })
		if err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d", n)
		}
		l.Close()
	}
}
