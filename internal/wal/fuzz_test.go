package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALSegment throws arbitrary bytes at the segment header + record
// decoder. The invariants: OpenSegmented must never panic, must never
// over-allocate from a garbage length prefix, and when it does open, the
// records it replays must be exactly a prefix of the intact records — it
// stops cleanly at the first torn one and the log stays appendable.
func FuzzWALSegment(f *testing.F) {
	// Seed with a valid two-record segment and targeted mutations of its
	// length and CRC fields (the committed corpus under testdata/fuzz adds
	// regression cases).
	valid := encodeSegHeader(1)
	valid = frameRecord(valid, []byte("record-one"))
	valid = frameRecord(valid, []byte("record-two"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte("cd")) // short header
	mutLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(mutLen[segHeaderSize:], 0xFFFFFFF0) // absurd length
	f.Add(mutLen)
	mutCRC := append([]byte(nil), valid...)
	mutCRC[segHeaderSize+4] ^= 0xFF // first record CRC broken, data follows
	f.Add(mutCRC)
	mutVer := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(mutVer[4:8], 99)
	f.Add(mutVer)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		var replayed int
		g, err := OpenSegmented(dir, 0, SegmentedOptions{}, func(lsn uint64, payload []byte) error {
			if lsn != uint64(replayed+1) {
				t.Fatalf("replay lsn %d after %d records", lsn, replayed)
			}
			replayed++
			return nil
		})
		if err != nil {
			return // rejected cleanly
		}
		// Whatever was recovered must accept further appends and replay
		// them (the decoder left the log in a consistent, appendable
		// state).
		if err := g.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := g.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		total := 0
		g2, err := OpenSegmented(dir, 0, SegmentedOptions{}, func(lsn uint64, payload []byte) error {
			total++
			return nil
		})
		if err != nil {
			t.Fatalf("reopen after recovery+append: %v", err)
		}
		g2.Close()
		if total != replayed+1 {
			t.Fatalf("reopen replayed %d records, want %d", total, replayed+1)
		}
	})
}
