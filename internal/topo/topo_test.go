package topo

import (
	"strings"
	"testing"

	"codb/internal/cq"
)

func countEdges(t *testing.T, shape Shape, n int, opts Options) int {
	t.Helper()
	cfg, err := Build(shape, n, opts)
	if err != nil {
		t.Fatalf("%s/%d: %v", shape, n, err)
	}
	return len(cfg.Rules)
}

func TestShapeEdgeCounts(t *testing.T) {
	cases := []struct {
		shape Shape
		n     int
		want  int
	}{
		{Chain, 5, 4},
		{Chain, 1, 0},
		{Ring, 5, 5},
		{Star, 5, 4},
		{Tree, 7, 6},
		{Complete, 4, 12},
		{Grid, 4, 4},  // 2x2: two right + two down
		{Grid, 9, 12}, // 3x3
	}
	for _, c := range cases {
		if got := countEdges(t, c.shape, c.n, Options{}); got != c.want {
			t.Errorf("%s/%d: %d edges, want %d", c.shape, c.n, got, c.want)
		}
	}
}

func TestRandomDeterministicAndConnected(t *testing.T) {
	a, err := Build(Random, 10, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Build(Random, 10, Options{Seed: 42})
	if a.String() != b.String() {
		t.Error("same seed produced different random topologies")
	}
	c, _ := Build(Random, 10, Options{Seed: 43})
	if a.String() == c.String() {
		t.Error("different seeds produced identical topologies")
	}
	// Weak connectivity: every node reachable from N0 in the undirected
	// rule graph.
	adj := make(map[string][]string)
	for _, r := range a.Rules {
		rule := cq.MustParseRule(r.ID, r.Text)
		adj[rule.Source] = append(adj[rule.Source], rule.Target)
		adj[rule.Target] = append(adj[rule.Target], rule.Source)
	}
	seen := map[string]bool{"N0": true}
	stack := []string{"N0"}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range adj[x] {
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	if len(seen) != 10 {
		t.Errorf("random topology not weakly connected: %d of 10 reachable", len(seen))
	}
}

func TestExistentialVariant(t *testing.T) {
	cfg, err := Build(Chain, 3, Options{Existential: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cfg.Rules {
		rule := cq.MustParseRule(r.ID, r.Text)
		if len(rule.Existentials()) != 1 {
			t.Errorf("rule %s has no existential: %s", r.ID, r.Text)
		}
	}
}

func TestConfigsValidateAndParse(t *testing.T) {
	for _, shape := range Shapes() {
		n := 6
		cfg, err := Build(shape, n, Options{Seed: 1})
		if err != nil {
			t.Errorf("%s: %v", shape, err)
			continue
		}
		if len(cfg.Nodes) != n {
			t.Errorf("%s: %d nodes", shape, len(cfg.Nodes))
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: validate: %v", shape, err)
		}
		if !strings.Contains(cfg.String(), "node N0") {
			t.Errorf("%s: missing node decl", shape)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Chain, 0, Options{}); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := Build(Ring, 1, Options{}); err == nil {
		t.Error("1-node ring accepted")
	}
	if _, err := Build(Shape("möbius"), 3, Options{}); err == nil {
		t.Error("unknown shape accepted")
	}
}
