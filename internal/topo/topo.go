// Package topo generates the network topologies of the paper's §4 demo
// ("we will measure the performance of various networks arranged in
// different topologies"): chain, ring, star, tree, grid, random and
// complete graphs of peers, rendered as coordination-rules configurations.
//
// Every generated node shares the relation data(k int, v int); each edge
// (importer <- exporter) becomes the copy rule
//
//	<importer>.data(x, y) <- <exporter>.data(x, y)
//
// or, with Existential set, the null-generating variant
//
//	<importer>.data(x, z) <- <exporter>.data(x, y)
//
// so one harness covers both plain materialisation and marked-null
// workloads. Data flows toward node 0 (the conventional update initiator /
// query origin of the experiments).
package topo

import (
	"fmt"
	"math/rand"

	"codb/internal/config"
	"codb/internal/relation"
)

// Shape names a topology family.
type Shape string

// Topology families used throughout the benchmarks (DESIGN.md E1–E7).
const (
	Chain    Shape = "chain"
	Ring     Shape = "ring"
	Star     Shape = "star"
	Tree     Shape = "tree"
	Grid     Shape = "grid"
	Random   Shape = "random"
	Complete Shape = "complete"
	// Fanout is the reverse star: every leaf imports from hub N0, so an
	// update initiated at the hub ships the hub's data to all n-1 leaves
	// at once — the outbound-pipeline stress shape of the batching
	// benchmarks.
	Fanout Shape = "fanout"
)

// Shapes lists every family, in the order the experiment tables use.
func Shapes() []Shape { return []Shape{Chain, Ring, Star, Tree, Grid, Random, Complete, Fanout} }

// RuleKind selects the shape of the generated coordination rules.
type RuleKind uint8

const (
	// CopyRule is the identity mapping data(x,y) <- data(x,y).
	CopyRule RuleKind = iota
	// ExistentialRule maps data(x,z) <- data(x,y): the value is unknown
	// at the importer and becomes a marked null.
	ExistentialRule
	// ProjectionRule maps data(x,0) <- data(x,y): many source tuples
	// collapse onto one imported tuple, which is what the per-link sent
	// caches (A2) deduplicate.
	ProjectionRule
	// JoinRule maps data(x,z) <- data(x,y), data(y,z): a self-join at
	// the exporter, exercising the join strategies (A3).
	JoinRule
)

// Options tunes generation.
type Options struct {
	// Rule selects the rule template (default CopyRule).
	Rule RuleKind
	// Existential is a legacy alias for Rule == ExistentialRule.
	Existential bool
	// EdgeProb is the edge probability for Random (default 0.3).
	EdgeProb float64
	// Seed makes Random deterministic.
	Seed int64
	// Version stamps the generated configuration (default 1).
	Version int
	// FanRules is the number of parallel coordination rules per Fanout
	// edge (default 1): with k > 1 every leaf imports from the hub
	// through k distinct rules, multiplying the messages per pipe — the
	// coalescing workload of the batching benchmarks.
	FanRules int
}

// NodeName returns the canonical generated peer name.
func NodeName(i int) string { return fmt.Sprintf("N%d", i) }

// Build generates a configuration with n peers arranged in the shape.
func Build(shape Shape, n int, opts Options) (*config.Config, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: need at least one node, got %d", n)
	}
	version := opts.Version
	if version == 0 {
		version = 1
	}
	cfg := &config.Config{Version: version}
	for i := 0; i < n; i++ {
		schema := relation.NewSchema()
		schema.MustAdd(&relation.RelDef{Name: "data", Attrs: []relation.Attr{
			{Name: "k", Type: relation.TInt},
			{Name: "v", Type: relation.TInt},
		}})
		cfg.Nodes = append(cfg.Nodes, config.Node{Name: NodeName(i), Schema: schema})
	}
	edges, err := edgesFor(shape, n, opts)
	if err != nil {
		return nil, err
	}
	kind := opts.Rule
	if opts.Existential {
		kind = ExistentialRule
	}
	for i, e := range edges {
		imp, exp := NodeName(e.importer), NodeName(e.exporter)
		var text string
		switch kind {
		case ExistentialRule:
			text = fmt.Sprintf("%s.data(x, z) <- %s.data(x, y)", imp, exp)
		case ProjectionRule:
			text = fmt.Sprintf("%s.data(x, 0) <- %s.data(x, y)", imp, exp)
		case JoinRule:
			text = fmt.Sprintf("%s.data(x, z) <- %s.data(x, y), %s.data(y, z)", imp, exp, exp)
		default:
			text = fmt.Sprintf("%s.data(x, y) <- %s.data(x, y)", imp, exp)
		}
		cfg.Rules = append(cfg.Rules, config.Rule{ID: fmt.Sprintf("e%d", i), Text: text})
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// edge is one coordination rule: importer pulls from exporter.
type edge struct{ importer, exporter int }

func edgesFor(shape Shape, n int, opts Options) ([]edge, error) {
	var edges []edge
	switch shape {
	case Chain:
		// N0 <- N1 <- ... <- N(n-1).
		for i := 0; i < n-1; i++ {
			edges = append(edges, edge{i, i + 1})
		}
	case Ring:
		// Chain plus the closing edge N(n-1) <- N0.
		if n < 2 {
			return nil, fmt.Errorf("topo: ring needs >= 2 nodes")
		}
		for i := 0; i < n-1; i++ {
			edges = append(edges, edge{i, i + 1})
		}
		edges = append(edges, edge{n - 1, 0})
	case Star:
		// Hub N0 imports from every leaf.
		for i := 1; i < n; i++ {
			edges = append(edges, edge{0, i})
		}
	case Fanout:
		// Every leaf imports from hub N0, through FanRules parallel rules.
		k := opts.FanRules
		if k < 1 {
			k = 1
		}
		for i := 1; i < n; i++ {
			for j := 0; j < k; j++ {
				edges = append(edges, edge{i, 0})
			}
		}
	case Tree:
		// Complete binary tree; parents import from children.
		for i := 1; i < n; i++ {
			edges = append(edges, edge{(i - 1) / 2, i})
		}
	case Grid:
		// Square-ish grid; each cell imports from its right and lower
		// neighbours, so data flows toward cell 0.
		w := 1
		for w*w < n {
			w++
		}
		idx := func(r, c int) int { return r*w + c }
		for r := 0; r < w; r++ {
			for c := 0; c < w; c++ {
				if idx(r, c) >= n {
					continue
				}
				if c+1 < w && idx(r, c+1) < n {
					edges = append(edges, edge{idx(r, c), idx(r, c+1)})
				}
				if r+1 < w && idx(r+1, c) < n {
					edges = append(edges, edge{idx(r, c), idx(r+1, c)})
				}
			}
		}
	case Random:
		p := opts.EdgeProb
		if p <= 0 {
			p = 0.3
		}
		rnd := rand.New(rand.NewSource(opts.Seed))
		// Guarantee weak connectivity with a random spanning arborescence
		// toward node 0, then sprinkle random extra edges.
		for i := 1; i < n; i++ {
			edges = append(edges, edge{rnd.Intn(i), i})
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rnd.Float64() < p/float64(2) {
					edges = append(edges, edge{i, j})
				}
			}
		}
		edges = dedupEdges(edges)
	case Complete:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					edges = append(edges, edge{i, j})
				}
			}
		}
	default:
		return nil, fmt.Errorf("topo: unknown shape %q", shape)
	}
	return edges, nil
}

func dedupEdges(edges []edge) []edge {
	seen := make(map[edge]bool, len(edges))
	out := edges[:0]
	for _, e := range edges {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}
