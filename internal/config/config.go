// Package config defines the coordination-rules file format the super-peer
// reads and broadcasts (paper §4: "that peer can read coordination rules
// for all peers from a file and broadcast this file to all peers on the
// network"). A configuration lists the peers (name, optional dial address,
// shared schema) and the GLAV coordination rules between them.
//
// The format is line-oriented:
//
//	# comment
//	version 3
//	node A addr 127.0.0.1:7001
//	  rel emp(id int, name string)
//	  rel dept(name string, mgr string)
//	end
//	node B
//	  rel person(id int, name string)
//	end
//	rule r1: A.emp(x, n) <- B.person(x, n), x > 0
package config

import (
	"fmt"
	"sort"
	"strings"

	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/relation"
)

// Node declares one peer.
type Node struct {
	Name   string
	Addr   string // dial address; empty for in-process deployments
	Schema *relation.Schema
}

// Rule declares one coordination rule (kept in concrete syntax; Parsed
// gives the AST).
type Rule struct {
	ID   string
	Text string
}

// Config is a parsed configuration file.
type Config struct {
	Version int
	Nodes   []Node
	Rules   []Rule
}

// Node returns the declaration of the named node, or nil.
func (c *Config) Node(name string) *Node {
	for i := range c.Nodes {
		if c.Nodes[i].Name == name {
			return &c.Nodes[i]
		}
	}
	return nil
}

// RuleDefs converts the rules to the wire form used by broadcasts.
func (c *Config) RuleDefs() []msg.RuleDef {
	defs := make([]msg.RuleDef, len(c.Rules))
	for i, r := range c.Rules {
		defs[i] = msg.RuleDef{ID: r.ID, Text: r.Text}
	}
	return defs
}

// Directory returns the node -> address map (nodes without addresses
// omitted).
func (c *Config) Directory() map[string]string {
	dir := make(map[string]string)
	for _, n := range c.Nodes {
		if n.Addr != "" {
			dir[n.Name] = n.Addr
		}
	}
	return dir
}

// Validate checks internal consistency: unique node names and rule IDs,
// rules referencing declared nodes and relations with correct arity.
func (c *Config) Validate() error {
	nodes := make(map[string]*relation.Schema)
	for _, n := range c.Nodes {
		if _, dup := nodes[n.Name]; dup {
			return fmt.Errorf("config: duplicate node %s", n.Name)
		}
		nodes[n.Name] = n.Schema
	}
	ids := make(map[string]bool)
	for _, r := range c.Rules {
		if ids[r.ID] {
			return fmt.Errorf("config: duplicate rule %s", r.ID)
		}
		ids[r.ID] = true
		rule, err := cq.ParseRule(r.ID, r.Text)
		if err != nil {
			return err
		}
		for nodeName, atoms := range map[string][]cq.Atom{rule.Target: rule.Head, rule.Source: rule.Body} {
			schema, ok := nodes[nodeName]
			if !ok {
				return fmt.Errorf("config: rule %s references undeclared node %s", r.ID, nodeName)
			}
			for _, a := range atoms {
				def := schema.Rel(a.Rel)
				if def == nil {
					return fmt.Errorf("config: rule %s: node %s has no relation %s", r.ID, nodeName, a.Rel)
				}
				if def.Arity() != len(a.Terms) {
					return fmt.Errorf("config: rule %s: %s.%s has arity %d, atom has %d terms",
						r.ID, nodeName, a.Rel, def.Arity(), len(a.Terms))
				}
			}
		}
	}
	return nil
}

// String serialises the configuration back to the file format.
func (c *Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "version %d\n", c.Version)
	for _, n := range c.Nodes {
		b.WriteString("node ")
		b.WriteString(n.Name)
		if n.Addr != "" {
			b.WriteString(" addr ")
			b.WriteString(n.Addr)
		}
		b.WriteByte('\n')
		if n.Schema != nil {
			for _, relName := range n.Schema.Names() {
				fmt.Fprintf(&b, "  rel %s\n", n.Schema.Rel(relName))
			}
		}
		b.WriteString("end\n")
	}
	for _, r := range c.Rules {
		fmt.Fprintf(&b, "rule %s: %s\n", r.ID, r.Text)
	}
	return b.String()
}

// SortedRuleIDs returns the rule IDs in sorted order.
func (c *Config) SortedRuleIDs() []string {
	ids := make([]string, len(c.Rules))
	for i, r := range c.Rules {
		ids[i] = r.ID
	}
	sort.Strings(ids)
	return ids
}

// Parse reads a configuration from its textual form.
func Parse(text string) (*Config, error) {
	cfg := &Config{}
	var cur *Node
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("config: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "version "):
			if cur != nil {
				return nil, errf("version inside node block")
			}
			if _, err := fmt.Sscanf(line, "version %d", &cfg.Version); err != nil {
				return nil, errf("bad version line %q", line)
			}
		case strings.HasPrefix(line, "node "):
			if cur != nil {
				return nil, errf("nested node block")
			}
			fields := strings.Fields(line)
			n := Node{Schema: relation.NewSchema()}
			switch len(fields) {
			case 2:
				n.Name = fields[1]
			case 4:
				if fields[2] != "addr" {
					return nil, errf("expected 'addr', got %q", fields[2])
				}
				n.Name, n.Addr = fields[1], fields[3]
			default:
				return nil, errf("bad node line %q", line)
			}
			cfg.Nodes = append(cfg.Nodes, n)
			cur = &cfg.Nodes[len(cfg.Nodes)-1]
		case line == "end":
			if cur == nil {
				return nil, errf("'end' outside node block")
			}
			cur = nil
		case strings.HasPrefix(line, "rel "):
			if cur == nil {
				return nil, errf("'rel' outside node block")
			}
			def, err := parseRelDecl(strings.TrimSpace(line[4:]))
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := cur.Schema.Add(def); err != nil {
				return nil, errf("%v", err)
			}
		case strings.HasPrefix(line, "rule "):
			if cur != nil {
				return nil, errf("'rule' inside node block")
			}
			rest := strings.TrimSpace(line[5:])
			colon := strings.IndexByte(rest, ':')
			if colon <= 0 {
				return nil, errf("bad rule line %q (want 'rule id: text')", line)
			}
			id := strings.TrimSpace(rest[:colon])
			text := strings.TrimSpace(rest[colon+1:])
			if _, err := cq.ParseRule(id, text); err != nil {
				return nil, errf("%v", err)
			}
			cfg.Rules = append(cfg.Rules, Rule{ID: id, Text: text})
		default:
			return nil, errf("unrecognised line %q", line)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("config: unterminated node block for %s", cur.Name)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// parseRelDecl parses "emp(id int, name string)".
func parseRelDecl(s string) (*relation.RelDef, error) {
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("bad relation declaration %q", s)
	}
	def := &relation.RelDef{Name: strings.TrimSpace(s[:open])}
	inner := s[open+1 : len(s)-1]
	for _, part := range strings.Split(inner, ",") {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad attribute %q in %q (want 'name type')", part, s)
		}
		typ, err := relation.ParseType(fields[1])
		if err != nil {
			return nil, err
		}
		def.Attrs = append(def.Attrs, relation.Attr{Name: fields[0], Type: typ})
	}
	return def, nil
}
