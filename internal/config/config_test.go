package config

import (
	"strings"
	"testing"
)

const sample = `
# demo network
version 3
node A addr 127.0.0.1:7001
  rel emp(id int, name string)
  rel dept(name string, mgr string)
end
node B
  rel person(id int, name string)
end
rule r1: A.emp(x, n) <- B.person(x, n), x > 0
`

func TestParseSample(t *testing.T) {
	cfg, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Version != 3 {
		t.Errorf("Version = %d", cfg.Version)
	}
	if len(cfg.Nodes) != 2 || len(cfg.Rules) != 1 {
		t.Fatalf("nodes=%d rules=%d", len(cfg.Nodes), len(cfg.Rules))
	}
	a := cfg.Node("A")
	if a == nil || a.Addr != "127.0.0.1:7001" || a.Schema.Len() != 2 {
		t.Errorf("node A = %+v", a)
	}
	if cfg.Node("B").Addr != "" {
		t.Error("node B should have no address")
	}
	if cfg.Node("ghost") != nil {
		t.Error("ghost node found")
	}
	if got := cfg.Directory(); len(got) != 1 || got["A"] == "" {
		t.Errorf("Directory = %v", got)
	}
	if got := cfg.RuleDefs(); len(got) != 1 || got[0].ID != "r1" {
		t.Errorf("RuleDefs = %v", got)
	}
	if got := cfg.SortedRuleIDs(); len(got) != 1 || got[0] != "r1" {
		t.Errorf("SortedRuleIDs = %v", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	cfg, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := Parse(cfg.String())
	if err != nil {
		t.Fatalf("re-parse: %v\ntext:\n%s", err, cfg.String())
	}
	if cfg2.String() != cfg.String() {
		t.Errorf("round trip:\n%s\nvs\n%s", cfg.String(), cfg2.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"node A\nrel r(x int)", // unterminated
		"end",
		"rel r(x int)",
		"node A\nnode B\nend\nend", // nested
		"version x",
		"node A addr\nend",           // bad node line
		"node A\nrel r()\nend",       // bad rel
		"node A\nrel r(x blob)\nend", // bad type
		"node A\nrel r(x)\nend",      // missing type
		"rule broken",                // no colon
		"nonsense line",
		"node A\n  version 2\nend",               // version in block
		"node A\nend\nrule r1: A.r(x) <- B.r(x)", // undeclared node B
		"node A\n rel r(x int)\nend\nnode B\n rel r(x int)\nend\nrule r1: A.z(x) <- B.r(x)",                            // unknown relation
		"node A\n rel r(x int)\nend\nnode B\n rel r(x int)\nend\nrule r1: A.r(x, y) <- B.r(x)",                         // arity
		"node A\n rel r(x int)\nend\nnode A\n rel r(x int)\nend",                                                       // duplicate node
		"node A\n rel r(x int)\nend\nnode B\n rel r(x int)\nend\nrule r1: A.r(x) <- B.r(x)\nrule r1: A.r(x) <- B.r(x)", // duplicate rule id
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse accepted:\n%s", text)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	cfg, err := Parse("# all comments\n\n   \nversion 1\n# more\nnode A # trailing\n rel r(x int)\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Nodes) != 1 || cfg.Nodes[0].Name != "A" {
		t.Errorf("nodes = %+v", cfg.Nodes)
	}
}

func TestMultiRuleConfig(t *testing.T) {
	text := `version 1
node A
  rel r(x int, y int)
end
node B
  rel r(x int, y int)
end
node C
  rel r(x int, y int)
end
rule rAB: A.r(x, y) <- B.r(x, y)
rule rBC: B.r(x, y) <- C.r(x, y)
rule rCA: C.r(x, y) <- A.r(x, y)
`
	cfg, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Rules) != 3 {
		t.Errorf("rules = %d", len(cfg.Rules))
	}
	if !strings.Contains(cfg.String(), "rule rCA: C.r(x, y) <- A.r(x, y)") {
		t.Errorf("String lost a rule:\n%s", cfg.String())
	}
}
