// Package console implements the interactive command interpreter behind
// cmd/codb-shell — the reproduction of the paper's query interface and
// peer-discovery windows (Figures 2 and 3). It is a separate package so the
// command handling is unit-testable against in-process networks.
package console

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"codb"
	"codb/internal/superpeer"
)

// Console interprets shell commands against a network.
type Console struct {
	nw  *codb.Network
	out io.Writer
	// Timeout bounds updates and queries (default 5 minutes).
	Timeout time.Duration
	// ReadFile loads configuration files for `reload` (default os.ReadFile).
	ReadFile func(path string) ([]byte, error)
}

// New builds a console over a network, printing to out.
func New(nw *codb.Network, out io.Writer) *Console {
	return &Console{nw: nw, out: out, Timeout: 5 * time.Minute, ReadFile: os.ReadFile}
}

func (c *Console) printf(format string, args ...any) {
	fmt.Fprintf(c.out, format, args...)
}

// Execute runs one command line. It returns false when the session should
// end (quit/exit); errors are printed, not returned, matching interactive
// use.
func (c *Console) Execute(line string) bool {
	line = strings.TrimSpace(line)
	if line == "" {
		return true
	}
	fields := strings.Fields(line)
	cmd := fields[0]
	rest := strings.TrimSpace(strings.TrimPrefix(line, cmd))
	switch cmd {
	case "quit", "exit":
		return false
	case "help":
		c.printf("query|certain|local <node> <query>; update <node>; scoped <node> <rel,...>;\n")
		c.printf("insert <node> <rel> v…; show <node> <rel>; peers <node>; report <node>;\n")
		c.printf("cache <node>; storage <node>; wire <node>; links <node>; membership <node>;\n")
		c.printf("policy <rule> <mode> [filter];\n")
		c.printf("catchup; stats; reload <file>; topology; quit\n")
	case "query", "certain", "local":
		c.runQuery(cmd, rest)
	case "update":
		c.runUpdate(rest)
	case "scoped":
		c.runScoped(fields[1:])
	case "insert":
		c.runInsert(fields[1:])
	case "show":
		c.runShow(fields[1:])
	case "peers":
		c.runPeers(fields[1:])
	case "report":
		c.runReport(fields[1:])
	case "cache":
		c.runCache(fields[1:])
	case "storage":
		c.runStorage(fields[1:])
	case "wire":
		c.runWire(fields[1:])
	case "links":
		c.runLinks(fields[1:])
	case "membership":
		c.runMembership(fields[1:])
	case "policy":
		c.runPolicy(fields[1:])
	case "catchup":
		c.runCatchUp()
	case "stats":
		c.runStats()
	case "reload":
		c.runReload(fields[1:])
	case "topology":
		c.runTopology()
	default:
		c.printf("unknown command %q (try help)\n", cmd)
	}
	return true
}

func (c *Console) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), c.Timeout)
}

func splitNode(rest string) (string, string, bool) {
	fields := strings.SplitN(rest, " ", 2)
	if len(fields) != 2 {
		return "", "", false
	}
	return fields[0], strings.TrimSpace(fields[1]), true
}

func (c *Console) runQuery(cmd, rest string) {
	node, q, ok := splitNode(rest)
	if !ok {
		c.printf("usage: %s <node> <query>\n", cmd)
		return
	}
	mode := codb.AllAnswers
	if cmd == "certain" {
		mode = codb.CertainAnswers
	}
	start := time.Now()
	if cmd == "local" {
		rows, err := c.nw.LocalQuery(node, q, mode)
		if err != nil {
			c.printf("error: %v\n", err)
			return
		}
		for _, r := range rows {
			c.printf("  %s\n", r)
		}
		c.printf("%d answers in %v\n", len(rows), time.Since(start).Round(time.Microsecond))
		return
	}
	answers, done, err := c.nw.QueryStream(node, q, mode)
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	n := 0
	for row := range answers {
		n++
		c.printf("  %s\n", row)
	}
	rep := <-done
	c.printf("%d answers in %v (%d msgs received)\n",
		n, time.Since(start).Round(time.Microsecond), totalMsgs(rep))
}

func totalMsgs(rep codb.Report) int {
	n := 0
	for _, v := range rep.MsgsPerRule {
		n += v
	}
	return n
}

func (c *Console) runUpdate(node string) {
	if node == "" {
		c.printf("usage: update <node>\n")
		return
	}
	ctx, cancel := c.ctx()
	defer cancel()
	start := time.Now()
	rep, err := c.nw.Update(ctx, node)
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	c.printf("update %s complete in %v: %d new tuples at origin, longest path %d\n",
		rep.SID, time.Since(start).Round(time.Microsecond), rep.NewTuples, rep.LongestPath)
}

func (c *Console) runScoped(args []string) {
	if len(args) != 2 {
		c.printf("usage: scoped <node> <rel[,rel...]>\n")
		return
	}
	ctx, cancel := c.ctx()
	defer cancel()
	rels := strings.Split(args[1], ",")
	rep, err := c.nw.ScopedUpdate(ctx, args[0], rels...)
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	c.printf("scoped update %s complete (%s)\n", rep.SID, strings.Join(rels, ", "))
}

func (c *Console) runInsert(args []string) {
	if len(args) < 3 {
		c.printf("usage: insert <node> <rel> v1 v2 ...\n")
		return
	}
	var row codb.Tuple
	for _, tok := range args[2:] {
		row = append(row, ParseValue(tok))
	}
	if err := c.nw.Insert(args[0], args[1], row); err != nil {
		c.printf("error: %v\n", err)
		return
	}
	c.printf("ok\n")
}

// ParseValue interprets a shell token as a typed value: true/false,
// integers, floats, "quoted" or bare strings.
func ParseValue(tok string) codb.Value {
	switch tok {
	case "true":
		return codb.Bool(true)
	case "false":
		return codb.Bool(false)
	}
	if strings.HasPrefix(tok, `"`) {
		return codb.Str(strings.Trim(tok, `"`))
	}
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return codb.Int(int(n))
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return codb.Float(f)
	}
	return codb.Str(tok)
}

func (c *Console) runShow(args []string) {
	if len(args) != 2 {
		c.printf("usage: show <node> <rel>\n")
		return
	}
	p := c.nw.Peer(args[0])
	if p == nil {
		c.printf("unknown peer %s\n", args[0])
		return
	}
	rows := p.Tuples(args[1])
	for _, r := range rows {
		c.printf("  %s\n", r)
	}
	c.printf("%d tuples\n", len(rows))
}

func (c *Console) runPeers(args []string) {
	if len(args) != 1 {
		c.printf("usage: peers <node>\n")
		return
	}
	p := c.nw.Peer(args[0])
	if p == nil {
		c.printf("unknown peer %s\n", args[0])
		return
	}
	out, in := p.Links()
	c.printf("pipes:      %v\n", p.Pipes())
	c.printf("outgoing:   %v\n", out)
	c.printf("incoming:   %v\n", in)
	c.printf("discovered: %v\n", p.Discovered())
}

func (c *Console) runReport(args []string) {
	if len(args) != 1 {
		c.printf("usage: report <node>\n")
		return
	}
	p := c.nw.Peer(args[0])
	if p == nil {
		c.printf("unknown peer %s\n", args[0])
		return
	}
	for _, rep := range p.Reports() {
		dur := time.Duration(rep.EndUnixNano - rep.StartUnixNano)
		c.printf("  %s %s origin=%s dur=%v new=%d sent=%dB queried=%v sentTo=%v\n",
			rep.SID, rep.Kind, rep.Origin, dur.Round(time.Microsecond),
			rep.NewTuples, rep.SentBytes, rep.Queried, rep.SentTo)
	}
}

func (c *Console) runCache(args []string) {
	if len(args) != 1 {
		c.printf("usage: cache <node>\n")
		return
	}
	st, ok := c.nw.PeerReadStats(args[0])
	if !ok {
		c.printf("no read path on %s (unknown peer, mediator, or read path disabled)\n", args[0])
		return
	}
	c.printf("query cache: %d entries, %d hits, %d misses (%d stale)\n",
		st.Entries, st.Hits, st.Misses, st.Stale)
}

func (c *Console) runWire(args []string) {
	if len(args) != 1 {
		c.printf("usage: wire <node>\n")
		return
	}
	frames, bytes, ok := c.nw.PeerWireStats(args[0])
	if !ok {
		c.printf("no wire on %s (unknown peer, or in-process bus)\n", args[0])
		return
	}
	c.printf("wire: %d frames, %d bytes sent (headers included)\n", frames, bytes)
	if p := c.nw.Peer(args[0]); p != nil {
		if ob, obOK := p.OutboxStats(); obOK && ob.Frames > 0 {
			c.printf("outbox: %d payloads in %d frames (%d batches), %.2f payloads/frame\n",
				ob.Payloads, ob.Frames, ob.Batches, float64(ob.Payloads)/float64(ob.Frames))
		}
	}
}

func (c *Console) runStorage(args []string) {
	if len(args) != 1 {
		c.printf("usage: storage <node>\n")
		return
	}
	st, ok := c.nw.PeerStorageStats(args[0])
	if !ok {
		c.printf("no storage engine on %s (unknown peer or mediator)\n", args[0])
		return
	}
	c.printf("shards: %d, commit LSN: %d, WAL: %d bytes\n", st.Shards, st.LSN, st.WALBytes)
	if st.WAL.Segments > 0 {
		c.printf("wal segments: %d (first lsn %d, %d rotations, %d pruned), spill: %d hits %d misses\n",
			st.WAL.Segments, st.WAL.FirstLSN, st.WAL.Rotations, st.WAL.Pruned,
			st.SpillHits, st.SpillMisses)
	}
	for _, rel := range st.Relations {
		c.printf("  %s:\n", rel.Name)
		for i, sh := range rel.Shards {
			if sh.Tuples == 0 && len(rel.Shards) > 1 {
				continue
			}
			c.printf("    shard %2d: %6d rows %8d bytes\n", i, sh.Tuples, sh.Bytes)
		}
	}
	if st.GroupCommitEnabled {
		gc := st.GroupCommit
		mean := 0.0
		if gc.Batches > 0 {
			mean = float64(gc.Commits) / float64(gc.Batches)
		}
		c.printf("group commit: %d commits in %d batches (mean %.1f, max %d), %d fsyncs\n",
			gc.Commits, gc.Batches, mean, gc.MaxBatch, gc.Syncs)
	} else {
		c.printf("group commit: off (memory-only database or disabled)\n")
	}
	if p := c.nw.Peer(args[0]); p != nil {
		if tot := p.ExportTotals(); tot.Sessions > 0 {
			c.printf("exports (cumulative, %d sessions): %d full, %d incremental, %d fallback\n",
				tot.Sessions, tot.ExportsFull, tot.ExportsIncremental, tot.ExportsFallback)
			c.printf("  skipped by watermark: %d, suppressed bindings: %d, incremental batches: %d\n",
				tot.SkippedByWatermark, tot.SuppressedBindings, tot.IncrementalMsgs)
		}
	}
}

func (c *Console) runLinks(args []string) {
	if len(args) != 1 {
		c.printf("usage: links <node>\n")
		return
	}
	st, ok := c.nw.PeerPropagationStats(args[0])
	if !ok {
		c.printf("unknown peer %s\n", args[0])
		return
	}
	if len(st.Links) == 0 {
		c.printf("no links with policies or propagation traffic\n")
		return
	}
	for _, l := range st.Links {
		c.printf("  %-8s policy=%s effective=%s", l.RuleID, l.Policy, l.Effective)
		if l.Filter != "" {
			c.printf(" filter=%q", l.Filter)
		}
		c.printf("\n")
		c.printf("           pushed=%dB pulled=%dB suppressed=%d(%dB) hints=%d/%d pulls=%d/%d tuples=%d\n",
			l.BytesPushed, l.BytesPulled, l.SuppressedBindings, l.BytesSuppressed,
			l.HintsSent, l.HintsReceived, l.PullsServed, l.PullsIssued, l.PulledTuples)
	}
	if len(st.StaleLinks) > 0 {
		c.printf("stale: %v\n", st.StaleLinks)
	}
	if st.StalenessSamples > 0 {
		c.printf("staleness at pull: p50=%v p99=%v over %d pulls\n",
			st.StalenessP50.Round(time.Microsecond), st.StalenessP99.Round(time.Microsecond), st.StalenessSamples)
	}
}

func (c *Console) runMembership(args []string) {
	if len(args) != 1 {
		c.printf("usage: membership <node>\n")
		return
	}
	st, ok := c.nw.PeerMembershipStats(args[0])
	if !ok {
		c.printf("unknown peer %s\n", args[0])
		return
	}
	c.printf("directory: %d live peers, %d tombstones\n", st.LivePeers, st.Tombstones)
	if !st.Enabled {
		c.printf("failure detection: off\n")
		return
	}
	c.printf("failure detection: %d suspected, %d down, %d healed (cumulative)\n",
		st.Suspects, st.Downs, st.Heals)
	names := make([]string, 0, len(st.States))
	for name := range st.States {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c.printf("  %-10s %s\n", name, st.States[name])
	}
}

func (c *Console) runPolicy(args []string) {
	if len(args) < 2 || len(args) > 3 {
		c.printf("usage: policy <rule> <push|pull|adaptive|filter> [filter]\n")
		return
	}
	filter := ""
	if len(args) == 3 {
		filter = args[2]
	}
	if err := c.nw.SetLinkPolicy(args[0], args[1], filter); err != nil {
		c.printf("error: %v\n", err)
		return
	}
	c.printf("ok\n")
}

func (c *Console) runCatchUp() {
	ctx, cancel := c.ctx()
	defer cancel()
	start := time.Now()
	n, err := c.nw.CatchUp(ctx)
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	c.printf("caught up: %d tuples materialised in %v\n", n, time.Since(start).Round(time.Microsecond))
}

func (c *Console) runStats() {
	sp, err := c.nw.SuperPeer()
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	byNode, _ := sp.CollectStats(ctx, len(c.nw.Peers()))
	c.printf("%s", superpeer.Render(superpeer.AggregateSessions(byNode)))
}

func (c *Console) runReload(args []string) {
	if len(args) != 1 {
		c.printf("usage: reload <config-file>\n")
		return
	}
	text, err := c.ReadFile(args[0])
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	cfg, err := codb.ParseConfig(string(text))
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	sp, err := c.nw.SuperPeer()
	if err != nil {
		c.printf("error: %v\n", err)
		return
	}
	sp.SetConfig(cfg)
	if err := sp.Broadcast(); err != nil {
		c.printf("error: %v\n", err)
		return
	}
	c.printf("broadcast sent; topology will adapt as peers process it\n")
}

func (c *Console) runTopology() {
	for _, name := range c.nw.Peers() {
		p := c.nw.Peer(name)
		out, in := p.Links()
		c.printf("  %-10s outgoing=%v incoming=%v\n", name, out, in)
	}
}
