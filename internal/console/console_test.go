package console

import (
	"fmt"
	"strings"
	"testing"

	"codb"
)

func newTestConsole(t *testing.T) (*Console, *codb.Network, *strings.Builder) {
	t.Helper()
	nw, err := codb.NewNetworkFromConfig(`version 1
node a
  rel r(x int, s string)
end
node b
  rel r(x int, s string)
end
rule r1: a.r(x, s) <- b.r(x, s)
`)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	var out strings.Builder
	return New(nw, &out), nw, &out
}

func TestExecuteInsertShowUpdateQuery(t *testing.T) {
	c, _, out := newTestConsole(t)
	steps := []string{
		`insert b r 1 "ann"`,
		`insert b r 2 bob`,
		`show b r`,
		`update a`,
		`local a ans(x, s) :- r(x, s)`,
		`query a ans(s) :- r(x, s)`,
		`report a`,
		`peers a`,
		`topology`,
	}
	for _, s := range steps {
		if !c.Execute(s) {
			t.Fatalf("command %q ended the session", s)
		}
	}
	text := out.String()
	for _, want := range []string{
		"ok",
		"2 tuples",
		"update", "complete", "2 new tuples",
		`(1, "ann")`,
		`("bob")`,
		"outgoing:",
		"origin=a",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestExecuteCertainAndScoped(t *testing.T) {
	c, nw, out := newTestConsole(t)
	nw.Insert("b", "r", codb.Row(codb.Int(1), codb.Str("x")))
	if !c.Execute(`scoped a r`) {
		t.Fatal("scoped ended the session")
	}
	if !strings.Contains(out.String(), "scoped update") {
		t.Errorf("scoped output: %s", out.String())
	}
	rows, _ := nw.LocalQuery("a", `ans(x) :- r(x, s)`, codb.AllAnswers)
	if len(rows) != 1 {
		t.Errorf("scoped update did not materialise: %v", rows)
	}
	out.Reset()
	c.Execute(`certain a ans(x, s) :- r(x, s)`)
	if !strings.Contains(out.String(), "1 answers") {
		t.Errorf("certain output: %s", out.String())
	}
}

func TestExecuteQuitAndUnknown(t *testing.T) {
	c, _, out := newTestConsole(t)
	if c.Execute("quit") {
		t.Error("quit did not end the session")
	}
	if c.Execute("exit") {
		t.Error("exit did not end the session")
	}
	if !c.Execute("") {
		t.Error("empty line ended the session")
	}
	c.Execute("frobnicate everything")
	if !strings.Contains(out.String(), "unknown command") {
		t.Errorf("output: %s", out.String())
	}
	c.Execute("help")
	if !strings.Contains(out.String(), "reload") {
		t.Errorf("help output: %s", out.String())
	}
}

func TestExecuteUsageAndErrors(t *testing.T) {
	c, _, out := newTestConsole(t)
	bad := []string{
		"query a",           // missing query text
		"update",            // missing node
		"insert a",          // too few args
		"show a",            // too few args
		"show ghost r",      // unknown peer
		"peers",             // missing node
		"peers ghost",       // unknown peer
		"report",            // missing node
		"report ghost",      // unknown peer
		"scoped a",          // missing rels
		"reload",            // missing file
		"reload /nope/nope", // unreadable file
		"local ghost ans(x) :- r(x, s)",
		"query a broken query",
	}
	for _, cmdline := range bad {
		out.Reset()
		if !c.Execute(cmdline) {
			t.Fatalf("%q ended the session", cmdline)
		}
		text := out.String()
		if !strings.Contains(text, "usage:") && !strings.Contains(text, "error:") && !strings.Contains(text, "unknown peer") {
			t.Errorf("%q produced no diagnostic: %q", cmdline, text)
		}
	}
}

func TestExecuteReloadAndStats(t *testing.T) {
	c, nw, out := newTestConsole(t)
	newCfg := `version 2
node a
  rel r(x int, s string)
end
node b
  rel r(x int, s string)
end
rule swapped: b.r(x, s) <- a.r(x, s)
`
	c.ReadFile = func(path string) ([]byte, error) {
		if path != "new.codb" {
			return nil, fmt.Errorf("unexpected path %s", path)
		}
		return []byte(newCfg), nil
	}
	if !c.Execute("reload new.codb") {
		t.Fatal("reload ended the session")
	}
	if !strings.Contains(out.String(), "broadcast sent") {
		t.Errorf("reload output: %s", out.String())
	}
	// Eventually the topology flips.
	deadlineOK := false
	for i := 0; i < 1000; i++ {
		outLinks, _ := nw.Peer("b").Links()
		if len(outLinks) == 1 && outLinks[0] == "swapped" {
			deadlineOK = true
			break
		}
	}
	_ = deadlineOK // flip timing is asynchronous; reaching here without hanging is the point

	out.Reset()
	c.Execute("stats")
	if !strings.Contains(out.String(), "session") {
		t.Errorf("stats output: %s", out.String())
	}
}

func TestExecuteStorage(t *testing.T) {
	c, _, out := newTestConsole(t)
	for _, s := range []string{`insert b r 1 "ann"`, `storage b`, `storage nope`, `storage`} {
		if !c.Execute(s) {
			t.Fatalf("command %q ended the session", s)
		}
	}
	text := out.String()
	for _, want := range []string{
		"shards: 1",
		"commit LSN:",
		"  r:",
		"rows",
		"group commit: off",
		"no storage engine on nope",
		"usage: storage <node>",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestExecuteStorageDurableShowsSegments(t *testing.T) {
	nw := codb.NewNetwork()
	t.Cleanup(nw.Close)
	if _, err := nw.AddDurablePeer("d", t.TempDir(), "r(x int)"); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	c := New(nw, &out)
	for _, s := range []string{"insert d r 7", "storage d"} {
		if !c.Execute(s) {
			t.Fatalf("command %q ended the session", s)
		}
	}
	text := out.String()
	for _, want := range []string{"wal segments: 1", "spill: 0 hits"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestParseValue(t *testing.T) {
	cases := map[string]codb.Value{
		"true":  codb.Bool(true),
		"false": codb.Bool(false),
		"42":    codb.Int(42),
		"-7":    codb.Int(-7),
		"2.5":   codb.Float(2.5),
		`"hi"`:  codb.Str("hi"),
		"plain": codb.Str("plain"),
		"1.2.3": codb.Str("1.2.3"),
	}
	for tok, want := range cases {
		if got := ParseValue(tok); got != want {
			t.Errorf("ParseValue(%q) = %v, want %v", tok, got, want)
		}
	}
}
