// Package superpeer implements the paper's §4 experiment coordinator: a
// peer with additional functionality that reads a coordination-rules file,
// broadcasts it to every peer (re-broadcasts change the topology at
// runtime), triggers global updates on chosen nodes, and collects and
// aggregates the per-node statistics into a final report.
package superpeer

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"codb/internal/config"
	"codb/internal/core"
	"codb/internal/msg"
	"codb/internal/peer"
	"codb/internal/relation"
	"codb/internal/transport"
)

// SuperPeer drives a coDB network.
type SuperPeer struct {
	peer *peer.Peer
	name string
	addr string

	mu       sync.Mutex
	version  int
	cfg      *config.Config
	reports  map[string]map[string][]msg.UpdateReport // collectID -> node -> reports
	waiters  map[string]chan msg.StatsReport
	finished map[string]chan msg.StatsReport // update SID -> UpdateFinished feed
}

// Options configures a super-peer.
type Options struct {
	// Name is the super-peer's node name (default "super").
	Name string
	// Transport connects it to the network.
	Transport transport.Transport
	// Directory seeds dial addresses (TCP deployments).
	Directory map[string]string
	// Addr is this super-peer's own dial-back address, included in stats
	// requests so peers without a pipe can reply (TCP deployments).
	Addr string
}

// New starts a super-peer. It participates in the network as a rule-less
// mediator node.
func New(opts Options) (*SuperPeer, error) {
	name := opts.Name
	if name == "" {
		name = "super"
	}
	sp := &SuperPeer{
		name:     name,
		addr:     opts.Addr,
		reports:  make(map[string]map[string][]msg.UpdateReport),
		waiters:  make(map[string]chan msg.StatsReport),
		finished: make(map[string]chan msg.StatsReport),
	}
	p, err := peer.New(peer.Options{
		Name:      name,
		Transport: opts.Transport,
		Wrapper:   core.NewMediatorWrapper(relation.NewSchema()),
		Directory: opts.Directory,
	})
	if err != nil {
		return nil, err
	}
	sp.peer = p
	p.SetStatsSink(sp.sink)
	return sp, nil
}

// Peer exposes the underlying peer (pipes, discovery).
func (sp *SuperPeer) Peer() *peer.Peer { return sp.peer }

// Stop shuts the super-peer down.
func (sp *SuperPeer) Stop() { sp.peer.Stop() }

// sink consumes StatsReport and UpdateFinished traffic. It must not call
// back into the peer synchronously.
func (sp *SuperPeer) sink(rep msg.StatsReport) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if byNode, ok := sp.reports[rep.ID]; ok {
		byNode[rep.Node] = append(byNode[rep.Node], rep.Reports...)
	}
	if ch, ok := sp.waiters[rep.ID]; ok {
		select {
		case ch <- rep:
		default:
		}
	}
	if ch, ok := sp.finished[rep.ID]; ok {
		select {
		case ch <- rep:
		default:
		}
	}
}

// SetConfig installs a configuration for later broadcasts.
func (sp *SuperPeer) SetConfig(cfg *config.Config) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.cfg = cfg
	if cfg.Version > sp.version {
		sp.version = cfg.Version
	}
}

// Config returns the current configuration (nil if unset).
func (sp *SuperPeer) Config() *config.Config {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.cfg
}

// Broadcast ships the current configuration to every known peer; each peer
// drops old rules/pipes and installs the new ones (paper §4). Every
// successful call bumps the version so re-broadcasts reconfigure at
// runtime; a call without a configuration fails without burning a version
// (peers dedup by version, so a burnt number would make the next genuine
// broadcast look stale to anyone who heard it second-hand).
func (sp *SuperPeer) Broadcast() error {
	sp.mu.Lock()
	if sp.cfg == nil {
		sp.mu.Unlock()
		return fmt.Errorf("superpeer: no configuration set")
	}
	cfg := sp.cfg
	sp.version++
	version := sp.version
	sp.mu.Unlock()
	sp.peer.SetDirectory(cfg.Directory())
	text := cfg.String()
	// The flood never loops back here, so plant the snapshot joiners get.
	sp.peer.SetRulesSnapshot(version, text)
	sp.peer.Broadcast(&msg.RulesBroadcast{Version: version, Text: text})
	return nil
}

// AdmitJoin admits a node into the live network through the super-peer's
// own peer: directory delta flooded, rules + directory handed to the
// joiner. Returns the epoch assigned to the joiner.
func (sp *SuperPeer) AdmitJoin(node, addr string) (uint64, error) {
	return sp.peer.AdmitJoin(node, addr)
}

// RemoveNode floods a tombstone for a departing node (coordinated leave).
func (sp *SuperPeer) RemoveNode(node string) error {
	return sp.peer.RemoveNode(node)
}

// StartUpdate commands a node to initiate a global update and waits for its
// completion report.
func (sp *SuperPeer) StartUpdate(ctx context.Context, origin string) (msg.UpdateReport, error) {
	sid := msg.NewSID(sp.name)
	ch := make(chan msg.StatsReport, 1)
	sp.mu.Lock()
	sp.finished[sid] = ch
	sp.mu.Unlock()
	defer func() {
		sp.mu.Lock()
		delete(sp.finished, sid)
		sp.mu.Unlock()
	}()
	if err := sp.peer.SendTo(origin, &msg.StartUpdateCmd{SID: sid, ReplyTo: sp.name}); err != nil {
		return msg.UpdateReport{}, err
	}
	select {
	case rep := <-ch:
		if len(rep.Reports) == 0 {
			return msg.UpdateReport{}, fmt.Errorf("superpeer: empty completion report from %s", origin)
		}
		return rep.Reports[0], nil
	case <-ctx.Done():
		return msg.UpdateReport{}, fmt.Errorf("superpeer: update at %s: %w", origin, ctx.Err())
	}
}

// CollectStats floods a statistics request and gathers per-node reports
// until expect nodes responded or the context expires. It returns whatever
// arrived.
func (sp *SuperPeer) CollectStats(ctx context.Context, expect int) (map[string][]msg.UpdateReport, error) {
	id := msg.NewSID(sp.name)
	ch := make(chan msg.StatsReport, expect+8)
	sp.mu.Lock()
	sp.reports[id] = make(map[string][]msg.UpdateReport)
	sp.waiters[id] = ch
	sp.mu.Unlock()
	defer func() {
		sp.mu.Lock()
		delete(sp.waiters, id)
		sp.mu.Unlock()
	}()

	sp.peer.Broadcast(&msg.StatsRequest{ID: id, ReplyTo: sp.name, Addr: sp.addr})

	seen := make(map[string]bool)
	for len(seen) < expect {
		select {
		case rep := <-ch:
			seen[rep.Node] = true
		case <-ctx.Done():
			sp.mu.Lock()
			out := sp.reports[id]
			delete(sp.reports, id)
			sp.mu.Unlock()
			return out, fmt.Errorf("superpeer: collected %d of %d: %w", len(seen), expect, ctx.Err())
		}
	}
	sp.mu.Lock()
	out := sp.reports[id]
	delete(sp.reports, id)
	sp.mu.Unlock()
	return out, nil
}

// Aggregate is the final statistical report the paper's super-peer produces
// for one session across all nodes.
type Aggregate struct {
	SID          string
	Origin       string
	Kind         msg.Kind
	WallNanos    int64 // max end - min start across nodes
	Nodes        int
	TotalMsgs    int
	TotalBytes   int
	TotalTuples  int
	NewTuples    int
	LongestPath  int
	MsgsPerRule  map[string]int
	BytesPerRule map[string]int
	ClosedEarly  int
	ClosedForced int
	SkippedDepth int
}

// AggregateSessions merges per-node reports into per-session aggregates,
// sorted by session ID.
func AggregateSessions(byNode map[string][]msg.UpdateReport) []Aggregate {
	perSID := make(map[string]*Aggregate)
	starts := make(map[string]int64)
	ends := make(map[string]int64)
	for _, reps := range byNode {
		for _, rep := range reps {
			a := perSID[rep.SID]
			if a == nil {
				a = &Aggregate{
					SID:          rep.SID,
					Origin:       rep.Origin,
					Kind:         rep.Kind,
					MsgsPerRule:  make(map[string]int),
					BytesPerRule: make(map[string]int),
				}
				perSID[rep.SID] = a
				starts[rep.SID] = rep.StartUnixNano
				ends[rep.SID] = rep.EndUnixNano
			}
			a.Nodes++
			if rep.StartUnixNano < starts[rep.SID] {
				starts[rep.SID] = rep.StartUnixNano
			}
			if rep.EndUnixNano > ends[rep.SID] {
				ends[rep.SID] = rep.EndUnixNano
			}
			a.TotalMsgs += rep.SentMsgs
			a.TotalBytes += rep.SentBytes
			a.NewTuples += rep.NewTuples
			a.SkippedDepth += rep.SkippedDepth
			a.ClosedEarly += rep.LinksClosedEarly
			a.ClosedForced += rep.LinksClosedForced
			if rep.LongestPath > a.LongestPath {
				a.LongestPath = rep.LongestPath
			}
			for rule, n := range rep.MsgsPerRule {
				a.MsgsPerRule[rule] += n
			}
			for rule, n := range rep.BytesPerRule {
				a.BytesPerRule[rule] += n
			}
			for _, n := range rep.TuplesPerRule {
				a.TotalTuples += n
			}
		}
	}
	out := make([]Aggregate, 0, len(perSID))
	for sid, a := range perSID {
		a.WallNanos = ends[sid] - starts[sid]
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SID < out[j].SID })
	return out
}

// Render formats aggregates as the paper's "final statistical report".
func Render(aggs []Aggregate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-8s %-6s %9s %8s %10s %8s %8s %7s\n",
		"session", "origin", "kind", "wall(ms)", "msgs", "bytes", "tuples", "new", "maxpath")
	for _, a := range aggs {
		fmt.Fprintf(&b, "%-28s %-8s %-6s %9.2f %8d %10d %8d %8d %7d\n",
			trunc(a.SID, 28), a.Origin, a.Kind,
			float64(a.WallNanos)/float64(time.Millisecond),
			a.TotalMsgs, a.TotalBytes, a.TotalTuples, a.NewTuples, a.LongestPath)
	}
	return b.String()
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
