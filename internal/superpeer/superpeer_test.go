package superpeer

import (
	"context"
	"strings"
	"testing"
	"time"

	"codb/internal/config"
	"codb/internal/core"
	"codb/internal/msg"
	"codb/internal/peer"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/transport"
)

const netCfg = `version 1
node A
  rel r(x int)
end
node B
  rel r(x int)
end
node C
  rel r(x int)
end
rule r1: A.r(x) <- B.r(x)
rule r2: B.r(x) <- C.r(x)
`

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func buildNetwork(t *testing.T) (*transport.Bus, map[string]*peer.Peer, *SuperPeer) {
	t.Helper()
	bus := transport.NewBus()
	peers := make(map[string]*peer.Peer)
	for _, name := range []string{"A", "B", "C"} {
		p, err := peer.New(peer.Options{
			Name:      name,
			Transport: bus.MustJoin(name),
			Wrapper:   core.NewStoreWrapper(storage.MustOpenMem()),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Stop)
		peers[name] = p
	}
	sp, err := New(Options{Transport: bus.MustJoin("super")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sp.Stop)
	// The super-peer needs to know the peers exist (the bus resolves by
	// name; an empty address suffices).
	sp.Peer().SetDirectory(map[string]string{"A": "", "B": "", "C": ""})
	return bus, peers, sp
}

func waitRules(t *testing.T, p *peer.Peer, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(p.Rules()) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("peer %s never got %d rules (has %d)", p.Name(), want, len(p.Rules()))
}

func TestBroadcastInstallsRulesAndSchemas(t *testing.T) {
	_, peers, sp := buildNetwork(t)
	cfg, err := config.Parse(netCfg)
	if err != nil {
		t.Fatal(err)
	}
	sp.SetConfig(cfg)
	if err := sp.Broadcast(); err != nil {
		t.Fatal(err)
	}
	waitRules(t, peers["A"], 1)
	waitRules(t, peers["B"], 2)
	waitRules(t, peers["C"], 1)
	if peers["A"].Schema().Rel("r") == nil {
		t.Error("broadcast did not define A's schema")
	}
}

func TestSuperDrivenUpdateAndStats(t *testing.T) {
	_, peers, sp := buildNetwork(t)
	cfg, _ := config.Parse(netCfg)
	sp.SetConfig(cfg)
	if err := sp.Broadcast(); err != nil {
		t.Fatal(err)
	}
	waitRules(t, peers["B"], 2)
	peers["C"].Insert("r", relation.Tuple{relation.Int(1)}, relation.Tuple{relation.Int(2)})

	rep, err := sp.StartUpdate(ctxT(t), "A")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Origin != "A" {
		t.Errorf("report origin = %s", rep.Origin)
	}
	if peers["A"].Count("r") != 2 {
		t.Errorf("A.r = %d, want 2", peers["A"].Count("r"))
	}

	// The completion flood reaches the last nodes asynchronously; the
	// super-peer "can collect, at any given time" (paper §4), so poll
	// until every node's report includes the finished session.
	var aggs []Aggregate
	deadline := time.Now().Add(10 * time.Second)
	for {
		byNode, err := sp.CollectStats(ctxT(t), 3)
		if err != nil {
			t.Fatal(err)
		}
		aggs = AggregateSessions(byNode)
		if len(aggs) == 1 && aggs[0].Nodes == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("aggregates never complete: %+v", aggs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	a := aggs[0]
	if a.Nodes != 3 || a.TotalMsgs == 0 || a.NewTuples != 4 || a.LongestPath != 2 {
		t.Errorf("aggregate = %+v", a)
	}
	out := Render(aggs)
	if !strings.Contains(out, "A") || !strings.Contains(out, "update") {
		t.Errorf("render = %q", out)
	}
}

func TestRuntimeTopologyChange(t *testing.T) {
	_, peers, sp := buildNetwork(t)
	cfg1, _ := config.Parse(netCfg)
	sp.SetConfig(cfg1)
	sp.Broadcast()
	waitRules(t, peers["B"], 2)

	// New topology: A now imports directly from C; B drops out.
	cfg2, err := config.Parse(`version 2
node A
  rel r(x int)
end
node B
  rel r(x int)
end
node C
  rel r(x int)
end
rule rx: A.r(x) <- C.r(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	sp.SetConfig(cfg2)
	if err := sp.Broadcast(); err != nil {
		t.Fatal(err)
	}
	waitRules(t, peers["A"], 1)
	waitRules(t, peers["B"], 0)
	waitRules(t, peers["C"], 1)

	peers["C"].Insert("r", relation.Tuple{relation.Int(9)})
	if _, err := sp.StartUpdate(ctxT(t), "A"); err != nil {
		t.Fatal(err)
	}
	if peers["A"].Count("r") != 1 {
		t.Errorf("A.r = %d after reconfig update", peers["A"].Count("r"))
	}
	if peers["B"].Count("r") != 0 {
		t.Errorf("B.r = %d; B should be out of the loop", peers["B"].Count("r"))
	}
}

func TestBroadcastWithoutConfigFails(t *testing.T) {
	bus := transport.NewBus()
	sp, err := New(Options{Transport: bus.MustJoin("super")})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Stop()
	if err := sp.Broadcast(); err == nil {
		t.Error("broadcast without config accepted")
	}
	if sp.Config() != nil {
		t.Error("Config should be nil")
	}
}

// A failed Broadcast (no configuration) must not burn a version number:
// peers dedup broadcasts by version, so burnt numbers create gaps and make
// a later genuine broadcast carry a higher version than anything actually
// shipped. The first real broadcast after n failures must carry the
// configuration's version + 1, not + n + 1.
func TestFailedBroadcastDoesNotBurnVersion(t *testing.T) {
	_, peers, sp := buildNetwork(t)
	for i := 0; i < 3; i++ {
		if err := sp.Broadcast(); err == nil {
			t.Fatal("broadcast without config accepted")
		}
	}
	sp.mu.Lock()
	burnt := sp.version
	sp.mu.Unlock()
	if burnt != 0 {
		t.Fatalf("failed broadcasts burnt %d version numbers", burnt)
	}
	cfg, err := config.Parse(netCfg)
	if err != nil {
		t.Fatal(err)
	}
	sp.SetConfig(cfg)
	if err := sp.Broadcast(); err != nil {
		t.Fatal(err)
	}
	sp.mu.Lock()
	shipped := sp.version
	sp.mu.Unlock()
	if shipped != cfg.Version+1 {
		t.Fatalf("first real broadcast shipped version %d, want %d", shipped, cfg.Version+1)
	}
	waitRules(t, peers["B"], 2)
}

func TestCollectStatsTimeout(t *testing.T) {
	_, _, sp := buildNetwork(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Expect more nodes than exist: must time out but return what arrived.
	_, err := sp.CollectStats(ctx, 99)
	if err == nil {
		t.Error("expected timeout error")
	}
}

func TestStartUpdateUnknownOrigin(t *testing.T) {
	bus := transport.NewBus()
	sp, err := New(Options{Transport: bus.MustJoin("super")})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Stop()
	if _, err := sp.StartUpdate(ctxT(t), "nope"); err == nil {
		t.Error("update at unknown origin accepted")
	}
}

func TestAggregateSessionsEmpty(t *testing.T) {
	if got := AggregateSessions(nil); len(got) != 0 {
		t.Errorf("aggregates of nothing = %v", got)
	}
	if out := Render(nil); !strings.Contains(out, "session") {
		t.Errorf("header missing: %q", out)
	}
}

var _ = msg.KindUpdate
