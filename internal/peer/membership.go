// Runtime membership: the epoch-stamped peer directory and the wire-level
// join/leave protocol (msg.JoinRequest / JoinAccept / Leave /
// DirectoryDelta).
//
// Every directory entry carries the epoch under which its node was last
// admitted. Precedence is last-epoch-wins: a higher epoch always replaces a
// lower one, and within an epoch a tombstone beats a live entry — so a
// coordinated leave (tombstone at the leaver's own epoch) removes the node,
// while a later rejoin (admitted at epoch+1) resurrects it, possibly at a
// new address. Epoch 0 is the static bootstrap: Options.Directory seeds,
// configuration files, and legacy msg.Discovery gossip, which fill gaps but
// never override runtime facts. This replaces the old merge-only directory,
// which could neither forget a departed peer nor follow a rejoiner to a new
// address.
//
// Deltas are star-flooded: the peer that admits or removes a node sends the
// delta directly to every live peer it knows; receivers apply it locally
// and never forward, so there are no gossip loops and no delta storms.
package peer

import (
	"context"
	"fmt"
	"sort"

	"codb/internal/msg"
	"codb/internal/transport"
)

// dirEntry is the actor-owned directory record for one remote node.
type dirEntry struct {
	addr    string // dial address ("" on in-process buses)
	epoch   uint64 // incarnation the fact belongs to (0 = static bootstrap)
	deleted bool   // tombstone: the node left under this epoch
}

// applyDirEntry merges one membership fact into the directory, returning
// whether it changed anything. Facts about this node itself only ever
// advance selfEpoch (a peer never tombstones itself from hearsay).
func (p *Peer) applyDirEntry(e msg.DirEntry) bool {
	if e.Node == p.name {
		if !e.Deleted && e.Epoch > p.selfEpoch {
			p.selfEpoch = e.Epoch
		}
		return false
	}
	cur, ok := p.directory[e.Node]
	switch {
	case !ok:
		// First fact about the node.
	case e.Epoch > cur.epoch:
		// A newer incarnation wins outright, including tombstones.
	case e.Epoch == cur.epoch && e.Deleted && !cur.deleted:
		// A leave tombstones the node's own (current) incarnation.
	case e.Epoch == cur.epoch && e.Deleted == cur.deleted && cur.addr == "" && e.Addr != "":
		// Same-epoch refinement: learn a missing dial address.
	default:
		return false
	}
	p.directory[e.Node] = dirEntry{addr: e.Addr, epoch: e.Epoch, deleted: e.Deleted}
	return true
}

// applyDirectoryDelta merges a batch of membership facts and reacts to the
// transitions they cause: a node newly tombstoned is forgotten (pipe down,
// deficits written off, export watermarks reset), and a node that moved to
// a new address has its stale pipe dropped so the next send redials.
func (p *Peer) applyDirectoryDelta(entries []msg.DirEntry) {
	for _, e := range entries {
		was, had := p.directory[e.Node]
		if !p.applyDirEntry(e) {
			continue
		}
		now := p.directory[e.Node]
		switch {
		case now.deleted && !(had && was.deleted):
			p.forgetPeer(e.Node)
		case !now.deleted && had && !was.deleted && was.addr != now.addr && p.piped[e.Node]:
			// The live pipe points at the dead incarnation; sever it so
			// ensurePipe redials the new address.
			p.tr.Disconnect(e.Node)
			delete(p.piped, e.Node)
		}
	}
}

// forgetPeer severs a departed node: the pipe comes down, its in-flight
// deficits are written off in the termination detector, and the exporter
// watermarks toward it are reset — a future incarnation starts from a
// clean slate and receives a full (or durably-resumed) export.
func (p *Peer) forgetPeer(node string) {
	p.tr.Disconnect(node)
	delete(p.piped, node)
	p.dispatch(p.node.CompensatePeerLoss(node))
	p.node.ResetExportStateToward(node)
	p.persistExportState()
	if p.susp != nil {
		// A tombstoned peer is not expected back: stop judging its silence
		// (contrast with a suspicion down, which keeps the entry and the
		// watermarks so a comeback resumes incrementally).
		p.susp.forget(node)
	}
}

// directoryEntries snapshots the directory — tombstones included — plus
// this node's own live entry, sorted by node name for deterministic wire
// encoding.
func (p *Peer) directoryEntries() []msg.DirEntry {
	out := make([]msg.DirEntry, 0, len(p.directory)+1)
	for node, e := range p.directory {
		out = append(out, msg.DirEntry{Node: node, Addr: e.addr, Epoch: e.epoch, Deleted: e.deleted})
	}
	out = append(out, msg.DirEntry{Node: p.name, Addr: p.listenAddr(), Epoch: p.selfEpoch})
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// listenAddr returns this node's dialable listen address, or "" when the
// transport has none (in-process bus).
func (p *Peer) listenAddr() string {
	if t, ok := rawTransport(p.tr).(*transport.TCP); ok {
		return t.Addr()
	}
	return ""
}

// mergeBootstrapAddr merges a configuration-supplied address at the static
// bootstrap epoch: it may change another epoch-0 entry's address (a config
// refresh before any runtime membership), but never overrides runtime
// (epoch > 0) facts or tombstones.
func (p *Peer) mergeBootstrapAddr(node, addr string) {
	if node == p.name {
		return
	}
	if cur, ok := p.directory[node]; ok && cur.epoch == 0 && !cur.deleted && addr != "" && cur.addr != addr {
		p.directory[node] = dirEntry{addr: addr}
		return
	}
	p.applyDirEntry(msg.DirEntry{Node: node, Addr: addr})
}

// floodTargets lists every peer a flood should reach: acquaintances plus
// live (non-tombstoned) directory entries, sorted, self excluded.
func (p *Peer) floodTargets() []string {
	targets := make(map[string]bool)
	for _, a := range p.node.Acquaintances() {
		targets[a] = true
	}
	for node, e := range p.directory {
		if !e.deleted {
			targets[node] = true
		}
	}
	delete(targets, p.name)
	out := make([]string, 0, len(targets))
	for n := range targets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// admit records a joining node at a fresh epoch, floods the delta to every
// other live peer, and builds the JoinAccept handoff (rules snapshot plus
// full directory).
func (p *Peer) admit(node, addr string) *msg.JoinAccept {
	epoch := uint64(1)
	if cur, ok := p.directory[node]; ok && cur.epoch >= epoch {
		epoch = cur.epoch + 1
	}
	entry := msg.DirEntry{Node: node, Addr: addr, Epoch: epoch}
	p.applyDirectoryDelta([]msg.DirEntry{entry})
	delta := &msg.DirectoryDelta{Entries: []msg.DirEntry{entry}}
	for _, to := range p.floodTargets() {
		if to != node {
			p.sendTo(to, delta)
		}
	}
	return &msg.JoinAccept{
		Node:         p.name,
		Epoch:        epoch,
		RulesVersion: p.rulesVersion,
		RulesText:    p.rulesText,
		Directory:    p.directoryEntries(),
	}
}

// handleJoinRequest admits a joiner that dialed us and replies with the
// JoinAccept handoff over the (fresh) pipe.
func (p *Peer) handleJoinRequest(jr *msg.JoinRequest) {
	if jr.Node == "" || jr.Node == p.name {
		p.log.Warn("rejecting join request", "node", jr.Node)
		return
	}
	acc := p.admit(jr.Node, jr.Addr)
	p.log.Info("admitted peer", "node", jr.Node, "addr", jr.Addr, "epoch", acc.Epoch)
	if err := p.sendTo(jr.Node, acc); err != nil {
		p.log.Warn("join accept not delivered", "to", jr.Node, "err", err)
	}
}

// handleJoinAccept installs the admitter's handoff on the joining side:
// rules snapshot (if newer than ours), directory, and our assigned epoch —
// then releases the JoinVia waiter.
func (p *Peer) handleJoinAccept(acc *msg.JoinAccept) {
	if acc.Epoch > p.selfEpoch {
		p.selfEpoch = acc.Epoch
	}
	// Directory first: installing rules creates pipes, which need the
	// addresses the admitter just told us about.
	p.applyDirectoryDelta(acc.Directory)
	if acc.RulesText != "" && acc.RulesVersion > p.rulesVersion {
		p.applyBroadcast(acc.Node, &msg.RulesBroadcast{Version: acc.RulesVersion, Text: acc.RulesText})
	}
	if p.joinWait != nil {
		select {
		case p.joinWait <- acc:
		default:
		}
		p.joinWait = nil
	}
}

// ---- Public membership API ----

// AdmitJoin admits a node into the live network: it is recorded at a fresh
// epoch, the directory delta is flooded to every other peer, and the
// JoinAccept handoff (rules + directory) is sent to the joiner — dialing
// it at addr if no pipe exists yet. Returns the epoch assigned to the
// joiner. This is what the HTTP membership endpoint and the super-peer
// call on behalf of a joining process.
func (p *Peer) AdmitJoin(node, addr string) (uint64, error) {
	if node == "" || node == p.name {
		return 0, fmt.Errorf("peer %s: cannot admit %q", p.name, node)
	}
	var epoch uint64
	var err error
	if derr := p.do(func() {
		acc := p.admit(node, addr)
		epoch = acc.Epoch
		err = p.sendTo(node, acc)
	}); derr != nil {
		return 0, derr
	}
	if err != nil {
		return 0, fmt.Errorf("peer %s: admit %s: %w", p.name, node, err)
	}
	return epoch, nil
}

// RemoveNode removes a node from the live network on its behalf: a
// tombstone at the node's current epoch is applied locally (severing pipes
// and resetting export state) and flooded to every other peer, so nobody
// keeps dialing the departed address.
func (p *Peer) RemoveNode(node string) error {
	if node == "" || node == p.name {
		return fmt.Errorf("peer %s: cannot remove %q", p.name, node)
	}
	return p.do(func() {
		entry := msg.DirEntry{Node: node, Epoch: p.directory[node].epoch, Deleted: true}
		p.applyDirectoryDelta([]msg.DirEntry{entry})
		delta := &msg.DirectoryDelta{Entries: []msg.DirEntry{entry}}
		for _, to := range p.floodTargets() {
			if to != node {
				p.sendTo(to, delta)
			}
		}
	})
}

// JoinVia joins a live network through the peer listening at addr: dial it
// (with the transport's retry/backoff), learn its name from the handshake,
// send a JoinRequest, and wait for the JoinAccept handoff or ctx expiry.
// Requires an address-dialing transport (TCP).
func (p *Peer) JoinVia(ctx context.Context, addr string) error {
	dialer, ok := p.tr.(transport.AddrDialer)
	if !ok {
		return fmt.Errorf("peer %s: transport %T cannot join by address", p.name, p.tr)
	}
	admitter, err := dialer.ConnectAddr(addr)
	if err != nil {
		return fmt.Errorf("peer %s: join via %s: %w", p.name, addr, err)
	}
	wait := make(chan *msg.JoinAccept, 1)
	var sendErr error
	if derr := p.do(func() {
		p.joinWait = wait
		p.piped[admitter] = true
		sendErr = p.tr.Send(admitter, &msg.JoinRequest{Node: p.name, Addr: p.listenAddr()})
	}); derr != nil {
		return derr
	}
	if sendErr != nil {
		p.do(func() { p.joinWait = nil })
		return fmt.Errorf("peer %s: join via %s: %w", p.name, addr, sendErr)
	}
	select {
	case acc := <-wait:
		p.log.Info("joined network", "via", admitter, "epoch", acc.Epoch)
		return nil
	case <-ctx.Done():
		p.do(func() { p.joinWait = nil })
		return fmt.Errorf("peer %s: join via %s: %w", p.name, addr, ctx.Err())
	case <-p.stopped:
		return fmt.Errorf("peer %s: %w", p.name, ErrStopped)
	}
}

// Leave announces a coordinated departure: a Leave notice (tombstoning this
// node's own epoch on every receiver) goes to every live peer, and the
// outbox is flushed so the notice — and any in-flight session traffic —
// reaches the wire before the caller shuts the peer down.
func (p *Peer) Leave() error {
	if err := p.do(func() {
		notice := &msg.Leave{Node: p.name, Epoch: p.selfEpoch}
		for _, to := range p.floodTargets() {
			p.sendTo(to, notice)
		}
	}); err != nil {
		return err
	}
	p.FlushOutbox()
	return nil
}

// ApplyDirectoryEntries merges epoch-stamped membership facts, exactly as
// an inbound DirectoryDelta would (the embedded-network control plane).
func (p *Peer) ApplyDirectoryEntries(entries []msg.DirEntry) error {
	return p.do(func() { p.applyDirectoryDelta(entries) })
}

// SetRulesSnapshot records the rules text a broadcaster would hand to
// joiners. The super-peer needs this: its own Broadcast never loops back
// to its own peer, so the snapshot must be planted directly.
func (p *Peer) SetRulesSnapshot(version int, text string) {
	p.do(func() {
		if version >= p.rulesVersion {
			p.rulesVersion = version
			p.rulesText = text
		}
	})
}

// DirectoryEntry reports what this peer's directory says about a node:
// its dial address and whether it is tombstoned. ok is false when the node
// is unknown.
func (p *Peer) DirectoryEntry(node string) (addr string, deleted bool, ok bool) {
	p.do(func() {
		var e dirEntry
		e, ok = p.directory[node]
		addr, deleted = e.addr, e.deleted
	})
	return addr, deleted, ok
}

// DialFailures reports the transport's exhausted-dial counter; ok is false
// when the transport does not track dials (in-process bus). Stale-address
// regression tests assert this stays zero across churn.
func (p *Peer) DialFailures() (uint64, bool) {
	if t, isTCP := rawTransport(p.tr).(*transport.TCP); isTCP {
		return t.DialFailures(), true
	}
	return 0, false
}
