// Package peer is the runtime of one coDB node: it wires the algorithm
// state machine (internal/core) to a transport, the local database, the
// statistics module and the user-facing API — the Database Manager, JXTA
// Layer and Wrapper boxes of the paper's Figure 1, running as a single
// actor goroutine.
//
// All node state is owned by the actor loop; the public methods post
// commands into the loop and wait on reply channels, so the Peer is safe
// for concurrent use without any shared-state locking.
//
// Outbound traffic goes through transport.Outbox by default: sends are
// asynchronous per-destination enqueues (a slow pipe never stalls the
// actor), queued payloads coalesce into batch frames, and inbox bursts
// defer acknowledgements (core.DeferAcks) so n messages from one sender
// cost one counted ack. Delivery failures observed after the fact — a
// write error in a writer goroutine, or a pipe-down notification for
// frames already written into a dead connection — are routed back into
// the actor loop and compensated in the termination detector
// (core.CompensateLost / core.CompensatePeerLoss). Options.DisableOutbox
// restores the seed's synchronous per-message behaviour.
package peer

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"codb/internal/config"
	"codb/internal/core"
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/transport"
)

// ErrStopped is the sentinel wrapped by every method of a stopped peer
// (errors.Is), surfaced on the public codb API as ErrPeerClosed.
var ErrStopped = errors.New("peer stopped")

// Options configures a peer.
type Options struct {
	// Name is the node's network-unique name (required).
	Name string
	// Transport connects the peer to the network (required).
	Transport transport.Transport
	// Wrapper is the local storage; required (use core.NewStoreWrapper or
	// core.NewMediatorWrapper).
	Wrapper core.Wrapper
	// Directory seeds the node -> dial-address map used to establish
	// pipes (TCP); in-process buses resolve names themselves. Seed entries
	// carry the static bootstrap epoch 0; runtime membership facts
	// (msg.DirEntry) override them.
	Directory map[string]string
	// Epoch is this node's own directory epoch — the incarnation number
	// other peers know this node under. Every runtime join bumps it;
	// static bootstrap deployments leave it 0.
	Epoch uint64
	// MaxDepth, Eval, DisableDedup, Naive, FullExport tune the algorithm;
	// see core.Config.
	MaxDepth     int
	Eval         cq.EvalOptions
	DisableDedup bool
	Naive        bool
	FullExport   bool
	// DisableSessionSnapshots forces update-session evaluation back onto
	// the live wrapper (serial, under storage locks) instead of pinned
	// snapshots — the serial baseline of the B7 benchmark; see
	// core.Config.DisableSessionSnapshots.
	DisableSessionSnapshots bool
	// DisableOutbox bypasses the asynchronous outbound pipeline and sends
	// synchronously per message, as the seed implementation did (the
	// unbatched baseline of the batching benchmarks).
	DisableOutbox bool
	// QueryCacheSize bounds the concurrent read path's query-result cache
	// (0 selects core.DefaultQueryCacheSize). The read path exists only
	// when the Wrapper implements core.Snapshotter; other wrappers keep
	// serving reads through the actor loop.
	QueryCacheSize int
	// DisableReadPath forces every read through the actor loop, as the
	// seed implementation did — the baseline of the B3 benchmark.
	DisableReadPath bool
	// LinkPolicies maps rule IDs to propagation policy modes ("push",
	// "pull", "adaptive", "filter"); LinkFilters maps rule IDs to filter
	// predicates (comma-separated comparisons over the rule's frontier
	// variables). Policies are remembered and applied when the rule is
	// declared; see core.PolicyMode.
	LinkPolicies map[string]string
	LinkFilters  map[string]string
	// MaxStaleness bounds how long a pull link may stay hinted-stale
	// before the peer pulls on its own (0 = pull only on local reads or
	// explicit PullLink/CatchUp).
	MaxStaleness time.Duration
	// PullTimeout bounds how long a local query blocks on a triggered
	// pull before answering from the stale extent (0 selects
	// DefaultPullTimeout).
	PullTimeout time.Duration
	// SuspicionTimeout enables the heartbeat failure detector: a piped peer
	// silent for this long is suspected, and for twice this long declared
	// down — in-flight deficits written off, pipe severed, paced redials
	// armed — but never tombstoned: a partitioned peer is expected back
	// (see suspicion.go). 0 disables the detector. Meaningful with a
	// transport that emits heartbeats (transport.HeartbeatStarter, i.e.
	// TCP); other transports exempt every peer from silence judgment.
	SuspicionTimeout time.Duration
	// SuspicionInterval is the heartbeat emission and suspicion-scan period
	// (0 selects SuspicionTimeout / 4).
	SuspicionInterval time.Duration
	// Outbox tunes the outbound pipeline (queue bound, batch caps); the
	// OnDrop hook is owned by the peer, which uses it to compensate the
	// termination detector for undeliverable messages. A caller-supplied
	// OnDrop is still invoked, after the peer's bookkeeping.
	Outbox transport.OutboxOptions
	// Logger receives diagnostics; nil discards them.
	Logger *slog.Logger
}

// Peer is a running coDB node.
type Peer struct {
	name       string
	node       *core.Node
	tr         transport.Transport
	outbox     *transport.Outbox // == tr unless Options.DisableOutbox
	statePath  string            // export-state sidecar file ("" = not durable)
	stateSaved uint64            // node.ExportStateVersion() at the last save
	readPath   *readPath         // concurrent reads; nil when the wrapper cannot snapshot
	log        *slog.Logger

	// Propagation-policy runtime (see propagation.go). prop carries its own
	// mutex: the read path consults it off the actor loop.
	prop         *propState
	maxStaleness time.Duration
	pullTimeout  time.Duration

	susp *suspicion // failure detector; nil when disabled (actor-owned)

	inbox chan any // envelopes and commands, consumed by the actor loop

	// Actor-owned state (no locks; only the loop touches these).
	directory    map[string]dirEntry
	selfEpoch    uint64 // this node's own incarnation number
	piped        map[string]bool
	rulesVersion int
	rulesText    string          // concrete syntax of the installed config (join handoff)
	statsSeen    map[string]bool // stats-request flood dedup
	queries      map[string]*queryWaiter
	updates      map[string]chan msg.UpdateReport
	remoteCmds   map[string]string // sid -> ReplyTo for StartUpdateCmd
	statsSink    func(msg.StatsReport)
	linkPolicies map[string]linkPolicyCfg // remembered policies, re-applied on reconfiguration
	joinWait     chan *msg.JoinAccept     // armed by JoinVia, fired by handleJoinAccept

	stopped chan struct{}
}

type queryWaiter struct {
	answers chan relation.Tuple
	done    chan msg.UpdateReport
}

// inboxCap bounds the actor mailbox; transports enqueue via goroutine
// handoff so peers never deadlock on each other.
const inboxCap = 1024

// New starts a peer. The returned Peer is live: its transport handler is
// installed and the actor loop is running.
func New(opts Options) (*Peer, error) {
	if opts.Name == "" || opts.Transport == nil || opts.Wrapper == nil {
		return nil, fmt.Errorf("peer: Name, Transport and Wrapper are required")
	}
	// The capability callback is late-bound: the node is built before the
	// peer that answers it exists.
	var speaks func(string) bool
	node, err := core.NewNode(core.Config{
		Self:                    opts.Name,
		Wrapper:                 opts.Wrapper,
		MaxDepth:                opts.MaxDepth,
		Eval:                    opts.Eval,
		DisableDedup:            opts.DisableDedup,
		Naive:                   opts.Naive,
		FullExport:              opts.FullExport,
		DisableSessionSnapshots: opts.DisableSessionSnapshots,
		LinkSpeaksPull: func(node string) bool {
			if speaks == nil {
				return true
			}
			return speaks(node)
		},
		Clock: func() int64 { return time.Now().UnixNano() },
	})
	if err != nil {
		return nil, err
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	// Durable peers restore the incremental-export watermarks persisted
	// next to their database; failures only cost a full re-export.
	statePath := exportStatePath(opts.Wrapper)
	if statePath != "" {
		if state, err := loadExportState(statePath); err != nil {
			log.Warn("export state unreadable, starting full", "peer", opts.Name, "err", err)
		} else if len(state) > 0 {
			node.RestoreExportState(state)
		}
	}
	p := &Peer{
		name:       opts.Name,
		node:       node,
		tr:         opts.Transport,
		statePath:  statePath,
		log:        log.With("peer", opts.Name),
		inbox:      make(chan any, inboxCap),
		directory:  make(map[string]dirEntry),
		selfEpoch:  opts.Epoch,
		piped:      make(map[string]bool),
		statsSeen:  make(map[string]bool),
		queries:    make(map[string]*queryWaiter),
		updates:    make(map[string]chan msg.UpdateReport),
		remoteCmds: make(map[string]string),
		stopped:    make(chan struct{}),

		prop:         newPropState(),
		maxStaleness: opts.MaxStaleness,
		pullTimeout:  opts.PullTimeout,
	}
	speaks = p.speaksPull
	if p.pullTimeout <= 0 {
		p.pullTimeout = DefaultPullTimeout
	}
	if len(opts.LinkPolicies) > 0 || len(opts.LinkFilters) > 0 {
		p.linkPolicies = make(map[string]linkPolicyCfg)
		for id, mode := range opts.LinkPolicies {
			p.linkPolicies[id] = linkPolicyCfg{mode: mode, filter: opts.LinkFilters[id]}
		}
		for id, f := range opts.LinkFilters {
			if _, ok := p.linkPolicies[id]; !ok {
				p.linkPolicies[id] = linkPolicyCfg{mode: "push", filter: f}
			}
		}
	}
	for k, v := range opts.Directory {
		p.directory[k] = dirEntry{addr: v}
	}
	if sn, ok := opts.Wrapper.(core.Snapshotter); ok && !opts.DisableReadPath {
		p.readPath = newReadPath(opts.Name, sn, node, opts.Eval, opts.QueryCacheSize)
		p.readPath.record = p.noteLocalQueryReport
		p.readPath.beforeRead = p.maybePullForQuery
		p.refreshReadRules() // loop not yet running: safe here
	}
	if !opts.DisableOutbox {
		oo := opts.Outbox
		userDrop := oo.OnDrop
		oo.OnDrop = func(to string, payload msg.Payload, err error) {
			p.noteLostSend(to, payload, err)
			if userDrop != nil {
				userDrop(to, payload, err)
			}
		}
		p.outbox = transport.NewOutbox(opts.Transport, oo)
		p.tr = p.outbox
	}
	p.tr.SetHandler(func(env msg.Envelope) {
		select {
		case p.inbox <- env:
		case <-p.stopped:
		}
	})
	if pn, ok := p.tr.(transport.PipeNotifier); ok {
		pn.SetPipeDownHandler(p.notePipeDown)
	}
	// The detector must exist before the loop starts: the loop consults
	// p.susp on every envelope.
	if opts.SuspicionTimeout > 0 {
		p.susp = newSuspicion(opts.SuspicionTimeout, time.Now)
		interval := opts.SuspicionInterval
		if interval <= 0 {
			interval = opts.SuspicionTimeout / 4
		}
		if interval <= 0 {
			interval = time.Millisecond
		}
		if hb, ok := rawTransport(p.tr).(transport.HeartbeatStarter); ok {
			hb.StartHeartbeats(interval)
		}
		go p.suspicionLoop(interval)
	}
	go p.loop()
	return p, nil
}

// rawTransport unwraps the outbox pipeline and any fault-injection wrapper
// down to the concrete transport.
func rawTransport(tr transport.Transport) transport.Transport {
	for {
		switch x := tr.(type) {
		case *transport.Outbox:
			tr = x.Underlying()
		case *transport.Partitioner:
			tr = x.Underlying()
		default:
			return tr
		}
	}
}

// pipeDown reports an involuntarily failed pipe; the actor loop writes off
// the peer's outstanding termination-detector deficit.
type pipeDown struct{ peer string }

// notePipeDown posts a pipeDown into the actor loop without blocking the
// transport goroutine that reports it.
func (p *Peer) notePipeDown(peer string) {
	go func() {
		select {
		case p.inbox <- pipeDown{peer: peer}:
		case <-p.stopped:
		}
	}()
}

// lostSend reports an asynchronous delivery failure from the outbox; the
// actor loop compensates the termination detector for it.
type lostSend struct {
	to      string
	payload msg.Payload
	err     error
}

// noteLostSend posts a lostSend into the actor loop. It is called from an
// outbox writer goroutine and must not block it: the handoff runs in its
// own goroutine so a full inbox cannot stall (or deadlock with) the writer.
func (p *Peer) noteLostSend(to string, payload msg.Payload, err error) {
	go func() {
		select {
		case p.inbox <- lostSend{to: to, payload: payload, err: err}:
		case <-p.stopped:
		}
	}()
}

// noteLocalQueryReport records a bypassed query's synthetic report in the
// node's statistics module, so session-free local queries still appear in
// Reports() and super-peer aggregation. The post is strictly best-effort
// and non-blocking: when the inbox is saturated (a heavy update session in
// flight — exactly when readers must not re-couple to the loop), the
// report is dropped rather than parking a goroutine per query.
func (p *Peer) noteLocalQueryReport(rep msg.UpdateReport) {
	cmd := command{run: func() { p.node.NoteReport(rep) }, done: make(chan struct{})}
	select {
	case p.inbox <- cmd:
	case <-p.stopped:
	default:
	}
}

// Name returns the peer's node name.
func (p *Peer) Name() string { return p.name }

// command is posted into the actor loop; run executes with exclusive access
// to all peer state.
type command struct {
	run  func()
	done chan struct{}
}

// do runs fn inside the actor loop and waits for it.
func (p *Peer) do(fn func()) error {
	cmd := command{run: fn, done: make(chan struct{})}
	select {
	case p.inbox <- cmd:
	case <-p.stopped:
		return fmt.Errorf("peer %s: %w", p.name, ErrStopped)
	}
	select {
	case <-cmd.done:
		return nil
	case <-p.stopped:
		return fmt.Errorf("peer %s: %w", p.name, ErrStopped)
	}
}

func (p *Peer) loop() {
	var carried any // non-envelope item pulled out of the inbox by a burst
	for {
		item := carried
		carried = nil
		if item == nil {
			item = <-p.inbox
		}
		switch v := item.(type) {
		case msg.Envelope:
			carried = p.handleEnvelopeBurst(v)
		case lostSend:
			p.handleLostSend(v)
		case pipeDown:
			p.handlePipeDown(v)
		case command:
			v.run()
			close(v.done)
		case stopToken:
			return
		}
	}
}

// handlePipeDown compensates the termination detector for every in-flight
// message toward a failed pipe. An asynchronous write can succeed into a
// connection the far side has already abandoned — no send error is ever
// observed for such a message — so when the transport reports the pipe
// down, the outstanding per-destination deficit counts messages whose
// acknowledgements may never arrive.
//
// The notification travels through a goroutine, so it can be stale: if a
// pipe to the peer is live again by the time the event is processed (the
// peer redialled, or we re-established while the event was in flight),
// the blanket write-off is skipped — the peer is alive and acks for both
// old and re-sent messages can still arrive, whereas wiping the deficit
// would terminate sessions prematurely with data still in flight.
func (p *Peer) handlePipeDown(d pipeDown) {
	for _, live := range p.tr.Peers() {
		if live == d.peer {
			p.log.Warn("pipe down superseded by live pipe", "peer", d.peer)
			return
		}
	}
	p.log.Warn("pipe down", "peer", d.peer)
	delete(p.piped, d.peer)
	p.dispatch(p.node.CompensatePeerLoss(d.peer))
	if p.susp != nil {
		// The transport beat the detector to the verdict; recording it
		// arms the paced-redial heal path.
		p.susp.noteDown(d.peer)
	}
}

// stopToken ends the actor loop (posted by Stop).
type stopToken struct{}

// maxBurst bounds how many queued inbox items one burst may drain, so a
// firehose of inbound traffic cannot starve commands indefinitely.
const maxBurst = 256

// handleEnvelopeBurst processes one envelope plus every further envelope
// already queued in the inbox as a single activity period: per-message
// acknowledgements are deferred across the burst (core.DeferAcks) and
// flushed once at the end, coalescing a burst of n messages from one sender
// into one counted ack. Messages themselves are still handled — and their
// outbound results shipped — strictly in arrival order. The first
// non-envelope item pulled while draining is returned for the caller to
// process after the burst (it arrived after every envelope handled here).
// Deferral is a companion of the outbound pipeline: with the pipeline
// disabled, the peer keeps the seed's ack-per-message behaviour.
func (p *Peer) handleEnvelopeBurst(first msg.Envelope) (carried any) {
	if p.outbox == nil {
		p.handleEnvelope(first)
		return nil
	}
	p.node.DeferAcks(true)
	p.handleEnvelope(first)
	for i := 1; i < maxBurst && carried == nil; i++ {
		select {
		case item := <-p.inbox:
			if env, ok := item.(msg.Envelope); ok {
				p.handleEnvelope(env)
			} else {
				carried = item
			}
		default:
			carried = noMoreItems{}
		}
	}
	p.dispatch(p.node.FlushDeferred())
	if _, ok := carried.(noMoreItems); ok {
		return nil
	}
	return carried
}

// noMoreItems marks a burst that drained the inbox dry (vs. one ended by a
// non-envelope item that still needs processing).
type noMoreItems struct{}

// handleLostSend compensates the termination detector for a message the
// outbox accepted but could not deliver (pipe failure or disconnect with
// queued frames) — the asynchronous counterpart of sendSessionMsg's
// error path.
func (p *Peer) handleLostSend(l lostSend) {
	p.log.Warn("async send failed", "to", l.to, "err", l.err)
	delete(p.piped, l.to)
	if sid := sessionIDOf(l.payload); sid != "" && isBasic(l.payload) {
		p.dispatch(p.node.CompensateLost(sid, l.to, 1))
	}
}

// Stop shuts the peer down. Safe to call twice.
func (p *Peer) Stop() {
	select {
	case <-p.stopped:
		return
	default:
	}
	close(p.stopped)
	p.tr.Close()
	// Unblock the loop.
	select {
	case p.inbox <- stopToken{}:
	default:
	}
}

// handleEnvelope processes one inbound message inside the actor loop.
func (p *Peer) handleEnvelope(env msg.Envelope) {
	// Any traffic at all is liveness: reset the sender's suspicion timer,
	// and if it was declared down, its return is a heal.
	if p.susp != nil && env.From != p.name {
		if p.susp.observe(env.From) {
			p.healPeer(env.From)
		}
	}
	switch m := env.Payload.(type) {
	case *msg.RulesBroadcast:
		p.applyBroadcast(env.From, m)
	case *msg.StatsRequest:
		p.handleStatsRequest(env.From, m)
	case *msg.StatsReport:
		if p.statsSink != nil {
			p.statsSink(*m)
		}
	case *msg.StartUpdateCmd:
		p.handleStartUpdateCmd(env.From, m)
	case *msg.UpdateFinished:
		if p.statsSink != nil {
			// Super-peers consume these through the sink as well.
			p.statsSink(msg.StatsReport{ID: m.SID, Node: m.Node, Reports: []msg.UpdateReport{m.Report}})
		}
	case *msg.Discovery:
		p.mergeDiscovery(m)
	case *msg.JoinRequest:
		p.handleJoinRequest(m)
	case *msg.JoinAccept:
		p.handleJoinAccept(m)
	case *msg.Leave:
		// A coordinated leave tombstones the departing node's own
		// incarnation: same-epoch tombstones win over live entries.
		p.applyDirectoryDelta([]msg.DirEntry{{Node: m.Node, Epoch: m.Epoch, Deleted: true}})
	case *msg.DirectoryDelta:
		// Deltas arrive star-flooded by the admitting/removing peer and
		// are applied locally, never forwarded (no gossip loops).
		p.applyDirectoryDelta(m.Entries)
	case *msg.UpdateHint:
		p.handleUpdateHint(env.From, m)
	case *msg.PullRequest:
		p.handlePullRequest(env.From, m)
	case *msg.PullResponse:
		p.handlePullResponse(env.From, m)
	case *msg.LinkDemand:
		p.node.HandleLinkDemand(m.RuleID, m.Mode == 1)
	case *msg.Heartbeat:
		// Pure liveness: the observe above already reset the suspicion
		// timer, and a heartbeat carries nothing else.
	default:
		if d, ok := m.(*msg.SessionData); ok {
			// Feed the adaptive policy's cold-link detector before the
			// session machinery consumes the delivery.
			p.noteDataDelivery(d.RuleID)
		}
		res := p.node.Handle(env)
		p.dispatch(res)
	}
	// Update requests can adopt rules (core.handleRequest) and broadcasts
	// reconfigure: republish the read path's rule copy when that happened.
	p.refreshReadRules()
}

// dispatch ships a core Result: messages out, answers to query waiters,
// finished sessions to update waiters.
func (p *Peer) dispatch(res core.Result) {
	// Grouped per destination, so the outbox sees contiguous runs it can
	// coalesce into batch frames.
	for _, out := range res.GroupedOut() {
		p.sendSessionMsg(out)
	}
	for _, err := range res.Errors {
		p.log.Warn("eval error during session", "err", err)
	}
	// Answers must reach their waiter before Finished closes it.
	if len(res.Answers) > 0 {
		if w, ok := p.queries[res.AnswersSID]; ok {
			for _, a := range res.Answers {
				w.answers <- a
			}
		}
	}
	for _, f := range res.Finished {
		p.log.Debug("session finished", "sid", f.SID, "initiator", f.Initiator)
		// Materialising sessions advance the export watermarks; persist
		// them so a restarted peer resumes incrementally.
		if f.Report.Kind != msg.KindQuery {
			p.persistExportState()
		}
		if ch, ok := p.updates[f.SID]; ok {
			ch <- f.Report
			delete(p.updates, f.SID)
		}
		if w, ok := p.queries[f.SID]; ok {
			w.done <- f.Report
			close(w.answers)
			delete(p.queries, f.SID)
		}
		if replyTo, ok := p.remoteCmds[f.SID]; ok {
			delete(p.remoteCmds, f.SID)
			p.sendTo(replyTo, &msg.UpdateFinished{SID: f.SID, Node: p.name, Report: f.Report})
		}
	}
}

// sendSessionMsg sends one session message, establishing the pipe first and
// compensating the termination detector if the peer is unreachable.
func (p *Peer) sendSessionMsg(out core.Outbound) {
	if err := p.sendTo(out.To, out.Payload); err != nil {
		p.log.Warn("send failed", "to", out.To, "err", err)
		if sid := sessionIDOf(out.Payload); sid != "" && isBasic(out.Payload) {
			res := p.node.CompensateLost(sid, out.To, 1)
			p.dispatch(res)
		}
	}
}

// ensurePipe opens the pipe to a node if absent, gossiping our directory
// over fresh pipes (the paper's Figure 3 discovery).
func (p *Peer) ensurePipe(to string) error {
	if p.piped[to] {
		return nil
	}
	entry := p.directory[to]
	if entry.deleted {
		// Tombstoned peers are never dialed: a departed node's address
		// must not accumulate failed dial attempts.
		return fmt.Errorf("peer %s: %s has left the network", p.name, to)
	}
	if err := p.tr.Connect(to, entry.addr); err != nil {
		return err
	}
	p.piped[to] = true
	if p.susp != nil {
		p.susp.track(to)
	}
	p.tr.Send(to, &msg.DirectoryDelta{Entries: p.directoryEntries()})
	return nil
}

func (p *Peer) sendTo(to string, payload msg.Payload) error {
	if err := p.ensurePipe(to); err != nil {
		return err
	}
	err := p.tr.Send(to, payload)
	if err != nil {
		delete(p.piped, to)
	}
	return err
}

// mergeDiscovery applies a legacy address gossip map. Entries carry no
// epoch, so they are treated as bootstrap (epoch 0) facts: they fill gaps
// but can never override a runtime incarnation or resurrect a tombstone.
func (p *Peer) mergeDiscovery(d *msg.Discovery) {
	for node, addr := range d.Known {
		p.applyDirEntry(msg.DirEntry{Node: node, Addr: addr})
	}
}

func sessionIDOf(p msg.Payload) string {
	switch m := p.(type) {
	case *msg.SessionRequest:
		return m.SID
	case *msg.SessionData:
		return m.SID
	case *msg.LinkClose:
		return m.SID
	default:
		return ""
	}
}

// isBasic reports whether the payload counts in the termination detector's
// deficit.
func isBasic(p msg.Payload) bool {
	switch p.(type) {
	case *msg.SessionRequest, *msg.SessionData, *msg.LinkClose:
		return true
	default:
		return false
	}
}

// applyBroadcast installs a coordination-rules configuration (dropping old
// rules and pipes no longer backing any rule) and forwards the flood.
func (p *Peer) applyBroadcast(from string, b *msg.RulesBroadcast) {
	if b.Version <= p.rulesVersion {
		return
	}
	cfg, err := config.Parse(b.Text)
	if err != nil {
		p.log.Warn("bad rules broadcast", "err", err)
		return
	}
	p.rulesVersion = b.Version
	p.rulesText = b.Text
	if err := p.installConfig(cfg); err != nil {
		p.log.Warn("config install failed", "err", err)
	}
	// Forward the flood to everyone we know (dedup by version).
	for _, to := range p.floodTargets() {
		if to != from {
			p.sendTo(to, b)
		}
	}
}

// installConfig applies a parsed configuration: schema relations this node
// is missing are defined (when the wrapper supports DDL), the rule set is
// replaced, stale pipes are dropped and fresh ones created — exactly the
// paper's "drops old rules and pipes, and creates new ones, where
// necessary".
func (p *Peer) installConfig(cfg *config.Config) error {
	for node, addr := range cfg.Directory() {
		p.mergeBootstrapAddr(node, addr)
	}
	if decl := cfg.Node(p.name); decl != nil {
		if definer, ok := p.node.Wrapper().(interface {
			DefineRelation(def *relation.RelDef) error
		}); ok {
			have := p.node.Wrapper().Schema()
			for _, relName := range decl.Schema.Names() {
				if have.Rel(relName) == nil {
					def := decl.Schema.Rel(relName)
					attrs := make([]relation.Attr, len(def.Attrs))
					copy(attrs, def.Attrs)
					if err := definer.DefineRelation(&relation.RelDef{Name: def.Name, Attrs: attrs}); err != nil {
						return err
					}
				}
			}
		}
	}
	before := p.node.Acquaintances()
	if err := p.node.SetRules(cfg.RuleDefs()); err != nil {
		return err
	}
	after := make(map[string]bool)
	for _, a := range p.node.Acquaintances() {
		after[a] = true
	}
	// Drop pipes that no longer back any coordination rule.
	for _, old := range before {
		if !after[old] {
			p.tr.Disconnect(old)
			delete(p.piped, old)
			if p.susp != nil {
				p.susp.forget(old)
			}
		}
	}
	// Create pipes for the new acquaintances (paper §3: "When a node
	// starts, it creates pipes with those nodes, w.r.t. which it has
	// coordination rules").
	for a := range after {
		p.ensurePipe(a)
	}
	p.applyLinkPolicies()
	p.refreshReadRules()
	return nil
}

func (p *Peer) handleStatsRequest(from string, req *msg.StatsRequest) {
	if p.statsSeen[req.ID] {
		return
	}
	p.statsSeen[req.ID] = true
	if req.Addr != "" {
		p.applyDirEntry(msg.DirEntry{Node: req.ReplyTo, Addr: req.Addr})
	}
	if req.ReplyTo != p.name {
		p.sendTo(req.ReplyTo, &msg.StatsReport{ID: req.ID, Node: p.name, Reports: p.node.Reports()})
	}
	// Forward the flood.
	for _, acq := range p.node.Acquaintances() {
		if acq != from && acq != req.ReplyTo {
			p.sendTo(acq, req)
		}
	}
}

func (p *Peer) handleStartUpdateCmd(from string, cmd *msg.StartUpdateCmd) {
	sid := cmd.SID
	if sid == "" {
		sid = msg.NewSID(p.name)
	}
	res, err := p.node.StartUpdate(sid)
	if err != nil {
		p.log.Warn("remote update start failed", "err", err)
		return
	}
	replyTo := cmd.ReplyTo
	if replyTo == "" {
		replyTo = from
	}
	p.remoteCmds[sid] = replyTo
	p.dispatch(res)
}

// ---- Public API (all methods post into the actor loop) ----

// AddRule declares a coordination rule on this node.
func (p *Peer) AddRule(id, text string) error {
	var err error
	if derr := p.do(func() {
		err = p.node.AddRule(id, text)
		if err == nil {
			for _, a := range p.node.Acquaintances() {
				p.ensurePipe(a)
			}
			p.applyLinkPolicies()
		}
		p.refreshReadRules()
	}); derr != nil {
		return derr
	}
	return err
}

// ApplyConfig installs a configuration locally (as a broadcast from the
// super-peer would).
func (p *Peer) ApplyConfig(cfg *config.Config, version int) error {
	var err error
	if derr := p.do(func() {
		if version > p.rulesVersion {
			p.rulesVersion = version
			p.rulesText = cfg.String()
		}
		err = p.installConfig(cfg)
	}); derr != nil {
		return derr
	}
	return err
}

// SetDirectory merges dial addresses into the peer's directory at the
// static bootstrap epoch. Runtime membership facts (joins, tombstones —
// epoch > 0) take precedence and are never overwritten.
func (p *Peer) SetDirectory(dir map[string]string) {
	p.do(func() {
		for k, v := range dir {
			p.mergeBootstrapAddr(k, v)
		}
	})
}

// Insert adds tuples to a local relation (seeding workloads, console
// inserts).
func (p *Peer) Insert(rel string, tuples ...relation.Tuple) error {
	var err error
	if derr := p.do(func() {
		_, err = p.node.Wrapper().InsertMany(rel, tuples)
	}); derr != nil {
		return derr
	}
	return err
}

// Count returns a local relation's cardinality. With a snapshot-capable
// wrapper it reads the engine directly (short read lock, off the actor
// loop); see core.Snapshotter for the concurrency contract.
func (p *Peer) Count(rel string) int {
	if rp := p.readPath; rp != nil {
		return rp.wrapper().Count(rel)
	}
	var n int
	p.do(func() { n = p.node.Wrapper().Count(rel) })
	return n
}

// Tuples returns a snapshot of a local relation. Served from a pinned read
// view, off the actor loop, when the wrapper supports snapshots.
func (p *Peer) Tuples(rel string) []relation.Tuple {
	if rp := p.readPath; rp != nil {
		out := rp.view().Tuples(rel)
		for i, t := range out {
			out[i] = t.Clone()
		}
		return out
	}
	var out []relation.Tuple
	p.do(func() {
		p.node.Wrapper().Scan(rel, func(t relation.Tuple) bool {
			out = append(out, t.Clone())
			return true
		})
	})
	return out
}

// Schema returns the node's shared schema.
func (p *Peer) Schema() *relation.Schema {
	if rp := p.readPath; rp != nil {
		return rp.wrapper().Schema()
	}
	var s *relation.Schema
	p.do(func() { s = p.node.Wrapper().Schema() })
	return s
}

// RunUpdate starts a global update at this node and waits for its
// completion report.
func (p *Peer) RunUpdate(ctx context.Context) (msg.UpdateReport, error) {
	sid := msg.NewSID(p.name)
	ch := make(chan msg.UpdateReport, 1)
	var startErr error
	if err := p.do(func() {
		res, err := p.node.StartUpdate(sid)
		if err != nil {
			startErr = err
			return
		}
		p.updates[sid] = ch
		p.dispatch(res)
	}); err != nil {
		return msg.UpdateReport{}, err
	}
	if startErr != nil {
		return msg.UpdateReport{}, startErr
	}
	select {
	case rep := <-ch:
		return rep, nil
	case <-ctx.Done():
		p.do(func() { delete(p.updates, sid) })
		return msg.UpdateReport{}, fmt.Errorf("peer %s: update %s: %w", p.name, sid, ctx.Err())
	case <-p.stopped:
		return msg.UpdateReport{}, fmt.Errorf("peer %s: stopped during update", p.name)
	}
}

// RunScopedUpdate starts a query-dependent update at this node: only the
// data transitively relevant to the given relations is fetched, but it is
// materialised into the local databases along the way.
func (p *Peer) RunScopedUpdate(ctx context.Context, rels []string) (msg.UpdateReport, error) {
	sid := msg.NewSID(p.name)
	ch := make(chan msg.UpdateReport, 1)
	var startErr error
	if err := p.do(func() {
		res, err := p.node.StartScopedUpdate(sid, rels)
		if err != nil {
			startErr = err
			return
		}
		p.updates[sid] = ch
		p.dispatch(res)
	}); err != nil {
		return msg.UpdateReport{}, err
	}
	if startErr != nil {
		return msg.UpdateReport{}, startErr
	}
	select {
	case rep := <-ch:
		return rep, nil
	case <-ctx.Done():
		p.do(func() { delete(p.updates, sid) })
		return msg.UpdateReport{}, fmt.Errorf("peer %s: scoped update %s: %w", p.name, sid, ctx.Err())
	case <-p.stopped:
		return msg.UpdateReport{}, fmt.Errorf("peer %s: stopped during scoped update", p.name)
	}
}

// QueryStream starts a distributed query and returns a channel of streamed
// answers (closed at completion) plus a completion-report channel. A query
// with no relevant outgoing links — everything it reads is local, the
// steady state after a global update — is answered entirely on the
// concurrent read path (snapshot plus result cache), without entering the
// actor loop or the session machinery.
func (p *Peer) QueryStream(q *cq.Query, mode core.QueryMode) (<-chan relation.Tuple, <-chan msg.UpdateReport, error) {
	if rp := p.readPath; rp != nil {
		if answers, done, ok := rp.tryLocalStream(q, mode); ok {
			return answers, done, nil
		}
	}
	sid := msg.NewSID(p.name)
	w := &queryWaiter{answers: make(chan relation.Tuple, 1024), done: make(chan msg.UpdateReport, 1)}
	var startErr error
	if err := p.do(func() {
		p.queries[sid] = w
		res, err := p.node.StartQuery(sid, q, mode)
		if err != nil {
			startErr = err
			delete(p.queries, sid)
			return
		}
		p.dispatch(res)
	}); err != nil {
		return nil, nil, err
	}
	if startErr != nil {
		return nil, nil, startErr
	}
	return w.answers, w.done, nil
}

// Query runs a distributed query to completion and returns all answers.
func (p *Peer) Query(ctx context.Context, q *cq.Query, mode core.QueryMode) ([]relation.Tuple, error) {
	answers, done, err := p.QueryStream(q, mode)
	if err != nil {
		return nil, err
	}
	var out []relation.Tuple
	for {
		select {
		case a, ok := <-answers:
			if !ok {
				<-done
				return out, nil
			}
			out = append(out, a)
		case <-ctx.Done():
			return out, fmt.Errorf("peer %s: query: %w", p.name, ctx.Err())
		case <-p.stopped:
			return out, fmt.Errorf("peer %s: stopped during query", p.name)
		}
	}
}

// LocalQuery evaluates a query against local data only. With a
// snapshot-capable wrapper it runs on the concurrent read path: evaluation
// happens on the caller's goroutine over a pinned view, with results
// memoised in the LSN-invalidated query cache, so local queries neither
// wait for nor delay the actor loop.
func (p *Peer) LocalQuery(q *cq.Query, mode core.QueryMode) ([]relation.Tuple, error) {
	if rp := p.readPath; rp != nil {
		out, _, err := rp.localQuery(q, mode)
		return out, err
	}
	var (
		out []relation.Tuple
		err error
	)
	if derr := p.do(func() { out, err = p.node.LocalQuery(q, mode) }); derr != nil {
		return nil, derr
	}
	return out, err
}

// ReadStats returns the concurrent read path's query-cache counters; ok is
// false when the peer has no read path (wrapper without snapshots, or
// Options.DisableReadPath).
func (p *Peer) ReadStats() (stats core.QueryCacheStats, ok bool) {
	if p.readPath == nil {
		return core.QueryCacheStats{}, false
	}
	return p.readPath.stats(), true
}

// Running reports whether the peer's actor loop is still serving — the
// readiness signal of the HTTP gateway's /readyz.
func (p *Peer) Running() bool {
	select {
	case <-p.stopped:
		return false
	default:
		return true
	}
}

// WireStats returns the TCP transport's cumulative frame and byte counters
// (headers included, handshakes excluded); ok is false for peers not on a
// TCP transport. Safe off-loop: the transport reference is immutable and
// the counters are atomics.
func (p *Peer) WireStats() (frames, bytes uint64, ok bool) {
	t, isTCP := rawTransport(p.tr).(*transport.TCP)
	if !isTCP {
		return 0, 0, false
	}
	return t.FramesSent(), t.BytesSent(), true
}

// StorageStats returns the storage engine's per-shard report (row/byte
// counts per shard, WAL size, group-commit batching counters); ok is false
// for peers without an embedded storage engine (mediators). Safe to call
// concurrently with the actor loop: the engine takes its own locks.
func (p *Peer) StorageStats() (stats storage.DetailedStats, ok bool) {
	w, ok := p.node.Wrapper().(interface{ DB() *storage.DB })
	if !ok {
		return storage.DetailedStats{}, false
	}
	return w.DB().DetailedStats(), true
}

// ExportTotals returns the node's cumulative export counters — the roll-up
// of every completed session's report, never bounded by the reports ring.
func (p *Peer) ExportTotals() core.ExportTotals {
	var out core.ExportTotals
	p.do(func() { out = p.node.ExportTotals() })
	return out
}

// Reports returns the statistics module's accumulated per-session reports.
func (p *Peer) Reports() []msg.UpdateReport {
	var out []msg.UpdateReport
	p.do(func() { out = p.node.Reports() })
	return out
}

// ExportWatermarks reports each incoming link's persistent incremental-
// export LSN watermark (empty before the first materialising session and
// under FullExport).
func (p *Peer) ExportWatermarks() map[string]uint64 {
	var out map[string]uint64
	p.do(func() { out = p.node.ExportWatermarks() })
	return out
}

// persistExportState writes the export state to the sidecar file when the
// peer is durable and the state changed since the last save. Runs inside
// the actor loop.
func (p *Peer) persistExportState() {
	if p.statePath == "" {
		return
	}
	v := p.node.ExportStateVersion()
	if v == p.stateSaved {
		return
	}
	if err := saveExportState(p.statePath, p.node.ExportState()); err != nil {
		p.log.Warn("export state not persisted", "err", err)
		return
	}
	p.stateSaved = v
}

// ResetExportStateToward forgets this peer's incremental-export state for
// every rule importing into the given peer, forcing the next session to
// re-export those links in full. Callers use it when the importer's
// materialised data is known to be gone — e.g. it left the network and a
// fresh peer took its name — since the watermarks and fingerprints would
// otherwise suppress data the new importer never received.
func (p *Peer) ResetExportStateToward(peer string) {
	p.do(func() {
		p.node.ResetExportStateToward(peer)
		p.persistExportState()
	})
}

// Rules lists the node's coordination rules.
func (p *Peer) Rules() []*cq.Rule {
	var out []*cq.Rule
	p.do(func() { out = p.node.Rules() })
	return out
}

// Links describes the node's incoming and outgoing links (Figure 3).
func (p *Peer) Links() (outgoing, incoming []string) {
	p.do(func() {
		for _, r := range p.node.Outgoing() {
			outgoing = append(outgoing, r.ID)
		}
		for _, r := range p.node.Incoming() {
			incoming = append(incoming, r.ID)
		}
	})
	return outgoing, incoming
}

// Pipes lists the peers this node has live pipes with.
func (p *Peer) Pipes() []string { return p.tr.Peers() }

// OutboxStats returns the outbound pipeline's wire counters; ok is false
// when the pipeline is disabled (Options.DisableOutbox).
func (p *Peer) OutboxStats() (stats transport.OutboxStats, ok bool) {
	if p.outbox == nil {
		return transport.OutboxStats{}, false
	}
	return p.outbox.Stats(), true
}

// FlushOutbox blocks until every queued outbound frame has been written (or
// its pipe has failed); a no-op when the pipeline is disabled.
func (p *Peer) FlushOutbox() {
	if p.outbox != nil {
		p.outbox.Flush()
	}
}

// Discovered lists peers known through gossip that are not acquaintances —
// the paper's Figure 3 "discovered peers" panel.
func (p *Peer) Discovered() []string {
	var out []string
	p.do(func() {
		acq := make(map[string]bool)
		for _, a := range p.node.Acquaintances() {
			acq[a] = true
		}
		for node, e := range p.directory {
			if !acq[node] && node != p.name && !e.deleted {
				out = append(out, node)
			}
		}
	})
	return out
}

// SetStatsSink installs the consumer for StatsReport/UpdateFinished
// messages (used by the super-peer).
func (p *Peer) SetStatsSink(fn func(msg.StatsReport)) {
	p.do(func() { p.statsSink = fn })
}

// Broadcast sends a payload to every known live peer (super-peer floods).
func (p *Peer) Broadcast(payload msg.Payload) {
	p.do(func() {
		for _, node := range p.floodTargets() {
			p.sendTo(node, payload)
		}
	})
}

// SendTo sends a payload to one peer (super-peer commands).
func (p *Peer) SendTo(node string, payload msg.Payload) error {
	var err error
	if derr := p.do(func() { err = p.sendTo(node, payload) }); derr != nil {
		return derr
	}
	return err
}
