package peer

import (
	"io"
	"net"
	"testing"
	"time"

	"codb/internal/core"
	"codb/internal/msg"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/transport"
	"codb/internal/wire"
)

// TestPeerUpdateTerminatesOnOldVersionPeer is the end-to-end mixed-version
// scenario: a current peer runs a global update against an acquaintance
// that completes a valid handshake but then answers with frames from a
// protocol revision that was never negotiated. The wrong-version frame must
// fail the pipe through the normal pipe-down path, and the session must
// terminate via deficit compensation — no hang, no error — exactly as if
// the peer had departed.
func TestPeerUpdateTerminatesOnOldVersionPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		// Refuse any reconnection attempt immediately, so compensation for
		// the torn-down pipe does not wait out a handshake timeout.
		go func() {
			for {
				rc, err := ln.Accept()
				if err != nil {
					return
				}
				rc.Close()
			}
		}()
		if _, err := wire.ReadHello(c); err != nil {
			return
		}
		if err := wire.WriteHello(c, wire.Hello{Name: "B", Min: wire.MinVersion, Max: wire.MaxVersion}); err != nil {
			return
		}
		// Consume the session request, then answer at a version the
		// handshake never agreed on.
		if _, _, err := wire.ReadFrame(c); err != nil {
			return
		}
		body, tag, err := msg.AppendEnvelope(nil, msg.Envelope{From: "B", Payload: &msg.SessionAck{SID: "x", N: 1}})
		if err != nil {
			return
		}
		if err := wire.WriteFrame(c, wire.MaxVersion+1, byte(tag), body); err != nil {
			return
		}
		// Hold the socket open: termination must not depend on our EOF.
		io.Copy(io.Discard, c)
	}()

	db := storage.MustOpenMem()
	if err := db.DefineRelation(&relation.RelDef{Name: "r", Attrs: []relation.Attr{{Name: "a", Type: relation.TInt}}}); err != nil {
		t.Fatal(err)
	}
	tr, err := transport.NewTCP("A", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Options{
		Name:      "A",
		Transport: tr,
		Wrapper:   core.NewStoreWrapper(db),
		Directory: map[string]string{"B": ln.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	if err := p.AddRule("r1", `A.r(x) <- B.r(x)`); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	rep, err := p.RunUpdate(ctxT(t))
	if err != nil {
		t.Fatalf("update against old-version peer: %v", err)
	}
	if rep.Origin != "A" {
		t.Errorf("report = %+v", rep)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("termination took %v", elapsed)
	}
}
