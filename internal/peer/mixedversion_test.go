package peer

import (
	"io"
	"net"
	"testing"
	"time"

	"codb/internal/core"
	"codb/internal/msg"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/transport"
	"codb/internal/wire"
)

// TestPeerUpdateTerminatesOnOldVersionPeer is the end-to-end mixed-version
// scenario: a current peer runs a global update against an acquaintance
// that completes a valid handshake but then answers with frames from a
// protocol revision that was never negotiated. The wrong-version frame must
// fail the pipe through the normal pipe-down path, and the session must
// terminate via deficit compensation — no hang, no error — exactly as if
// the peer had departed.
func TestPeerUpdateTerminatesOnOldVersionPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		// Refuse any reconnection attempt immediately, so compensation for
		// the torn-down pipe does not wait out a handshake timeout.
		go func() {
			for {
				rc, err := ln.Accept()
				if err != nil {
					return
				}
				rc.Close()
			}
		}()
		if _, err := wire.ReadHello(c); err != nil {
			return
		}
		if err := wire.WriteHello(c, wire.Hello{Name: "B", Min: wire.MinVersion, Max: wire.MaxVersion}); err != nil {
			return
		}
		// Consume the session request, then answer at a version the
		// handshake never agreed on.
		if _, _, err := wire.ReadFrame(c); err != nil {
			return
		}
		body, tag, err := msg.AppendEnvelope(nil, msg.Envelope{From: "B", Payload: &msg.SessionAck{SID: "x", N: 1}})
		if err != nil {
			return
		}
		if err := wire.WriteFrame(c, wire.MaxVersion+1, byte(tag), body); err != nil {
			return
		}
		// Hold the socket open: termination must not depend on our EOF.
		io.Copy(io.Discard, c)
	}()

	db := storage.MustOpenMem()
	if err := db.DefineRelation(&relation.RelDef{Name: "r", Attrs: []relation.Attr{{Name: "a", Type: relation.TInt}}}); err != nil {
		t.Fatal(err)
	}
	tr, err := transport.NewTCP("A", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Options{
		Name:      "A",
		Transport: tr,
		Wrapper:   core.NewStoreWrapper(db),
		Directory: map[string]string{"B": ln.Addr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	if err := p.AddRule("r1", `A.r(x) <- B.r(x)`); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	rep, err := p.RunUpdate(ctxT(t))
	if err != nil {
		t.Fatalf("update against old-version peer: %v", err)
	}
	if rep.Origin != "A" {
		t.Errorf("report = %+v", rep)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("termination took %v", elapsed)
	}
}

// TestPullLinkDegradesToPushForOldPeer: a link configured pull whose
// importer only speaks V1 (negotiated before the pull-family tags existed)
// must degrade to eager push — the old peer receives plain SessionData,
// never a 0x20+ frame it cannot decode, the pipe stays up, and the update
// terminates normally. The exporter's link stats must report the
// configured policy as pull but the effective mode as push.
func TestPullLinkDegradesToPushForOldPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type observed struct {
		dataBindings int  // bindings received in SessionData frames for r1
		newTags      int  // frames with a pull-family tag (must stay 0)
		badVersion   bool // frames not at the negotiated V1
	}
	got := make(chan observed, 1)
	go func() {
		var o observed
		defer func() { got <- o }()
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		if _, err := wire.ReadHello(c); err != nil {
			return
		}
		// An old build: V1 is all it speaks.
		if err := wire.WriteHello(c, wire.Hello{Name: "B", Min: wire.V1, Max: wire.V1}); err != nil {
			return
		}
		ack := func(sid string) {
			body, tag, err := msg.AppendEnvelope(nil, msg.Envelope{From: "B", Payload: &msg.SessionAck{SID: sid, N: 1}})
			if err == nil {
				wire.WriteFrame(c, wire.V1, byte(tag), body)
			}
		}
		// handle processes one payload like a minimal V1 participant:
		// ack every basic message, count data bindings, stop at done.
		var handle func(p msg.Payload) (done bool)
		handle = func(p msg.Payload) bool {
			switch m := p.(type) {
			case *msg.Batch: // the outbox coalesces payloads per pipe
				for _, inner := range m.Payloads {
					if handle(inner) {
						return true
					}
				}
			case *msg.SessionRequest:
				ack(m.SID)
			case *msg.SessionData:
				if m.RuleID == "r1" {
					o.dataBindings += len(m.Bindings)
				}
				ack(m.SID)
			case *msg.LinkClose:
				ack(m.SID)
			case *msg.SessionDone:
				return true // quiescence reached the old peer
			}
			return false
		}
		for {
			h, body, err := wire.ReadFrame(c)
			if err != nil {
				return
			}
			if h.Version != wire.V1 {
				o.badVersion = true
			}
			if h.Type >= 0x20 {
				o.newTags++
				continue
			}
			env, err := msg.DecodeEnvelope(msg.Tag(h.Type), body)
			if err != nil {
				return
			}
			if handle(env.Payload) {
				return
			}
		}
	}()

	db := storage.MustOpenMem()
	if err := db.DefineRelation(&relation.RelDef{Name: "r", Attrs: []relation.Attr{{Name: "a", Type: relation.TInt}}}); err != nil {
		t.Fatal(err)
	}
	tr, err := transport.NewTCP("A", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Options{
		Name:         "A",
		Transport:    tr,
		Wrapper:      core.NewStoreWrapper(db),
		Directory:    map[string]string{"B": ln.Addr().String()},
		LinkPolicies: map[string]string{"r1": "pull"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	if err := p.AddRule("r1", `B.r(x) <- A.r(x)`); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("r", relation.Tuple{relation.Int(1)}, relation.Tuple{relation.Int(2)}, relation.Tuple{relation.Int(3)}); err != nil {
		t.Fatal(err)
	}

	if _, err := p.RunUpdate(ctxT(t)); err != nil {
		t.Fatalf("update across mixed-version pull link: %v", err)
	}

	select {
	case o := <-got:
		if o.newTags != 0 {
			t.Errorf("old peer received %d pull-family frames it cannot decode, want 0", o.newTags)
		}
		if o.badVersion {
			t.Error("frames arrived at a version other than the negotiated V1")
		}
		if o.dataBindings != 3 {
			t.Errorf("old peer received %d bindings over the degraded link, want 3 (eager push)", o.dataBindings)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("old peer never observed session completion")
	}

	st := p.PropagationStats()
	for _, l := range st.Links {
		if l.RuleID != "r1" {
			continue
		}
		if l.Policy != "pull" {
			t.Errorf("link policy = %q, want pull", l.Policy)
		}
		if l.Effective != "push" {
			t.Errorf("effective mode = %q, want push (importer speaks V1)", l.Effective)
		}
		if l.HintsSent != 0 {
			t.Errorf("exporter sent %d hints to a V1 importer, want 0", l.HintsSent)
		}
	}
}
