package peer

import (
	"sort"
	"testing"
	"time"

	"codb/internal/core"
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/relation"
	"codb/internal/transport"
)

func sortedKeys(ts []relation.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key()
	}
	sort.Strings(out)
	return out
}

func TestReadPathLocalQueryCaching(t *testing.T) {
	bus := transport.NewBus()
	p := newBusPeer(t, bus, "A", "r/2")
	if _, ok := p.ReadStats(); !ok {
		t.Fatal("store-backed peer has no read path")
	}
	if err := p.Insert("r", ints(1, 10), ints(2, 20)); err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery(`ans(x) :- r(x, y)`)

	first, err := p.LocalQuery(q, core.AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 {
		t.Fatalf("LocalQuery returned %d answers, want 2", len(first))
	}
	second, err := p.LocalQuery(q, core.AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := p.ReadStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats after repeat query: %+v, want 1 hit / 1 miss", st)
	}
	if len(second) != len(first) {
		t.Fatalf("cached answers differ: %d vs %d", len(second), len(first))
	}

	// A commit invalidates: the next query re-evaluates and sees new data.
	if err := p.Insert("r", ints(3, 30)); err != nil {
		t.Fatal(err)
	}
	third, err := p.LocalQuery(q, core.AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	if len(third) != 3 {
		t.Fatalf("post-commit query returned %d answers, want 3", len(third))
	}
	st, _ = p.ReadStats()
	if st.Misses != 2 || st.Stale != 1 {
		t.Fatalf("cache stats after invalidation: %+v, want 2 misses / 1 stale", st)
	}
}

func TestReadPathQueryStreamLocalBypass(t *testing.T) {
	bus := transport.NewBus()
	p := newBusPeer(t, bus, "A", "r/2")
	if err := p.Insert("r", ints(1, 10), ints(2, 20)); err != nil {
		t.Fatal(err)
	}
	// No rules at all: every query is local-only and must bypass the
	// session machinery (report kind is still a query report).
	answers, done, err := p.QueryStream(cq.MustParseQuery(`ans(x, y) :- r(x, y)`), core.AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range answers {
		n++
	}
	rep := <-done
	if n != 2 {
		t.Fatalf("local bypass streamed %d answers, want 2", n)
	}
	if rep.Kind != msg.KindQuery || rep.Origin != "A" {
		t.Fatalf("bypass report = %+v", rep)
	}
	if rep.CacheHits+rep.CacheMisses != 1 {
		t.Fatalf("bypass report cache counters = %d/%d, want exactly one lookup", rep.CacheHits, rep.CacheMisses)
	}
	if p.node.ActiveSessions() != nil {
		t.Fatalf("local bypass left sessions behind: %v", p.node.ActiveSessions())
	}
	// The synthetic report still reaches the statistics module (it is
	// posted into the actor loop asynchronously, so poll briefly).
	deadline := time.Now().Add(5 * time.Second)
	for {
		found := false
		for _, r := range p.Reports() {
			if r.SID == rep.SID {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bypass report never reached the statistics module")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReadPathQueryStreamStillDistributed(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A", "r/1")
	b := newBusPeer(t, bus, "B", "r/1")
	if err := b.Insert("r", ints(1), ints(2)); err != nil {
		t.Fatal(err)
	}
	rule := `A.r(x) <- B.r(x)`
	if err := a.AddRule("r1", rule); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRule("r1", rule); err != nil {
		t.Fatal(err)
	}
	// The query's relation is fed by an outgoing link: the bypass must
	// stand aside and the distributed session must fetch B's data.
	got, err := a.Query(ctxT(t), cq.MustParseQuery(`ans(x) :- r(x)`), core.AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("distributed query returned %d answers, want 2", len(got))
	}
}

// TestReadPathRuleChangeInvalidates ensures a rule reconfiguration flips
// the validity token even without any storage commit.
func TestReadPathRuleChangeInvalidates(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A", "r/1")
	newBusPeer(t, bus, "B", "r/1")
	q := cq.MustParseQuery(`ans(x) :- r(x)`)
	if _, err := a.LocalQuery(q, core.AllAnswers); err != nil {
		t.Fatal(err)
	}
	if err := a.AddRule("r1", `A.r(x) <- B.r(x)`); err != nil {
		t.Fatal(err)
	}
	if _, err := a.LocalQuery(q, core.AllAnswers); err != nil {
		t.Fatal(err)
	}
	st, _ := a.ReadStats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("cache stats across rule change: %+v, want 0 hits / 2 misses", st)
	}
}

// TestReadPathMatchesActorPath cross-checks the two read implementations.
func TestReadPathMatchesActorPath(t *testing.T) {
	bus := transport.NewBus()
	p := newBusPeer(t, bus, "A", "r/2")
	if err := p.Insert("r", ints(1, 10), ints(2, 20), ints(3, 10)); err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery(`ans(y) :- r(x, y)`)
	viaRead, err := p.LocalQuery(q, core.AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	var viaActor []relation.Tuple
	if err := p.do(func() { viaActor, err = p.node.LocalQuery(q, core.AllAnswers) }); err != nil {
		t.Fatal(err)
	}
	gotR, gotA := sortedKeys(viaRead), sortedKeys(viaActor)
	if len(gotR) != len(gotA) {
		t.Fatalf("read path %d answers, actor path %d", len(gotR), len(gotA))
	}
	for i := range gotR {
		if gotR[i] != gotA[i] {
			t.Fatalf("answer %d differs: %q vs %q", i, gotR[i], gotA[i])
		}
	}
	// Mediator wrappers cannot snapshot: the peer must fall back cleanly.
	schema := relation.NewSchema()
	if err := schema.Add(&relation.RelDef{Name: "m", Attrs: []relation.Attr{{Name: "a", Type: relation.TInt}}}); err != nil {
		t.Fatal(err)
	}
	med, err := New(Options{Name: "M", Transport: bus.MustJoin("M"), Wrapper: core.NewMediatorWrapper(schema)})
	if err != nil {
		t.Fatal(err)
	}
	defer med.Stop()
	if _, ok := med.ReadStats(); ok {
		t.Fatal("mediator peer claims a read path")
	}
	if got := med.Count("m"); got != 0 {
		t.Fatalf("mediator Count = %d", got)
	}
}
