package peer

import (
	"net"
	"testing"
	"time"

	"codb/internal/core"
	"codb/internal/msg"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/transport"
	"codb/internal/wire"
)

// TestHeartbeatsNeverReachV1Peer: with the suspicion detector on, the
// transport emits heartbeat frames — but only on pipes negotiated at V2 or
// later. An acquaintance that handshook at V1 predates the heartbeat tag and
// must never see one (it would fail the decode and tear the pipe down).
// Symmetrically, the detector must exempt the V1 peer from silence judgment:
// a peer that cannot send heartbeats is indistinguishable idle vs partitioned.
func TestHeartbeatsNeverReachV1Peer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type observed struct {
		newTags    int  // frames tagged 0x20+ (heartbeats included) — must stay 0
		badVersion bool // frames not at the negotiated V1
	}
	got := make(chan observed, 1)
	go func() {
		var o observed
		defer func() { got <- o }()
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		if _, err := wire.ReadHello(c); err != nil {
			return
		}
		// An old build: V1 is all it speaks.
		if err := wire.WriteHello(c, wire.Hello{Name: "B", Min: wire.V1, Max: wire.V1}); err != nil {
			return
		}
		ack := func(sid string) {
			body, tag, err := msg.AppendEnvelope(nil, msg.Envelope{From: "B", Payload: &msg.SessionAck{SID: sid, N: 1}})
			if err == nil {
				wire.WriteFrame(c, wire.V1, byte(tag), body)
			}
		}
		var handle func(p msg.Payload)
		handle = func(p msg.Payload) {
			switch m := p.(type) {
			case *msg.Batch:
				for _, inner := range m.Payloads {
					handle(inner)
				}
			case *msg.SessionRequest:
				ack(m.SID)
			case *msg.SessionData:
				ack(m.SID)
			case *msg.LinkClose:
				ack(m.SID)
			}
		}
		// Keep reading until the remote closes: heartbeats, if wrongly sent,
		// arrive after the session completes.
		for {
			h, body, err := wire.ReadFrame(c)
			if err != nil {
				return
			}
			if h.Version != wire.V1 {
				o.badVersion = true
			}
			if h.Type >= 0x20 {
				o.newTags++
				continue
			}
			env, err := msg.DecodeEnvelope(msg.Tag(h.Type), body)
			if err != nil {
				return
			}
			handle(env.Payload)
		}
	}()

	db := storage.MustOpenMem()
	if err := db.DefineRelation(&relation.RelDef{Name: "r", Attrs: []relation.Attr{{Name: "a", Type: relation.TInt}}}); err != nil {
		t.Fatal(err)
	}
	tr, err := transport.NewTCP("A", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Options{
		Name:              "A",
		Transport:         tr,
		Wrapper:           core.NewStoreWrapper(db),
		Directory:         map[string]string{"B": ln.Addr().String()},
		SuspicionTimeout:  120 * time.Millisecond,
		SuspicionInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	if err := p.AddRule("r1", `B.r(x) <- A.r(x)`); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("r", relation.Tuple{relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunUpdate(ctxT(t)); err != nil {
		t.Fatalf("update against V1 peer: %v", err)
	}

	// Let many heartbeat intervals and several suspicion timeouts elapse.
	// The V1 pipe must receive none of them, and the silent-but-exempt peer
	// must never be suspected.
	time.Sleep(400 * time.Millisecond)
	st := p.MembershipStats()
	if !st.Enabled {
		t.Fatal("suspicion detector not enabled")
	}
	if st.Suspects != 0 || st.Downs != 0 {
		t.Errorf("V1 peer judged by silence: %d suspects, %d downs", st.Suspects, st.Downs)
	}
	if state := st.States["B"]; state != "alive" {
		t.Errorf("V1 peer state = %q, want alive", state)
	}

	p.Stop() // closes the transport; the fake's read loop returns
	select {
	case o := <-got:
		if o.newTags != 0 {
			t.Errorf("V1 peer received %d frames tagged 0x20+ (heartbeats leak across versions), want 0", o.newTags)
		}
		if o.badVersion {
			t.Error("frames arrived at a version other than the negotiated V1")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("fake V1 peer never finished observing")
	}
}
