package peer

import (
	"fmt"
	"testing"
	"time"

	"codb/internal/core"
	"codb/internal/msg"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/transport"
)

const triCfg = `version 5
node A
  rel r(x int)
end
node B
  rel r(x int)
end
node C
  rel r(x int)
end
rule r1: A.r(x) <- B.r(x)
rule r2: B.r(x) <- C.r(x)
`

// TestBroadcastForwardFlood: a RulesBroadcast delivered to only one peer
// must reach the whole network through the forward flood (peers forward to
// their new acquaintances and directory entries).
func TestBroadcastForwardFlood(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A")
	b := newBusPeer(t, bus, "B")
	c := newBusPeer(t, bus, "C")
	_ = b
	_ = c

	// A raw sender peer connected only to A.
	sender := newBusPeer(t, bus, "seed")
	if err := sender.SendTo("A", &msg.RulesBroadcast{Version: 5, Text: triCfg}); err != nil {
		t.Fatal(err)
	}

	waitRulesCount := func(p *Peer, want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if len(p.Rules()) == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("%s has %d rules, want %d", p.Name(), len(p.Rules()), want)
	}
	waitRulesCount(a, 1)
	waitRulesCount(b, 2)
	waitRulesCount(c, 1) // reached via B's forward, not directly
}

// TestBroadcastVersionMonotonic: an older broadcast must not overwrite a
// newer configuration.
func TestBroadcastVersionMonotonic(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A")
	b := newBusPeer(t, bus, "B")
	_ = b
	sender := newBusPeer(t, bus, "seed")

	newCfg := `version 9
node A
  rel r(x int)
end
node B
  rel r(x int)
end
rule fresh: A.r(x) <- B.r(x)
`
	oldCfg := `version 3
node A
  rel r(x int)
end
node B
  rel r(x int)
end
rule stale: A.r(x) <- B.r(x)
`
	sender.SendTo("A", &msg.RulesBroadcast{Version: 9, Text: newCfg})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(a.Rules()) == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	sender.SendTo("A", &msg.RulesBroadcast{Version: 3, Text: oldCfg})
	time.Sleep(50 * time.Millisecond)
	rules := a.Rules()
	if len(rules) != 1 || rules[0].ID != "fresh" {
		t.Errorf("rules after stale broadcast = %v", rules)
	}
}

// TestBroadcastGarbageIgnored: an unparsable configuration must not break
// the peer or clear its rules.
func TestBroadcastGarbageIgnored(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A", "r/1")
	b := newBusPeer(t, bus, "B", "r/1")
	a.AddRule("r1", `A.r(x) <- B.r(x)`)
	b.AddRule("r1", `A.r(x) <- B.r(x)`)
	sender := newBusPeer(t, bus, "seed")
	sender.SendTo("A", &msg.RulesBroadcast{Version: 99, Text: "complete garbage"})
	time.Sleep(50 * time.Millisecond)
	if len(a.Rules()) != 1 {
		t.Errorf("garbage broadcast cleared the rules: %v", a.Rules())
	}
	// The peer still works.
	b.Insert("r", ints(1))
	if _, err := a.RunUpdate(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	if a.Count("r") != 1 {
		t.Error("update after garbage broadcast failed")
	}
}

// TestTCPStarNetwork: a hub and seven leaves, each with its own socket.
func TestTCPStarNetwork(t *testing.T) {
	mk := func(name string) (*Peer, *transport.TCP) {
		tr, err := transport.NewTCP(name, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		db := storage.MustOpenMem()
		db.DefineRelation(&relation.RelDef{Name: "r", Attrs: []relation.Attr{{Name: "a", Type: relation.TInt}}})
		p, err := New(Options{Name: name, Transport: tr, Wrapper: core.NewStoreWrapper(db)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Stop)
		return p, tr
	}
	hub, _ := mk("hub")
	const n = 7
	dir := make(map[string]string)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("leaf%d", i)
		leaf, tr := mk(name)
		dir[name] = tr.Addr()
		leaf.Insert("r", ints(i))
		rule := fmt.Sprintf(`hub.r(x) <- %s.r(x)`, name)
		hub.SetDirectory(map[string]string{name: tr.Addr()})
		if err := hub.AddRule(fmt.Sprintf("r%d", i), rule); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := hub.RunUpdate(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if hub.Count("r") != n {
		t.Errorf("hub.r = %d, want %d", hub.Count("r"), n)
	}
	if rep.LongestPath != 1 {
		t.Errorf("LongestPath = %d, want 1", rep.LongestPath)
	}
}

// TestPeerRestartOverTCP: a peer leaves and comes back on a fresh address
// (durable storage); updates fail over gracefully while it is gone and
// resume once the directory is refreshed — the paper's dynamic networks.
func TestPeerRestartOverTCP(t *testing.T) {
	dirB := t.TempDir()
	mk := func(name, dataDir string) (*Peer, *transport.TCP) {
		tr, err := transport.NewTCP(name, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		db, err := storage.Open(storage.Options{Dir: dataDir})
		if err != nil {
			t.Fatal(err)
		}
		if db.Rel("r") == nil {
			db.DefineRelation(&relation.RelDef{Name: "r", Attrs: []relation.Attr{{Name: "a", Type: relation.TInt}}})
		}
		p, err := New(Options{Name: name, Transport: tr, Wrapper: core.NewStoreWrapper(db)})
		if err != nil {
			t.Fatal(err)
		}
		return p, tr
	}
	a, _ := mk("A", "")
	defer a.Stop()
	b1, trB1 := mk("B", dirB)
	a.SetDirectory(map[string]string{"B": trB1.Addr()})
	a.AddRule("r1", `A.r(x) <- B.r(x)`)
	b1.AddRule("r1", `A.r(x) <- B.r(x)`)
	b1.Insert("r", ints(1))
	if _, err := a.RunUpdate(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	if a.Count("r") != 1 {
		t.Fatalf("A.r = %d", a.Count("r"))
	}

	// B goes down; the update must still terminate (compensation).
	b1.Stop()
	if _, err := a.RunUpdate(ctxT(t)); err != nil {
		t.Fatalf("update while B is down: %v", err)
	}

	// B restarts on a new port with its durable state plus new data.
	b2, trB2 := mk("B", dirB)
	defer b2.Stop()
	b2.AddRule("r1", `A.r(x) <- B.r(x)`)
	b2.Insert("r", ints(2))
	a.SetDirectory(map[string]string{"B": trB2.Addr()})
	if _, err := a.RunUpdate(ctxT(t)); err != nil {
		t.Fatalf("update after restart: %v", err)
	}
	if a.Count("r") != 2 {
		t.Errorf("A.r after restart = %d, want 2", a.Count("r"))
	}
}

// TestScopedUpdateOverPeer exercises RunScopedUpdate end to end.
func TestScopedUpdateOverPeer(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A", "r/1", "z/1")
	b := newBusPeer(t, bus, "B", "r/1", "z/1")
	for _, p := range []*Peer{a, b} {
		p.AddRule("rr", `A.r(x) <- B.r(x)`)
		p.AddRule("rz", `A.z(x) <- B.z(x)`)
	}
	b.Insert("r", ints(1))
	b.Insert("z", ints(2))
	rep, err := a.RunScopedUpdate(ctxT(t), []string{"r"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != msg.KindScoped {
		t.Errorf("kind = %v", rep.Kind)
	}
	if a.Count("r") != 1 || a.Count("z") != 0 {
		t.Errorf("scoped materialisation: r=%d z=%d", a.Count("r"), a.Count("z"))
	}
	if _, err := a.RunScopedUpdate(ctxT(t), nil); err == nil {
		t.Error("empty scope accepted")
	}
}
