package peer

import (
	"context"
	"testing"
	"time"

	"codb/internal/core"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/transport"
)

func newTCPPeer(t *testing.T, name string) (*Peer, *transport.TCP) {
	t.Helper()
	tr, err := transport.NewTCP(name, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	db := storage.MustOpenMem()
	if err := db.DefineRelation(&relation.RelDef{Name: "r", Attrs: []relation.Attr{{Name: "a", Type: relation.TInt}}}); err != nil {
		t.Fatal(err)
	}
	p, err := New(Options{Name: name, Transport: tr, Wrapper: core.NewStoreWrapper(db)})
	if err != nil {
		t.Fatal(err)
	}
	return p, tr
}

// TestUpdateCompensatesDeadPeer: an update started right after an
// acquaintance died must still terminate. This exercises the outbox's
// asynchronous failure path end to end: the first write into the dead
// pipe can succeed at the OS level, so termination relies on the
// pipe-down notification clearing the per-destination deficit
// (CompensatePeerLoss), not on a synchronous send error.
func TestUpdateCompensatesDeadPeer(t *testing.T) {
	a, _ := newTCPPeer(t, "A")
	defer a.Stop()
	b, trB := newTCPPeer(t, "B")
	a.SetDirectory(map[string]string{"B": trB.Addr()})
	if err := a.AddRule("r1", `A.r(x) <- B.r(x)`); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRule("r1", `A.r(x) <- B.r(x)`); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("r", relation.Tuple{relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := a.RunUpdate(ctx); err != nil {
		t.Fatalf("baseline update: %v", err)
	}
	if a.Count("r") != 1 {
		t.Fatalf("A.r = %d", a.Count("r"))
	}

	b.Stop()
	// No fail-over delay: the very next update races the dead pipe.
	for i := 0; i < 3; i++ {
		if _, err := a.RunUpdate(ctx); err != nil {
			t.Fatalf("update %d with B down: %v", i, err)
		}
	}
}

// TestOutboxStatsExposed: the peer surfaces its pipeline counters; with the
// pipeline disabled the accessor reports absence.
func TestOutboxStatsExposed(t *testing.T) {
	bus := transport.NewBus()
	db := storage.MustOpenMem()
	db.DefineRelation(&relation.RelDef{Name: "r", Attrs: []relation.Attr{{Name: "a", Type: relation.TInt}}})
	p, err := New(Options{Name: "A", Transport: bus.MustJoin("A"), Wrapper: core.NewStoreWrapper(db)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if _, ok := p.OutboxStats(); !ok {
		t.Error("outbox should be on by default")
	}

	db2 := storage.MustOpenMem()
	db2.DefineRelation(&relation.RelDef{Name: "r", Attrs: []relation.Attr{{Name: "a", Type: relation.TInt}}})
	p2, err := New(Options{Name: "B", Transport: bus.MustJoin("B"), Wrapper: core.NewStoreWrapper(db2), DisableOutbox: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Stop()
	if _, ok := p2.OutboxStats(); ok {
		t.Error("DisableOutbox should disable the pipeline")
	}
	p2.FlushOutbox() // no-op, must not panic
}
