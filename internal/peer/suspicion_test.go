package peer

import (
	"testing"
	"time"
)

// fakeClock drives the suspicion machine without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func expectTick(t *testing.T, s *suspicion, wantSuspects, wantDowns []string) {
	t.Helper()
	suspects, downs := s.tick(nil)
	if len(suspects) != len(wantSuspects) || (len(suspects) > 0 && suspects[0] != wantSuspects[0]) {
		t.Fatalf("tick suspects = %v, want %v", suspects, wantSuspects)
	}
	if len(downs) != len(wantDowns) || (len(downs) > 0 && downs[0] != wantDowns[0]) {
		t.Fatalf("tick downs = %v, want %v", downs, wantDowns)
	}
}

// The full lifecycle, including a flap: alive → suspect → alive (traffic
// resumed, no heal owed) → suspect → down → heal. Counters record every
// transition.
func TestSuspicionLifecycleAndFlap(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	s := newSuspicion(time.Second, clock.now)
	s.track("b")

	expectTick(t, s, nil, nil) // fresh peer: alive
	clock.advance(time.Second)
	expectTick(t, s, []string{"b"}, nil) // one timeout of silence: suspect
	expectTick(t, s, nil, nil)           // transition fires once

	// Flap: traffic resumes while suspect. Not a heal — nothing was torn
	// down yet, so nothing is owed.
	if s.observe("b") {
		t.Error("suspect -> alive reported as a heal")
	}
	clock.advance(999 * time.Millisecond)
	expectTick(t, s, nil, nil) // silence below the timeout again
	clock.advance(time.Millisecond)
	expectTick(t, s, []string{"b"}, nil) // suspect a second time
	clock.advance(time.Second)
	expectTick(t, s, nil, []string{"b"}) // two timeouts of silence: down

	// Redial pacing: down stamps lastDial, so the first redial waits one
	// full timeout, and each attempt re-arms the pacing.
	if due := s.redialDue(); len(due) != 0 {
		t.Errorf("redial due immediately after down: %v", due)
	}
	clock.advance(time.Second)
	if due := s.redialDue(); len(due) != 1 || due[0] != "b" {
		t.Errorf("redialDue = %v, want [b]", due)
	}
	if due := s.redialDue(); len(due) != 0 {
		t.Errorf("redialDue re-fired without pacing: %v", due)
	}

	// Traffic from a down peer is a heal.
	if !s.observe("b") {
		t.Error("down -> alive not reported as a heal")
	}
	if st := s.states(); st["b"] != "alive" {
		t.Errorf("state after heal = %q", st["b"])
	}
	if s.suspects != 2 || s.downs != 1 || s.heals != 1 {
		t.Errorf("counters = %d suspects, %d downs, %d heals; want 2, 1, 1",
			s.suspects, s.downs, s.heals)
	}
}

// A transport pipe-down report forces straight to down, idempotently.
func TestSuspicionNoteDown(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	s := newSuspicion(time.Second, clock.now)
	s.track("c")
	s.noteDown("c")
	s.noteDown("c")
	if s.downs != 1 {
		t.Errorf("downs = %d after idempotent noteDown, want 1", s.downs)
	}
	if st := s.states(); st["c"] != "down" {
		t.Errorf("state = %q, want down", st["c"])
	}
	if !s.observe("c") {
		t.Error("recovery from a forced down not reported as a heal")
	}
}

// Exempt peers (V1 pipes, heartbeat-less transports) are never judged by
// silence: each tick resets their timer instead.
func TestSuspicionExemptPeersNeverSuspected(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	s := newSuspicion(time.Second, clock.now)
	s.track("v1")
	s.track("v2")
	exempt := func(peer string) bool { return peer == "v1" }
	for i := 0; i < 5; i++ {
		clock.advance(time.Second)
		suspects, downs := s.tick(exempt)
		for _, p := range append(suspects, downs...) {
			if p == "v1" {
				t.Fatalf("exempt peer judged by silence at tick %d", i)
			}
		}
	}
	st := s.states()
	if st["v1"] != "alive" {
		t.Errorf("exempt peer state = %q, want alive", st["v1"])
	}
	if st["v2"] != "down" {
		t.Errorf("silent V2 peer state = %q, want down", st["v2"])
	}
}

// forget drops a tombstoned peer from tracking entirely.
func TestSuspicionForget(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	s := newSuspicion(time.Second, clock.now)
	s.track("gone")
	s.forget("gone")
	if st := s.states(); len(st) != 0 {
		t.Errorf("states after forget = %v", st)
	}
	clock.advance(10 * time.Second)
	expectTick(t, s, nil, nil)
	if due := s.redialDue(); len(due) != 0 {
		t.Errorf("forgotten peer still redialed: %v", due)
	}
}
