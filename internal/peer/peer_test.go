package peer

import (
	"context"
	"fmt"
	"testing"
	"time"

	"codb/internal/config"
	"codb/internal/core"
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/transport"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// newBusPeer builds a peer on the bus with relations declared as "name/arity"
// over ints.
func newBusPeer(t *testing.T, bus *transport.Bus, name string, rels ...string) *Peer {
	t.Helper()
	db := storage.MustOpenMem()
	for _, spec := range rels {
		relName := spec[:len(spec)-2]
		arity := int(spec[len(spec)-1] - '0')
		attrs := make([]relation.Attr, arity)
		for i := range attrs {
			attrs[i] = relation.Attr{Name: string(rune('a' + i)), Type: relation.TInt}
		}
		if err := db.DefineRelation(&relation.RelDef{Name: relName, Attrs: attrs}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := New(Options{Name: name, Transport: bus.MustJoin(name), Wrapper: core.NewStoreWrapper(db)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

func ints(vs ...int) relation.Tuple {
	t := make(relation.Tuple, len(vs))
	for i, v := range vs {
		t[i] = relation.Int(v)
	}
	return t
}

func TestPeerUpdateChainOverBus(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A", "r/1")
	b := newBusPeer(t, bus, "B", "r/1")
	c := newBusPeer(t, bus, "C", "r/1")
	for _, p := range []*Peer{a, b, c} {
		for id, text := range map[string]string{
			"r1": `A.r(x) <- B.r(x)`,
			"r2": `B.r(x) <- C.r(x)`,
		} {
			if err := p.AddRule(id, text); err != nil {
				// Foreign rules are rejected; that is fine.
				continue
			}
		}
	}
	if err := c.Insert("r", ints(1), ints(2)); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("r", ints(3)); err != nil {
		t.Fatal(err)
	}

	rep, err := a.RunUpdate(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.Count("r") != 3 {
		t.Errorf("A.r = %d tuples, want 3", a.Count("r"))
	}
	if rep.Origin != "A" || rep.EndUnixNano < rep.StartUnixNano {
		t.Errorf("report = %+v", rep)
	}
	if b.Count("r") != 3 {
		t.Errorf("B.r = %d tuples, want 3", b.Count("r"))
	}
}

func TestPeerDistributedQueryOverBus(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A", "r/1")
	b := newBusPeer(t, bus, "B", "r/1")
	a.AddRule("r1", `A.r(x) <- B.r(x)`)
	b.AddRule("r1", `A.r(x) <- B.r(x)`)
	b.Insert("r", ints(7))
	a.Insert("r", ints(1))

	got, err := a.Query(ctxT(t), cq.MustParseQuery(`ans(x) :- r(x)`), core.AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("answers = %v", got)
	}
	// The fetch must not have materialised into A's LDB.
	if a.Count("r") != 1 {
		t.Errorf("A.r = %d after query, want 1", a.Count("r"))
	}
	// Local query sees only local data.
	local, err := a.LocalQuery(cq.MustParseQuery(`ans(x) :- r(x)`), core.AllAnswers)
	if err != nil || len(local) != 1 {
		t.Errorf("local = %v, %v", local, err)
	}
}

func TestPeerConcurrentQueries(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A", "r/1", "z/1")
	b := newBusPeer(t, bus, "B", "r/1", "z/1")
	a.AddRule("r1", `A.r(x) <- B.r(x)`)
	a.AddRule("r2", `A.z(x) <- B.z(x)`)
	b.Insert("r", ints(1), ints(2))
	b.Insert("z", ints(10))

	type res struct {
		n   int
		err error
	}
	ch := make(chan res, 2)
	go func() {
		got, err := a.Query(ctxT(t), cq.MustParseQuery(`ans(x) :- r(x)`), core.AllAnswers)
		ch <- res{len(got), err}
	}()
	go func() {
		got, err := a.Query(ctxT(t), cq.MustParseQuery(`ans(x) :- z(x)`), core.AllAnswers)
		ch <- res{len(got), err}
	}()
	counts := map[int]bool{}
	for i := 0; i < 2; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		counts[r.n] = true
	}
	if !counts[2] || !counts[1] {
		t.Errorf("concurrent query answer counts = %v", counts)
	}
}

func TestPeerConfigBroadcastAndDynamicReconfig(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A")
	b := newBusPeer(t, bus, "B")
	c := newBusPeer(t, bus, "C")

	cfg1, err := config.Parse(`version 1
node A
  rel r(x int)
end
node B
  rel r(x int)
end
node C
  rel r(x int)
end
rule r1: A.r(x) <- B.r(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Peer{a, b, c} {
		if err := p.ApplyConfig(cfg1, 1); err != nil {
			t.Fatal(err)
		}
	}
	b.Insert("r", ints(1))
	c.Insert("r", ints(2))
	if _, err := a.RunUpdate(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	if a.Count("r") != 1 {
		t.Errorf("A.r = %d, want 1 (only B linked)", a.Count("r"))
	}

	// Reconfigure: now A imports from C instead.
	cfg2, err := config.Parse(`version 2
node A
  rel r(x int)
end
node B
  rel r(x int)
end
node C
  rel r(x int)
end
rule r2: A.r(x) <- C.r(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Peer{a, b, c} {
		if err := p.ApplyConfig(cfg2, 2); err != nil {
			t.Fatal(err)
		}
	}
	outgoing, _ := a.Links()
	if len(outgoing) != 1 || outgoing[0] != "r2" {
		t.Errorf("A outgoing after reconfig = %v", outgoing)
	}
	if _, err := a.RunUpdate(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	if a.Count("r") != 2 {
		t.Errorf("A.r = %d after second update, want 2", a.Count("r"))
	}
}

func TestPeerUpdateOverTCP(t *testing.T) {
	mk := func(name string) (*Peer, *transport.TCP) {
		tr, err := transport.NewTCP(name, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		db := storage.MustOpenMem()
		db.DefineRelation(&relation.RelDef{Name: "r", Attrs: []relation.Attr{{Name: "a", Type: relation.TInt}}})
		p, err := New(Options{Name: name, Transport: tr, Wrapper: core.NewStoreWrapper(db)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Stop)
		return p, tr
	}
	a, _ := mk("A")
	b, trB := mk("B")
	c, trC := mk("C")

	dir := map[string]string{"B": trB.Addr(), "C": trC.Addr()}
	a.SetDirectory(dir)
	b.SetDirectory(map[string]string{"C": trC.Addr()})

	a.AddRule("r1", `A.r(x) <- B.r(x)`)
	b.AddRule("r1", `A.r(x) <- B.r(x)`)
	b.AddRule("r2", `B.r(x) <- C.r(x)`)
	c.Insert("r", ints(11), ints(12))
	b.Insert("r", ints(13))

	if _, err := a.RunUpdate(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	if a.Count("r") != 3 {
		t.Errorf("A.r over TCP = %d, want 3", a.Count("r"))
	}
}

func TestPeerUpdateSurvivesDepartedNode(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A", "r/1")
	b := newBusPeer(t, bus, "B", "r/1")
	a.AddRule("r1", `A.r(x) <- B.r(x)`)
	b.Insert("r", ints(1))

	// First update establishes the topology.
	if _, err := a.RunUpdate(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	// B leaves; the next update must still terminate (compensation).
	b.Stop()
	rep, err := a.RunUpdate(ctxT(t))
	if err != nil {
		t.Fatalf("update with departed peer: %v", err)
	}
	if rep.Origin != "A" {
		t.Errorf("report = %+v", rep)
	}
}

func TestPeerDiscoveryGossip(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A", "r/1")
	b := newBusPeer(t, bus, "B", "r/1")
	c := newBusPeer(t, bus, "C", "r/1")
	// A knows C only through its directory; B learns of C via gossip when
	// A opens the pipe.
	a.SetDirectory(map[string]string{"C": ""})
	_ = c
	a.AddRule("r1", `A.r(x) <- B.r(x)`)
	b.AddRule("r1", `A.r(x) <- B.r(x)`)
	b.Insert("r", ints(1))
	if _, err := a.RunUpdate(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, d := range b.Discovered() {
			if d == "C" {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("B never discovered C; discovered = %v", b.Discovered())
}

func TestPeerStartUpdateCmd(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A", "r/1")
	b := newBusPeer(t, bus, "B", "r/1")
	sup := newBusPeer(t, bus, "SUPER")
	a.AddRule("r1", `A.r(x) <- B.r(x)`)
	b.AddRule("r1", `A.r(x) <- B.r(x)`)
	b.Insert("r", ints(5))

	done := make(chan msg.StatsReport, 1)
	sup.SetStatsSink(func(rep msg.StatsReport) { done <- rep })
	if err := sup.SendTo("A", &msg.StartUpdateCmd{SID: "remote-1", ReplyTo: "SUPER"}); err != nil {
		t.Fatal(err)
	}
	select {
	case rep := <-done:
		if rep.Node != "A" || rep.ID != "remote-1" {
			t.Errorf("finished report = %+v", rep)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("super never heard the update finish")
	}
	if a.Count("r") != 1 {
		t.Errorf("A.r = %d after remote-commanded update", a.Count("r"))
	}
}

func TestPeerRunUpdateTimeout(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A", "r/1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A lonely update finishes synchronously before the ctx check matters;
	// use a context already cancelled plus a peer with a live session.
	if _, err := a.RunUpdate(ctx); err != nil && ctx.Err() == nil {
		t.Fatal(err)
	}
}

func TestPeerValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("empty options accepted")
	}
	bus := transport.NewBus()
	p := newBusPeer(t, bus, "A", "r/1")
	if err := p.AddRule("bad", `B.r(x) <- C.r(x)`); err == nil {
		t.Error("foreign rule accepted")
	}
	if err := p.Insert("ghost", ints(1)); err == nil {
		t.Error("insert into unknown relation accepted")
	}
	p.Stop()
	p.Stop() // idempotent
	if err := p.Insert("r", ints(1)); err == nil {
		t.Error("insert after stop accepted")
	}
}

func TestPeerTuplesAndSchema(t *testing.T) {
	bus := transport.NewBus()
	p := newBusPeer(t, bus, "A", "r/2")
	p.Insert("r", ints(1, 2))
	got := p.Tuples("r")
	if len(got) != 1 || !got[0].Equal(ints(1, 2)) {
		t.Errorf("Tuples = %v", got)
	}
	if p.Schema().Rel("r") == nil {
		t.Error("Schema missing r")
	}
	if p.Name() != "A" {
		t.Error("Name wrong")
	}
	if len(p.Rules()) != 0 {
		t.Error("Rules nonempty")
	}
}

func TestPeerQueryStreamDelivery(t *testing.T) {
	bus := transport.NewBus()
	a := newBusPeer(t, bus, "A", "r/1")
	b := newBusPeer(t, bus, "B", "r/1")
	a.AddRule("r1", `A.r(x) <- B.r(x)`)
	for i := 0; i < 50; i++ {
		b.Insert("r", ints(i))
	}
	answers, done, err := a.QueryStream(cq.MustParseQuery(`ans(x) :- r(x)`), core.AllAnswers)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for range answers {
		count++
	}
	<-done
	if count != 50 {
		t.Errorf("streamed %d answers, want 50", count)
	}
}

func TestPeerManyPeersStar(t *testing.T) {
	bus := transport.NewBus()
	hub := newBusPeer(t, bus, "HUB", "r/1")
	const n = 8
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("L%d", i)
		leaf := newBusPeer(t, bus, name, "r/1")
		rule := fmt.Sprintf(`HUB.r(x) <- %s.r(x)`, name)
		id := fmt.Sprintf("r%d", i)
		hub.AddRule(id, rule)
		leaf.AddRule(id, rule)
		leaf.Insert("r", ints(i))
	}
	if _, err := hub.RunUpdate(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	if hub.Count("r") != n {
		t.Errorf("HUB.r = %d, want %d", hub.Count("r"), n)
	}
}
