package peer

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"codb/internal/core"
)

// Export-state persistence: the per-rule LSN watermarks and shipped-binding
// fingerprints of the incremental export machinery are written to a sidecar
// file in the peer's durability directory after every finished
// materialising session, and restored at construction. The file is pure
// optimisation state — core.Node validates every restored entry against the
// current rule text and storage LSN, so a missing, stale or corrupt file
// only degrades the next session to a full export, never to missing tuples.

// exportStateName is the sidecar file next to the storage snapshot/WAL.
const exportStateName = "exports.state"

// exportStateFile is the on-disk format (gob; binding keys are arbitrary
// bytes, which gob strings carry verbatim).
type exportStateFile struct {
	Version int
	Rules   map[string]core.ExportSnapshot
}

const exportStateVersion = 1

// exportStatePath returns the peer's export-state file path ("" when the
// peer has no durable store to keep it next to).
func exportStatePath(w core.Wrapper) string {
	sw, ok := w.(*core.StoreWrapper)
	if !ok || sw.DB().Dir() == "" {
		return ""
	}
	return filepath.Join(sw.DB().Dir(), exportStateName)
}

// loadExportState reads a state file; a missing file is an empty state and
// any decode failure is reported (the caller logs and starts fresh).
func loadExportState(path string) (map[string]core.ExportSnapshot, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("peer: open export state: %w", err)
	}
	defer f.Close()
	var file exportStateFile
	if err := gob.NewDecoder(f).Decode(&file); err != nil {
		return nil, fmt.Errorf("peer: decode export state: %w", err)
	}
	if file.Version != exportStateVersion {
		return nil, fmt.Errorf("peer: export state version %d unsupported", file.Version)
	}
	return file.Rules, nil
}

// saveExportState atomically writes the state file (tmp + rename).
func saveExportState(path string, rules map[string]core.ExportSnapshot) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("peer: write export state: %w", err)
	}
	err = gob.NewEncoder(f).Encode(exportStateFile{Version: exportStateVersion, Rules: rules})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("peer: write export state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("peer: rename export state: %w", err)
	}
	return nil
}
