package peer

import (
	"sync"
	"time"

	"codb/internal/core"
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/relation"
)

// wrapper returns the snapshotter as the Wrapper it is (only wrappers
// implement core.Snapshotter), for thread-safe point reads — Count and
// Schema go straight to the storage engine's short-lock methods instead of
// pinning (and possibly rebuilding) a whole-database snapshot.
func (rp *readPath) wrapper() core.Wrapper { return rp.snap.(core.Wrapper) }

// readPath is the peer's concurrent read subsystem: queries served off the
// actor loop.
//
// The seed implementation funnelled every read — LocalQuery, Count, Tuples
// — through the peer's single actor goroutine, so one long update session
// (or one slow query evaluation) stalled every reader behind it. When the
// wrapper can pin snapshots (core.Snapshotter; the embedded storage engine
// can), the peer instead serves reads from immutable views taken at the
// current commit LSN: any number of queries evaluate concurrently with the
// actor loop, with each other, and with committing writers. Writes keep
// serialising through the loop, unchanged.
//
// Results are memoised in a bounded query-result cache keyed by the
// normalized query plus answer mode and validated against the pair
// (storage commit LSN, rule-set version): any commit or rule broadcast
// implicitly invalidates every older entry, so a cached answer is always
// exactly what evaluating the query right now would return.
type readPath struct {
	name  string
	snap  core.Snapshotter
	node  *core.Node // only the atomic RuleSetVersion is touched off-loop
	eval  cq.EvalOptions
	cache *core.QueryCache
	// lsn reads the wrapper's current commit LSN without pinning a
	// snapshot (nil when the wrapper cannot; hits then pin a view).
	lsn func() uint64

	// record posts a bypassed query's synthetic report to the statistics
	// module (set by the peer; never blocks the reader).
	record func(msg.UpdateReport)
	// beforeRead runs on the reader's goroutine ahead of every local query
	// (set by the peer): it counts read demand per outgoing link and pulls
	// stale lazy links so the query observes fresh data. Nil-safe.
	beforeRead func(*cq.Query)

	// outgoing is the actor loop's published copy of the node's outgoing
	// rules at rule-set version ver, consulted by the local-only query
	// bypass. Written by the loop (refresh), read by query goroutines.
	mu       sync.RWMutex
	outgoing []*cq.Rule
	ver      uint64
}

func newReadPath(name string, snap core.Snapshotter, node *core.Node, eval cq.EvalOptions, cacheSize int) *readPath {
	rp := &readPath{
		name:  name,
		snap:  snap,
		node:  node,
		eval:  eval,
		cache: core.NewQueryCache(cacheSize),
	}
	// Cheap validity probe for the cache-hit path: when the wrapper
	// exposes its commit LSN directly (the storage engine does, via
	// ChangeTracker), a hit costs one atomic-ish LSN read instead of
	// pinning a whole-database snapshot.
	if tr, ok := snap.(interface{ LSN() uint64 }); ok {
		rp.lsn = tr.LSN
	}
	return rp
}

// refreshReadRules republishes the outgoing-rule copy after a rule-set
// mutation. Must run inside the actor loop (rules only mutate there, so
// version and copy are taken consistently); a no-op when the version is
// already current, which makes it cheap enough to call after every
// envelope.
func (p *Peer) refreshReadRules() {
	rp := p.readPath
	if rp == nil {
		return
	}
	ver := p.node.RuleSetVersion()
	rp.mu.RLock()
	cur := rp.ver
	rp.mu.RUnlock()
	if cur == ver {
		return
	}
	out := append([]*cq.Rule(nil), p.node.Outgoing()...)
	rp.mu.Lock()
	rp.outgoing, rp.ver = out, ver
	rp.mu.Unlock()
}

// view pins a fresh read view.
func (rp *readPath) view() core.ReadView { return rp.snap.ReadSnapshot() }

// localQuery evaluates a query over a pinned view, consulting the result
// cache first. hit reports whether the cache answered. A hit validates
// against the engine's current commit LSN without pinning a snapshot; a
// snapshot is taken (and the entry stamped with *its* LSN) only when the
// query must actually evaluate.
func (rp *readPath) localQuery(q *cq.Query, mode core.QueryMode) (answers []relation.Tuple, hit bool, err error) {
	if rp.beforeRead != nil {
		rp.beforeRead(q)
	}
	key := core.CacheKey(q, mode)
	ver := rp.node.RuleSetVersion()
	var view core.ReadView
	var lsnNow uint64
	if rp.lsn != nil {
		lsnNow = rp.lsn()
	} else {
		view = rp.view()
		lsnNow = view.LSN()
	}
	if ans, ok := rp.cache.Get(key, lsnNow, ver); ok {
		return ans, true, nil
	}
	if view == nil {
		view = rp.view()
	}
	ans, err := core.EvalQuery(q, view, mode, rp.eval)
	if err != nil {
		return nil, false, err
	}
	// The cache keeps its own copy of the slice: callers own (and may
	// mutate) the one returned to them, on hit and miss alike.
	rp.cache.Put(key, view.LSN(), ver, append([]relation.Tuple(nil), ans...))
	return ans, false, nil
}

// tryLocalStream serves a distributed-query call entirely from the read
// path when no outgoing link is relevant to the query — the common case
// after a global update has materialised everything — so the session
// machinery (and the actor loop) is never involved. ok is false when the
// query needs remote data, fails validation (the actor path surfaces the
// error), or the published rule copy is stale; callers then fall through
// to the ordinary session start.
func (rp *readPath) tryLocalStream(q *cq.Query, mode core.QueryMode) (<-chan relation.Tuple, <-chan msg.UpdateReport, bool) {
	if err := q.Validate(); err != nil {
		return nil, nil, false
	}
	rp.mu.RLock()
	outgoing, ver := rp.outgoing, rp.ver
	rp.mu.RUnlock()
	if ver != rp.node.RuleSetVersion() {
		// Rules changed and the loop has not republished yet: be
		// conservative, a relevant link may have just appeared.
		return nil, nil, false
	}
	if len(cq.Closure(q.Relations(), outgoing)) > 0 {
		return nil, nil, false
	}
	done := make(chan msg.UpdateReport, 1)
	rep := msg.UpdateReport{
		SID:           msg.NewSID(rp.name),
		Kind:          msg.KindQuery,
		Origin:        rp.name,
		StartUnixNano: time.Now().UnixNano(),
	}
	ans, hit, err := rp.localQuery(q, mode)
	if err != nil {
		rep.EvalErrors++
	}
	if hit {
		rep.CacheHits++
	} else {
		rep.CacheMisses++
	}
	// Full buffering: the consumer can abandon the stream without leaking
	// a goroutine or blocking anything.
	answers := make(chan relation.Tuple, len(ans))
	for _, a := range ans {
		answers <- a
	}
	close(answers)
	rep.EndUnixNano = time.Now().UnixNano()
	if rp.record != nil {
		rp.record(rep)
	}
	done <- rep
	return answers, done, true
}

// stats returns the cache counters.
func (rp *readPath) stats() core.QueryCacheStats { return rp.cache.Stats() }
