package peer

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"codb/internal/core"
	"codb/internal/cq"
	"codb/internal/msg"
	"codb/internal/transport"
	"codb/internal/wire"
)

// DefaultPullTimeout bounds how long a local query blocks on a triggered
// pull before answering from the stale extent.
const DefaultPullTimeout = 2 * time.Second

// coldDeliveries is the adaptive policy's demotion threshold: after this
// many consecutive pushed data deliveries with zero local reads of the
// link's head relations, the importer signals the exporter to go lazy.
const coldDeliveries = 2

// maxStalenessSamples bounds the retained staleness-at-pull measurements.
const maxStalenessSamples = 4096

// pullResult is delivered to a synchronous pull waiter.
type pullResult struct {
	fresh int
	err   error
}

// staleLink is the importer-side record of one hinted, not-yet-pulled link.
type staleLink struct {
	lsn   uint64    // exporter LSN at the latest hint
	since time.Time // first unserved hint arrival (staleness clock)
	timer *time.Timer
}

// propState is the peer's propagation-policy state. The actor loop owns all
// transitions; the mutex exists because the concurrent read path consults
// staleness and records read demand off the loop.
type propState struct {
	mu sync.Mutex
	// stale maps outgoing (importing) rule IDs to their staleness record.
	stale map[string]*staleLink
	// waiters holds synchronous pull waiters per rule; inflightAt stamps
	// the last outstanding PullRequest (dedup with retry-after).
	waiters    map[string][]chan pullResult
	inflightAt map[string]time.Time
	// samples are staleness-at-pull measurements (importer side, bounded).
	samples []time.Duration
	// Adaptive demand tracking (importer side): reads counts local queries
	// touching each rule's head relations, lastReads/cold detect
	// consecutive unread deliveries, demandPull mirrors the last LinkDemand
	// sent to the exporter.
	reads      map[string]uint64
	lastReads  map[string]uint64
	cold       map[string]int
	demandPull map[string]bool
}

func newPropState() *propState {
	return &propState{
		stale:      make(map[string]*staleLink),
		waiters:    make(map[string][]chan pullResult),
		inflightAt: make(map[string]time.Time),
		reads:      make(map[string]uint64),
		lastReads:  make(map[string]uint64),
		cold:       make(map[string]int),
		demandPull: make(map[string]bool),
	}
}

// PropagationStats is the peer's propagation-policy observability snapshot.
type PropagationStats struct {
	// Links carries the per-rule counters (policy, hints, pulls, byte
	// split); see core.LinkPropagationStats.
	Links []core.LinkPropagationStats `json:"links"`
	// StaleLinks lists outgoing links currently hinted stale (importer
	// side, not yet pulled).
	StaleLinks []string `json:"stale_links,omitempty"`
	// StalenessP50/P99 summarise the observed staleness at pull time
	// (hint arrival to materialised pull).
	StalenessP50 time.Duration `json:"staleness_p50_ns"`
	StalenessP99 time.Duration `json:"staleness_p99_ns"`
	// StalenessSamples is the number of measurements behind the quantiles.
	StalenessSamples int `json:"staleness_samples"`
}

// speaksPull reports whether the named peer's pipe can carry the V2
// pull-family payloads. In-process transports always can; on TCP the
// negotiated version of the live pipe decides, and an unknown peer (no
// handshake yet) conservatively cannot — so the first contact on a fresh
// pull link pushes, and the link goes lazy once the pipe is up.
func (p *Peer) speaksPull(node string) bool {
	t, ok := rawTransport(p.tr).(*transport.TCP)
	if !ok {
		return true
	}
	v, ok := t.PeerVersion(node)
	return ok && v >= wire.V2
}

// SetLinkPolicy configures (or reconfigures) one rule's propagation policy.
// The policy is remembered and re-applied across rule reconfigurations; an
// unknown rule ID is accepted and takes effect when the rule is declared.
func (p *Peer) SetLinkPolicy(ruleID, mode, filter string) error {
	if _, err := core.ParsePolicyMode(mode); err != nil {
		return err
	}
	var err error
	if derr := p.do(func() {
		if p.linkPolicies == nil {
			p.linkPolicies = make(map[string]linkPolicyCfg)
		}
		p.linkPolicies[ruleID] = linkPolicyCfg{mode: mode, filter: filter}
		err = p.applyLinkPolicy(ruleID)
	}); derr != nil {
		return derr
	}
	return err
}

// linkPolicyCfg is one remembered policy configuration.
type linkPolicyCfg struct {
	mode   string
	filter string
}

// applyLinkPolicy installs one remembered policy on the node if the rule is
// known (loop only).
func (p *Peer) applyLinkPolicy(ruleID string) error {
	cfg, ok := p.linkPolicies[ruleID]
	if !ok {
		return nil
	}
	if p.node.RuleText(ruleID) == "" {
		return nil // rule not declared yet; applied when it arrives
	}
	return p.node.SetLinkPolicy(ruleID, cfg.mode, cfg.filter)
}

// applyLinkPolicies re-installs every remembered policy whose rule is known
// (loop only); called after rule declarations and reconfigurations.
func (p *Peer) applyLinkPolicies() {
	for id := range p.linkPolicies {
		if err := p.applyLinkPolicy(id); err != nil {
			p.log.Warn("link policy not applied", "rule", id, "err", err)
		}
	}
}

// PropagationStats snapshots the peer's propagation counters and staleness
// quantiles.
func (p *Peer) PropagationStats() PropagationStats {
	var links []core.LinkPropagationStats
	p.do(func() { links = p.node.PropagationStats() })
	st := PropagationStats{Links: links}
	p.prop.mu.Lock()
	for id := range p.prop.stale {
		st.StaleLinks = append(st.StaleLinks, id)
	}
	samples := append([]time.Duration(nil), p.prop.samples...)
	p.prop.mu.Unlock()
	sort.Strings(st.StaleLinks)
	st.StalenessSamples = len(samples)
	st.StalenessP50 = durPercentile(samples, 50)
	st.StalenessP99 = durPercentile(samples, 99)
	return st
}

// durPercentile returns the pct-th percentile of the samples (nearest-rank).
func durPercentile(samples []time.Duration, pct float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(pct/100*float64(len(samples))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return samples[idx]
}

// StaleLinks lists the outgoing links currently hinted stale.
func (p *Peer) StaleLinks() []string {
	p.prop.mu.Lock()
	defer p.prop.mu.Unlock()
	out := make([]string, 0, len(p.prop.stale))
	for id := range p.prop.stale {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// handleUpdateHint marks an outgoing link stale (loop only). Hints arrive
// from the exporter of a pull-policy link instead of the data; any stale
// link is pullable at any time, so the mark is kept regardless of the
// locally configured policy.
func (p *Peer) handleUpdateHint(from string, h *msg.UpdateHint) {
	rule := p.outgoingRule(h.RuleID)
	if rule == nil || rule.Source != from {
		return // unknown or foreign link; ignore
	}
	p.node.NoteHintReceived(h.RuleID)
	p.prop.mu.Lock()
	sl := p.prop.stale[h.RuleID]
	if sl == nil {
		sl = &staleLink{since: time.Now()}
		p.prop.stale[h.RuleID] = sl
	}
	sl.lsn = h.LSN
	needTimer := p.maxStaleness > 0 && sl.timer == nil
	if needTimer {
		id := h.RuleID
		sl.timer = time.AfterFunc(p.maxStaleness, func() { p.deadlinePull(id) })
	}
	p.prop.mu.Unlock()
}

// deadlinePull fires when a stale link outlived MaxStaleness without a
// query pulling it: the actor loop issues the pull on its own.
func (p *Peer) deadlinePull(ruleID string) {
	cmd := command{run: func() { p.startPull(ruleID, nil) }, done: make(chan struct{})}
	select {
	case p.inbox <- cmd:
	case <-p.stopped:
	}
}

// outgoingRule resolves one of this node's outgoing (importing) rules by ID
// (loop only).
func (p *Peer) outgoingRule(id string) *cq.Rule {
	for _, r := range p.node.Outgoing() {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// startPull sends a PullRequest for one outgoing link (loop only),
// registering the optional waiter. Requests are deduplicated: while one is
// outstanding (younger than the pull timeout), further triggers only attach
// waiters.
func (p *Peer) startPull(ruleID string, waiter chan pullResult) {
	rule := p.outgoingRule(ruleID)
	if rule == nil {
		p.deliverPull(ruleID, pullResult{err: fmt.Errorf("peer %s: unknown outgoing rule %s", p.name, ruleID)}, waiter)
		return
	}
	if !p.speaksPull(rule.Source) {
		// The exporter cannot serve pulls (old peer, or no pipe yet): the
		// link behaves as push, nothing is stale on our side of it.
		p.clearStale(ruleID, time.Time{})
		p.deliverPull(ruleID, pullResult{}, waiter)
		return
	}
	var since uint64
	p.prop.mu.Lock()
	if sl := p.prop.stale[ruleID]; sl != nil {
		since = sl.lsn
	}
	if waiter != nil {
		p.prop.waiters[ruleID] = append(p.prop.waiters[ruleID], waiter)
	}
	at, inflight := p.prop.inflightAt[ruleID]
	if inflight && time.Since(at) < p.pullTimeout {
		p.prop.mu.Unlock()
		return // a request is already in flight; the response serves us too
	}
	p.prop.inflightAt[ruleID] = time.Now()
	p.prop.mu.Unlock()

	p.node.NotePullIssued(ruleID)
	if err := p.sendTo(rule.Source, &msg.PullRequest{RuleID: ruleID, SinceLSN: since}); err != nil {
		p.prop.mu.Lock()
		delete(p.prop.inflightAt, ruleID)
		p.prop.mu.Unlock()
		p.failPullWaiters(ruleID, err)
	}
}

// deliverPull hands one result to a single waiter (nil-safe).
func (p *Peer) deliverPull(ruleID string, res pullResult, waiter chan pullResult) {
	if waiter != nil {
		waiter <- res
	}
}

// failPullWaiters resolves every registered waiter of a rule with an error.
func (p *Peer) failPullWaiters(ruleID string, err error) {
	p.prop.mu.Lock()
	ws := p.prop.waiters[ruleID]
	delete(p.prop.waiters, ruleID)
	p.prop.mu.Unlock()
	for _, w := range ws {
		w <- pullResult{err: err}
	}
}

// handlePullRequest serves an exporter-side pull (loop only): exactly the
// incremental export the importer would have received, computed from the
// durable watermark. The advanced watermark is persisted like any
// materialising session's.
func (p *Peer) handlePullRequest(from string, req *msg.PullRequest) {
	resp, err := p.node.ServePull(req)
	if err != nil {
		p.log.Warn("pull not served", "rule", req.RuleID, "from", from, "err", err)
		return
	}
	p.persistExportState()
	if err := p.sendTo(from, resp); err != nil {
		p.log.Warn("pull response send failed", "rule", req.RuleID, "to", from, "err", err)
	}
}

// handlePullResponse materialises a pulled delta (loop only): tuples go
// through the normal chase-and-commit path, the staleness record clears
// (and is sampled), waiters wake, and invalidation hints cascade through
// this node's own lazy dependent links.
func (p *Peer) handlePullResponse(from string, resp *msg.PullResponse) {
	fresh, total, err := p.node.ApplyPull(resp)
	p.prop.mu.Lock()
	delete(p.prop.inflightAt, resp.RuleID)
	ws := p.prop.waiters[resp.RuleID]
	delete(p.prop.waiters, resp.RuleID)
	p.prop.mu.Unlock()
	if err != nil {
		p.log.Warn("pull response not applied", "rule", resp.RuleID, "from", from, "err", err)
		for _, w := range ws {
			w <- pullResult{err: err}
		}
		return
	}
	p.clearStale(resp.RuleID, time.Now())
	for _, w := range ws {
		w <- pullResult{fresh: total}
	}
	if total > 0 {
		changed := make([]string, 0, len(fresh))
		for rel := range fresh {
			changed = append(changed, rel)
		}
		p.cascadeHints(changed)
	}
}

// clearStale removes a link's staleness record, sampling the staleness at
// pull time when `at` is nonzero (loop only).
func (p *Peer) clearStale(ruleID string, at time.Time) {
	p.prop.mu.Lock()
	defer p.prop.mu.Unlock()
	sl := p.prop.stale[ruleID]
	if sl == nil {
		return
	}
	delete(p.prop.stale, ruleID)
	if sl.timer != nil {
		sl.timer.Stop()
	}
	if !at.IsZero() {
		p.prop.samples = append(p.prop.samples, at.Sub(sl.since))
		if len(p.prop.samples) > maxStalenessSamples {
			p.prop.samples = p.prop.samples[len(p.prop.samples)-maxStalenessSamples:]
		}
	}
}

// cascadeHints floods out-of-session invalidation hints through this node's
// lazy incoming links whose bodies read any of the changed relations (loop
// only): a pull that materialises tuples here makes the downstream lazy
// importers stale in turn, exactly as an in-session export would have.
func (p *Peer) cascadeHints(changed []string) {
	lsn := p.commitLSN()
	for _, rule := range p.node.LazyDependents(changed) {
		p.node.NoteHintSent(rule.ID)
		if err := p.sendTo(rule.Target, &msg.UpdateHint{RuleID: rule.ID, LSN: lsn}); err != nil {
			p.log.Warn("cascade hint send failed", "rule", rule.ID, "to", rule.Target, "err", err)
		}
	}
}

// commitLSN reads the wrapper's commit LSN (0 for wrappers without change
// capture).
func (p *Peer) commitLSN() uint64 {
	if tr, ok := p.node.Wrapper().(core.ChangeTracker); ok {
		return tr.LSN()
	}
	return 0
}

// PullLink synchronously pulls one outgoing link's pending delta from its
// exporter, returning the number of genuinely new tuples materialised. A
// link whose exporter does not speak the pull protocol returns 0 — push
// keeps such links fresh. Safe to call concurrently; concurrent pulls of
// the same link coalesce onto one request.
func (p *Peer) PullLink(ctx context.Context, ruleID string) (int, error) {
	waiter := make(chan pullResult, 1)
	if err := p.do(func() { p.startPull(ruleID, waiter) }); err != nil {
		return 0, err
	}
	select {
	case res := <-waiter:
		return res.fresh, res.err
	case <-ctx.Done():
		return 0, fmt.Errorf("peer %s: pull %s: %w", p.name, ruleID, ctx.Err())
	case <-p.stopped:
		return 0, fmt.Errorf("peer %s: stopped during pull of %s", p.name, ruleID)
	}
}

// CatchUp pulls every outgoing link once, returning the total number of new
// tuples materialised. Repeating until it returns 0 drives the node to the
// same fixpoint eager push would have reached (codb.Network.CatchUp does
// the network-wide iteration).
func (p *Peer) CatchUp(ctx context.Context) (int, error) {
	var ids []string
	if err := p.do(func() {
		for _, r := range p.node.Outgoing() {
			ids = append(ids, r.ID)
		}
	}); err != nil {
		return 0, err
	}
	total := 0
	for _, id := range ids {
		n, err := p.PullLink(ctx, id)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// noteDataDelivery feeds the adaptive policy's demand detector (loop only):
// a pushed data delivery on an adaptive link with no local reads since the
// previous delivery is a cold signal; coldDeliveries of them in a row
// demote the link to pull.
func (p *Peer) noteDataDelivery(ruleID string) {
	mode, _ := p.node.LinkPolicy(ruleID)
	if mode != core.PolicyAdaptive.String() {
		return
	}
	rule := p.outgoingRule(ruleID)
	if rule == nil {
		return
	}
	p.prop.mu.Lock()
	reads := p.prop.reads[ruleID]
	if reads == p.prop.lastReads[ruleID] {
		p.prop.cold[ruleID]++
	} else {
		p.prop.cold[ruleID] = 0
	}
	p.prop.lastReads[ruleID] = reads
	demote := p.prop.cold[ruleID] >= coldDeliveries && !p.prop.demandPull[ruleID]
	if demote {
		p.prop.demandPull[ruleID] = true
	}
	p.prop.mu.Unlock()
	if demote && p.speaksPull(rule.Source) {
		p.sendLinkDemand(rule, true)
	}
}

// sendLinkDemand signals the exporter of an adaptive link which effective
// mode local demand justifies (loop only).
func (p *Peer) sendLinkDemand(rule *cq.Rule, wantPull bool) {
	var m uint8
	if wantPull {
		m = 1
	}
	if err := p.sendTo(rule.Source, &msg.LinkDemand{RuleID: rule.ID, Mode: m}); err != nil {
		p.log.Warn("link demand send failed", "rule", rule.ID, "to", rule.Source, "err", err)
	}
}

// maybePullForQuery is the concurrent read path's pre-read hook: it counts
// read demand per outgoing link and, when a stale pull link feeds one of
// the queried relations, issues a bounded synchronous pull so the query
// observes fresh data (stale on timeout). Runs on the reader's goroutine.
func (p *Peer) maybePullForQuery(q *cq.Query) {
	rp := p.readPath
	if rp == nil {
		return
	}
	rels := q.Relations()
	rp.mu.RLock()
	outgoing := rp.outgoing
	rp.mu.RUnlock()
	var touched []*cq.Rule
	for _, rule := range outgoing {
		for _, h := range rule.HeadRelations() {
			if containsStr(rels, h) {
				touched = append(touched, rule)
				break
			}
		}
	}
	if len(touched) == 0 {
		return
	}
	var stale []*cq.Rule
	var promote []*cq.Rule
	p.prop.mu.Lock()
	for _, rule := range touched {
		p.prop.reads[rule.ID]++
		p.prop.cold[rule.ID] = 0
		if p.prop.stale[rule.ID] != nil {
			stale = append(stale, rule)
		}
		if p.prop.demandPull[rule.ID] {
			// The link is hot again: promote it back to push.
			p.prop.demandPull[rule.ID] = false
			promote = append(promote, rule)
		}
	}
	p.prop.mu.Unlock()
	if len(stale) == 0 && len(promote) == 0 {
		return
	}
	waiters := make([]chan pullResult, len(stale))
	if err := p.do(func() {
		for _, rule := range promote {
			p.sendLinkDemand(rule, false)
		}
		for i, rule := range stale {
			waiters[i] = make(chan pullResult, 1)
			p.startPull(rule.ID, waiters[i])
		}
	}); err != nil {
		return
	}
	if len(waiters) == 0 {
		return
	}
	deadline := time.NewTimer(p.pullTimeout)
	defer deadline.Stop()
	for _, w := range waiters {
		select {
		case <-w:
		case <-deadline.C:
			return // serve stale: the pull completes in the background
		case <-p.stopped:
			return
		}
	}
}

func containsStr(xs []string, x string) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}
