package peer

import (
	"context"
	"errors"
	"sort"
	"time"

	"codb/internal/transport"
	"codb/internal/wire"
)

// The suspicion failure detector turns silence into membership signal.
// A partition is a leave without a tombstone: the departed peer said
// nothing, holds no intention of staying away, and will reappear with its
// durable state intact. So unlike coordinated removal (forgetPeer), a
// suspicion verdict must write off what the silence strands — in-flight
// Dijkstra–Scholten deficits, the dead pipe — while keeping everything a
// comeback resumes from: the directory entry (no tombstone) and the durable
// export watermarks (no reset), so the heal ships only the missed delta.
//
// States per tracked acquaintance:
//
//	alive   — heard from within SuspicionTimeout
//	suspect — silent for one timeout; observability only, nothing written off
//	down    — silent for two timeouts; deficits compensated, pipe severed,
//	          paced redials begin
//
// Any inbound envelope (a heartbeat, or any payload at all) returns the
// peer to alive; a return from down is a heal, which the peer layer follows
// with a re-pipe, a directory delta exchange, and a catch-up pull.
//
// The machine is synchronous and unlocked: the peer actor loop owns it, and
// the clock is injected so tests drive it with a fake.
type suspicion struct {
	timeout time.Duration
	now     func() time.Time

	peers map[string]*suspEntry

	// Cumulative transition counters, for stats and benchmark assertions.
	suspects uint64 // alive → suspect
	downs    uint64 // suspect → down (or a pipe-down report)
	heals    uint64 // down → alive
}

type suspState uint8

const (
	suspAlive suspState = iota
	suspSuspect
	suspDown
)

func (s suspState) String() string {
	switch s {
	case suspSuspect:
		return "suspect"
	case suspDown:
		return "down"
	default:
		return "alive"
	}
}

type suspEntry struct {
	state     suspState
	lastHeard time.Time
	lastDial  time.Time // paces redials while down
}

func newSuspicion(timeout time.Duration, now func() time.Time) *suspicion {
	return &suspicion{timeout: timeout, now: now, peers: make(map[string]*suspEntry)}
}

// track starts watching a peer if it is not already tracked (a fresh pipe).
// Existing state — including down — is preserved.
func (s *suspicion) track(peer string) {
	if s.peers[peer] == nil {
		s.peers[peer] = &suspEntry{lastHeard: s.now()}
	}
}

// observe records traffic from a peer, returning true when the peer was
// down — the caller owes it a heal (re-pipe + catch-up).
func (s *suspicion) observe(peer string) (healed bool) {
	e := s.peers[peer]
	if e == nil {
		e = &suspEntry{}
		s.peers[peer] = e
	}
	prev := e.state
	e.state = suspAlive
	e.lastHeard = s.now()
	if prev == suspDown {
		s.heals++
		return true
	}
	return false
}

// noteDown forces a peer straight to down (the transport reported its pipe
// torn). The caller has already written off the loss; recording the state
// here is what arms the paced-redial heal path.
func (s *suspicion) noteDown(peer string) {
	e := s.peers[peer]
	if e == nil {
		e = &suspEntry{}
		s.peers[peer] = e
	}
	if e.state == suspDown {
		return
	}
	e.state = suspDown
	e.lastDial = s.now()
	s.downs++
}

// forget stops tracking a peer (tombstoned: it is not expected back).
func (s *suspicion) forget(peer string) { delete(s.peers, peer) }

// tick advances every tracked peer against the clock and returns the peers
// that newly became suspect and newly became down, sorted. exempt marks
// peers that cannot be judged by silence — e.g. a V1 pipe, which predates
// heartbeats — and resets their timer instead.
func (s *suspicion) tick(exempt func(peer string) bool) (suspects, downs []string) {
	now := s.now()
	for peer, e := range s.peers {
		if e.state != suspDown && exempt != nil && exempt(peer) {
			e.lastHeard = now
			continue
		}
		silence := now.Sub(e.lastHeard)
		switch e.state {
		case suspAlive:
			if silence >= s.timeout {
				e.state = suspSuspect
				s.suspects++
				suspects = append(suspects, peer)
			}
		case suspSuspect:
			if silence >= 2*s.timeout {
				e.state = suspDown
				e.lastDial = now
				s.downs++
				downs = append(downs, peer)
			}
		}
	}
	sort.Strings(suspects)
	sort.Strings(downs)
	return suspects, downs
}

// redialDue returns the down peers whose redial pacing has elapsed,
// stamping each so one timeout passes between attempts.
func (s *suspicion) redialDue() []string {
	now := s.now()
	var due []string
	for peer, e := range s.peers {
		if e.state == suspDown && now.Sub(e.lastDial) >= s.timeout {
			e.lastDial = now
			due = append(due, peer)
		}
	}
	sort.Strings(due)
	return due
}

// states snapshots every tracked peer's state name.
func (s *suspicion) states() map[string]string {
	out := make(map[string]string, len(s.peers))
	for peer, e := range s.peers {
		out[peer] = e.state.String()
	}
	return out
}

// ---- Peer integration (actor loop unless noted) ----

// healCatchUpTimeout bounds the pull catch-up a heal triggers.
const healCatchUpTimeout = 30 * time.Second

// suspicionLoop drives the detector off-loop: each tick posts a command
// into the actor loop (which owns the machine) and waits for it, so ticks
// never pile up behind a saturated inbox.
func (p *Peer) suspicionLoop(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-p.stopped:
			return
		case <-tick.C:
		}
		cmd := command{run: p.suspicionTick, done: make(chan struct{})}
		select {
		case p.inbox <- cmd:
		case <-p.stopped:
			return
		}
		select {
		case <-cmd.done:
		case <-p.stopped:
			return
		}
	}
}

// suspicionExempt marks peers that cannot be judged by silence: a pipe
// negotiated at V1 predates heartbeats, so an idle V1 peer is
// indistinguishable from a partitioned one and is never suspected — the
// same degrade-gracefully posture every other V2 feature takes. Transports
// without heartbeats (the in-process bus) exempt everyone.
func (p *Peer) suspicionExempt(peer string) bool {
	t, ok := rawTransport(p.tr).(*transport.TCP)
	if !ok {
		return true
	}
	if v, ok := t.PeerVersion(peer); ok && v < wire.V2 {
		return true
	}
	return false
}

// suspicionTick advances the detector one scan: new suspects are logged,
// new downs are written off — deficits compensated so in-flight sessions
// terminate, pipe severed — and down peers due a paced redial are retried.
// Deliberately absent from the down path: no tombstone, and no
// ResetExportStateToward — a partitioned peer is expected back with its
// materialised data intact, and the durable watermarks are what let the
// heal ship only the missed delta.
func (p *Peer) suspicionTick() {
	suspects, downs := p.susp.tick(p.suspicionExempt)
	for _, peer := range suspects {
		p.log.Warn("peer suspected", "peer", peer, "timeout", p.susp.timeout)
	}
	for _, peer := range downs {
		p.log.Warn("peer down, writing off in-flight messages", "peer", peer)
		p.tr.Disconnect(peer)
		delete(p.piped, peer)
		p.dispatch(p.node.CompensatePeerLoss(peer))
		p.persistExportState()
	}
	for _, peer := range p.susp.redialDue() {
		p.tryHeal(peer)
	}
}

// tryHeal re-dials a down peer. Failure (still partitioned) just waits out
// the next pacing window; success is a heal.
func (p *Peer) tryHeal(peer string) {
	if entry, ok := p.directory[peer]; ok && entry.deleted {
		p.susp.forget(peer) // tombstoned while down: not coming back
		return
	}
	if err := p.ensurePipe(peer); err != nil {
		p.log.Debug("redial failed", "peer", peer, "err", err)
		return
	}
	if p.susp.observe(peer) {
		p.afterHeal(peer)
	}
}

// healPeer handles a down peer observed alive again (its traffic resumed on
// a pipe it re-established from its side): make sure our side is piped too,
// then catch up.
func (p *Peer) healPeer(peer string) {
	if err := p.ensurePipe(peer); err != nil {
		p.log.Warn("heal re-pipe failed", "peer", peer, "err", err)
	}
	p.afterHeal(peer)
}

// afterHeal finishes a heal: ensurePipe has re-run the directory delta
// exchange over the fresh pipe; catch-up then resumes every pull/push link
// from its durable watermark. CatchUp posts commands into the actor loop,
// so it runs in its own goroutine.
func (p *Peer) afterHeal(peer string) {
	p.log.Info("peer healed, catching up", "peer", peer)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), healCatchUpTimeout)
		defer cancel()
		if _, err := p.CatchUp(ctx); err != nil && !errors.Is(err, ErrStopped) {
			p.log.Warn("post-heal catch-up incomplete", "peer", peer, "err", err)
		}
	}()
}

// MembershipStats is the failure detector's observability snapshot plus
// directory totals, served on GET /v1/stats/membership and the console's
// membership command.
type MembershipStats struct {
	// Enabled reports whether the suspicion detector is running.
	Enabled bool `json:"enabled"`
	// States maps each tracked acquaintance to its suspicion state
	// ("alive", "suspect", "down").
	States map[string]string `json:"states,omitempty"`
	// Suspects, Downs and Heals count state transitions since start.
	Suspects uint64 `json:"suspects"`
	Downs    uint64 `json:"downs"`
	Heals    uint64 `json:"heals"`
	// LivePeers and Tombstones are directory totals (self excluded).
	LivePeers  int `json:"live_peers"`
	Tombstones int `json:"tombstones"`
}

// MembershipStats snapshots the failure detector and directory.
func (p *Peer) MembershipStats() MembershipStats {
	var out MembershipStats
	p.do(func() {
		for node, e := range p.directory {
			if node == p.name {
				continue
			}
			if e.deleted {
				out.Tombstones++
			} else {
				out.LivePeers++
			}
		}
		if p.susp == nil {
			return
		}
		out.Enabled = true
		out.States = p.susp.states()
		out.Suspects = p.susp.suspects
		out.Downs = p.susp.downs
		out.Heals = p.susp.heals
	})
	return out
}
