package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	m := New[int]()
	if m.Len() != 0 {
		t.Error("empty tree has nonzero Len")
	}
	if _, ok := m.Get("x"); ok {
		t.Error("Get on empty tree found something")
	}
	if _, ok := m.Delete("x"); ok {
		t.Error("Delete on empty tree removed something")
	}
	if _, _, ok := m.Min(); ok {
		t.Error("Min on empty tree")
	}
	if _, _, ok := m.Max(); ok {
		t.Error("Max on empty tree")
	}
	n := 0
	m.AscendAll(func(string, int) bool { n++; return true })
	if n != 0 {
		t.Error("AscendAll on empty tree visited keys")
	}
}

func TestPutGetReplace(t *testing.T) {
	m := New[int]()
	if _, replaced := m.Put("a", 1); replaced {
		t.Error("first Put reported replace")
	}
	old, replaced := m.Put("a", 2)
	if !replaced || old != 1 {
		t.Errorf("replace = %v, old = %d", replaced, old)
	}
	if v, ok := m.Get("a"); !ok || v != 2 {
		t.Errorf("Get = %d, %v", v, ok)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestLargeInsertAscending(t *testing.T) {
	m := New[int]()
	const n = 10000
	for i := 0; i < n; i++ {
		m.Put(key(i), i)
	}
	checkTree(t, m, n)
}

func TestLargeInsertDescending(t *testing.T) {
	m := New[int]()
	const n = 10000
	for i := n - 1; i >= 0; i-- {
		m.Put(key(i), i)
	}
	checkTree(t, m, n)
}

func TestLargeInsertShuffled(t *testing.T) {
	m := New[int]()
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		m.Put(key(i), i)
	}
	checkTree(t, m, n)
}

func key(i int) string { return fmt.Sprintf("k%08d", i) }

func checkTree(t *testing.T, m *Map[int], n int) {
	t.Helper()
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(key(i)); !ok || v != i {
			t.Fatalf("Get(%s) = %d, %v", key(i), v, ok)
		}
	}
	// Full ordered scan.
	i := 0
	m.AscendAll(func(k string, v int) bool {
		if k != key(i) || v != i {
			t.Fatalf("scan at %d: got %s=%d", i, k, v)
		}
		i++
		return true
	})
	if i != n {
		t.Fatalf("scan visited %d of %d", i, n)
	}
	if k, _, _ := m.Min(); k != key(0) {
		t.Fatalf("Min = %s", k)
	}
	if k, _, _ := m.Max(); k != key(n-1) {
		t.Fatalf("Max = %s", k)
	}
}

func TestDeleteAll(t *testing.T) {
	const n = 5000
	for _, order := range []string{"asc", "desc", "shuffled"} {
		m := New[int]()
		for i := 0; i < n; i++ {
			m.Put(key(i), i)
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		switch order {
		case "desc":
			for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
				idx[i], idx[j] = idx[j], idx[i]
			}
		case "shuffled":
			rand.New(rand.NewSource(7)).Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		}
		for c, i := range idx {
			v, ok := m.Delete(key(i))
			if !ok || v != i {
				t.Fatalf("%s: Delete(%s) = %d, %v", order, key(i), v, ok)
			}
			if m.Len() != n-c-1 {
				t.Fatalf("%s: Len = %d after %d deletes", order, m.Len(), c+1)
			}
		}
		if _, ok := m.Delete(key(0)); ok {
			t.Fatalf("%s: delete from empty tree succeeded", order)
		}
	}
}

func TestRangeScan(t *testing.T) {
	m := New[int]()
	for i := 0; i < 100; i++ {
		m.Put(key(i), i)
	}
	var got []int
	m.Ascend(key(10), key(20), func(k string, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Errorf("range [10,20) = %v", got)
	}
	// Early stop.
	got = nil
	m.Ascend(key(0), "", func(k string, v int) bool {
		got = append(got, v)
		return len(got) < 3
	})
	if len(got) != 3 {
		t.Errorf("early stop visited %d", len(got))
	}
	// From a key that is absent.
	got = nil
	m.Ascend(key(10)+"x", key(13), func(k string, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != 11 {
		t.Errorf("absent-start range = %v", got)
	}
}

func TestAscendPrefix(t *testing.T) {
	m := New[int]()
	m.Put("a:1", 1)
	m.Put("a:2", 2)
	m.Put("b:1", 3)
	m.Put("", 0)
	var got []int
	m.AscendPrefix("a:", func(k string, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("prefix scan = %v", got)
	}
	got = nil
	m.AscendPrefix("", func(k string, v int) bool { got = append(got, v); return true })
	if len(got) != 4 {
		t.Errorf("empty prefix scan = %v", got)
	}
}

func TestDepthGrowsLogarithmically(t *testing.T) {
	m := New[int]()
	for i := 0; i < 100000; i++ {
		m.Put(key(i), i)
	}
	if d := m.depth(); d > 4 {
		t.Errorf("depth = %d for 1e5 keys with degree %d", d, degree)
	}
}

// Property test: a random op sequence applied to the tree and to a reference
// map must agree on every observable.
func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New[int]()
		ref := make(map[string]int)
		const ops = 3000
		for i := 0; i < ops; i++ {
			k := fmt.Sprintf("k%03d", r.Intn(500))
			switch r.Intn(3) {
			case 0, 1:
				v := r.Intn(1e6)
				old, replaced := m.Put(k, v)
				refOld, refHad := ref[k]
				if replaced != refHad || (refHad && old != refOld) {
					t.Logf("Put(%s) mismatch", k)
					return false
				}
				ref[k] = v
			case 2:
				old, removed := m.Delete(k)
				refOld, refHad := ref[k]
				if removed != refHad || (refHad && old != refOld) {
					t.Logf("Delete(%s) mismatch", k)
					return false
				}
				delete(ref, k)
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		okScan := true
		m.AscendAll(func(k string, v int) bool {
			if i >= len(keys) || k != keys[i] || v != ref[k] {
				okScan = false
				return false
			}
			i++
			return true
		})
		return okScan && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPut(b *testing.B) {
	m := New[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Put(key(i), i)
	}
}

func BenchmarkGet(b *testing.B) {
	m := New[int]()
	for i := 0; i < 100000; i++ {
		m.Put(key(i), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Get(key(i % 100000))
	}
}
