// Package btree implements an in-memory B+tree keyed by byte strings, used
// by the storage engine for primary and secondary indexes. Keys are compared
// bytewise, which matches relational order for keys produced by the
// order-preserving codec in internal/relation.
//
// The tree supports insert, lookup, delete with rebalancing, and ordered
// range scans. It is not safe for concurrent mutation; the storage layer
// serialises writers.
package btree

import "sort"

// degree is the maximum number of children of an interior node. Leaves hold
// up to degree-1 items.
const degree = 64

const (
	maxItems = degree - 1
	minItems = maxItems / 2
)

// Map is a B+tree from string keys to values of type V. The zero value is
// not usable; call New.
type Map[V any] struct {
	root *node[V]
	len  int
}

type node[V any] struct {
	keys     []string
	vals     []V        // leaf only, parallel to keys
	children []*node[V] // interior only, len(children) == len(keys)+1
	next     *node[V]   // leaf chain for range scans
}

func (n *node[V]) leaf() bool { return n.children == nil }

// New returns an empty tree.
func New[V any]() *Map[V] {
	return &Map[V]{root: &node[V]{}}
}

// Len returns the number of stored keys.
func (m *Map[V]) Len() int { return m.len }

// Get returns the value stored for key.
func (m *Map[V]) Get(key string) (V, bool) {
	n := m.root
	for !n.leaf() {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++ // equal separator: key lives in the right subtree
		}
		n = n.children[i]
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	var zero V
	return zero, false
}

// Put stores value under key, returning the previous value if the key was
// already present.
func (m *Map[V]) Put(key string, value V) (old V, replaced bool) {
	old, replaced, splitKey, splitNode := m.insert(m.root, key, value)
	if splitNode != nil {
		m.root = &node[V]{
			keys:     []string{splitKey},
			children: []*node[V]{m.root, splitNode},
		}
	}
	if !replaced {
		m.len++
	}
	return old, replaced
}

// insert adds key to the subtree at n. If n splits, it returns the separator
// key and the new right sibling.
func (m *Map[V]) insert(n *node[V], key string, value V) (old V, replaced bool, splitKey string, splitNode *node[V]) {
	if n.leaf() {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			old, n.vals[i] = n.vals[i], value
			return old, true, "", nil
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		var zero V
		n.vals = append(n.vals, zero)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = value
		if len(n.keys) > maxItems {
			splitKey, splitNode = n.splitLeaf()
		}
		return old, false, splitKey, splitNode
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	old, replaced, sk, sn := m.insert(n.children[i], key, value)
	if sn != nil {
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = sk
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = sn
		if len(n.keys) > maxItems {
			splitKey, splitNode = n.splitInterior()
		}
	}
	return old, replaced, splitKey, splitNode
}

// splitLeaf splits an over-full leaf; the separator is the first key of the
// right half (B+tree style: separator is duplicated into the parent, data
// stays in leaves).
func (n *node[V]) splitLeaf() (string, *node[V]) {
	mid := len(n.keys) / 2
	right := &node[V]{
		keys: append([]string(nil), n.keys[mid:]...),
		vals: append([]V(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return right.keys[0], right
}

// splitInterior splits an over-full interior node; the middle key moves up.
func (n *node[V]) splitInterior() (string, *node[V]) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node[V]{
		keys:     append([]string(nil), n.keys[mid+1:]...),
		children: append([]*node[V](nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// Delete removes key, returning its value if present.
func (m *Map[V]) Delete(key string) (V, bool) {
	old, removed := m.remove(m.root, key)
	if removed {
		m.len--
		if !m.root.leaf() && len(m.root.keys) == 0 {
			m.root = m.root.children[0]
		}
	}
	return old, removed
}

func (m *Map[V]) remove(n *node[V], key string) (V, bool) {
	if n.leaf() {
		i := sort.SearchStrings(n.keys, key)
		if i >= len(n.keys) || n.keys[i] != key {
			var zero V
			return zero, false
		}
		old := n.vals[i]
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return old, true
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	old, removed := m.remove(n.children[i], key)
	if removed && len(n.children[i].keys) < minItems {
		n.rebalance(i)
	}
	return old, removed
}

// rebalance restores the minimum-occupancy invariant of child i by borrowing
// from or merging with a sibling.
func (n *node[V]) rebalance(i int) {
	child := n.children[i]
	// Borrow from left sibling.
	if i > 0 && len(n.children[i-1].keys) > minItems {
		left := n.children[i-1]
		if child.leaf() {
			k := left.keys[len(left.keys)-1]
			v := left.vals[len(left.vals)-1]
			left.keys = left.keys[:len(left.keys)-1]
			left.vals = left.vals[:len(left.vals)-1]
			child.keys = append([]string{k}, child.keys...)
			child.vals = append([]V{v}, child.vals...)
			n.keys[i-1] = child.keys[0]
		} else {
			k := left.keys[len(left.keys)-1]
			c := left.children[len(left.children)-1]
			left.keys = left.keys[:len(left.keys)-1]
			left.children = left.children[:len(left.children)-1]
			child.keys = append([]string{n.keys[i-1]}, child.keys...)
			child.children = append([]*node[V]{c}, child.children...)
			n.keys[i-1] = k
		}
		return
	}
	// Borrow from right sibling.
	if i < len(n.children)-1 && len(n.children[i+1].keys) > minItems {
		right := n.children[i+1]
		if child.leaf() {
			child.keys = append(child.keys, right.keys[0])
			child.vals = append(child.vals, right.vals[0])
			right.keys = right.keys[1:]
			right.vals = right.vals[1:]
			n.keys[i] = right.keys[0]
		} else {
			child.keys = append(child.keys, n.keys[i])
			child.children = append(child.children, right.children[0])
			n.keys[i] = right.keys[0]
			right.keys = right.keys[1:]
			right.children = right.children[1:]
		}
		return
	}
	// Merge with a sibling.
	if i > 0 {
		i-- // merge children[i] (left) and children[i+1] (child)
	}
	left, right := n.children[i], n.children[i+1]
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Ascend calls fn for every key in [from, to) in ascending order; an empty
// `to` means "until the end". fn returning false stops the scan.
func (m *Map[V]) Ascend(from, to string, fn func(key string, value V) bool) {
	n := m.root
	for !n.leaf() {
		i := sort.SearchStrings(n.keys, from)
		if i < len(n.keys) && n.keys[i] == from {
			i++
		}
		n = n.children[i]
	}
	i := sort.SearchStrings(n.keys, from)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if to != "" && n.keys[i] >= to {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// AscendAll scans every key in ascending order.
func (m *Map[V]) AscendAll(fn func(key string, value V) bool) {
	m.Ascend("", "", fn)
}

// AscendPrefix scans every key with the given prefix in ascending order.
func (m *Map[V]) AscendPrefix(prefix string, fn func(key string, value V) bool) {
	if prefix == "" {
		m.Ascend("", "", fn)
		return
	}
	m.Ascend(prefix, "", func(k string, v V) bool {
		if len(k) < len(prefix) || k[:len(prefix)] != prefix {
			return false
		}
		return fn(k, v)
	})
}

// Iterator is a pull-style cursor over the tree in ascending key order,
// built on the leaf chain. It lets callers merge several trees (the sharded
// storage engine's per-shard indexes) without callback inversion. The tree
// must not be mutated while an iterator is live; the storage layer holds
// the owning shard's lock for the duration of a merge.
type Iterator[V any] struct {
	n *node[V]
	i int
}

// Iter returns an iterator positioned at the smallest key >= from (the
// whole tree for from == "").
func (m *Map[V]) Iter(from string) *Iterator[V] {
	n := m.root
	for !n.leaf() {
		i := sort.SearchStrings(n.keys, from)
		if i < len(n.keys) && n.keys[i] == from {
			i++
		}
		n = n.children[i]
	}
	return &Iterator[V]{n: n, i: sort.SearchStrings(n.keys, from)}
}

// Next returns the current key/value and advances, or ok=false at the end.
func (it *Iterator[V]) Next() (key string, value V, ok bool) {
	for it.n != nil && it.i >= len(it.n.keys) {
		it.n = it.n.next
		it.i = 0
	}
	if it.n == nil {
		var zero V
		return "", zero, false
	}
	key, value = it.n.keys[it.i], it.n.vals[it.i]
	it.i++
	return key, value, true
}

// Peek returns the current key without advancing, or ok=false at the end.
func (it *Iterator[V]) Peek() (key string, ok bool) {
	for it.n != nil && it.i >= len(it.n.keys) {
		it.n = it.n.next
		it.i = 0
	}
	if it.n == nil {
		return "", false
	}
	return it.n.keys[it.i], true
}

// Min returns the smallest key, if any.
func (m *Map[V]) Min() (string, V, bool) {
	n := m.root
	for !n.leaf() {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		var zero V
		return "", zero, false
	}
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key, if any.
func (m *Map[V]) Max() (string, V, bool) {
	n := m.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		var zero V
		return "", zero, false
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1], true
}

// depth returns the height of the tree (used by invariant checks in tests).
func (m *Map[V]) depth() int {
	d := 1
	for n := m.root; !n.leaf(); n = n.children[0] {
		d++
	}
	return d
}
