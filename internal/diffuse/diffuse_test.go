package diffuse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestInitiatorAloneTerminatesImmediately(t *testing.T) {
	e := New("a")
	e.Start("s")
	acks, term := e.Flush("s")
	if len(acks) != 0 || !term {
		t.Errorf("Flush = %v, %v", acks, term)
	}
	if !e.Terminated("s") {
		t.Error("Terminated false")
	}
}

func TestTwoNodeExchange(t *testing.T) {
	a, b := New("a"), New("b")
	a.Start("s")

	// a sends one request to b.
	a.Sent("s", "b", 1)
	if acks, term := a.Flush("s"); term || len(acks) != 0 {
		t.Fatalf("a should be waiting: %v %v", acks, term)
	}

	// b receives (engaging), replies with one data message, flushes.
	b.Received("s", "a")
	b.Sent("s", "a", 1)
	acks, term := b.Flush("s")
	if term || len(acks) != 0 {
		t.Fatalf("b must not detach with deficit 1: %v %v", acks, term)
	}

	// a receives b's data; acks immediately (a is engaged as initiator).
	a.Received("s", "b")
	acks, term = a.Flush("s")
	if term {
		t.Fatal("a cannot be terminated with deficit 1")
	}
	if len(acks) != 1 || acks[0].To != "b" || acks[0].N != 1 {
		t.Fatalf("a acks = %v", acks)
	}

	// b gets the ack; now deficit 0 -> detach: deferred ack to parent a.
	b.AckReceived("s", "a", 1)
	acks, term = b.Flush("s")
	if term {
		t.Fatal("non-initiator cannot report termination")
	}
	if len(acks) != 1 || acks[0].To != "a" || acks[0].N != 1 {
		t.Fatalf("b detach acks = %v", acks)
	}
	if b.Engaged("s") {
		t.Error("b still engaged after detach")
	}

	// a gets the deferred ack: terminated.
	a.AckReceived("s", "b", 1)
	_, term = a.Flush("s")
	if !term {
		t.Error("a did not detect termination")
	}
}

func TestReEngagement(t *testing.T) {
	b := New("b")
	// First engagement from a.
	b.Received("s", "a")
	acks, _ := b.Flush("s")
	if len(acks) != 1 || acks[0].To != "a" {
		t.Fatalf("first detach = %v", acks)
	}
	// Re-engagement from c: parent is now c.
	b.Received("s", "c")
	acks, _ = b.Flush("s")
	if len(acks) != 1 || acks[0].To != "c" {
		t.Fatalf("re-engagement detach = %v", acks)
	}
}

func TestAckBatching(t *testing.T) {
	b := New("b")
	b.Received("s", "a") // engaging
	b.Received("s", "c")
	b.Received("s", "c")
	b.Sent("s", "x", 1) // keep b engaged (deficit 1)
	acks, _ := b.Flush("s")
	if len(acks) != 1 || acks[0].To != "c" || acks[0].N != 2 {
		t.Fatalf("batched acks = %v", acks)
	}
}

func TestDuplicateAckClamped(t *testing.T) {
	a := New("a")
	a.Start("s")
	a.Sent("s", "b", 1)
	a.AckReceived("s", "b", 1)
	a.AckReceived("s", "b", 1) // protocol violation
	if a.Deficit("s") != 0 {
		t.Errorf("deficit = %d", a.Deficit("s"))
	}
	if _, term := a.Flush("s"); !term {
		t.Error("should terminate after clamp")
	}
}

func TestDropAndSessions(t *testing.T) {
	e := New("a")
	e.Start("s1")
	e.Start("s2")
	if len(e.Sessions()) != 2 {
		t.Errorf("Sessions = %v", e.Sessions())
	}
	e.Drop("s1")
	if e.Known("s1") || !e.Known("s2") {
		t.Error("Drop wrong")
	}
	if !strings.Contains(e.String("s2"), "initiator=true") {
		t.Errorf("String = %q", e.String("s2"))
	}
	if e.String("gone") != "unknown session" {
		t.Errorf("String(gone) = %q", e.String("gone"))
	}
}

// simulated message for the randomized protocol test.
type simMsg struct {
	from, to string
	kind     uint8 // 0 basic, 1 ack
	n        int
}

// TestQuickRandomTopologyTermination simulates diffusing computations over
// random directed graphs with random work generation and asserts both
// safety (termination declared only when no basic messages are in flight
// and all nodes are disengaged except the initiator) and liveness (the
// simulation always reaches termination).
func TestQuickRandomTopologyTermination(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		nNodes := rnd.Intn(6) + 2
		nodes := make([]string, nNodes)
		engines := make(map[string]*Engine, nNodes)
		for i := range nodes {
			name := string(rune('A' + i))
			nodes[i] = name
			engines[name] = New(name)
		}
		// Random directed edges (possibly cyclic).
		var edges [][2]string
		for i := 0; i < nNodes; i++ {
			for j := 0; j < nNodes; j++ {
				if i != j && rnd.Intn(3) == 0 {
					edges = append(edges, [2]string{nodes[i], nodes[j]})
				}
			}
		}
		out := func(n string) []string {
			var o []string
			for _, e := range edges {
				if e[0] == n {
					o = append(o, e[1])
				}
			}
			return o
		}

		const sid = "s"
		init := nodes[0]
		engines[init].Start(sid)

		var queue []simMsg
		// workBudget caps total basic messages so the computation is finite.
		workBudget := 60

		send := func(from string, to string) {
			engines[from].Sent(sid, to, 1)
			queue = append(queue, simMsg{from: from, to: to, kind: 0})
		}
		// Initiator seeds the computation.
		for _, o := range out(init) {
			if workBudget > 0 {
				send(init, o)
				workBudget--
			}
		}
		flush := func(n string) bool {
			acks, term := engines[n].Flush(sid)
			for _, a := range acks {
				queue = append(queue, simMsg{from: n, to: a.To, kind: 1, n: a.N})
			}
			return term
		}
		terminated := flush(init)

		steps := 0
		for len(queue) > 0 {
			steps++
			if steps > 100000 {
				t.Logf("liveness violation: queue stuck at %d", len(queue))
				return false
			}
			// Deliver a random in-flight message.
			i := rnd.Intn(len(queue))
			m := queue[i]
			queue = append(queue[:i], queue[i+1:]...)
			e := engines[m.to]
			if m.kind == 1 {
				e.AckReceived(sid, m.from, m.n)
			} else {
				e.Received(sid, m.from)
				// Random work: forward basic messages to random neighbors.
				for _, o := range out(m.to) {
					if workBudget > 0 && rnd.Intn(2) == 0 {
						send(m.to, o)
						workBudget--
					}
				}
			}
			if flush(m.to) {
				terminated = true
				// Safety: no basic messages may be in flight.
				for _, q := range queue {
					if q.kind == 0 {
						t.Logf("terminated with basic message in flight %v", q)
						return false
					}
				}
				for _, n := range nodes {
					if n != init && engines[n].Engaged(sid) {
						t.Logf("terminated while %s still engaged", n)
						return false
					}
					if engines[n].Deficit(sid) != 0 {
						t.Logf("terminated while %s has deficit", n)
						return false
					}
				}
			}
		}
		if !terminated {
			t.Log("computation drained without termination detection")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLostPeerClearsPerDestinationDeficit: writing off a failed pipe
// removes exactly that destination's outstanding messages, letting the
// initiator terminate, while other destinations stay accounted.
func TestLostPeerClearsPerDestinationDeficit(t *testing.T) {
	a := New("a")
	a.Start("s")
	a.Sent("s", "b", 2)
	a.Sent("s", "c", 1)
	if a.Deficit("s") != 3 || a.DeficitTo("s", "b") != 2 {
		t.Fatalf("deficit = %d / to b = %d", a.Deficit("s"), a.DeficitTo("s", "b"))
	}
	if lost := a.LostPeer("s", "b"); lost != 2 {
		t.Errorf("LostPeer = %d, want 2", lost)
	}
	if _, term := a.Flush("s"); term {
		t.Error("terminated with c still outstanding")
	}
	// A late ack from b (already written off) must be ignored.
	a.AckReceived("s", "b", 2)
	if a.Deficit("s") != 1 {
		t.Errorf("late ack disturbed deficit: %d", a.Deficit("s"))
	}
	a.AckReceived("s", "c", 1)
	if _, term := a.Flush("s"); !term {
		t.Error("no termination after all pipes settled")
	}
	if a.LostPeer("ghost", "b") != 0 {
		t.Error("unknown session wrote off messages")
	}
}
