// Package diffuse implements Dijkstra–Scholten termination detection for
// diffusing computations — the mechanism behind coDB's guarantee that a
// global update (or a distributed query) terminates even when coordination
// rules are cyclic. The paper cites an "extension of the diffusing
// computation approach [Lynch 1996]"; Dijkstra–Scholten is the canonical
// such algorithm and is correct on arbitrary, including cyclic, topologies.
//
// Protocol summary. Basic messages (requests, data, link-closes) form the
// computation; every basic message is eventually acknowledged. A node's
// *deficit* counts its sent-but-unacknowledged basic messages. The first
// basic message a disengaged node receives makes the sender its *parent*;
// the acknowledgement of that engaging message is deferred until the node
// *detaches*: it is passive (not processing) and its deficit is zero. The
// initiator starts engaged with no parent; the computation has terminated
// exactly when the initiator is passive with zero deficit.
//
// The engine is a passive bookkeeping core: the owner (one peer's actor
// loop) reports sends and receipts and asks what to do; the engine never
// performs I/O itself and is not safe for concurrent use.
package diffuse

import "fmt"

// Engine tracks every session this node participates in.
type Engine struct {
	self     string
	sessions map[string]*session
}

type session struct {
	engaged   bool
	initiator bool
	parent    string
	// deficit counts sent-but-unacknowledged basic messages, in total and
	// per destination. The per-destination split lets the owner clear
	// exactly the outstanding messages of one failed pipe (LostPeer) —
	// over an asynchronous transport a write can succeed into a dead
	// connection, so send errors alone cannot account for every loss.
	deficit int
	perDest map[string]int
	// owedAcks counts received-and-processed basic messages per sender
	// whose acknowledgements have not been emitted yet (batching).
	owedAcks map[string]int
	// parentOwed is the deferred acknowledgement for the engaging message.
	parentOwed bool
	terminated bool
}

// New returns an engine for the given node.
func New(self string) *Engine {
	return &Engine{self: self, sessions: make(map[string]*session)}
}

func (e *Engine) get(sid string) *session {
	s := e.sessions[sid]
	if s == nil {
		s = &session{owedAcks: make(map[string]int), perDest: make(map[string]int)}
		e.sessions[sid] = s
	}
	return s
}

// Start registers this node as the initiator of a session.
func (e *Engine) Start(sid string) {
	s := e.get(sid)
	s.engaged = true
	s.initiator = true
}

// Known reports whether the engine is tracking the session.
func (e *Engine) Known(sid string) bool { return e.sessions[sid] != nil }

// Initiator reports whether this node initiated the session.
func (e *Engine) Initiator(sid string) bool {
	s := e.sessions[sid]
	return s != nil && s.initiator
}

// Sent records n basic messages sent to `to` in the session.
func (e *Engine) Sent(sid, to string, n int) {
	if n <= 0 {
		return
	}
	s := e.get(sid)
	s.deficit += n
	s.perDest[to] += n
}

// Received records one basic message received from `from`. The caller must
// process the message fully (performing and recording any resulting sends)
// and then call Flush to emit acknowledgements and the detach decision.
func (e *Engine) Received(sid, from string) {
	s := e.get(sid)
	if !s.engaged {
		s.engaged = true
		s.parent = from
		s.parentOwed = true
		s.terminated = false
		return
	}
	s.owedAcks[from]++
}

// AckReceived records an acknowledgement from `from` for n of our basic
// messages. Acks beyond the destination's outstanding deficit (duplicated
// acks, or acks arriving after LostPeer compensation) are ignored, so a
// single bad peer cannot wedge termination or drive the deficit negative.
func (e *Engine) AckReceived(sid, from string, n int) {
	s := e.get(sid)
	if out := s.perDest[from]; n > out {
		n = out
	}
	if n <= 0 {
		return
	}
	s.perDest[from] -= n
	if s.perDest[from] == 0 {
		delete(s.perDest, from)
	}
	s.deficit -= n
}

// LostPeer clears the session's outstanding deficit toward a peer whose
// pipe has failed, returning the number of messages written off. The
// peer's acknowledgements can no longer arrive, so without this the
// initiator's deficit would stay positive forever; with it, sessions
// terminate even on dynamic networks.
func (e *Engine) LostPeer(sid, to string) int {
	s := e.sessions[sid]
	if s == nil {
		return 0
	}
	lost := s.perDest[to]
	if lost > 0 {
		delete(s.perDest, to)
		s.deficit -= lost
	}
	return lost
}

// Ack is one acknowledgement instruction: send an ack for N messages to To.
type Ack struct {
	To string
	N  int
}

// Flush returns the acknowledgements to emit now that the node is passive
// again, and whether the initiator has detected termination. Non-engaging
// messages are always acknowledged; the deferred parent acknowledgement is
// included only when the node detaches (deficit zero).
func (e *Engine) Flush(sid string) (acks []Ack, terminated bool) {
	s := e.sessions[sid]
	if s == nil {
		return nil, false
	}
	for from, n := range s.owedAcks {
		if n > 0 {
			acks = append(acks, Ack{To: from, N: n})
		}
		delete(s.owedAcks, from)
	}
	if s.engaged && s.deficit == 0 {
		if s.initiator {
			s.terminated = true
			return acks, true
		}
		if s.parentOwed {
			acks = append(acks, Ack{To: s.parent, N: 1})
		}
		s.engaged = false
		s.parentOwed = false
		s.parent = ""
	}
	return acks, false
}

// Terminated reports whether the initiator has detected termination.
func (e *Engine) Terminated(sid string) bool {
	s := e.sessions[sid]
	return s != nil && s.terminated
}

// Deficit exposes the current deficit (for tests and reports).
func (e *Engine) Deficit(sid string) int {
	s := e.sessions[sid]
	if s == nil {
		return 0
	}
	return s.deficit
}

// DeficitTo exposes the outstanding deficit toward one destination.
func (e *Engine) DeficitTo(sid, to string) int {
	s := e.sessions[sid]
	if s == nil {
		return 0
	}
	return s.perDest[to]
}

// Engaged reports whether the node is currently part of the session's tree.
func (e *Engine) Engaged(sid string) bool {
	s := e.sessions[sid]
	return s != nil && s.engaged
}

// Drop forgets a session (after Done handling); freeing per-session state.
func (e *Engine) Drop(sid string) { delete(e.sessions, sid) }

// Sessions returns the IDs of tracked sessions.
func (e *Engine) Sessions() []string {
	out := make([]string, 0, len(e.sessions))
	for sid := range e.sessions {
		out = append(out, sid)
	}
	return out
}

// String summarises one session's detector state (debugging aid).
func (e *Engine) String(sid string) string {
	s := e.sessions[sid]
	if s == nil {
		return "unknown session"
	}
	return fmt.Sprintf("engaged=%v initiator=%v parent=%q deficit=%d terminated=%v",
		s.engaged, s.initiator, s.parent, s.deficit, s.terminated)
}
