package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"codb/internal/topo"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRunUpdateChainShape(t *testing.T) {
	res, err := RunUpdate(ctxT(t), Params{Shape: topo.Chain, Nodes: 4, TuplesPerNode: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All 200 tuples are distinct (no overlap): node 0 materialises the
	// other 150; chain totals: N1 gains 100, N2 gains 50.
	if res.NewTuples != 150+100+50 {
		t.Errorf("NewTuples = %d, want 300", res.NewTuples)
	}
	if res.MaxPath != 3 {
		t.Errorf("MaxPath = %d, want 3 (chain of 4)", res.MaxPath)
	}
	if res.TotalMsgs == 0 || res.TotalBytes == 0 {
		t.Errorf("empty traffic stats: %+v", res)
	}
}

func TestRunUpdateStarShape(t *testing.T) {
	res, err := RunUpdate(ctxT(t), Params{Shape: topo.Star, Nodes: 5, TuplesPerNode: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxPath != 1 {
		t.Errorf("MaxPath = %d, want 1 (star)", res.MaxPath)
	}
	if res.NewTuples != 80 {
		t.Errorf("NewTuples = %d, want 80", res.NewTuples)
	}
}

func TestRunUpdateRingTerminates(t *testing.T) {
	res, err := RunUpdate(ctxT(t), Params{Shape: topo.Ring, Nodes: 5, TuplesPerNode: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// On a ring every node ends with all 50 tuples: 40 new each.
	if res.NewTuples != 5*40 {
		t.Errorf("NewTuples = %d, want 200", res.NewTuples)
	}
	if res.ClosedForce == 0 {
		t.Error("ring should force-close cyclic links")
	}
}

func TestRunUpdateExistential(t *testing.T) {
	res, err := RunUpdate(ctxT(t), Params{Shape: topo.Chain, Nodes: 3, TuplesPerNode: 10, Seed: 4, Existential: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewTuples == 0 {
		t.Errorf("existential chain produced nothing: %+v", res)
	}
}

func TestQueryColdVsMaterialised(t *testing.T) {
	p := Params{Shape: topo.Chain, Nodes: 4, TuplesPerNode: 100, Seed: 5}
	cold, err := RunQueryCold(ctxT(t), p)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunQueryMaterialised(ctxT(t), p)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Answers != warm.Answers {
		t.Errorf("answers differ: cold %d vs materialised %d", cold.Answers, warm.Answers)
	}
	if cold.Answers != 400 {
		t.Errorf("answers = %d, want 400", cold.Answers)
	}
	// The materialised query is local: it should be much faster than the
	// network fetch. Allow slack for scheduling noise but require a win.
	if warm.Wall >= cold.Wall {
		t.Logf("note: materialised %v !< cold %v (timing noise tolerated)", warm.Wall, cold.Wall)
	}
}

func TestAblationDedupReducesTraffic(t *testing.T) {
	// Projection rules with key-clashing data: the same imported tuple is
	// derivable from many source tuples, so the sent caches must strictly
	// reduce the shipped bindings without changing the result.
	base := Params{Shape: topo.Chain, Nodes: 5, TuplesPerNode: 100,
		Rule: topo.ProjectionRule, KeyClash: 0.8, Seed: 6}
	with, err := RunUpdate(ctxT(t), base)
	if err != nil {
		t.Fatal(err)
	}
	off := base
	off.DisableDedup = true
	without, err := RunUpdate(ctxT(t), off)
	if err != nil {
		t.Fatal(err)
	}
	if with.NewTuples != without.NewTuples {
		t.Errorf("dedup changed results: %d vs %d", with.NewTuples, without.NewTuples)
	}
	if with.TotalTuples >= without.TotalTuples {
		t.Errorf("dedup did not reduce shipped bindings: %d vs %d", with.TotalTuples, without.TotalTuples)
	}
}

func TestJoinRuleWorkload(t *testing.T) {
	res, err := RunUpdate(ctxT(t), Params{Shape: topo.Chain, Nodes: 3, TuplesPerNode: 50,
		Rule: topo.JoinRule, Domain: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewTuples == 0 {
		t.Error("join rules produced nothing; domain too sparse?")
	}
	// Join strategies must agree on the result.
	nested := Params{Shape: topo.Chain, Nodes: 3, TuplesPerNode: 50,
		Rule: topo.JoinRule, Domain: 30, Seed: 9, NestedLoop: true}
	res2, err := RunUpdate(ctxT(t), nested)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewTuples != res2.NewTuples {
		t.Errorf("join strategies disagree: %d vs %d", res.NewTuples, res2.NewTuples)
	}
}

func TestAblationNaiveSameResult(t *testing.T) {
	base := Params{Shape: topo.Ring, Nodes: 4, TuplesPerNode: 20, Seed: 7}
	semi, err := RunUpdate(ctxT(t), base)
	if err != nil {
		t.Fatal(err)
	}
	nv := base
	nv.Naive = true
	naive, err := RunUpdate(ctxT(t), nv)
	if err != nil {
		t.Fatal(err)
	}
	if semi.NewTuples != naive.NewTuples {
		t.Errorf("naive changed results: %d vs %d", semi.NewTuples, naive.NewTuples)
	}
}

func TestRenderAndHeader(t *testing.T) {
	res, err := RunUpdate(ctxT(t), Params{Shape: topo.Star, Nodes: 3, TuplesPerNode: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Header(), "maxpath") {
		t.Error("header missing column")
	}
	if !strings.Contains(Render(res), "star") {
		t.Errorf("row = %q", Render(res))
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Params{Shape: "nope", Nodes: 3}); err == nil {
		t.Error("unknown shape accepted")
	}
}

// TestFanoutOverTCP locks in the TCP-backed harness: a fan-out update over
// real sockets materialises at every leaf, and the default outbound
// pipeline ships measurably fewer frames than payloads.
func TestFanoutOverTCP(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := RunUpdate(ctx, Params{
		Shape: topo.Fanout, Nodes: 5, TuplesPerNode: 20, FanRules: 4, Seed: 7, TCP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 leaves × 4 rules × 20 tuples shipped; every leaf materialises 20.
	if res.NewTuples != 4*20 {
		t.Errorf("NewTuples = %d, want 80", res.NewTuples)
	}
	if res.Frames == 0 || res.WireBytes == 0 {
		t.Errorf("wire counters empty: %+v", res)
	}
	unb, err := RunUpdate(ctx, Params{
		Shape: topo.Fanout, Nodes: 5, TuplesPerNode: 20, FanRules: 4, Seed: 7, TCP: true,
		DisableOutbox: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if unb.NewTuples != 4*20 {
		t.Errorf("unbatched NewTuples = %d, want 80", unb.NewTuples)
	}
	if res.Frames >= unb.Frames {
		t.Errorf("batched frames %d, unbatched %d: coalescing had no effect", res.Frames, unb.Frames)
	}
}

// TestIncrementalRoundsConvergeAndSave locks in the B2 programme: after the
// first round, incremental sessions ship a small multiple of the burst
// instead of the whole extent, and both modes converge to identical
// databases.
func TestIncrementalRoundsConvergeAndSave(t *testing.T) {
	p := Params{Shape: topo.Chain, Nodes: 4, TuplesPerNode: 40, Seed: 11}
	const rounds, burst = 3, 5

	incr, incrStates, err := RunRounds(ctxT(t), p, rounds, burst)
	if err != nil {
		t.Fatal(err)
	}
	fullP := p
	fullP.FullExport = true
	full, fullStates, err := RunRounds(ctxT(t), fullP, rounds, burst)
	if err != nil {
		t.Fatal(err)
	}

	if !StatesEqual(incrStates, fullStates) {
		t.Fatal("incremental and full exports converged to different databases")
	}
	if incr[0].NewTuples != full[0].NewTuples {
		t.Errorf("round 0 diverged: %d vs %d new tuples", incr[0].NewTuples, full[0].NewTuples)
	}
	var incrShipped, fullShipped int
	for _, r := range incr[1:] {
		incrShipped += r.TotalTuples
	}
	for _, r := range full[1:] {
		fullShipped += r.TotalTuples
	}
	if incrShipped == 0 {
		t.Fatal("incremental rounds shipped nothing; the bursts were lost")
	}
	if fullShipped < 5*incrShipped {
		t.Errorf("full re-export shipped %d tuples vs incremental %d: want >= 5x savings",
			fullShipped, incrShipped)
	}
	if incr[1].ExportsIncremental == 0 || incr[1].SkippedByWatermark == 0 {
		t.Errorf("round 1 counters: incr exports=%d skipped=%d, want both nonzero",
			incr[1].ExportsIncremental, incr[1].SkippedByWatermark)
	}
	if full[1].ExportsIncremental != 0 {
		t.Errorf("FullExport mode ran %d incremental exports", full[1].ExportsIncremental)
	}
}
