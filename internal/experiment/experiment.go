// Package experiment implements the measurement programme of the paper's
// §4 demo: build a network in a given topology, seed a synthetic workload,
// run global updates and queries, and aggregate the statistics every node's
// statistical module accumulated (total execution time, messages per
// coordination rule, data volume, longest update propagation path). It is
// shared by the root benchmark suite and cmd/codb-bench.
package experiment

import (
	"context"
	"fmt"
	"time"

	"codb/internal/config"
	"codb/internal/core"
	"codb/internal/cq"
	"codb/internal/peer"
	"codb/internal/storage"
	"codb/internal/topo"
	"codb/internal/transport"
	"codb/internal/workload"
)

// Params describes one experiment cell.
type Params struct {
	Shape         topo.Shape
	Nodes         int
	TuplesPerNode int
	Overlap       float64
	// KeyClash and Domain shape the workload (see workload.Spec).
	KeyClash float64
	Domain   int
	// Rule selects the coordination-rule template; Existential is the
	// legacy alias for topo.ExistentialRule.
	Rule        topo.RuleKind
	Existential bool
	Seed        int64

	// Algorithm toggles (ablations).
	MaxDepth     int
	NestedLoop   bool
	DisableDedup bool
	Naive        bool
}

// Result aggregates one run.
type Result struct {
	Params      Params
	Wall        time.Duration
	TotalMsgs   int // SessionData messages shipped network-wide
	TotalBytes  int // their payload volume
	TotalTuples int // frontier bindings shipped
	NewTuples   int // tuples materialised network-wide
	MaxPath     int // longest update propagation path
	ClosedEarly int
	ClosedForce int
	Answers     int // query experiments: number of answers
}

// Net is a built, seeded network ready for measurement.
type Net struct {
	Cfg    *config.Config
	Peers  map[string]*peer.Peer
	Origin string
	close  func()
}

// Close stops every peer.
func (n *Net) Close() { n.close() }

// Build constructs and seeds a network per the parameters.
func Build(p Params) (*Net, error) {
	cfg, err := topo.Build(p.Shape, p.Nodes, topo.Options{Rule: p.Rule, Existential: p.Existential, Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	bus := transport.NewBus()
	peers := make(map[string]*peer.Peer, p.Nodes)
	closeAll := func() {
		for _, pr := range peers {
			pr.Stop()
		}
	}
	eval := cq.EvalOptions{}
	if p.NestedLoop {
		eval.Strategy = cq.NestedLoop
	}
	for _, node := range cfg.Nodes {
		db := storage.MustOpenMem()
		if err := db.DefineSchema(node.Schema); err != nil {
			closeAll()
			return nil, err
		}
		pr, err := peer.New(peer.Options{
			Name:         node.Name,
			Transport:    bus.MustJoin(node.Name),
			Wrapper:      core.NewStoreWrapper(db),
			MaxDepth:     p.MaxDepth,
			Eval:         eval,
			DisableDedup: p.DisableDedup,
			Naive:        p.Naive,
		})
		if err != nil {
			closeAll()
			return nil, err
		}
		peers[node.Name] = pr
	}
	for _, r := range cfg.Rules {
		rule, err := cq.ParseRule(r.ID, r.Text)
		if err != nil {
			closeAll()
			return nil, err
		}
		for _, endpoint := range []string{rule.Target, rule.Source} {
			if err := peers[endpoint].AddRule(r.ID, r.Text); err != nil {
				closeAll()
				return nil, err
			}
		}
	}
	names := make([]string, 0, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		names = append(names, n.Name)
	}
	seed := workload.Generate(names, workload.Spec{
		TuplesPerNode: p.TuplesPerNode,
		Overlap:       p.Overlap,
		KeyClash:      p.KeyClash,
		Domain:        p.Domain,
		Seed:          p.Seed + 1,
	})
	for node, tuples := range seed {
		if err := peers[node].Insert("data", tuples...); err != nil {
			closeAll()
			return nil, err
		}
	}
	return &Net{Cfg: cfg, Peers: peers, Origin: topo.NodeName(0), close: closeAll}, nil
}

// RunUpdate performs one measured global update on a fresh network.
func RunUpdate(ctx context.Context, p Params) (Result, error) {
	net, err := Build(p)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()
	start := time.Now()
	rep, err := net.Peers[net.Origin].RunUpdate(ctx)
	if err != nil {
		return Result{}, err
	}
	wall := time.Since(start)
	res := Result{Params: p, Wall: wall}
	collect(ctx, net, rep.SID, &res)
	return res, nil
}

// collect sums the per-node statistics for the given session, waiting for
// the completion flood to reach every participant (participation is
// detected by the presence of the session report; unreachable peers are
// skipped after a short grace period).
func collect(ctx context.Context, net *Net, sid string, res *Result) {
	deadline := time.Now().Add(5 * time.Second)
	pending := make(map[string]bool, len(net.Peers))
	for name := range net.Peers {
		pending[name] = true
	}
	for len(pending) > 0 && time.Now().Before(deadline) && ctx.Err() == nil {
		for name := range pending {
			for _, rep := range net.Peers[name].Reports() {
				if rep.SID != sid {
					continue
				}
				delete(pending, name)
				res.TotalMsgs += rep.SentMsgs
				res.TotalBytes += rep.SentBytes
				res.NewTuples += rep.NewTuples
				res.ClosedEarly += rep.LinksClosedEarly
				res.ClosedForce += rep.LinksClosedForced
				for _, n := range rep.TuplesPerRule {
					res.TotalTuples += n
				}
				if rep.LongestPath > res.MaxPath {
					res.MaxPath = rep.LongestPath
				}
				break
			}
		}
		if len(pending) > 0 {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// RunQueryCold measures a query-time fetch (no prior materialisation) of
// all data at the origin.
func RunQueryCold(ctx context.Context, p Params) (Result, error) {
	net, err := Build(p)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()
	q := cq.MustParseQuery(`ans(x, y) :- data(x, y)`)
	start := time.Now()
	answers, done, err := net.Peers[net.Origin].QueryStream(q, core.AllAnswers)
	if err != nil {
		return Result{}, err
	}
	n := 0
	for range answers {
		n++
	}
	rep := <-done
	res := Result{Params: p, Wall: time.Since(start), Answers: n}
	collect(ctx, net, rep.SID, &res)
	return res, nil
}

// RunQueryMaterialised measures a local query after a global update; the
// reported wall time covers only the query (the paper's point: after the
// batch update, queries are answered locally).
func RunQueryMaterialised(ctx context.Context, p Params) (Result, error) {
	net, err := Build(p)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()
	urep, err := net.Peers[net.Origin].RunUpdate(ctx)
	if err != nil {
		return Result{}, err
	}
	q := cq.MustParseQuery(`ans(x, y) :- data(x, y)`)
	start := time.Now()
	answers, err := net.Peers[net.Origin].LocalQuery(q, core.AllAnswers)
	if err != nil {
		return Result{}, err
	}
	res := Result{Params: p, Wall: time.Since(start), Answers: len(answers)}
	collect(ctx, net, urep.SID, &res)
	return res, nil
}

// Header returns the experiment table header.
func Header() string {
	return fmt.Sprintf("%-9s %5s %7s %9s %8s %10s %8s %8s %7s",
		"topology", "nodes", "tuples", "wall(ms)", "msgs", "bytes", "shipped", "new", "maxpath")
}

// Render formats one result row.
func Render(r Result) string {
	return fmt.Sprintf("%-9s %5d %7d %9.2f %8d %10d %8d %8d %7d",
		r.Params.Shape, r.Params.Nodes, r.Params.TuplesPerNode,
		float64(r.Wall.Nanoseconds())/1e6,
		r.TotalMsgs, r.TotalBytes, r.TotalTuples, r.NewTuples, r.MaxPath)
}
