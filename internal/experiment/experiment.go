// Package experiment implements the measurement programme of the paper's
// §4 demo: build a network in a given topology, seed a synthetic workload,
// run global updates and queries, and aggregate the statistics every node's
// statistical module accumulated (total execution time, messages per
// coordination rule, data volume, longest update propagation path). It is
// shared by the root benchmark suite and cmd/codb-bench.
package experiment

import (
	"context"
	"fmt"
	"sort"
	"time"

	"codb/internal/config"
	"codb/internal/core"
	"codb/internal/cq"
	"codb/internal/peer"
	"codb/internal/relation"
	"codb/internal/storage"
	"codb/internal/topo"
	"codb/internal/transport"
	"codb/internal/workload"
)

// Params describes one experiment cell.
type Params struct {
	Shape         topo.Shape
	Nodes         int
	TuplesPerNode int
	Overlap       float64
	// KeyClash and Domain shape the workload (see workload.Spec).
	KeyClash float64
	Domain   int
	// Rule selects the coordination-rule template; Existential is the
	// legacy alias for topo.ExistentialRule.
	Rule        topo.RuleKind
	Existential bool
	// FanRules multiplies the parallel rules per Fanout edge (see
	// topo.Options.FanRules).
	FanRules int
	Seed     int64

	// Algorithm toggles (ablations).
	MaxDepth     int
	NestedLoop   bool
	DisableDedup bool
	Naive        bool

	// TCP runs the network over loopback sockets instead of the
	// in-process bus, so frames-on-the-wire and the outbound pipeline are
	// measured for real.
	TCP bool
	// DisableOutbox sends synchronously per message (the unbatched
	// baseline of the batching benchmarks).
	DisableOutbox bool
	// FullExport disables cross-session incremental export: repeated
	// update sessions re-evaluate and re-ship every link in full (the
	// paper-faithful baseline of B2, and the steady-state re-ship
	// behaviour the repeated-update benchmarks measure).
	FullExport bool
	// DisableReadPath forces reads through the peer actor loop (the seed
	// behaviour, and the B3 baseline) instead of the concurrent snapshot
	// read path.
	DisableReadPath bool
	// EvalParallelism caps the hash-join probe fan-out on large binding
	// sets (see cq.EvalOptions.Parallelism); 0 or 1 is serial.
	EvalParallelism int
	// Shards hash-partitions every node database's relations (see
	// storage.Options.Shards); 0/1 keeps the unsharded layout.
	Shards int
	// DisableSessionSnapshots evaluates update sessions over the live
	// wrapper instead of pinned snapshots (the B7 serial baseline); see
	// core.Config.DisableSessionSnapshots.
	DisableSessionSnapshots bool
}

// Result aggregates one run.
type Result struct {
	Params      Params
	Wall        time.Duration
	TotalMsgs   int // SessionData messages shipped network-wide
	TotalBytes  int // their payload volume
	TotalTuples int // frontier bindings shipped
	NewTuples   int // tuples materialised network-wide
	MaxPath     int // longest update propagation path
	ClosedEarly int
	ClosedForce int
	Answers     int // query experiments: number of answers
	// Frames / WireBytes count envelope frames written to the sockets and
	// their volume, network-wide; TCP runs only (0 over the bus). With
	// the outbound pipeline enabled, Frames < the number of payloads sent
	// whenever coalescing packed messages together.
	Frames    int
	WireBytes int
	// Incremental-export statistics, summed network-wide: initial link
	// exports by mode, body tuples the LSN watermarks let exporters skip
	// re-evaluating, bindings the persistent fingerprint sets kept off the
	// wire, and chase/eval errors surfaced during the session.
	ExportsFull        int
	ExportsIncremental int
	ExportsFallback    int
	SkippedByWatermark int
	SuppressedBindings int
	EvalErrors         int
}

// Net is a built, seeded network ready for measurement.
type Net struct {
	Cfg    *config.Config
	Peers  map[string]*peer.Peer
	Origin string
	tcps   []*transport.TCP
	close  func()
}

// Close stops every peer.
func (n *Net) Close() { n.close() }

// FramesSent sums the envelope frames (and their bytes) written by every
// node; zero for bus networks, which have no wire.
func (n *Net) FramesSent() (frames, bytes int) {
	for _, t := range n.tcps {
		frames += int(t.FramesSent())
		bytes += int(t.BytesSent())
	}
	return frames, bytes
}

// Build constructs and seeds a network per the parameters.
func Build(p Params) (*Net, error) {
	cfg, err := topo.Build(p.Shape, p.Nodes, topo.Options{Rule: p.Rule, Existential: p.Existential, Seed: p.Seed, FanRules: p.FanRules})
	if err != nil {
		return nil, err
	}
	peers := make(map[string]*peer.Peer, p.Nodes)
	transports := make(map[string]transport.Transport, p.Nodes)
	closeAll := func() {
		for _, pr := range peers {
			pr.Stop()
		}
		// Transports not yet owned by a peer (mid-build failures).
		for name, tr := range transports {
			if _, owned := peers[name]; !owned {
				tr.Close()
			}
		}
	}
	eval := cq.EvalOptions{Parallelism: p.EvalParallelism}
	if p.NestedLoop {
		eval.Strategy = cq.NestedLoop
	}
	var bus *transport.Bus
	if !p.TCP {
		bus = transport.NewBus()
	}
	net := &Net{Cfg: cfg, Peers: peers, Origin: topo.NodeName(0), close: closeAll}
	directory := make(map[string]string, p.Nodes)
	for _, node := range cfg.Nodes {
		if p.TCP {
			tr, err := transport.NewTCP(node.Name, "127.0.0.1:0")
			if err != nil {
				closeAll()
				return nil, err
			}
			net.tcps = append(net.tcps, tr)
			transports[node.Name] = tr
			directory[node.Name] = tr.Addr()
		} else {
			transports[node.Name] = bus.MustJoin(node.Name)
		}
	}
	for _, node := range cfg.Nodes {
		db, err := storage.Open(storage.Options{Shards: p.Shards})
		if err != nil {
			closeAll()
			return nil, err
		}
		if err := db.DefineSchema(node.Schema); err != nil {
			closeAll()
			return nil, err
		}
		pr, err := peer.New(peer.Options{
			Name:                    node.Name,
			Transport:               transports[node.Name],
			Wrapper:                 core.NewStoreWrapper(db),
			Directory:               directory,
			MaxDepth:                p.MaxDepth,
			Eval:                    eval,
			DisableDedup:            p.DisableDedup,
			Naive:                   p.Naive,
			FullExport:              p.FullExport,
			DisableOutbox:           p.DisableOutbox,
			DisableReadPath:         p.DisableReadPath,
			DisableSessionSnapshots: p.DisableSessionSnapshots,
		})
		if err != nil {
			closeAll()
			return nil, err
		}
		peers[node.Name] = pr
	}
	for _, r := range cfg.Rules {
		rule, err := cq.ParseRule(r.ID, r.Text)
		if err != nil {
			closeAll()
			return nil, err
		}
		for _, endpoint := range []string{rule.Target, rule.Source} {
			if err := peers[endpoint].AddRule(r.ID, r.Text); err != nil {
				closeAll()
				return nil, err
			}
		}
	}
	names := make([]string, 0, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		names = append(names, n.Name)
	}
	seed := workload.Generate(names, workload.Spec{
		TuplesPerNode: p.TuplesPerNode,
		Overlap:       p.Overlap,
		KeyClash:      p.KeyClash,
		Domain:        p.Domain,
		Seed:          p.Seed + 1,
	})
	for node, tuples := range seed {
		if err := peers[node].Insert("data", tuples...); err != nil {
			closeAll()
			return nil, err
		}
	}
	return net, nil
}

// RunUpdate performs one measured global update on a fresh network.
func RunUpdate(ctx context.Context, p Params) (Result, error) {
	net, err := Build(p)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()
	res, err := RunUpdateOn(ctx, net)
	res.Params = p
	return res, err
}

// RunUpdateOn runs one measured global update on an already-built network,
// so benchmarks can amortise the build across iterations. With
// Params.FullExport, updates are repeatable re-ships: per-link sent caches
// are per-session, so a later session re-ships the full frontier over the
// same pipes (materialising nothing new) — steady-state messaging without
// the rebuild cost. In the default incremental mode, later sessions ship
// only what changed since the previous one (that delta is what B2
// measures). Frames and WireBytes are deltas for this run.
func RunUpdateOn(ctx context.Context, net *Net) (Result, error) {
	frames0, bytes0 := net.FramesSent()
	start := time.Now()
	rep, err := net.Peers[net.Origin].RunUpdate(ctx)
	if err != nil {
		return Result{}, err
	}
	wall := time.Since(start)
	res := Result{Wall: wall}
	collect(ctx, net, rep.SID, &res)
	res.Frames -= frames0
	res.WireBytes -= bytes0
	return res, nil
}

// collect sums the per-node statistics for the given session, waiting for
// the completion flood to reach every participant (participation is
// detected by the presence of the session report; unreachable peers are
// skipped after a short grace period).
func collect(ctx context.Context, net *Net, sid string, res *Result) {
	deadline := time.Now().Add(5 * time.Second)
	pending := make(map[string]bool, len(net.Peers))
	for name := range net.Peers {
		pending[name] = true
	}
	for len(pending) > 0 && time.Now().Before(deadline) && ctx.Err() == nil {
		for name := range pending {
			for _, rep := range net.Peers[name].Reports() {
				if rep.SID != sid {
					continue
				}
				delete(pending, name)
				res.TotalMsgs += rep.SentMsgs
				res.TotalBytes += rep.SentBytes
				res.NewTuples += rep.NewTuples
				res.ClosedEarly += rep.LinksClosedEarly
				res.ClosedForce += rep.LinksClosedForced
				res.ExportsFull += rep.ExportsFull
				res.ExportsIncremental += rep.ExportsIncremental
				res.ExportsFallback += rep.ExportsFallback
				res.SkippedByWatermark += rep.SkippedByWatermark
				res.SuppressedBindings += rep.SuppressedBindings
				res.EvalErrors += rep.EvalErrors
				for _, n := range rep.TuplesPerRule {
					res.TotalTuples += n
				}
				if rep.LongestPath > res.MaxPath {
					res.MaxPath = rep.LongestPath
				}
				break
			}
		}
		if len(pending) > 0 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	// Let the pipelines drain before reading the wire counters, so the
	// completion flood's frames are counted too.
	for _, pr := range net.Peers {
		pr.FlushOutbox()
	}
	res.Frames, res.WireBytes = net.FramesSent()
}

// RunQueryCold measures a query-time fetch (no prior materialisation) of
// all data at the origin.
func RunQueryCold(ctx context.Context, p Params) (Result, error) {
	net, err := Build(p)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()
	q := cq.MustParseQuery(`ans(x, y) :- data(x, y)`)
	start := time.Now()
	answers, done, err := net.Peers[net.Origin].QueryStream(q, core.AllAnswers)
	if err != nil {
		return Result{}, err
	}
	n := 0
	for range answers {
		n++
	}
	rep := <-done
	res := Result{Params: p, Wall: time.Since(start), Answers: n}
	collect(ctx, net, rep.SID, &res)
	return res, nil
}

// RunQueryMaterialised measures a local query after a global update; the
// reported wall time covers only the query (the paper's point: after the
// batch update, queries are answered locally).
func RunQueryMaterialised(ctx context.Context, p Params) (Result, error) {
	net, err := Build(p)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()
	urep, err := net.Peers[net.Origin].RunUpdate(ctx)
	if err != nil {
		return Result{}, err
	}
	q := cq.MustParseQuery(`ans(x, y) :- data(x, y)`)
	start := time.Now()
	answers, err := net.Peers[net.Origin].LocalQuery(q, core.AllAnswers)
	if err != nil {
		return Result{}, err
	}
	res := Result{Params: p, Wall: time.Since(start), Answers: len(answers)}
	collect(ctx, net, urep.SID, &res)
	return res, nil
}

// RunRounds is the B2 programme on one network: an initial update over the
// seed data (round 0), then rounds-1 repetitions of "commit a small burst
// of fresh tuples at every node, run a global update". The per-round
// results expose what each session actually shipped, so incremental export
// (default) can be compared against Params.FullExport re-shipping. The
// final per-peer contents of data are returned for cross-mode equality
// checks.
func RunRounds(ctx context.Context, p Params, rounds, burst int) ([]Result, map[string][]relation.Tuple, error) {
	net, err := Build(p)
	if err != nil {
		return nil, nil, err
	}
	defer net.Close()
	results := make([]Result, 0, rounds)
	for round := 0; round < rounds; round++ {
		if round > 0 {
			// Burst keys live far above the workload generator's ranges,
			// so every round commits genuinely fresh tuples.
			nodeIdx := 0
			for _, node := range net.Cfg.Nodes {
				tuples := make([]relation.Tuple, burst)
				for i := range tuples {
					k := 10_000_000 + round*1_000_000 + nodeIdx*burst + i
					tuples[i] = relation.Tuple{relation.Int(k), relation.Int(round)}
				}
				if err := net.Peers[node.Name].Insert("data", tuples...); err != nil {
					return nil, nil, err
				}
				nodeIdx++
			}
		}
		res, err := RunUpdateOn(ctx, net)
		if err != nil {
			return nil, nil, err
		}
		res.Params = p
		results = append(results, res)
	}
	states := make(map[string][]relation.Tuple, len(net.Peers))
	for name, pr := range net.Peers {
		states[name] = pr.Tuples("data")
	}
	return results, states, nil
}

// StatesEqual compares two per-peer state snapshots (as RunRounds returns
// them) for exact equality; Tuples returns key order, so a positional
// comparison suffices.
func StatesEqual(a, b map[string][]relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for name, ta := range a {
		tb, ok := b[name]
		if !ok || len(ta) != len(tb) {
			return false
		}
		for i := range ta {
			if ta[i].Key() != tb[i].Key() {
				return false
			}
		}
	}
	return true
}

// Percentile returns the pth percentile of the latency sample (nearest-
// rank on a copy; the input is left unsorted). Zero for an empty sample.
func Percentile(lats []time.Duration, p int) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Header returns the experiment table header.
func Header() string {
	return fmt.Sprintf("%-9s %5s %7s %9s %8s %10s %8s %8s %7s",
		"topology", "nodes", "tuples", "wall(ms)", "msgs", "bytes", "shipped", "new", "maxpath")
}

// Render formats one result row.
func Render(r Result) string {
	return fmt.Sprintf("%-9s %5d %7d %9.2f %8d %10d %8d %8d %7d",
		r.Params.Shape, r.Params.Nodes, r.Params.TuplesPerNode,
		float64(r.Wall.Nanoseconds())/1e6,
		r.TotalMsgs, r.TotalBytes, r.TotalTuples, r.NewTuples, r.MaxPath)
}
