// Package chase applies GLAV coordination rules: the data-exchange step of
// coDB. Evaluating a rule's body over the source instance yields frontier
// bindings; for each binding the head atoms are instantiated, with
// existential head variables replaced by marked nulls.
//
// Null minting is deterministic ("Skolemized"): the null standing for
// existential variable z of rule r under frontier binding b has the label
//
//	d<depth>~<hash(r.ID, z, b)>
//
// so that independent executions — different peers, different message
// orders, the centralised oracle — mint the *same* null for the same
// derivation. This makes the chase confluent: the update algorithm's result
// is a well-defined least fixpoint, and tests can compare distributed and
// centralised results for plain equality.
//
// The embedded depth is the derivation depth: 1 + the maximum depth of any
// null occurring in the frontier binding. Rule sets whose chase diverges
// (non-weakly-acyclic existential cycles) are cut off at Options.MaxDepth;
// the cutoff is reported so callers can surface the approximation.
package chase

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"codb/internal/cq"
	"codb/internal/relation"
)

// Options tunes rule application.
type Options struct {
	// MaxDepth bounds the null derivation depth; bindings that would mint
	// nulls deeper than this are skipped (counted, not applied).
	// 0 means unlimited.
	MaxDepth int
	// Eval selects the join strategy for body evaluation.
	Eval cq.EvalOptions
}

// Fact is one tuple for one relation of the target node.
type Fact struct {
	Rel   string
	Tuple relation.Tuple
}

// Applier instantiates the head of a single rule. It caches the head facts
// per frontier binding, so repeated deliveries are cheap and minting is
// stable within a process (across processes, stability comes from the
// deterministic labels).
type Applier struct {
	rule     *cq.Rule
	opts     Options
	frontier []string
	exist    []string
	memo     map[string][]Fact
	skipMemo map[string]bool
	// Skipped counts frontier bindings dropped by the depth bound since
	// construction.
	Skipped int
}

// NewApplier validates the rule and prepares an applier for it.
func NewApplier(rule *cq.Rule, opts Options) (*Applier, error) {
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	return &Applier{
		rule:     rule,
		opts:     opts,
		frontier: rule.Frontier(),
		exist:    rule.Existentials(),
		memo:     make(map[string][]Fact),
		skipMemo: make(map[string]bool),
	}, nil
}

// Rule returns the applier's rule.
func (a *Applier) Rule() *cq.Rule { return a.rule }

// Frontier returns the frontier variable order the applier expects bindings
// in (the order of first occurrence in the rule head).
func (a *Applier) Frontier() []string { return a.frontier }

// Facts instantiates the head for every frontier binding, returning the
// facts to assert at the target node. Bindings beyond the depth bound are
// skipped and counted.
func (a *Applier) Facts(bindings []relation.Tuple) []Fact {
	var out []Fact
	for _, b := range bindings {
		out = append(out, a.factsFor(b)...)
	}
	return out
}

func (a *Applier) factsFor(binding relation.Tuple) []Fact {
	key := binding.Key()
	if fs, ok := a.memo[key]; ok {
		return fs
	}
	if a.skipMemo[key] {
		return nil
	}
	env := make(map[string]relation.Value, len(a.frontier)+len(a.exist))
	depth := 0
	for i, v := range a.frontier {
		if i >= len(binding) {
			// Malformed binding; drop it rather than panic (it may come
			// from a remote peer).
			a.skipMemo[key] = true
			a.Skipped++
			return nil
		}
		env[v] = binding[i]
		if d := NullDepth(binding[i]); d > depth {
			depth = d
		}
	}
	if len(a.exist) > 0 {
		newDepth := depth + 1
		if a.opts.MaxDepth > 0 && newDepth > a.opts.MaxDepth {
			a.skipMemo[key] = true
			a.Skipped++
			return nil
		}
		for _, z := range a.exist {
			env[z] = mintNull(a.rule.ID, z, key, newDepth)
		}
	}
	facts := make([]Fact, 0, len(a.rule.Head))
	for _, h := range a.rule.Head {
		t := make(relation.Tuple, len(h.Terms))
		for i, term := range h.Terms {
			if term.IsVar() {
				t[i] = env[term.Var]
			} else {
				t[i] = term.Const
			}
		}
		facts = append(facts, Fact{Rel: h.Rel, Tuple: t})
	}
	a.memo[key] = facts
	return facts
}

// mintNull builds the deterministic label for an existential witness.
func mintNull(ruleID, varName, frontierKey string, depth int) relation.Value {
	h := sha256.Sum256([]byte(ruleID + "\x00" + varName + "\x00" + frontierKey))
	return relation.Null("d" + strconv.Itoa(depth) + "~" + hex.EncodeToString(h[:12]))
}

// NullDepth returns the derivation depth embedded in a marked null's label;
// non-nulls and foreign labels (user-minted nulls) have depth 0.
func NullDepth(v relation.Value) int {
	if v.Kind != relation.KindNull {
		return 0
	}
	label := v.NullLabel()
	if !strings.HasPrefix(label, "d") {
		return 0
	}
	i := strings.IndexByte(label, '~')
	if i < 2 {
		return 0
	}
	d, err := strconv.Atoi(label[1:i])
	if err != nil || d < 0 {
		return 0
	}
	return d
}

// Bindings evaluates the rule body over the source and returns the frontier
// bindings (the payload an exporting node ships to the importer).
func Bindings(rule *cq.Rule, src cq.Source, opts Options) ([]relation.Tuple, error) {
	return cq.EvalBindings(rule.Body, rule.Cmps, rule.Frontier(), src, opts.Eval)
}

// BindingsDelta is the semi-naive variant of Bindings: only derivations
// using at least one tuple of delta (for deltaRel) are produced.
func BindingsDelta(rule *cq.Rule, src cq.Source, deltaRel string, delta []relation.Tuple, opts Options) ([]relation.Tuple, error) {
	return cq.EvalDelta(rule.Body, rule.Cmps, rule.Frontier(), src, deltaRel, delta, opts.Eval)
}

// Apply evaluates the rule end to end against a source instance and returns
// the facts for the target. Convenience for tests and the oracle.
func Apply(rule *cq.Rule, src cq.Source, a *Applier) ([]Fact, error) {
	bindings, err := Bindings(rule, src, a.opts)
	if err != nil {
		return nil, err
	}
	return a.Facts(bindings), nil
}

// String renders a fact.
func (f Fact) String() string { return fmt.Sprintf("%s%s", f.Rel, f.Tuple) }
